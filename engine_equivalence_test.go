package saath

// The event engine (SimConfig.Mode = ModeEvent) is pinned bit-for-bit
// equivalent to the tick engine, not merely close: same CCT float
// bits, same makespan, same interval count, same telemetry stream.
// This test runs both modes over the golden synthetic workload for
// three policies × two seeds, in plain, Dynamics, Pipelining and
// DAG-dependency configurations, and compares everything — including
// the sha256 of the full exported metrics JSON, which pins every
// per-interval series the probes observed.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// dagTrace builds a small diamond-dependency workload: two root
// shuffles gate a join stage which gates a final aggregation, plus an
// independent straggler-bait coflow arriving late.
func dagTrace() *Trace {
	flows := func(seed, n int) []FlowSpec {
		fs := make([]FlowSpec, n)
		for i := range fs {
			fs[i] = FlowSpec{
				Src:  PortID((seed + i) % 8),
				Dst:  PortID((seed + i + 3) % 8),
				Size: Bytes(seed+i+1) * 3 * MB,
			}
		}
		return fs
	}
	return &Trace{
		Name:     "dag-diamond",
		NumPorts: 8,
		Specs: []*Spec{
			{ID: 1, Arrival: 0, Flows: flows(0, 4)},
			{ID: 2, Arrival: 5 * Millisecond, Flows: flows(2, 3)},
			{ID: 3, Arrival: 0, DependsOn: []CoFlowID{1, 2}, Flows: flows(4, 5)},
			{ID: 4, Arrival: 0, DependsOn: []CoFlowID{3}, Flows: flows(1, 2)},
			{ID: 5, Arrival: 200 * Millisecond, Flows: flows(3, 6)},
		},
	}
}

func TestEngineModesByteIdentical(t *testing.T) {
	configs := []struct {
		name string
		cfg  SimConfig
	}{
		{"plain", SimConfig{}},
		{"dynamics", SimConfig{Dynamics: &Dynamics{
			Seed: 11, StragglerProb: 0.2, Slowdown: 3, RestartProb: 0.15, RestartAt: 0.4,
		}}},
		{"pipelining", SimConfig{Pipelining: &Pipelining{
			Seed: 13, Frac: 0.3, AvailDelay: 40 * Millisecond,
		}}},
	}
	type signature struct {
		avgCCTBits uint64
		makespan   int64
		intervals  int
		metricsSHA string
	}
	sig := func(t *testing.T, tr *Trace, scheduler string, cfg SimConfig) signature {
		t.Helper()
		res, m, err := SimulateWithTelemetry(tr, scheduler, cfg, TelemetrySpec{Enabled: true, Seed: 7})
		if err != nil {
			t.Fatalf("mode %v: %v", cfg.Mode, err)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return signature{
			avgCCTBits: math.Float64bits(res.AvgCCT()),
			makespan:   int64(res.Makespan),
			intervals:  res.Intervals,
			metricsSHA: fmt.Sprintf("%x", sha256.Sum256(b)),
		}
	}
	for _, c := range configs {
		for _, scheduler := range []string{"saath", "varys", "aalo"} {
			for seed := int64(1); seed <= 2; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", c.name, scheduler, seed)
				t.Run(name, func(t *testing.T) {
					tr := Synthesize(goldenSynthConfig(seed), fmt.Sprintf("golden-%d", seed))
					tickCfg, eventCfg := c.cfg, c.cfg
					tickCfg.Mode, eventCfg.Mode = ModeTick, ModeEvent
					tick := sig(t, tr, scheduler, tickCfg)
					event := sig(t, tr, scheduler, eventCfg)
					if tick != event {
						t.Errorf("tick %+v\nevent %+v", tick, event)
					}
				})
			}
		}
		t.Run(c.name+"/dag", func(t *testing.T) {
			tickCfg, eventCfg := c.cfg, c.cfg
			tickCfg.Mode, eventCfg.Mode = ModeTick, ModeEvent
			tick := sig(t, dagTrace(), "saath", tickCfg)
			event := sig(t, dagTrace(), "saath", eventCfg)
			if tick != event {
				t.Errorf("tick %+v\nevent %+v", tick, event)
			}
		})
	}
}

// TestEngineModePerCoFlowIdentical drills below the aggregate
// signature: every CoFlow's exact completion time and every flow's FCT
// must match across modes, on the harshest configuration (dynamics +
// pipelining together over the DAG workload).
func TestEngineModePerCoFlowIdentical(t *testing.T) {
	cfg := SimConfig{
		Dynamics:   &Dynamics{Seed: 5, StragglerProb: 0.25, Slowdown: 2.5, RestartProb: 0.2},
		Pipelining: &Pipelining{Seed: 9, Frac: 0.4, AvailDelay: 24 * Millisecond},
	}
	for _, scheduler := range []string{"saath", "aalo", "uc-tcp"} {
		t.Run(scheduler, func(t *testing.T) {
			tickCfg, eventCfg := cfg, cfg
			tickCfg.Mode, eventCfg.Mode = ModeTick, ModeEvent
			tickRes, err := Simulate(dagTrace(), scheduler, tickCfg)
			if err != nil {
				t.Fatal(err)
			}
			eventRes, err := Simulate(dagTrace(), scheduler, eventCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tickRes.CoFlows) != len(eventRes.CoFlows) {
				t.Fatalf("coflow count: tick %d, event %d", len(tickRes.CoFlows), len(eventRes.CoFlows))
			}
			for i, tc := range tickRes.CoFlows {
				ec := eventRes.CoFlows[i]
				if tc.ID != ec.ID || tc.Arrival != ec.Arrival || tc.DoneAt != ec.DoneAt || tc.CCT != ec.CCT {
					t.Errorf("coflow[%d]: tick %+v, event %+v", i, tc, ec)
				}
				for j, tf := range tc.Flows {
					if ef := ec.Flows[j]; tf != ef {
						t.Errorf("coflow %d flow[%d]: tick %+v, event %+v", tc.ID, j, tf, ef)
					}
				}
			}
		})
	}
}
