// tracegen synthesizes CoFlow workloads in the coflow-benchmark trace
// format (the format of the public Facebook trace).
//
// Usage:
//
//	tracegen -kind fb -seed 1 -out fb.txt
//	tracegen -kind custom -ports 64 -coflows 300 -gap 50ms -out my.txt
//	tracegen -kind incast -fanin 16 -skew 1.0 -hotspots 4 -summary -out incast.txt
//	tracegen -kind broadcast -fanout 16 -out bcast.txt
//
// The incast family fans -fanin senders into one aggregator port per
// CoFlow; broadcast fans one root port out to -fanout receivers. Both
// rotate through -hotspots hot ports, concentrating contention so the
// simulator's telemetry (queue occupancy, head-of-line blocking) has
// something to show.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"saath/internal/coflow"
	"saath/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "fb", `workload family: "fb", "osp", "incast", "broadcast", "mix", or "custom"`)
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "-", `output path ("-" for stdout)`)
		ports    = flag.Int("ports", 0, "[custom/incast/broadcast] cluster size (0 = family default)")
		coflows  = flag.Int("coflows", 0, "[custom/incast/broadcast] number of coflows (0 = family default)")
		gap      = flag.Duration("gap", 0, "[custom/incast/broadcast] mean inter-arrival (0 = family default)")
		fanIn    = flag.Int("fanin", 0, "[incast] senders per coflow (0 = default 12)")
		fanOut   = flag.Int("fanout", 0, "[broadcast] receivers per coflow (0 = default 12)")
		skew     = flag.Float64("skew", -1, "[incast/broadcast] log-normal sigma of flow sizes (<0 = default 0.5; 0 = equal)")
		hotspots = flag.Int("hotspots", -1, "[incast/broadcast] distinct hot aggregator/root ports (<0 = default 6; 0 = all ports)")
		summary  = flag.Bool("summary", false, "print workload statistics to stderr")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *kind {
	case "fb":
		tr = trace.SynthFB(*seed)
	case "osp":
		tr = trace.SynthOSP(*seed)
	case "incast":
		cfg := fanConfig(trace.DefaultIncastConfig(*seed), *ports, *coflows, *gap, *fanIn, *skew, *hotspots)
		var err error
		if tr, err = trace.SynthesizeIncast(cfg, "incast"); err != nil {
			fatal(err)
		}
	case "broadcast":
		cfg := fanConfig(trace.DefaultBroadcastConfig(*seed), *ports, *coflows, *gap, *fanOut, *skew, *hotspots)
		var err error
		if tr, err = trace.SynthesizeBroadcast(cfg, "broadcast"); err != nil {
			fatal(err)
		}
	case "mix":
		tr = trace.SynthMix(*seed)
	case "custom":
		cfg := trace.DefaultFBConfig(*seed)
		if *ports > 0 {
			cfg.NumPorts = *ports
		} else {
			cfg.NumPorts = 64
		}
		if *coflows > 0 {
			cfg.NumCoFlows = *coflows
		} else {
			cfg.NumCoFlows = 200
		}
		if *gap > 0 {
			cfg.MeanInterArrival = coflow.Time(gap.Microseconds()) * coflow.Microsecond
		} else {
			cfg.MeanInterArrival = 100 * coflow.Millisecond
		}
		tr = trace.Synthesize(cfg, "custom")
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	if *summary {
		s := trace.Summarize(tr)
		fmt.Fprintf(os.Stderr,
			"%s: %d coflows / %d ports / %.1f GB; single=%.0f%% equal=%.0f%% unequal=%.0f%%; max width %d\n",
			tr.Name, s.NumCoFlows, s.NumPorts, float64(s.TotalBytes)/float64(coflow.GB),
			100*s.SingleFrac, 100*s.EqualFrac, 100*s.UnequalFrac, s.MaxWidth)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fatal(err)
	}
}

// fanConfig overlays the non-default flags onto a family default;
// values the generator cannot satisfy are reported by the generator's
// own validation (see trace.FanConfig.Validate).
func fanConfig(cfg trace.FanConfig, ports, coflows int, gap time.Duration, degree int, skew float64, hotspots int) trace.FanConfig {
	if ports > 0 {
		cfg.NumPorts = ports
	}
	if coflows > 0 {
		cfg.NumCoFlows = coflows
	}
	if gap > 0 {
		cfg.MeanInterArrival = coflow.Time(gap.Microseconds()) * coflow.Microsecond
	}
	if degree > 0 {
		cfg.Degree = degree
	}
	if skew >= 0 {
		cfg.Skew = skew
	}
	if hotspots >= 0 {
		cfg.Hotspots = hotspots
	}
	return cfg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
