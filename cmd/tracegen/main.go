// tracegen synthesizes CoFlow workloads in the coflow-benchmark trace
// format (the format of the public Facebook trace).
//
// Usage:
//
//	tracegen -kind fb -seed 1 -out fb.txt
//	tracegen -kind custom -ports 64 -coflows 300 -gap 50ms -out my.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"saath/internal/coflow"
	"saath/internal/trace"
)

func main() {
	var (
		kind    = flag.String("kind", "fb", `workload family: "fb", "osp", or "custom"`)
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "-", `output path ("-" for stdout)`)
		ports   = flag.Int("ports", 64, "[custom] cluster size")
		coflows = flag.Int("coflows", 200, "[custom] number of coflows")
		gap     = flag.Duration("gap", 100*time.Millisecond, "[custom] mean inter-arrival")
		summary = flag.Bool("summary", false, "print workload statistics to stderr")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *kind {
	case "fb":
		tr = trace.SynthFB(*seed)
	case "osp":
		tr = trace.SynthOSP(*seed)
	case "custom":
		cfg := trace.DefaultFBConfig(*seed)
		cfg.NumPorts = *ports
		cfg.NumCoFlows = *coflows
		cfg.MeanInterArrival = coflow.Time(gap.Microseconds()) * coflow.Microsecond
		tr = trace.Synthesize(cfg, "custom")
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	if *summary {
		s := trace.Summarize(tr)
		fmt.Fprintf(os.Stderr,
			"%s: %d coflows / %d ports / %.1f GB; single=%.0f%% equal=%.0f%% unequal=%.0f%%; max width %d\n",
			tr.Name, s.NumCoFlows, s.NumPorts, float64(s.TotalBytes)/float64(coflow.GB),
			100*s.SingleFrac, 100*s.EqualFrac, 100*s.UnequalFrac, s.MaxWidth)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
