// saath-sim replays a CoFlow trace under one or more scheduling
// policies and reports per-policy CCT statistics and speedups.
//
// Usage:
//
//	saath-sim -trace fb -sched saath,aalo
//	saath-sim -trace path/to/trace.txt -sched saath,varys -delta 8ms
//
// The -trace flag accepts "fb" (synthetic Facebook-like), "osp"
// (synthetic OSP-like), or a path to a file in the coflow-benchmark
// format. When more than one scheduler is given, the first is the
// baseline for speedup reporting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"saath/internal/coflow"
	"saath/internal/report"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/stats"
	"saath/internal/trace"

	_ "saath/internal/core"
	_ "saath/internal/sched/aalo"
	_ "saath/internal/sched/clair"
	_ "saath/internal/sched/uctcp"
	_ "saath/internal/sched/varys"
)

func main() {
	var (
		traceArg = flag.String("trace", "fb", `workload: "fb", "osp", or a coflow-benchmark file path`)
		seed     = flag.Int64("seed", 1, "seed for synthetic workloads")
		scheds   = flag.String("sched", "aalo,saath", "comma-separated schedulers; first is the speedup baseline")
		delta    = flag.Duration("delta", 8*time.Millisecond, "schedule recomputation interval δ")
		rateGbps = flag.Float64("rate", 1.0, "per-port rate in Gbps")
		arrival  = flag.Float64("A", 1.0, "arrival-time speedup factor (Fig 14d); 2 = arrivals 2x faster")
		start    = flag.String("S", "", `start queue threshold, e.g. "100MB" (default 10MB)`)
		growth   = flag.Float64("E", 10, "queue threshold growth factor")
		queues   = flag.Int("K", 10, "number of priority queues")
		deadline = flag.Float64("d", 2, "starvation deadline factor")
		list     = flag.Bool("list", false, "list registered schedulers and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range sched.Names() {
			fmt.Println(n)
		}
		return
	}

	tr, err := loadTrace(*traceArg, *seed)
	if err != nil {
		fatal(err)
	}
	if *arrival != 1 {
		tr.ScaleArrivals(1 / *arrival)
	}

	params := sched.DefaultParams()
	params.Queues.NumQueues = *queues
	params.Queues.Growth = *growth
	params.DeadlineFactor = *deadline
	if *start != "" {
		b, err := parseBytes(*start)
		if err != nil {
			fatal(err)
		}
		params.Queues.StartThreshold = b
	}
	cfg := sim.Config{
		Delta:    coflow.Time(delta.Microseconds()) * coflow.Microsecond,
		PortRate: coflow.GbpsRate(*rateGbps),
	}

	summary := trace.Summarize(tr)
	fmt.Printf("trace %s: %d coflows, %d ports, %.1f GB total, mean width %.1f\n",
		tr.Name, summary.NumCoFlows, summary.NumPorts,
		float64(summary.TotalBytes)/float64(coflow.GB), summary.MeanWidth)

	names := strings.Split(*scheds, ",")
	results := make(map[string]*sim.Result, len(names))
	tbl := &report.Table{
		Title:   "per-scheduler CCT",
		Headers: []string{"scheduler", "avg cct (s)", "p50 (s)", "p90 (s)", "makespan (s)", "sched mean", "sched p90"},
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		s, err := sched.New(name, params)
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(tr.Clone(), s, cfg)
		if err != nil {
			fatal(err)
		}
		results[name] = res
		ccts := make([]float64, len(res.CoFlows))
		for i, c := range res.CoFlows {
			ccts[i] = c.CCT.Seconds()
		}
		tbl.AddRow(name,
			fmt.Sprintf("%.3f", res.AvgCCT()),
			fmt.Sprintf("%.3f", stats.Percentile(ccts, 50)),
			fmt.Sprintf("%.3f", stats.Percentile(ccts, 90)),
			fmt.Sprintf("%.1f", res.Makespan.Seconds()),
			res.Sched.Mean().String(),
			res.Sched.P90().String())
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}

	if len(names) > 1 {
		base := results[strings.TrimSpace(names[0])]
		sp := &report.Table{
			Title:   fmt.Sprintf("per-coflow speedup over %s", names[0]),
			Headers: []string{"scheduler", "p10", "median", "p90", "mean"},
		}
		for _, name := range names[1:] {
			name = strings.TrimSpace(name)
			s := stats.Summarize(stats.Speedups(base.CCTByID(), results[name].CCTByID()))
			sp.AddRow(name,
				fmt.Sprintf("%.2f", s.P10), fmt.Sprintf("%.2f", s.Median),
				fmt.Sprintf("%.2f", s.P90), fmt.Sprintf("%.2f", s.Mean))
		}
		if err := sp.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func loadTrace(arg string, seed int64) (*trace.Trace, error) {
	switch arg {
	case "fb":
		return trace.SynthFB(seed), nil
	case "osp":
		return trace.SynthOSP(seed), nil
	default:
		return trace.ParseFile(arg)
	}
}

func parseBytes(s string) (coflow.Bytes, error) {
	var v float64
	var unit string
	if _, err := fmt.Sscanf(s, "%f%s", &v, &unit); err != nil {
		return 0, fmt.Errorf("bad size %q (want e.g. 100MB)", s)
	}
	switch strings.ToUpper(unit) {
	case "KB":
		return coflow.Bytes(v * float64(coflow.KB)), nil
	case "MB":
		return coflow.Bytes(v * float64(coflow.MB)), nil
	case "GB":
		return coflow.Bytes(v * float64(coflow.GB)), nil
	case "TB":
		return coflow.Bytes(v * float64(coflow.TB)), nil
	default:
		return 0, fmt.Errorf("unknown unit %q", unit)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saath-sim:", err)
	os.Exit(1)
}
