// saath-sim replays a CoFlow trace under one or more scheduling
// policies and reports per-policy CCT statistics and speedups. The
// scheduler × seed grid fans out over a bounded worker pool; output is
// identical at any -parallel setting.
//
// Usage:
//
//	saath-sim -trace fb -sched saath,aalo
//	saath-sim -trace path/to/trace.txt -sched saath,varys -delta 8ms
//	saath-sim -trace osp -sched aalo,saath -seed 1,2,3 -parallel 8
//	saath-sim -trace fb -json results.json
//
// The -trace flag accepts "fb" (synthetic Facebook-like), "osp"
// (synthetic OSP-like), "incast" / "broadcast" (synthetic fan-in /
// fan-out hotspot workloads), or a path to a file in the
// coflow-benchmark format. When more than one scheduler is given, the
// first is the baseline for speedup reporting. -seed takes a
// comma-separated list: synthetic workloads are regenerated per seed
// and statistics pool across the draws.
//
// -metrics streams per-interval telemetry (queue occupancy, fabric
// utilization, head-of-line blocking, contention histograms) out of
// every simulation, prints a condensed table, and -metrics-out exports
// the full series as JSON (or CSV with a .csv path). The export is
// byte-identical at any -parallel setting:
//
//	saath-sim -trace incast -sched aalo,saath -metrics -metrics-out m.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/sweep"
	"saath/internal/telemetry"
	"saath/internal/trace"

	_ "saath/internal/core"
	_ "saath/internal/sched/aalo"
	_ "saath/internal/sched/clair"
	_ "saath/internal/sched/uctcp"
	_ "saath/internal/sched/varys"
)

func main() {
	var (
		traceArg = flag.String("trace", "fb", `workload: "fb", "osp", or a coflow-benchmark file path`)
		seeds    = flag.String("seed", "1", "comma-separated seeds; each regenerates the synthetic workload")
		scheds   = flag.String("sched", "aalo,saath", "comma-separated schedulers; first is the speedup baseline")
		delta    = flag.Duration("delta", 8*time.Millisecond, "schedule recomputation interval δ")
		rateGbps = flag.Float64("rate", 1.0, "per-port rate in Gbps")
		arrival  = flag.Float64("A", 1.0, "arrival-time speedup factor (Fig 14d); 2 = arrivals 2x faster")
		start    = flag.String("S", "", `start queue threshold, e.g. "100MB" (default 10MB)`)
		growth   = flag.Float64("E", 10, "queue threshold growth factor")
		queues   = flag.Int("K", 10, "number of priority queues")
		deadline = flag.Float64("d", 2, "starvation deadline factor")
		parallel = flag.Int("parallel", runtime.NumCPU(), "simulation worker pool size")
		jsonPath = flag.String("json", "", `write per-run results as JSON to this file ("-" for stdout)`)
		progress = flag.Bool("progress", false, "print each job completion to stderr")
		list     = flag.Bool("list", false, "list registered schedulers and exit")

		metrics     = flag.Bool("metrics", false, "collect per-interval telemetry (queue occupancy, contention histograms)")
		metricsStep = flag.Duration("metrics-interval", 0, "telemetry sampling interval (rounded to a multiple of δ; 0 = every interval)")
		metricsOut  = flag.String("metrics-out", "", `write per-job telemetry to this path (.csv for CSV, otherwise JSON; "-" for stdout); implies -metrics`)
	)
	flag.Parse()

	if *list {
		for _, n := range sched.Names() {
			fmt.Println(n)
		}
		return
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fatal(err)
	}

	params := sched.DefaultParams()
	params.Queues.NumQueues = *queues
	params.Queues.Growth = *growth
	params.DeadlineFactor = *deadline
	if *start != "" {
		b, err := parseBytes(*start)
		if err != nil {
			fatal(err)
		}
		params.Queues.StartThreshold = b
	}
	cfg := sim.Config{
		Delta:    coflow.Time(delta.Microseconds()) * coflow.Microsecond,
		PortRate: coflow.GbpsRate(*rateGbps),
	}

	// Describe the workload using the first seed's draw.
	first, err := loadTrace(*traceArg, seedList[0])
	if err != nil {
		fatal(err)
	}
	if *arrival != 1 {
		first.ScaleArrivals(1 / *arrival)
	}
	summary := trace.Summarize(first)
	fmt.Printf("trace %s: %d coflows, %d ports, %.1f GB total, mean width %.1f\n",
		first.Name, summary.NumCoFlows, summary.NumPorts,
		float64(summary.TotalBytes)/float64(coflow.GB), summary.MeanWidth)

	var names []string
	for _, n := range strings.Split(*scheds, ",") {
		names = append(names, strings.TrimSpace(n))
	}

	var source sweep.TraceSource
	if isSynthetic(*traceArg) {
		source = sweep.SynthSource(first.Name, func(seed int64) *trace.Trace {
			tr, _ := loadTrace(*traceArg, seed) // synthetic: cannot fail
			if *arrival != 1 {
				tr.ScaleArrivals(1 / *arrival)
			}
			return tr
		})
	} else {
		// A file trace is one fixed workload: extra seeds would just
		// replay identical simulations and triple-count the pooled
		// statistics, so collapse the seed list.
		if len(seedList) > 1 {
			fmt.Fprintf(os.Stderr, "saath-sim: %s is a fixed trace; ignoring extra seeds %v\n",
				*traceArg, seedList[1:])
			seedList = seedList[:1]
		}
		source = sweep.FixedTrace(first)
	}
	grid := sweep.Grid{
		Traces:     []sweep.TraceSource{source},
		Schedulers: names,
		Seeds:      seedList,
		Params:     params,
		Config:     cfg,
	}
	if *metricsOut != "" {
		*metrics = true
	}
	if *metrics {
		grid.Telemetry = telemetry.Spec{Enabled: true, Stride: metricsStride(*metricsStep, cfg.Delta)}
	}
	jobs := grid.Jobs()

	agg := sweep.NewSummary()
	opts := sweep.Options{Parallel: *parallel, Collectors: []sweep.Collector{agg}}
	if *progress {
		opts.Progress = sweep.ProgressPrinter(os.Stderr)
	}
	res := sweep.Run(context.Background(), jobs, opts)
	fmt.Printf("%d/%d simulations in %.1fs (-parallel %d)\n",
		res.Completed(), len(jobs), res.Elapsed.Seconds(), *parallel)
	for _, jr := range res.Failed() {
		fmt.Fprintln(os.Stderr, "saath-sim:", jr.Err)
	}

	if err := agg.CCTTable("per-scheduler CCT").Render(os.Stdout); err != nil {
		fatal(err)
	}
	if len(names) > 1 {
		title := fmt.Sprintf("per-coflow speedup over %s", names[0])
		if err := agg.SpeedupTable(title, names[0]).Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *metrics {
		if err := agg.TelemetryTable("telemetry (per-interval)").Render(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *jsonPath != "" {
		if err := exportJSON(*jsonPath, agg); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := exportMetrics(*metricsOut, agg); err != nil {
			fatal(err)
		}
	}
	if res.FirstErr() != nil {
		os.Exit(1)
	}
}

// exportJSON writes the aggregate to path ("-" for stdout),
// propagating the Close error so a failed flush cannot exit 0.
func exportJSON(path string, agg *sweep.Summary) error {
	if path == "-" {
		return agg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = agg.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// exportMetrics writes the per-job telemetry to path: CSV when the
// path ends in .csv, JSON otherwise ("-" for JSON on stdout).
func exportMetrics(path string, agg *sweep.Summary) error {
	write := agg.WriteMetricsJSON
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		write = agg.WriteMetricsCSV
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// metricsStride converts the -metrics-interval duration into a
// sampling stride in δ units (at least 1).
func metricsStride(step time.Duration, delta coflow.Time) int {
	if step <= 0 || delta <= 0 {
		return 1
	}
	stride := int((coflow.Time(step.Microseconds())*coflow.Microsecond + delta - 1) / delta)
	if stride < 1 {
		stride = 1
	}
	return stride
}

// isSynthetic reports whether the -trace argument names a seeded
// synthetic family (regenerated per sweep seed) rather than a file.
func isSynthetic(arg string) bool {
	switch arg {
	case "fb", "osp", "incast", "broadcast":
		return true
	}
	return false
}

// parseSeeds parses a comma-separated seed list.
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func loadTrace(arg string, seed int64) (*trace.Trace, error) {
	switch arg {
	case "fb":
		return trace.SynthFB(seed), nil
	case "osp":
		return trace.SynthOSP(seed), nil
	case "incast":
		return trace.SynthIncast(seed), nil
	case "broadcast":
		return trace.SynthBroadcast(seed), nil
	default:
		return trace.ParseFile(arg)
	}
}

func parseBytes(s string) (coflow.Bytes, error) {
	var v float64
	var unit string
	if _, err := fmt.Sscanf(s, "%f%s", &v, &unit); err != nil {
		return 0, fmt.Errorf("bad size %q (want e.g. 100MB)", s)
	}
	switch strings.ToUpper(unit) {
	case "KB":
		return coflow.Bytes(v * float64(coflow.KB)), nil
	case "MB":
		return coflow.Bytes(v * float64(coflow.MB)), nil
	case "GB":
		return coflow.Bytes(v * float64(coflow.GB)), nil
	case "TB":
		return coflow.Bytes(v * float64(coflow.TB)), nil
	default:
		return 0, fmt.Errorf("unknown unit %q", unit)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saath-sim:", err)
	os.Exit(1)
}
