// saath-sim replays a CoFlow trace under one or more scheduling
// policies and reports per-policy CCT statistics and speedups. The
// scheduler × seed grid is declared as an internal/study Study and
// fans out over a bounded worker pool; output is identical at any
// -parallel setting.
//
// Usage:
//
//	saath-sim -trace fb -sched saath,aalo
//	saath-sim -trace path/to/trace.txt -sched saath,varys -delta 8ms
//	saath-sim -trace osp -sched aalo,saath -seed 1,2,3 -parallel 8
//	saath-sim -trace fb -json results.json
//	saath-sim -trace fb -sched saath -engine event
//
// The -trace flag accepts "fb" (synthetic Facebook-like), "osp"
// (synthetic OSP-like), "incast" / "broadcast" (synthetic fan-in /
// fan-out hotspot workloads), "mix" (fb and incast deterministically
// interleaved, see trace.SynthMix), or a path to a file in the
// coflow-benchmark format. When more than one scheduler is given, the
// first is the baseline for speedup reporting. -seed takes a
// comma-separated list: synthetic workloads are regenerated per seed
// and statistics pool across the draws.
//
// -metrics streams per-interval telemetry (queue occupancy, fabric
// utilization, head-of-line blocking, contention histograms,
// queue-transition counters against the configured K/S/E ladder, and
// per-port occupancy heatmaps) out of every simulation, prints the
// condensed tables, and -metrics-out exports the full series as JSON
// (or CSV with a .csv path). The export is byte-identical at any
// -parallel setting:
//
//	saath-sim -trace incast -sched aalo,saath -metrics -metrics-out m.json
//
// -study runs a named study from the built-in catalog (-studies lists
// them) instead of the flag-built grid, rendering its derived tables.
//
// Observability (internal/obs) is out-of-band: none of these flags
// changes a single byte of the study output. -observe appends the
// capacity report — per-cell throughput/latency plus saturation-knee
// detection over any numeric load axis — to whatever ran (or merged);
// the one-command capacity answer is:
//
//	saath-sim -study capacity -observe
//
// -obs-out writes the run's execution manifest (per-job phase spans
// and engine introspection counters) as JSON. -progress prints a
// throttled aggregate line (done/total, jobs/s, ETA, per-variant
// completion) rather than one line per job. -cpuprofile, -memprofile
// and -runtime-trace capture the standard Go profiles of the whole
// run.
//
// -engine selects the simulation run loop: "tick" replays the fixed-δ
// synchronous loop, "event" the discrete-event engine that skips idle
// gaps. The two are byte-identical by contract (see internal/sim), so
// the flag only changes wall-clock time; it applies to flag-built
// grids and named studies alike, and shard dumps produced under either
// engine merge interchangeably.
//
// Any study — flag-built or named — shards across processes: -shard
// i/n simulates only the i-th of n stripes of the grid and writes a
// mergeable partial dump into -out; -merge reads the dumps back (run
// with the SAME workload/scheduler flags or -study name) and renders
// output byte-identical to the unsharded run:
//
//	saath-sim -trace fb -seed 1,2 -shard 0/2 -out shards   # machine A
//	saath-sim -trace fb -seed 1,2 -shard 1/2 -out shards   # machine B
//	saath-sim -trace fb -seed 1,2 -merge shards            # anywhere
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"saath/internal/coflow"
	"saath/internal/fleet"
	"saath/internal/obs"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/study"
	"saath/internal/sweep"
	"saath/internal/telemetry"
	"saath/internal/trace"

	_ "saath/internal/core"
	_ "saath/internal/sched/aalo"
	_ "saath/internal/sched/clair"
	_ "saath/internal/sched/uctcp"
	_ "saath/internal/sched/varys"
	_ "saath/internal/testbed" // registers the testbed runner + its studies
)

func main() {
	var (
		traceArg = flag.String("trace", "fb", `workload: "fb", "osp", "incast", "broadcast", "mix", or a coflow-benchmark file path`)
		seeds    = flag.String("seed", "1", "comma-separated seeds; each regenerates the synthetic workload")
		scheds   = flag.String("sched", "aalo,saath", "comma-separated schedulers; first is the speedup baseline")
		delta    = flag.Duration("delta", 8*time.Millisecond, "schedule recomputation interval δ")
		rateGbps = flag.Float64("rate", 1.0, "per-port rate in Gbps")
		arrival  = flag.Float64("A", 1.0, "arrival-time speedup factor (Fig 14d); 2 = arrivals 2x faster")
		start    = flag.String("S", "", `start queue threshold, e.g. "100MB" (default 10MB)`)
		growth   = flag.Float64("E", 10, "queue threshold growth factor")
		queues   = flag.Int("K", 10, "number of priority queues")
		deadline = flag.Float64("d", 2, "starvation deadline factor")
		engine   = flag.String("engine", "", `run loop: "tick" or "event" (default: as the study declares; results are identical)`)
		parallel = flag.Int("parallel", runtime.NumCPU(), "simulation worker pool size")
		jsonPath = flag.String("json", "", `write per-run results as JSON to this file ("-" for stdout)`)
		progress = flag.Bool("progress", false, "print a throttled aggregate progress line to stderr")
		list     = flag.Bool("list", false, "list registered schedulers and exit")

		observe = flag.Bool("observe", false, "append the capacity report (throughput per cell, saturation knee, sustainable load)")
		obsOut  = flag.String("obs-out", "", `write the run's observability manifest (per-job spans + engine counters) as JSON ("-" for stdout)`)

		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this path (captured at exit, after GC)")
		runtimeTrace = flag.String("runtime-trace", "", "write a Go runtime execution trace to this path")

		metrics     = flag.Bool("metrics", false, "collect per-interval telemetry (queue occupancy, contention histograms)")
		metricsStep = flag.Duration("metrics-interval", 0, "telemetry sampling interval (rounded to a multiple of δ; 0 = every interval)")
		metricsOut  = flag.String("metrics-out", "", `write per-job telemetry to this path (.csv for CSV, otherwise JSON; "-" for stdout); implies -metrics`)

		studyName = flag.String("study", "", "run a registered study from the catalog instead of the flag-built grid (see -studies)")
		studies   = flag.Bool("studies", false, "list registered studies and exit")
		shardArg  = flag.String("shard", "", `simulate only shard i of n ("i/n") and write a mergeable dump into -out`)
		outDir    = flag.String("out", "shards", "directory -shard writes its partial dump into")
		mergeDir  = flag.String("merge", "", "merge shard dumps from this directory (same flags / -study as the shard runs) instead of simulating")

		shardStream = flag.Bool("shard-stream", false, "with -shard: run as a fleet worker, streaming wire events (hello/progress/dump) on stdout instead of writing a dump file")
	)
	flag.Parse()

	// Graceful shutdown: SIGINT/SIGTERM cancels the sweep; completed
	// jobs still flush (partial -obs-out manifest, profiles) and the
	// process exits non-zero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *list {
		for _, n := range sched.Names() {
			fmt.Println(n)
		}
		return
	}
	if *studies {
		for _, n := range study.Names() {
			fmt.Printf("%-20s %s\n", n, study.Describe(n))
		}
		return
	}
	if *metricsOut != "" {
		*metrics = true
	}
	stop, perr := obs.Profiles{CPU: *cpuProfile, Mem: *memProfile, Trace: *runtimeTrace}.Start()
	if perr != nil {
		fatal(perr)
	}
	stopProfiles = stop

	var (
		st      *study.Study
		fromCLI bool
		err     error
	)
	if *studyName != "" {
		st, err = study.Build(*studyName)
		if err != nil {
			fatal(err)
		}
		if *engine != "" {
			m, err := sim.ParseMode(*engine)
			if err != nil {
				fatal(err)
			}
			st = st.InEngineMode(m)
		}
	} else {
		fromCLI = true
		st, err = studyFromFlags(flagGrid{
			traceArg: *traceArg, seeds: *seeds, scheds: *scheds,
			delta: *delta, rateGbps: *rateGbps, arrival: *arrival,
			start: *start, growth: *growth, queues: *queues, deadline: *deadline,
			engine:  *engine,
			metrics: *metrics, metricsStep: *metricsStep,
			describe: *mergeDir == "", // the banner line, skipped when only merging
		})
		if err != nil {
			fatal(err)
		}
	}

	// Merge mode: no simulation — reassemble shard dumps and render
	// exactly what the unsharded run would have.
	if *mergeDir != "" {
		if *obsOut != "" {
			fmt.Fprintln(os.Stderr, "saath-sim: -obs-out needs a live run; merge only reassembles dumps")
		}
		res, err := study.MergeShardDir(st, *mergeDir)
		if err != nil {
			fatal(err)
		}
		render(res, fromCLI, *metrics, *observe, *jsonPath, *metricsOut)
		if res.Err() != nil {
			exit(1)
		}
		exit(0)
	}

	var observer *obs.Recorder
	if *obsOut != "" {
		observer = obs.NewRecorder(st.Name())
	}
	// newRunner builds the study's execution backend — the in-process
	// Pool by default, the coordinator-backed testbed when the study
	// declares it (WithRunner).
	newRunner := func(progress sweep.ProgressFunc) study.Runner {
		r, err := study.NewRunnerFor(st, study.RunnerOpts{
			Parallel: *parallel, Progress: progress, Observer: observer,
		})
		if err != nil {
			fatal(err)
		}
		return r
	}

	// Fleet worker mode: stream the shard's wire events on stdout for a
	// saath-fleet driver (engine mode is already applied to st above).
	if *shardStream {
		if *shardArg == "" {
			fatal(fmt.Errorf("-shard-stream requires -shard i/n"))
		}
		sh, err := study.ParseShard(*shardArg)
		if err != nil {
			fatal(err)
		}
		if err := fleet.StreamShard(ctx, st, sh, fleet.StreamOptions{Parallel: *parallel}, os.Stdout); err != nil {
			fatal(err)
		}
		exit(0)
	}

	// Shard mode: simulate this stripe only and write the dump.
	if *shardArg != "" {
		sh, err := study.ParseShard(*shardArg)
		if err != nil {
			fatal(err)
		}
		if *jsonPath != "" || *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "saath-sim: -json/-metrics-out apply to the full study; export them from the -merge run")
		}
		runner := newRunner(sweep.CLIProgress(*progress, os.Stderr, sh.Jobs(st.Jobs())))
		sh.Runner = runner
		res, err := st.Run(ctx, sh)
		if err != nil {
			fatal(err)
		}
		path, err := res.WriteShardFile(*outDir, sh)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("shard %d/%d: %d/%d jobs in %.1fs -> %s\n",
			sh.Index, sh.Count, res.Sweep().Completed(), len(res.Sweep().Jobs),
			res.Sweep().Elapsed.Seconds(), path)
		for _, jr := range res.Sweep().Failed() {
			fmt.Fprintln(os.Stderr, "saath-sim:", jr.Err)
		}
		if *obsOut != "" {
			if err := writeManifest(*obsOut, observer); err != nil {
				fatal(err)
			}
		}
		printRuntime(runner)
		if res.Err() != nil {
			exit(1)
		}
		exit(0)
	}

	runner := newRunner(sweep.CLIProgress(*progress, os.Stderr, st.Jobs()))
	res, err := st.Run(ctx, runner)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d/%d simulations in %.1fs (-parallel %d)\n",
		res.Sweep().Completed(), len(res.Sweep().Jobs), res.Sweep().Elapsed.Seconds(), *parallel)
	for _, jr := range res.Sweep().Failed() {
		fmt.Fprintln(os.Stderr, "saath-sim:", jr.Err)
	}
	// Flush the manifest before rendering: an interrupted run keeps its
	// partial observability even when table assembly can't proceed.
	if *obsOut != "" {
		if err := writeManifest(*obsOut, observer); err != nil {
			fatal(err)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "saath-sim: interrupted; partial manifest and profiles flushed, skipping tables")
		exit(1)
	}
	render(res, fromCLI, *metrics, *observe, *jsonPath, *metricsOut)
	printRuntime(runner)
	if res.Err() != nil {
		exit(1)
	}
	exit(0)
}

// printRuntime renders the out-of-band coordinator measurements when
// the study ran on a measuring backend (the testbed runner). These
// are wall-clock numbers of this machine — informational, never part
// of the deterministic tables above.
func printRuntime(r study.Runner) {
	rr, ok := r.(study.RuntimeReporter)
	if !ok {
		return
	}
	rep := rr.RuntimeReport()
	if len(rep.Records) == 0 {
		return
	}
	fmt.Println()
	obs.RuntimeTable("coordinator runtime (wall-clock, out-of-band)", rep).Render(os.Stdout)
}

// flagGrid carries the flag values studyFromFlags compiles.
type flagGrid struct {
	traceArg, seeds, scheds string
	delta                   time.Duration
	rateGbps, arrival       float64
	start                   string
	growth, deadline        float64
	queues                  int
	engine                  string
	metrics                 bool
	metricsStep             time.Duration
	describe                bool
}

// studyFromFlags declares the CLI's ad-hoc grid as a Study, named
// after the workload so shard dumps from the same flag set find each
// other. The first scheduler becomes the study baseline when more than
// one is given (read it back with Study.Baseline).
func studyFromFlags(fg flagGrid) (*study.Study, error) {
	seedList, err := parseSeeds(fg.seeds)
	if err != nil {
		return nil, err
	}
	params := sched.DefaultParams()
	params.Queues.NumQueues = fg.queues
	params.Queues.Growth = fg.growth
	params.DeadlineFactor = fg.deadline
	if fg.start != "" {
		b, err := parseBytes(fg.start)
		if err != nil {
			return nil, err
		}
		params.Queues.StartThreshold = b
	}
	cfg := sim.Config{
		Delta:    coflow.Time(fg.delta.Microseconds()) * coflow.Microsecond,
		PortRate: coflow.GbpsRate(fg.rateGbps),
	}
	if fg.engine != "" {
		m, err := sim.ParseMode(fg.engine)
		if err != nil {
			return nil, err
		}
		cfg.Mode = m
	}

	// Describe the workload using the first seed's draw.
	first, err := loadTrace(fg.traceArg, seedList[0])
	if err != nil {
		return nil, err
	}
	if fg.arrival != 1 {
		first.ScaleArrivals(1 / fg.arrival)
	}
	if fg.describe {
		summary := trace.Summarize(first)
		fmt.Printf("trace %s: %d coflows, %d ports, %.1f GB total, mean width %.1f\n",
			first.Name, summary.NumCoFlows, summary.NumPorts,
			float64(summary.TotalBytes)/float64(coflow.GB), summary.MeanWidth)
	}

	var names []string
	for _, n := range strings.Split(fg.scheds, ",") {
		names = append(names, strings.TrimSpace(n))
	}

	// The grid name carries the arrival factor: it is the one flag
	// applied inside the trace generator (invisible to params/config),
	// so putting it in the trace name lands it in every Job.Key and
	// thus in the shard fingerprint — a -A drift between shard runs
	// fails the merge instead of silently mixing workloads.
	gridName := first.Name
	if fg.arrival != 1 {
		gridName = fmt.Sprintf("%s@A=%g", first.Name, fg.arrival)
	}

	var source sweep.TraceSource
	if isSynthetic(fg.traceArg) {
		arrival := fg.arrival
		traceArg := fg.traceArg
		source = sweep.SynthSource(gridName, func(seed int64) *trace.Trace {
			tr, _ := loadTrace(traceArg, seed) // synthetic: cannot fail
			if arrival != 1 {
				tr.ScaleArrivals(1 / arrival)
			}
			return tr
		})
	} else {
		// A file trace is one fixed workload: extra seeds would just
		// replay identical simulations and triple-count the pooled
		// statistics, so collapse the seed list.
		if len(seedList) > 1 {
			fmt.Fprintf(os.Stderr, "saath-sim: %s is a fixed trace; ignoring extra seeds %v\n",
				fg.traceArg, seedList[1:])
			seedList = seedList[:1]
		}
		source = sweep.FixedTrace(first)
		source.Name = gridName
	}
	opts := []study.Option{
		study.WithTraces(source),
		study.WithSchedulers(names...),
		study.WithSeeds(seedList...),
		study.WithParams(params),
		study.WithSimConfig(cfg),
	}
	if fg.metrics {
		opts = append(opts, study.WithTelemetry(telemetry.Spec{
			Enabled: true,
			Stride:  metricsStride(fg.metricsStep, cfg.Delta),
			// Observe queue transitions against the ladder the CLI's
			// K/S/E flags configure (Aalo's total-bytes placement, the
			// paper's Fig. 4 baseline view), plus the per-port heatmaps.
			QueueTransitions: true,
			TransitionQueues: params.Queues,
			PortHeatmap:      true,
		}))
	}
	if len(names) > 1 {
		opts = append(opts, study.WithBaseline(names[0]))
	}
	st, err := study.New(gridName, opts...)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// render prints the study's tables and writes the requested exports.
// Flag-built grids keep the CLI's classic table set; named studies
// render their own derived tables; -observe appends the capacity
// report to either.
func render(res *study.Result, fromCLI bool, metrics, observe bool, jsonPath, metricsOut string) {
	agg := res.Summary()
	if fromCLI {
		if err := agg.CCTTable("per-scheduler CCT").Render(os.Stdout); err != nil {
			fatal(err)
		}
		if baseline := res.Study().Baseline(); baseline != "" {
			title := fmt.Sprintf("per-coflow speedup over %s", baseline)
			if err := agg.SpeedupTable(title, baseline).Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if metrics {
			if err := agg.TelemetryTable("telemetry (per-interval)").Render(os.Stdout); err != nil {
				fatal(err)
			}
			if err := agg.QueueTransitionTable("queue transitions (Fig. 4-style)").Render(os.Stdout); err != nil {
				fatal(err)
			}
			if err := agg.PortHeatmapTable("per-port occupancy heatmap (hottest ports)", 8).Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
	} else {
		tables, err := res.Tables()
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
	if observe {
		for _, t := range obs.CapacityReport(res.Study().Name(), agg.CapacityCells(), 0) {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
	if jsonPath != "" {
		if err := exportJSON(jsonPath, agg); err != nil {
			fatal(err)
		}
	}
	if metricsOut != "" {
		if err := exportMetrics(metricsOut, agg); err != nil {
			fatal(err)
		}
	}
}

// writeManifest exports the observability manifest collected by rec
// ("-" for stdout).
func writeManifest(path string, rec *obs.Recorder) error {
	m := rec.Manifest()
	if path == "-" {
		return m.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = m.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// exportJSON writes the aggregate to path ("-" for stdout),
// propagating the Close error so a failed flush cannot exit 0.
func exportJSON(path string, agg *sweep.Summary) error {
	if path == "-" {
		return agg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = agg.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// exportMetrics writes the per-job telemetry to path: CSV when the
// path ends in .csv, JSON otherwise ("-" for JSON on stdout).
func exportMetrics(path string, agg *sweep.Summary) error {
	write := agg.WriteMetricsJSON
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		write = agg.WriteMetricsCSV
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// metricsStride converts the -metrics-interval duration into a
// sampling stride in δ units (at least 1).
func metricsStride(step time.Duration, delta coflow.Time) int {
	if step <= 0 || delta <= 0 {
		return 1
	}
	stride := int((coflow.Time(step.Microseconds())*coflow.Microsecond + delta - 1) / delta)
	if stride < 1 {
		stride = 1
	}
	return stride
}

// isSynthetic reports whether the -trace argument names a seeded
// synthetic family (regenerated per sweep seed) rather than a file.
func isSynthetic(arg string) bool {
	switch arg {
	case "fb", "osp", "incast", "broadcast", "mix":
		return true
	}
	return false
}

// parseSeeds parses a comma-separated seed list.
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func loadTrace(arg string, seed int64) (*trace.Trace, error) {
	switch arg {
	case "fb":
		return trace.SynthFB(seed), nil
	case "osp":
		return trace.SynthOSP(seed), nil
	case "incast":
		return trace.SynthIncast(seed), nil
	case "broadcast":
		return trace.SynthBroadcast(seed), nil
	case "mix":
		return trace.SynthMix(seed), nil
	default:
		return trace.ParseFile(arg)
	}
}

func parseBytes(s string) (coflow.Bytes, error) {
	var v float64
	var unit string
	if _, err := fmt.Sscanf(s, "%f%s", &v, &unit); err != nil {
		return 0, fmt.Errorf("bad size %q (want e.g. 100MB)", s)
	}
	switch strings.ToUpper(unit) {
	case "KB":
		return coflow.Bytes(v * float64(coflow.KB)), nil
	case "MB":
		return coflow.Bytes(v * float64(coflow.MB)), nil
	case "GB":
		return coflow.Bytes(v * float64(coflow.GB)), nil
	case "TB":
		return coflow.Bytes(v * float64(coflow.TB)), nil
	default:
		return 0, fmt.Errorf("unknown unit %q", unit)
	}
}

// stopProfiles flushes any -cpuprofile/-memprofile/-runtime-trace
// outputs; every exit path goes through exit() so the profiles survive
// os.Exit (which skips deferred calls).
var stopProfiles = func() error { return nil }

func exit(code int) {
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "saath-sim:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saath-sim:", err)
	exit(1)
}
