package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"saath/internal/coflow"
	"saath/internal/sim"
	"saath/internal/study"
)

func TestMetricsStride(t *testing.T) {
	delta := 8 * coflow.Millisecond
	cases := []struct {
		step time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1}, // sub-δ rounds up to every interval
		{8 * time.Millisecond, 1},
		{9 * time.Millisecond, 2},
		{80 * time.Millisecond, 10},
	}
	for _, tc := range cases {
		if got := metricsStride(tc.step, delta); got != tc.want {
			t.Errorf("metricsStride(%v, 8ms) = %d, want %d", tc.step, got, tc.want)
		}
	}
}

func TestIsSynthetic(t *testing.T) {
	for _, name := range []string{"fb", "osp", "incast", "broadcast", "mix"} {
		if !isSynthetic(name) {
			t.Errorf("isSynthetic(%q) = false", name)
		}
	}
	for _, name := range []string{"", "fb.txt", "trace/path"} {
		if isSynthetic(name) {
			t.Errorf("isSynthetic(%q) = true", name)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want coflow.Bytes
	}{
		{"10MB", 10 * coflow.MB},
		{"1.5GB", coflow.Bytes(1.5 * float64(coflow.GB))},
		{"512KB", 512 * coflow.KB},
		{"1TB", coflow.TB},
		{"2mb", 2 * coflow.MB}, // case-insensitive units
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "MB", "10", "10XB", "x10MB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) accepted", bad)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseSeeds = %v, %v", got, err)
	}
	for _, bad := range []string{"", "1,,2", "x"} {
		if _, err := parseSeeds(bad); err == nil {
			t.Errorf("parseSeeds(%q) accepted", bad)
		}
	}
}

func TestLoadTrace(t *testing.T) {
	fb, err := loadTrace("fb", 1)
	if err != nil || fb.NumPorts != 150 {
		t.Fatalf("fb: %v ports=%d", err, fb.NumPorts)
	}
	osp, err := loadTrace("osp", 1)
	if err != nil || osp.NumPorts != 100 {
		t.Fatalf("osp: %v", err)
	}
	incast, err := loadTrace("incast", 1)
	if err != nil || incast.NumPorts != 60 {
		t.Fatalf("incast: %v", err)
	}
	bcast, err := loadTrace("broadcast", 1)
	if err != nil || bcast.NumPorts != 60 {
		t.Fatalf("broadcast: %v", err)
	}
	mix, err := loadTrace("mix", 1)
	if err != nil || mix.NumPorts != 150 { // the FB component's port space
		t.Fatalf("mix: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(path, []byte("2 1\n0 0 1 0 1 1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	file, err := loadTrace(path, 0)
	if err != nil || len(file.Specs) != 1 {
		t.Fatalf("file: %v", err)
	}
	if _, err := loadTrace(filepath.Join(dir, "missing"), 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestStudyFromFlags: the CLI's ad-hoc grid compiles to a validated
// study with the flag semantics intact — seeds × schedulers expansion,
// first scheduler as baseline, telemetry spec threaded through.
func TestStudyFromFlags(t *testing.T) {
	st, err := studyFromFlags(flagGrid{
		traceArg: "fb", seeds: "1,2", scheds: "aalo,saath",
		delta: 8 * time.Millisecond, rateGbps: 1, arrival: 1,
		growth: 10, queues: 10, deadline: 2,
		metrics: true, metricsStep: 16 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Baseline() != "aalo" {
		t.Fatalf("baseline = %q", st.Baseline())
	}
	jobs := st.Jobs()
	if len(jobs) != 4 { // 2 seeds × 2 schedulers
		t.Fatalf("jobs = %d, want 4", len(jobs))
	}
	j := jobs[0]
	if !j.Telemetry.Enabled || j.Telemetry.Stride != 2 {
		t.Fatalf("telemetry spec = %+v", j.Telemetry)
	}
	// -metrics turns on the Fig. 4-style consumers, observing the
	// ladder the CLI's K/S/E flags configure.
	if !j.Telemetry.QueueTransitions || !j.Telemetry.PortHeatmap {
		t.Fatalf("spatial telemetry not enabled: %+v", j.Telemetry)
	}
	if j.Telemetry.TransitionQueues.NumQueues != 10 {
		t.Fatalf("transition ladder = %+v", j.Telemetry.TransitionQueues)
	}
	if j.Config.Delta != 8*coflow.Millisecond {
		t.Fatalf("delta = %v", j.Config.Delta)
	}

	// A typo'd scheduler fails at compile time, before any simulation.
	if _, err := studyFromFlags(flagGrid{
		traceArg: "fb", seeds: "1", scheds: "aalo,typo",
		delta: 8 * time.Millisecond, rateGbps: 1, arrival: 1,
		growth: 10, queues: 10, deadline: 2,
	}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}

	// The arrival factor lands in the study (and thus job-key /
	// shard-fingerprint) namespace: a -A drift between shard runs must
	// not merge.
	st2, err := studyFromFlags(flagGrid{
		traceArg: "fb", seeds: "1", scheds: "aalo,saath",
		delta: 8 * time.Millisecond, rateGbps: 1, arrival: 2,
		growth: 10, queues: 10, deadline: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Name() == st.Name() {
		t.Fatalf("arrival factor invisible in study name %q", st2.Name())
	}
	if got := st2.Jobs()[0].Trace; got != st2.Name() {
		t.Fatalf("trace name %q != study name %q", got, st2.Name())
	}
}

// TestEngineFlagRoundTrip drives the -engine flag through the CLI's
// study compiler end to end: the same flag set run with -engine tick,
// -engine event, and -engine event sharded 0/2 + 1/2 then merged must
// export byte-identical JSON and telemetry CSV. This is the CLI face
// of the engine equivalence contract.
func TestEngineFlagRoundTrip(t *testing.T) {
	base := flagGrid{
		traceArg: "incast", seeds: "1", scheds: "aalo,saath",
		delta: 8 * time.Millisecond, rateGbps: 1, arrival: 1,
		growth: 10, queues: 10, deadline: 2,
		metrics: true,
	}
	build := func(engine string) *study.Study {
		t.Helper()
		fg := base
		fg.engine = engine
		st, err := studyFromFlags(fg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	exports := func(res *study.Result) (string, string) {
		t.Helper()
		var js, csv bytes.Buffer
		if err := res.Summary().WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if err := res.Summary().WriteMetricsCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return js.String(), csv.String()
	}
	run := func(st *study.Study) *study.Result {
		t.Helper()
		res, err := st.Run(context.Background(), study.Pool{Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return res
	}

	// A bad -engine value fails at study-compile time, before any
	// simulation.
	fg := base
	fg.engine = "warp"
	if _, err := studyFromFlags(fg); err == nil {
		t.Fatal("unknown engine mode accepted")
	}

	// The flag lands on every job's simulator config.
	evSt := build("event")
	for _, j := range evSt.Jobs() {
		if j.Config.Mode != sim.ModeEvent {
			t.Fatalf("job %s: mode = %v, want event", j.Key(), j.Config.Mode)
		}
	}

	wantJS, wantCSV := exports(run(build("tick")))
	gotJS, gotCSV := exports(run(evSt))
	if gotJS != wantJS {
		t.Error("-engine event JSON export differs from -engine tick")
	}
	if gotCSV != wantCSV {
		t.Error("-engine event telemetry CSV differs from -engine tick")
	}

	// Event-mode shards merge back into the tick-mode whole: the shard
	// fingerprint deliberately excludes the mode.
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		sh := study.Sharded{Index: i, Count: 2, Pool: study.Pool{Parallel: 2}}
		res, err := evSt.Run(context.Background(), sh)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		if _, err := res.WriteShardFile(dir, sh); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := study.MergeShardDir(build("tick"), dir)
	if err != nil {
		t.Fatal(err)
	}
	mJS, mCSV := exports(merged)
	if mJS != wantJS || mCSV != wantCSV {
		t.Error("event-mode shard+merge exports differ from the tick-mode whole run")
	}
}
