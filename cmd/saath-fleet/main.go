// saath-fleet runs a registered study across a fleet of worker
// processes. It partitions the study's grid into striped shards,
// launches them on worker slots through the local-exec backend (a
// saath-sim binary per shard, results streamed back over stdout), and
// merges the dumps into output byte-identical to a single-process run
// — at any worker count, task partition, or retry history.
//
// Usage:
//
//	saath-fleet -study headline
//	saath-fleet -study headline -workers 8 -tasks 32
//	saath-fleet -study capacity -progress -obs-out fleet.json
//	saath-fleet -study headline -chaos kill=0 -stall 5s   # fault drill
//
// Robustness: each shard attempt runs under a deadline and a stall
// timeout (liveness judged by the worker's event stream); a failed
// attempt retries with bounded deterministic backoff, re-queued onto
// whichever surviving worker slot frees up first; a dump whose grid
// fingerprint does not match the driver's study is rejected as drift.
// The full per-shard attempt history — outcomes, retries, backoff,
// stragglers, schedule-latency summaries — lands in the obs manifest's
// "fleet" section (-obs-out).
//
// -chaos injects worker faults (kill=N, hang=N, corrupt=N, slow=N;
// comma-separated) on the first attempt of the named shard — drills
// for the recovery paths, recorded in the fleet report.
//
// -bin points at the worker executable; by default saath-fleet looks
// for saath-sim next to its own binary, then in PATH.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"saath/internal/fleet"
	"saath/internal/obs"
	"saath/internal/study"
	"saath/internal/sweep"

	_ "saath/internal/core"
	_ "saath/internal/sched/aalo"
	_ "saath/internal/sched/clair"
	_ "saath/internal/sched/uctcp"
	_ "saath/internal/sched/varys"
	_ "saath/internal/testbed" // register the testbed runner + studies
)

func main() {
	var (
		studyName = flag.String("study", "", "registered study to run (see -studies)")
		studies   = flag.Bool("studies", false, "list registered studies and exit")
		engine    = flag.String("engine", "", `worker run loop: "tick" or "event" (results are identical)`)

		workers  = flag.Int("workers", 4, "concurrent worker slots")
		tasks    = flag.Int("tasks", 0, "shard partition size (0 = 4x workers, capped at the grid)")
		wpar     = flag.Int("worker-parallel", 1, "in-process parallelism per worker")
		retries  = flag.Int("retries", 3, "max attempts per shard, including the first")
		backoff  = flag.Duration("backoff", 250*time.Millisecond, "base retry backoff (doubles per attempt, deterministic jitter)")
		deadline = flag.Duration("deadline", 10*time.Minute, "per-attempt wall-clock deadline")
		stall    = flag.Duration("stall", 30*time.Second, "kill an attempt with no wire event for this long")

		bin       = flag.String("bin", "", "worker executable (default: saath-sim next to this binary, then PATH)")
		chaosSpec = flag.String("chaos", "", "inject worker faults: kill=N,hang=N,corrupt=N,slow=N (shard N, first attempt)")
		slowDelay = flag.Duration("slow-delay", 20*time.Millisecond, "per-event delay for the slow chaos fault")

		progress = flag.Bool("progress", false, "print a throttled aggregate progress line to stderr")
		verbose  = flag.Bool("v", false, "narrate driver decisions (launches, retries, kills) to stderr")
		jsonPath = flag.String("json", "", `write the merged study aggregate as JSON ("-" for stdout)`)
		obsOut   = flag.String("obs-out", "", `write the fleet manifest (totals + per-shard attempt report) as JSON ("-" for stdout)`)
	)
	flag.Parse()

	if *studies {
		for _, n := range study.Names() {
			fmt.Printf("%-20s %s\n", n, study.Describe(n))
		}
		return
	}
	if *studyName == "" {
		fatal(fmt.Errorf("-study is required (fleet drives registered studies; -studies lists them)"))
	}
	st, err := study.Build(*studyName)
	if err != nil {
		fatal(err)
	}
	chaos, err := fleet.ParseChaos(*chaosSpec)
	if err != nil {
		fatal(err)
	}
	chaos.SlowDelay = *slowDelay
	workerBin, err := findWorker(*bin)
	if err != nil {
		fatal(err)
	}

	// Graceful shutdown: SIGINT/SIGTERM cancels the run; in-flight
	// workers are killed, the fleet report still flushes, exit is
	// non-zero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opts := fleet.Options{
		Backend:        &fleet.LocalExec{Bin: workerBin},
		Workers:        *workers,
		Tasks:          *tasks,
		MaxAttempts:    *retries,
		BackoffBase:    *backoff,
		Deadline:       *deadline,
		StallTimeout:   *stall,
		Engine:         *engine,
		WorkerParallel: *wpar,
		Chaos:          chaos,
	}
	if *progress {
		opts.Progress = sweep.NewProgressMeter(os.Stderr, 0)
		opts.Progress.SetJobs(st.Jobs())
	}
	if *verbose {
		opts.Log = os.Stderr
	}

	start := time.Now()
	out, runErr := fleet.Run(ctx, st, opts)
	// The report flushes even on failure — it is the forensics.
	if out != nil && *obsOut != "" {
		if err := writeManifest(*obsOut, out.Manifest(st.Name())); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}

	res := out.Result
	// res.Sweep() is nil for merged results — job count comes from the grid.
	fmt.Printf("study %s: %d jobs on %d workers (%d shards, %d retries) in %.1fs\n",
		st.Name(), len(st.Jobs()), out.Report.Workers, out.Report.Tasks,
		out.Report.Retries, time.Since(start).Seconds())
	if err := res.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "saath-fleet:", err)
	}
	tables, err := res.Tables()
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *jsonPath != "" {
		if err := exportJSON(*jsonPath, res); err != nil {
			fatal(err)
		}
	}
	if res.Err() != nil {
		os.Exit(1)
	}
}

// findWorker resolves the worker binary: explicit -bin, saath-sim next
// to this executable, then PATH.
func findWorker(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "saath-sim")
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if path, err := exec.LookPath("saath-sim"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("no worker binary: build saath-sim next to saath-fleet or pass -bin")
}

func writeManifest(path string, m *obs.Manifest) error {
	if path == "-" {
		return m.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = m.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func exportJSON(path string, res *study.Result) error {
	if path == "-" {
		return res.Summary().WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = res.Summary().WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saath-fleet:", err)
	os.Exit(1)
}
