// experiments regenerates every table and figure of the paper's
// evaluation. With -scale quick (default) the workloads are shrunk to
// run in seconds; -scale full uses the published trace dimensions.
//
// Usage:
//
//	experiments                        # all simulation figures, quick
//	experiments -only fig9,fig10       # a subset
//	experiments -testbed               # include the prototype (slow)
//	experiments -scale full            # published scale (minutes)
//	experiments -parallel 16 -progress # fan simulations out, show jobs
//	experiments -json out/             # also export tables as JSON
//
// Named studies from the internal/study catalog run with -study
// (-studies lists them) and shard across processes: -shard i/n
// simulates one stripe into a mergeable dump under -out, and -merge
// reassembles the dumps into output byte-identical to an unsharded
// run:
//
//	experiments -study headline -shard 0/2 -out shards
//	experiments -study headline -shard 1/2 -out shards
//	experiments -study headline -merge shards
//
// -engine picks the run loop for -study ("tick" or "event"); the two
// produce byte-identical output, so it only changes wall-clock time.
//
// Observability is out-of-band and never changes output bytes:
// -progress prints a throttled aggregate line (done/total, jobs/s,
// ETA, per-variant completion); -obs-out (with -study) writes the
// run's manifest of per-job phase spans and engine counters as JSON;
// -cpuprofile, -memprofile and -runtime-trace capture the standard Go
// profiles of the whole run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"saath/internal/experiments"
	"saath/internal/obs"
	"saath/internal/report"
	"saath/internal/sim"
	"saath/internal/study"
	"saath/internal/sweep"

	_ "saath/internal/testbed" // registers the testbed runner + its studies
)

func main() {
	var (
		scale    = flag.String("scale", "quick", `"quick" or "full"`)
		only     = flag.String("only", "", "comma-separated experiment ids (fig1..fig17, table2, telemetry, ablations)")
		testbed  = flag.Bool("testbed", false, "also run the prototype-backed Fig 15 / Fig 16 (slow)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory (for plotting)")
		jsonDir  = flag.String("json", "", "also write each table as JSON into this directory")
		parallel = flag.Int("parallel", runtime.NumCPU(), "simulation worker pool size for figure sweeps")
		progress = flag.Bool("progress", false, "print a throttled aggregate progress line to stderr")

		obsOut       = flag.String("obs-out", "", `with -study: write the observability manifest (per-job spans + engine counters) as JSON ("-" for stdout)`)
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this path (captured at exit, after GC)")
		runtimeTrace = flag.String("runtime-trace", "", "write a Go runtime execution trace to this path")

		engine    = flag.String("engine", "", `with -study: run loop, "tick" or "event" (default: as the study declares; results are identical)`)
		studyName = flag.String("study", "", "run a registered study from the catalog instead of the figures (see -studies)")
		studies   = flag.Bool("studies", false, "list registered studies and exit")
		shardArg  = flag.String("shard", "", `with -study: simulate only shard i of n ("i/n") into a dump under -out`)
		outDir    = flag.String("out", "shards", "directory -shard writes its partial dump into")
		mergeDir  = flag.String("merge", "", "with -study: merge shard dumps from this directory instead of simulating")
	)
	flag.Parse()

	if *studies {
		for _, n := range study.Names() {
			fmt.Printf("%-20s %s\n", n, study.Describe(n))
		}
		return
	}
	stop, perr := obs.Profiles{CPU: *cpuProfile, Mem: *memProfile, Trace: *runtimeTrace}.Start()
	if perr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", perr)
		os.Exit(1)
	}
	stopProfiles = stop

	// Graceful shutdown: SIGINT/SIGTERM cancels the sweep context;
	// completed jobs flush (partial -obs-out manifest, profiles) and the
	// process exits non-zero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *studyName != "" {
		if err := runStudy(ctx, studyCLI{
			name: *studyName, engine: *engine,
			shardArg: *shardArg, mergeDir: *mergeDir, outDir: *outDir,
			csvDir: *csvDir, jsonDir: *jsonDir, parallel: *parallel, progress: *progress,
			obsOut: *obsOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			exit(1)
		}
		exit(0)
	}
	if *shardArg != "" || *mergeDir != "" || *engine != "" || *obsOut != "" {
		fmt.Fprintln(os.Stderr, "experiments: -shard/-merge/-engine/-obs-out require -study (figures are assembled in-process)")
		exit(1)
	}
	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				exit(1)
			}
		}
	}

	sc := experiments.ScaleQuick
	if *scale == "full" {
		sc = experiments.ScaleFull
	}
	env := experiments.NewEnv(sc)
	env.Parallel = *parallel
	env.Ctx = ctx
	// Figure sweeps are built lazily per experiment, so the meter learns
	// the job groups as completions arrive (nil job list).
	env.Progress = sweep.CLIProgress(*progress, os.Stderr, nil)

	type exp struct {
		id string
		fn func() ([]*report.Table, error)
	}
	all := []exp{
		{"fig1", env.Fig1},
		{"fig2", env.Fig2},
		{"fig3", env.Fig3},
		{"fig9", env.Fig9},
		{"fig10", env.Fig10},
		{"fig11", env.Fig11},
		{"fig12", env.Fig12},
		{"fig13", env.Fig13},
		{"fig14", env.Fig14},
		{"table2", env.Table2},
		{"fig17", env.Fig17},
		{"telemetry", env.Telemetry},
		{"ablations", func() ([]*report.Table, error) {
			var out []*report.Table
			for _, fn := range []func() ([]*report.Table, error){
				env.AblationWorkConservation, env.AblationContentionMetric, env.AblationDynamics,
			} {
				t, err := fn()
				if err != nil {
					return nil, err
				}
				out = append(out, t...)
			}
			return out, nil
		}},
	}
	if *testbed {
		cfg := experiments.DefaultTestbedConfig()
		all = append(all,
			exp{"fig15", func() ([]*report.Table, error) { return experiments.Fig15(cfg) }},
			exp{"fig16", func() ([]*report.Table, error) { return experiments.Fig16(cfg) }},
		)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tables, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			exit(1)
		}
		fmt.Printf("\n################ %s (%.1fs) ################\n", e.id, time.Since(start).Seconds())
		for i, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%02d.csv", e.id, i))
				if err := writeTable(path, t.CSV); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: csv:", err)
					exit(1)
				}
			}
			if *jsonDir != "" {
				path := filepath.Join(*jsonDir, fmt.Sprintf("%s_%02d.json", e.id, i))
				if err := writeTable(path, t.JSON); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: json:", err)
					exit(1)
				}
			}
		}
	}
	exit(0)
}

// stopProfiles flushes any -cpuprofile/-memprofile/-runtime-trace
// outputs; exit paths go through exit() so the profiles survive
// os.Exit (which skips deferred calls).
var stopProfiles = func() error { return nil }

func exit(code int) {
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// studyCLI carries the flag values of one -study invocation.
type studyCLI struct {
	name, engine               string
	shardArg, mergeDir, outDir string
	csvDir, jsonDir            string
	obsOut                     string
	parallel                   int
	progress                   bool
}

// runStudy executes (or shards, or merges) one registered study.
func runStudy(ctx context.Context, c studyCLI) error {
	st, err := study.Build(c.name)
	if err != nil {
		return err
	}
	if c.engine != "" {
		m, err := sim.ParseMode(c.engine)
		if err != nil {
			return err
		}
		st = st.InEngineMode(m)
	}
	var observer *obs.Recorder
	if c.obsOut != "" {
		if c.mergeDir != "" {
			return fmt.Errorf("-obs-out needs a live run; merge only reassembles dumps")
		}
		observer = obs.NewRecorder(st.Name())
	}
	// newRunner builds the study's execution backend — the in-process
	// Pool by default, the coordinator-backed testbed when the study
	// declares it (WithRunner).
	newRunner := func(progress sweep.ProgressFunc) (study.Runner, error) {
		return study.NewRunnerFor(st, study.RunnerOpts{
			Parallel: c.parallel, Progress: progress, Observer: observer,
		})
	}
	writeObs := func() error {
		if c.obsOut == "" {
			return nil
		}
		m := observer.Manifest()
		if c.obsOut == "-" {
			return m.WriteJSON(os.Stdout)
		}
		return writeTable(c.obsOut, m.WriteJSON)
	}
	// printRuntime renders out-of-band coordinator measurements when
	// the backend took them (testbed runner). Wall-clock of this
	// machine — never part of the deterministic tables.
	printRuntime := func(r study.Runner) error {
		rr, ok := r.(study.RuntimeReporter)
		if !ok {
			return nil
		}
		rep := rr.RuntimeReport()
		if len(rep.Records) == 0 {
			return nil
		}
		fmt.Println()
		return obs.RuntimeTable("coordinator runtime (wall-clock, out-of-band)", rep).Render(os.Stdout)
	}
	var res *study.Result
	var runner study.Runner
	switch {
	case c.mergeDir != "":
		if res, err = study.MergeShardDir(st, c.mergeDir); err != nil {
			return err
		}
	case c.shardArg != "":
		sh, err := study.ParseShard(c.shardArg)
		if err != nil {
			return err
		}
		if runner, err = newRunner(sweep.CLIProgress(c.progress, os.Stderr, sh.Jobs(st.Jobs()))); err != nil {
			return err
		}
		sh.Runner = runner
		if res, err = st.Run(ctx, sh); err != nil {
			return err
		}
		// Write the dump before reporting job errors: error entries
		// round-trip through the merge (Result.Err resurfaces them),
		// and hours of completed sibling simulations must not be
		// discarded over one failed cell.
		path, err := res.WriteShardFile(c.outDir, sh)
		if err != nil {
			return err
		}
		fmt.Printf("study %s shard %d/%d: %d jobs -> %s\n",
			c.name, sh.Index, sh.Count, len(res.Sweep().Jobs), path)
		if err := writeObs(); err != nil {
			return err
		}
		if err := printRuntime(runner); err != nil {
			return err
		}
		return res.Err()
	default:
		if runner, err = newRunner(sweep.CLIProgress(c.progress, os.Stderr, st.Jobs())); err != nil {
			return err
		}
		if res, err = st.Run(ctx, runner); err != nil {
			return err
		}
	}
	if err := writeObs(); err != nil {
		return err
	}
	if err := res.Err(); err != nil {
		return err
	}
	tables, err := res.Tables()
	if err != nil {
		return err
	}
	for i, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if c.csvDir != "" {
			if err := exportStudyTable(c.csvDir, c.name, i, "csv", t.CSV); err != nil {
				return err
			}
		}
		if c.jsonDir != "" {
			if err := exportStudyTable(c.jsonDir, c.name, i, "json", t.JSON); err != nil {
				return err
			}
		}
	}
	if runner != nil {
		if err := printRuntime(runner); err != nil {
			return err
		}
	}
	return nil
}

// exportStudyTable writes one study table into dir (created if
// needed), mirroring the figure path's <id>_<NN>.<ext> naming.
func exportStudyTable(dir, study string, i int, ext string, export func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeTable(filepath.Join(dir, fmt.Sprintf("%s_%02d.%s", study, i, ext)), export)
}

// writeTable creates path and streams one table export into it.
func writeTable(path string, export func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = export(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
