// experiments regenerates every table and figure of the paper's
// evaluation. With -scale quick (default) the workloads are shrunk to
// run in seconds; -scale full uses the published trace dimensions.
//
// Usage:
//
//	experiments                        # all simulation figures, quick
//	experiments -only fig9,fig10       # a subset
//	experiments -testbed               # include the prototype (slow)
//	experiments -scale full            # published scale (minutes)
//	experiments -parallel 16 -progress # fan simulations out, show jobs
//	experiments -json out/             # also export tables as JSON
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"saath/internal/experiments"
	"saath/internal/report"
	"saath/internal/sweep"
)

func main() {
	var (
		scale    = flag.String("scale", "quick", `"quick" or "full"`)
		only     = flag.String("only", "", "comma-separated experiment ids (fig1..fig17, table2, telemetry, ablations)")
		testbed  = flag.Bool("testbed", false, "also run the prototype-backed Fig 15 / Fig 16 (slow)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory (for plotting)")
		jsonDir  = flag.String("json", "", "also write each table as JSON into this directory")
		parallel = flag.Int("parallel", runtime.NumCPU(), "simulation worker pool size for figure sweeps")
		progress = flag.Bool("progress", false, "print each sweep job completion to stderr")
	)
	flag.Parse()
	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	sc := experiments.ScaleQuick
	if *scale == "full" {
		sc = experiments.ScaleFull
	}
	env := experiments.NewEnv(sc)
	env.Parallel = *parallel
	if *progress {
		env.Progress = sweep.ProgressPrinter(os.Stderr)
	}

	type exp struct {
		id string
		fn func() ([]*report.Table, error)
	}
	all := []exp{
		{"fig1", env.Fig1},
		{"fig2", env.Fig2},
		{"fig3", env.Fig3},
		{"fig9", env.Fig9},
		{"fig10", env.Fig10},
		{"fig11", env.Fig11},
		{"fig12", env.Fig12},
		{"fig13", env.Fig13},
		{"fig14", env.Fig14},
		{"table2", env.Table2},
		{"fig17", env.Fig17},
		{"telemetry", env.Telemetry},
		{"ablations", func() ([]*report.Table, error) {
			var out []*report.Table
			for _, fn := range []func() ([]*report.Table, error){
				env.AblationWorkConservation, env.AblationContentionMetric, env.AblationDynamics,
			} {
				t, err := fn()
				if err != nil {
					return nil, err
				}
				out = append(out, t...)
			}
			return out, nil
		}},
	}
	if *testbed {
		cfg := experiments.DefaultTestbedConfig()
		all = append(all,
			exp{"fig15", func() ([]*report.Table, error) { return experiments.Fig15(cfg) }},
			exp{"fig16", func() ([]*report.Table, error) { return experiments.Fig16(cfg) }},
		)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tables, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("\n################ %s (%.1fs) ################\n", e.id, time.Since(start).Seconds())
		for i, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println()
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%02d.csv", e.id, i))
				if err := writeTable(path, t.CSV); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: csv:", err)
					os.Exit(1)
				}
			}
			if *jsonDir != "" {
				path := filepath.Join(*jsonDir, fmt.Sprintf("%s_%02d.json", e.id, i))
				if err := writeTable(path, t.JSON); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: json:", err)
					os.Exit(1)
				}
			}
		}
	}
}

// writeTable creates path and streams one table export into it.
func writeTable(path string, export func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = export(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
