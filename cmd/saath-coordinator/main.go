// saath-coordinator runs the global coordinator daemon of the Saath
// prototype (§5). Local agents (cmd/saath-agent) connect over TCP;
// frameworks register CoFlows through the HTTP REST API.
//
// Usage:
//
//	saath-coordinator -ports 150 -sched saath -ctl :7100 -http :7180
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"saath/internal/coflow"
	"saath/internal/runtime"
	"saath/internal/sched"

	_ "saath/internal/core"
	_ "saath/internal/sched/aalo"
	_ "saath/internal/sched/clair"
	_ "saath/internal/sched/uctcp"
	_ "saath/internal/sched/varys"
)

func main() {
	var (
		ports    = flag.Int("ports", 16, "cluster size (agents identify as ports 0..N-1)")
		schedStr = flag.String("sched", "saath", "scheduling policy")
		rate     = flag.Float64("rate-mbps", 100, "per-port rate handed to the scheduler, in MB/s")
		delta    = flag.Duration("delta", 20*time.Millisecond, "schedule recomputation interval")
		ctlAddr  = flag.String("ctl", "127.0.0.1:7100", "agent control listen address")
		httpAddr = flag.String("http", "127.0.0.1:7180", "REST API listen address")
	)
	flag.Parse()

	s, err := sched.New(*schedStr, sched.DefaultParams())
	if err != nil {
		fatal(err)
	}
	coord, err := runtime.NewCoordinator(runtime.CoordinatorConfig{
		Scheduler:   s,
		NumPorts:    *ports,
		PortRate:    coflow.Rate(*rate * 1e6),
		Delta:       *delta,
		ControlAddr: *ctlAddr,
		HTTPAddr:    *httpAddr,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("saath-coordinator: scheduler=%s ports=%d control=%s http=%s δ=%s\n",
		s.Name(), *ports, coord.ControlAddr(), coord.HTTPAddr(), *delta)

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("saath-coordinator: shutting down")
		coord.Close()
	}()
	if err := coord.Serve(); err != nil && err.Error() != "http: Server closed" {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saath-coordinator:", err)
	os.Exit(1)
}
