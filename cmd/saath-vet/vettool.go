package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"saath/internal/lint"
)

// vetConfig mirrors the JSON config cmd/go hands a -vettool for each
// package (see cmd/go/internal/work's vet action). Only the fields
// the analyzers need are decoded.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVettool checks one package under the go vet driver protocol:
// parse the pre-listed files, type-check against the export data
// paths cmd/go supplies, run the suite, print findings to stderr.
// The vetx facts file must exist afterward or cmd/go errors out; the
// suite exchanges no facts, so an empty file is written.
func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "saath-vet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("saath-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := lint.NewInfo()
	tconf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Notes: lint.ParseAnnotations(fset, files),
	}
	var findings []lint.Finding
	for _, a := range lint.Analyzers() {
		fs, err := lint.RunPackage(a, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		for _, f := range fs {
			// Unlike the standalone driver, cmd/go also hands the
			// vettool each package's test variant. Tests are out of
			// scope by policy — they may use wall clocks and allocate
			// freely — so findings in _test.go files are dropped to
			// match `make lint`.
			if strings.HasSuffix(f.Pos.Filename, "_test.go") {
				continue
			}
			findings = append(findings, f)
		}
	}
	lint.SortFindings(findings)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
