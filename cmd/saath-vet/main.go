// Command saath-vet runs the repo's invariant analyzers (detcheck,
// hotpath, obscheck — see internal/lint) over Go packages.
//
// Standalone (the way `make lint` runs it):
//
//	saath-vet ./...
//	saath-vet -analyzers detcheck -json ./internal/sched/...
//
// It also speaks the cmd/go vettool protocol, so the same binary
// plugs into the standard vet driver:
//
//	go build -o /tmp/saath-vet ./cmd/saath-vet
//	go vet -vettool=/tmp/saath-vet ./...
//
// In vettool mode cmd/go invokes the binary once per package with a
// JSON config file of pre-parsed file lists and export-data paths;
// the re-implementation here (vettool.go) exists because the usual
// unitchecker entry point lives in golang.org/x/tools, which this
// repo does not depend on.
//
// Exit status: 0 with no findings, 1 with findings, 2 on failure to
// load or analyze.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"saath/internal/lint"
)

func main() {
	// cmd/go probes vettools twice before handing them a config
	// file: -V=full for the tool's cache ID and -flags for the
	// tool-specific flags it may forward. Both must be answered
	// before normal flag parsing so stray diagnostics don't corrupt
	// the probe output.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("saath-vet version saath-dev buildID=none\n")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVettool(os.Args[1]))
	}

	var (
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		names    = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: saath-vet [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := lint.Run(wd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "saath-vet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
