// saath-agent runs one local agent of the Saath prototype (§5): it
// serves a single cluster port, moves flow bytes to peer agents at
// coordinator-assigned rates, and reports flow statistics every sync
// interval.
//
// Usage:
//
//	saath-agent -port 3 -coordinator 10.0.0.1:7100
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"saath/internal/runtime"
)

func main() {
	var (
		port     = flag.Int("port", 0, "the cluster port index this agent serves")
		coord    = flag.String("coordinator", "127.0.0.1:7100", "coordinator control address")
		dataAddr = flag.String("data", "127.0.0.1:0", "data-plane listen address")
		interval = flag.Duration("stats", 20*time.Millisecond, "stats reporting interval")
	)
	flag.Parse()

	a, err := runtime.NewAgent(runtime.AgentConfig{
		Port:            *port,
		CoordinatorAddr: *coord,
		DataAddr:        *dataAddr,
		StatsInterval:   *interval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "saath-agent:", err)
		os.Exit(1)
	}
	fmt.Printf("saath-agent: port=%d coordinator=%s data=%s\n", *port, *coord, a.DataAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("saath-agent: shutting down")
	a.Close()
}
