# Local targets mirror the CI jobs (.github/workflows/ci.yml) so a
# green `make ci` means a green pipeline.

GO ?= go

.PHONY: build test test-fleet test-testbed race bench bench-sched bench-sweep bench-telemetry bench-trace bench-engine bench-obs bench-fleet bench-testbed fmt fmt-check vet lint staticcheck govulncheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fleet chaos suite under -race: the driver recovers a killed, hung,
# corrupted, and slow worker (goldens assert the merged output stays
# byte-identical to a single-process run) plus terminal-failure and
# drift-rejection paths. The tests re-exec the test binary as the
# worker, so no separate build step is needed.
test-fleet:
	$(GO) test -race -count=1 -timeout 10m ./internal/fleet/

# Testbed suite under -race: the coordinator-backed study runner with
# in-process agents — byte-identity across parallelism and sharding,
# admission-drop determinism, the 10^4-agent coordinator-latency run,
# and the agent-disconnect / stalled-agent paths in internal/runtime.
# (The 10^5-agent scale test stays env-gated: SAATH_LONG=1.)
test-testbed:
	$(GO) test -race -count=1 -timeout 10m ./internal/testbed/ ./internal/runtime/

race:
	$(GO) test -race -timeout 20m ./...

# One iteration of every benchmark: a smoke test that the bench
# harness still compiles and runs, not a performance measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' -timeout 20m ./...

# Scheduler hot-path smoke: one iteration of the per-policy Schedule
# benchmarks plus the allocation-regression guards against
# BENCH_baseline.json and the steady-state engine-tick zero-alloc
# guard (the guards need a non-race build — they skip under -race).
bench-sched:
	$(GO) test -bench 'BenchmarkSchedule' -benchtime=1x -benchmem -run '^$$' -timeout 10m .
	$(GO) test -run TestScheduleAllocGuards -count=1 .
	$(GO) test -run TestEngineTickSteadyStateZeroAlloc -count=1 ./internal/sim/

# Sweep-layer smoke: one iteration of the grid-expansion / summary
# digest / pool benchmarks plus the allocation guard against the
# sweep_layer section of BENCH_baseline.json and the grid-key
# uniqueness pin (the guard needs a non-race build — it skips under
# -race).
bench-sweep:
	$(GO) test -bench 'BenchmarkSweep' -benchtime=1x -benchmem -run '^$$' -timeout 10m . ./internal/sweep/
	$(GO) test -run TestSweepAllocGuards -count=1 .
	$(GO) test -run TestGridJobKeyUniqueness -count=1 ./internal/sweep/

# Telemetry smoke: one iteration of the telemetry benchmarks plus the
# zero-allocation guard on the engine's no-probe emission path (the
# guard needs a non-race build — AllocsPerRun skips itself under -race).
bench-telemetry:
	$(GO) test -bench Telemetry -benchtime=1x -run '^$$' -timeout 10m ./...
	$(GO) test -run TestObserveIntervalNoProbesZeroAlloc -count=1 ./internal/sim/

# Trace-layer smoke: one iteration of the synthetic-generation and
# trace.Mix benchmarks plus the allocation guard against the
# trace_layer section of BENCH_baseline.json (skips under -race).
bench-trace:
	$(GO) test -bench 'BenchmarkTrace' -benchtime=1x -benchmem -run '^$$' -timeout 10m .
	$(GO) test -run TestTraceAllocGuards -count=1 .

# Engine-layer smoke: one iteration of the tick-vs-event sparse
# long-tail benchmarks plus the speedup/alloc guard against the
# engine_layer section of BENCH_baseline.json and the event loop's
# steady-state zero-alloc guard (both skip under -race).
bench-engine:
	$(GO) test -bench 'BenchmarkEngine(Tick|Event)Sparse' -benchtime=1x -benchmem -run '^$$' -timeout 10m .
	$(GO) test -run TestEngineLayerGuards -count=1 .
	$(GO) test -run TestEngineEventSteadyStateZeroAlloc -count=1 ./internal/sim/

# Observability smoke: one iteration of the span-record / counter-step
# benchmarks plus the guard against the obs_layer section of
# BENCH_baseline.json (the engine counter step must allocate exactly
# nothing) and the engine's counters-attached zero-alloc guards in both
# run loops (all skip under -race).
bench-obs:
	$(GO) test -bench 'BenchmarkObs' -benchtime=1x -benchmem -run '^$$' -timeout 10m .
	$(GO) test -run TestObsLayerGuards -count=1 .
	$(GO) test -run 'TestEngine(Tick|Event)CountersZeroAlloc' -count=1 ./internal/sim/

# Fleet wire smoke: one iteration of the wire encode/decode benchmarks
# plus the guard against the fleet_layer section of BENCH_baseline.json
# (encode must allocate exactly nothing at steady state; skips under
# -race).
bench-fleet:
	$(GO) test -bench 'BenchmarkFleetWire' -benchtime=1x -benchmem -run '^$$' -timeout 10m .
	$(GO) test -run TestFleetLayerGuards -count=1 .

# Testbed smoke: one iteration of the agent-step benchmark plus the
# guard against the testbed_layer section of BENCH_baseline.json (one
# steady-state Step+Report must allocate exactly nothing; skips under
# -race).
bench-testbed:
	$(GO) test -bench 'BenchmarkTestbedAgentStep' -benchtime=1x -benchmem -run '^$$' -timeout 10m .
	$(GO) test -run TestTestbedLayerGuards -count=1 .

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# saath-vet is the project's own analyzer suite (detcheck, hotpath,
# obscheck — see internal/lint). It must report zero unsuppressed
# findings over the whole tree; any new finding fails the build. The
# analyzer unit tests ride along so broken fixtures fail here too.
lint:
	$(GO) run ./cmd/saath-vet ./...
	$(GO) test -count=1 ./internal/lint/

# staticcheck runs when the binary is installed and skips (with a
# note) when it is not, so `make ci` stays runnable on minimal
# machines; the CI pipeline always installs and runs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# govulncheck, like staticcheck, is best-effort locally (skip when the
# binary is absent) and mandatory in the pipeline, which installs a
# pinned version and invokes the binary directly.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

ci: fmt-check build vet lint staticcheck govulncheck race test-fleet test-testbed bench bench-sched bench-sweep bench-telemetry bench-trace bench-engine bench-obs bench-fleet bench-testbed
