package saath

// Trace-layer microbenchmarks and their allocation-regression guard.
// Synthetic generation is the first step of every sweep job — a
// full-scale sharded study regenerates its workload for every
// (trace, variant, seed) cell — so generator overhead multiplies by
// the grid size. BENCH_baseline.json's "trace_layer" section records
// the numbers at the scenario-diversity introduction (fan validation +
// trace.Mix); the guard fails if a change regresses any generator past
// 1.25x of that baseline. Run `make bench-trace` for the smoke +
// guard.

import (
	"encoding/json"
	"os"
	"testing"

	"saath/internal/trace"
)

// benchMixComponents pairs a reduced FB draw with an incast draw on a
// shared port space — the trace-mix study's shape at bench scale.
func benchMixComponents() []MixComponent {
	return []MixComponent{
		{Name: "fb", Weight: 1, Gen: func(seed int64) *Trace {
			cfg := trace.DefaultFBConfig(seed)
			cfg.NumPorts, cfg.NumCoFlows = 48, 200
			return trace.Synthesize(cfg, "fb-bench")
		}},
		{Name: "incast", Weight: 1, Gen: func(seed int64) *Trace {
			tr, err := trace.SynthesizeIncast(trace.FanConfig{
				Seed: seed, NumPorts: 48, NumCoFlows: 200,
				MeanInterArrival: 20 * Millisecond,
				Degree:           10, Skew: 0.6, Hotspots: 5,
				MinSize: MB, MaxSize: 128 * MB,
			}, "incast-bench")
			if err != nil {
				panic(err)
			}
			return tr
		}},
	}
}

func benchMix(seed int64) *Trace {
	tr, err := MixTraces("mix-bench", MixConfig{Seed: seed, NumCoFlows: 300}, benchMixComponents()...)
	if err != nil {
		panic(err)
	}
	return tr
}

// BenchmarkTraceSynthFB measures generating the default FB-like
// workload (526 coflows, 150 ports).
func BenchmarkTraceSynthFB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr := SynthFB(1); len(tr.Specs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceSynthIncast measures generating the default incast
// workload (300 coflows fanning into 6 hotspots).
func BenchmarkTraceSynthIncast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr := SynthIncast(1); len(tr.Specs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceMix measures the full mix pipeline: generating both
// components and interleaving 300 coflows.
func BenchmarkTraceMix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr := benchMix(1); len(tr.Specs) != 300 {
			b.Fatalf("mixed %d coflows", len(tr.Specs))
		}
	}
}

// traceBaseline mirrors BENCH_baseline.json's trace_layer section.
type traceBaseline struct {
	TraceLayer map[string]struct {
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"trace_layer"`
}

// TestTraceAllocGuards enforces the trace-layer overhead contract:
// synthetic generation and mixing must stay within 1.25x of the
// allocation counts recorded when the scenario-diversity layer landed.
func TestTraceAllocGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base traceBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	check := func(name string, got float64) {
		t.Helper()
		b, ok := base.TraceLayer[name]
		if !ok {
			t.Errorf("%s: missing from BENCH_baseline.json trace_layer", name)
			return
		}
		if limit := b.AllocsPerOp * 1.25; got > limit {
			t.Errorf("%s: %.0f allocs/op exceeds 1.25x baseline %.0f", name, got, b.AllocsPerOp)
		}
	}
	check("synth_fb", testing.AllocsPerRun(10, func() { SynthFB(1) }))
	check("synth_incast", testing.AllocsPerRun(10, func() { SynthIncast(1) }))
	check("mix_300", testing.AllocsPerRun(10, func() { benchMix(1) }))
}
