package saath

// Scheduler hot-path microbenchmarks and their allocation-regression
// guards. BENCH_baseline.json records the map-based engine's numbers
// (the state of the tree before the dense-index rewrite); the guards
// fail if a change regresses the steady-state Schedule round back to
// within 2x of that baseline, and pin Saath's round at exactly zero
// heap allocations. Run `make bench-sched` for the smoke + guards, or
//
//	go test -bench 'BenchmarkSchedule' -benchmem -run '^$' .
//
// for real measurements.

import (
	"encoding/json"
	"os"
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
	"saath/internal/trace"
)

// benchPolicies are the per-policy benchmark/guard subjects: Saath and
// every baseline family, over the same cluster the baseline file was
// recorded on.
var benchPolicies = []string{"saath", "aalo", "baraat", "lwtf", "uc-tcp", "varys"}

// benchSchedCluster builds the benchmark active set: n CoFlows on p
// ports, all live at once (the busy case), with a warmed scheduler and
// a reusable snapshot — one call to round() is one steady-state
// Schedule invocation.
func benchSchedCluster(tb testing.TB, policy string, n, p int) (round func()) {
	tb.Helper()
	tr := trace.Synthesize(trace.SynthConfig{
		Seed: 42, NumPorts: p, NumCoFlows: n,
		MeanInterArrival: 0,
		SingleFlowFrac:   0.23, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.4,
		SmallFracNarrow: 0.8, SmallFracWide: 0.4,
		MinSmall: coflow.MB, MaxSmall: 100 * coflow.MB,
		MinLarge: 100 * coflow.MB, MaxLarge: coflow.GB,
	}, "bench")
	active := make([]*coflow.CoFlow, len(tr.Specs))
	space := coflow.NewIndexSpace()
	for i, spec := range tr.Specs {
		active[i] = coflow.New(spec)
		space.Assign(active[i])
	}
	fab := fabric.New(p, fabric.DefaultPortRate)
	s, err := NewScheduler(policy, DefaultParams())
	if err != nil {
		tb.Fatal(err)
	}
	for _, c := range active {
		s.Arrive(c, 0)
	}
	snap := &sched.Snapshot{
		Now: 0, Active: active, Fabric: fab,
		FlowCap: space.FlowCap(), CoFlowCap: space.CoFlowCap(),
	}
	round = func() {
		fab.Reset()
		s.Schedule(snap)
	}
	round() // warm scratch so measurements see the steady state
	return round
}

// BenchmarkSchedule measures one steady-state Schedule round per
// policy at the baseline scale (500 coflows, 150 ports).
func BenchmarkSchedule(b *testing.B) {
	for _, policy := range benchPolicies {
		b.Run(policy, func(b *testing.B) {
			round := benchSchedCluster(b, policy, 500, 150)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
		})
	}
}

// BenchmarkScheduleQuick is the same measurement at quick scale, for
// fast local iteration.
func BenchmarkScheduleQuick(b *testing.B) {
	for _, policy := range benchPolicies {
		b.Run(policy, func(b *testing.B) {
			round := benchSchedCluster(b, policy, 100, 50)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
		})
	}
}

// benchBaseline mirrors BENCH_baseline.json.
type benchBaseline struct {
	ScheduleRound map[string]struct {
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"schedule_round"`
}

func loadBaseline(t *testing.T) benchBaseline {
	t.Helper()
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var b benchBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestScheduleAllocGuards enforces the perf contract of the
// dense-index rewrite against the recorded map-based baseline: every
// policy's steady-state Schedule round must allocate at least 2x less
// than it did on the map path, and Saath's round — queue counts,
// buckets, contention vector, allocation vector, ordering — must not
// touch the heap at all.
func TestScheduleAllocGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	baseline := loadBaseline(t)
	for _, policy := range benchPolicies {
		base, ok := baseline.ScheduleRound[policy]
		if !ok {
			t.Errorf("%s: missing from BENCH_baseline.json", policy)
			continue
		}
		round := benchSchedCluster(t, policy, 500, 150)
		got := testing.AllocsPerRun(3, round)
		if got*2 > base.AllocsPerOp {
			t.Errorf("%s: %.0f allocs/round, want <= half the map-based baseline (%.0f)",
				policy, got, base.AllocsPerOp)
		}
		if policy == "saath" && got != 0 {
			t.Errorf("saath: %.0f allocs/round, want 0 (scratch must be fully reused)", got)
		}
	}
}
