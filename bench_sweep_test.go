package saath

// Sweep-layer microbenchmarks and their allocation-regression guard.
// The scheduling hot path is already pinned by bench_sched_test.go;
// this file guards the orchestration layer on top of it — grid
// expansion and per-job Summary digestion — so full-scale studies
// (thousands of jobs, sharded across processes) do not silently grow
// per-job overhead. BENCH_baseline.json's "sweep_layer" section
// records the numbers at the Study-API introduction; the guard fails
// if a change regresses either path past 1.25x of that baseline. Run
// `make bench-sweep` for the smoke + guard.

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"saath/internal/coflow"
)

// benchSweepSource is the tiny deterministic workload behind the
// sweep-layer measurements (simulation cost must not drown the
// orchestration cost being measured).
func benchSweepSource(name string) TraceSource {
	return SynthSource(name, func(seed int64) *Trace {
		return Synthesize(SynthConfig{
			Seed: seed, NumPorts: 10, NumCoFlows: 16,
			MeanInterArrival: 20 * coflow.Millisecond,
			SingleFlowFrac:   0.25, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
			SmallFracNarrow: 0.8, SmallFracWide: 0.5,
			MinSmall: 100 * coflow.KB, MaxSmall: coflow.MB,
			MinLarge: coflow.MB, MaxLarge: 20 * coflow.MB,
		}, name)
	})
}

// benchSweepGrid is the 24-job expansion subject: 2 traces × 2
// variants × 3 seeds × 2 schedulers.
func benchSweepGrid() SweepGrid {
	p := DefaultParams()
	return SweepGrid{
		Traces:     []TraceSource{benchSweepSource("bench-a"), benchSweepSource("bench-b")},
		Schedulers: []string{"aalo", "saath"},
		Seeds:      []int64{1, 2, 3},
		Variants: []SweepVariant{
			{Name: "delta=8ms", Params: p, Config: SimConfig{Delta: 8 * coflow.Millisecond}},
			{Name: "delta=16ms", Params: p, Config: SimConfig{Delta: 16 * coflow.Millisecond}},
		},
	}
}

// benchJobResult produces one completed job for Summary digestion
// measurements.
func benchJobResult(tb testing.TB) SweepJobResult {
	tb.Helper()
	g := benchSweepGrid()
	g.Traces = g.Traces[:1]
	g.Schedulers = g.Schedulers[:1]
	g.Seeds = g.Seeds[:1]
	g.Variants = g.Variants[:1]
	res := RunSweep(context.Background(), g.Jobs(), SweepOptions{Parallel: 1})
	if err := res.FirstErr(); err != nil {
		tb.Fatal(err)
	}
	return res.Jobs[0]
}

// BenchmarkSweepGridJobs measures expanding the 24-job declarative
// grid into bound jobs (the per-study compile step).
func BenchmarkSweepGridJobs(b *testing.B) {
	g := benchSweepGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if jobs := g.Jobs(); len(jobs) != 24 {
			b.Fatalf("jobs = %d", len(jobs))
		}
	}
}

// BenchmarkSweepSummaryAdd measures digesting one completed job into
// the aggregate (the per-job collector step every sweep and shard
// pays).
func BenchmarkSweepSummaryAdd(b *testing.B) {
	jr := benchJobResult(b)
	sum := NewSweepSummary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.Add(jr)
	}
}

// sweepBaseline mirrors BENCH_baseline.json's sweep_layer section.
type sweepBaseline struct {
	SweepLayer map[string]struct {
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"sweep_layer"`
}

// TestSweepAllocGuards enforces the sweep-layer overhead contract:
// grid expansion and Summary digestion must stay within 1.25x of the
// allocation counts recorded when the Study API landed.
func TestSweepAllocGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base sweepBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}

	check := func(name string, got float64) {
		t.Helper()
		b, ok := base.SweepLayer[name]
		if !ok {
			t.Errorf("%s: missing from BENCH_baseline.json sweep_layer", name)
			return
		}
		if limit := b.AllocsPerOp * 1.25; got > limit {
			t.Errorf("%s: %.0f allocs/op exceeds 1.25x baseline %.0f", name, got, b.AllocsPerOp)
		}
	}

	g := benchSweepGrid()
	check("grid_jobs_24", testing.AllocsPerRun(100, func() {
		if jobs := g.Jobs(); len(jobs) != 24 {
			t.Fatalf("jobs = %d", len(jobs))
		}
	}))

	jr := benchJobResult(t)
	sum := NewSweepSummary()
	sum.Add(jr) // warm the entry map
	check("summary_add", testing.AllocsPerRun(100, func() { sum.Add(jr) }))
}
