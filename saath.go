// Package saath is a Go implementation of Saath (Jajoo, Gandhi, Hu,
// Koh — CoNEXT 2017), an online CoFlow scheduler that exploits the
// spatial dimension of CoFlows: all-or-none scheduling, per-flow
// queue thresholds, and Least-Contention-First ordering with
// starvation-free deadlines.
//
// The package is the library's public facade. It re-exports the data
// model (traces, CoFlows, time/byte units), the scheduling policies
// (Saath and the baselines it is evaluated against: Aalo, Varys'
// SEBF+MADD, clairvoyant SCF/SRTF/LWTF, UC-TCP), the discrete-time
// cluster simulator, the statistics helpers behind the paper's
// figures, the declarative study layer (NewStudy: experiment grids
// with pluggable in-process or sharded execution), the distributed
// coordinator/agent prototype, and the testbed subsystem that runs
// studies through the real coordinator with in-process agents.
//
// Quick start (see examples/quickstart for a runnable version):
//
//	tr := saath.SynthFB(1)                       // FB-like workload
//	res, _ := saath.Simulate(tr, "saath", saath.SimConfig{})
//	base, _ := saath.Simulate(tr, "aalo", saath.SimConfig{})
//	fmt.Println(saath.SummarizeSpeedup(base, res)) // e.g. "1.5x median ..."
package saath

import (
	"context"
	"io"
	"time"

	"saath/internal/coflow"
	"saath/internal/fleet"
	"saath/internal/obs"
	"saath/internal/report"
	"saath/internal/runtime"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/stats"
	"saath/internal/study"
	"saath/internal/sweep"
	"saath/internal/telemetry"
	"saath/internal/testbed"
	"saath/internal/trace"

	_ "saath/internal/core"         // register saath + ablation variants
	_ "saath/internal/sched/aalo"   // register aalo
	_ "saath/internal/sched/baraat" // register baraat + baraat/fifo
	_ "saath/internal/sched/clair"  // register scf / srtf / sjf-duration / lwtf
	_ "saath/internal/sched/uctcp"  // register uc-tcp
	_ "saath/internal/sched/varys"  // register varys
)

// Core data-model types.
type (
	// Time is simulated time in microseconds.
	Time = coflow.Time
	// Bytes is a byte count.
	Bytes = coflow.Bytes
	// Rate is bandwidth in bytes per second.
	Rate = coflow.Rate
	// PortID identifies a cluster node.
	PortID = coflow.PortID
	// CoFlowID identifies a CoFlow.
	CoFlowID = coflow.CoFlowID
	// FlowSpec describes one flow: endpoints and size.
	FlowSpec = coflow.FlowSpec
	// Spec is a CoFlow's static description.
	Spec = coflow.Spec
	// Trace is a CoFlow workload over a cluster.
	Trace = trace.Trace
	// SynthConfig controls the synthetic workload generators.
	SynthConfig = trace.SynthConfig
)

// Unit constants.
const (
	Microsecond = coflow.Microsecond
	Millisecond = coflow.Millisecond
	Second      = coflow.Second
	KB          = coflow.KB
	MB          = coflow.MB
	GB          = coflow.GB
	TB          = coflow.TB
)

// GbpsRate converts gigabits per second to a Rate.
func GbpsRate(gbps float64) Rate { return coflow.GbpsRate(gbps) }

// Scheduling types.
type (
	// Scheduler is a global CoFlow scheduling policy.
	Scheduler = sched.Scheduler
	// Params carries scheduler knobs (queue ladder, deadline factor,
	// feature toggles); see Params.Queues for the priority-queue
	// ladder (K, S, E).
	Params = sched.Params
	// RateVec is the dense per-interval allocation vector (rates keyed
	// by flow index) that schedulers return and telemetry probes read
	// via TelemetryInterval.Alloc.
	RateVec = sched.RateVec
)

// Simulation types.
type (
	// SimConfig controls a simulation run (δ, port rate, dynamics,
	// engine mode).
	SimConfig = sim.Config
	// SimResult is the outcome of one simulation.
	SimResult = sim.Result
	// CoFlowSimResult records one CoFlow's fate in a simulation.
	CoFlowSimResult = sim.CoFlowResult
	// Dynamics injects stragglers and restarts (§4.3).
	Dynamics = sim.Dynamics
	// Pipelining delays per-flow data availability (§4.3).
	Pipelining = sim.Pipelining
	// Engine is a reusable, validated simulation engine: one SimConfig,
	// any number of independent runs. Build one with NewEngine.
	Engine = sim.Engine
	// EngineMode selects the engine's run loop: ModeTick or ModeEvent,
	// byte-identical by contract (see internal/sim's package doc).
	EngineMode = sim.Mode
)

// Engine-mode constants.
const (
	// ModeTick is the reference fixed-δ discrete-time loop (default).
	ModeTick = sim.ModeTick
	// ModeEvent is the discrete-event loop: identical results, idle
	// gaps and sparse stretches cost nothing.
	ModeEvent = sim.ModeEvent
)

// NewEngine validates cfg and returns the reusable engine for its
// Mode. Simulate/SimulateWith remain the one-shot forms; they route
// through the same validation and run loops.
func NewEngine(cfg SimConfig) (Engine, error) { return sim.New(cfg) }

// ParseEngineMode parses an -engine flag value ("tick" or "event").
func ParseEngineMode(s string) (EngineMode, error) { return sim.ParseMode(s) }

// Statistics types.
type (
	// SpeedupSummary is a median + P10/P90 condensation of a speedup
	// distribution, the paper's bar-chart presentation.
	SpeedupSummary = stats.SpeedupSummary
	// CDFPoint is one point of an empirical CDF.
	CDFPoint = stats.CDFPoint
	// JCTModel maps CCT improvements to job completion times (Fig. 16).
	JCTModel = stats.JCTModel
)

// Parallel sweep engine types (internal/sweep): declarative
// trace × scheduler × seed × variant grids executed on a bounded
// worker pool with deterministic aggregation.
type (
	// SweepGrid declares a sweep as a cross product.
	SweepGrid = sweep.Grid
	// SweepJob is one simulation of a sweep.
	SweepJob = sweep.Job
	// SweepVariant is one parameter point of a sweep.
	SweepVariant = sweep.Variant
	// SweepOptions controls the worker pool and progress streaming.
	SweepOptions = sweep.Options
	// SweepResult holds per-job outcomes in grid order.
	SweepResult = sweep.Result
	// SweepJobResult pairs a job with its outcome.
	SweepJobResult = sweep.JobResult
	// SweepCollector receives completed jobs as they finish.
	SweepCollector = sweep.Collector
	// SweepSummary is the thread-safe aggregate collector (CCT and
	// speedup tables, JSON export).
	SweepSummary = sweep.Summary
	// TraceSource names a workload and builds seeded instances of it.
	TraceSource = sweep.TraceSource
)

// RunSweep executes jobs on a bounded worker pool; see SweepGrid.Jobs
// for expanding a declarative grid. Results are deterministic: the
// same jobs produce identical aggregates at any parallelism.
func RunSweep(ctx context.Context, jobs []SweepJob, opts SweepOptions) *SweepResult {
	return sweep.Run(ctx, jobs, opts)
}

// NewSweepSummary returns an empty aggregate collector for RunSweep.
func NewSweepSummary() *SweepSummary { return sweep.NewSummary() }

// FixedTrace wraps an already-built trace as a sweep source (every job
// simulates its own clone).
func FixedTrace(tr *Trace) TraceSource { return sweep.FixedTrace(tr) }

// SynthSource builds a seeded synthetic workload per sweep job.
func SynthSource(name string, gen func(seed int64) *Trace) TraceSource {
	return sweep.SynthSource(name, gen)
}

// Streaming telemetry types (internal/telemetry): per-interval
// time-series metrics out of the simulator in bounded memory, with
// deterministic downsampling so sweep exports are byte-identical at
// any parallelism.
type (
	// TelemetryProbe receives one observation per scheduling interval;
	// attach probes via SimConfig.Probes.
	TelemetryProbe = telemetry.Probe
	// TelemetryInterval is the engine's per-interval observation.
	TelemetryInterval = telemetry.Interval
	// TelemetrySpec configures the standard collector suite; set it on
	// SweepGrid.Telemetry to collect metrics for every sweep job.
	TelemetrySpec = telemetry.Spec
	// TelemetrySuite is the standard collector set (queue occupancy,
	// utilization, HOL blocking, contention histograms, progress).
	TelemetrySuite = telemetry.Suite
	// TelemetryMetrics is one run's exported telemetry.
	TelemetryMetrics = telemetry.Metrics
)

// NewTelemetrySuite builds the standard telemetry collector set.
func NewTelemetrySuite(spec TelemetrySpec) *TelemetrySuite { return telemetry.NewSuite(spec) }

// SimulateWithTelemetry replays tr under the named scheduler with the
// paper's default parameters and a telemetry suite attached, returning
// both the simulation result and the exported per-interval metrics.
// A spec with Enabled false runs the plain simulation and returns nil
// metrics.
func SimulateWithTelemetry(tr *Trace, scheduler string, cfg SimConfig, spec TelemetrySpec) (*SimResult, *TelemetryMetrics, error) {
	var suite *TelemetrySuite
	if spec.Enabled {
		suite = telemetry.NewSuite(spec)
		cfg = cfg.WithProbe(suite)
	}
	res, err := SimulateWith(tr, scheduler, DefaultParams(), cfg)
	if err != nil {
		return nil, nil, err
	}
	if suite == nil {
		return res, nil, nil
	}
	return res, suite.Metrics(), nil
}

// Declarative study types (internal/study): one composable experiment
// layer over sweep, telemetry and report. A Study is declared once
// with NewStudy + functional options, validated at construction,
// compiled to a SweepGrid, executed on a pluggable StudyRunner
// (in-process pool or i-of-n shard), and rendered to derived tables;
// shard outputs merge byte-identically to a single-process run.
type (
	// Study is a validated, immutable experiment declaration.
	Study = study.Study
	// StudyOption configures a Study under construction (see the
	// With* constructors below).
	StudyOption = study.Option
	// StudyResult is one study execution: aggregate summary, raw
	// per-job results (live runs), derived tables.
	StudyResult = study.Result
	// StudyRunner is a pluggable execution backend for a study.
	StudyRunner = study.Runner
	// StudyPool is the in-process bounded worker-pool runner.
	StudyPool = study.Pool
	// StudySharded runs shard i of n of a study's grid; see
	// MergeStudyShards for reassembly.
	StudySharded = study.Sharded
	// StudyDerived computes tables from a study's aggregated summary.
	StudyDerived = study.Derived
	// StudyShardDump is the serialized output of one sharded run.
	StudyShardDump = study.ShardDump
	// StudyRunnerOpts carries the execution knobs (parallelism,
	// progress callback, observer) a CLI hands any runner backend.
	StudyRunnerOpts = study.RunnerOpts
	// StudyRunnerFactory builds a named runner backend for one study
	// execution; register with RegisterStudyRunner.
	StudyRunnerFactory = study.RunnerFactory
	// StudyRuntimeReporter is implemented by runners that measure the
	// real system out-of-band (the testbed backend); the wall-clock
	// report never contaminates the deterministic study output.
	StudyRuntimeReporter = study.RuntimeReporter
)

// NewStudy builds and validates a declarative study; see the study
// option constructors (WithTraces, WithSchedulers, WithParamGrid,
// WithSeeds, WithSimConfig, WithTelemetry, WithBaseline, WithDerived).
func NewStudy(name string, opts ...StudyOption) (*Study, error) {
	return study.New(name, opts...)
}

// Study option constructors, re-exported from internal/study.
var (
	WithDescription = study.WithDescription
	WithTraces      = study.WithTraces
	WithSchedulers  = study.WithSchedulers
	WithSeeds       = study.WithSeeds
	WithParams      = study.WithParams
	WithSimConfig   = study.WithSimConfig
	WithParamGrid   = study.WithParamGrid
	WithTelemetry   = study.WithTelemetry
	WithBaseline    = study.WithBaseline
	WithDerived     = study.WithDerived
	WithRunner      = study.WithRunner
)

// Derived-table constructors for WithDerived.
var (
	DerivedCCT              = study.DerivedCCT
	DerivedSpeedup          = study.DerivedSpeedup
	DerivedTelemetry        = study.DerivedTelemetry
	DerivedCCTCDF           = study.DerivedCCTCDF
	DerivedQueueTransitions = study.DerivedQueueTransitions
	DerivedPortHeatmap      = study.DerivedPortHeatmap
	DerivedCapacity         = study.DerivedCapacity
	DerivedSaturation       = study.DerivedSaturation
	DerivedCapacityReport   = study.DerivedCapacityReport
)

// Observability types (internal/obs): out-of-band execution
// introspection — per-job phase spans, engine introspection counters,
// run manifests, and capacity/saturation analytics. Attaching any of
// it never changes a study's output bytes; with nothing attached the
// engine's counter hooks cost zero allocations.
type (
	// ObsRecorder collects per-job spans and counters during a study
	// run; set it on StudyPool.Observer and read ObsRecorder.Manifest
	// afterwards. A nil recorder disables collection.
	ObsRecorder = obs.Recorder
	// ObsManifest is one run's collected observability digest.
	ObsManifest = obs.Manifest
	// ObsSpan is one timed phase of an execution, with children.
	ObsSpan = obs.Span
	// EngineCounters is the engine's introspection block: events by
	// kind, heap depth high-water mark, epochs, schedule-call latency
	// histogram. Attach a fresh one per run via SimConfig.Counters.
	EngineCounters = obs.EngineCounters
	// CapacityCell is one pooled (workload, variant, scheduler)
	// throughput/latency measurement; see SweepSummary.CapacityCells.
	CapacityCell = obs.Cell
	// SaturationKnee is a detected departure from linearity in a
	// load → latency curve.
	SaturationKnee = obs.Knee
	// RuntimeRecord is one job's wall-clock coordinator measurement
	// (agents, admissions, schedule-latency percentiles), collected
	// out-of-band by the testbed runner.
	RuntimeRecord = obs.RuntimeRecord
	// RuntimeReport is a sorted, mergeable set of RuntimeRecords; it
	// travels in the obs manifest's runtime section.
	RuntimeReport = obs.RuntimeReport
	// ReportTable is one rendered results table (internal/report),
	// the unit every derived-table constructor produces.
	ReportTable = report.Table
)

// NewRuntimeTable renders a runtime report as the CLI's
// "coordinator runtime" table.
func NewRuntimeTable(title string, rep *RuntimeReport) *ReportTable {
	return obs.RuntimeTable(title, rep)
}

// NewObsRecorder returns an enabled observability recorder labeled
// with the study name.
func NewObsRecorder(study string) *ObsRecorder { return obs.NewRecorder(study) }

// DetectSaturationKnee finds where latencies depart the linear trend
// of their low-load prefix; tol <= 0 uses the default 50% departure.
func DetectSaturationKnee(loads, latencies []float64, tol float64) SaturationKnee {
	return obs.DetectKnee(loads, latencies, tol)
}

// RegisteredStudies lists the named studies of the built-in catalog
// (plus anything the program registered via RegisterStudy) — the
// namespace behind saath-sim/experiments -study.
func RegisteredStudies() []string { return study.Names() }

// RegisterStudy adds a named study to the catalog.
func RegisterStudy(name, description string, build func() (*Study, error)) {
	study.Register(name, description, build)
}

// BuildStudy constructs a registered study by name.
func BuildStudy(name string) (*Study, error) { return study.Build(name) }

// RegisterStudyRunner adds a named runner backend to the registry a
// study selects from via WithRunner ("" always means the in-process
// StudyPool; the testbed subsystem registers "testbed").
func RegisterStudyRunner(name string, f StudyRunnerFactory) { study.RegisterRunner(name, f) }

// StudyRunnerNames lists the registered runner backends.
func StudyRunnerNames() []string { return study.RunnerNames() }

// NewStudyRunnerFor builds the runner backend a study declared via
// WithRunner, configured with opts; studies with no declared backend
// get the default in-process pool.
func NewStudyRunnerFor(st *Study, opts StudyRunnerOpts) (StudyRunner, error) {
	return study.NewRunnerFor(st, opts)
}

// MergeStudyShards reassembles a full study result from shard dumps,
// validating completeness; the merged summary and telemetry exports
// are byte-identical to a single-process run of the same study.
func MergeStudyShards(st *Study, dumps ...*StudyShardDump) (*StudyResult, error) {
	return study.MergeShards(st, dumps...)
}

// ReadStudyShard parses one shard dump written by StudyResult.WriteShard.
func ReadStudyShard(r io.Reader) (*StudyShardDump, error) { return study.ReadShard(r) }

// Fleet types (internal/fleet): distributing a registered study across
// worker processes with driver-owned robustness — per-attempt deadlines
// and stall detection, bounded deterministic-backoff retry, re-queueing
// a dead worker's shard onto surviving slots, and grid-fingerprint
// validation. Merged output is byte-identical to a single-process run;
// retries and injected faults leave traces only in the FleetReport.
type (
	// FleetOptions configures a fleet run: backend, worker slots, task
	// partition, retry/deadline/stall policy, and optional chaos.
	FleetOptions = fleet.Options
	// FleetOutput is a completed fleet run: the merged result, the
	// per-shard attempt report, and aggregated obs totals.
	FleetOutput = fleet.Output
	// FleetBackend launches worker processes; LocalExecBackend is the
	// built-in subprocess backend, and the interface is the seam for
	// ssh/k8s-style launchers.
	FleetBackend = fleet.Backend
	// FleetTask identifies one shard attempt handed to a backend.
	FleetTask = fleet.Task
	// FleetProc is a launched worker: its event stream plus kill/wait.
	FleetProc = fleet.Proc
	// LocalExecBackend runs each shard as a local worker subprocess
	// (saath-sim -shard-stream), results streamed over stdout.
	LocalExecBackend = fleet.LocalExec
	// FleetChaos injects worker faults (kill, hang, corrupt, slow) on a
	// shard's first attempt — drills for the driver's recovery paths.
	FleetChaos = fleet.Chaos
	// FleetReport is the structured failure report in the obs manifest:
	// per-shard attempt history, retries, stragglers, outcomes.
	FleetReport = obs.FleetReport
)

// RunFleet executes a study across worker processes per opts and
// merges the shard dumps; the output is byte-identical to running the
// study in-process regardless of worker count, partition, or retries.
func RunFleet(ctx context.Context, st *Study, opts FleetOptions) (*FleetOutput, error) {
	return fleet.Run(ctx, st, opts)
}

// ParseFleetChaos parses a comma-separated fault spec such as
// "kill=0,corrupt=3" (modes: kill, hang, corrupt, slow).
func ParseFleetChaos(spec string) (*FleetChaos, error) { return fleet.ParseChaos(spec) }

// SynthIncast generates the incast workload: Degree senders converging
// on one of a few hot aggregator ports per CoFlow.
func SynthIncast(seed int64) *Trace { return trace.SynthIncast(seed) }

// SynthBroadcast generates the broadcast workload: one root port
// fanning out to Degree receivers per CoFlow.
func SynthBroadcast(seed int64) *Trace { return trace.SynthBroadcast(seed) }

// Workload-mix types (internal/trace): deterministic interleaving of
// several seeded workload families into one trace, the substrate of
// the trace-mix catalog study.
type (
	// MixConfig controls MixTraces (seed, CoFlow budget, arrival gaps).
	MixConfig = trace.MixConfig
	// MixComponent is one weighted ingredient of a mixed workload.
	MixComponent = trace.MixComponent
)

// MixTraces deterministically interleaves the component workloads:
// CoFlows are drawn per component weight in component arrival order,
// re-identified and re-timestamped, with every flow's endpoints and
// bytes preserved verbatim — byte-identical for a given configuration
// at any parallelism or sharding.
func MixTraces(name string, cfg MixConfig, components ...MixComponent) (*Trace, error) {
	return trace.Mix(name, cfg, components...)
}

// SynthMix generates the default mixed workload: FB-like shuffle
// interleaved 50/50 with the incast hotspot family.
func SynthMix(seed int64) *Trace { return trace.SynthMix(seed) }

// Prototype (distributed runtime) types.
type (
	// Coordinator is the global coordinator daemon.
	Coordinator = runtime.Coordinator
	// CoordinatorConfig configures the coordinator.
	CoordinatorConfig = runtime.CoordinatorConfig
	// Agent is a per-node local agent.
	Agent = runtime.Agent
	// AgentConfig configures an agent.
	AgentConfig = runtime.AgentConfig
	// Client is the framework-facing REST client (register /
	// deregister / update).
	Client = runtime.Client
	// CoFlowRunResult is a completed CoFlow measured by the
	// coordinator on the prototype.
	CoFlowRunResult = runtime.CoFlowResult
	// InprocAgent is a simulated per-port agent attached to a
	// coordinator through the in-memory transport seam — no sockets,
	// so 10^5 agents fit in one process.
	InprocAgent = runtime.InprocAgent
	// VirtualClock is a manually-advanced clock; a coordinator built
	// on one produces deterministic, parallelism-independent results.
	VirtualClock = runtime.VirtualClock
	// AdmissionConfig is the coordinator's token-bucket admission
	// front: Register calls beyond the sustained rate + burst are
	// rejected at arrival time with ErrAdmission.
	AdmissionConfig = runtime.AdmissionConfig
)

// Coordinator admission sentinel errors.
var (
	// ErrAdmission reports a registration rejected by the
	// coordinator's token-bucket admission front.
	ErrAdmission = runtime.ErrAdmission
	// ErrCoFlowDuplicate reports a registration whose ID is already
	// live on the coordinator.
	ErrCoFlowDuplicate = runtime.ErrDuplicate
)

// NewVirtualClock returns a virtual clock pinned at start; advance it
// explicitly with Set or Advance.
func NewVirtualClock(start time.Time) *VirtualClock { return runtime.NewVirtualClock(start) }

// DefaultParams returns the paper's default configuration: K=10 queues,
// S=10MB start threshold, E=10 growth, d=2 deadline factor, and every
// Saath feature enabled.
func DefaultParams() Params { return sched.DefaultParams() }

// Schedulers lists the registered scheduling policies: "saath" and its
// ablation variants, "aalo", "baraat", "varys", "scf", "srtf", "sjf-duration",
// "lwtf", and "uc-tcp".
func Schedulers() []string { return sched.Names() }

// NewScheduler instantiates a registered policy.
func NewScheduler(name string, p Params) (Scheduler, error) { return sched.New(name, p) }

// LoadTrace reads a trace file in the public coflow-benchmark format
// (the format of the Facebook trace the paper replays).
func LoadTrace(path string) (*Trace, error) { return trace.ParseFile(path) }

// SynthFB generates the Facebook-like synthetic workload: 150 ports,
// 526 CoFlows, the published width/length-dispersion mix.
func SynthFB(seed int64) *Trace { return trace.SynthFB(seed) }

// SynthOSP generates the online-service-provider-like workload:
// 100 ports, ~1000 CoFlows, busier ports than FB.
func SynthOSP(seed int64) *Trace { return trace.SynthOSP(seed) }

// Synthesize generates a workload from an explicit configuration.
func Synthesize(cfg SynthConfig, name string) *Trace { return trace.Synthesize(cfg, name) }

// Simulate replays tr under the named scheduler with the paper's
// default parameters. Use SimulateWith for custom parameters.
func Simulate(tr *Trace, scheduler string, cfg SimConfig) (*SimResult, error) {
	return SimulateWith(tr, scheduler, DefaultParams(), cfg)
}

// SimulateWith replays tr under the named scheduler with explicit
// scheduler parameters.
func SimulateWith(tr *Trace, scheduler string, p Params, cfg SimConfig) (*SimResult, error) {
	s, err := sched.New(scheduler, p)
	if err != nil {
		return nil, err
	}
	return sim.Run(tr.Clone(), s, cfg)
}

// Speedups computes the per-CoFlow CCT ratio base/target: values above
// one mean target was faster, the paper's speedup metric (§6.1).
func Speedups(base, target *SimResult) []float64 {
	return stats.Speedups(base.CCTByID(), target.CCTByID())
}

// SummarizeSpeedup condenses Speedups(base, target) into the paper's
// median + P10/P90 presentation.
func SummarizeSpeedup(base, target *SimResult) SpeedupSummary {
	return stats.Summarize(Speedups(base, target))
}

// NewCoordinator starts the prototype's global coordinator.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	return runtime.NewCoordinator(cfg)
}

// NewAgent starts a prototype local agent.
func NewAgent(cfg AgentConfig) (*Agent, error) { return runtime.NewAgent(cfg) }

// NewClient returns a framework-facing REST client for a coordinator's
// HTTP address.
func NewClient(httpAddr string) *Client { return runtime.NewClient(httpAddr) }

// Testbed types (internal/testbed): the coordinator-backed study
// backend. Jobs run through the real coordinator with in-process
// simulated agents on a virtual clock — deterministic CCT output at
// any parallelism or shard partition, with wall-clock
// schedule-latency measurements flowing out-of-band into the obs
// manifest's runtime section. Importing this package (or the facade)
// registers the "testbed" runner and the coordinator-latency and
// overload catalog studies.
type (
	// TestbedRunner executes a study's job grid through the real
	// coordinator; it implements StudyRunner and StudyRuntimeReporter.
	TestbedRunner = testbed.Runner
	// TestbedConfig tunes one testbed job execution (admission
	// bucket, boundary cap).
	TestbedConfig = testbed.Config
)

// RunTestbedJob executes one sweep job on the system path: a Manual
// virtual-clock coordinator, one in-process agent per port, arrivals
// admitted at their exact virtual arrival times. Returns the
// deterministic simulator-shaped result plus the out-of-band
// wall-clock runtime record.
func RunTestbedJob(j SweepJob, tc TestbedConfig) (*SimResult, RuntimeRecord, error) {
	return testbed.RunJob(j, tc)
}
