package saath

// Fleet wire-protocol benchmarks and allocation guards. The wire layer
// sits on the driver's hot loop — every worker event (one per finished
// job, plus hello/dump framing) is encoded by the worker and decoded by
// the driver — so its cost contract is explicit: encoding a progress
// event allocates exactly nothing at steady state (pooled encoder
// machinery), and decoding one stays within 1.25x of the allocations
// recorded in BENCH_baseline.json's fleet_layer section. Run
// `make bench-fleet` for the smoke + guard.

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"testing"

	"saath/internal/fleet"
)

// benchProgressEvent is one mid-shard progress event, the dominant
// event kind on the wire (one per completed job).
func benchProgressEvent() *fleet.Event {
	return &fleet.Event{
		Type: fleet.EventProgress,
		Progress: &fleet.Progress{
			Index: 17, Key: "trace=fb-tiny sched=saath seed=3", Group: "fb-tiny",
			Done: 2, Total: 3, ElapsedNs: 1234567,
		},
	}
}

// encodeProgressStream writes n progress events the way a worker does.
func encodeProgressStream(n int) []byte {
	var buf bytes.Buffer
	ev := benchProgressEvent()
	for i := 0; i < n; i++ {
		if err := fleet.WriteEvent(&buf, ev); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// BenchmarkFleetWireEncode measures one worker-side event emission.
func BenchmarkFleetWireEncode(b *testing.B) {
	ev := benchProgressEvent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fleet.WriteEvent(io.Discard, ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetWireDecode measures the driver-side steady state: one
// long-lived EventReader pulling events off a worker stream.
func BenchmarkFleetWireDecode(b *testing.B) {
	stream := encodeProgressStream(4096)
	rd := fleet.NewEventReader(bytes.NewReader(stream))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := rd.Next()
		if err == io.EOF {
			rd = fleet.NewEventReader(bytes.NewReader(stream))
			ev, err = rd.Next()
		}
		if err != nil {
			b.Fatal(err)
		}
		if ev.Type != fleet.EventProgress {
			b.Fatalf("decoded %q, want progress", ev.Type)
		}
	}
}

// fleetBaseline mirrors BENCH_baseline.json's fleet_layer section.
type fleetBaseline struct {
	FleetLayer struct {
		WireDecode struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"wire_decode"`
	} `json:"fleet_layer"`
}

// TestFleetLayerGuards enforces the wire cost contract: encoding one
// progress event allocates exactly nothing at steady state, and
// decoding one stays within 1.25x of the recorded baseline.
func TestFleetLayerGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base fleetBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.FleetLayer.WireDecode.AllocsPerOp == 0 {
		t.Fatal("fleet_layer.wire_decode missing from BENCH_baseline.json")
	}

	ev := benchProgressEvent()
	if got := testing.AllocsPerRun(200, func() {
		if err := fleet.WriteEvent(io.Discard, ev); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("wire encode: %.1f allocs/op, want exactly 0", got)
	}

	rd := fleet.NewEventReader(bytes.NewReader(encodeProgressStream(512)))
	got := testing.AllocsPerRun(200, func() {
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if limit := base.FleetLayer.WireDecode.AllocsPerOp * 1.25; got > limit {
		t.Errorf("wire decode: %.1f allocs/op exceeds 1.25x baseline %.0f",
			got, base.FleetLayer.WireDecode.AllocsPerOp)
	}
}
