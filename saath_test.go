package saath

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSchedulersRegistered(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Schedulers() {
		have[n] = true
	}
	for _, want := range []string{
		"saath", "saath/an+fifo", "saath/an+pf+fifo", "saath/nowc",
		"saath/width-contention", "aalo", "baraat", "baraat/fifo", "varys", "scf", "srtf",
		"sjf-duration", "lwtf", "uc-tcp",
	} {
		if !have[want] {
			t.Errorf("scheduler %q not registered (have %v)", want, Schedulers())
		}
	}
}

// TestPublicSweepFlow drives the facade's sweep surface: grid
// expansion, parallel execution, aggregation.
func TestPublicSweepFlow(t *testing.T) {
	cfg := SynthConfig{
		Seed: 4, NumPorts: 10, NumCoFlows: 15,
		MeanInterArrival: 20 * Millisecond,
		SingleFlowFrac:   0.3, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
		SmallFracNarrow: 0.8, SmallFracWide: 0.5,
		MinSmall: 100 * KB, MaxSmall: MB,
		MinLarge: MB, MaxLarge: 10 * MB,
	}
	grid := SweepGrid{
		Traces: []TraceSource{SynthSource("tiny", func(seed int64) *Trace {
			c := cfg
			c.Seed = seed
			return Synthesize(c, "tiny")
		})},
		Schedulers: []string{"aalo", "saath"},
		Seeds:      []int64{1, 2},
		Params:     DefaultParams(),
	}
	jobs := grid.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("jobs = %d, want 4", len(jobs))
	}
	sum := NewSweepSummary()
	res := RunSweep(context.Background(), jobs, SweepOptions{Parallel: 4, Collectors: []SweepCollector{sum}})
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	tbl := sum.CCTTable("cct")
	if len(tbl.Rows) != 2 {
		t.Fatalf("aggregate rows = %d, want 2 (one per scheduler)", len(tbl.Rows))
	}
}

func TestNewSchedulerErrors(t *testing.T) {
	if _, err := NewScheduler("nope", DefaultParams()); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	s, err := NewScheduler("saath", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "saath" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestPublicSimulateFlow(t *testing.T) {
	cfg := SynthConfig{
		Seed: 4, NumPorts: 12, NumCoFlows: 25,
		MeanInterArrival: 20 * Millisecond,
		SingleFlowFrac:   0.3, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
		SmallFracNarrow: 0.8, SmallFracWide: 0.5,
		MinSmall: MB, MaxSmall: 20 * MB,
		MinLarge: 20 * MB, MaxLarge: 200 * MB,
	}
	tr := Synthesize(cfg, "api-test")
	saathRes, err := Simulate(tr, "saath", SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aaloRes, err := Simulate(tr, "aalo", SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(saathRes.CoFlows) != 25 || len(aaloRes.CoFlows) != 25 {
		t.Fatalf("completions: %d / %d", len(saathRes.CoFlows), len(aaloRes.CoFlows))
	}
	sp := Speedups(aaloRes, saathRes)
	if len(sp) != 25 {
		t.Fatalf("speedups = %d", len(sp))
	}
	sum := SummarizeSpeedup(aaloRes, saathRes)
	if sum.N != 25 || sum.Median <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if !strings.Contains(sum.String(), "median") {
		t.Fatal("summary formatting")
	}
}

func TestSimulateWithCustomParams(t *testing.T) {
	tr := Synthesize(SynthConfig{
		Seed: 1, NumPorts: 4, NumCoFlows: 5,
		MeanInterArrival: 10 * Millisecond,
		SingleFlowFrac:   1, EqualLengthFrac: 1, WideFracNarrowCF: 0,
		SmallFracNarrow: 1, SmallFracWide: 1,
		MinSmall: MB, MaxSmall: 5 * MB, MinLarge: 5 * MB, MaxLarge: 10 * MB,
	}, "custom")
	p := DefaultParams()
	p.Queues.StartThreshold = 100 * MB
	p.DeadlineFactor = 4
	res, err := SimulateWith(tr, "saath", p, SimConfig{Delta: 4 * Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoFlows) != 5 {
		t.Fatalf("completions = %d", len(res.CoFlows))
	}
}

func TestSimulateDoesNotMutateTrace(t *testing.T) {
	tr := SynthFB(2)
	before := tr.Specs[0].Arrival
	if _, err := Simulate(&Trace{Name: "sub", NumPorts: tr.NumPorts, Specs: tr.Specs[:10]}, "uc-tcp", SimConfig{}); err != nil {
		t.Fatal(err)
	}
	if tr.Specs[0].Arrival != before {
		t.Fatal("trace mutated by simulation")
	}
}

func TestLoadTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	content := "4 1\n0 5 1 0 1 1:2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Specs) != 1 || tr.Specs[0].TotalSize() != 2*MB {
		t.Fatalf("trace = %+v", tr.Specs)
	}
	if _, err := LoadTrace(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGbpsRate(t *testing.T) {
	if GbpsRate(1) != Rate(125e6) {
		t.Fatal("unit conversion")
	}
}

func TestPublicPrototypeEndToEnd(t *testing.T) {
	s, err := NewScheduler("saath", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s,
		NumPorts:  2,
		PortRate:  Rate(20e6),
		Delta:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve()
	defer coord.Close()
	for i := 0; i < 2; i++ {
		a, err := NewAgent(AgentConfig{Port: i, CoordinatorAddr: coord.ControlAddr(), StatsInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	client := NewClient(coord.HTTPAddr())
	spec := &Spec{ID: 1, Flows: []FlowSpec{{Src: 0, Dst: 1, Size: 200 * KB}}}
	if err := client.Register(spec); err != nil {
		t.Fatal(err)
	}
	res, err := client.WaitForResults(1, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 1 || res[0].CCT <= 0 {
		t.Fatalf("result = %+v", res[0])
	}
}
