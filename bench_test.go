package saath

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (deliverable (d) in DESIGN.md). Run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN / BenchmarkTableN measures the cost of producing
// that experiment's data and, on the first iteration, prints the rows
// or series the paper reports. Workloads use the quick-scale
// environment (see internal/experiments); cmd/experiments regenerates
// the same output at full published scale.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"saath/internal/coflow"
	"saath/internal/experiments"
	"saath/internal/fabric"
	"saath/internal/report"
	"saath/internal/sched"
	"saath/internal/trace"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the shared quick-scale experiment environment; sharing
// it across benchmarks lets memoized simulation results be reused.
func env() *experiments.Env {
	benchEnvOnce.Do(func() { benchEnv = experiments.NewEnv(experiments.ScaleQuick) })
	return benchEnv
}

var printed sync.Map

// emit prints the tables once per benchmark name, so -bench runs show
// each figure's data exactly once regardless of b.N.
func emit(b *testing.B, tables []*report.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if _, dup := printed.LoadOrStore(b.Name(), true); dup {
		return
	}
	fmt.Fprintf(os.Stdout, "\n--- %s ---\n", b.Name())
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1OutOfSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig1()
		emit(b, tables, err)
	}
}

func BenchmarkFig2WidthAndDeviation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig2()
		emit(b, tables, err)
	}
}

func BenchmarkFig3ClairvoyantPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig3()
		emit(b, tables, err)
	}
}

func BenchmarkFig9Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig9()
		emit(b, tables, err)
	}
}

func BenchmarkFig10Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig10()
		emit(b, tables, err)
	}
}

func BenchmarkFig11BinsFB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig11()
		emit(b, tables, err)
	}
}

func BenchmarkFig12BinsOSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig12()
		emit(b, tables, err)
	}
}

func BenchmarkFig13FCTDeviation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig13()
		emit(b, tables, err)
	}
}

func BenchmarkFig14Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig14()
		emit(b, tables, err)
	}
}

func BenchmarkTable2SchedulingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Table2()
		emit(b, tables, err)
	}
}

func BenchmarkFig15Testbed(b *testing.B) {
	cfg := experiments.DefaultTestbedConfig()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig15(cfg)
		emit(b, tables, err)
	}
}

func BenchmarkFig16JobCompletion(b *testing.B) {
	cfg := experiments.DefaultTestbedConfig()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig16(cfg)
		emit(b, tables, err)
	}
}

func BenchmarkFig17SJFSuboptimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig17()
		emit(b, tables, err)
	}
}

func BenchmarkAblationWorkConservation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().AblationWorkConservation()
		emit(b, tables, err)
	}
}

func BenchmarkAblationContentionMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().AblationContentionMetric()
		emit(b, tables, err)
	}
}

func BenchmarkAblationDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().AblationDynamics()
		emit(b, tables, err)
	}
}

// --- Micro-benchmarks of the scheduler's hot paths (Table 2's cost
// drivers: ordering with LCoF, all-or-none admission, rate filling).

// benchCluster builds a randomized active set of n CoFlows on p ports
// for one scheduling round.
func benchCluster(n, p int) ([]*coflow.CoFlow, *fabric.Fabric) {
	tr := trace.Synthesize(trace.SynthConfig{
		Seed: 42, NumPorts: p, NumCoFlows: n,
		MeanInterArrival: 0, // all live at once: the busy case
		SingleFlowFrac:   0.23, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.4,
		SmallFracNarrow: 0.8, SmallFracWide: 0.4,
		MinSmall: coflow.MB, MaxSmall: 100 * coflow.MB,
		MinLarge: 100 * coflow.MB, MaxLarge: coflow.GB,
	}, "bench")
	active := make([]*coflow.CoFlow, len(tr.Specs))
	for i, s := range tr.Specs {
		active[i] = coflow.New(s)
	}
	return active, fabric.New(p, fabric.DefaultPortRate)
}

// The per-policy Schedule-round benchmarks live in bench_sched_test.go
// (BenchmarkSchedule, BenchmarkScheduleQuick) alongside their
// allocation-regression guards against BENCH_baseline.json.

// BenchmarkContention500 measures the reference (rebuild-everything)
// contention implementation; compare BenchmarkContentionIndexSteadyState
// in internal/sched for the incremental path.
func BenchmarkContention500(b *testing.B) {
	active, _ := benchCluster(500, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Contention(active)
	}
}

func BenchmarkMaxMinFair(b *testing.B) {
	active, fab := benchCluster(200, 100)
	var demands []fabric.Demand
	for _, c := range active {
		for _, f := range c.Flows {
			demands = append(demands, fabric.Demand{Src: f.Src, Dst: f.Dst})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.MaxMinFair(demands)
	}
}

func BenchmarkSimulateQuickFB(b *testing.B) {
	tr := trace.Synthesize(experiments.QuickFBConfig(9), "bench-fb")
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, "saath", SimConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrototypeRegisterToComplete(b *testing.B) {
	// One small CoFlow through the real coordinator/agent path; this
	// measures prototype latency floor (control sync + data plane).
	s, err := NewScheduler("saath", DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s, NumPorts: 2, PortRate: Rate(50e6), Delta: 5 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	go coord.Serve()
	defer coord.Close()
	agents := make([]*Agent, 2)
	for i := range agents {
		agents[i], err = NewAgent(AgentConfig{Port: i, CoordinatorAddr: coord.ControlAddr(), StatsInterval: 5 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		defer agents[i].Close()
	}
	client := NewClient(coord.HTTPAddr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := &Spec{ID: CoFlowID(i + 1), Flows: []FlowSpec{{Src: 0, Dst: 1, Size: 64 * KB}}}
		if err := client.Register(spec); err != nil {
			b.Fatal(err)
		}
		if _, err := client.WaitForResults(i+1, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
