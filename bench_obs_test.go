package saath

// Observability-layer benchmarks and allocation guards. The obs layer
// sits on the engine's hottest paths — counter bumps inside the event
// dispatch loop and a latency-histogram observation per schedule call
// — so its cost contract is explicit: the counter/histogram step
// allocates exactly nothing, and the per-job span record (root plus
// three phase children, the shape internal/sweep writes per job) stays
// within 1.25x of the allocations recorded in BENCH_baseline.json's
// obs_layer section. Run `make bench-obs` for the smoke + guard.

import (
	"encoding/json"
	"os"
	"testing"

	"saath/internal/obs"
)

// jobSpanPhases is the per-job span shape runJob records.
var jobSpanPhases = [...]string{"trace-synth", "run", "export"}

// recordJobSpan builds and closes one job-shaped span tree.
func recordJobSpan() *obs.Span {
	root := obs.StartSpan("job:bench")
	for _, phase := range jobSpanPhases {
		root.Child(phase).End()
	}
	root.End()
	return root
}

// counterStep is one engine observation step: the per-tick and
// per-dispatch counter bumps plus a schedule-latency observation —
// everything the engine does per interval when counters are attached.
func counterStep(c *obs.EngineCounters, i int) {
	c.Ticks++
	c.Epochs++
	c.EventsDispatched++
	c.EventsByKind[i%obs.NumEventKinds]++
	c.HeapPushes++
	if n := int64(i % 64); n > c.HeapMax {
		c.HeapMax = n
	}
	c.Schedule.Observe(1 << (uint(i) % 20))
}

// BenchmarkObsSpanRecord measures one per-job span record.
func BenchmarkObsSpanRecord(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := recordJobSpan(); s.Find("run") == nil {
			b.Fatal("span tree lost a phase")
		}
	}
}

// BenchmarkObsCounterStep measures the engine's per-interval counter
// path; it must report zero allocations.
func BenchmarkObsCounterStep(b *testing.B) {
	var c obs.EngineCounters
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		counterStep(&c, i)
	}
	if c.Schedule.Count != int64(b.N) {
		b.Fatalf("histogram observed %d of %d steps", c.Schedule.Count, b.N)
	}
}

// obsBaseline mirrors BENCH_baseline.json's obs_layer section.
type obsBaseline struct {
	ObsLayer struct {
		SpanRecord struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"span_record"`
	} `json:"obs_layer"`
}

// TestObsLayerGuards enforces the observability cost contract: the
// counter/histogram step allocates exactly nothing, and the per-job
// span record stays within 1.25x of the recorded baseline.
func TestObsLayerGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base obsBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.ObsLayer.SpanRecord.AllocsPerOp == 0 {
		t.Fatal("obs_layer.span_record missing from BENCH_baseline.json")
	}

	var c obs.EngineCounters
	i := 0
	if got := testing.AllocsPerRun(100, func() {
		counterStep(&c, i)
		i++
	}); got != 0 {
		t.Errorf("counter step: %.1f allocs/op, want exactly 0", got)
	}

	got := testing.AllocsPerRun(100, func() { recordJobSpan() })
	if limit := base.ObsLayer.SpanRecord.AllocsPerOp * 1.25; got > limit {
		t.Errorf("span record: %.1f allocs/op exceeds 1.25x baseline %.0f",
			got, base.ObsLayer.SpanRecord.AllocsPerOp)
	}
}
