// Package uctcp implements UC-TCP, the uncoordinated baseline of §6.1:
// no global coordinator, no priority queues — every flow starts as it
// arrives and the fabric's bandwidth settles to the max-min fair
// allocation that competing TCP flows converge to.
package uctcp

import (
	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

// UCTCP is the uncoordinated TCP-fair-sharing baseline.
type UCTCP struct{}

// New builds a UC-TCP scheduler.
func New(sched.Params) (*UCTCP, error) { return &UCTCP{}, nil }

func init() {
	sched.Register("uc-tcp", func(p sched.Params) (sched.Scheduler, error) { return New(p) })
}

// Name implements sched.Scheduler.
func (u *UCTCP) Name() string { return "uc-tcp" }

// Arrive implements sched.Scheduler.
func (u *UCTCP) Arrive(*coflow.CoFlow, coflow.Time) {}

// Depart implements sched.Scheduler.
func (u *UCTCP) Depart(*coflow.CoFlow, coflow.Time) {}

// Schedule gives every sendable flow its max-min fair share.
func (u *UCTCP) Schedule(snap *sched.Snapshot) sched.Allocation {
	var demands []fabric.Demand
	var flows []*coflow.Flow
	for _, c := range snap.Active {
		for _, f := range c.SendableFlows() {
			demands = append(demands, fabric.Demand{Src: f.Src, Dst: f.Dst})
			flows = append(flows, f)
		}
	}
	alloc := make(sched.Allocation, len(flows))
	if len(flows) == 0 {
		return alloc
	}
	rates := snap.Fabric.MaxMinFair(demands)
	for i, f := range flows {
		if rates[i] > 0 {
			alloc[f.ID] = rates[i]
			snap.Fabric.Allocate(f.Src, f.Dst, rates[i])
		}
	}
	return alloc
}
