// Package uctcp implements UC-TCP, the uncoordinated baseline of §6.1:
// no global coordinator, no priority queues — every flow starts as it
// arrives and the fabric's bandwidth settles to the max-min fair
// allocation that competing TCP flows converge to.
package uctcp

import (
	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

// UCTCP is the uncoordinated TCP-fair-sharing baseline. The demand and
// rate scratch is reused across intervals.
type UCTCP struct {
	demands []fabric.Demand
	flows   []*coflow.Flow
	rates   []coflow.Rate
}

// New builds a UC-TCP scheduler.
func New(sched.Params) (*UCTCP, error) { return &UCTCP{}, nil }

func init() {
	sched.Register("uc-tcp", func(p sched.Params) (sched.Scheduler, error) { return New(p) })
}

// Name implements sched.Scheduler.
func (u *UCTCP) Name() string { return "uc-tcp" }

// Arrive implements sched.Scheduler.
func (u *UCTCP) Arrive(*coflow.CoFlow, coflow.Time) {}

// Depart implements sched.Scheduler.
func (u *UCTCP) Depart(*coflow.CoFlow, coflow.Time) {}

// Schedule gives every sendable flow its max-min fair share.
func (u *UCTCP) Schedule(snap *sched.Snapshot) *sched.RateVec {
	alloc := snap.Allocation()
	u.demands = u.demands[:0]
	u.flows = u.flows[:0]
	for _, c := range snap.Active {
		for _, f := range c.SendableFlows() {
			u.demands = append(u.demands, fabric.Demand{Src: f.Src, Dst: f.Dst})
			u.flows = append(u.flows, f)
		}
	}
	if len(u.flows) == 0 {
		return alloc
	}
	u.rates = snap.Fabric.MaxMinFairInto(u.rates[:0], u.demands)
	for i, f := range u.flows {
		if u.rates[i] > 0 {
			alloc.Set(f.Idx, u.rates[i])
			snap.Fabric.Allocate(f.Src, f.Dst, u.rates[i])
		}
	}
	return alloc
}
