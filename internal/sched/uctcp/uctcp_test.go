package uctcp

import (
	"math"
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

func TestFairSharing(t *testing.T) {
	u, _ := New(sched.Params{})
	// Three flows out of one port: equal thirds regardless of coflow
	// identity or size (no queues, no priorities).
	c1 := coflow.New(&coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 1, Size: coflow.GB},
		{Src: 0, Dst: 2, Size: coflow.MB},
	}})
	c2 := coflow.New(&coflow.Spec{ID: 2, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 3, Size: coflow.KB},
	}})
	snap := &sched.Snapshot{Active: []*coflow.CoFlow{c1, c2}, Fabric: fabric.New(4, 300)}
	alloc := u.Schedule(snap)
	alloc.Range(func(idx int, r coflow.Rate) bool {
		if math.Abs(float64(r)-100) > 1e-6 {
			t.Fatalf("flow idx %d rate %v, want 100", idx, r)
		}
		return true
	})
	if alloc.Len() != 3 {
		t.Fatalf("alloc size = %d", alloc.Len())
	}
}

func TestEmptyAndLifecycle(t *testing.T) {
	u, _ := New(sched.Params{})
	if u.Name() != "uc-tcp" {
		t.Fatal("name")
	}
	snap := &sched.Snapshot{Fabric: fabric.New(2, 100)}
	if alloc := u.Schedule(snap); alloc.Len() != 0 {
		t.Fatal("empty snapshot alloc")
	}
	c := coflow.New(&coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 1}}})
	u.Arrive(c, 0)
	u.Depart(c, 0)
}

func TestSkipsDoneAndUnavailable(t *testing.T) {
	u, _ := New(sched.Params{})
	c := coflow.New(&coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 1, Size: 10},
		{Src: 0, Dst: 2, Size: 10},
	}})
	c.Flows[0].Done = true
	c.Flows[1].Available = false
	snap := &sched.Snapshot{Active: []*coflow.CoFlow{c}, Fabric: fabric.New(3, 100)}
	if alloc := u.Schedule(snap); alloc.Len() != 0 {
		t.Fatalf("alloc = %v", alloc)
	}
}
