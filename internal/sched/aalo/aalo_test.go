package aalo

import (
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

func mk(id coflow.CoFlowID, arrived coflow.Time, flows ...coflow.FlowSpec) *coflow.CoFlow {
	c := coflow.New(&coflow.Spec{ID: id, Arrival: arrived, Flows: flows})
	c.Arrived = arrived
	return c
}

func snap(ports int, cs ...*coflow.CoFlow) *sched.Snapshot {
	return &sched.Snapshot{Active: cs, Fabric: fabric.New(ports, fabric.DefaultPortRate)}
}

func TestFIFOWithinQueue(t *testing.T) {
	a, err := New(sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Same queue (both fresh), same port: earlier arrival wins fully.
	c1 := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.GB})
	c2 := mk(2, 1, coflow.FlowSpec{Src: 0, Dst: 3, Size: coflow.GB})
	alloc := a.Schedule(snap(4, c1, c2))
	if alloc.Rate(c1.Flows[0].Idx) != fabric.DefaultPortRate {
		t.Fatalf("FIFO head rate = %v", alloc.Rate(c1.Flows[0].Idx))
	}
	if alloc.Rate(c2.Flows[0].Idx) != 0 {
		t.Fatalf("FIFO tail rate = %v, want 0", alloc.Rate(c2.Flows[0].Idx))
	}
}

func TestQueueDemotionByTotalBytes(t *testing.T) {
	a, _ := New(sched.DefaultParams())
	// c1 arrived earlier but has sent 50 MB total (queue 1); fresh c2
	// sits in queue 0 and takes the shared port.
	c1 := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.GB})
	c1.Flows[0].Sent = 50 * coflow.MB
	c2 := mk(2, 5, coflow.FlowSpec{Src: 0, Dst: 3, Size: coflow.GB})
	alloc := a.Schedule(snap(4, c1, c2))
	if alloc.Rate(c2.Flows[0].Idx) != fabric.DefaultPortRate {
		t.Fatalf("fresh coflow rate = %v, want line rate", alloc.Rate(c2.Flows[0].Idx))
	}
	if alloc.Rate(c1.Flows[0].Idx) != 0 {
		t.Fatalf("demoted coflow rate = %v, want 0", alloc.Rate(c1.Flows[0].Idx))
	}
}

func TestOutOfSyncByDesign(t *testing.T) {
	// The defining Aalo behaviour Saath removes: a CoFlow's flows on
	// different ports are scheduled independently — here one flow
	// rides an idle port while the other queues behind a competitor.
	a, _ := New(sched.DefaultParams())
	c1 := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.GB})
	c2 := mk(2, 1,
		coflow.FlowSpec{Src: 0, Dst: 3, Size: coflow.GB},
		coflow.FlowSpec{Src: 1, Dst: 4, Size: coflow.GB},
	)
	alloc := a.Schedule(snap(5, c1, c2))
	if alloc.Rate(c2.Flows[0].Idx) != 0 {
		t.Fatal("blocked flow should wait")
	}
	if alloc.Rate(c2.Flows[1].Idx) != fabric.DefaultPortRate {
		t.Fatal("free-port flow should run (out-of-sync)")
	}
}

func TestReceiverConstraintRespected(t *testing.T) {
	a, _ := New(sched.DefaultParams())
	// Two coflows from different senders into one receiver: the first
	// port scanned takes the ingress capacity.
	c1 := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.GB})
	c2 := mk(2, 0, coflow.FlowSpec{Src: 1, Dst: 2, Size: coflow.GB})
	alloc := a.Schedule(snap(3, c1, c2))
	total := alloc.Rate(c1.Flows[0].Idx) + alloc.Rate(c2.Flows[0].Idx)
	if total > fabric.DefaultPortRate {
		t.Fatalf("ingress oversubscribed: %v", total)
	}
}

func TestLifecycleNoops(t *testing.T) {
	a, _ := New(sched.DefaultParams())
	c := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 1, Size: 1})
	a.Arrive(c, 0) // must not panic
	a.Depart(c, 1)
	if a.Name() != "aalo" {
		t.Fatal("name")
	}
}
