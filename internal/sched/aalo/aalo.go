// Package aalo reimplements the Aalo scheduler (Chowdhury & Stoica,
// SIGCOMM 2015) as the paper's primary baseline (§2.2).
//
// Aalo approximates Shortest-CoFlow-First without prior knowledge
// using discrete priority queues: the global coordinator places each
// CoFlow in a queue by the *total* bytes it has sent so far, and each
// port independently schedules its local flows — strict priority
// across queues, FIFO (by CoFlow arrival) within a queue. There is no
// coordination of a CoFlow's flows across ports, which produces the
// out-of-sync behaviour Saath eliminates.
package aalo

import (
	"sort"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// Aalo is the baseline scheduler.
type Aalo struct {
	params sched.Params
}

// New builds an Aalo scheduler.
func New(p sched.Params) (*Aalo, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	return &Aalo{params: p}, nil
}

func init() {
	sched.Register("aalo", func(p sched.Params) (sched.Scheduler, error) { return New(p) })
}

// Name implements sched.Scheduler.
func (a *Aalo) Name() string { return "aalo" }

// Arrive implements sched.Scheduler. Aalo derives queue placement
// directly from bytes sent, so no per-CoFlow state is needed.
func (a *Aalo) Arrive(c *coflow.CoFlow, now coflow.Time) {}

// Depart implements sched.Scheduler.
func (a *Aalo) Depart(c *coflow.CoFlow, now coflow.Time) {}

// localFlow is one sendable flow as seen by its sender port's local
// scheduler.
type localFlow struct {
	f       *coflow.Flow
	queue   int
	arrived coflow.Time
	cid     coflow.CoFlowID
}

// Schedule emulates Aalo's distributed decision: the coordinator pins
// every CoFlow to a logical queue; each sender port then walks its
// local flows from the highest queue in FIFO order, granting each flow
// the residual min(egress, ingress) capacity. Ports are visited in
// index order, which stands in for the uncoordinated races of the real
// distributed system while keeping the simulation deterministic.
func (a *Aalo) Schedule(snap *sched.Snapshot) sched.Allocation {
	alloc := make(sched.Allocation)
	byPort := make(map[coflow.PortID][]localFlow)
	for _, c := range snap.Active {
		q := a.params.Queues.QueueForBytes(c.TotalSent())
		for _, f := range c.SendableFlows() {
			byPort[f.Src] = append(byPort[f.Src], localFlow{f: f, queue: q, arrived: c.Arrived, cid: c.ID()})
		}
	}
	ports := make([]coflow.PortID, 0, len(byPort))
	for p := range byPort {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })

	const eps = 1e-3
	for _, p := range ports {
		flows := byPort[p]
		sort.SliceStable(flows, func(i, j int) bool {
			if flows[i].queue != flows[j].queue {
				return flows[i].queue < flows[j].queue
			}
			if flows[i].arrived != flows[j].arrived {
				return flows[i].arrived < flows[j].arrived
			}
			if flows[i].cid != flows[j].cid {
				return flows[i].cid < flows[j].cid
			}
			return flows[i].f.ID.Index < flows[j].f.ID.Index
		})
		for _, lf := range flows {
			r := snap.Fabric.PathFree(lf.f.Src, lf.f.Dst)
			if float64(r) <= eps {
				continue
			}
			alloc[lf.f.ID] = r
			snap.Fabric.Allocate(lf.f.Src, lf.f.Dst, r)
		}
	}
	return alloc
}
