// Package aalo reimplements the Aalo scheduler (Chowdhury & Stoica,
// SIGCOMM 2015) as the paper's primary baseline (§2.2).
//
// Aalo approximates Shortest-CoFlow-First without prior knowledge
// using discrete priority queues: the global coordinator places each
// CoFlow in a queue by the *total* bytes it has sent so far, and each
// port independently schedules its local flows — strict priority
// across queues, FIFO (by CoFlow arrival) within a queue. There is no
// coordination of a CoFlow's flows across ports, which produces the
// out-of-sync behaviour Saath eliminates.
package aalo

import (
	"cmp"
	"slices"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// Aalo is the baseline scheduler. Per-port work queues are scratch
// reused across intervals (ports are dense indices on the fabric), so
// steady-state scheduling stays allocation-free.
type Aalo struct {
	params sched.Params
	byPort [][]localFlow // indexed by egress PortID
}

// New builds an Aalo scheduler.
func New(p sched.Params) (*Aalo, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	return &Aalo{params: p}, nil
}

func init() {
	sched.Register("aalo", func(p sched.Params) (sched.Scheduler, error) { return New(p) })
}

// Name implements sched.Scheduler.
func (a *Aalo) Name() string { return "aalo" }

// Arrive implements sched.Scheduler. Aalo derives queue placement
// directly from bytes sent, so no per-CoFlow state is needed.
func (a *Aalo) Arrive(c *coflow.CoFlow, now coflow.Time) {}

// Depart implements sched.Scheduler.
func (a *Aalo) Depart(c *coflow.CoFlow, now coflow.Time) {}

// localFlow is one sendable flow as seen by its sender port's local
// scheduler.
type localFlow struct {
	f       *coflow.Flow
	queue   int
	arrived coflow.Time
	cid     coflow.CoFlowID
}

// cmpLocal orders one port's flows: queue, then arrival, then CoFlow
// ID, then flow index.
func cmpLocal(a, b localFlow) int {
	if a.queue != b.queue {
		return cmp.Compare(a.queue, b.queue)
	}
	if a.arrived != b.arrived {
		return cmp.Compare(a.arrived, b.arrived)
	}
	if a.cid != b.cid {
		return cmp.Compare(a.cid, b.cid)
	}
	return cmp.Compare(a.f.ID.Index, b.f.ID.Index)
}

// Schedule emulates Aalo's distributed decision: the coordinator pins
// every CoFlow to a logical queue; each sender port then walks its
// local flows from the highest queue in FIFO order, granting each flow
// the residual min(egress, ingress) capacity. Ports are visited in
// index order, which stands in for the uncoordinated races of the real
// distributed system while keeping the simulation deterministic.
func (a *Aalo) Schedule(snap *sched.Snapshot) *sched.RateVec {
	alloc := snap.Allocation()
	np := snap.Fabric.NumPorts()
	for len(a.byPort) < np {
		a.byPort = append(a.byPort, nil)
	}
	for p := 0; p < np; p++ {
		a.byPort[p] = a.byPort[p][:0]
	}
	for _, c := range snap.Active {
		q := a.params.Queues.QueueForBytes(c.TotalSent())
		for _, f := range c.SendableFlows() {
			a.byPort[f.Src] = append(a.byPort[f.Src], localFlow{f: f, queue: q, arrived: c.Arrived, cid: c.ID()})
		}
	}

	const eps = 1e-3
	for p := 0; p < np; p++ {
		flows := a.byPort[p]
		if len(flows) == 0 {
			continue
		}
		slices.SortStableFunc(flows, cmpLocal)
		for _, lf := range flows {
			r := snap.Fabric.PathFree(lf.f.Src, lf.f.Dst)
			if float64(r) <= eps {
				continue
			}
			alloc.Set(lf.f.Idx, r)
			snap.Fabric.Allocate(lf.f.Src, lf.f.Dst, r)
		}
	}
	return alloc
}
