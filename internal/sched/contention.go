package sched

import "saath/internal/coflow"

// ContentionIndex computes k_c — the number of *other* CoFlows with a
// sendable flow on any port a CoFlow occupies (§3 idea 3) —
// incrementally. Where Contention rebuilds O(flows × ports) maps of
// maps every interval, the index keeps a port → coflow occupancy
// structure alive across intervals and refreshes a CoFlow's
// contribution only when its mutation epoch changed (arrival,
// departure, flow completion, availability flip). On a steady-state
// tick Sync touches no memory beyond the live set and K allocates
// nothing.
//
// Values are exactly those of Contention for the same active set; the
// equivalence is pinned by TestContentionIndexMatchesReference.
type ContentionIndex struct {
	states  map[*coflow.CoFlow]*cfOcc
	ports   map[occKey][]occEntry
	syncGen uint64
	queryID uint64
}

// occKey identifies one direction of one port.
type occKey struct {
	p       coflow.PortID
	ingress bool
}

// cfOcc is the index's per-CoFlow state.
type cfOcc struct {
	c     *coflow.CoFlow
	gen   uint64   // bumped per refresh; memberships with an older gen are stale
	seen  uint64   // last Sync generation that listed this CoFlow
	mark  uint64   // query stamp used to deduplicate during K
	epoch uint64   // CoFlow.CacheEpoch at the last refresh
	ports []occKey // distinct port directions contributed this gen
}

// occEntry is one CoFlow's membership in a port's occupancy list. The
// entry is stale (and compacted away on the next scan) once the owner
// refreshed to a newer gen.
type occEntry struct {
	occ *cfOcc
	gen uint64
}

// NewContentionIndex returns an empty index.
func NewContentionIndex() *ContentionIndex {
	return &ContentionIndex{
		states: make(map[*coflow.CoFlow]*cfOcc),
		ports:  make(map[occKey][]occEntry),
	}
}

// Sync reconciles the index with the current active set: new CoFlows
// are added, CoFlows whose mutation epoch changed are refreshed, and
// CoFlows that disappeared are dropped. Call once per interval before
// querying K.
func (x *ContentionIndex) Sync(active []*coflow.CoFlow) {
	x.syncGen++
	for _, c := range active {
		occ := x.states[c]
		if occ == nil {
			occ = &cfOcc{c: c}
			x.states[c] = occ
			x.refresh(occ)
		} else if occ.epoch != c.CacheEpoch() {
			x.refresh(occ)
		}
		occ.seen = x.syncGen
	}
	// states is a superset of the marked active set, so a departed
	// CoFlow implies a size mismatch — sweep only then.
	if len(x.states) > len(active) {
		//saath:order-independent each stale entry is invalidated and deleted independently
		for c, occ := range x.states {
			if occ.seen != x.syncGen {
				occ.gen++ // invalidate the occ's port memberships
				delete(x.states, c)
			}
		}
	}
}

// refresh recomputes one CoFlow's port contributions from its cached
// PortUse. Old memberships are invalidated wholesale by bumping gen;
// they are filtered out lazily the next time their port is scanned.
func (x *ContentionIndex) refresh(occ *cfOcc) {
	occ.gen++
	occ.epoch = occ.c.CacheEpoch()
	occ.ports = occ.ports[:0]
	u := occ.c.Use()
	// The membership lists built here are only ever consumed as sets
	// (K dedups by mark and counts), so their order cannot leak.
	//saath:order-independent
	for p := range u.SrcFlows {
		x.join(occ, occKey{p, false})
	}
	//saath:order-independent
	for p := range u.DstFlows {
		x.join(occ, occKey{p, true})
	}
}

func (x *ContentionIndex) join(occ *cfOcc, k occKey) {
	occ.ports = append(occ.ports, k)
	x.ports[k] = append(x.ports[k], occEntry{occ: occ, gen: occ.gen})
}

// K returns k_c for a CoFlow present in the last Sync (zero
// otherwise): the number of distinct other live CoFlows sharing at
// least one of its occupied port directions. Stale memberships
// encountered along the way are compacted in place.
func (x *ContentionIndex) K(c *coflow.CoFlow) int {
	occ := x.states[c]
	if occ == nil {
		return 0
	}
	x.queryID++
	k := 0
	for _, pk := range occ.ports {
		list := x.ports[pk]
		w := 0
		for _, e := range list {
			if e.occ.gen != e.gen {
				continue // stale membership: owner refreshed or departed
			}
			list[w] = e
			w++
			if e.occ == occ || e.occ.mark == x.queryID {
				continue
			}
			e.occ.mark = x.queryID
			k++
		}
		x.ports[pk] = list[:w]
	}
	return k
}
