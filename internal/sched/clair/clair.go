// Package clair implements the clairvoyant ordering policies the paper
// uses to motivate contention-aware scheduling (§2.4, Fig. 3, Fig. 17):
//
//   - SCF  — Shortest CoFlow First, by total (static) CoFlow bytes;
//   - SRTF — Shortest Remaining Time First, by total remaining bytes;
//   - SJF-duration — shortest bottleneck duration first, the variant
//     Appendix A shows is sub-optimal;
//   - LWTF — Least Waiting Time First, by t·k: bottleneck duration t
//     times contention k, the spatially-aware key that outperforms
//     SCF/SRTF and prefigures LCoF.
//
// All four read ground-truth sizes (offline setting). Given the global
// order, allocation is strict priority with built-in work
// conservation: each flow of each CoFlow, in order, receives the
// residual min(egress, ingress) bandwidth on its path.
package clair

import (
	"cmp"
	"fmt"
	"slices"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// Policy selects the clairvoyant ordering key.
type Policy string

// The supported policies.
const (
	SCF         Policy = "scf"
	SRTF        Policy = "srtf"
	SJFDuration Policy = "sjf-duration"
	LWTF        Policy = "lwtf"
)

// Clair is a clairvoyant global-priority scheduler. The ordering
// scratch (key vector, order slice) is reused across intervals, and
// LWTF's contention comes from the incremental index.
type Clair struct {
	policy Policy
	cindex *sched.ContentionIndex
	keys   []float64 // by CoFlow.Idx
	order  []*coflow.CoFlow
}

// New builds a clairvoyant scheduler for the given policy.
func New(policy Policy) (*Clair, error) {
	switch policy {
	case SCF, SRTF, SJFDuration, LWTF:
		return &Clair{policy: policy, cindex: sched.NewContentionIndex()}, nil
	default:
		return nil, fmt.Errorf("clair: unknown policy %q", policy)
	}
}

func init() {
	for _, p := range []Policy{SCF, SRTF, SJFDuration, LWTF} {
		policy := p
		sched.Register(string(policy), func(sched.Params) (sched.Scheduler, error) {
			return New(policy)
		})
	}
}

// Name implements sched.Scheduler.
func (c *Clair) Name() string { return string(c.policy) }

// Arrive implements sched.Scheduler.
func (c *Clair) Arrive(*coflow.CoFlow, coflow.Time) {}

// Depart implements sched.Scheduler.
func (c *Clair) Depart(*coflow.CoFlow, coflow.Time) {}

// Schedule orders the active CoFlows by the policy key (ties by ID)
// and allocates greedily in that order.
func (c *Clair) Schedule(snap *sched.Snapshot) *sched.RateVec {
	alloc := snap.Allocation()
	c.order = append(c.order[:0], snap.Active...)
	c.computeKeys(snap)
	slices.SortStableFunc(c.order, func(a, b *coflow.CoFlow) int {
		if ka, kb := c.keys[a.Idx], c.keys[b.Idx]; ka != kb {
			return cmp.Compare(ka, kb)
		}
		return cmp.Compare(a.ID(), b.ID())
	})

	const eps = 1e-3
	for _, cf := range c.order {
		for _, f := range cf.SendableFlows() {
			r := snap.Fabric.PathFree(f.Src, f.Dst)
			if float64(r) <= eps {
				continue
			}
			alloc.Set(f.Idx, r)
			snap.Fabric.Allocate(f.Src, f.Dst, r)
		}
	}
	return alloc
}

// computeKeys fills the ordering key for every active CoFlow into the
// dense key vector.
func (c *Clair) computeKeys(snap *sched.Snapshot) {
	for len(c.keys) < snap.CoFlowCap {
		c.keys = append(c.keys, 0)
	}
	rate := snap.Fabric.PortRate()
	if c.policy == LWTF {
		c.cindex.Sync(snap.Active)
	}
	for _, cf := range snap.Active {
		switch c.policy {
		case SCF:
			c.keys[cf.Idx] = float64(cf.Spec.TotalSize())
		case SRTF:
			c.keys[cf.Idx] = float64(cf.TotalRemaining())
		case SJFDuration:
			c.keys[cf.Idx] = cf.BottleneckRemaining(rate).Seconds()
		case LWTF:
			t := cf.BottleneckRemaining(rate).Seconds()
			c.keys[cf.Idx] = t * float64(c.cindex.K(cf))
		}
	}
}
