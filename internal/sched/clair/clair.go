// Package clair implements the clairvoyant ordering policies the paper
// uses to motivate contention-aware scheduling (§2.4, Fig. 3, Fig. 17):
//
//   - SCF  — Shortest CoFlow First, by total (static) CoFlow bytes;
//   - SRTF — Shortest Remaining Time First, by total remaining bytes;
//   - SJF-duration — shortest bottleneck duration first, the variant
//     Appendix A shows is sub-optimal;
//   - LWTF — Least Waiting Time First, by t·k: bottleneck duration t
//     times contention k, the spatially-aware key that outperforms
//     SCF/SRTF and prefigures LCoF.
//
// All four read ground-truth sizes (offline setting). Given the global
// order, allocation is strict priority with built-in work
// conservation: each flow of each CoFlow, in order, receives the
// residual min(egress, ingress) bandwidth on its path.
package clair

import (
	"fmt"
	"sort"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// Policy selects the clairvoyant ordering key.
type Policy string

// The supported policies.
const (
	SCF         Policy = "scf"
	SRTF        Policy = "srtf"
	SJFDuration Policy = "sjf-duration"
	LWTF        Policy = "lwtf"
)

// Clair is a clairvoyant global-priority scheduler.
type Clair struct {
	policy Policy
}

// New builds a clairvoyant scheduler for the given policy.
func New(policy Policy) (*Clair, error) {
	switch policy {
	case SCF, SRTF, SJFDuration, LWTF:
		return &Clair{policy: policy}, nil
	default:
		return nil, fmt.Errorf("clair: unknown policy %q", policy)
	}
}

func init() {
	for _, p := range []Policy{SCF, SRTF, SJFDuration, LWTF} {
		policy := p
		sched.Register(string(policy), func(sched.Params) (sched.Scheduler, error) {
			return New(policy)
		})
	}
}

// Name implements sched.Scheduler.
func (c *Clair) Name() string { return string(c.policy) }

// Arrive implements sched.Scheduler.
func (c *Clair) Arrive(*coflow.CoFlow, coflow.Time) {}

// Depart implements sched.Scheduler.
func (c *Clair) Depart(*coflow.CoFlow, coflow.Time) {}

// Schedule orders the active CoFlows by the policy key and allocates
// greedily in that order.
func (c *Clair) Schedule(snap *sched.Snapshot) sched.Allocation {
	order := append([]*coflow.CoFlow(nil), snap.Active...)
	keys := c.keys(order, snap)
	sort.SliceStable(order, func(i, j int) bool {
		ki, kj := keys[order[i].ID()], keys[order[j].ID()]
		if ki != kj {
			return ki < kj
		}
		return order[i].ID() < order[j].ID()
	})

	alloc := make(sched.Allocation)
	const eps = 1e-3
	for _, cf := range order {
		for _, f := range cf.SendableFlows() {
			r := snap.Fabric.PathFree(f.Src, f.Dst)
			if float64(r) <= eps {
				continue
			}
			alloc[f.ID] = r
			snap.Fabric.Allocate(f.Src, f.Dst, r)
		}
	}
	return alloc
}

// keys computes the ordering key for every active CoFlow.
func (c *Clair) keys(active []*coflow.CoFlow, snap *sched.Snapshot) map[coflow.CoFlowID]float64 {
	out := make(map[coflow.CoFlowID]float64, len(active))
	rate := snap.Fabric.PortRate()
	var contention map[coflow.CoFlowID]int
	if c.policy == LWTF {
		contention = sched.Contention(active)
	}
	for _, cf := range active {
		switch c.policy {
		case SCF:
			out[cf.ID()] = float64(cf.Spec.TotalSize())
		case SRTF:
			out[cf.ID()] = float64(cf.TotalRemaining())
		case SJFDuration:
			out[cf.ID()] = cf.BottleneckRemaining(rate).Seconds()
		case LWTF:
			t := cf.BottleneckRemaining(rate).Seconds()
			out[cf.ID()] = t * float64(contention[cf.ID()])
		}
	}
	return out
}
