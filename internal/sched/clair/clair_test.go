package clair

import (
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

func mk(id coflow.CoFlowID, flows ...coflow.FlowSpec) *coflow.CoFlow {
	return coflow.New(&coflow.Spec{ID: id, Flows: flows})
}

func snap(ports int, cs ...*coflow.CoFlow) *sched.Snapshot {
	return &sched.Snapshot{Active: cs, Fabric: fabric.New(ports, fabric.DefaultPortRate)}
}

func TestNewValidatesPolicy(t *testing.T) {
	for _, p := range []Policy{SCF, SRTF, SJFDuration, LWTF} {
		c, err := New(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if c.Name() != string(p) {
			t.Fatalf("name = %q", c.Name())
		}
	}
	if _, err := New(Policy("nope")); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSCFPrefersSmallerTotal(t *testing.T) {
	c, _ := New(SCF)
	big := mk(1, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.GB})
	small := mk(2, coflow.FlowSpec{Src: 0, Dst: 3, Size: coflow.MB})
	alloc := c.Schedule(snap(4, big, small))
	if alloc.Rate(small.Flows[0].Idx) != fabric.DefaultPortRate {
		t.Fatalf("small rate = %v", alloc.Rate(small.Flows[0].Idx))
	}
	if alloc.Rate(big.Flows[0].Idx) != 0 {
		t.Fatalf("big rate = %v", alloc.Rate(big.Flows[0].Idx))
	}
}

func TestSRTFUsesRemainingNotTotal(t *testing.T) {
	c, _ := New(SRTF)
	// big has nearly finished: remaining 1 MB < small's 10 MB.
	big := mk(1, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.GB})
	big.Flows[0].Sent = coflow.GB - coflow.MB
	small := mk(2, coflow.FlowSpec{Src: 0, Dst: 3, Size: 10 * coflow.MB})
	alloc := c.Schedule(snap(4, big, small))
	if alloc.Rate(big.Flows[0].Idx) != fabric.DefaultPortRate {
		t.Fatal("SRTF should prefer the nearly-done coflow")
	}
	// SCF (static total) makes the opposite call.
	c2, _ := New(SCF)
	alloc2 := c2.Schedule(snap(4, big, small))
	if alloc2.Rate(small.Flows[0].Idx) != fabric.DefaultPortRate {
		t.Fatal("SCF should prefer the smaller total")
	}
}

func TestSJFDurationIsBottleneckKeyed(t *testing.T) {
	c, _ := New(SJFDuration)
	// Fig. 17: C1 has two 5-unit flows (duration 5t), C2 one 6-unit
	// flow. Duration-SJF runs C1 first even though C1's total (10) is
	// larger than C2's (6).
	u := coflow.Bytes(coflow.GbpsRate(1).Transfer(100 * coflow.Millisecond))
	c1 := mk(1,
		coflow.FlowSpec{Src: 0, Dst: 2, Size: 5 * u},
		coflow.FlowSpec{Src: 1, Dst: 3, Size: 5 * u},
	)
	c2 := mk(2, coflow.FlowSpec{Src: 0, Dst: 4, Size: 6 * u})
	alloc := c.Schedule(snap(5, c1, c2))
	if alloc.Rate(c1.Flows[0].Idx) != fabric.DefaultPortRate {
		t.Fatal("duration-SJF should admit C1 first")
	}
	if alloc.Rate(c2.Flows[0].Idx) != 0 {
		t.Fatal("C2 should be blocked at the shared port")
	}
}

func TestLWTFWeighsContention(t *testing.T) {
	c, _ := New(LWTF)
	// Same Fig. 17 shape: k(C1)=2, k(C2)=k(C3)=1.
	// t·k: C1 = 5·2 = 10 > C2 = 6·1, C3 = 7·1 -> C2, C3 first.
	u := coflow.Bytes(coflow.GbpsRate(1).Transfer(100 * coflow.Millisecond))
	c1 := mk(1,
		coflow.FlowSpec{Src: 0, Dst: 2, Size: 5 * u},
		coflow.FlowSpec{Src: 1, Dst: 3, Size: 5 * u},
	)
	c2 := mk(2, coflow.FlowSpec{Src: 0, Dst: 4, Size: 6 * u})
	c3 := mk(3, coflow.FlowSpec{Src: 1, Dst: 5, Size: 7 * u})
	alloc := c.Schedule(snap(6, c1, c2, c3))
	if alloc.Rate(c2.Flows[0].Idx) != fabric.DefaultPortRate || alloc.Rate(c3.Flows[0].Idx) != fabric.DefaultPortRate {
		t.Fatalf("LWTF should admit C2 and C3 first: %v", alloc)
	}
	for _, f := range c1.Flows {
		if alloc.Rate(f.Idx) != 0 {
			t.Fatal("C1 should wait under LWTF")
		}
	}
}

func TestLifecycleNoops(t *testing.T) {
	c, _ := New(SCF)
	cf := mk(1, coflow.FlowSpec{Src: 0, Dst: 1, Size: 1})
	c.Arrive(cf, 0)
	c.Depart(cf, 0)
	if alloc := c.Schedule(snap(2)); alloc.Len() != 0 {
		t.Fatal("empty snapshot")
	}
}
