package sched

import (
	"math/rand"
	"testing"

	"saath/internal/coflow"
)

// kOf runs one Sync+query round over active.
func kOf(x *ContentionIndex, active []*coflow.CoFlow) map[coflow.CoFlowID]int {
	coflow.EnsureIndexed(active)
	x.Sync(active)
	out := make(map[coflow.CoFlowID]int, len(active))
	for _, c := range active {
		out[c.ID()] = x.K(c)
	}
	return out
}

func TestContentionIndexFig1(t *testing.T) {
	c1 := mkCoflow(1, 0, coflow.FlowSpec{Src: 0, Dst: 3, Size: 1})
	c2 := mkCoflow(2, 0,
		coflow.FlowSpec{Src: 0, Dst: 4, Size: 1},
		coflow.FlowSpec{Src: 1, Dst: 5, Size: 1},
		coflow.FlowSpec{Src: 2, Dst: 6, Size: 1})
	c3 := mkCoflow(3, 0, coflow.FlowSpec{Src: 1, Dst: 7, Size: 1})
	c4 := mkCoflow(4, 0, coflow.FlowSpec{Src: 2, Dst: 8, Size: 1})
	k := kOf(NewContentionIndex(), []*coflow.CoFlow{c1, c2, c3, c4})
	want := map[coflow.CoFlowID]int{1: 1, 2: 3, 3: 1, 4: 1}
	for id, w := range want {
		if k[id] != w {
			t.Errorf("k_%d = %d, want %d (all: %v)", id, k[id], w, k)
		}
	}
}

// TestContentionIndexTracksEpochs: the index only refreshes a CoFlow's
// port contributions when its mutation epoch changes, and the values
// follow the mutation.
func TestContentionIndexTracksEpochs(t *testing.T) {
	a := mkCoflow(1, 0, coflow.FlowSpec{Src: 0, Dst: 9, Size: 1})
	b := mkCoflow(2, 0, coflow.FlowSpec{Src: 0, Dst: 8, Size: 1})
	x := NewContentionIndex()
	active := []*coflow.CoFlow{a, b}
	if k := kOf(x, active); k[1] != 1 || k[2] != 1 {
		t.Fatalf("initial k = %v", k)
	}
	// b's only flow completes; with Invalidate the index must notice.
	b.Flows[0].Done = true
	b.Invalidate()
	if k := kOf(x, active); k[1] != 0 || k[2] != 0 {
		t.Fatalf("post-completion k = %v, want zeros", k)
	}
	// b departs entirely; a alone has no contention.
	if k := kOf(x, []*coflow.CoFlow{a}); k[1] != 0 {
		t.Fatalf("post-departure k = %v", k)
	}
}

// TestContentionIndexMatchesReference drives random clusters through
// random per-epoch mutations (completions, availability flips,
// arrivals, departures) and asserts the incremental index agrees with
// the reference Contention implementation after every round.
func TestContentionIndexMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		x := NewContentionIndex()
		nPorts := rng.Intn(6) + 2
		var active []*coflow.CoFlow
		nextID := coflow.CoFlowID(1)
		addCoflow := func() {
			spec := &coflow.Spec{ID: nextID}
			nextID++
			for j := 0; j <= rng.Intn(4); j++ {
				spec.Flows = append(spec.Flows, coflow.FlowSpec{
					Src:  coflow.PortID(rng.Intn(nPorts)),
					Dst:  coflow.PortID(rng.Intn(nPorts)),
					Size: coflow.Bytes(rng.Intn(100) + 1),
				})
			}
			active = append(active, coflow.New(spec))
		}
		for i := 0; i < rng.Intn(8)+2; i++ {
			addCoflow()
		}
		for round := 0; round < 30; round++ {
			// Random churn between rounds.
			switch rng.Intn(4) {
			case 0:
				addCoflow()
			case 1:
				if len(active) > 1 {
					i := rng.Intn(len(active))
					active = append(active[:i], active[i+1:]...)
				}
			case 2:
				if len(active) > 0 {
					c := active[rng.Intn(len(active))]
					f := c.Flows[rng.Intn(len(c.Flows))]
					f.Done = !f.Done
					c.Invalidate()
				}
			case 3:
				if len(active) > 0 {
					c := active[rng.Intn(len(active))]
					f := c.Flows[rng.Intn(len(c.Flows))]
					f.Available = !f.Available
					c.Invalidate()
				}
			}
			got := kOf(x, active)
			want := Contention(active)
			for _, c := range active {
				if got[c.ID()] != want[c.ID()] {
					t.Fatalf("trial %d round %d: k_%d = %d, reference %d",
						trial, round, c.ID(), got[c.ID()], want[c.ID()])
				}
			}
		}
	}
}

func BenchmarkContentionIndexSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var active []*coflow.CoFlow
	for i := 0; i < 500; i++ {
		spec := &coflow.Spec{ID: coflow.CoFlowID(i + 1)}
		for j := 0; j <= rng.Intn(5); j++ {
			spec.Flows = append(spec.Flows, coflow.FlowSpec{
				Src:  coflow.PortID(rng.Intn(150)),
				Dst:  coflow.PortID(rng.Intn(150)),
				Size: coflow.MB,
			})
		}
		active = append(active, coflow.New(spec))
	}
	coflow.EnsureIndexed(active)
	x := NewContentionIndex()
	x.Sync(active)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Sync(active)
		for _, c := range active {
			x.K(c)
		}
	}
}
