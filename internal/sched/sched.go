// Package sched defines the scheduler contract shared by Saath, the
// baselines, the simulator and the distributed prototype, plus helpers
// (contention accounting, deterministic ordering) that several policies
// share.
//
// The model follows the paper's architecture (§4.1): a global
// coordinator recomputes the full-cluster schedule every δ interval
// from CoFlow state, and the resulting per-flow rates are enforced
// until the next schedule arrives.
package sched

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"sync"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/queues"
)

// Snapshot is the cluster state handed to the scheduler each interval.
type Snapshot struct {
	Now coflow.Time
	// Active lists the live (arrived, not finished) CoFlows in
	// deterministic order: arrival time, then ID. The slice is only
	// valid for the duration of the Schedule call — the engine reuses
	// its backing array across intervals; copy it to retain it.
	Active []*coflow.CoFlow
	// Fabric carries full residual capacity; the scheduler draws it
	// down as it assigns rates.
	Fabric *fabric.Fabric

	// FlowCap and CoFlowCap are exclusive upper bounds on the dense
	// Flow.Idx / CoFlow.Idx values present in Active. The engine sets
	// them from its IndexSpace; when zero, Allocation derives them via
	// coflow.EnsureIndexed (hand-built snapshots in tests).
	FlowCap   int
	CoFlowCap int

	// Alloc is the reusable allocation vector for this snapshot.
	// Schedulers obtain it (reset) through Allocation; the engine keeps
	// the snapshot — and therefore the vector — alive across intervals
	// so steady-state ticks allocate nothing.
	Alloc *RateVec
}

// Allocation returns the snapshot's allocation vector, reset and sized
// for every flow index in Active. Every policy starts its Schedule
// with this call and returns the filled vector.
func (s *Snapshot) Allocation() *RateVec {
	if s.FlowCap <= 0 || s.CoFlowCap <= 0 {
		s.FlowCap, s.CoFlowCap = coflow.EnsureIndexed(s.Active)
	}
	if s.Alloc == nil {
		s.Alloc = NewRateVec(s.FlowCap)
	}
	s.Alloc.Reset(s.FlowCap)
	return s.Alloc
}

// Scheduler is a global CoFlow scheduling policy.
//
// Implementations may keep per-CoFlow state keyed by ID; Arrive and
// Depart bracket a CoFlow's lifetime. Schedule must be deterministic
// given the same event sequence. The returned vector is the one handed
// out by Snapshot.Allocation (or nil for "nothing scheduled"); it is
// only valid until the next Schedule call on the same snapshot.
type Scheduler interface {
	Name() string
	Arrive(c *coflow.CoFlow, now coflow.Time)
	Depart(c *coflow.CoFlow, now coflow.Time)
	Schedule(snap *Snapshot) *RateVec
}

// Params carries the knobs shared across schedulers. Zero values are
// replaced by paper defaults via Normalize.
type Params struct {
	Queues queues.Config

	// DeadlineFactor is d in the starvation deadline d·C_q·t (§4.2 D5).
	DeadlineFactor float64

	// WorkConservation toggles scheduling of leftover bandwidth to
	// CoFlows that failed all-or-none admission (§4.2 D4). On by
	// default; the ablation bench turns it off.
	WorkConservation bool

	// PerFlowThresholds selects Saath's Eq. 1 queue placement; when
	// false the Saath ablations fall back to Aalo's total-bytes rule.
	PerFlowThresholds bool

	// LCoF selects Least-Contention-First intra-queue ordering; when
	// false the ablations use FIFO.
	LCoF bool

	// DynamicsSRTF enables the §4.3 straggler/failure optimization:
	// once some flows finish, estimate remaining length from the
	// median finished flow and re-queue the CoFlow accordingly.
	DynamicsSRTF bool

	// WidthContentionProxy replaces the blocked-CoFlow count k_c with
	// CoFlow width as the LCoF key — a cheaper proxy evaluated by the
	// contention-metric ablation bench. Off in the paper's design.
	WidthContentionProxy bool
}

// DefaultParams returns the paper's defaults with every Saath feature
// enabled.
func DefaultParams() Params {
	return Params{
		Queues:            queues.Default(),
		DeadlineFactor:    2,
		WorkConservation:  true,
		PerFlowThresholds: true,
		LCoF:              true,
		DynamicsSRTF:      true,
	}
}

// Normalize fills zero values with defaults and validates the result.
func (p Params) Normalize() (Params, error) {
	if p.Queues.NumQueues == 0 && p.Queues.StartThreshold == 0 && p.Queues.Growth == 0 {
		p.Queues = queues.Default()
	}
	if p.DeadlineFactor == 0 {
		p.DeadlineFactor = 2
	}
	if err := p.Queues.Validate(); err != nil {
		return p, err
	}
	if p.DeadlineFactor < 1 {
		return p, fmt.Errorf("sched: DeadlineFactor=%v, need >=1", p.DeadlineFactor)
	}
	return p, nil
}

// Contention computes k_c for every active CoFlow: the number of
// *other* CoFlows with at least one pending flow on any port (sender
// egress or receiver ingress) that c's pending flows occupy (§3 idea 3).
func Contention(active []*coflow.CoFlow) map[coflow.CoFlowID]int {
	// Port occupancy: which coflows touch each egress/ingress port.
	type portKey struct {
		p       coflow.PortID
		ingress bool
	}
	occupancy := make(map[portKey][]coflow.CoFlowID)
	for _, c := range active {
		seen := make(map[portKey]bool)
		for _, f := range c.Flows {
			if !f.Sendable() {
				continue
			}
			for _, k := range [2]portKey{{f.Src, false}, {f.Dst, true}} {
				if !seen[k] {
					seen[k] = true
					occupancy[k] = append(occupancy[k], c.ID())
				}
			}
		}
	}
	out := make(map[coflow.CoFlowID]int, len(active))
	for _, c := range active {
		blocked := make(map[coflow.CoFlowID]bool)
		counted := make(map[portKey]bool)
		for _, f := range c.Flows {
			if !f.Sendable() {
				continue
			}
			for _, k := range [2]portKey{{f.Src, false}, {f.Dst, true}} {
				if counted[k] {
					continue
				}
				counted[k] = true
				for _, id := range occupancy[k] {
					if id != c.ID() {
						blocked[id] = true
					}
				}
			}
		}
		out[c.ID()] = len(blocked)
	}
	return out
}

// ByArrival sorts CoFlows in place by (arrival, ID): the canonical
// FIFO order used by Aalo and by Saath's deadline bookkeeping. It
// allocates nothing, so the engine calls it every interval.
func ByArrival(cs []*coflow.CoFlow) {
	slices.SortStableFunc(cs, func(a, b *coflow.CoFlow) int {
		if a.Arrived != b.Arrived {
			return cmp.Compare(a.Arrived, b.Arrived)
		}
		return cmp.Compare(a.ID(), b.ID())
	})
}

// Factory builds a scheduler from parameters.
type Factory func(Params) (Scheduler, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register adds a named scheduler factory. It panics on duplicates so
// wiring mistakes fail loudly at init time.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("sched: duplicate scheduler " + name)
	}
	registry[name] = f
}

// New instantiates a registered scheduler.
func New(name string, p Params) (Scheduler, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return f(p)
}

// Names lists the registered schedulers, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
