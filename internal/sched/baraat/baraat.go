// Package baraat implements Baraat-style decentralized task-aware
// scheduling (Dogar et al., SIGCOMM 2014), the other online baseline
// the paper discusses (§8): no global coordinator and no priority
// queues — each port serves CoFlows in FIFO order of arrival with
// *limited multiplexing*: the M oldest CoFlows present at a port share
// it, so one heavy CoFlow cannot monopolize a port, but there is still
// no coordination of a CoFlow's flows across ports. Like Aalo, Baraat
// therefore exhibits the out-of-sync problem Saath removes.
package baraat

import (
	"fmt"
	"sort"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// DefaultMultiplexing is the FIFO-LM degree: how many of the oldest
// CoFlows share each port. 1 degenerates to strict per-port FIFO.
const DefaultMultiplexing = 4

// Baraat is the decentralized FIFO-LM baseline.
type Baraat struct {
	m int
}

// New builds a Baraat scheduler with the given multiplexing level.
func New(multiplexing int) (*Baraat, error) {
	if multiplexing < 1 {
		return nil, fmt.Errorf("baraat: multiplexing %d, need >=1", multiplexing)
	}
	return &Baraat{m: multiplexing}, nil
}

func init() {
	sched.Register("baraat", func(sched.Params) (sched.Scheduler, error) {
		return New(DefaultMultiplexing)
	})
	sched.Register("baraat/fifo", func(sched.Params) (sched.Scheduler, error) {
		return New(1)
	})
}

// Name implements sched.Scheduler.
func (b *Baraat) Name() string {
	if b.m == 1 {
		return "baraat/fifo"
	}
	return "baraat"
}

// Arrive implements sched.Scheduler.
func (b *Baraat) Arrive(*coflow.CoFlow, coflow.Time) {}

// Depart implements sched.Scheduler.
func (b *Baraat) Depart(*coflow.CoFlow, coflow.Time) {}

// Schedule emulates each port's independent FIFO-LM decision: the M
// oldest CoFlows with flows at the port split its remaining egress
// capacity evenly (subject to receiver-side residual capacity), in
// arrival order. Ports are scanned in index order for determinism.
func (b *Baraat) Schedule(snap *sched.Snapshot) sched.Allocation {
	alloc := make(sched.Allocation)
	type entry struct {
		f       *coflow.Flow
		arrived coflow.Time
		cid     coflow.CoFlowID
	}
	byPort := make(map[coflow.PortID][]entry)
	for _, c := range snap.Active {
		for _, f := range c.SendableFlows() {
			byPort[f.Src] = append(byPort[f.Src], entry{f: f, arrived: c.Arrived, cid: c.ID()})
		}
	}
	ports := make([]coflow.PortID, 0, len(byPort))
	for p := range byPort {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })

	const eps = 1e-3
	for _, p := range ports {
		entries := byPort[p]
		sort.SliceStable(entries, func(i, j int) bool {
			if entries[i].arrived != entries[j].arrived {
				return entries[i].arrived < entries[j].arrived
			}
			if entries[i].cid != entries[j].cid {
				return entries[i].cid < entries[j].cid
			}
			return entries[i].f.ID.Index < entries[j].f.ID.Index
		})
		// The M oldest distinct CoFlows at this port are admitted.
		admitted := make(map[coflow.CoFlowID]bool, b.m)
		var live []entry
		for _, e := range entries {
			if !admitted[e.cid] {
				if len(admitted) == b.m {
					continue
				}
				admitted[e.cid] = true
			}
			live = append(live, e)
		}
		if len(live) == 0 {
			continue
		}
		// Even split of the port's residual egress across admitted
		// flows; each flow further bounded by receiver residual.
		share := snap.Fabric.EgressFree(p) / coflow.Rate(len(live))
		for _, e := range live {
			r := share
			if free := snap.Fabric.PathFree(e.f.Src, e.f.Dst); free < r {
				r = free
			}
			if float64(r) <= eps {
				continue
			}
			alloc[e.f.ID] = r
			snap.Fabric.Allocate(e.f.Src, e.f.Dst, r)
		}
	}
	return alloc
}
