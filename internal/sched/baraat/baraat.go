// Package baraat implements Baraat-style decentralized task-aware
// scheduling (Dogar et al., SIGCOMM 2014), the other online baseline
// the paper discusses (§8): no global coordinator and no priority
// queues — each port serves CoFlows in FIFO order of arrival with
// *limited multiplexing*: the M oldest CoFlows present at a port share
// it, so one heavy CoFlow cannot monopolize a port, but there is still
// no coordination of a CoFlow's flows across ports. Like Aalo, Baraat
// therefore exhibits the out-of-sync problem Saath removes.
package baraat

import (
	"cmp"
	"fmt"
	"slices"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// DefaultMultiplexing is the FIFO-LM degree: how many of the oldest
// CoFlows share each port. 1 degenerates to strict per-port FIFO.
const DefaultMultiplexing = 4

// Baraat is the decentralized FIFO-LM baseline. Per-port entry lists
// and the admission scratch are reused across intervals.
type Baraat struct {
	m        int
	byPort   [][]entry // indexed by egress PortID
	admitted []coflow.CoFlowID
	live     []entry
}

// New builds a Baraat scheduler with the given multiplexing level.
func New(multiplexing int) (*Baraat, error) {
	if multiplexing < 1 {
		return nil, fmt.Errorf("baraat: multiplexing %d, need >=1", multiplexing)
	}
	return &Baraat{m: multiplexing}, nil
}

func init() {
	sched.Register("baraat", func(sched.Params) (sched.Scheduler, error) {
		return New(DefaultMultiplexing)
	})
	sched.Register("baraat/fifo", func(sched.Params) (sched.Scheduler, error) {
		return New(1)
	})
}

// Name implements sched.Scheduler.
func (b *Baraat) Name() string {
	if b.m == 1 {
		return "baraat/fifo"
	}
	return "baraat"
}

// Arrive implements sched.Scheduler.
func (b *Baraat) Arrive(*coflow.CoFlow, coflow.Time) {}

// Depart implements sched.Scheduler.
func (b *Baraat) Depart(*coflow.CoFlow, coflow.Time) {}

// entry is one sendable flow queued at its sender port.
type entry struct {
	f       *coflow.Flow
	arrived coflow.Time
	cid     coflow.CoFlowID
}

// cmpEntry orders a port's entries by arrival, CoFlow ID, flow index.
func cmpEntry(a, b entry) int {
	if a.arrived != b.arrived {
		return cmp.Compare(a.arrived, b.arrived)
	}
	if a.cid != b.cid {
		return cmp.Compare(a.cid, b.cid)
	}
	return cmp.Compare(a.f.ID.Index, b.f.ID.Index)
}

func (b *Baraat) isAdmitted(id coflow.CoFlowID) bool {
	for _, a := range b.admitted {
		if a == id {
			return true
		}
	}
	return false
}

// Schedule emulates each port's independent FIFO-LM decision: the M
// oldest CoFlows with flows at the port split its remaining egress
// capacity evenly (subject to receiver-side residual capacity), in
// arrival order. Ports are scanned in index order for determinism.
func (b *Baraat) Schedule(snap *sched.Snapshot) *sched.RateVec {
	alloc := snap.Allocation()
	np := snap.Fabric.NumPorts()
	for len(b.byPort) < np {
		b.byPort = append(b.byPort, nil)
	}
	for p := 0; p < np; p++ {
		b.byPort[p] = b.byPort[p][:0]
	}
	for _, c := range snap.Active {
		for _, f := range c.SendableFlows() {
			b.byPort[f.Src] = append(b.byPort[f.Src], entry{f: f, arrived: c.Arrived, cid: c.ID()})
		}
	}

	const eps = 1e-3
	for p := 0; p < np; p++ {
		entries := b.byPort[p]
		if len(entries) == 0 {
			continue
		}
		slices.SortStableFunc(entries, cmpEntry)
		// The M oldest distinct CoFlows at this port are admitted.
		b.admitted = b.admitted[:0]
		b.live = b.live[:0]
		for _, e := range entries {
			if !b.isAdmitted(e.cid) {
				if len(b.admitted) == b.m {
					continue
				}
				b.admitted = append(b.admitted, e.cid)
			}
			b.live = append(b.live, e)
		}
		if len(b.live) == 0 {
			continue
		}
		// Even split of the port's residual egress across admitted
		// flows; each flow further bounded by receiver residual.
		share := snap.Fabric.EgressFree(coflow.PortID(p)) / coflow.Rate(len(b.live))
		for _, e := range b.live {
			r := share
			if free := snap.Fabric.PathFree(e.f.Src, e.f.Dst); free < r {
				r = free
			}
			if float64(r) <= eps {
				continue
			}
			alloc.Set(e.f.Idx, r)
			snap.Fabric.Allocate(e.f.Src, e.f.Dst, r)
		}
	}
	return alloc
}
