package baraat

import (
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

func mk(id coflow.CoFlowID, arrived coflow.Time, flows ...coflow.FlowSpec) *coflow.CoFlow {
	c := coflow.New(&coflow.Spec{ID: id, Arrival: arrived, Flows: flows})
	c.Arrived = arrived
	return c
}

func snap(ports int, cs ...*coflow.CoFlow) *sched.Snapshot {
	return &sched.Snapshot{Active: cs, Fabric: fabric.New(ports, 100)}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("multiplexing 0 accepted")
	}
	b, err := New(1)
	if err != nil || b.Name() != "baraat/fifo" {
		t.Fatalf("fifo variant: %v %q", err, b.Name())
	}
	b4, _ := New(4)
	if b4.Name() != "baraat" {
		t.Fatalf("name = %q", b4.Name())
	}
}

func TestLimitedMultiplexingSharesPort(t *testing.T) {
	b, _ := New(2)
	c1 := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 1, Size: 1000})
	c2 := mk(2, 1, coflow.FlowSpec{Src: 0, Dst: 2, Size: 1000})
	c3 := mk(3, 2, coflow.FlowSpec{Src: 0, Dst: 3, Size: 1000})
	alloc := b.Schedule(snap(4, c1, c2, c3))
	// M=2: the two oldest coflows split the port; the third waits.
	if alloc.Rate(c1.Flows[0].Idx) != 50 || alloc.Rate(c2.Flows[0].Idx) != 50 {
		t.Fatalf("alloc = %v", alloc)
	}
	if alloc.Rate(c3.Flows[0].Idx) != 0 {
		t.Fatalf("third coflow admitted beyond M: %v", alloc)
	}
}

func TestStrictFIFOVariant(t *testing.T) {
	b, _ := New(1)
	c1 := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 1, Size: 1000})
	c2 := mk(2, 1, coflow.FlowSpec{Src: 0, Dst: 2, Size: 1000})
	alloc := b.Schedule(snap(3, c1, c2))
	if alloc.Rate(c1.Flows[0].Idx) != 100 || alloc.Rate(c2.Flows[0].Idx) != 0 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestMultipleFlowsOfAdmittedCoFlowAllRun(t *testing.T) {
	b, _ := New(1)
	// One coflow with two flows from the same port: both belong to the
	// single admitted coflow and split the port.
	c := mk(1, 0,
		coflow.FlowSpec{Src: 0, Dst: 1, Size: 1000},
		coflow.FlowSpec{Src: 0, Dst: 2, Size: 1000},
	)
	alloc := b.Schedule(snap(3, c))
	if alloc.Rate(c.Flows[0].Idx) != 50 || alloc.Rate(c.Flows[1].Idx) != 50 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestReceiverResidualRespected(t *testing.T) {
	b, _ := New(4)
	// Two senders into one receiver: port scan order means sender 0's
	// flow takes the receiver first; total must not exceed capacity.
	c1 := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 2, Size: 1000})
	c2 := mk(2, 0, coflow.FlowSpec{Src: 1, Dst: 2, Size: 1000})
	alloc := b.Schedule(snap(3, c1, c2))
	total := alloc.Rate(c1.Flows[0].Idx) + alloc.Rate(c2.Flows[0].Idx)
	if total > 100 {
		t.Fatalf("ingress oversubscribed: %v", total)
	}
}

func TestOutOfSyncLikeAalo(t *testing.T) {
	// Baraat shares Aalo's defining limitation: a coflow's flows on
	// different ports are scheduled independently.
	b, _ := New(1)
	c1 := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 2, Size: 1000})
	c2 := mk(2, 1,
		coflow.FlowSpec{Src: 0, Dst: 3, Size: 1000},
		coflow.FlowSpec{Src: 1, Dst: 4, Size: 1000},
	)
	alloc := b.Schedule(snap(5, c1, c2))
	if alloc.Rate(c2.Flows[0].Idx) != 0 || alloc.Rate(c2.Flows[1].Idx) != 100 {
		t.Fatalf("expected out-of-sync split, got %v", alloc)
	}
}

func TestRegistryAndLifecycle(t *testing.T) {
	s, err := sched.New("baraat", sched.Params{})
	if err != nil {
		t.Fatal(err)
	}
	c := mk(1, 0, coflow.FlowSpec{Src: 0, Dst: 1, Size: 1})
	s.Arrive(c, 0)
	s.Depart(c, 0)
	if _, err := sched.New("baraat/fifo", sched.Params{}); err != nil {
		t.Fatal(err)
	}
	if alloc := s.Schedule(snap(2)); alloc.Len() != 0 {
		t.Fatal("empty snapshot")
	}
}
