package varys

import (
	"math"
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

func mk(id coflow.CoFlowID, flows ...coflow.FlowSpec) *coflow.CoFlow {
	return coflow.New(&coflow.Spec{ID: id, Flows: flows})
}

func snap(ports int, cs ...*coflow.CoFlow) *sched.Snapshot {
	return &sched.Snapshot{Active: cs, Fabric: fabric.New(ports, fabric.DefaultPortRate)}
}

func TestSEBFAdmitsSmallestBottleneckFirst(t *testing.T) {
	v, _ := New(sched.Params{})
	big := mk(1, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.GB})
	small := mk(2, coflow.FlowSpec{Src: 0, Dst: 3, Size: coflow.MB})
	alloc := v.Schedule(snap(4, big, small))
	// small's Γ is tiny; it must receive its full MADD rate on the
	// shared egress; big backfills the leftovers.
	rs := alloc.Rate(small.Flows[0].Idx)
	if rs <= 0 {
		t.Fatalf("small coflow starved: %v", alloc)
	}
	rb := alloc.Rate(big.Flows[0].Idx)
	if rs+rb > fabric.DefaultPortRate*1.000001 {
		t.Fatalf("egress oversubscribed: %v + %v", rs, rb)
	}
}

func TestMADDPacesFlowsToFinishTogether(t *testing.T) {
	v, _ := New(sched.Params{})
	// One coflow, two flows of different sizes from different senders
	// into different receivers: MADD scales rates so both finish at Γ.
	c := mk(1,
		coflow.FlowSpec{Src: 0, Dst: 2, Size: 100 * coflow.MB},
		coflow.FlowSpec{Src: 1, Dst: 3, Size: 50 * coflow.MB},
	)
	alloc := v.Schedule(snap(4, c))
	r0 := float64(alloc.Rate(c.Flows[0].Idx))
	r1 := float64(alloc.Rate(c.Flows[1].Idx))
	if r0 <= 0 || r1 <= 0 {
		t.Fatalf("rates = %v, %v", r0, r1)
	}
	// finish times: size/rate equal within float tolerance.
	t0 := 100 * float64(coflow.MB) / r0
	t1 := 50 * float64(coflow.MB) / r1
	if math.Abs(t0-t1)/t0 > 1e-3 {
		t.Fatalf("MADD skew: %v vs %v seconds", t0, t1)
	}
	// Work conservation may top the larger flow up to line rate, but
	// the bottleneck flow must run at (within µs-quantization of) line
	// rate: Γ is rounded up to whole microseconds, so allow 0.01%.
	if math.Abs(r0-float64(fabric.DefaultPortRate))/float64(fabric.DefaultPortRate) > 1e-4 {
		t.Fatalf("bottleneck flow rate = %v", r0)
	}
}

func TestBackfillUsesLeftoverCapacity(t *testing.T) {
	v, _ := New(sched.Params{})
	// Admitted coflow saturates egress 0; a second coflow on disjoint
	// ports must still run via admission or backfill.
	c1 := mk(1, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.MB})
	c2 := mk(2, coflow.FlowSpec{Src: 1, Dst: 3, Size: coflow.GB})
	alloc := v.Schedule(snap(4, c1, c2))
	if alloc.Rate(c2.Flows[0].Idx) <= 0 {
		t.Fatalf("disjoint coflow starved: %v", alloc)
	}
}

func TestEmptySnapshot(t *testing.T) {
	v, _ := New(sched.Params{})
	if alloc := v.Schedule(snap(2)); alloc.Len() != 0 {
		t.Fatalf("alloc = %v", alloc)
	}
	if v.Name() != "varys" {
		t.Fatal("name")
	}
	c := mk(1, coflow.FlowSpec{Src: 0, Dst: 1, Size: 1})
	v.Arrive(c, 0)
	v.Depart(c, 0)
}

func TestNoPortOversubscription(t *testing.T) {
	v, _ := New(sched.Params{})
	// Heavy contention: many coflows into one receiver.
	var cs []*coflow.CoFlow
	for i := 0; i < 8; i++ {
		cs = append(cs, mk(coflow.CoFlowID(i),
			coflow.FlowSpec{Src: coflow.PortID(i), Dst: 9, Size: coflow.Bytes(i+1) * coflow.MB}))
	}
	alloc := v.Schedule(snap(10, cs...))
	var total coflow.Rate
	alloc.Range(func(idx int, r coflow.Rate) bool {
		total += r
		return true
	})
	if total > fabric.DefaultPortRate*1.00001 {
		t.Fatalf("ingress 9 oversubscribed: %v", total)
	}
}
