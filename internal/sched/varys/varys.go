// Package varys reimplements Varys' SEBF+MADD scheduling (Chowdhury,
// Zhong & Stoica, SIGCOMM 2014) as the paper's clairvoyant baseline.
//
// SEBF (Smallest Effective Bottleneck First) admits CoFlows in order
// of Γ, the completion time of the CoFlow's bottleneck port if run at
// full line rate; MADD (Minimum Allocation for Desired Duration) then
// paces every flow so that all finish together at Γ, wasting no
// bandwidth on flows that would only wait for the bottleneck. Leftover
// bandwidth is backfilled max-min fairly (work conservation).
//
// Varys is offline: it reads ground-truth flow sizes, which online
// schedulers like Saath and Aalo never see.
package varys

import (
	"sort"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

// Varys is the clairvoyant SEBF+MADD scheduler.
type Varys struct{}

// New builds a Varys scheduler. Params carry no Varys knobs (it has no
// queues), but the signature matches the registry factory.
func New(p sched.Params) (*Varys, error) { return &Varys{}, nil }

func init() {
	sched.Register("varys", func(p sched.Params) (sched.Scheduler, error) { return New(p) })
}

// Name implements sched.Scheduler.
func (v *Varys) Name() string { return "varys" }

// Arrive implements sched.Scheduler.
func (v *Varys) Arrive(c *coflow.CoFlow, now coflow.Time) {}

// Depart implements sched.Scheduler.
func (v *Varys) Depart(c *coflow.CoFlow, now coflow.Time) {}

// Schedule admits CoFlows in SEBF order with MADD rates, then
// backfills residual capacity max-min fairly across unscheduled flows.
func (v *Varys) Schedule(snap *sched.Snapshot) sched.Allocation {
	alloc := make(sched.Allocation)
	fab := snap.Fabric
	order := append([]*coflow.CoFlow(nil), snap.Active...)
	rate := fab.PortRate()
	sort.SliceStable(order, func(i, j int) bool {
		gi, gj := order[i].BottleneckRemaining(rate), order[j].BottleneckRemaining(rate)
		if gi != gj {
			return gi < gj
		}
		return order[i].ID() < order[j].ID()
	})

	var leftovers []*coflow.CoFlow
	for _, c := range order {
		if !v.admitMADD(fab, c, alloc) {
			leftovers = append(leftovers, c)
		}
	}

	// Work conservation: the remaining flows share residual capacity
	// max-min fairly, mirroring Varys' backfilling.
	var demands []fabric.Demand
	var flows []*coflow.Flow
	for _, c := range leftovers {
		for _, f := range c.SendableFlows() {
			demands = append(demands, fabric.Demand{Src: f.Src, Dst: f.Dst})
			flows = append(flows, f)
		}
	}
	if len(demands) > 0 {
		rates := fab.MaxMinFair(demands)
		for i, f := range flows {
			if rates[i] > 0 {
				alloc[f.ID] += rates[i]
				fab.Allocate(f.Src, f.Dst, rates[i])
			}
		}
	}
	return alloc
}

// admitMADD tries to reserve MADD rates for c: every flow paced to
// finish at the CoFlow's current bottleneck time Γ. Admission is
// all-or-nothing per CoFlow, as in Varys.
func (v *Varys) admitMADD(fab *fabric.Fabric, c *coflow.CoFlow, alloc sched.Allocation) bool {
	gamma := c.BottleneckRemaining(fab.PortRate())
	secs := gamma.Seconds()
	if secs <= 0 {
		return false
	}
	flows := c.SendableFlows()
	if len(flows) == 0 {
		return false
	}
	rates := make([]coflow.Rate, len(flows))
	egNeed := make(map[coflow.PortID]coflow.Rate)
	inNeed := make(map[coflow.PortID]coflow.Rate)
	for i, f := range flows {
		r := coflow.Rate(float64(f.Remaining()) / secs)
		rates[i] = r
		egNeed[f.Src] += r
		inNeed[f.Dst] += r
	}
	const tol = 1.000001 // float slack on feasibility
	for p, need := range egNeed {
		if float64(need) > float64(fab.EgressFree(p))*tol {
			return false
		}
	}
	for p, need := range inNeed {
		if float64(need) > float64(fab.IngressFree(p))*tol {
			return false
		}
	}
	for i, f := range flows {
		r := rates[i]
		if r <= 0 {
			continue
		}
		if free := fab.PathFree(f.Src, f.Dst); r > free {
			r = free // shave float overshoot
		}
		alloc[f.ID] = r
		fab.Allocate(f.Src, f.Dst, r)
	}
	return true
}
