// Package varys reimplements Varys' SEBF+MADD scheduling (Chowdhury,
// Zhong & Stoica, SIGCOMM 2014) as the paper's clairvoyant baseline.
//
// SEBF (Smallest Effective Bottleneck First) admits CoFlows in order
// of Γ, the completion time of the CoFlow's bottleneck port if run at
// full line rate; MADD (Minimum Allocation for Desired Duration) then
// paces every flow so that all finish together at Γ, wasting no
// bandwidth on flows that would only wait for the bottleneck. Leftover
// bandwidth is backfilled max-min fairly (work conservation).
//
// Varys is offline: it reads ground-truth flow sizes, which online
// schedulers like Saath and Aalo never see.
package varys

import (
	"cmp"
	"slices"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

// Varys is the clairvoyant SEBF+MADD scheduler. The Γ key vector, the
// per-port accumulation arrays and the backfill scratch are reused
// across intervals so scheduling stays off the heap.
type Varys struct {
	gammas    []coflow.Time // SEBF key by CoFlow.Idx
	order     []*coflow.CoFlow
	leftovers []*coflow.CoFlow

	// Per-port accumulators (sized to the fabric) plus the lists of
	// ports touched, for O(touched) clearing.
	portBytes []coflow.Bytes // bottleneck: remaining bytes per port direction
	portNeed  []coflow.Rate  // MADD: rate demand per port direction
	touched   []int32

	rates   []coflow.Rate
	demands []fabric.Demand
	flows   []*coflow.Flow
	mmRates []coflow.Rate
}

// New builds a Varys scheduler. Params carry no Varys knobs (it has no
// queues), but the signature matches the registry factory.
func New(p sched.Params) (*Varys, error) { return &Varys{}, nil }

func init() {
	sched.Register("varys", func(p sched.Params) (sched.Scheduler, error) { return New(p) })
}

// Name implements sched.Scheduler.
func (v *Varys) Name() string { return "varys" }

// Arrive implements sched.Scheduler.
func (v *Varys) Arrive(c *coflow.CoFlow, now coflow.Time) {}

// Depart implements sched.Scheduler.
func (v *Varys) Depart(c *coflow.CoFlow, now coflow.Time) {}

// portSlot maps one direction of one port onto the dense accumulator
// arrays: egress ports occupy [0, numPorts), ingress [numPorts, 2n).
func portSlot(p coflow.PortID, ingress bool, numPorts int) int {
	if ingress {
		return numPorts + int(p)
	}
	return int(p)
}

// bottleneck computes Γ — the CoFlow's completion time if every port
// ran dedicated at full rate — equivalently to
// coflow.BottleneckRemaining but against reusable per-port arrays.
func (v *Varys) bottleneck(c *coflow.CoFlow, np int, bw coflow.Rate) coflow.Time {
	v.touched = v.touched[:0]
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		for _, slot := range [2]int{portSlot(f.Src, false, np), portSlot(f.Dst, true, np)} {
			if v.portBytes[slot] == 0 {
				v.touched = append(v.touched, int32(slot))
			}
			v.portBytes[slot] += f.Remaining()
		}
	}
	var worst coflow.Bytes
	for _, slot := range v.touched {
		if b := v.portBytes[slot]; b > worst {
			worst = b
		}
		v.portBytes[slot] = 0
	}
	return bw.TimeToSend(worst)
}

// Schedule admits CoFlows in SEBF order with MADD rates, then
// backfills residual capacity max-min fairly across unscheduled flows.
func (v *Varys) Schedule(snap *sched.Snapshot) *sched.RateVec {
	alloc := snap.Allocation()
	fab := snap.Fabric
	np := fab.NumPorts()
	if len(v.portBytes) < 2*np {
		v.portBytes = make([]coflow.Bytes, 2*np)
		v.portNeed = make([]coflow.Rate, 2*np)
	}
	for len(v.gammas) < snap.CoFlowCap {
		v.gammas = append(v.gammas, 0)
	}
	rate := fab.PortRate()
	v.order = append(v.order[:0], snap.Active...)
	for _, c := range v.order {
		v.gammas[c.Idx] = v.bottleneck(c, np, rate)
	}
	// SEBF order: ascending Γ, ties by ID.
	slices.SortStableFunc(v.order, func(a, b *coflow.CoFlow) int {
		if ga, gb := v.gammas[a.Idx], v.gammas[b.Idx]; ga != gb {
			return cmp.Compare(ga, gb)
		}
		return cmp.Compare(a.ID(), b.ID())
	})

	v.leftovers = v.leftovers[:0]
	for _, c := range v.order {
		if !v.admitMADD(fab, c, v.gammas[c.Idx], alloc) {
			v.leftovers = append(v.leftovers, c)
		}
	}

	// Work conservation: the remaining flows share residual capacity
	// max-min fairly, mirroring Varys' backfilling.
	v.demands = v.demands[:0]
	v.flows = v.flows[:0]
	for _, c := range v.leftovers {
		for _, f := range c.SendableFlows() {
			v.demands = append(v.demands, fabric.Demand{Src: f.Src, Dst: f.Dst})
			v.flows = append(v.flows, f)
		}
	}
	if len(v.demands) > 0 {
		v.mmRates = fab.MaxMinFairInto(v.mmRates[:0], v.demands)
		for i, f := range v.flows {
			if v.mmRates[i] > 0 {
				alloc.Add(f.Idx, v.mmRates[i])
				fab.Allocate(f.Src, f.Dst, v.mmRates[i])
			}
		}
	}
	return alloc
}

// admitMADD tries to reserve MADD rates for c: every flow paced to
// finish at the CoFlow's current bottleneck time Γ (precomputed by the
// caller). Admission is all-or-nothing per CoFlow, as in Varys.
func (v *Varys) admitMADD(fab *fabric.Fabric, c *coflow.CoFlow, gamma coflow.Time, alloc *sched.RateVec) bool {
	secs := gamma.Seconds()
	if secs <= 0 {
		return false
	}
	flows := c.SendableFlows()
	if len(flows) == 0 {
		return false
	}
	np := fab.NumPorts()
	v.rates = v.rates[:0]
	v.touched = v.touched[:0]
	for _, f := range flows {
		r := coflow.Rate(float64(f.Remaining()) / secs)
		v.rates = append(v.rates, r)
		for _, slot := range [2]int{portSlot(f.Src, false, np), portSlot(f.Dst, true, np)} {
			if v.portNeed[slot] == 0 {
				v.touched = append(v.touched, int32(slot))
			}
			v.portNeed[slot] += r
		}
	}
	const tol = 1.000001 // float slack on feasibility
	feasible := true
	for _, slot := range v.touched {
		need := v.portNeed[slot]
		var free coflow.Rate
		if int(slot) < np {
			free = fab.EgressFree(coflow.PortID(slot))
		} else {
			free = fab.IngressFree(coflow.PortID(int(slot) - np))
		}
		if float64(need) > float64(free)*tol {
			feasible = false
		}
		v.portNeed[slot] = 0
	}
	if !feasible {
		return false
	}
	for i, f := range flows {
		r := v.rates[i]
		if r <= 0 {
			continue
		}
		if free := fab.PathFree(f.Src, f.Dst); r > free {
			r = free // shave float overshoot
		}
		alloc.Set(f.Idx, r)
		fab.Allocate(f.Src, f.Dst, r)
	}
	return true
}
