package sched

import (
	"fmt"

	"saath/internal/coflow"
)

// RateVec is the dense per-interval allocation vector: rates keyed by
// Flow.Idx. It replaces the map[FlowID]Rate allocation of earlier
// revisions so the steady-state scheduling tick performs zero heap
// allocations — one vector is reused across intervals (Snapshot.Alloc),
// cleared in O(1) by bumping an epoch stamp instead of wiping memory.
//
// Entries distinguish "set" from "zero": flows absent from the vector
// are paused, exactly as flows absent from the old map were. A nil
// *RateVec is a valid empty allocation for all read methods.
type RateVec struct {
	rates   []coflow.Rate
	stamp   []uint32
	epoch   uint32
	touched []int32 // indices set this epoch, in insertion order
}

// NewRateVec returns a vector with capacity for flow indices [0, n).
// It grows on demand if written past n.
func NewRateVec(n int) *RateVec {
	v := &RateVec{epoch: 1}
	v.grow(n)
	return v
}

// Reset clears the vector and ensures capacity for indices [0, n),
// without releasing memory: O(1) plus any growth.
func (v *RateVec) Reset(n int) {
	v.grow(n)
	v.touched = v.touched[:0]
	v.epoch++
	if v.epoch == 0 { // epoch wrapped: stamps are ambiguous, wipe them
		clear(v.stamp)
		v.epoch = 1
	}
}

func (v *RateVec) grow(n int) {
	if n <= len(v.stamp) {
		return
	}
	rates := make([]coflow.Rate, n)
	stamp := make([]uint32, n)
	copy(rates, v.rates)
	copy(stamp, v.stamp)
	v.rates, v.stamp = rates, stamp
}

// Len returns the number of flows with a rate set this epoch.
func (v *RateVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.touched)
}

// Get returns the rate set for flow index idx and whether one was set.
func (v *RateVec) Get(idx int) (coflow.Rate, bool) {
	if v == nil || idx < 0 || idx >= len(v.stamp) || v.stamp[idx] != v.epoch {
		return 0, false
	}
	return v.rates[idx], true
}

// Rate returns the rate set for flow index idx, or zero when unset.
func (v *RateVec) Rate(idx int) coflow.Rate {
	r, _ := v.Get(idx)
	return r
}

// Set assigns a rate to flow index idx, marking it present.
func (v *RateVec) Set(idx int, r coflow.Rate) {
	if idx < 0 {
		panic(fmt.Sprintf("sched: RateVec.Set on unindexed flow (idx %d)", idx))
	}
	if idx >= len(v.stamp) {
		v.grow(idx + 1)
	}
	if v.stamp[idx] != v.epoch {
		v.stamp[idx] = v.epoch
		v.touched = append(v.touched, int32(idx))
		v.rates[idx] = r
		return
	}
	v.rates[idx] = r
}

// Add adds r to the rate of flow index idx, setting it if absent —
// the dense equivalent of the old `alloc[id] += r`.
func (v *RateVec) Add(idx int, r coflow.Rate) {
	if cur, ok := v.Get(idx); ok {
		v.rates[idx] = cur + r
		return
	}
	v.Set(idx, r)
}

// Range calls fn for every set entry in insertion order, stopping
// early if fn returns false.
func (v *RateVec) Range(fn func(idx int, r coflow.Rate) bool) {
	if v == nil {
		return
	}
	for _, idx := range v.touched {
		if !fn(int(idx), v.rates[idx]) {
			return
		}
	}
}

// Equal reports whether two allocations set the same flows to the
// same rates (insertion order is ignored).
func (v *RateVec) Equal(o *RateVec) bool {
	if v.Len() != o.Len() {
		return false
	}
	eq := true
	v.Range(func(idx int, r coflow.Rate) bool {
		or, ok := o.Get(idx)
		if !ok || or != r {
			eq = false
		}
		return eq
	})
	return eq
}
