package sched

import (
	"testing"

	"saath/internal/coflow"
)

func mkCoflow(id coflow.CoFlowID, arrived coflow.Time, flows ...coflow.FlowSpec) *coflow.CoFlow {
	c := coflow.New(&coflow.Spec{ID: id, Arrival: arrived, Flows: flows})
	return c
}

func TestContentionFig1(t *testing.T) {
	// Fig. 1 topology: senders P1..P3 = 0..2, distinct receivers.
	// C1@P1, C2@{P1,P2,P3}, C3@P2, C4@P3 => k1=1, k2=3, k3=1, k4=1.
	c1 := mkCoflow(1, 0, coflow.FlowSpec{Src: 0, Dst: 3, Size: 1})
	c2 := mkCoflow(2, 0,
		coflow.FlowSpec{Src: 0, Dst: 4, Size: 1},
		coflow.FlowSpec{Src: 1, Dst: 5, Size: 1},
		coflow.FlowSpec{Src: 2, Dst: 6, Size: 1})
	c3 := mkCoflow(3, 0, coflow.FlowSpec{Src: 1, Dst: 7, Size: 1})
	c4 := mkCoflow(4, 0, coflow.FlowSpec{Src: 2, Dst: 8, Size: 1})
	k := Contention([]*coflow.CoFlow{c1, c2, c3, c4})
	want := map[coflow.CoFlowID]int{1: 1, 2: 3, 3: 1, 4: 1}
	for id, w := range want {
		if k[id] != w {
			t.Errorf("k_%d = %d, want %d (all: %v)", id, k[id], w, k)
		}
	}
}

func TestContentionCountsReceiverPorts(t *testing.T) {
	// Two coflows sharing only a receiver port still contend.
	a := mkCoflow(1, 0, coflow.FlowSpec{Src: 0, Dst: 9, Size: 1})
	b := mkCoflow(2, 0, coflow.FlowSpec{Src: 1, Dst: 9, Size: 1})
	k := Contention([]*coflow.CoFlow{a, b})
	if k[1] != 1 || k[2] != 1 {
		t.Fatalf("receiver-side contention missed: %v", k)
	}
}

func TestContentionIgnoresDoneAndUnavailable(t *testing.T) {
	a := mkCoflow(1, 0, coflow.FlowSpec{Src: 0, Dst: 9, Size: 1})
	b := mkCoflow(2, 0, coflow.FlowSpec{Src: 0, Dst: 8, Size: 1})
	c := mkCoflow(3, 0, coflow.FlowSpec{Src: 0, Dst: 7, Size: 1})
	b.Flows[0].Done = true
	c.Flows[0].Available = false
	k := Contention([]*coflow.CoFlow{a, b, c})
	if k[1] != 0 {
		t.Fatalf("k_1 = %d, want 0 (competitors done/unavailable)", k[1])
	}
}

func TestContentionCountsCoFlowsNotFlows(t *testing.T) {
	// One competitor with many flows on the same port counts once.
	a := mkCoflow(1, 0, coflow.FlowSpec{Src: 0, Dst: 5, Size: 1})
	b := mkCoflow(2, 0,
		coflow.FlowSpec{Src: 0, Dst: 6, Size: 1},
		coflow.FlowSpec{Src: 0, Dst: 7, Size: 1},
		coflow.FlowSpec{Src: 0, Dst: 8, Size: 1})
	k := Contention([]*coflow.CoFlow{a, b})
	if k[1] != 1 {
		t.Fatalf("k_1 = %d, want 1", k[1])
	}
}

func TestByArrival(t *testing.T) {
	a := mkCoflow(3, 10, coflow.FlowSpec{Size: 1})
	b := mkCoflow(1, 5, coflow.FlowSpec{Size: 1})
	c := mkCoflow(2, 10, coflow.FlowSpec{Size: 1})
	cs := []*coflow.CoFlow{a, b, c}
	ByArrival(cs)
	if cs[0].ID() != 1 || cs[1].ID() != 2 || cs[2].ID() != 3 {
		t.Fatalf("order = %d,%d,%d", cs[0].ID(), cs[1].ID(), cs[2].ID())
	}
}

func TestParamsNormalize(t *testing.T) {
	p, err := Params{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Queues.NumQueues != 10 || p.DeadlineFactor != 2 {
		t.Fatalf("normalized = %+v", p)
	}
	if _, err := (Params{DeadlineFactor: 0.5}).Normalize(); err == nil {
		t.Fatal("deadline < 1 accepted")
	}
	bad := Params{}
	bad.Queues.NumQueues = -1
	bad.Queues.StartThreshold = 1
	bad.Queues.Growth = 2
	if _, err := bad.Normalize(); err == nil {
		t.Fatal("bad queue config accepted")
	}
}

func TestRegistry(t *testing.T) {
	Register("sched-test-dummy", func(p Params) (Scheduler, error) { return nil, nil })
	found := false
	for _, n := range Names() {
		if n == "sched-test-dummy" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered scheduler missing from Names")
	}
	if _, err := New("no-such-scheduler", Params{}); err == nil {
		t.Fatal("unknown scheduler did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("sched-test-dummy", func(p Params) (Scheduler, error) { return nil, nil })
}
