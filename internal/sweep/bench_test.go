package sweep

import (
	"context"
	"testing"
)

// benchJobs is a 24-job grid sized so one job takes a few milliseconds
// — enough work for the pool's speedup to be visible without making
// `go test -bench` minutes long.
func benchJobs() []Job {
	return testGrid().Jobs()
}

func benchSweep(b *testing.B, parallel int) {
	jobs := benchJobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(context.Background(), jobs, Options{Parallel: parallel})
		if err := res.FirstErr(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the baseline the parallel engine is measured
// against: the same grid on one worker (the old serial-loop behaviour).
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel8 runs the identical grid on 8 workers;
// compare ns/op against BenchmarkSweepSerial for the pool's speedup.
func BenchmarkSweepParallel8(b *testing.B) { benchSweep(b, 8) }
