package sweep

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func jobResult(j Job, err error) JobResult   { return JobResult{Job: j, Err: err, Elapsed: time.Second} }
func meterJobs(variants ...string) (out []Job) {
	for i, v := range variants {
		out = append(out, Job{Index: i, Trace: "fb", Variant: v, Scheduler: "saath", Seed: 1})
	}
	return out
}

func TestProgressMeterThrottlesAndSummarizes(t *testing.T) {
	var buf bytes.Buffer
	clock := newFakeClock()
	m := NewProgressMeter(&buf, time.Second)
	m.now = clock.now
	jobs := meterJobs("A=1", "A=1", "A=2", "A=2")
	m.SetJobs(jobs)

	m.Progress(1, 4, jobResult(jobs[0], nil)) // first completion always prints
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("first completion printed %d lines:\n%s", got, buf.String())
	}
	clock.advance(100 * time.Millisecond)
	m.Progress(2, 4, jobResult(jobs[1], nil)) // throttled
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("throttled completion printed:\n%s", buf.String())
	}
	clock.advance(2 * time.Second)
	m.Progress(3, 4, jobResult(jobs[2], nil)) // interval elapsed
	out := buf.String()
	if got := strings.Count(out, "\n"); got != 2 {
		t.Fatalf("post-interval completion did not print:\n%s", out)
	}
	if !strings.Contains(out, "3/4 jobs (75%)") || !strings.Contains(out, "variants 1/2") {
		t.Errorf("aggregate line malformed:\n%s", out)
	}
	if !strings.Contains(out, "eta") {
		t.Errorf("mid-sweep line missing eta:\n%s", out)
	}

	clock.advance(10 * time.Millisecond)
	m.Progress(4, 4, jobResult(jobs[3], nil)) // final always prints + breakdown
	out = buf.String()
	if !strings.Contains(out, "4/4 jobs (100%)") || !strings.Contains(out, "variants 2/2") {
		t.Errorf("final line malformed:\n%s", out)
	}
	for _, group := range []string{"A=1", "A=2"} {
		if !strings.Contains(out, group+" ") && !strings.Contains(out, group+"\n") {
			t.Errorf("final breakdown missing %q:\n%s", group, out)
		}
	}
	if !strings.Contains(out, "2/2") {
		t.Errorf("per-variant counts missing:\n%s", out)
	}
}

func TestProgressMeterRatesAndFailures(t *testing.T) {
	var buf bytes.Buffer
	clock := newFakeClock()
	m := NewProgressMeter(&buf, time.Second)
	m.now = clock.now
	jobs := meterJobs("", "")
	m.SetJobs(jobs)

	// First completion anchors the rate clock at now - Elapsed (1s), so
	// 1 job in 1s = 1.0 jobs/s.
	m.Progress(1, 2, jobResult(jobs[0], nil))
	if !strings.Contains(buf.String(), "1.0 jobs/s") {
		t.Errorf("rate missing or wrong:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "eta 1s") {
		t.Errorf("eta missing or wrong:\n%s", buf.String())
	}

	clock.advance(time.Second)
	m.Progress(2, 2, jobResult(jobs[1], &errString{"boom"}))
	if !strings.Contains(buf.String(), "failed 1") {
		t.Errorf("failure count missing:\n%s", buf.String())
	}
	// Unnamed variants group by trace; a single group prints no
	// breakdown.
	if strings.Contains(buf.String(), "variants") {
		t.Errorf("single-group sweep printed variant column:\n%s", buf.String())
	}
}

func TestProgressMeterResetsBetweenSweeps(t *testing.T) {
	var buf bytes.Buffer
	clock := newFakeClock()
	m := NewProgressMeter(&buf, time.Second)
	m.now = clock.now
	jobs := meterJobs("A=1")
	m.SetJobs(jobs)
	m.Progress(1, 1, jobResult(jobs[0], &errString{"boom"}))

	buf.Reset()
	clock.advance(time.Hour)
	m.Progress(1, 1, jobResult(jobs[0], nil)) // fresh sweep, done==1 resets
	if strings.Contains(buf.String(), "failed") {
		t.Errorf("failure count leaked across sweeps:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "1.0 jobs/s") {
		t.Errorf("rate clock not re-anchored:\n%s", buf.String())
	}
}

// TestProgressMeterOutOfOrderAndDuplicates pins the delivery
// tolerance the fleet path relies on: worker event streams interleave
// (done values arrive out of order) and a retried shard replays
// completions it already reported (duplicates, including a late done=1
// while the sweep is mid-flight). None of that may regress the printed
// line, reset a running sweep, or overshoot a group breakdown.
func TestProgressMeterOutOfOrderAndDuplicates(t *testing.T) {
	var buf bytes.Buffer
	clock := newFakeClock()
	m := NewProgressMeter(&buf, time.Millisecond) // effectively unthrottled
	m.now = clock.now
	jobs := meterJobs("A=1", "A=1", "A=2", "A=2")
	m.SetJobs(jobs)

	step := func(done int, jr JobResult) string {
		buf.Reset()
		clock.advance(10 * time.Millisecond)
		m.Progress(done, 4, jr)
		return buf.String()
	}

	step(1, jobResult(jobs[0], nil))
	if out := step(3, jobResult(jobs[2], nil)); !strings.Contains(out, "3/4 jobs") {
		t.Errorf("out-of-order jump not rendered:\n%s", out)
	}
	// A stale completion (done=2 arriving after done=3) must not walk
	// the line backwards.
	if out := step(2, jobResult(jobs[1], &errString{"boom"})); !strings.Contains(out, "3/4 jobs") {
		t.Errorf("stale delivery regressed the line:\n%s", out)
	}
	// A duplicate of the first completion mid-sweep must not reset the
	// meter: the failure above stays counted.
	if out := step(1, jobResult(jobs[0], nil)); !strings.Contains(out, "failed 1") {
		t.Errorf("mid-sweep duplicate done=1 reset the meter:\n%s", out)
	}
	// The duplicate re-counted an A=1 completion; the final breakdown
	// clamps at the group's total instead of printing 3/2.
	out := step(4, jobResult(jobs[3], nil))
	if !strings.Contains(out, "4/4 jobs") || !strings.Contains(out, "A=2") {
		t.Errorf("final print malformed:\n%s", out)
	}
	if strings.Contains(out, "3/2") {
		t.Errorf("group breakdown overshot its total:\n%s", out)
	}
	// A redelivered final completion prints nothing new.
	if out := step(4, jobResult(jobs[3], nil)); out != "" {
		t.Errorf("duplicate final completion reprinted:\n%s", out)
	}
}

// TestProgressMeterObserveWireShape drives Observe directly — the
// fleet driver's path, where only (done, total, group, elapsed,
// failed) tuples cross the process boundary.
func TestProgressMeterObserveWireShape(t *testing.T) {
	var buf bytes.Buffer
	clock := newFakeClock()
	m := NewProgressMeter(&buf, time.Millisecond)
	m.now = clock.now

	m.Observe(1, 2, "shardA", time.Second, false)
	if !strings.Contains(buf.String(), "1/2 jobs") || !strings.Contains(buf.String(), "1.0 jobs/s") {
		t.Errorf("wire observe line malformed:\n%s", buf.String())
	}
	clock.advance(time.Second)
	m.Observe(2, 2, "shardB", time.Second, true)
	if !strings.Contains(buf.String(), "failed 1") {
		t.Errorf("wire failure not counted:\n%s", buf.String())
	}
}

func TestCLIProgress(t *testing.T) {
	if CLIProgress(false, nil, nil) != nil {
		t.Error("disabled CLIProgress should be nil")
	}
	var buf bytes.Buffer
	fn := CLIProgress(true, &buf, meterJobs("A=1", "A=2"))
	if fn == nil {
		t.Fatal("enabled CLIProgress is nil")
	}
	fn(1, 2, jobResult(meterJobs("A=1")[0], nil))
	if !strings.Contains(buf.String(), "1/2 jobs") {
		t.Errorf("CLIProgress wrote:\n%s", buf.String())
	}
}

type errString struct{ s string }

func (e *errString) Error() string { return e.s }
