package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"saath/internal/coflow"
	"saath/internal/obs"
	"saath/internal/report"
	"saath/internal/stats"
	"saath/internal/telemetry"
)

// JobMetrics is the deterministic per-job digest the Summary keeps:
// only simulation outcomes, never wall-clock measurements, so encoded
// summaries are byte-identical across worker counts and machines.
type JobMetrics struct {
	Trace       string  `json:"trace"`
	Variant     string  `json:"variant,omitempty"`
	Scheduler   string  `json:"scheduler"`
	Seed        int64   `json:"seed"`
	Error       string  `json:"error,omitempty"`
	CoFlows     int     `json:"coflows"`
	Ports       int     `json:"ports,omitempty"`
	Intervals   int     `json:"intervals"`
	AvgCCT      float64 `json:"avg_cct_s"`
	P50CCT      float64 `json:"p50_cct_s"`
	P90CCT      float64 `json:"p90_cct_s"`
	Makespan    float64 `json:"makespan_s"`
	Utilization float64 `json:"avg_egress_utilization"`
}

type jobEntry struct {
	metrics   JobMetrics
	ccts      []float64                       // per-coflow CCT seconds, result order
	byID      map[coflow.CoFlowID]coflow.Time // for cross-scheduler speedup matching
	telemetry *telemetry.Metrics              // per-interval series, when enabled
}

// Summary is a thread-safe Collector that aggregates sweep results
// into CCT/utilization tables, speedup-vs-baseline distributions and a
// JSON export. All derived output iterates jobs in grid-index order,
// so it is independent of execution interleaving.
type Summary struct {
	mu      sync.Mutex
	entries map[int]*jobEntry
}

// NewSummary returns an empty Summary.
func NewSummary() *Summary {
	return &Summary{entries: make(map[int]*jobEntry)}
}

// Add digests one completed job. Safe for concurrent use.
func (s *Summary) Add(jr JobResult) {
	e := &jobEntry{metrics: JobMetrics{
		Trace:     jr.Job.Trace,
		Variant:   jr.Job.Variant,
		Scheduler: jr.Job.Scheduler,
		Seed:      jr.Job.Seed,
	}}
	if jr.Err != nil {
		e.metrics.Error = jr.Err.Error()
	} else if r := jr.Res; r != nil {
		e.ccts = make([]float64, len(r.CoFlows))
		for i, c := range r.CoFlows {
			e.ccts[i] = c.CCT.Seconds()
		}
		e.byID = r.CCTByID()
		e.metrics.CoFlows = len(r.CoFlows)
		e.metrics.Ports = r.Ports
		e.metrics.Intervals = r.Intervals
		e.metrics.AvgCCT = r.AvgCCT()
		e.metrics.P50CCT = stats.Percentile(e.ccts, 50)
		e.metrics.P90CCT = stats.Percentile(e.ccts, 90)
		e.metrics.Makespan = r.Makespan.Seconds()
		e.metrics.Utilization = r.AvgEgressUtilization
	}
	e.telemetry = jr.Metrics
	s.mu.Lock()
	s.entries[jr.Job.Index] = e
	s.mu.Unlock()
}

// Entry is the serializable snapshot of one job's digest: everything
// the Summary keeps per job, in JSON-round-trippable form. CCTs holds
// per-CoFlow completion times in simulation-result order (order
// matters: pooled means accumulate floats in this order, so a restored
// Summary reproduces table bytes exactly); CCTByID keys the same
// values by CoFlow for cross-scheduler speedup matching, in exact
// integer microseconds. A sharded study run exports its entries and a
// merge restores them — see internal/study.
type Entry struct {
	Index     int                             `json:"index"`
	Metrics   JobMetrics                      `json:"metrics"`
	CCTs      []float64                       `json:"ccts,omitempty"`
	CCTByID   map[coflow.CoFlowID]coflow.Time `json:"cct_by_id,omitempty"`
	Telemetry *telemetry.Metrics              `json:"telemetry,omitempty"`
}

// Entries snapshots every digested job in grid order. The snapshot
// shares slices and maps with the Summary; callers must not mutate it.
func (s *Summary) Entries() []Entry {
	s.mu.Lock()
	idx := make([]int, 0, len(s.entries))
	for i := range s.entries {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]Entry, len(idx))
	for i, j := range idx {
		e := s.entries[j]
		out[i] = Entry{Index: j, Metrics: e.metrics, CCTs: e.ccts, CCTByID: e.byID, Telemetry: e.telemetry}
	}
	s.mu.Unlock()
	return out
}

// Restore inserts previously-exported entries, keyed by their grid
// index — the merge half of the shard workflow. It refuses to
// overwrite an already-present index, so merging overlapping shards
// fails loudly instead of silently double-counting.
func (s *Summary) Restore(entries ...Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if e.Index < 0 {
			return fmt.Errorf("sweep: restore: negative job index %d", e.Index)
		}
		if _, dup := s.entries[e.Index]; dup {
			return fmt.Errorf("sweep: restore: duplicate job index %d (%s|%s|%d|%s)",
				e.Index, e.Metrics.Trace, e.Metrics.Variant, e.Metrics.Seed, e.Metrics.Scheduler)
		}
		s.entries[e.Index] = &jobEntry{metrics: e.Metrics, ccts: e.CCTs, byID: e.CCTByID, telemetry: e.Telemetry}
	}
	return nil
}

// Len returns the number of digested jobs.
func (s *Summary) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// sorted returns the entries in grid order.
func (s *Summary) sorted() []*jobEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := make([]int, 0, len(s.entries))
	for i := range s.entries {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]*jobEntry, len(idx))
	for i, j := range idx {
		out[i] = s.entries[j]
	}
	return out
}

// Metrics returns every job's digest in grid order.
func (s *Summary) Metrics() []JobMetrics {
	entries := s.sorted()
	out := make([]JobMetrics, len(entries))
	for i, e := range entries {
		out[i] = e.metrics
	}
	return out
}

// WriteJSON exports the per-job metrics as indented JSON. Output is
// deterministic for a given grid.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Jobs []JobMetrics `json:"jobs"`
	}{Jobs: s.Metrics()})
}

// cell groups jobs sharing (trace, variant, scheduler); seeds pool.
type cell struct {
	trace, variant, scheduler string
	ccts                      []float64
	utilSum, makespanSum      float64
	// thruSum accumulates per-job completed-coflows-per-second for the
	// capacity report; ports is the cell's cluster size.
	thruSum float64
	ports   int
	n       int
}

func (s *Summary) cells() []*cell {
	var order []*cell
	index := make(map[string]*cell)
	for _, e := range s.sorted() {
		m := e.metrics
		if m.Error != "" {
			continue
		}
		key := m.Trace + "|" + m.Variant + "|" + m.Scheduler
		c, ok := index[key]
		if !ok {
			c = &cell{trace: m.Trace, variant: m.Variant, scheduler: m.Scheduler}
			index[key] = c
			order = append(order, c)
		}
		c.ccts = append(c.ccts, e.ccts...)
		c.utilSum += m.Utilization
		c.makespanSum += m.Makespan
		if m.Makespan > 0 {
			c.thruSum += float64(m.CoFlows) / m.Makespan
		}
		if m.Ports > c.ports {
			c.ports = m.Ports
		}
		c.n++
	}
	return order
}

// cellLabel renders the grouping columns, omitting the variant column
// entirely when no job used one.
func (c *cell) label() string {
	if c.variant == "" {
		return c.trace
	}
	return c.trace + " " + c.variant
}

// CCTGroup pools one (trace, variant, scheduler) cell's per-CoFlow
// CCTs across seeds, in first-seen grid order — the grouping behind
// CCTTable, exported so derived consumers (study CDF tables) share one
// implementation of the cell key and label rules.
type CCTGroup struct {
	Label     string // trace plus variant, as rendered in tables
	Scheduler string
	CCTs      []float64 // pooled, grid order within each job
}

// CCTGroups returns the pooled per-cell CCT distributions, skipping
// errored jobs.
func (s *Summary) CCTGroups() []CCTGroup {
	cells := s.cells()
	out := make([]CCTGroup, len(cells))
	for i, c := range cells {
		out[i] = CCTGroup{Label: c.label(), Scheduler: c.scheduler, CCTs: c.ccts}
	}
	return out
}

// CapacityCells exports the pooled per-cell capacity measurements for
// the obs capacity report: throughput (completed coflows per simulated
// second, averaged over seeds), the pooled CCT percentiles, cluster
// size. Cells follow first-seen grid order; errored jobs are skipped.
func (s *Summary) CapacityCells() []obs.Cell {
	cells := s.cells()
	out := make([]obs.Cell, len(cells))
	for i, c := range cells {
		out[i] = obs.Cell{
			Trace:       c.trace,
			Variant:     c.variant,
			Scheduler:   c.scheduler,
			Runs:        c.n,
			CoFlows:     len(c.ccts),
			Ports:       c.ports,
			Throughput:  c.thruSum / float64(c.n),
			AvgCCT:      stats.Mean(c.ccts),
			P50CCT:      stats.Percentile(c.ccts, 50),
			P90CCT:      stats.Percentile(c.ccts, 90),
			P99CCT:      stats.Percentile(c.ccts, 99),
			Makespan:    c.makespanSum / float64(c.n),
			Utilization: c.utilSum / float64(c.n),
		}
	}
	return out
}

// CCTTable renders per-(trace, variant, scheduler) CCT statistics with
// seeds pooled: the per-scheduler comparison table of cmd/saath-sim.
func (s *Summary) CCTTable(title string) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"workload", "scheduler", "runs", "coflows", "avg cct (s)", "p50 (s)", "p90 (s)", "makespan (s)", "egress util"},
	}
	for _, c := range s.cells() {
		t.AddRow(c.label(), c.scheduler, c.n, len(c.ccts),
			fmt.Sprintf("%.3f", stats.Mean(c.ccts)),
			fmt.Sprintf("%.3f", stats.Percentile(c.ccts, 50)),
			fmt.Sprintf("%.3f", stats.Percentile(c.ccts, 90)),
			fmt.Sprintf("%.1f", c.makespanSum/float64(c.n)),
			fmt.Sprintf("%.2f", c.utilSum/float64(c.n)))
	}
	return t
}

// SpeedupTable renders the per-CoFlow speedup of every non-baseline
// scheduler over baseline, matched per (trace, variant, seed) so each
// CoFlow is compared against itself under the same workload draw.
func (s *Summary) SpeedupTable(title, baseline string) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"workload", "scheduler", "p10", "median", "p90", "mean", "n"},
	}
	entries := s.sorted()
	// baseline runs keyed by (trace, variant, seed)
	base := make(map[string]*jobEntry)
	for _, e := range entries {
		if e.metrics.Scheduler == baseline && e.metrics.Error == "" {
			base[fmt.Sprintf("%s|%s|%d", e.metrics.Trace, e.metrics.Variant, e.metrics.Seed)] = e
		}
	}
	type group struct {
		label, scheduler string
		speedups         []float64
	}
	var order []*group
	index := make(map[string]*group)
	for _, e := range entries {
		m := e.metrics
		if m.Error != "" || m.Scheduler == baseline {
			continue
		}
		b, ok := base[fmt.Sprintf("%s|%s|%d", m.Trace, m.Variant, m.Seed)]
		if !ok {
			continue
		}
		key := m.Trace + "|" + m.Variant + "|" + m.Scheduler
		g, gok := index[key]
		if !gok {
			c := &cell{trace: m.Trace, variant: m.Variant}
			g = &group{label: c.label(), scheduler: m.Scheduler}
			index[key] = g
			order = append(order, g)
		}
		g.speedups = append(g.speedups, stats.Speedups(b.byID, e.byID)...)
	}
	for _, g := range order {
		sum := stats.Summarize(g.speedups)
		t.AddRow(g.label, g.scheduler,
			fmt.Sprintf("%.2f", sum.P10), fmt.Sprintf("%.2f", sum.Median),
			fmt.Sprintf("%.2f", sum.P90), fmt.Sprintf("%.2f", sum.Mean), sum.N)
	}
	return t
}
