package sweep

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"saath/internal/coflow"
	"saath/internal/telemetry"
	"saath/internal/trace"
)

// telemetryGrid is a contended incast grid with telemetry enabled:
// 2 seeds × 2 schedulers × 2 variants = 8 jobs.
func telemetryGrid() Grid {
	src := SynthSource("incast-tiny", func(seed int64) *trace.Trace {
		tr, err := trace.SynthesizeIncast(trace.FanConfig{
			Seed: seed, NumPorts: 10, NumCoFlows: 12,
			MeanInterArrival: 15 * coflow.Millisecond,
			Degree:           4, Skew: 0.8, Hotspots: 2,
			MinSize: 100 * coflow.KB, MaxSize: 2 * coflow.MB,
		}, "incast-tiny")
		if err != nil {
			panic(err)
		}
		return tr
	})
	g := testGrid()
	g.Traces = []TraceSource{src}
	g.Seeds = []int64{1, 2}
	g.Telemetry = telemetry.Spec{Enabled: true, RingCap: 32, ReservoirCap: 32}
	return g
}

func exportTelemetry(t *testing.T, jobs []Job, parallel int) (js, csv, table string) {
	t.Helper()
	sum := NewSummary()
	res := Run(context.Background(), jobs, Options{Parallel: parallel, Collectors: []Collector{sum}})
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var jb, cb bytes.Buffer
	if err := sum.WriteMetricsJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := sum.WriteMetricsCSV(&cb); err != nil {
		t.Fatal(err)
	}
	var tb strings.Builder
	if err := sum.TelemetryTable("telemetry").Render(&tb); err != nil {
		t.Fatal(err)
	}
	return jb.String(), cb.String(), tb.String()
}

// TestTelemetryDeterminismAcrossParallelism is the subsystem's golden
// contract (ISSUE 2 acceptance): the same grid run on 2 and on 8
// workers exports byte-identical metrics JSON, CSV and summary tables.
func TestTelemetryDeterminismAcrossParallelism(t *testing.T) {
	jobs := telemetryGrid().Jobs()
	js2, csv2, tb2 := exportTelemetry(t, jobs, 2)
	js8, csv8, tb8 := exportTelemetry(t, jobs, 8)
	if js2 != js8 {
		t.Error("metrics JSON differs between -parallel 2 and -parallel 8")
	}
	if csv2 != csv8 {
		t.Error("metrics CSV differs between -parallel 2 and -parallel 8")
	}
	if tb2 != tb8 {
		t.Errorf("telemetry tables differ:\n--- 2 ---\n%s\n--- 8 ---\n%s", tb2, tb8)
	}
	// Sanity: the export actually contains the telemetry payload.
	for _, want := range []string{
		`"` + telemetry.SeriesIngressQueueMax + `"`,
		`"` + telemetry.HistContention + `"`,
		`"trace": "incast-tiny"`,
	} {
		if !strings.Contains(js2, want) {
			t.Errorf("metrics JSON missing %s", want)
		}
	}
	if !strings.HasPrefix(csv2, "trace,variant,scheduler,seed,kind,name,x,y\n") {
		t.Errorf("CSV header missing:\n%s", csv2[:80])
	}
}

// TestTelemetrySeedDerivation: distinct jobs derive distinct reservoir
// seeds (their long-series samples differ even over identical
// observation streams), while an explicit seed is respected verbatim
// (same seed ⇒ same samples). A fixed trace makes the two jobs'
// simulations identical, isolating the reservoir RNG.
func TestTelemetrySeedDerivation(t *testing.T) {
	tr, err := trace.SynthesizeIncast(trace.FanConfig{
		Seed: 1, NumPorts: 10, NumCoFlows: 24,
		MeanInterArrival: 10 * coflow.Millisecond,
		Degree:           4, Skew: 0.8, Hotspots: 2,
		MinSize: 200 * coflow.KB, MaxSize: 4 * coflow.MB,
	}, "incast-fixed")
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{
		Traces:     []TraceSource{FixedTrace(tr)},
		Schedulers: []string{"aalo"},
		Seeds:      []int64{1, 2},
		Telemetry:  telemetry.Spec{Enabled: true, RingCap: 4, ReservoirCap: 4},
	}
	points := func(t *testing.T, g Grid) (a, b *telemetry.SeriesDump) {
		t.Helper()
		res := Run(context.Background(), g.Jobs(), Options{Parallel: 2})
		if err := res.FirstErr(); err != nil {
			t.Fatal(err)
		}
		a = res.Jobs[0].Metrics.FindSeries(telemetry.SeriesActiveCoFlows)
		b = res.Jobs[1].Metrics.FindSeries(telemetry.SeriesActiveCoFlows)
		if a == nil || b == nil {
			t.Fatal("series missing")
		}
		// Identical simulations: exact scalar stats must agree, and the
		// stream must be long enough that the reservoir downsampled.
		if a.Count != b.Count || a.Mean != b.Mean {
			t.Fatalf("fixed-trace jobs diverged: %d/%v vs %d/%v", a.Count, a.Mean, b.Count, b.Mean)
		}
		if a.Count <= 8 {
			t.Fatalf("stream too short to downsample (%d points)", a.Count)
		}
		return a, b
	}
	a, b := points(t, g)
	if reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("distinct grid seeds derived identical reservoir samples")
	}
	// An explicit seed overrides derivation: both jobs now sample the
	// identical stream with the same RNG and must export identically.
	g.Telemetry.Seed = 99
	a, b = points(t, g)
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("explicit Spec.Seed not respected verbatim")
	}
}

// TestTelemetryDisabledByDefault: grids without the spec produce no
// metrics and no telemetry rows.
func TestTelemetryDisabledByDefault(t *testing.T) {
	g := telemetryGrid()
	g.Telemetry = telemetry.Spec{}
	res := Run(context.Background(), g.Jobs()[:2], Options{Parallel: 2})
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for _, jr := range res.Jobs {
		if jr.Metrics != nil {
			t.Fatal("metrics collected without telemetry enabled")
		}
	}
	sum := NewSummary()
	for _, jr := range res.Jobs {
		sum.Add(jr)
	}
	if got := sum.Telemetry(); len(got) != 0 {
		t.Fatalf("Telemetry() = %d entries, want 0", len(got))
	}
	var b bytes.Buffer
	if err := sum.WriteMetricsJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"jobs": null`) && !strings.Contains(b.String(), `"jobs": []`) {
		t.Fatalf("empty export unexpected: %s", b.String())
	}
}

// TestQueueTransitionHeatmapDeterminism: the Fig. 4-style derived
// tables (queue transitions, per-port occupancy heatmap) are
// byte-identical at any parallelism, and the CSV export carries the
// heatmap rows.
func TestQueueTransitionHeatmapDeterminism(t *testing.T) {
	g := telemetryGrid()
	g.Telemetry.QueueTransitions = true
	g.Telemetry.PerFlowPlacement = true
	g.Telemetry.PortHeatmap = true
	jobs := g.Jobs()

	render := func(parallel int) (trans, heat, csv string) {
		sum := NewSummary()
		res := Run(context.Background(), jobs, Options{Parallel: parallel, Collectors: []Collector{sum}})
		if err := res.FirstErr(); err != nil {
			t.Fatal(err)
		}
		var tb, hb strings.Builder
		if err := sum.QueueTransitionTable("transitions").Render(&tb); err != nil {
			t.Fatal(err)
		}
		if err := sum.PortHeatmapTable("heatmap", 4).Render(&hb); err != nil {
			t.Fatal(err)
		}
		var cb bytes.Buffer
		if err := sum.WriteMetricsCSV(&cb); err != nil {
			t.Fatal(err)
		}
		return tb.String(), hb.String(), cb.String()
	}
	t1, h1, c1 := render(1)
	t8, h8, c8 := render(8)
	if t1 != t8 {
		t.Errorf("queue-transition tables differ:\n--- 1 ---\n%s\n--- 8 ---\n%s", t1, t8)
	}
	if h1 != h8 {
		t.Errorf("heatmap tables differ:\n--- 1 ---\n%s\n--- 8 ---\n%s", h1, h8)
	}
	if c1 != c8 {
		t.Error("metrics CSV with heatmaps differs between -parallel 1 and -parallel 8")
	}
	// The workload is incast onto 2 hotspots: demotions must be
	// observed and the tables must carry rows for every cell.
	if !strings.Contains(t1, "incast-tiny") || strings.Contains(t1, " 0.0 ") && !strings.Contains(t1, "demote") {
		t.Errorf("transition table empty:\n%s", t1)
	}
	if !strings.Contains(h1, "ingress") || !strings.Contains(h1, "egress") {
		t.Errorf("heatmap table missing sides:\n%s", h1)
	}
	if !strings.Contains(c1, ",heatmap,") || !strings.Contains(c1, telemetry.HeatmapIngressOccupancy) {
		t.Error("CSV export missing heatmap rows")
	}

	// Jobs run without the spatial consumers produce empty tables, not
	// errors.
	plain := telemetryGrid()
	sum := NewSummary()
	if err := Run(context.Background(), plain.Jobs()[:2], Options{Parallel: 2, Collectors: []Collector{sum}}).FirstErr(); err != nil {
		t.Fatal(err)
	}
	if tbl := sum.QueueTransitionTable("t"); len(tbl.Rows) != 0 {
		t.Errorf("transition table has %d rows without QueueTransitions", len(tbl.Rows))
	}
	if tbl := sum.PortHeatmapTable("h", 4); len(tbl.Rows) != 0 {
		t.Errorf("heatmap table has %d rows without PortHeatmap", len(tbl.Rows))
	}
}
