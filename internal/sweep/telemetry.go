package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"saath/internal/report"
	"saath/internal/telemetry"
)

// JobTelemetry pairs a job's grid identity with its exported metrics,
// the unit of the metrics JSON export.
type JobTelemetry struct {
	Trace     string             `json:"trace"`
	Variant   string             `json:"variant,omitempty"`
	Scheduler string             `json:"scheduler"`
	Seed      int64              `json:"seed"`
	Metrics   *telemetry.Metrics `json:"metrics"`
}

// Telemetry returns every job's metrics in grid order, skipping jobs
// that errored or ran without telemetry.
func (s *Summary) Telemetry() []JobTelemetry {
	var out []JobTelemetry
	for _, e := range s.sorted() {
		if e.telemetry == nil {
			continue
		}
		m := e.metrics
		out = append(out, JobTelemetry{
			Trace:     m.Trace,
			Variant:   m.Variant,
			Scheduler: m.Scheduler,
			Seed:      m.Seed,
			Metrics:   e.telemetry,
		})
	}
	return out
}

// WriteMetricsJSON exports every job's telemetry as indented JSON in
// grid order. Like WriteJSON, the output is a pure function of the
// grid — byte-identical at any parallelism.
func (s *Summary) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Jobs []JobTelemetry `json:"jobs"`
	}{Jobs: s.Telemetry()})
}

// WriteMetricsCSV exports every job's telemetry as flat CSV rows —
// one row per series point (kind "series", x = simulated seconds) and
// per histogram bucket (kind "hist", x = bucket upper bound, "+Inf"
// for the overflow bucket) — for plotting without JSON tooling.
func (s *Summary) WriteMetricsCSV(w io.Writer) error {
	// Stream through a buffered writer: large sweeps export millions of
	// rows and must not materialize the whole file in memory.
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("trace,variant,scheduler,seed,kind,name,x,y\n"); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, jt := range s.Telemetry() {
		prefix := fmt.Sprintf("%s,%s,%s,%d", csvCell(jt.Trace), csvCell(jt.Variant), csvCell(jt.Scheduler), jt.Seed)
		for _, sr := range jt.Metrics.Series {
			for _, p := range sr.Points {
				fmt.Fprintf(bw, "%s,series,%s,%s,%s\n", prefix, csvCell(sr.Name), g(p.T), g(p.V))
			}
		}
		for _, h := range jt.Metrics.Histograms {
			for _, bk := range h.Buckets {
				fmt.Fprintf(bw, "%s,hist,%s,%s,%d\n", prefix, csvCell(h.Name), g(bk.LE), bk.Count)
			}
			if h.Overflow > 0 {
				fmt.Fprintf(bw, "%s,hist,%s,+Inf,%d\n", prefix, csvCell(h.Name), h.Overflow)
			}
		}
		// Heatmaps flatten to one row per (port, bucket): the name
		// carries the bucket's upper bound, x is the port, y the count.
		// Buckets are disjoint intervals (prev, b], not cumulative —
		// hence "b=", not Prometheus's cumulative "le=".
		for _, hm := range jt.Metrics.Heatmaps {
			for _, p := range hm.Ports {
				for bi, b := range hm.Bounds {
					if bi < len(p.Counts) && p.Counts[bi] > 0 {
						fmt.Fprintf(bw, "%s,heatmap,%s,%d,%d\n", prefix,
							csvCell(fmt.Sprintf("%s/b=%s", hm.Name, g(b))), p.Port, p.Counts[bi])
					}
				}
				if p.Overflow > 0 {
					fmt.Fprintf(bw, "%s,heatmap,%s,%d,%d\n", prefix,
						csvCell(hm.Name+"/b=+Inf"), p.Port, p.Overflow)
				}
			}
		}
	}
	return bw.Flush()
}

func csvCell(cell string) string {
	if strings.ContainsAny(cell, ",\"\n") {
		return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
	}
	return cell
}

// telemetryCell pools one (trace, variant, scheduler) group's metrics
// across seeds for the summary table.
type telemetryCell struct {
	cell       cell
	n          int
	sampled    int64
	egPeak     float64 // max over jobs of peak egress occupancy
	inPeak     float64
	egMeanSum  float64 // sum over jobs of whole-run mean occupancy
	inMeanSum  float64
	blockedSum float64 // sum over jobs of mean blocked-coflow count
	contention *telemetry.HistogramDump
}

// TelemetryTable condenses per-job telemetry into one row per (trace,
// variant, scheduler) cell with seeds pooled: sampled intervals, mean
// and peak per-port queue occupancy (egress and ingress), the mean
// head-of-line-blocked CoFlow count, and contention (k_c) median/P90
// from the pooled histogram — the saath-sim -metrics terminal view.
func (s *Summary) TelemetryTable(title string) *report.Table {
	var order []*telemetryCell
	index := make(map[string]*telemetryCell)
	for _, e := range s.sorted() {
		if e.telemetry == nil {
			continue
		}
		m := e.metrics
		key := m.Trace + "|" + m.Variant + "|" + m.Scheduler
		tc, ok := index[key]
		if !ok {
			tc = &telemetryCell{cell: cell{trace: m.Trace, variant: m.Variant, scheduler: m.Scheduler}}
			index[key] = tc
			order = append(order, tc)
		}
		tc.n++
		tc.sampled += e.telemetry.Sampled
		if sr := e.telemetry.FindSeries(telemetry.SeriesEgressQueueMax); sr != nil && sr.Max > tc.egPeak {
			tc.egPeak = sr.Max
		}
		if sr := e.telemetry.FindSeries(telemetry.SeriesIngressQueueMax); sr != nil && sr.Max > tc.inPeak {
			tc.inPeak = sr.Max
		}
		if sr := e.telemetry.FindSeries(telemetry.SeriesEgressQueueMean); sr != nil {
			tc.egMeanSum += sr.Mean
		}
		if sr := e.telemetry.FindSeries(telemetry.SeriesIngressQueueMean); sr != nil {
			tc.inMeanSum += sr.Mean
		}
		if sr := e.telemetry.FindSeries(telemetry.SeriesBlockedCoFlows); sr != nil {
			tc.blockedSum += sr.Mean
		}
		if h := e.telemetry.FindHistogram(telemetry.HistContention); h != nil {
			if tc.contention == nil {
				tc.contention = h.Clone()
			} else {
				tc.contention.Merge(h)
			}
		}
	}
	t := &report.Table{
		Title: title,
		Headers: []string{"workload", "scheduler", "runs", "intervals",
			"egress q mean/peak", "ingress q mean/peak", "blocked mean", "k_c p50", "k_c p90"},
	}
	for _, tc := range order {
		p50, p90 := "-", "-"
		if tc.contention != nil && tc.contention.Count > 0 {
			p50 = fmt.Sprintf("%.0f", tc.contention.Quantile(0.50))
			p90 = fmt.Sprintf("%.0f", tc.contention.Quantile(0.90))
		}
		n := float64(tc.n)
		t.AddRow(tc.cell.label(), tc.cell.scheduler, tc.n, tc.sampled,
			fmt.Sprintf("%.1f/%.0f", tc.egMeanSum/n, tc.egPeak),
			fmt.Sprintf("%.1f/%.0f", tc.inMeanSum/n, tc.inPeak),
			fmt.Sprintf("%.2f", tc.blockedSum/n),
			p50, p90)
	}
	return t
}

// transitionCell pools one (trace, variant, scheduler) group's
// queue-transition telemetry across seeds.
type transitionCell struct {
	cell         cell
	n            int
	sampled      int64
	promotions   float64 // exact per-job totals (series mean × count)
	demotions    float64
	observations int64 // (coflow, interval) placements
	level        *telemetry.HistogramDump
}

// QueueTransitionTable condenses the Fig. 4-style queue-transition
// telemetry into one row per (trace, variant, scheduler) cell with
// seeds pooled: total promotions/demotions, the demotion rate per
// thousand sampled intervals, and the pooled queue-level distribution
// (median / P90 / max). Cells whose jobs ran without
// Spec.QueueTransitions are skipped.
func (s *Summary) QueueTransitionTable(title string) *report.Table {
	var order []*transitionCell
	index := make(map[string]*transitionCell)
	for _, e := range s.sorted() {
		if e.telemetry == nil {
			continue
		}
		demos := e.telemetry.FindSeries(telemetry.SeriesQueueDemotions)
		if demos == nil {
			continue // transitions not collected for this job
		}
		m := e.metrics
		key := m.Trace + "|" + m.Variant + "|" + m.Scheduler
		tc, ok := index[key]
		if !ok {
			tc = &transitionCell{cell: cell{trace: m.Trace, variant: m.Variant, scheduler: m.Scheduler}}
			index[key] = tc
			order = append(order, tc)
		}
		tc.n++
		tc.sampled += e.telemetry.Sampled
		tc.demotions += demos.Mean * float64(demos.Count)
		if promos := e.telemetry.FindSeries(telemetry.SeriesQueuePromotions); promos != nil {
			tc.promotions += promos.Mean * float64(promos.Count)
		}
		if h := e.telemetry.FindHistogram(telemetry.HistQueueLevel); h != nil {
			tc.observations += h.Count
			if tc.level == nil {
				tc.level = h.Clone()
			} else {
				tc.level.Merge(h)
			}
		}
	}
	t := &report.Table{
		Title: title,
		Headers: []string{"workload", "scheduler", "runs", "intervals",
			"promotions", "demotions", "demote/1k ivs", "level p50", "level p90", "level max"},
	}
	for _, tc := range order {
		p50, p90, max := "-", "-", "-"
		if tc.level != nil && tc.level.Count > 0 {
			p50 = fmt.Sprintf("%.0f", tc.level.Quantile(0.50))
			p90 = fmt.Sprintf("%.0f", tc.level.Quantile(0.90))
			max = fmt.Sprintf("%.0f", tc.level.Max)
		}
		rate := "-"
		if tc.sampled > 0 {
			rate = fmt.Sprintf("%.1f", tc.demotions/float64(tc.sampled)*1000)
		}
		t.AddRow(tc.cell.label(), tc.cell.scheduler, tc.n, tc.sampled,
			fmt.Sprintf("%.0f", tc.promotions), fmt.Sprintf("%.0f", tc.demotions),
			rate, p50, p90, max)
	}
	return t
}

// heatmapCell pools one (trace, variant, scheduler) group's heatmaps.
type heatmapCell struct {
	cell   cell
	egress *telemetry.HeatmapDump
	ingres *telemetry.HeatmapDump
}

// PortHeatmapTable condenses the per-port occupancy heatmaps into one
// row per (cell, side, port): the hottest maxPorts egress and ingress
// ports of every (trace, variant, scheduler) cell with seeds pooled,
// each with its time-weighted mean/max occupancy and the fraction of
// sampled intervals spent in each occupancy bucket. Cells whose jobs
// ran without Spec.PortHeatmap are skipped.
func (s *Summary) PortHeatmapTable(title string, maxPorts int) *report.Table {
	var order []*heatmapCell
	index := make(map[string]*heatmapCell)
	merge := func(dst **telemetry.HeatmapDump, src *telemetry.HeatmapDump) {
		if src == nil {
			return
		}
		if *dst == nil {
			*dst = src.Clone()
		} else {
			(*dst).Merge(src)
		}
	}
	for _, e := range s.sorted() {
		if e.telemetry == nil {
			continue
		}
		eg := e.telemetry.FindHeatmap(telemetry.HeatmapEgressOccupancy)
		in := e.telemetry.FindHeatmap(telemetry.HeatmapIngressOccupancy)
		if eg == nil && in == nil {
			continue
		}
		m := e.metrics
		key := m.Trace + "|" + m.Variant + "|" + m.Scheduler
		hc, ok := index[key]
		if !ok {
			hc = &heatmapCell{cell: cell{trace: m.Trace, variant: m.Variant, scheduler: m.Scheduler}}
			index[key] = hc
			order = append(order, hc)
		}
		merge(&hc.egress, eg)
		merge(&hc.ingres, in)
	}
	var bounds []float64
	var rows []report.HeatmapRow
	for _, hc := range order {
		for _, side := range []struct {
			name string
			hm   *telemetry.HeatmapDump
		}{{"egress", hc.egress}, {"ingress", hc.ingres}} {
			if side.hm == nil {
				continue
			}
			if bounds == nil {
				bounds = side.hm.Bounds
			}
			prefix := fmt.Sprintf("%s %s %s", hc.cell.label(), hc.cell.scheduler, side.name)
			rows = append(rows, telemetry.HeatmapRows(side.hm, maxPorts, func(p *telemetry.HeatmapPortDump) string {
				return fmt.Sprintf("%s p%d", prefix, p.Port)
			})...)
		}
	}
	t := report.HeatmapTable(title, "workload scheduler side port", bounds, rows)
	return t
}
