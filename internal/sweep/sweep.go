// Package sweep is the parallel experiment engine behind the paper's
// evaluation: it expands a declarative grid (trace × scheduler × seed ×
// parameter variant) into simulation jobs, executes them on a bounded
// worker pool, and streams completed runs into thread-safe aggregation.
//
// Determinism is a design requirement — the figures must not depend on
// how many workers happen to run them. Every job is self-contained
// (its trace is generated or cloned inside the job, its dynamics RNG
// seeds are derived from the job identity), results land in a slice
// slot keyed by job index, and aggregation iterates jobs in index
// order. A grid executed with Parallel=1 therefore produces output
// byte-identical to the same grid with Parallel=N.
//
// # Seed derivation
//
// DeriveSeed(base, salt) is the engine's only source of implicit
// randomness, and its salting contract is what keeps grids both
// reproducible and collision-free:
//
//   - The base is the job's grid seed (Job.Seed); the salt is the
//     job's Key() — trace|variant|seed|scheduler — plus a
//     consumer-specific suffix ("|dynamics", "|pipelining",
//     "|telemetry"). Two jobs from the same grid therefore never share
//     an RNG stream, and the same cell re-run (any worker count, any
//     process, any shard) always gets the same stream.
//   - Key() must be unique across a grid expansion for the contract to
//     hold; Grid.Jobs guarantees it as long as trace names, variant
//     names and seeds are themselves distinct (enforced by the
//     compile-time validation in internal/study, and pinned by
//     TestGridJobKeyUniqueness).
//   - Explicit non-zero seeds (Dynamics.Seed, Pipelining.Seed,
//     telemetry.Spec.Seed) are always respected; derivation only fills
//     zeros.
package sweep

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"saath/internal/obs"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/telemetry"
	"saath/internal/trace"
)

// TraceSource names a workload and knows how to build a fresh instance
// of it for a given seed. Gen must return a trace the job may mutate
// (the engine never shares the returned value across jobs).
type TraceSource struct {
	Name string
	Gen  func(seed int64) *trace.Trace
}

// FixedTrace wraps an already-built trace: every job gets its own
// clone and the grid's seeds only vary cluster dynamics, not the
// workload itself.
func FixedTrace(tr *trace.Trace) TraceSource {
	return TraceSource{Name: tr.Name, Gen: func(int64) *trace.Trace { return tr.Clone() }}
}

// SynthSource builds a synthetic workload per seed, so a multi-seed
// grid averages over workload draws.
func SynthSource(name string, gen func(seed int64) *trace.Trace) TraceSource {
	return TraceSource{Name: name, Gen: gen}
}

// Variant is one point of a parameter sweep: a scheduler/simulator
// configuration and an optional trace transform (e.g. arrival
// scaling). An empty Name labels the grid's default configuration.
type Variant struct {
	Name   string
	Params sched.Params
	Config sim.Config
	// Mutate, if set, transforms the job's private trace copy before
	// simulation (Fig 14d's arrival scaling is expressed this way).
	Mutate func(tr *trace.Trace)
	// MutateSeeded, if set, transforms — or wholly regenerates — the
	// job's private trace copy with access to the job's grid seed; it
	// runs after Mutate. Trace-regenerating parameter grids (the
	// fan-degree study rebuilds its incast workload per variant) use it
	// so every grid seed still yields an independent workload draw.
	MutateSeeded func(tr *trace.Trace, seed int64)
	// Schedulers, if non-empty, restricts this variant to the listed
	// policies instead of the grid's scheduler list (Fig 14e evaluates
	// the deadline factor for Saath only).
	Schedulers []string
}

// Grid declares a sweep: the cross product of traces, parameter
// variants, seeds and schedulers. Zero-value fields take defaults
// (one seed, one variant built from Params/Config).
type Grid struct {
	Traces     []TraceSource
	Schedulers []string
	// Seeds defaults to {1}. Each seed is passed to the trace source
	// and used to derive per-job dynamics/pipelining seeds.
	Seeds []int64
	// Variants defaults to a single unnamed variant using Params and
	// Config below.
	Variants []Variant
	Params   sched.Params
	Config   sim.Config

	// Telemetry, when Enabled, attaches a fresh telemetry.Suite to
	// every job. A zero Seed is derived per job from the job identity,
	// so exported metrics are deterministic at any parallelism. Use
	// this instead of Config.Probes in grids — probes placed in Config
	// would be shared across jobs.
	Telemetry telemetry.Spec
}

// Jobs expands the grid in deterministic order: trace-major, then
// variant, seed, scheduler.
func (g Grid) Jobs() []Job {
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	variants := g.Variants
	if len(variants) == 0 {
		variants = []Variant{{Params: g.Params, Config: g.Config}}
	}
	var jobs []Job
	for _, ts := range g.Traces {
		for _, v := range variants {
			schedulers := g.Schedulers
			if len(v.Schedulers) > 0 {
				schedulers = v.Schedulers
			}
			for _, seed := range seeds {
				for _, sn := range schedulers {
					jobs = append(jobs, Job{
						Index:     len(jobs),
						Trace:     ts.Name,
						Scheduler: sn,
						Seed:      seed,
						Variant:   v.Name,
						Params:    v.Params,
						Config:    v.Config,
						Telemetry: g.Telemetry,
						Gen:       bindGen(ts, v, seed),
					})
				}
			}
		}
	}
	return jobs
}

func bindGen(ts TraceSource, v Variant, seed int64) func() *trace.Trace {
	return func() *trace.Trace {
		tr := ts.Gen(seed)
		if v.Mutate == nil && v.MutateSeeded == nil {
			return tr
		}
		// Defensive clone before mutating: Gen's contract says the
		// returned trace is private to the job, but a hand-built source
		// that returns a shared instance would otherwise leak this
		// variant's mutation into every sibling job of the grid. The
		// clone makes that class of bug structurally impossible, at the
		// cost of one trace copy per mutating job (microseconds against
		// a simulation's seconds).
		tr = tr.Clone()
		if v.Mutate != nil {
			v.Mutate(tr)
		}
		if v.MutateSeeded != nil {
			v.MutateSeeded(tr, seed)
		}
		return tr
	}
}

// Job is one simulation to run: a scheduler on a trace under a
// parameter variant. Jobs built by Grid.Jobs are self-contained;
// hand-built jobs must set Gen to return a private trace copy.
type Job struct {
	Index     int
	Trace     string
	Scheduler string
	Seed      int64
	Variant   string
	Params    sched.Params
	Config    sim.Config
	Telemetry telemetry.Spec
	Gen       func() *trace.Trace
}

// Key identifies the job's cell in the grid (everything but the
// index), used for seed derivation and aggregation grouping.
func (j Job) Key() string {
	return fmt.Sprintf("%s|%s|%d|%s", j.Trace, j.Variant, j.Seed, j.Scheduler)
}

// JobResult pairs a job with its outcome. Exactly one of Res/Err is
// meaningful; Elapsed is wall-clock (informational only — it is never
// part of aggregated output, which must stay deterministic).
type JobResult struct {
	Job     Job
	Res     *sim.Result
	Err     error
	Elapsed time.Duration
	// Metrics holds the job's exported telemetry when Job.Telemetry
	// was enabled (nil otherwise, or on error). Like Res, it is a pure
	// function of the job identity — never of execution interleaving.
	Metrics *telemetry.Metrics
}

// Collector receives completed jobs as they finish. Add is called
// under the engine's serialization lock, so implementations need no
// locking of their own for engine-driven calls, but Summary locks
// anyway so it can also be fed by hand.
type Collector interface {
	Add(JobResult)
}

// Options controls one engine invocation.
type Options struct {
	// Parallel bounds the worker pool; <=0 means runtime.NumCPU().
	Parallel int
	// Progress, if set, is called after every job completes (done is
	// the completion count so far). Calls are serialized; completion
	// order is nondeterministic under parallelism.
	Progress ProgressFunc
	// Collectors are streamed every completed job (serialized).
	Collectors []Collector
	// Observer, when non-nil, collects per-job run-trace spans and
	// engine counters into an obs manifest. Observation is out-of-band:
	// it never changes a job's seeds, RNG draws, or results, so every
	// determinism golden holds with it attached (nil disables at zero
	// cost).
	Observer *obs.Recorder
}

// Result is the outcome of a sweep, with Jobs in grid order regardless
// of execution interleaving.
type Result struct {
	Jobs    []JobResult
	Elapsed time.Duration
}

// FirstErr returns the first failed job's error in grid order, nil if
// every job succeeded.
func (r *Result) FirstErr() error {
	for _, jr := range r.Jobs {
		if jr.Err != nil {
			return jr.Err
		}
	}
	return nil
}

// Failed returns the failed jobs in grid order.
func (r *Result) Failed() []JobResult {
	var out []JobResult
	for _, jr := range r.Jobs {
		if jr.Err != nil {
			out = append(out, jr)
		}
	}
	return out
}

// Completed counts successful jobs.
func (r *Result) Completed() int {
	n := 0
	for _, jr := range r.Jobs {
		if jr.Err == nil {
			n++
		}
	}
	return n
}

// Run executes jobs on a bounded worker pool. A job failing records
// its error in the corresponding slot and does not stop the sweep;
// cancelling ctx stops handing out new jobs (in-flight simulations
// finish — sim.Run is not interruptible) and marks never-started jobs
// with the context error. Run never returns nil.
func Run(ctx context.Context, jobs []Job, opts Options) *Result {
	start := time.Now() //saath:wallclock Result.Elapsed is reporting-only, never study bytes
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]JobResult, len(jobs))
	ran := make([]bool, len(jobs))

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes done/Progress/Collectors
		done int
	)
	deliver := func(jr JobResult) {
		mu.Lock()
		defer mu.Unlock()
		done++
		for _, c := range opts.Collectors {
			c.Add(jr)
		}
		if opts.Progress != nil {
			opts.Progress(done, len(jobs), jr)
		}
	}

	feed := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				jr := runJob(ctx, jobs[i], opts.Observer)
				out[i], ran[i] = jr, true
				deliver(jr)
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	for i := range out {
		if !ran[i] {
			jr := JobResult{Job: jobs[i], Err: fmt.Errorf("sweep: job %s skipped: %w", jobs[i].Key(), ctx.Err())}
			out[i] = jr
			deliver(jr)
		}
	}
	return &Result{Jobs: out, Elapsed: time.Since(start)} //saath:wallclock
}

// runJob executes one simulation, deriving deterministic RNG seeds for
// dynamics/pipelining from the job identity when the caller left them
// zero (so every cell of a grid gets distinct but reproducible noise).
// With an enabled recorder it also times the job's phases (trace
// synthesis, run loop, metrics export) and attaches engine counters —
// all out-of-band, never touching the seeds or results above.
func runJob(ctx context.Context, j Job, rec *obs.Recorder) JobResult {
	jr := JobResult{Job: j}
	start := time.Now()                               //saath:wallclock JobResult.Elapsed is reporting-only, never study bytes
	defer func() { jr.Elapsed = time.Since(start) }() //saath:wallclock
	var span *obs.Span
	var counters *obs.EngineCounters
	if rec.Enabled() {
		span = obs.StartSpan("job:" + j.Key())
		counters = &obs.EngineCounters{}
		defer func() {
			span.End()
			errStr := ""
			if jr.Err != nil {
				errStr = jr.Err.Error()
			}
			rec.RecordJob(obs.JobRecord{
				Index:     j.Index,
				Trace:     j.Trace,
				Variant:   j.Variant,
				Scheduler: j.Scheduler,
				Seed:      j.Seed,
				Error:     errStr,
				Span:      span,
				Counters:  counters,
			})
		}()
	}
	if err := ctx.Err(); err != nil {
		jr.Err = fmt.Errorf("sweep: job %s skipped: %w", j.Key(), err)
		return jr
	}
	if j.Gen == nil {
		jr.Err = fmt.Errorf("sweep: job %s has no trace generator", j.Key())
		return jr
	}
	s, err := sched.New(j.Scheduler, j.Params)
	if err != nil {
		jr.Err = fmt.Errorf("sweep: job %s: %w", j.Key(), err)
		return jr
	}
	cfg := j.Config
	cfg.Counters = counters // nil when observation is off
	if cfg.Dynamics != nil {
		d := *cfg.Dynamics
		if d.Seed == 0 {
			d.Seed = DeriveSeed(j.Seed, j.Key()+"|dynamics")
		}
		cfg.Dynamics = &d
	}
	if cfg.Pipelining != nil {
		p := *cfg.Pipelining
		if p.Seed == 0 {
			p.Seed = DeriveSeed(j.Seed, j.Key()+"|pipelining")
		}
		cfg.Pipelining = &p
	}
	var suite *telemetry.Suite
	if j.Telemetry.Enabled {
		spec := j.Telemetry
		if spec.Seed == 0 {
			spec.Seed = DeriveSeed(j.Seed, j.Key()+"|telemetry")
		}
		suite = telemetry.NewSuite(spec)
		// Copy-safe attach: never share a probe backing array (and
		// thus a Suite) with sibling jobs of the same grid.
		cfg = cfg.WithProbe(suite)
	}
	synth := span.Child("trace-synth")
	tr := j.Gen()
	synth.End()
	runSpan := span.Child("run")
	res, err := sim.Run(tr, s, cfg)
	runSpan.End()
	if err != nil {
		jr.Err = fmt.Errorf("sweep: job %s: %w", j.Key(), err)
		return jr
	}
	jr.Res = res
	if suite != nil {
		export := span.Child("export")
		jr.Metrics = suite.Metrics()
		export.End()
	}
	return jr
}

// DeriveSeed mixes a base seed with a salt string into a stable,
// non-zero RNG seed (FNV-1a over both).
func DeriveSeed(base int64, salt string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", base, salt)
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}
