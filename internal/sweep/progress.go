package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProgressFunc is the sweep progress callback: invoked serialized
// after every completed job with the completion count so far.
// Completion order is nondeterministic under parallelism — progress is
// presentation only and never feeds aggregated output.
type ProgressFunc func(done, total int, jr JobResult)

// ProgressPrinter returns a ProgressFunc that prints one line per
// completed job to w — the verbose per-job view; CLIProgress builds
// the throttled aggregate view both CLIs use by default.
func ProgressPrinter(w io.Writer) ProgressFunc {
	return func(done, total int, jr JobResult) {
		status := "ok"
		if jr.Err != nil {
			status = jr.Err.Error()
		}
		fmt.Fprintf(w, "  [%d/%d] %s (%.1fs) %s\n",
			done, total, jr.Job.Key(), jr.Elapsed.Seconds(), status)
	}
}

// defaultProgressEvery throttles the aggregate progress line.
const defaultProgressEvery = 500 * time.Millisecond

// ProgressMeter aggregates sweep progress into a throttled line:
// done/total, completion rate, ETA, variants finished, failures — with
// a per-variant breakdown on the final print. One meter serves one
// sweep at a time; a reused meter resets itself when a new sweep's
// first job completes after the previous sweep finished.
//
// The meter is delivery-tolerant: the fleet driver feeds it from
// worker event streams, where a retried shard redelivers completions
// it already reported and concurrent streams interleave out of order.
// Duplicate or stale callbacks never walk the progress line backwards,
// overshoot a variant's total, or reset a sweep that is still running.
type ProgressMeter struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	now   func() time.Time // injectable clock for tests

	start      time.Time
	lastPrint  time.Time
	failed     int
	total      int
	maxDone    int
	finalShown bool

	// Per-group completion, keyed by variant name (or trace name for
	// unnamed variants), in first-seen job order.
	groupTotal map[string]int
	groupDone  map[string]int
	groupOrder []string
}

// NewProgressMeter builds a meter writing to w, printing at most once
// per every (<=0 takes the half-second default).
func NewProgressMeter(w io.Writer, every time.Duration) *ProgressMeter {
	if every <= 0 {
		every = defaultProgressEvery
	}
	return &ProgressMeter{w: w, every: every, now: time.Now}
}

// Group labels the job's progress bucket: the variant name, or the
// trace name for unnamed variants. Exported so remote executors can
// put the label on the wire (fleet workers stream it back with each
// completion) and feed ProgressMeter.Observe without a full Job.
func (j Job) Group() string {
	if j.Variant != "" {
		return j.Variant
	}
	return j.Trace
}

// SetJobs precomputes the per-variant totals from the sweep's job
// list, enabling the "variants m/n" column and the final breakdown.
// Optional: without it the meter learns groups as jobs complete and
// reports no group totals.
func (m *ProgressMeter) SetJobs(jobs []Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.groupTotal = make(map[string]int)
	m.groupDone = make(map[string]int)
	m.groupOrder = nil
	for _, j := range jobs {
		g := j.Group()
		if m.groupTotal[g] == 0 {
			m.groupOrder = append(m.groupOrder, g)
		}
		m.groupTotal[g]++
	}
}

// Progress is the ProgressFunc: feed it to Options.Progress.
func (m *ProgressMeter) Progress(done, total int, jr JobResult) {
	m.Observe(done, total, jr.Job.Group(), jr.Elapsed, jr.Err != nil)
}

// Observe is the decomposed progress entry point for callers that have
// no JobResult in hand — the fleet driver receives (done, group,
// elapsed, failed) tuples over the wire from worker processes. It is
// tolerant of redelivery: done values below the high-water mark (a
// retried shard replaying completions, or interleaved worker streams)
// update group/failure tallies but never regress the printed line, and
// a done <= 1 only resets the meter when no sweep is mid-flight.
func (m *ProgressMeter) Observe(done, total int, group string, elapsed time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	finished := m.total > 0 && m.maxDone >= m.total
	if m.start.IsZero() || (done <= 1 && (finished || m.maxDone <= 1)) {
		// First completion of a (possibly re-run) sweep: anchor the rate
		// clock at the job's start so rate/ETA don't divide by ~zero.
		m.start = now.Add(-elapsed)
		m.lastPrint = time.Time{}
		m.failed = 0
		m.maxDone = 0
		m.finalShown = false
		for g := range m.groupDone {
			delete(m.groupDone, g)
		}
	}
	m.total = total
	if failed {
		m.failed++
	}
	if m.groupDone == nil {
		m.groupDone = make(map[string]int)
	}
	if m.groupTotal[group] == 0 && m.groupDone[group] == 0 {
		m.groupOrder = append(m.groupOrder, group)
	}
	if t := m.groupTotal[group]; t == 0 || m.groupDone[group] < t {
		// Clamp at the group's total: a duplicate delivery must not
		// render a "4/2" breakdown.
		m.groupDone[group]++
	}
	if done > m.maxDone {
		m.maxDone = done
	}

	final := m.maxDone >= total
	if final && m.finalShown {
		return // duplicate of the final completion; summary already out
	}
	if !final && !m.lastPrint.IsZero() && now.Sub(m.lastPrint) < m.every {
		return
	}
	m.lastPrint = now
	m.printLine(m.maxDone, total, now)
	if final {
		m.finalShown = true
		m.printGroups()
	}
}

func (m *ProgressMeter) printLine(done, total int, now time.Time) {
	elapsed := now.Sub(m.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %d/%d jobs (%d%%)", done, total, 100*done/max(total, 1))
	fmt.Fprintf(&b, " | %.1f jobs/s", rate)
	if done < total && rate > 0 {
		eta := time.Duration(float64(total-done) / rate * float64(time.Second))
		fmt.Fprintf(&b, " | eta %s", eta.Round(time.Second))
	}
	if n := len(m.groupTotal); n > 1 {
		doneGroups := 0
		//saath:order-independent counting completed groups is commutative
		for g, t := range m.groupTotal {
			if m.groupDone[g] >= t {
				doneGroups++
			}
		}
		fmt.Fprintf(&b, " | variants %d/%d", doneGroups, n)
	}
	if m.failed > 0 {
		fmt.Fprintf(&b, " | failed %d", m.failed)
	}
	fmt.Fprintln(m.w, b.String())
}

// printGroups emits the final per-variant completion breakdown in
// stable first-seen order.
func (m *ProgressMeter) printGroups() {
	if len(m.groupOrder) < 2 {
		return
	}
	order := m.groupOrder
	if len(m.groupTotal) == 0 {
		// Groups learned on the fly arrive in completion order; sort for
		// a stable final report.
		order = append([]string(nil), m.groupOrder...)
		sort.Strings(order)
	}
	for _, g := range order {
		total := m.groupTotal[g]
		if total == 0 {
			total = m.groupDone[g]
		}
		fmt.Fprintf(m.w, "    %-24s %d/%d\n", g, m.groupDone[g], total)
	}
}

// CLIProgress is the single -progress hookup shared by the CLIs: nil
// when disabled, otherwise a throttled aggregate meter over the
// sweep's jobs (pass nil jobs when the list is not known up front).
func CLIProgress(enabled bool, w io.Writer, jobs []Job) ProgressFunc {
	if !enabled {
		return nil
	}
	m := NewProgressMeter(w, 0)
	if len(jobs) > 0 {
		m.SetJobs(jobs)
	}
	return m.Progress
}
