package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProgressFunc is the sweep progress callback: invoked serialized
// after every completed job with the completion count so far.
// Completion order is nondeterministic under parallelism — progress is
// presentation only and never feeds aggregated output.
type ProgressFunc func(done, total int, jr JobResult)

// ProgressPrinter returns a ProgressFunc that prints one line per
// completed job to w — the verbose per-job view; CLIProgress builds
// the throttled aggregate view both CLIs use by default.
func ProgressPrinter(w io.Writer) ProgressFunc {
	return func(done, total int, jr JobResult) {
		status := "ok"
		if jr.Err != nil {
			status = jr.Err.Error()
		}
		fmt.Fprintf(w, "  [%d/%d] %s (%.1fs) %s\n",
			done, total, jr.Job.Key(), jr.Elapsed.Seconds(), status)
	}
}

// defaultProgressEvery throttles the aggregate progress line.
const defaultProgressEvery = 500 * time.Millisecond

// ProgressMeter aggregates sweep progress into a throttled line:
// done/total, completion rate, ETA, variants finished, failures — with
// a per-variant breakdown on the final print. One meter serves one
// sweep at a time; a reused meter resets itself when a new sweep's
// first job completes.
type ProgressMeter struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	now   func() time.Time // injectable clock for tests

	start     time.Time
	lastPrint time.Time
	failed    int

	// Per-group completion, keyed by variant name (or trace name for
	// unnamed variants), in first-seen job order.
	groupTotal map[string]int
	groupDone  map[string]int
	groupOrder []string
}

// NewProgressMeter builds a meter writing to w, printing at most once
// per every (<=0 takes the half-second default).
func NewProgressMeter(w io.Writer, every time.Duration) *ProgressMeter {
	if every <= 0 {
		every = defaultProgressEvery
	}
	return &ProgressMeter{w: w, every: every, now: time.Now}
}

// progressGroup labels a job's progress bucket.
func progressGroup(j Job) string {
	if j.Variant != "" {
		return j.Variant
	}
	return j.Trace
}

// SetJobs precomputes the per-variant totals from the sweep's job
// list, enabling the "variants m/n" column and the final breakdown.
// Optional: without it the meter learns groups as jobs complete and
// reports no group totals.
func (m *ProgressMeter) SetJobs(jobs []Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.groupTotal = make(map[string]int)
	m.groupDone = make(map[string]int)
	m.groupOrder = nil
	for _, j := range jobs {
		g := progressGroup(j)
		if m.groupTotal[g] == 0 {
			m.groupOrder = append(m.groupOrder, g)
		}
		m.groupTotal[g]++
	}
}

// Progress is the ProgressFunc: feed it to Options.Progress.
func (m *ProgressMeter) Progress(done, total int, jr JobResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	if done <= 1 || m.start.IsZero() {
		// First completion of a (possibly re-run) sweep: anchor the rate
		// clock at the job's start so rate/ETA don't divide by ~zero.
		m.start = now.Add(-jr.Elapsed)
		m.lastPrint = time.Time{}
		m.failed = 0
		for g := range m.groupDone {
			delete(m.groupDone, g)
		}
	}
	if jr.Err != nil {
		m.failed++
	}
	if m.groupDone == nil {
		m.groupDone = make(map[string]int)
	}
	g := progressGroup(jr.Job)
	if m.groupTotal[g] == 0 && m.groupDone[g] == 0 {
		m.groupOrder = append(m.groupOrder, g)
	}
	m.groupDone[g]++

	final := done >= total
	if !final && !m.lastPrint.IsZero() && now.Sub(m.lastPrint) < m.every {
		return
	}
	m.lastPrint = now
	m.printLine(done, total, now)
	if final {
		m.printGroups()
	}
}

func (m *ProgressMeter) printLine(done, total int, now time.Time) {
	elapsed := now.Sub(m.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %d/%d jobs (%d%%)", done, total, 100*done/max(total, 1))
	fmt.Fprintf(&b, " | %.1f jobs/s", rate)
	if done < total && rate > 0 {
		eta := time.Duration(float64(total-done) / rate * float64(time.Second))
		fmt.Fprintf(&b, " | eta %s", eta.Round(time.Second))
	}
	if n := len(m.groupTotal); n > 1 {
		doneGroups := 0
		for g, t := range m.groupTotal {
			if m.groupDone[g] >= t {
				doneGroups++
			}
		}
		fmt.Fprintf(&b, " | variants %d/%d", doneGroups, n)
	}
	if m.failed > 0 {
		fmt.Fprintf(&b, " | failed %d", m.failed)
	}
	fmt.Fprintln(m.w, b.String())
}

// printGroups emits the final per-variant completion breakdown in
// stable first-seen order.
func (m *ProgressMeter) printGroups() {
	if len(m.groupOrder) < 2 {
		return
	}
	order := m.groupOrder
	if len(m.groupTotal) == 0 {
		// Groups learned on the fly arrive in completion order; sort for
		// a stable final report.
		order = append([]string(nil), m.groupOrder...)
		sort.Strings(order)
	}
	for _, g := range order {
		total := m.groupTotal[g]
		if total == 0 {
			total = m.groupDone[g]
		}
		fmt.Fprintf(m.w, "    %-24s %d/%d\n", g, m.groupDone[g], total)
	}
}

// CLIProgress is the single -progress hookup shared by the CLIs: nil
// when disabled, otherwise a throttled aggregate meter over the
// sweep's jobs (pass nil jobs when the list is not known up front).
func CLIProgress(enabled bool, w io.Writer, jobs []Job) ProgressFunc {
	if !enabled {
		return nil
	}
	m := NewProgressMeter(w, 0)
	if len(jobs) > 0 {
		m.SetJobs(jobs)
	}
	return m.Progress
}
