package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/trace"

	_ "saath/internal/core"       // register saath
	_ "saath/internal/sched/aalo" // register aalo
)

// tinySource is a small synthetic workload so a full grid runs in
// well under a second even with -race.
func tinySource(name string) TraceSource {
	return SynthSource(name, func(seed int64) *trace.Trace {
		return trace.Synthesize(trace.SynthConfig{
			Seed: seed, NumPorts: 10, NumCoFlows: 16,
			MeanInterArrival: 20 * coflow.Millisecond,
			SingleFlowFrac:   0.25, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
			SmallFracNarrow: 0.8, SmallFracWide: 0.5,
			MinSmall: 100 * coflow.KB, MaxSmall: coflow.MB,
			MinLarge: coflow.MB, MaxLarge: 20 * coflow.MB,
		}, name)
	})
}

// testGrid is the 24-job determinism grid: 2 traces × 2 variants ×
// 3 seeds × 2 schedulers.
func testGrid() Grid {
	fast := sched.DefaultParams()
	slowDelta := sim.Config{Delta: 16 * coflow.Millisecond}
	return Grid{
		Traces:     []TraceSource{tinySource("tiny-a"), tinySource("tiny-b")},
		Schedulers: []string{"aalo", "saath"},
		Seeds:      []int64{1, 2, 3},
		Variants: []Variant{
			{Name: "delta=8ms", Params: fast, Config: sim.Config{Delta: 8 * coflow.Millisecond}},
			{Name: "delta=16ms", Params: fast, Config: slowDelta},
		},
	}
}

func TestGridExpansion(t *testing.T) {
	g := testGrid()
	jobs := g.Jobs()
	if len(jobs) != 24 {
		t.Fatalf("got %d jobs, want 24", len(jobs))
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d has index %d", i, j.Index)
		}
		if j.Gen == nil {
			t.Fatalf("job %d has no generator", i)
		}
	}
	// Expansion order is trace-major, then variant, seed, scheduler.
	if jobs[0].Key() != "tiny-a|delta=8ms|1|aalo" {
		t.Errorf("first key = %q", jobs[0].Key())
	}
	if jobs[23].Key() != "tiny-b|delta=16ms|3|saath" {
		t.Errorf("last key = %q", jobs[23].Key())
	}

	// Defaults: no seeds/variants collapses to one of each.
	def := Grid{Traces: []TraceSource{tinySource("t")}, Schedulers: []string{"saath"}, Params: sched.DefaultParams()}
	if got := len(def.Jobs()); got != 1 {
		t.Fatalf("default grid: %d jobs, want 1", got)
	}
}

// TestGridJobKeyUniqueness pins the DeriveSeed salting contract (see
// the package doc): Key() must be unique across a full grid expansion
// — traces × param variants × seeds × schedulers, including a
// variant-scoped scheduler restriction — because every derived RNG
// stream (dynamics, pipelining, telemetry) is salted with it.
func TestGridJobKeyUniqueness(t *testing.T) {
	g := testGrid()
	g.Variants = append(g.Variants, Variant{Name: "saath-only", Schedulers: []string{"saath"}})
	jobs := g.Jobs()
	// 2 traces × (2 variants × 3 seeds × 2 scheds + 1 restricted
	// variant × 3 seeds × 1 sched).
	if want := 30; len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	seen := make(map[string]int, len(jobs))
	for _, j := range jobs {
		if prev, dup := seen[j.Key()]; dup {
			t.Fatalf("jobs %d and %d share key %q", prev, j.Index, j.Key())
		}
		seen[j.Key()] = j.Index
	}
	// Distinct keys must yield distinct streams for every derived-seed
	// consumer — and the consumers of one job must not collide with
	// each other either.
	streams := make(map[int64]string, 3*len(jobs))
	for _, j := range jobs {
		for _, salt := range []string{"|dynamics", "|pipelining", "|telemetry"} {
			s := DeriveSeed(j.Seed, j.Key()+salt)
			if prev, dup := streams[s]; dup {
				t.Fatalf("derived seed collision between %q and %q", prev, j.Key()+salt)
			}
			streams[s] = j.Key() + salt
		}
	}
}

// runSummary executes the grid at the given parallelism and returns
// the JSON export plus rendered aggregate tables.
func runSummary(t *testing.T, jobs []Job, parallel int) (string, string) {
	t.Helper()
	sum := NewSummary()
	res := Run(context.Background(), jobs, Options{Parallel: parallel, Collectors: []Collector{sum}})
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := sum.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var tables strings.Builder
	if err := sum.CCTTable("cct").Render(&tables); err != nil {
		t.Fatal(err)
	}
	if err := sum.SpeedupTable("speedup", "aalo").Render(&tables); err != nil {
		t.Fatal(err)
	}
	return js.String(), tables.String()
}

// TestDeterminismAcrossParallelism is the engine's core contract: a
// ≥24-job grid aggregated with 8 workers is byte-identical to the
// same grid on 1 worker.
func TestDeterminismAcrossParallelism(t *testing.T) {
	jobs := testGrid().Jobs()
	js1, tb1 := runSummary(t, jobs, 1)
	js8, tb8 := runSummary(t, jobs, 8)
	if js1 != js8 {
		t.Errorf("JSON differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", js1, js8)
	}
	if tb1 != tb8 {
		t.Errorf("tables differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", tb1, tb8)
	}
	if !strings.Contains(js1, `"trace": "tiny-a"`) {
		t.Errorf("JSON missing trace field:\n%s", js1)
	}
}

// TestPartialFailure checks that one erroring job does not poison the
// sweep: the other jobs complete and aggregate normally.
func TestPartialFailure(t *testing.T) {
	g := testGrid()
	g.Schedulers = []string{"aalo", "saath", "no-such-scheduler"}
	jobs := g.Jobs()
	sum := NewSummary()
	res := Run(context.Background(), jobs, Options{Parallel: 4, Collectors: []Collector{sum}})
	failed := res.Failed()
	if len(failed) != 12 { // 2 traces × 2 variants × 3 seeds
		t.Fatalf("%d failed jobs, want 12", len(failed))
	}
	for _, jr := range failed {
		if jr.Job.Scheduler != "no-such-scheduler" {
			t.Fatalf("unexpected failure: %v", jr.Err)
		}
	}
	if got := res.Completed(); got != 24 {
		t.Fatalf("%d completed, want 24", got)
	}
	// Aggregates only contain the successful cells; errors are
	// reported in the JSON digest.
	tbl := sum.CCTTable("cct")
	for _, row := range tbl.Rows {
		if row[1] == "no-such-scheduler" {
			t.Fatal("failed scheduler leaked into aggregate table")
		}
	}
	var js bytes.Buffer
	if err := sum.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "no-such-scheduler") {
		t.Error("JSON digest should record failed jobs")
	}
}

// TestCancellation cancels mid-sweep: in-flight jobs finish, undispatched
// jobs are marked with the context error, and Run does not deadlock.
func TestCancellation(t *testing.T) {
	jobs := testGrid().Jobs()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	res := Run(ctx, jobs, Options{
		Parallel: 2,
		Progress: func(done, total int, jr JobResult) {
			once.Do(cancel)
		},
	})
	if len(res.Jobs) != len(jobs) {
		t.Fatalf("result has %d slots, want %d", len(res.Jobs), len(jobs))
	}
	failed := res.Failed()
	if len(failed) == 0 {
		t.Fatal("cancellation produced no skipped jobs")
	}
	for _, jr := range failed {
		if !errors.Is(jr.Err, context.Canceled) {
			t.Fatalf("skipped job error = %v, want context.Canceled", jr.Err)
		}
	}
	if res.Completed() == 0 {
		t.Fatal("no job completed before cancellation")
	}
	if res.Completed()+len(failed) != len(jobs) {
		t.Fatalf("completed %d + failed %d != %d", res.Completed(), len(failed), len(jobs))
	}
}

// TestDynamicsSeedDerivation: zero dynamics seeds are derived from the
// job identity, so distinct grid seeds give distinct noise but the
// same job is always reproducible.
func TestDynamicsSeedDerivation(t *testing.T) {
	g := testGrid()
	g.Variants = nil
	g.Params = sched.DefaultParams()
	g.Config = sim.Config{Dynamics: &sim.Dynamics{StragglerProb: 0.3, Slowdown: 4}}
	g.Traces = g.Traces[:1]
	g.Schedulers = []string{"saath"}
	jobs := g.Jobs()
	run1 := Run(context.Background(), jobs, Options{Parallel: 2})
	run2 := Run(context.Background(), jobs, Options{Parallel: 1})
	if err := run1.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a, b := run1.Jobs[i].Res, run2.Jobs[i].Res
		if a.AvgCCT() != b.AvgCCT() {
			t.Fatalf("job %d not reproducible: %v vs %v", i, a.AvgCCT(), b.AvgCCT())
		}
	}
	// The caller's explicit seed is respected.
	if s := DeriveSeed(1, "x"); s == 0 {
		t.Fatal("derived seed is zero")
	}
	if DeriveSeed(1, "x") != DeriveSeed(1, "x") {
		t.Fatal("DeriveSeed not stable")
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") || DeriveSeed(1, "x") == DeriveSeed(1, "y") {
		t.Fatal("DeriveSeed collisions across base/salt")
	}
}

// TestBindGenPrivateTraceCopy pins the Variant.Mutate aliasing
// contract: a mutating variant always operates on a private per-job
// trace copy, even when a misbehaving TraceSource.Gen returns a shared
// instance. The shared base must stay untouched and repeated
// generations must not compound the mutation.
func TestBindGenPrivateTraceCopy(t *testing.T) {
	shared := tinySource("shared").Gen(1)
	wantArrivals := make([]coflow.Time, len(shared.Specs))
	for i, s := range shared.Specs {
		wantArrivals[i] = s.Arrival
	}
	badSource := TraceSource{Name: "shared", Gen: func(int64) *trace.Trace { return shared }}

	scale := Variant{Name: "A=2", Mutate: func(tr *trace.Trace) { tr.ScaleArrivals(0.5) }}
	reseed := Variant{Name: "regen", MutateSeeded: func(tr *trace.Trace, seed int64) {
		*tr = *tinySource("shared").Gen(seed + 100)
	}}

	genScale := bindGen(badSource, scale, 1)
	genReseed := bindGen(badSource, reseed, 1)

	first := genScale()
	if first == shared {
		t.Fatal("mutating variant returned the shared trace instance")
	}
	second := genScale()
	for i := range shared.Specs {
		if shared.Specs[i].Arrival != wantArrivals[i] {
			t.Fatalf("shared base trace mutated at coflow %d", i)
		}
		if first.Specs[i].Arrival != wantArrivals[i]/2 {
			t.Fatalf("variant mutation missing on job copy at coflow %d", i)
		}
		if second.Specs[i].Arrival != first.Specs[i].Arrival {
			t.Fatalf("repeated generation compounded the mutation at coflow %d", i)
		}
	}

	// MutateSeeded sees the grid seed and its regeneration is likewise
	// private.
	re := genReseed()
	if re == shared {
		t.Fatal("seeded-mutating variant returned the shared trace instance")
	}
	for i := range shared.Specs {
		if shared.Specs[i].Arrival != wantArrivals[i] {
			t.Fatalf("shared base trace mutated by MutateSeeded at coflow %d", i)
		}
	}

	// A variant with no mutation hands the source's trace through
	// unchanged (no gratuitous clone on the common path).
	if got := bindGen(badSource, Variant{Name: "plain"}, 1)(); got != shared {
		t.Fatal("non-mutating variant cloned the source trace")
	}
}

// TestMutatingVariantsNoCrossJobLeak runs mutating variants over one
// shared trace instance at parallelism > 1, twice: results must be
// reproducible (a mutation leaking into a sibling job's trace would
// perturb the rerun) and the two variants must actually diverge.
func TestMutatingVariantsNoCrossJobLeak(t *testing.T) {
	shared := tinySource("shared").Gen(1)
	g := Grid{
		Traces:     []TraceSource{{Name: "shared", Gen: func(int64) *trace.Trace { return shared }}},
		Schedulers: []string{"saath"},
		Seeds:      []int64{1, 2, 3},
		Variants: []Variant{
			{Name: "A=1", Params: sched.DefaultParams()},
			{Name: "A=4", Params: sched.DefaultParams(), Mutate: func(tr *trace.Trace) { tr.ScaleArrivals(0.25) }},
		},
	}
	run1 := Run(context.Background(), g.Jobs(), Options{Parallel: 4})
	run2 := Run(context.Background(), g.Jobs(), Options{Parallel: 4})
	if err := run1.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var makespan [2]coflow.Time
	for i := range run1.Jobs {
		a, b := run1.Jobs[i], run2.Jobs[i]
		if a.Res.AvgCCT() != b.Res.AvgCCT() || a.Res.Makespan != b.Res.Makespan {
			t.Fatalf("job %s not reproducible across runs (cross-job trace mutation?)", a.Job.Key())
		}
		if a.Job.Variant == "A=1" {
			makespan[0] = a.Res.Makespan
		} else {
			makespan[1] = a.Res.Makespan
		}
	}
	if makespan[0] <= makespan[1] {
		t.Fatalf("4x-faster arrivals did not shorten the makespan (%v vs %v): mutation lost?", makespan[0], makespan[1])
	}
}
