package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"saath/internal/obs"
)

// TestObserverCollectsManifest runs the determinism grid with a
// recorder attached and checks the manifest: one record per job in
// grid order, phase spans present, counters filled.
func TestObserverCollectsManifest(t *testing.T) {
	jobs := testGrid().Jobs()
	rec := obs.NewRecorder("test-grid")
	res := Run(context.Background(), jobs, Options{Parallel: 4, Observer: rec})
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	m := rec.Manifest()
	if len(m.Jobs) != len(jobs) {
		t.Fatalf("manifest has %d jobs, want %d", len(m.Jobs), len(jobs))
	}
	for i, jrec := range m.Jobs {
		if jrec.Index != i {
			t.Fatalf("manifest job %d has index %d (not grid order)", i, jrec.Index)
		}
		if jrec.Span == nil || jrec.Span.Find("run") == nil || jrec.Span.Find("trace-synth") == nil {
			t.Fatalf("job %d missing phase spans: %+v", i, jrec.Span)
		}
		if jrec.Span.Duration() <= 0 {
			t.Errorf("job %d span has no duration", i)
		}
		if jrec.Counters == nil || jrec.Counters.Epochs == 0 || jrec.Counters.Retired == 0 {
			t.Errorf("job %d counters empty: %+v", i, jrec.Counters)
		}
	}
	if m.Totals.Jobs != len(jobs) || m.Totals.Failed != 0 {
		t.Errorf("totals = %+v", m.Totals)
	}
	if m.Totals.Counters.Epochs == 0 || m.Totals.JobNs == 0 {
		t.Errorf("aggregate counters empty: %+v", m.Totals)
	}
	if m.Totals.Counters.Mode != "tick" {
		t.Errorf("aggregate mode = %q", m.Totals.Counters.Mode)
	}
}

// TestObserverDoesNotPerturbSummary is the sweep-level out-of-band
// guarantee: summary JSON and tables are byte-identical with and
// without an observer attached, at any parallelism.
func TestObserverDoesNotPerturbSummary(t *testing.T) {
	jobs := testGrid().Jobs()
	bareJS, bareTB := runSummary(t, jobs, 1)

	sum := NewSummary()
	rec := obs.NewRecorder("test-grid")
	meter := NewProgressMeter(&bytes.Buffer{}, 0)
	meter.SetJobs(jobs)
	res := Run(context.Background(), jobs, Options{
		Parallel:   8,
		Collectors: []Collector{sum},
		Observer:   rec,
		Progress:   meter.Progress,
	})
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := sum.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var tables strings.Builder
	if err := sum.CCTTable("cct").Render(&tables); err != nil {
		t.Fatal(err)
	}
	if err := sum.SpeedupTable("speedup", "aalo").Render(&tables); err != nil {
		t.Fatal(err)
	}
	if js.String() != bareJS {
		t.Errorf("summary JSON differs with observer attached:\n--- bare ---\n%s\n--- observed ---\n%s", bareJS, js.String())
	}
	if tables.String() != bareTB {
		t.Errorf("tables differ with observer attached:\n--- bare ---\n%s\n--- observed ---\n%s", bareTB, tables.String())
	}
}

// TestCapacityCells checks the pooled capacity export against the
// grid: one cell per (trace, variant, scheduler), throughput positive,
// ports carried through from the simulation.
func TestCapacityCells(t *testing.T) {
	jobs := testGrid().Jobs()
	sum := NewSummary()
	res := Run(context.Background(), jobs, Options{Parallel: 4, Collectors: []Collector{sum}})
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	cells := sum.CapacityCells()
	if len(cells) != 8 { // 2 traces × 2 variants × 2 schedulers
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	for _, c := range cells {
		if c.Runs != 3 { // seeds pooled
			t.Errorf("%s %s: runs = %d, want 3", c.Workload(), c.Scheduler, c.Runs)
		}
		if c.Ports != 10 {
			t.Errorf("%s: ports = %d, want 10", c.Workload(), c.Ports)
		}
		if c.Throughput <= 0 || c.P99CCT <= 0 {
			t.Errorf("%s %s: throughput %v p99 %v", c.Workload(), c.Scheduler, c.Throughput, c.P99CCT)
		}
		if c.P50CCT > c.P99CCT {
			t.Errorf("%s %s: p50 %v > p99 %v", c.Workload(), c.Scheduler, c.P50CCT, c.P99CCT)
		}
	}
}
