package runtime

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"saath/internal/coflow"
)

// Client retry policy. A coordinator restart, a dropped connection or
// a transient 503 must not fail a framework's Register outright — the
// client retries with bounded exponential backoff before giving up
// with a descriptive terminal error. Jitter is deterministic (derived
// from the request identity and attempt number, never from wall clock
// or a global RNG) so client behavior is reproducible in tests and
// simulations.
const (
	defaultMaxAttempts = 4
	defaultRetryBase   = 50 * time.Millisecond
	maxRetryDelay      = 2 * time.Second
)

// Client is the framework-facing REST client for CoFlow operations
// (register / deregister / update, §5). Compute frameworks like the
// examples' MapReduce driver use it to bracket their shuffles.
type Client struct {
	base string
	http *http.Client

	// maxAttempts bounds tries per request (including the first);
	// retryBase is the first backoff step, doubling per attempt up to
	// maxRetryDelay; sleep is injectable for tests.
	maxAttempts int
	retryBase   time.Duration
	sleep       func(time.Duration)
}

// NewClient targets a coordinator's HTTP address ("host:port").
func NewClient(httpAddr string) *Client {
	return &Client{
		base:        "http://" + httpAddr,
		http:        &http.Client{Timeout: 10 * time.Second},
		maxAttempts: defaultMaxAttempts,
		retryBase:   defaultRetryBase,
		sleep:       time.Sleep,
	}
}

func specToJSON(spec *coflow.Spec) SpecJSON {
	sj := SpecJSON{ID: int64(spec.ID)}
	for _, f := range spec.Flows {
		sj.Flows = append(sj.Flows, struct {
			Src  int   `json:"src"`
			Dst  int   `json:"dst"`
			Size int64 `json:"size"`
		}{Src: int(f.Src), Dst: int(f.Dst), Size: int64(f.Size)})
	}
	return sj
}

// retryableStatus reports whether an HTTP status is worth retrying:
// overload and gateway failures, not client errors (a 400 will be a
// 400 on every attempt).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryDelay computes the bounded exponential backoff before retry
// number `retry` (1-based), plus a deterministic jitter in [0, d/2]
// derived from the request identity — so a burst of clients hammering
// a restarting coordinator de-synchronizes without any global RNG.
func retryDelay(base time.Duration, retry int, salt string) time.Duration {
	d := base << uint(retry-1)
	if d > maxRetryDelay {
		d = maxRetryDelay
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", salt, retry)
	return d + time.Duration(h.Sum64()%uint64(d/2+1))
}

// roundTrip issues one request per attempt (fresh body reader each
// time) until wantStatus arrives, a non-retryable failure occurs, or
// attempts run out. On success the caller receives the response with
// an open body and must close it.
func (c *Client) roundTrip(method, path string, payload []byte, wantStatus int) (*http.Response, error) {
	var lastErr error
	for attempt := 1; attempt <= c.maxAttempts; attempt++ {
		if attempt > 1 {
			c.sleep(retryDelay(c.retryBase, attempt-1, method+" "+path))
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return nil, err // malformed request: no retry will fix it
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err // transport failure: connection refused, reset, timeout
			continue
		}
		if resp.StatusCode == wantStatus {
			return resp, nil
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		statusErr := fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
		if !retryableStatus(resp.StatusCode) {
			return nil, fmt.Errorf("runtime: %s %s: %w", method, path, statusErr)
		}
		lastErr = statusErr
	}
	return nil, fmt.Errorf("runtime: %s %s: giving up after %d attempts (transient failures persisted): %w",
		method, path, c.maxAttempts, lastErr)
}

func (c *Client) do(method, path string, body any, wantStatus int) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	resp, err := c.roundTrip(method, path, payload, wantStatus)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// getJSON fetches path and decodes the 200 response into out, with the
// same retry policy as mutations.
func (c *Client) getJSON(path string, out any) error {
	resp, err := c.roundTrip(http.MethodGet, path, nil, http.StatusOK)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Register announces a new CoFlow.
func (c *Client) Register(spec *coflow.Spec) error {
	return c.do(http.MethodPost, "/coflows", specToJSON(spec), http.StatusCreated)
}

// Deregister removes a CoFlow.
func (c *Client) Deregister(id coflow.CoFlowID) error {
	return c.do(http.MethodDelete, fmt.Sprintf("/coflows/%d", id), nil, http.StatusNoContent)
}

// Update replaces a CoFlow's structure (task migration, restarts).
func (c *Client) Update(spec *coflow.Spec) error {
	return c.do(http.MethodPut, fmt.Sprintf("/coflows/%d", spec.ID), specToJSON(spec), http.StatusOK)
}

// Results fetches completed CoFlows.
func (c *Client) Results() ([]CoFlowResult, error) {
	var out []CoFlowResult
	if err := c.getJSON("/results", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Status fetches the coordinator's status summary.
func (c *Client) Status() (map[string]any, error) {
	var out map[string]any
	if err := c.getJSON("/status", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitForResults polls until n CoFlows have completed or the timeout
// elapses, returning whatever results exist.
func (c *Client) WaitForResults(n int, timeout time.Duration) ([]CoFlowResult, error) {
	deadline := time.Now().Add(timeout)
	for {
		res, err := c.Results()
		if err != nil {
			return nil, err
		}
		if len(res) >= n {
			return res, nil
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("runtime: timeout: %d of %d coflows completed", len(res), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
