package runtime

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"saath/internal/coflow"
)

// Client is the framework-facing REST client for CoFlow operations
// (register / deregister / update, §5). Compute frameworks like the
// examples' MapReduce driver use it to bracket their shuffles.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a coordinator's HTTP address ("host:port").
func NewClient(httpAddr string) *Client {
	return &Client{
		base: "http://" + httpAddr,
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

func specToJSON(spec *coflow.Spec) SpecJSON {
	sj := SpecJSON{ID: int64(spec.ID)}
	for _, f := range spec.Flows {
		sj.Flows = append(sj.Flows, struct {
			Src  int   `json:"src"`
			Dst  int   `json:"dst"`
			Size int64 `json:"size"`
		}{Src: int(f.Src), Dst: int(f.Dst), Size: int64(f.Size)})
	}
	return sj
}

func (c *Client) do(method, path string, body any, wantStatus int) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("runtime: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// Register announces a new CoFlow.
func (c *Client) Register(spec *coflow.Spec) error {
	return c.do(http.MethodPost, "/coflows", specToJSON(spec), http.StatusCreated)
}

// Deregister removes a CoFlow.
func (c *Client) Deregister(id coflow.CoFlowID) error {
	return c.do(http.MethodDelete, fmt.Sprintf("/coflows/%d", id), nil, http.StatusNoContent)
}

// Update replaces a CoFlow's structure (task migration, restarts).
func (c *Client) Update(spec *coflow.Spec) error {
	return c.do(http.MethodPut, fmt.Sprintf("/coflows/%d", spec.ID), specToJSON(spec), http.StatusOK)
}

// Results fetches completed CoFlows.
func (c *Client) Results() ([]CoFlowResult, error) {
	resp, err := c.http.Get(c.base + "/results")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("runtime: results: %s", resp.Status)
	}
	var out []CoFlowResult
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Status fetches the coordinator's status summary.
func (c *Client) Status() (map[string]any, error) {
	resp, err := c.http.Get(c.base + "/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// WaitForResults polls until n CoFlows have completed or the timeout
// elapses, returning whatever results exist.
func (c *Client) WaitForResults(n int, timeout time.Duration) ([]CoFlowResult, error) {
	deadline := time.Now().Add(timeout)
	for {
		res, err := c.Results()
		if err != nil {
			return nil, err
		}
		if len(res) >= n {
			return res, nil
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("runtime: timeout: %d of %d coflows completed", len(res), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
