package runtime

import (
	"sync"
	"time"
)

// Clock abstracts the coordinator's time source. The real coordinator
// runs on the wall clock; the testbed injects a VirtualClock so study
// outputs are a pure function of the workload — byte-identical at any
// parallelism or sharding — while wall-clock scheduling-latency
// measurements stay out-of-band (see ScheduleLatency).
type Clock interface {
	Now() time.Time
}

// wallClock is the default Clock: time.Now.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually driven Clock. The zero value starts at the
// Unix epoch; Set and Advance move it. Safe for concurrent use, though
// testbed drivers are single-threaded per coordinator.
type VirtualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewVirtualClock returns a clock frozen at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{t: start}
}

// Now returns the current virtual time.
func (v *VirtualClock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

// Set jumps the clock to t. Moving backwards is allowed (the token
// bucket and coordinator only ever take non-negative deltas).
func (v *VirtualClock) Set(t time.Time) {
	v.mu.Lock()
	v.t = t
	v.mu.Unlock()
}

// Advance moves the clock forward by d.
func (v *VirtualClock) Advance(d time.Duration) {
	v.mu.Lock()
	v.t = v.t.Add(d)
	v.mu.Unlock()
}
