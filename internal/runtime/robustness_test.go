package runtime

import (
	"net"
	"testing"
	"time"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// TestCoordinatorSchedulesWithNoAgents: registering CoFlows before any
// agent connects must not crash or wedge the scheduling loop; once
// agents appear the CoFlow completes.
func TestCoordinatorSchedulesWithNoAgents(t *testing.T) {
	s, _ := sched.New("saath", sched.DefaultParams())
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s, NumPorts: 2, PortRate: coflow.Rate(20e6), Delta: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve()
	t.Cleanup(func() { coord.Close() })
	client := NewClient(coord.HTTPAddr())
	spec := &coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 200 * coflow.KB}}}
	if err := client.Register(spec); err != nil {
		t.Fatal(err)
	}
	// Scheduling ticks happen with zero agents; nothing should complete.
	time.Sleep(50 * time.Millisecond)
	if res, _ := client.Results(); len(res) != 0 {
		t.Fatalf("completed without agents: %v", res)
	}
	// Bring the agents up late; the flow must now drain.
	for i := 0; i < 2; i++ {
		a, err := NewAgent(AgentConfig{Port: i, CoordinatorAddr: coord.ControlAddr(), StatsInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
	}
	if _, err := client.WaitForResults(1, 15*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorSurvivesAgentCrash: an agent dropping mid-transfer
// must not wedge the coordinator; its replacement finishes the flow
// (the sender restarts from its own progress tracking — here the new
// agent resends from zero, which the byte-counting receiver tolerates).
func TestCoordinatorSurvivesAgentCrash(t *testing.T) {
	s, _ := sched.New("saath", sched.DefaultParams())
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s, NumPorts: 2, PortRate: coflow.Rate(5e6), Delta: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve()
	t.Cleanup(func() { coord.Close() })

	recv, err := NewAgent(AgentConfig{Port: 1, CoordinatorAddr: coord.ControlAddr(), StatsInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })

	victim, err := NewAgent(AgentConfig{Port: 0, CoordinatorAddr: coord.ControlAddr(), StatsInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(coord.HTTPAddr())
	spec := &coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 2 * coflow.MB}}}
	if err := client.Register(spec); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let some bytes move
	victim.Close()                     // crash the sender

	// The coordinator sheds the dead connection and keeps scheduling.
	deadline := time.Now().Add(5 * time.Second)
	for coord.AgentCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if coord.AgentCount() != 1 {
		t.Fatalf("dead agent still counted: %d", coord.AgentCount())
	}

	// A replacement agent for port 0 picks the flow back up.
	replacement, err := NewAgent(AgentConfig{Port: 0, CoordinatorAddr: coord.ControlAddr(), StatsInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replacement.Close() })
	if _, err := client.WaitForResults(1, 30*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestGarbageOnControlPort: random bytes on the control listener must
// not take the coordinator down.
func TestGarbageOnControlPort(t *testing.T) {
	s, _ := sched.New("saath", sched.DefaultParams())
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s, NumPorts: 2, PortRate: coflow.Rate(20e6), Delta: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve()
	t.Cleanup(func() { coord.Close() })
	conn, err := net.Dial("tcp", coord.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("\x00\x00\x00\x05hello garbage that is not a frame"))
	conn.Close()
	time.Sleep(50 * time.Millisecond)
	// Coordinator still serves HTTP.
	if _, err := NewClient(coord.HTTPAddr()).Status(); err != nil {
		t.Fatalf("coordinator down after garbage: %v", err)
	}
}
