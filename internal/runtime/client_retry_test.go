package runtime

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"saath/internal/coflow"
)

// flakyClient wires a Client to srv with instant, recorded sleeps so
// retry tests run in microseconds and can assert the backoff schedule.
func flakyClient(srv *httptest.Server, slept *[]time.Duration) *Client {
	c := NewClient(strings.TrimPrefix(srv.URL, "http://"))
	c.retryBase = time.Millisecond
	c.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	return c
}

// TestClientRetriesTransient503: a Register hitting a coordinator that
// answers 503 twice (restart in progress) and then accepts must
// succeed — today's single-shot behavior would fail on the first blip.
func TestClientRetriesTransient503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusCreated)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := flakyClient(srv, &slept)
	if err := c.Register(&coflow.Spec{ID: 1}); err != nil {
		t.Fatalf("Register through flaky server: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if len(slept) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2", slept)
	}
	if slept[1] <= slept[0] {
		t.Errorf("backoff not growing: %v", slept)
	}
}

// TestClientTerminalErrorAfterMaxAttempts: persistent failure ends in
// a descriptive error naming the request, the attempt budget and the
// last cause.
func TestClientTerminalErrorAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "still down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := flakyClient(srv, &slept)
	err := c.Register(&coflow.Spec{ID: 1})
	if err == nil {
		t.Fatal("Register against a dead coordinator succeeded")
	}
	for _, want := range []string{"POST /coflows", "giving up after 4 attempts", "503", "still down"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("terminal error %q missing %q", err, want)
		}
	}
	if got := calls.Load(); got != defaultMaxAttempts {
		t.Errorf("attempts = %d, want %d", got, defaultMaxAttempts)
	}
}

// TestClientNoRetryOnClientError: a 4xx is the caller's bug; it must
// fail on the first attempt, not burn the retry budget.
func TestClientNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad spec", http.StatusBadRequest)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := flakyClient(srv, &slept)
	err := c.Register(&coflow.Spec{ID: 1})
	if err == nil || !strings.Contains(err.Error(), "bad spec") {
		t.Fatalf("err = %v, want immediate 400 failure", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on 4xx)", got)
	}
	if len(slept) != 0 {
		t.Errorf("slept %v before a non-retryable failure", slept)
	}
}

// TestClientRetriesTransportError: connection-level failures (refused,
// reset) retry like 5xx — here the server is closed outright, so every
// attempt fails at the dial and the terminal error reports it.
func TestClientRetriesTransportError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listens anymore

	var slept []time.Duration
	c := flakyClient(srv, &slept)
	_, err := c.Results()
	if err == nil {
		t.Fatal("Results against a closed server succeeded")
	}
	if !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Errorf("terminal error %q missing attempt budget", err)
	}
	if len(slept) != defaultMaxAttempts-1 {
		t.Errorf("backoff sleeps = %d, want %d", len(slept), defaultMaxAttempts-1)
	}
}

// TestClientResultsRetries: the GET helpers share the retry policy.
func TestClientResultsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "warming up", http.StatusBadGateway)
			return
		}
		w.Write([]byte(`[{"id": 7}]`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := flakyClient(srv, &slept)
	res, err := c.Results()
	if err != nil {
		t.Fatalf("Results through flaky server: %v", err)
	}
	if len(res) != 1 || res[0].ID != 7 {
		t.Errorf("results = %+v", res)
	}
}

// TestRetryDelayDeterministicAndBounded pins the backoff contract:
// same request identity and attempt → same delay, delays grow
// geometrically, and the cap holds.
func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	base := 50 * time.Millisecond
	for retry := 1; retry <= 10; retry++ {
		a := retryDelay(base, retry, "POST /coflows")
		b := retryDelay(base, retry, "POST /coflows")
		if a != b {
			t.Errorf("retry %d: non-deterministic delay %v vs %v", retry, a, b)
		}
		if a > maxRetryDelay+maxRetryDelay/2 {
			t.Errorf("retry %d: delay %v above cap", retry, a)
		}
		if a <= 0 {
			t.Errorf("retry %d: non-positive delay %v", retry, a)
		}
	}
	if retryDelay(base, 1, "GET /results") == retryDelay(base, 1, "POST /coflows") {
		t.Log("jitter collision across endpoints (allowed, just unlikely)")
	}
}
