package runtime

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"saath/internal/coflow"
	"saath/internal/sched"

	_ "saath/internal/core" // register saath
)

// cluster spins up a coordinator plus n in-process agents and tears
// everything down with the test.
func cluster(t *testing.T, n int, schedName string, rate coflow.Rate) (*Coordinator, []*Agent, *Client) {
	t.Helper()
	s, err := sched.New(schedName, sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s,
		NumPorts:  n,
		PortRate:  rate,
		Delta:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve()
	t.Cleanup(func() { coord.Close() })

	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		a, err := NewAgent(AgentConfig{
			Port:            i,
			CoordinatorAddr: coord.ControlAddr(),
			StatsInterval:   10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		t.Cleanup(func() { a.Close() })
	}
	waitFor(t, 2*time.Second, func() bool { return coord.AgentCount() == n })
	return coord, agents, NewClient(coord.HTTPAddr())
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &envelope{Kind: kindStats, Stats: &statsMsg{Port: 3, Flows: []FlowStat{
		{CoFlow: 7, Index: 1, Sent: 1234, Done: true, Available: true},
	}}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != kindStats || out.Stats.Port != 3 || out.Stats.Flows[0].Sent != 1234 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestDataHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeDataHeader(&buf, dataHeader{CoFlow: 9, Index: 2, Size: 555}); err != nil {
		t.Fatal(err)
	}
	h, err := readDataHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.CoFlow != 9 || h.Index != 2 || h.Size != 555 {
		t.Fatalf("header = %+v", h)
	}
}

func TestTokenBucketPacing(t *testing.T) {
	b := newTokenBucket(64 << 10)
	b.SetRate(1e6) // 1 MB/s
	start := time.Now()
	total := 0
	for total < 100_000 {
		if !b.Take(10_000) {
			t.Fatal("bucket closed unexpectedly")
		}
		total += 10_000
	}
	elapsed := time.Since(start).Seconds()
	// 100 KB at 1 MB/s ≈ 0.1 s minus the initial burst allowance.
	if elapsed < 0.02 || elapsed > 0.6 {
		t.Fatalf("pacing off: %d bytes in %.3fs", total, elapsed)
	}
}

func TestTokenBucketPauseAndClose(t *testing.T) {
	b := newTokenBucket(1024)
	done := make(chan bool, 1)
	go func() { done <- b.Take(512) }()
	select {
	case <-done:
		t.Fatal("Take returned while paused")
	case <-time.After(30 * time.Millisecond):
	}
	b.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Take returned true after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("Take did not unblock on Close")
	}
}

func TestTokenBucketRateChangeUnblocks(t *testing.T) {
	b := newTokenBucket(1 << 20)
	got := make(chan bool, 1)
	go func() { got <- b.Take(1000) }()
	time.Sleep(20 * time.Millisecond)
	b.SetRate(10e6)
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("Take failed")
		}
	case <-time.After(time.Second):
		t.Fatal("Take did not resume after SetRate")
	}
}

func TestCoordinatorRejectsBadConfig(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	s, _ := sched.New("saath", sched.DefaultParams())
	if _, err := NewCoordinator(CoordinatorConfig{Scheduler: s}); err == nil {
		t.Fatal("zero ports accepted")
	}
}

func TestAgentRejectsBadConfig(t *testing.T) {
	if _, err := NewAgent(AgentConfig{}); err == nil {
		t.Fatal("missing coordinator addr accepted")
	}
	if _, err := NewAgent(AgentConfig{CoordinatorAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable coordinator accepted")
	}
}

func TestEndToEndSingleCoFlow(t *testing.T) {
	coord, agents, client := cluster(t, 2, "saath", coflow.Rate(20e6))
	spec := &coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 1, Size: 400 * coflow.KB},
	}}
	if err := client.Register(spec); err != nil {
		t.Fatal(err)
	}
	res, err := client.WaitForResults(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 1 || res[0].Bytes != 400*coflow.KB || res[0].Width != 1 {
		t.Fatalf("result = %+v", res[0])
	}
	// 400 KiB at 20 MB/s ≈ 20 ms; allow generous slack for localhost
	// scheduling jitter but catch run-away CCTs.
	if res[0].CCT < 10*time.Millisecond || res[0].CCT > 5*time.Second {
		t.Fatalf("CCT = %v", res[0].CCT)
	}
	// Bytes actually crossed the data plane.
	if got := agents[1].Received(1, 0); got != int64(400*coflow.KB) {
		t.Fatalf("received %d bytes", got)
	}
	calls, mean, max := coord.SchedOverhead()
	if calls == 0 || mean <= 0 || max < mean {
		t.Fatalf("overhead stats: calls=%d mean=%v max=%v", calls, mean, max)
	}
}

func TestEndToEndMultipleCoFlows(t *testing.T) {
	_, _, client := cluster(t, 4, "saath", coflow.Rate(20e6))
	specs := []*coflow.Spec{
		{ID: 1, Flows: []coflow.FlowSpec{
			{Src: 0, Dst: 2, Size: 200 * coflow.KB},
			{Src: 1, Dst: 3, Size: 200 * coflow.KB},
		}},
		{ID: 2, Flows: []coflow.FlowSpec{
			{Src: 0, Dst: 3, Size: 100 * coflow.KB},
		}},
		{ID: 3, Flows: []coflow.FlowSpec{
			{Src: 1, Dst: 2, Size: 100 * coflow.KB},
		}},
	}
	for _, s := range specs {
		if err := client.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := client.WaitForResults(len(specs), 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[coflow.CoFlowID]bool{}
	for _, r := range res {
		seen[r.ID] = true
		if r.CCT <= 0 {
			t.Errorf("coflow %d CCT %v", r.ID, r.CCT)
		}
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("missing completions: %+v", res)
	}
}

func TestRESTValidation(t *testing.T) {
	_, _, client := cluster(t, 2, "saath", coflow.Rate(20e6))
	// Port out of range.
	bad := &coflow.Spec{ID: 9, Flows: []coflow.FlowSpec{{Src: 0, Dst: 99, Size: 1}}}
	if err := client.Register(bad); err == nil {
		t.Fatal("out-of-range port accepted")
	}
	// Duplicate registration.
	ok := &coflow.Spec{ID: 10, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 100 * coflow.MB}}}
	if err := client.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := client.Register(ok); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate accepted: %v", err)
	}
	// Deregister works, second time 404s.
	if err := client.Deregister(10); err != nil {
		t.Fatal(err)
	}
	if err := client.Deregister(10); err == nil {
		t.Fatal("double deregister accepted")
	}
	if err := client.Deregister(12345); err == nil {
		t.Fatal("unknown deregister accepted")
	}
}

func TestUpdatePreservesProgress(t *testing.T) {
	_, _, client := cluster(t, 3, "saath", coflow.Rate(5e6))
	spec := &coflow.Spec{ID: 20, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 1, Size: 2 * coflow.MB},
	}}
	if err := client.Register(spec); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let some bytes move
	// Task migration: add a second flow, keep the first.
	upd := &coflow.Spec{ID: 20, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 1, Size: 2 * coflow.MB},
		{Src: 2, Dst: 1, Size: 100 * coflow.KB},
	}}
	if err := client.Update(upd); err != nil {
		t.Fatal(err)
	}
	res, err := client.WaitForResults(1, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Width != 2 {
		t.Fatalf("updated width = %d", res[0].Width)
	}
	if err := client.Update(&coflow.Spec{ID: 999, Flows: upd.Flows}); err == nil {
		t.Fatal("update of unknown coflow accepted")
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, _, client := cluster(t, 2, "saath", coflow.Rate(20e6))
	st, err := client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st["scheduler"] != "saath" {
		t.Fatalf("status = %v", st)
	}
	if int(st["agents"].(float64)) != 2 {
		t.Fatalf("agents = %v", st["agents"])
	}
}

func TestCoordinatorIgnoresRogueAgent(t *testing.T) {
	coord, _, _ := cluster(t, 2, "saath", coflow.Rate(20e6))
	// Out-of-range port in hello: connection is dropped, agent count
	// stays at 2.
	conn, err := net.Dial("tcp", coord.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeFrame(conn, &envelope{Kind: kindHello, Hello: &helloMsg{Port: 99, DataAddr: "x"}})
	time.Sleep(50 * time.Millisecond)
	if coord.AgentCount() != 2 {
		t.Fatalf("agent count = %d", coord.AgentCount())
	}
}

func TestRateEnforcementShapesThroughput(t *testing.T) {
	// With the port rate capped low, a 1 MB flow must take at least
	// size/rate seconds; verifies the token bucket honours schedules.
	_, _, client := cluster(t, 2, "saath", coflow.Rate(2e6)) // 2 MB/s
	spec := &coflow.Spec{ID: 30, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 1, Size: coflow.MB},
	}}
	start := time.Now()
	if err := client.Register(spec); err != nil {
		t.Fatal(err)
	}
	res, err := client.WaitForResults(1, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	minTime := 300 * time.Millisecond // 1 MiB at 2 MB/s ≈ 0.52s; allow burst slack
	if res[0].CCT < minTime || elapsed < minTime {
		t.Fatalf("flow finished too fast for the rate cap: cct=%v", res[0].CCT)
	}
}
