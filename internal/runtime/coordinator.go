package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
	"saath/internal/sim"
)

// AdmissionConfig is the coordinator's admission-control front: a
// token-bucket rate limit applied to coflow registrations at arrival
// time, against live coordinator state. The zero value admits
// everything (the prototype's historical behavior).
//
// Admission is an arrival-time decision by design — the lesson from
// batch-dispatch systems is that load-aware decisions made against a
// snapshot (or not at all) admit work the cluster cannot carry. A
// rejected registration returns ErrAdmission (HTTP 429 on the REST
// path); callers decide whether to drop or retry.
type AdmissionConfig struct {
	// RatePerSec is the sustained admission rate in coflows per second;
	// 0 disables rate-based admission.
	RatePerSec float64
	// Burst is the token-bucket depth in coflows (how large an arrival
	// burst is admitted at once); 0 defaults to max(1, RatePerSec).
	Burst int
	// MaxLive caps concurrently live (admitted, not yet completed)
	// coflows; 0 means unlimited. Checked against live coordinator
	// state at the moment of arrival.
	MaxLive int
}

func (a AdmissionConfig) enabled() bool { return a.RatePerSec > 0 || a.MaxLive > 0 }

// CoordinatorConfig configures the global coordinator.
type CoordinatorConfig struct {
	// Scheduler computes each interval's rates (any registered policy).
	Scheduler sched.Scheduler
	// NumPorts is the cluster size; agents identify as ports 0..N-1.
	NumPorts int
	// PortRate is the per-port rate the scheduler may hand out. On a
	// shared localhost testbed this is scaled down from 1 Gbps.
	PortRate coflow.Rate
	// Delta is the schedule recomputation/sync interval (default 20ms
	// on the prototype; the paper uses 8ms on dedicated VMs).
	Delta time.Duration
	// ControlAddr and HTTPAddr are listen addresses (host:port);
	// ":0" picks free ports. Ignored in Manual mode.
	ControlAddr string
	HTTPAddr    string
	// Clock is the coordinator's time source (nil: the wall clock).
	// The testbed injects a VirtualClock so registration and
	// completion times — and thus every study output — are a pure
	// function of the workload.
	Clock Clock
	// Manual disables the network listeners and the background
	// scheduling ticker: no sockets are bound, Serve must not be
	// called, and the driver advances scheduling explicitly with
	// StepSchedule. This is the testbed mode — in-process agents
	// attach with AttachInproc and 10^5 of them fit in one process.
	Manual bool
	// Admission is the arrival-time admission-control front.
	Admission AdmissionConfig
}

func (c CoordinatorConfig) withDefaults() (CoordinatorConfig, error) {
	if c.Scheduler == nil {
		return c, errors.New("runtime: coordinator needs a scheduler")
	}
	if c.NumPorts <= 0 {
		return c, errors.New("runtime: coordinator needs NumPorts > 0")
	}
	if c.PortRate <= 0 {
		c.PortRate = coflow.Rate(12.5e6) // 100 Mbps-equivalent localhost default
	}
	if c.Delta <= 0 {
		c.Delta = 20 * time.Millisecond
	}
	if c.ControlAddr == "" {
		c.ControlAddr = "127.0.0.1:0"
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.Clock == nil {
		c.Clock = wallClock{}
	}
	if c.Admission.RatePerSec > 0 && c.Admission.Burst <= 0 {
		c.Admission.Burst = int(c.Admission.RatePerSec)
		if c.Admission.Burst < 1 {
			c.Admission.Burst = 1
		}
	}
	return c, nil
}

// ErrAdmission is returned by Register when the admission-control
// front rejects a coflow (rate limit exceeded or live cap reached).
var ErrAdmission = errors.New("runtime: admission rejected")

// ErrDuplicate is returned by Register for an already-registered ID.
var ErrDuplicate = errors.New("runtime: coflow already registered")

// CoFlowResult is a completed CoFlow as measured by the coordinator.
type CoFlowResult struct {
	ID           coflow.CoFlowID `json:"id"`
	RegisteredAt time.Time       `json:"registeredAt"`
	CompletedAt  time.Time       `json:"completedAt"`
	CCT          time.Duration   `json:"cct"`
	Width        int             `json:"width"`
	Bytes        coflow.Bytes    `json:"bytes"`
}

// liveCoFlow is the coordinator's state for one registered CoFlow.
type liveCoFlow struct {
	spec       *coflow.Spec
	rt         *coflow.CoFlow
	registered time.Time
}

// agentLink is the transport seam between the coordinator and one
// agent: the TCP prototype (agentConn) and the in-process testbed
// agent (InprocAgent) both implement it, so the scheduling core never
// knows which transport it is pushing schedules into.
type agentLink interface {
	// DataAddr is where peers dial to deliver this agent's flow bytes
	// ("" for in-process agents — no data plane exists).
	DataAddr() string
	// Deliver pushes one schedule to the agent. It must not call back
	// into the coordinator and must not retain msg or its orders past
	// the call (the TCP link serializes, the inproc link copies).
	Deliver(msg *scheduleMsg) error
	// Shut tears the link down after a delivery failure.
	Shut()
}

// agentConn is one connected TCP agent.
type agentConn struct {
	port     int
	dataAddr string
	conn     net.Conn
	writeMu  sync.Mutex
	// timeout bounds one schedule write; a stalled agent must not
	// wedge the scheduling loop (tests shrink it).
	timeout time.Duration
}

func (a *agentConn) DataAddr() string { return a.dataAddr }

func (a *agentConn) Shut() { a.conn.Close() }

func (a *agentConn) Deliver(msg *scheduleMsg) error {
	a.writeMu.Lock()
	defer a.writeMu.Unlock()
	a.conn.SetWriteDeadline(time.Now().Add(a.timeout))
	defer a.conn.SetWriteDeadline(time.Time{})
	return writeFrame(a.conn, &envelope{Kind: kindSchedule, Schedule: msg})
}

// Coordinator is the global Saath coordinator daemon.
type Coordinator struct {
	cfg      CoordinatorConfig
	ctl      net.Listener
	httpSrv  *http.Server
	httpLn   net.Listener
	stopped  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu      sync.Mutex
	agents  map[int]agentLink
	live    map[coflow.CoFlowID]*liveCoFlow
	results []CoFlowResult
	epoch   int64

	// space assigns the dense flow/coflow indices the scheduler's
	// allocation vector is keyed by; guarded by polMu (every caller
	// that touches it already holds polMu for the Arrive/Depart call).
	space *coflow.IndexSpace

	// fab is the scheduling fabric, reset each round; guarded by polMu.
	fab *fabric.Fabric

	// polMu serializes every call into the scheduling policy: Arrive
	// (registration), Depart (completion, deregister) and Schedule
	// (ticker or StepSchedule) run on different goroutines, and
	// Scheduler implementations keep unsynchronized per-CoFlow state.
	polMu sync.Mutex

	// adm is the admission token bucket (nil: no rate admission).
	adm       *tokenBucket
	admMu     sync.Mutex
	nAdmitted int64
	nRejected int64

	// schedStats mirrors Table 2: wall-clock cost of Schedule calls,
	// with the same bounded P90 reservoir the simulator uses. This is
	// measurement, not simulation state — it never feeds back into
	// scheduling decisions or results.
	schedMu    sync.Mutex
	schedStats sim.ScheduleStats
}

// NewCoordinator validates the config and binds the listeners; call
// Serve to start the control, HTTP and scheduling loops. In Manual
// mode no listeners are bound and no loops exist — the caller attaches
// in-process agents and drives scheduling with StepSchedule.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		stopped: make(chan struct{}),
		agents:  make(map[int]agentLink),
		live:    make(map[coflow.CoFlowID]*liveCoFlow),
		space:   coflow.NewIndexSpace(),
		fab:     fabric.New(cfg.NumPorts, cfg.PortRate),
	}
	if cfg.Admission.RatePerSec > 0 {
		c.adm = newAdmissionBucket(cfg.Admission.RatePerSec, float64(cfg.Admission.Burst), cfg.Clock.Now)
	}
	if cfg.Manual {
		return c, nil
	}
	ctl, err := net.Listen("tcp", cfg.ControlAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: control listen: %w", err)
	}
	httpLn, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		ctl.Close()
		return nil, fmt.Errorf("runtime: http listen: %w", err)
	}
	c.ctl, c.httpLn = ctl, httpLn
	mux := http.NewServeMux()
	mux.HandleFunc("/coflows", c.handleCoFlows)
	mux.HandleFunc("/coflows/", c.handleCoFlowByID)
	mux.HandleFunc("/results", c.handleResults)
	mux.HandleFunc("/status", c.handleStatus)
	c.httpSrv = &http.Server{Handler: mux}
	return c, nil
}

// ControlAddr returns the agents' dial address ("" in Manual mode).
func (c *Coordinator) ControlAddr() string {
	if c.ctl == nil {
		return ""
	}
	return c.ctl.Addr().String()
}

// HTTPAddr returns the REST API base address ("" in Manual mode).
func (c *Coordinator) HTTPAddr() string {
	if c.httpLn == nil {
		return ""
	}
	return c.httpLn.Addr().String()
}

// Serve runs the coordinator until Close. It always returns a non-nil
// error (http.ErrServerClosed on clean shutdown).
func (c *Coordinator) Serve() error {
	if c.cfg.Manual {
		return errors.New("runtime: manual coordinator has no serve loops (drive it with StepSchedule)")
	}
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.acceptAgents()
	}()
	go func() {
		defer c.wg.Done()
		c.scheduleLoop()
	}()
	return c.httpSrv.Serve(c.httpLn)
}

// Close stops all loops and closes every connection.
func (c *Coordinator) Close() error {
	c.stopOnce.Do(func() {
		close(c.stopped)
		if c.ctl != nil {
			c.ctl.Close()
		}
		if c.httpSrv != nil {
			c.httpSrv.Close()
		}
		if c.adm != nil {
			c.adm.Close()
		}
		c.mu.Lock()
		for _, a := range c.agents {
			a.Shut()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	return nil
}

func (c *Coordinator) acceptAgents() {
	for {
		conn, err := c.ctl.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serveAgent(conn)
		}()
	}
}

// serveAgent handles one agent's control connection: a hello frame,
// then a stream of stats reports. When the connection drops — agent
// crash, network partition, stalled writes shed by Deliver — the port
// deregisters on the way out, so the next schedule round sees the
// reduced fabric instead of wedging on a dead link.
func (c *Coordinator) serveAgent(conn net.Conn) {
	defer conn.Close()
	env, err := readFrame(conn)
	if err != nil || env.Kind != kindHello || env.Hello == nil {
		return
	}
	h := env.Hello
	if h.Port < 0 || h.Port >= c.cfg.NumPorts {
		return
	}
	a := &agentConn{port: h.Port, dataAddr: h.DataAddr, conn: conn, timeout: 2 * time.Second}
	c.mu.Lock()
	old := c.agents[h.Port]
	c.agents[h.Port] = a
	c.mu.Unlock()
	if old != nil {
		old.Shut()
	}
	for {
		env, err := readFrame(conn)
		if err != nil {
			break
		}
		if env.Kind == kindStats && env.Stats != nil {
			c.applyStats(env.Stats)
		}
	}
	c.mu.Lock()
	if c.agents[h.Port] == a {
		delete(c.agents, h.Port)
	}
	c.mu.Unlock()
}

// applyStats merges one TCP agent report and retires any completed
// CoFlows immediately (the prototype path; the testbed retires once
// per boundary in StepSchedule instead — see mergeStats).
func (c *Coordinator) applyStats(s *statsMsg) {
	now := c.cfg.Clock.Now()
	c.polMu.Lock()
	defer c.polMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mergeStatsLocked(s.Flows, now)
	c.retireLocked(now)
}

// mergeStatsLocked folds per-flow progress into coordinator state.
// Caller holds polMu and mu (it mutates runtime state the scheduler
// reads). Zero-alloc: the testbed's per-boundary agent reports go
// through here for every agent in the cluster.
func (c *Coordinator) mergeStatsLocked(flows []FlowStat, now time.Time) {
	for i := range flows {
		fs := &flows[i]
		lc := c.live[coflow.CoFlowID(fs.CoFlow)]
		if lc == nil || fs.Index < 0 || fs.Index >= len(lc.rt.Flows) {
			continue
		}
		f := lc.rt.Flows[fs.Index]
		if coflow.Bytes(fs.Sent) > f.Sent {
			f.Sent = coflow.Bytes(fs.Sent)
		}
		if f.Available != fs.Available {
			f.Available = fs.Available
			lc.rt.Invalidate()
		}
		if fs.Done && !f.Done {
			f.Done = true
			f.DoneAt = coflow.Time(now.Sub(lc.registered) / time.Microsecond)
			lc.rt.Invalidate()
		}
	}
}

// retireLocked moves completed CoFlows from live to results. Caller
// holds polMu and mu. Completion candidates are processed in ID order:
// the results append order and — critically — the IndexSpace release
// order are both deterministic, so later index assignments (and any
// scheduler tie-break that touches them) cannot drift with map
// iteration order.
func (c *Coordinator) retireLocked(now time.Time) {
	var doneIDs []coflow.CoFlowID
	for id, lc := range c.live {
		if lc.rt.RefreshDone() {
			doneIDs = append(doneIDs, id)
		}
	}
	if len(doneIDs) == 0 {
		return
	}
	sort.Slice(doneIDs, func(i, j int) bool { return doneIDs[i] < doneIDs[j] })
	for _, id := range doneIDs {
		lc := c.live[id]
		c.results = append(c.results, CoFlowResult{
			ID:           id,
			RegisteredAt: lc.registered,
			CompletedAt:  now,
			CCT:          now.Sub(lc.registered),
			Width:        lc.rt.Width(),
			Bytes:        lc.spec.TotalSize(),
		})
		c.cfg.Scheduler.Depart(lc.rt, c.wallTime(now))
		c.space.Release(lc.rt)
		delete(c.live, id)
	}
}

// wallTime maps clock time to the scheduler's Time axis (µs since the
// clock's epoch; only deltas matter to schedulers).
func (c *Coordinator) wallTime(t time.Time) coflow.Time {
	return coflow.Time(t.UnixNano() / 1e3)
}

// scheduleLoop recomputes and pushes the schedule every δ (§5: the
// coordinator and agents work pipelined — agents follow the previous
// schedule until a new one arrives).
func (c *Coordinator) scheduleLoop() {
	ticker := time.NewTicker(c.cfg.Delta)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopped:
			return
		case <-ticker.C:
		}
		c.scheduleOnce()
	}
}

// pendingSend is one computed schedule awaiting delivery; sends happen
// after the policy locks are released so a slow or stalled agent can
// never wedge the schedule round or block registrations.
type pendingSend struct {
	port int
	link agentLink
	msg  scheduleMsg
}

// StepSchedule runs one scheduling round now: retire completed
// CoFlows, compute the schedule, push orders to connected agents. It
// returns the number of still-live CoFlows after retirement. The
// testbed driver calls this at every δ boundary of virtual time; under
// Serve the background ticker calls the same path.
func (c *Coordinator) StepSchedule() (live int) {
	return c.scheduleOnce()
}

func (c *Coordinator) scheduleOnce() (liveN int) {
	now := c.cfg.Clock.Now()
	c.polMu.Lock()
	c.mu.Lock()
	// Boundary retirement: the testbed path reports stats without
	// retiring (mergeStats), so completions are collected here, once
	// per round, in ID order. The TCP path usually retired in
	// applyStats already; this is then a cheap no-op.
	c.retireLocked(now)
	liveN = len(c.live)
	active := make([]*coflow.CoFlow, 0, len(c.live))
	for _, lc := range c.live {
		active = append(active, lc.rt)
	}
	specs := make(map[coflow.CoFlowID]*coflow.Spec, len(c.live))
	for id, lc := range c.live {
		specs[id] = lc.spec
	}
	agents := make(map[int]agentLink, len(c.agents))
	for p, a := range c.agents {
		agents[p] = a
	}
	c.epoch++
	epoch := c.epoch
	c.mu.Unlock()

	sched.ByArrival(active)
	c.fab.Reset()
	snap := &sched.Snapshot{
		Now: c.wallTime(now), Active: active, Fabric: c.fab,
		FlowCap: c.space.FlowCap(), CoFlowCap: c.space.CoFlowCap(),
	}
	start := time.Now()
	alloc := c.cfg.Scheduler.Schedule(snap)
	elapsed := time.Since(start)
	c.schedMu.Lock()
	c.schedStats.Record(elapsed)
	c.schedMu.Unlock()

	// Group orders by sending agent. Every sendable flow gets an
	// order (rate 0 pauses), so agents always track the newest rates.
	orders := make(map[int][]FlowOrder)
	for _, cf := range active {
		spec := specs[cf.ID()]
		for i, f := range cf.Flows {
			if f.Done {
				continue
			}
			dst := agents[int(f.Dst)]
			if dst == nil {
				continue // receiver not connected yet
			}
			orders[int(f.Src)] = append(orders[int(f.Src)], FlowOrder{
				CoFlow:  int64(cf.ID()),
				Index:   i,
				DstPort: int(f.Dst),
				DstAddr: dst.DataAddr(),
				Size:    int64(spec.Flows[i].Size),
				RateBps: float64(alloc.Rate(f.Idx)),
			})
		}
	}
	sends := make([]pendingSend, 0, len(orders))
	for port, os := range orders {
		a := agents[port]
		if a == nil {
			continue
		}
		sends = append(sends, pendingSend{port: port, link: a, msg: scheduleMsg{Epoch: epoch, Orders: os}})
	}
	c.polMu.Unlock()

	// Deliver outside the policy locks: a stalled TCP agent eats its
	// own write deadline without blocking registrations or the next
	// round, and a failed link is detached immediately so the
	// scheduler sees the reduced fabric next round.
	for i := range sends {
		s := &sends[i]
		if err := s.link.Deliver(&s.msg); err != nil {
			s.link.Shut()
			c.mu.Lock()
			if c.agents[s.port] == s.link {
				delete(c.agents, s.port)
			}
			c.mu.Unlock()
		}
	}
	return liveN
}

// ScheduleLatency reports the coordinator's Table-2 cost: wall-clock
// Schedule-call count, mean, max and P90. Out-of-band measurement —
// never part of deterministic study output.
func (c *Coordinator) ScheduleLatency() (calls int, mean, max, p90 time.Duration) {
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	return c.schedStats.Calls, c.schedStats.Mean(), c.schedStats.Max, c.schedStats.P90()
}

// SchedOverhead reports Table-2 style coordinator cost (kept for the
// prototype CLI; ScheduleLatency adds the P90).
func (c *Coordinator) SchedOverhead() (calls int, mean, max time.Duration) {
	calls, mean, max, _ = c.ScheduleLatency()
	return calls, mean, max
}

// AgentCount returns the number of connected agents.
func (c *Coordinator) AgentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents)
}

// LiveCount returns the number of admitted, not-yet-completed CoFlows.
func (c *Coordinator) LiveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.live)
}

// CompletedCount returns the number of completed CoFlows.
func (c *Coordinator) CompletedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}

// AdmissionStats returns the admission-control counters: coflows
// admitted and rejected since startup.
func (c *Coordinator) AdmissionStats() (admitted, rejected int64) {
	c.admMu.Lock()
	defer c.admMu.Unlock()
	return c.nAdmitted, c.nRejected
}

// Results returns a snapshot of completed CoFlows, sorted by coflow ID
// with completion time as the tie-break — a deterministic order, so
// exports built on it are byte-stable regardless of retirement
// interleaving.
func (c *Coordinator) Results() []CoFlowResult {
	c.mu.Lock()
	out := append([]CoFlowResult(nil), c.results...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].CompletedAt.Before(out[j].CompletedAt)
	})
	return out
}

// Register admits and registers one CoFlow at the current clock time.
// This is the arrival-time decision point: the admission bucket and
// the live-coflow cap are consulted against live coordinator state the
// instant the coflow arrives — not batched, not deferred to a schedule
// round. Returns ErrAdmission on rejection, ErrDuplicate for a reused
// ID, or a validation error.
func (c *Coordinator) Register(spec *coflow.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for _, f := range spec.Flows {
		if int(f.Src) >= c.cfg.NumPorts || int(f.Dst) >= c.cfg.NumPorts {
			return fmt.Errorf("runtime: coflow %d: port out of range", spec.ID)
		}
	}
	now := c.cfg.Clock.Now()
	rt := coflow.New(spec)
	rt.Arrived = c.wallTime(now)
	c.polMu.Lock()
	defer c.polMu.Unlock()
	c.mu.Lock()
	if _, dup := c.live[spec.ID]; dup {
		c.mu.Unlock()
		return ErrDuplicate
	}
	if c.cfg.Admission.MaxLive > 0 && len(c.live) >= c.cfg.Admission.MaxLive {
		c.mu.Unlock()
		c.reject()
		return ErrAdmission
	}
	if c.adm != nil && !c.adm.TryTake(1) {
		c.mu.Unlock()
		c.reject()
		return ErrAdmission
	}
	c.live[spec.ID] = &liveCoFlow{spec: spec, rt: rt, registered: now}
	c.mu.Unlock()
	c.space.Assign(rt)
	c.cfg.Scheduler.Arrive(rt, c.wallTime(now))
	c.admMu.Lock()
	c.nAdmitted++
	c.admMu.Unlock()
	return nil
}

func (c *Coordinator) reject() {
	c.admMu.Lock()
	c.nRejected++
	c.admMu.Unlock()
}

// ---- REST API (the CoFlow operations of §5) ----

// SpecJSON is the REST representation of a CoFlow registration.
type SpecJSON struct {
	ID    int64 `json:"id"`
	Flows []struct {
		Src  int   `json:"src"`
		Dst  int   `json:"dst"`
		Size int64 `json:"size"`
	} `json:"flows"`
}

func (s SpecJSON) toSpec() (*coflow.Spec, error) {
	spec := &coflow.Spec{ID: coflow.CoFlowID(s.ID)}
	for _, f := range s.Flows {
		spec.Flows = append(spec.Flows, coflow.FlowSpec{
			Src: coflow.PortID(f.Src), Dst: coflow.PortID(f.Dst), Size: coflow.Bytes(f.Size),
		})
	}
	return spec, spec.Validate()
}

// handleCoFlows implements POST /coflows — register(). Admission
// rejections map to 429 so framework clients can distinguish "the
// cluster is shedding load" from a malformed registration.
func (c *Coordinator) handleCoFlows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var sj SpecJSON
	if err := json.NewDecoder(r.Body).Decode(&sj); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := sj.toSpec()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch err := c.Register(spec); {
	case err == nil:
		w.WriteHeader(http.StatusCreated)
	case errors.Is(err, ErrDuplicate):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrAdmission):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// handleCoFlowByID implements DELETE (deregister) and PUT (update) on
// /coflows/{id}.
func (c *Coordinator) handleCoFlowByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/coflows/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad coflow id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodDelete:
		c.polMu.Lock()
		c.mu.Lock()
		lc, ok := c.live[coflow.CoFlowID(id)]
		if ok {
			delete(c.live, coflow.CoFlowID(id))
		}
		c.mu.Unlock()
		if ok {
			c.cfg.Scheduler.Depart(lc.rt, c.wallTime(c.cfg.Clock.Now()))
			c.space.Release(lc.rt)
		}
		c.polMu.Unlock()
		if !ok {
			http.Error(w, "unknown coflow", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodPut:
		// update(): replace the flow structure (task migration /
		// restart after failure, §5), preserving accumulated progress
		// by flow index where sizes still match.
		var sj SpecJSON
		if err := json.NewDecoder(r.Body).Decode(&sj); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sj.ID = id
		spec, err := sj.toSpec()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.polMu.Lock()
		defer c.polMu.Unlock()
		c.mu.Lock()
		lc, ok := c.live[coflow.CoFlowID(id)]
		if ok {
			old := lc.rt
			c.space.Release(old)
			lc.spec = spec
			lc.rt = coflow.New(spec)
			lc.rt.Arrived = old.Arrived
			for i, f := range lc.rt.Flows {
				if i < len(old.Flows) && old.Flows[i].Size == f.Size {
					f.Sent = old.Flows[i].Sent
					f.Done = old.Flows[i].Done
					f.DoneAt = old.Flows[i].DoneAt
				}
			}
			c.space.Assign(lc.rt)
		}
		c.mu.Unlock()
		if !ok {
			http.Error(w, "unknown coflow", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Results())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	admitted, rejected := c.AdmissionStats()
	c.mu.Lock()
	status := struct {
		Agents    int      `json:"agents"`
		Live      int      `json:"live"`
		Completed int      `json:"completed"`
		Admitted  int64    `json:"admitted"`
		Rejected  int64    `json:"rejected"`
		Scheduler string   `json:"scheduler"`
		Policies  []string `json:"registeredPolicies"`
	}{
		Agents:    len(c.agents),
		Live:      len(c.live),
		Completed: len(c.results),
		Admitted:  admitted,
		Rejected:  rejected,
		Scheduler: c.cfg.Scheduler.Name(),
		Policies:  sched.Names(),
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(status)
}
