package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

// CoordinatorConfig configures the global coordinator.
type CoordinatorConfig struct {
	// Scheduler computes each interval's rates (any registered policy).
	Scheduler sched.Scheduler
	// NumPorts is the cluster size; agents identify as ports 0..N-1.
	NumPorts int
	// PortRate is the per-port rate the scheduler may hand out. On a
	// shared localhost testbed this is scaled down from 1 Gbps.
	PortRate coflow.Rate
	// Delta is the schedule recomputation/sync interval (default 20ms
	// on the prototype; the paper uses 8ms on dedicated VMs).
	Delta time.Duration
	// ControlAddr and HTTPAddr are listen addresses (host:port);
	// ":0" picks free ports.
	ControlAddr string
	HTTPAddr    string
}

func (c CoordinatorConfig) withDefaults() (CoordinatorConfig, error) {
	if c.Scheduler == nil {
		return c, errors.New("runtime: coordinator needs a scheduler")
	}
	if c.NumPorts <= 0 {
		return c, errors.New("runtime: coordinator needs NumPorts > 0")
	}
	if c.PortRate <= 0 {
		c.PortRate = coflow.Rate(12.5e6) // 100 Mbps-equivalent localhost default
	}
	if c.Delta <= 0 {
		c.Delta = 20 * time.Millisecond
	}
	if c.ControlAddr == "" {
		c.ControlAddr = "127.0.0.1:0"
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	return c, nil
}

// CoFlowResult is a completed CoFlow as measured by the coordinator.
type CoFlowResult struct {
	ID           coflow.CoFlowID `json:"id"`
	RegisteredAt time.Time       `json:"registeredAt"`
	CompletedAt  time.Time       `json:"completedAt"`
	CCT          time.Duration   `json:"cct"`
	Width        int             `json:"width"`
	Bytes        coflow.Bytes    `json:"bytes"`
}

// liveCoFlow is the coordinator's state for one registered CoFlow.
type liveCoFlow struct {
	spec       *coflow.Spec
	rt         *coflow.CoFlow
	registered time.Time
}

// agentConn is one connected local agent.
type agentConn struct {
	port     int
	dataAddr string
	conn     net.Conn
	writeMu  sync.Mutex
}

func (a *agentConn) send(env *envelope) error {
	a.writeMu.Lock()
	defer a.writeMu.Unlock()
	// A stalled agent must not wedge the scheduling loop: bound the
	// write and let the error path drop the connection.
	a.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	defer a.conn.SetWriteDeadline(time.Time{})
	return writeFrame(a.conn, env)
}

// Coordinator is the global Saath coordinator daemon.
type Coordinator struct {
	cfg      CoordinatorConfig
	ctl      net.Listener
	httpSrv  *http.Server
	httpLn   net.Listener
	stopped  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu      sync.Mutex
	agents  map[int]*agentConn
	live    map[coflow.CoFlowID]*liveCoFlow
	results []CoFlowResult
	epoch   int64

	// space assigns the dense flow/coflow indices the scheduler's
	// allocation vector is keyed by; guarded by polMu (every caller
	// that touches it already holds polMu for the Arrive/Depart call).
	space *coflow.IndexSpace

	// polMu serializes every call into the scheduling policy: Arrive
	// (REST register), Depart (completion, deregister) and Schedule
	// (ticker) run on different goroutines, and Scheduler
	// implementations keep unsynchronized per-CoFlow state.
	polMu sync.Mutex

	// SchedStats mirrors Table 2: wall-clock cost of Schedule calls.
	schedMu    sync.Mutex
	schedCalls int
	schedTotal time.Duration
	schedMax   time.Duration
}

// NewCoordinator validates the config and binds the listeners; call
// Serve to start the control, HTTP and scheduling loops.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ctl, err := net.Listen("tcp", cfg.ControlAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: control listen: %w", err)
	}
	httpLn, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		ctl.Close()
		return nil, fmt.Errorf("runtime: http listen: %w", err)
	}
	c := &Coordinator{
		cfg:     cfg,
		ctl:     ctl,
		httpLn:  httpLn,
		stopped: make(chan struct{}),
		agents:  make(map[int]*agentConn),
		live:    make(map[coflow.CoFlowID]*liveCoFlow),
		space:   coflow.NewIndexSpace(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/coflows", c.handleCoFlows)
	mux.HandleFunc("/coflows/", c.handleCoFlowByID)
	mux.HandleFunc("/results", c.handleResults)
	mux.HandleFunc("/status", c.handleStatus)
	c.httpSrv = &http.Server{Handler: mux}
	return c, nil
}

// ControlAddr returns the agents' dial address.
func (c *Coordinator) ControlAddr() string { return c.ctl.Addr().String() }

// HTTPAddr returns the REST API base address.
func (c *Coordinator) HTTPAddr() string { return c.httpLn.Addr().String() }

// Serve runs the coordinator until Close. It always returns a non-nil
// error (http.ErrServerClosed on clean shutdown).
func (c *Coordinator) Serve() error {
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.acceptAgents()
	}()
	go func() {
		defer c.wg.Done()
		c.scheduleLoop()
	}()
	return c.httpSrv.Serve(c.httpLn)
}

// Close stops all loops and closes every connection.
func (c *Coordinator) Close() error {
	c.stopOnce.Do(func() {
		close(c.stopped)
		c.ctl.Close()
		c.httpSrv.Close()
		c.mu.Lock()
		for _, a := range c.agents {
			a.conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	return nil
}

func (c *Coordinator) acceptAgents() {
	for {
		conn, err := c.ctl.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serveAgent(conn)
		}()
	}
}

// serveAgent handles one agent's control connection: a hello frame,
// then a stream of stats reports.
func (c *Coordinator) serveAgent(conn net.Conn) {
	defer conn.Close()
	env, err := readFrame(conn)
	if err != nil || env.Kind != kindHello || env.Hello == nil {
		return
	}
	h := env.Hello
	if h.Port < 0 || h.Port >= c.cfg.NumPorts {
		return
	}
	a := &agentConn{port: h.Port, dataAddr: h.DataAddr, conn: conn}
	c.mu.Lock()
	old := c.agents[h.Port]
	c.agents[h.Port] = a
	c.mu.Unlock()
	if old != nil {
		old.conn.Close()
	}
	for {
		env, err := readFrame(conn)
		if err != nil {
			break
		}
		if env.Kind == kindStats && env.Stats != nil {
			c.applyStats(env.Stats)
		}
	}
	c.mu.Lock()
	if c.agents[h.Port] == a {
		delete(c.agents, h.Port)
	}
	c.mu.Unlock()
}

// applyStats merges an agent report into coordinator flow state and
// retires completed CoFlows. It holds polMu because it mutates the
// CoFlow runtime state the scheduler reads and calls Depart.
func (c *Coordinator) applyStats(s *statsMsg) {
	now := time.Now()
	c.polMu.Lock()
	defer c.polMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, fs := range s.Flows {
		lc := c.live[coflow.CoFlowID(fs.CoFlow)]
		if lc == nil || fs.Index < 0 || fs.Index >= len(lc.rt.Flows) {
			continue
		}
		f := lc.rt.Flows[fs.Index]
		if coflow.Bytes(fs.Sent) > f.Sent {
			f.Sent = coflow.Bytes(fs.Sent)
		}
		if f.Available != fs.Available {
			f.Available = fs.Available
			lc.rt.Invalidate()
		}
		if fs.Done && !f.Done {
			f.Done = true
			f.DoneAt = coflow.Time(now.Sub(lc.registered) / time.Microsecond)
			lc.rt.Invalidate()
		}
	}
	for id, lc := range c.live {
		if lc.rt.RefreshDone() {
			c.results = append(c.results, CoFlowResult{
				ID:           id,
				RegisteredAt: lc.registered,
				CompletedAt:  now,
				CCT:          now.Sub(lc.registered),
				Width:        lc.rt.Width(),
				Bytes:        lc.spec.TotalSize(),
			})
			c.cfg.Scheduler.Depart(lc.rt, c.wallTime(now))
			c.space.Release(lc.rt)
			delete(c.live, id)
		}
	}
}

// wallTime maps wall clock to the scheduler's Time axis (µs since the
// coordinator started scheduling; only deltas matter to schedulers).
func (c *Coordinator) wallTime(t time.Time) coflow.Time {
	return coflow.Time(t.UnixNano() / 1e3)
}

// scheduleLoop recomputes and pushes the schedule every δ (§5: the
// coordinator and agents work pipelined — agents follow the previous
// schedule until a new one arrives).
func (c *Coordinator) scheduleLoop() {
	ticker := time.NewTicker(c.cfg.Delta)
	defer ticker.Stop()
	fab := fabric.New(c.cfg.NumPorts, c.cfg.PortRate)
	for {
		select {
		case <-c.stopped:
			return
		case <-ticker.C:
		}
		c.scheduleOnce(fab)
	}
}

func (c *Coordinator) scheduleOnce(fab *fabric.Fabric) {
	now := time.Now()
	c.polMu.Lock()
	defer c.polMu.Unlock()
	c.mu.Lock()
	active := make([]*coflow.CoFlow, 0, len(c.live))
	for _, lc := range c.live {
		active = append(active, lc.rt)
	}
	specs := make(map[coflow.CoFlowID]*coflow.Spec, len(c.live))
	for id, lc := range c.live {
		specs[id] = lc.spec
	}
	agents := make(map[int]*agentConn, len(c.agents))
	for p, a := range c.agents {
		agents[p] = a
	}
	c.epoch++
	epoch := c.epoch
	c.mu.Unlock()

	sched.ByArrival(active)
	fab.Reset()
	snap := &sched.Snapshot{
		Now: c.wallTime(now), Active: active, Fabric: fab,
		FlowCap: c.space.FlowCap(), CoFlowCap: c.space.CoFlowCap(),
	}
	start := time.Now()
	alloc := c.cfg.Scheduler.Schedule(snap)
	elapsed := time.Since(start)
	c.schedMu.Lock()
	c.schedCalls++
	c.schedTotal += elapsed
	if elapsed > c.schedMax {
		c.schedMax = elapsed
	}
	c.schedMu.Unlock()

	// Group orders by sending agent. Every sendable flow gets an
	// order (rate 0 pauses), so agents always track the newest rates.
	orders := make(map[int][]flowOrder)
	for _, cf := range active {
		spec := specs[cf.ID()]
		for i, f := range cf.Flows {
			if f.Done {
				continue
			}
			dst := agents[int(f.Dst)]
			if dst == nil {
				continue // receiver not connected yet
			}
			orders[int(f.Src)] = append(orders[int(f.Src)], flowOrder{
				CoFlow:  int64(cf.ID()),
				Index:   i,
				DstPort: int(f.Dst),
				DstAddr: dst.dataAddr,
				Size:    int64(spec.Flows[i].Size),
				RateBps: float64(alloc.Rate(f.Idx)),
			})
		}
	}
	for port, os := range orders {
		a := agents[port]
		if a == nil {
			continue
		}
		msg := &envelope{Kind: kindSchedule, Schedule: &scheduleMsg{Epoch: epoch, Orders: os}}
		if err := a.send(msg); err != nil {
			a.conn.Close()
		}
	}
}

// SchedOverhead reports Table-2 style coordinator cost.
func (c *Coordinator) SchedOverhead() (calls int, mean, max time.Duration) {
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	if c.schedCalls > 0 {
		mean = c.schedTotal / time.Duration(c.schedCalls)
	}
	return c.schedCalls, mean, c.schedMax
}

// AgentCount returns the number of connected agents.
func (c *Coordinator) AgentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents)
}

// Results returns a snapshot of completed CoFlows.
func (c *Coordinator) Results() []CoFlowResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CoFlowResult(nil), c.results...)
}

// ---- REST API (the CoFlow operations of §5) ----

// SpecJSON is the REST representation of a CoFlow registration.
type SpecJSON struct {
	ID    int64 `json:"id"`
	Flows []struct {
		Src  int   `json:"src"`
		Dst  int   `json:"dst"`
		Size int64 `json:"size"`
	} `json:"flows"`
}

func (s SpecJSON) toSpec() (*coflow.Spec, error) {
	spec := &coflow.Spec{ID: coflow.CoFlowID(s.ID)}
	for _, f := range s.Flows {
		spec.Flows = append(spec.Flows, coflow.FlowSpec{
			Src: coflow.PortID(f.Src), Dst: coflow.PortID(f.Dst), Size: coflow.Bytes(f.Size),
		})
	}
	return spec, spec.Validate()
}

// handleCoFlows implements POST /coflows — register().
func (c *Coordinator) handleCoFlows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var sj SpecJSON
	if err := json.NewDecoder(r.Body).Decode(&sj); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := sj.toSpec()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, f := range spec.Flows {
		if int(f.Src) >= c.cfg.NumPorts || int(f.Dst) >= c.cfg.NumPorts {
			http.Error(w, "port out of range", http.StatusBadRequest)
			return
		}
	}
	now := time.Now()
	rt := coflow.New(spec)
	rt.Arrived = c.wallTime(now)
	c.polMu.Lock()
	c.mu.Lock()
	if _, dup := c.live[spec.ID]; dup {
		c.mu.Unlock()
		c.polMu.Unlock()
		http.Error(w, "coflow already registered", http.StatusConflict)
		return
	}
	c.live[spec.ID] = &liveCoFlow{spec: spec, rt: rt, registered: now}
	c.mu.Unlock()
	c.space.Assign(rt)
	c.cfg.Scheduler.Arrive(rt, c.wallTime(now))
	c.polMu.Unlock()
	w.WriteHeader(http.StatusCreated)
}

// handleCoFlowByID implements DELETE (deregister) and PUT (update) on
// /coflows/{id}.
func (c *Coordinator) handleCoFlowByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/coflows/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad coflow id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodDelete:
		c.polMu.Lock()
		c.mu.Lock()
		lc, ok := c.live[coflow.CoFlowID(id)]
		if ok {
			delete(c.live, coflow.CoFlowID(id))
		}
		c.mu.Unlock()
		if ok {
			c.cfg.Scheduler.Depart(lc.rt, c.wallTime(time.Now()))
			c.space.Release(lc.rt)
		}
		c.polMu.Unlock()
		if !ok {
			http.Error(w, "unknown coflow", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodPut:
		// update(): replace the flow structure (task migration /
		// restart after failure, §5), preserving accumulated progress
		// by flow index where sizes still match.
		var sj SpecJSON
		if err := json.NewDecoder(r.Body).Decode(&sj); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sj.ID = id
		spec, err := sj.toSpec()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.polMu.Lock()
		defer c.polMu.Unlock()
		c.mu.Lock()
		lc, ok := c.live[coflow.CoFlowID(id)]
		if ok {
			old := lc.rt
			c.space.Release(old)
			lc.spec = spec
			lc.rt = coflow.New(spec)
			lc.rt.Arrived = old.Arrived
			for i, f := range lc.rt.Flows {
				if i < len(old.Flows) && old.Flows[i].Size == f.Size {
					f.Sent = old.Flows[i].Sent
					f.Done = old.Flows[i].Done
					f.DoneAt = old.Flows[i].DoneAt
				}
			}
			c.space.Assign(lc.rt)
		}
		c.mu.Unlock()
		if !ok {
			http.Error(w, "unknown coflow", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Results())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	status := struct {
		Agents    int      `json:"agents"`
		Live      int      `json:"live"`
		Completed int      `json:"completed"`
		Scheduler string   `json:"scheduler"`
		Policies  []string `json:"registeredPolicies"`
	}{
		Agents:    len(c.agents),
		Live:      len(c.live),
		Completed: len(c.results),
		Scheduler: c.cfg.Scheduler.Name(),
		Policies:  sched.Names(),
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(status)
}
