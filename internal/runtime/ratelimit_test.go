package runtime

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeNow is a hand-cranked time source for deterministic bucket tests.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeNow) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeNow) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestTokenBucketRefill: tokens accrue at the configured rate and are
// spent by TryTake, all in fake time.
func TestTokenBucketRefill(t *testing.T) {
	fc := &fakeNow{t: time.Unix(0, 0)}
	b := newTokenBucketClock(1000, fc.now)
	b.SetRate(100) // 100 units/s

	if b.TryTake(1) {
		t.Fatal("empty bucket granted a token")
	}
	fc.advance(100 * time.Millisecond) // +10 tokens
	if !b.TryTake(10) {
		t.Fatal("refill did not accrue 10 tokens over 100ms at rate 100/s")
	}
	if b.TryTake(1) {
		t.Fatal("budget was not spent by the previous take")
	}
}

// TestTokenBucketBurstCap: the bucket never holds more than burst, no
// matter how long it idles.
func TestTokenBucketBurstCap(t *testing.T) {
	fc := &fakeNow{t: time.Unix(0, 0)}
	b := newTokenBucketClock(50, fc.now)
	b.SetRate(1000)
	fc.advance(time.Hour) // would be 3.6M tokens uncapped
	if !b.TryTake(50) {
		t.Fatal("burst-sized take failed after a long idle")
	}
	if b.TryTake(1) {
		t.Fatal("bucket held more than burst")
	}
}

// TestTokenBucketRejection: TryTake never blocks and never
// over-grants — the admission-control semantics.
func TestTokenBucketRejection(t *testing.T) {
	fc := &fakeNow{t: time.Unix(0, 0)}
	b := newAdmissionBucket(10, 3, fc.now) // 10/s, burst 3, starts full
	for i := 0; i < 3; i++ {
		if !b.TryTake(1) {
			t.Fatalf("initial burst take %d rejected", i)
		}
	}
	if b.TryTake(1) {
		t.Fatal("take past the burst granted")
	}
	fc.advance(100 * time.Millisecond) // exactly one token
	if !b.TryTake(1) {
		t.Fatal("refilled token rejected")
	}
	if b.TryTake(1) {
		t.Fatal("second take granted from one refilled token")
	}
}

// TestTokenBucketTakeCtxCancel: a TakeCtx paused at rate zero unblocks
// promptly when the context is cancelled, returning false.
func TestTokenBucketTakeCtxCancel(t *testing.T) {
	b := newTokenBucket(1000) // rate 0: paused
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- b.TakeCtx(ctx, 10) }()
	select {
	case <-done:
		t.Fatal("TakeCtx returned before cancel on a paused bucket")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled TakeCtx returned true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TakeCtx did not unblock on cancel")
	}
}

// TestTokenBucketTakeCtxAlreadyCancelled: a dead context fails fast.
func TestTokenBucketTakeCtxAlreadyCancelled(t *testing.T) {
	b := newTokenBucket(1000)
	b.SetRate(1e9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if b.TakeCtx(ctx, 1) {
		t.Fatal("TakeCtx granted under a cancelled context")
	}
}

// TestTokenBucketCloseUnblocksTakeCtx: Close releases context waiters
// the same way it releases plain Take waiters.
func TestTokenBucketCloseUnblocksTakeCtx(t *testing.T) {
	b := newTokenBucket(1000)
	done := make(chan bool, 1)
	go func() { done <- b.TakeCtx(context.Background(), 10) }()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed bucket granted a take")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TakeCtx did not unblock on Close")
	}
	if b.TryTake(0) {
		t.Fatal("TryTake succeeded on a closed bucket")
	}
}

// TestTokenBucketNegativeRate: a negative SetRate clamps to paused
// instead of draining tokens backwards.
func TestTokenBucketNegativeRate(t *testing.T) {
	fc := &fakeNow{t: time.Unix(0, 0)}
	b := newTokenBucketClock(100, fc.now)
	b.SetRate(-5)
	fc.advance(time.Second)
	if b.TryTake(1) {
		t.Fatal("negative rate accrued tokens")
	}
}

// TestTokenBucketVirtualClockDeterminism: two buckets driven by the
// same virtual timeline make identical grant/reject decisions — the
// property overload-study admission rides on.
func TestTokenBucketVirtualClockDeterminism(t *testing.T) {
	run := func() []bool {
		vc := NewVirtualClock(time.Unix(0, 0))
		b := newAdmissionBucket(50, 10, vc.Now)
		var got []bool
		for i := 0; i < 100; i++ {
			vc.Advance(7 * time.Millisecond)
			got = append(got, b.TryTake(1))
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identical virtual timelines", i)
		}
	}
}
