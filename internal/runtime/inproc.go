package runtime

import (
	"fmt"
	"time"
)

// InprocAgent is a simulated agent living inside the coordinator's
// process: no sockets, no goroutines, no data plane — just the flow
// progress a real agent would accumulate, advanced in virtual time by
// the testbed driver. 10^5 of them fit in one process, which is what
// lets catalog studies measure the real coordinator at cluster scale.
//
// The driver contract is single-threaded per coordinator: the driver
// interleaves Step/Report calls with the coordinator's StepSchedule
// (which synchronously delivers orders back into the agent), so no
// internal locking exists.
type InprocAgent struct {
	port    int
	coord   *Coordinator
	flows   map[flowKey]*inprocFlow
	scratch []FlowStat // reused report buffer: the steady-state step path allocates nothing
}

// inprocFlow is one flow's sender-side state.
type inprocFlow struct {
	size float64 // total bytes
	sent float64 // bytes moved so far (float: rate × δ accumulation)
	rate float64 // current schedule's bytes/second
	done bool
}

// AttachInproc registers an in-process agent for the given port,
// replacing any previous link. Used with Manual-mode coordinators by
// the testbed runner.
func (c *Coordinator) AttachInproc(port int) (*InprocAgent, error) {
	if port < 0 || port >= c.cfg.NumPorts {
		return nil, fmt.Errorf("runtime: inproc agent port %d outside [0, %d)", port, c.cfg.NumPorts)
	}
	a := &InprocAgent{port: port, coord: c, flows: make(map[flowKey]*inprocFlow)}
	c.mu.Lock()
	old := c.agents[port]
	c.agents[port] = a
	c.mu.Unlock()
	if old != nil {
		old.Shut()
	}
	return a, nil
}

// DataAddr implements agentLink; in-process agents have no data plane.
func (a *InprocAgent) DataAddr() string { return "" }

// Shut implements agentLink; nothing to tear down.
func (a *InprocAgent) Shut() {}

// Deliver implements agentLink: adopt the new schedule. Orders are
// copied into per-flow state; the message is not retained.
func (a *InprocAgent) Deliver(msg *scheduleMsg) error {
	for i := range msg.Orders {
		o := &msg.Orders[i]
		k := flowKey{CoFlow: o.CoFlow, Index: o.Index}
		f := a.flows[k]
		if f == nil {
			f = &inprocFlow{size: float64(o.Size)}
			a.flows[k] = f
		}
		f.rate = o.RateBps
	}
	return nil
}

// Step advances every flow by dt at its current scheduled rate — the
// work a real agent's token-bucket sender does in wall time, collapsed
// to arithmetic. Progress is pipelined exactly like the prototype: a
// flow moves bytes at the rate of the previous schedule push.
//
//saath:hotpath zero-alloc steady state guarded by TestTestbedLayerGuards
func (a *InprocAgent) Step(dt time.Duration) {
	if len(a.flows) == 0 {
		return
	}
	sec := dt.Seconds()
	for _, f := range a.flows {
		if f.done || f.rate <= 0 {
			continue
		}
		f.sent += f.rate * sec
		// Sub-byte float residue must not strand a finished flow.
		if f.sent >= f.size-1e-6 {
			f.sent = f.size
			f.done = true
		}
	}
}

// Report pushes this agent's flow progress into the coordinator, the
// in-process equivalent of the periodic TCP stats message. Completed
// flows are reported once (done=true) and then dropped from agent
// state — delivery is synchronous, so the completion cannot be lost.
//
//saath:hotpath zero-alloc steady state guarded by TestTestbedLayerGuards
func (a *InprocAgent) Report() {
	if len(a.flows) == 0 {
		return
	}
	a.scratch = a.scratch[:0]
	for k, f := range a.flows {
		a.scratch = append(a.scratch, FlowStat{
			CoFlow:    k.CoFlow,
			Index:     k.Index,
			Sent:      int64(f.sent),
			Done:      f.done,
			Available: true,
		})
		if f.done {
			delete(a.flows, k)
		}
	}
	a.coord.reportInproc(a.scratch)
}

// FlowCount returns the number of flows the agent currently tracks.
func (a *InprocAgent) FlowCount() int { return len(a.flows) }

// reportInproc merges an in-process agent report under the policy
// locks, without the per-report retirement scan of the TCP path —
// retirement happens once per boundary in StepSchedule, keeping the
// per-boundary cost O(flows) instead of O(agents × live).
func (c *Coordinator) reportInproc(stats []FlowStat) {
	now := c.cfg.Clock.Now()
	c.polMu.Lock()
	c.mu.Lock()
	c.mergeStatsLocked(stats, now)
	c.mu.Unlock()
	c.polMu.Unlock()
}
