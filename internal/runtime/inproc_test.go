package runtime

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// manualCoordinator builds a Manual-mode coordinator on a virtual
// clock with nPorts in-process agents attached.
func manualCoordinator(t *testing.T, policy string, nPorts int, delta time.Duration, adm AdmissionConfig) (*Coordinator, []*InprocAgent, *VirtualClock) {
	t.Helper()
	s, err := sched.New(policy, sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s, NumPorts: nPorts, PortRate: coflow.Rate(125e6), // 1 Gbps
		Delta: delta, Clock: vc, Manual: true, Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	agents := make([]*InprocAgent, nPorts)
	for i := range agents {
		if agents[i], err = coord.AttachInproc(i); err != nil {
			t.Fatal(err)
		}
	}
	return coord, agents, vc
}

// driveToCompletion advances virtual δ boundaries until every live
// coflow completes (or maxSteps passes, which fails the test).
func driveToCompletion(t *testing.T, coord *Coordinator, agents []*InprocAgent, vc *VirtualClock, delta time.Duration, maxSteps int) {
	t.Helper()
	for step := 0; step < maxSteps; step++ {
		vc.Advance(delta)
		for _, a := range agents {
			a.Step(delta)
		}
		for _, a := range agents {
			a.Report()
		}
		if live := coord.StepSchedule(); live == 0 && step > 0 {
			return
		}
	}
	t.Fatalf("coflows still live after %d boundaries", maxSteps)
}

// TestInprocEndToEnd: a coflow registered against a manual coordinator
// completes through the in-process agent path, with CCT measured in
// virtual time only.
func TestInprocEndToEnd(t *testing.T) {
	delta := 8 * time.Millisecond
	coord, agents, vc := manualCoordinator(t, "saath", 4, delta, AdmissionConfig{})
	spec := &coflow.Spec{ID: 7, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 1, Size: 4 * coflow.MB},
		{Src: 2, Dst: 3, Size: 2 * coflow.MB},
	}}
	if err := coord.Register(spec); err != nil {
		t.Fatal(err)
	}
	driveToCompletion(t, coord, agents, vc, delta, 10000)
	res := coord.Results()
	if len(res) != 1 || res[0].ID != 7 {
		t.Fatalf("results = %+v, want coflow 7", res)
	}
	// 4 MB at 1 Gbps is ~32ms of service plus the one-δ schedule push
	// lag; virtual CCT must land in that ballpark, not at wall scale.
	if res[0].CCT < 32*time.Millisecond || res[0].CCT > 200*time.Millisecond {
		t.Fatalf("virtual CCT %v outside the plausible window", res[0].CCT)
	}
	if got := res[0].RegisteredAt; !got.Equal(time.Unix(0, 0).UTC()) {
		t.Fatalf("RegisteredAt = %v, want the virtual epoch", got)
	}
}

// TestInprocDeterminism: two identical manual runs produce identical
// results — byte-for-byte the same completion times in virtual time.
func TestInprocDeterminism(t *testing.T) {
	run := func() []CoFlowResult {
		delta := 8 * time.Millisecond
		coord, agents, vc := manualCoordinator(t, "saath", 6, delta, AdmissionConfig{})
		for id := 1; id <= 8; id++ {
			spec := &coflow.Spec{ID: coflow.CoFlowID(id), Flows: []coflow.FlowSpec{
				{Src: coflow.PortID(id % 6), Dst: coflow.PortID((id + 3) % 6), Size: coflow.Bytes(id) * coflow.MB},
			}}
			vc.Advance(time.Millisecond)
			if err := coord.Register(spec); err != nil {
				t.Fatal(err)
			}
		}
		driveToCompletion(t, coord, agents, vc, delta, 10000)
		return coord.Results()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d diverged:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// TestResultsSortedByID: results come back ordered by coflow ID even
// when completions land in a different order.
func TestResultsSortedByID(t *testing.T) {
	delta := 8 * time.Millisecond
	coord, agents, vc := manualCoordinator(t, "saath", 4, delta, AdmissionConfig{})
	// Bigger IDs get smaller flows, so they complete first.
	for id := 1; id <= 4; id++ {
		spec := &coflow.Spec{ID: coflow.CoFlowID(id), Flows: []coflow.FlowSpec{
			{Src: coflow.PortID(id - 1), Dst: coflow.PortID(id % 4), Size: coflow.Bytes(5-id) * 4 * coflow.MB},
		}}
		if err := coord.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	driveToCompletion(t, coord, agents, vc, delta, 10000)
	res := coord.Results()
	if len(res) != 4 {
		t.Fatalf("want 4 results, got %d", len(res))
	}
	for i, r := range res {
		if r.ID != coflow.CoFlowID(i+1) {
			t.Fatalf("results not ID-sorted: %+v", res)
		}
	}
	// And the larger flow of coflow 1 must not have completed first.
	if !res[3].CompletedAt.Before(res[0].CompletedAt) {
		t.Fatal("expected coflow 4 (smallest) to finish before coflow 1 (largest); sort is hiding nothing")
	}
}

// TestArrivalTimeAdmission: admission decisions happen per arrival
// against the live token bucket — a burst beyond the bucket is shed at
// arrival time, and later arrivals (after refill) are admitted again.
func TestArrivalTimeAdmission(t *testing.T) {
	delta := 10 * time.Millisecond
	coord, _, vc := manualCoordinator(t, "saath", 4, delta,
		AdmissionConfig{RatePerSec: 100, Burst: 2})
	mkSpec := func(id int) *coflow.Spec {
		return &coflow.Spec{ID: coflow.CoFlowID(id), Flows: []coflow.FlowSpec{
			{Src: 0, Dst: 1, Size: coflow.MB}}}
	}
	// Burst of 4 at t=0: bucket depth 2 admits exactly 2.
	var rejected int
	for id := 1; id <= 4; id++ {
		if err := coord.Register(mkSpec(id)); errors.Is(err, ErrAdmission) {
			rejected++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if rejected != 2 {
		t.Fatalf("burst of 4 over depth 2: rejected %d, want 2", rejected)
	}
	// 30ms later the bucket refilled 3 tokens: the next arrival is
	// admitted — the decision tracks live state, not a batch snapshot.
	vc.Advance(30 * time.Millisecond)
	if err := coord.Register(mkSpec(5)); err != nil {
		t.Fatalf("post-refill arrival rejected: %v", err)
	}
	admitted, rej := coord.AdmissionStats()
	if admitted != 3 || rej != 2 {
		t.Fatalf("AdmissionStats = (%d, %d), want (3, 2)", admitted, rej)
	}
}

// TestMaxLiveAdmission: the live-coflow cap rejects at arrival time
// and opens up again once completions retire.
func TestMaxLiveAdmission(t *testing.T) {
	delta := 8 * time.Millisecond
	coord, agents, vc := manualCoordinator(t, "saath", 4, delta, AdmissionConfig{MaxLive: 2})
	mkSpec := func(id int) *coflow.Spec {
		return &coflow.Spec{ID: coflow.CoFlowID(id), Flows: []coflow.FlowSpec{
			{Src: 0, Dst: 1, Size: coflow.MB}}}
	}
	for id := 1; id <= 2; id++ {
		if err := coord.Register(mkSpec(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Register(mkSpec(3)); !errors.Is(err, ErrAdmission) {
		t.Fatalf("third concurrent coflow: err = %v, want ErrAdmission", err)
	}
	driveToCompletion(t, coord, agents, vc, delta, 10000)
	if err := coord.Register(mkSpec(4)); err != nil {
		t.Fatalf("arrival after retirement rejected: %v", err)
	}
}

// TestDuplicateRegisterInproc: a duplicate ID is a structural error,
// not an admission drop, and consumes no admission budget.
func TestDuplicateRegisterInproc(t *testing.T) {
	coord, _, _ := manualCoordinator(t, "saath", 2, 8*time.Millisecond,
		AdmissionConfig{RatePerSec: 1000, Burst: 10})
	spec := &coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}}
	if err := coord.Register(spec); err != nil {
		t.Fatal(err)
	}
	if err := coord.Register(spec); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register: err = %v, want ErrDuplicate", err)
	}
	if _, rejected := coord.AdmissionStats(); rejected != 0 {
		t.Fatalf("duplicate counted as an admission rejection")
	}
}

// TestScheduleSurvivesStalledAgent: a TCP agent that stops reading
// must not wedge the schedule round or block registrations — the
// schedule is computed and delivered outside the policy locks, the
// stalled link eats only its own write deadline, and the dead port is
// deregistered so the scheduler sees the reduced fabric.
func TestScheduleSurvivesStalledAgent(t *testing.T) {
	s, err := sched.New("saath", sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s, NumPorts: 2, PortRate: coflow.Rate(1e6),
		Delta: time.Hour, Manual: true, // drive rounds by hand
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	// Port 1: a healthy in-process receiver.
	if _, err := coord.AttachInproc(1); err != nil {
		t.Fatal(err)
	}
	// Port 0: a stalled TCP agent — a pipe nobody reads, with a short
	// write deadline so the test stays fast.
	us, them := net.Pipe()
	t.Cleanup(func() { us.Close(); them.Close() })
	stalled := &agentConn{port: 0, dataAddr: "stalled:0", conn: us, timeout: 50 * time.Millisecond}
	coord.mu.Lock()
	coord.agents[0] = stalled
	coord.mu.Unlock()

	spec := &coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 10 * coflow.MB}}}
	if err := coord.Register(spec); err != nil {
		t.Fatal(err)
	}

	// The round must complete despite the stalled link, and while the
	// round's deliveries are in flight a registration must not block:
	// run a second Register concurrently with StepSchedule.
	stepDone := make(chan struct{})
	go func() {
		coord.StepSchedule()
		close(stepDone)
	}()
	regDone := make(chan error, 1)
	go func() {
		spec2 := &coflow.Spec{ID: 2, Flows: []coflow.FlowSpec{{Src: 1, Dst: 0, Size: coflow.MB}}}
		regDone <- coord.Register(spec2)
	}()
	select {
	case err := <-regDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Register blocked behind a stalled agent's schedule delivery")
	}
	select {
	case <-stepDone:
	case <-time.After(5 * time.Second):
		t.Fatal("StepSchedule wedged on a stalled agent")
	}

	// The stalled port was shed.
	deadline := time.Now().Add(2 * time.Second)
	for coord.AgentCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := coord.AgentCount(); n != 1 {
		t.Fatalf("stalled agent still registered: %d agents", n)
	}
	// And the next round runs cleanly against the reduced fabric.
	done := make(chan struct{})
	go func() { coord.StepSchedule(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("schedule round after shedding still wedged")
	}
}

// TestAgentDisconnectNoGoroutineLeak: agents connecting and dropping
// must not leave serveAgent goroutines behind once the coordinator
// closes.
func TestAgentDisconnectNoGoroutineLeak(t *testing.T) {
	s, err := sched.New("saath", sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s, NumPorts: 8, PortRate: coflow.Rate(1e6), Delta: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve()
	for i := 0; i < 8; i++ {
		a, err := NewAgent(AgentConfig{Port: i, CoordinatorAddr: coord.ControlAddr(), StatsInterval: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		a.Close() // immediate disconnect, mid-run from the coordinator's view
	}
	deadline := time.Now().Add(3 * time.Second)
	for coord.AgentCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := coord.AgentCount(); n != 0 {
		t.Fatalf("%d dead agents still registered", n)
	}
	coord.Close() // wg.Wait inside: serveAgent goroutines must all exit
	deadline = time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after close", before, n)
	}
}

// TestInprocScaleTenThousand: 10^4 in-process agents, one coordinator,
// one process — the Table-2 scale point — completes a small workload
// promptly in virtual time.
func TestInprocScaleTenThousand(t *testing.T) {
	if testing.Short() {
		t.Skip("10^4-agent scale test skipped in -short mode")
	}
	const ports = 10000
	delta := 8 * time.Millisecond
	coord, agents, vc := manualCoordinator(t, "saath", ports, delta, AdmissionConfig{})
	for id := 1; id <= 50; id++ {
		spec := &coflow.Spec{ID: coflow.CoFlowID(id), Flows: []coflow.FlowSpec{
			{Src: coflow.PortID((id * 13) % ports), Dst: coflow.PortID((id*29 + 1) % ports), Size: 8 * coflow.MB},
		}}
		if err := coord.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	driveToCompletion(t, coord, agents, vc, delta, 2000)
	if n := coord.CompletedCount(); n != 50 {
		t.Fatalf("completed %d/50", n)
	}
	calls, mean, _, _ := coord.ScheduleLatency()
	if calls == 0 || mean <= 0 {
		t.Fatalf("schedule latency not measured: calls=%d mean=%v", calls, mean)
	}
}
