package runtime

import (
	"context"
	"sync"
	"time"
)

// tokenBucket paces a flow's writes to the coordinator-assigned rate.
// The rate may be changed at any time by a new schedule; a rate of
// zero pauses the flow (Take blocks until a positive rate arrives or
// the bucket is closed).
//
// The same bucket also backs the coordinator's admission-control front
// (units become coflows per second instead of bytes per second, and
// admission uses the non-blocking TryTake). The time source is
// injectable so admission decisions under a VirtualClock refill
// deterministically.
type tokenBucket struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    func() time.Time
	rate   float64 // units per second
	tokens float64
	burst  float64
	last   time.Time
	closed bool
}

// newTokenBucket creates a paused bucket (rate 0, empty) with the
// given maximum burst, running on the wall clock.
func newTokenBucket(burst float64) *tokenBucket {
	return newTokenBucketClock(burst, time.Now)
}

// newTokenBucketClock is newTokenBucket with an injectable time
// source (nil falls back to time.Now).
func newTokenBucketClock(burst float64, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := &tokenBucket{burst: burst, now: now, last: now()}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// newAdmissionBucket creates a bucket for admission control: rate
// units/second, a full burst of initial budget (so the first burst of
// arrivals is admitted), driven by the given time source.
func newAdmissionBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	b := newTokenBucketClock(burst, now)
	b.rate = rate
	b.tokens = burst
	return b
}

// SetRate updates the pacing rate in units per second.
func (b *tokenBucket) SetRate(bps float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	if bps < 0 {
		bps = 0
	}
	b.rate = bps
	b.cond.Broadcast()
}

// Close releases all waiters; Take returns false afterwards.
func (b *tokenBucket) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

func (b *tokenBucket) refillLocked(now time.Time) {
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += b.rate * dt
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// TryTake consumes n units if the accumulated budget covers them right
// now, without blocking. This is the admission-control path: a coflow
// arriving past the configured rate is rejected, not queued.
func (b *tokenBucket) TryTake(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.refillLocked(b.now())
	if b.tokens >= float64(n) {
		b.tokens -= float64(n)
		return true
	}
	return false
}

// Take blocks until n bytes of budget are available (or the bucket is
// closed, returning false). Large n are granted in a single wait once
// the accumulated budget covers them, so n should not exceed burst.
func (b *tokenBucket) Take(n int) bool {
	return b.take(nil, n)
}

// TakeCtx is Take with cancellation: it returns false as soon as ctx
// is done, even while paused at rate zero.
func (b *tokenBucket) TakeCtx(ctx context.Context, n int) bool {
	if ctx == nil {
		return b.take(nil, n)
	}
	// Wake any cond.Wait pause when the context fires, so a paused
	// flow unblocks immediately instead of waiting for a rate change.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	return b.take(ctx, n)
}

func (b *tokenBucket) take(ctx context.Context, n int) bool {
	need := float64(n)
	if need > b.burst {
		need = b.burst // never wait for more than the bucket can hold
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed {
			return false
		}
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		b.refillLocked(b.now())
		if b.tokens >= need {
			b.tokens -= float64(n)
			return true
		}
		if b.rate <= 0 {
			b.cond.Wait() // paused: wait for SetRate, Close or ctx
			continue
		}
		// Sleep roughly until enough tokens accrue, then re-check.
		wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
		if wait < 500*time.Microsecond {
			wait = 500 * time.Microsecond
		}
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond // stay responsive to rate changes
		}
		b.mu.Unlock()
		time.Sleep(wait)
		b.mu.Lock()
	}
}
