package runtime

import (
	"sync"
	"time"
)

// tokenBucket paces a flow's writes to the coordinator-assigned rate.
// The rate may be changed at any time by a new schedule; a rate of
// zero pauses the flow (Take blocks until a positive rate arrives or
// the bucket is closed).
type tokenBucket struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rate   float64 // bytes per second
	tokens float64
	burst  float64
	last   time.Time
	closed bool
}

// newTokenBucket creates a paused bucket (rate 0) with the given
// maximum burst in bytes.
func newTokenBucket(burst float64) *tokenBucket {
	b := &tokenBucket{burst: burst, last: time.Now()}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// SetRate updates the pacing rate in bytes per second.
func (b *tokenBucket) SetRate(bps float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	if bps < 0 {
		bps = 0
	}
	b.rate = bps
	b.cond.Broadcast()
}

// Close releases all waiters; Take returns false afterwards.
func (b *tokenBucket) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

func (b *tokenBucket) refillLocked(now time.Time) {
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += b.rate * dt
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Take blocks until n bytes of budget are available (or the bucket is
// closed, returning false). Large n are granted in a single wait once
// the accumulated budget covers them, so n should not exceed burst.
func (b *tokenBucket) Take(n int) bool {
	need := float64(n)
	if need > b.burst {
		need = b.burst // never wait for more than the bucket can hold
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed {
			return false
		}
		b.refillLocked(time.Now())
		if b.tokens >= need {
			b.tokens -= float64(n)
			return true
		}
		if b.rate <= 0 {
			b.cond.Wait() // paused: wait for SetRate or Close
			continue
		}
		// Sleep roughly until enough tokens accrue, then re-check.
		wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
		if wait < 500*time.Microsecond {
			wait = 500 * time.Microsecond
		}
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond // stay responsive to rate changes
		}
		b.mu.Unlock()
		time.Sleep(wait)
		b.mu.Lock()
	}
}
