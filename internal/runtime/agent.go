package runtime

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// AgentConfig configures one local agent (§5): it serves a single
// cluster port, receives flow bytes from peers on its data listener,
// sends its own flows at coordinator-assigned rates, and reports flow
// statistics every sync interval.
type AgentConfig struct {
	Port            int    // the node/port index this agent serves
	CoordinatorAddr string // coordinator control address
	DataAddr        string // data-plane listen address (":0" for any)
	// StatsInterval is the reporting period (defaults to 20ms, the
	// prototype's δ; the coordinator schedules on its own δ clock).
	StatsInterval time.Duration
	// ChunkBytes is the write granularity on the data plane.
	ChunkBytes int
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.DataAddr == "" {
		c.DataAddr = "127.0.0.1:0"
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = 20 * time.Millisecond
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 16 << 10
	}
	return c
}

// senderState is one outgoing flow owned by this agent.
type senderState struct {
	key     flowKey
	dstAddr string
	size    int64
	bucket  *tokenBucket

	mu      sync.Mutex
	sent    int64
	done    bool
	doneAt  time.Time
	started bool
}

// Agent is a local Saath agent.
type Agent struct {
	cfg      AgentConfig
	ctl      net.Conn
	ctlMu    sync.Mutex
	dataLn   net.Listener
	stopped  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	senders map[flowKey]*senderState

	// received counts data-plane bytes per incoming flow (receiver side).
	recvMu   sync.Mutex
	received map[flowKey]int64
}

// NewAgent connects to the coordinator and starts the data listener,
// stats loop and schedule listener.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.CoordinatorAddr == "" {
		return nil, errors.New("runtime: agent needs CoordinatorAddr")
	}
	dataLn, err := net.Listen("tcp", cfg.DataAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: data listen: %w", err)
	}
	ctl, err := net.Dial("tcp", cfg.CoordinatorAddr)
	if err != nil {
		dataLn.Close()
		return nil, fmt.Errorf("runtime: dial coordinator: %w", err)
	}
	a := &Agent{
		cfg:      cfg,
		ctl:      ctl,
		dataLn:   dataLn,
		stopped:  make(chan struct{}),
		senders:  make(map[flowKey]*senderState),
		received: make(map[flowKey]int64),
	}
	hello := &envelope{Kind: kindHello, Hello: &helloMsg{Port: cfg.Port, DataAddr: dataLn.Addr().String()}}
	if err := writeFrame(ctl, hello); err != nil {
		a.Close()
		return nil, fmt.Errorf("runtime: hello: %w", err)
	}
	a.wg.Add(3)
	go func() { defer a.wg.Done(); a.acceptData() }()
	go func() { defer a.wg.Done(); a.controlLoop() }()
	go func() { defer a.wg.Done(); a.statsLoop() }()
	return a, nil
}

// DataAddr returns the data-plane listen address.
func (a *Agent) DataAddr() string { return a.dataLn.Addr().String() }

// Close stops the agent.
func (a *Agent) Close() error {
	a.stopOnce.Do(func() {
		close(a.stopped)
		a.ctl.Close()
		a.dataLn.Close()
		a.mu.Lock()
		a.closed = true // applyOrder must not spawn senders past this point
		for _, s := range a.senders {
			s.bucket.Close()
		}
		a.mu.Unlock()
	})
	a.wg.Wait()
	return nil
}

// controlLoop applies schedules pushed by the coordinator.
func (a *Agent) controlLoop() {
	for {
		env, err := readFrame(a.ctl)
		if err != nil {
			return
		}
		if env.Kind != kindSchedule || env.Schedule == nil {
			continue
		}
		for _, o := range env.Schedule.Orders {
			a.applyOrder(o)
		}
	}
}

// applyOrder creates or updates the sender for one flow. Agents keep
// following the last schedule until a new one arrives (§5), which the
// token bucket realizes by holding its rate.
func (a *Agent) applyOrder(o FlowOrder) {
	key := flowKey{CoFlow: o.CoFlow, Index: o.Index}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	s, ok := a.senders[key]
	if !ok {
		// Burst of one stats interval at the assigned rate, floored so
		// small rates still move chunk-sized writes.
		burst := float64(a.cfg.ChunkBytes) * 4
		s = &senderState{key: key, dstAddr: o.DstAddr, size: o.Size, bucket: newTokenBucket(burst)}
		a.senders[key] = s
	}
	a.mu.Unlock()
	s.bucket.SetRate(o.RateBps)
	s.mu.Lock()
	start := !s.started && !s.done
	if start {
		s.started = true
	}
	s.mu.Unlock()
	if start {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.runSender(s)
		}()
	}
}

// runSender moves one flow's bytes to the destination agent at the
// bucket's (live-updated) rate.
func (a *Agent) runSender(s *senderState) {
	conn, err := net.Dial("tcp", s.dstAddr)
	if err != nil {
		s.mu.Lock()
		s.started = false // allow a retry on the next schedule push
		s.mu.Unlock()
		return
	}
	defer conn.Close()
	if err := writeDataHeader(conn, dataHeader{CoFlow: s.key.CoFlow, Index: s.key.Index, Size: s.size}); err != nil {
		return
	}
	buf := make([]byte, a.cfg.ChunkBytes)
	var sent int64
	for sent < s.size {
		n := int64(len(buf))
		if rem := s.size - sent; rem < n {
			n = rem
		}
		if !s.bucket.Take(int(n)) {
			return // agent closing
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			return
		}
		sent += n
		s.mu.Lock()
		s.sent = sent
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.done = true
	s.doneAt = time.Now()
	s.mu.Unlock()
}

// acceptData receives peers' flow bytes, counting and discarding.
func (a *Agent) acceptData() {
	for {
		conn, err := a.dataLn.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer conn.Close()
			h, err := readDataHeader(conn)
			if err != nil {
				return
			}
			key := flowKey{CoFlow: h.CoFlow, Index: h.Index}
			buf := make([]byte, 64<<10)
			for {
				n, err := conn.Read(buf)
				if n > 0 {
					a.recvMu.Lock()
					a.received[key] += int64(n)
					a.recvMu.Unlock()
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

// Received reports bytes received for a flow (receiver-side view).
func (a *Agent) Received(coflowID int64, index int) int64 {
	a.recvMu.Lock()
	defer a.recvMu.Unlock()
	return a.received[flowKey{CoFlow: coflowID, Index: index}]
}

// statsLoop reports per-flow progress to the coordinator every
// interval; completion notifications ride the same channel (§5).
func (a *Agent) statsLoop() {
	ticker := time.NewTicker(a.cfg.StatsInterval)
	defer ticker.Stop()
	epoch := time.Now()
	for {
		select {
		case <-a.stopped:
			return
		case <-ticker.C:
		}
		msg := &statsMsg{Port: a.cfg.Port}
		a.mu.Lock()
		for _, s := range a.senders {
			s.mu.Lock()
			fs := FlowStat{
				CoFlow:    s.key.CoFlow,
				Index:     s.key.Index,
				Sent:      s.sent,
				Done:      s.done,
				Available: true,
			}
			if s.done {
				fs.DoneAtUS = s.doneAt.Sub(epoch).Microseconds()
			}
			s.mu.Unlock()
			msg.Flows = append(msg.Flows, fs)
		}
		a.mu.Unlock()
		a.ctlMu.Lock()
		err := writeFrame(a.ctl, &envelope{Kind: kindStats, Stats: msg})
		a.ctlMu.Unlock()
		if err != nil {
			return
		}
	}
}
