// Package runtime is the distributed Saath prototype (§5): a global
// coordinator and per-node local agents that move real bytes over TCP.
//
// Control plane: agents hold a persistent TCP connection to the
// coordinator, report per-flow statistics every sync interval δ, and
// receive rate schedules computed by any sched.Scheduler. Frameworks
// register CoFlows through a small HTTP REST API (register /
// deregister / update), exactly the surface §5 describes.
//
// Data plane: the sending agent dials the receiving agent and writes
// the flow's bytes through a token-bucket rate limiter that tracks the
// latest schedule. Receivers count and discard. This exercises the
// full coordinator→agent→socket path of the paper's testbed, scaled to
// localhost (see DESIGN.md substitutions).
package runtime

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Message kinds carried on the control connection.
const (
	kindHello    = "hello"
	kindStats    = "stats"
	kindSchedule = "schedule"
)

// envelope frames every control message.
type envelope struct {
	Kind     string       `json:"kind"`
	Hello    *helloMsg    `json:"hello,omitempty"`
	Stats    *statsMsg    `json:"stats,omitempty"`
	Schedule *scheduleMsg `json:"schedule,omitempty"`
}

// helloMsg introduces an agent to the coordinator.
type helloMsg struct {
	Port     int    `json:"port"`     // the node/port index this agent serves
	DataAddr string `json:"dataAddr"` // where peers dial to deliver flow bytes
}

// FlowStat is one flow's progress as observed by its sending agent.
type FlowStat struct {
	CoFlow    int64 `json:"coflow"`
	Index     int   `json:"index"`
	Sent      int64 `json:"sent"`
	Done      bool  `json:"done"`
	DoneAtUS  int64 `json:"doneAtUS"`  // agent wall-clock µs since epoch start
	Available bool  `json:"available"` // data ready (§4.3 pipelining)
}

// statsMsg is the periodic agent→coordinator report.
type statsMsg struct {
	Port  int        `json:"port"`
	Flows []FlowStat `json:"flows"`
}

// FlowOrder tells a sending agent to run one flow at a given rate.
type FlowOrder struct {
	CoFlow  int64   `json:"coflow"`
	Index   int     `json:"index"`
	DstPort int     `json:"dstPort"`
	DstAddr string  `json:"dstAddr"`
	Size    int64   `json:"size"`
	RateBps float64 `json:"rateBps"` // bytes per second; 0 pauses the flow
}

// scheduleMsg is the coordinator→agent schedule push for one interval.
type scheduleMsg struct {
	Epoch  int64       `json:"epoch"`
	Orders []FlowOrder `json:"orders"`
}

// maxFrame bounds a control frame; a schedule for tens of thousands of
// flows stays well under this.
const maxFrame = 64 << 20

// writeFrame writes one length-prefixed JSON message.
func writeFrame(w io.Writer, env *envelope) error {
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("runtime: encode %s: %w", env.Kind, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed JSON message.
func readFrame(r io.Reader) (*envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("runtime: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	env := new(envelope)
	if err := json.Unmarshal(payload, env); err != nil {
		return nil, fmt.Errorf("runtime: decode frame: %w", err)
	}
	return env, nil
}

// dataHeader precedes flow bytes on a data-plane connection.
type dataHeader struct {
	CoFlow int64 `json:"coflow"`
	Index  int   `json:"index"`
	Size   int64 `json:"size"`
}

// writeDataHeader frames the header with a 2-byte length prefix.
func writeDataHeader(w io.Writer, h dataHeader) error {
	payload, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if len(payload) > 0xffff {
		return fmt.Errorf("runtime: data header too large")
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

func readDataHeader(r io.Reader) (dataHeader, error) {
	var hdr [2]byte
	var h dataHeader
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return h, err
	}
	payload := make([]byte, binary.BigEndian.Uint16(hdr[:]))
	if _, err := io.ReadFull(r, payload); err != nil {
		return h, err
	}
	err := json.Unmarshal(payload, &h)
	return h, err
}

// flowKey identifies a flow across the wire.
type flowKey struct {
	CoFlow int64
	Index  int
}
