package study

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"saath/internal/coflow"
	"saath/internal/sim"
	"saath/internal/telemetry"
)

// shardStudy is the golden-test subject: saath + aalo over two seeds
// with full telemetry, the shape the ISSUE's acceptance criterion
// names.
func shardStudy(t *testing.T) *Study {
	t.Helper()
	st, err := New("shard-golden",
		WithTraces(tinySource("tiny")),
		WithSchedulers("aalo", "saath"),
		WithSeeds(1, 2),
		WithBaseline("aalo"),
		WithTelemetry(telemetry.Spec{Enabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// exports renders every deterministic artifact of a study result: the
// summary JSON, the telemetry CSV and JSON, and the derived tables.
func exports(t *testing.T, res *Result) (summaryJSON, metricsCSV, metricsJSON, tables string) {
	t.Helper()
	var js, csv, mjs bytes.Buffer
	if err := res.Summary().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := res.Summary().WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.Summary().WriteMetricsJSON(&mjs); err != nil {
		t.Fatal(err)
	}
	tbls, err := res.Tables()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tbl := range tbls {
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return js.String(), csv.String(), mjs.String(), sb.String()
}

// TestShardedMergeGolden is the sharded determinism contract: running
// shard 0/2 and shard 1/2 in separate Summaries, exporting each
// through the JSON shard dump, and merging must reproduce the
// single-process run byte for byte — summary JSON, telemetry CSV and
// JSON, and every derived table.
func TestShardedMergeGolden(t *testing.T) {
	st := shardStudy(t)
	ctx := context.Background()

	whole, err := st.Run(ctx, Pool{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.Err(); err != nil {
		t.Fatal(err)
	}
	wantJS, wantCSV, wantMJS, wantTables := exports(t, whole)

	// Each shard runs in its own Summary — as it would in its own
	// process — and round-trips through the serialized dump.
	var dumps []*ShardDump
	for i := 0; i < 2; i++ {
		sh := Sharded{Index: i, Count: 2, Pool: Pool{Parallel: 2}}
		res, err := st.Run(ctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteShard(&buf, sh); err != nil {
			t.Fatal(err)
		}
		dump, err := ReadShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if dump.Shard != i || dump.Of != 2 || dump.Jobs != len(st.Jobs()) {
			t.Fatalf("dump identity: %+v", dump)
		}
		dumps = append(dumps, dump)
	}

	merged, err := MergeShards(st, dumps...)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Err(); err != nil {
		t.Fatal(err)
	}
	gotJS, gotCSV, gotMJS, gotTables := exports(t, merged)

	if gotJS != wantJS {
		t.Errorf("summary JSON differs:\n--- single ---\n%s\n--- merged ---\n%s", wantJS, gotJS)
	}
	if gotCSV != wantCSV {
		t.Errorf("telemetry CSV differs:\n--- single ---\n%s\n--- merged ---\n%s", wantCSV, gotCSV)
	}
	if gotMJS != wantMJS {
		t.Errorf("telemetry JSON differs (lengths %d vs %d)", len(wantMJS), len(gotMJS))
	}
	if gotTables != wantTables {
		t.Errorf("derived tables differ:\n--- single ---\n%s\n--- merged ---\n%s", wantTables, gotTables)
	}
}

// TestShardFileRoundTrip: the on-disk shard workflow (WriteShardFile +
// MergeShardDir) reassembles the study.
func TestShardFileRoundTrip(t *testing.T) {
	st := shardStudy(t)
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		sh := Sharded{Index: i, Count: 2, Pool: Pool{Parallel: 2}}
		res, err := st.Run(context.Background(), sh)
		if err != nil {
			t.Fatal(err)
		}
		path, err := res.WriteShardFile(dir, sh)
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Base(path) != ShardFileName(st.Name(), sh) {
			t.Errorf("shard file name = %s", path)
		}
	}
	merged, err := MergeShardDir(st, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Summary().Len(), len(st.Jobs()); got != want {
		t.Fatalf("merged %d jobs, want %d", got, want)
	}
}

// TestShardFileNameSanitized: study names may be workload file paths
// (saath-sim's ad-hoc grids); the dump file name must stay flat and
// glob-safe so dumps land inside -out and the merge glob finds them.
func TestShardFileNameSanitized(t *testing.T) {
	got := ShardFileName("/tmp/tiny trace*.txt", Sharded{Index: 0, Count: 2})
	if strings.ContainsAny(got, "/*? []") {
		t.Fatalf("unsafe shard file name %q", got)
	}
	if got != "_tmp_tiny_trace_.txt-shard-0-of-2.json" {
		t.Fatalf("shard file name = %q", got)
	}
}

// TestMergeValidation: incomplete, duplicated and mismatched shard
// sets are rejected instead of silently producing partial output.
func TestMergeValidation(t *testing.T) {
	st := shardStudy(t)
	ctx := context.Background()
	dump := func(i, n int) *ShardDump {
		sh := Sharded{Index: i, Count: n, Pool: Pool{Parallel: 2}}
		res, err := st.Run(ctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteShard(&buf, sh); err != nil {
			t.Fatal(err)
		}
		d, err := ReadShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d0, d1 := dump(0, 2), dump(1, 2)

	if _, err := MergeShards(st, d0); err == nil || !strings.Contains(err.Error(), "missing shard") {
		t.Errorf("incomplete merge: err = %v", err)
	}
	if _, err := MergeShards(st, d0, d0); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate shard: err = %v", err)
	}
	if _, err := MergeShards(st, d0, dump(0, 3)); err == nil || !strings.Contains(err.Error(), "mixed shard partitions") {
		t.Errorf("mixed partitions: err = %v", err)
	}

	other, err := New("other-study",
		WithTraces(tinySource("tiny")),
		WithSchedulers("aalo", "saath"),
		WithSeeds(1, 2),
		WithTelemetry(telemetry.Spec{Enabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(other, d0, d1); err == nil {
		t.Error("merge into a different study accepted")
	}

	// A flag-set drift that keeps the job count but changes keys is
	// caught by the grid fingerprint.
	drift, err := New("shard-golden",
		WithTraces(tinySource("tiny")),
		WithSchedulers("aalo", "saath"),
		WithSeeds(1, 3), // seed 3 instead of 2
		WithTelemetry(telemetry.Spec{Enabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(drift, d0, d1); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("grid drift: err = %v", err)
	}

	// Physical-config drift that keeps every job key identical (a
	// different -rate) must also fail — the fingerprint covers params
	// and sim config, not just keys.
	rateDrift, err := New("shard-golden",
		WithTraces(tinySource("tiny")),
		WithSchedulers("aalo", "saath"),
		WithSeeds(1, 2),
		WithBaseline("aalo"),
		WithSimConfig(sim.Config{PortRate: coflow.GbpsRate(10)}),
		WithTelemetry(telemetry.Spec{Enabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(rateDrift, d0, d1); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("rate drift: err = %v", err)
	}
}

// TestMergeShardDirFailureModes is the on-disk merge counterpart of
// TestMergeValidation: the failure modes an operator actually hits
// when pointing `saath-sim -merge <dir>` at a bad shard directory — a
// duplicated shard dump, a dump from a drifted flag set (grid
// fingerprint mismatch), a missing shard, mixed partitions — each fail
// with a distinct, actionable error instead of rendering partial or
// double-counted output.
func TestMergeShardDirFailureModes(t *testing.T) {
	st := shardStudy(t)
	ctx := context.Background()

	// Produce the canonical dump files once; each case assembles its
	// own directory from copies.
	dumpFile := func(t *testing.T, st *Study, i, n int) (name string, data []byte) {
		t.Helper()
		sh := Sharded{Index: i, Count: n, Pool: Pool{Parallel: 2}}
		res, err := st.Run(ctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteShard(&buf, sh); err != nil {
			t.Fatal(err)
		}
		return ShardFileName(st.Name(), sh), buf.Bytes()
	}
	name0, dump0 := dumpFile(t, st, 0, 2)
	name1, dump1 := dumpFile(t, st, 1, 2)
	_, dumpThird := dumpFile(t, st, 0, 3)

	// A same-name study with a drifted seed list: identical job count,
	// different grid fingerprint.
	drifted, err := New(st.Name(),
		WithTraces(tinySource("tiny")),
		WithSchedulers("aalo", "saath"),
		WithSeeds(1, 3),
		WithBaseline("aalo"),
		WithTelemetry(telemetry.Spec{Enabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	_, dumpDrift := dumpFile(t, drifted, 1, 2)

	cases := []struct {
		name  string
		files map[string][]byte
		want  string // substring of the expected error
	}{
		{
			name: "duplicated shard dump",
			files: map[string][]byte{
				name0: dump0,
				name1: dump1,
				// A second copy of shard 0 under another glob-matching name.
				strings.Replace(name0, "shard-0", "shard-00", 1): dump0,
			},
			want: "supplied twice",
		},
		{
			name: "mismatched grid fingerprint",
			files: map[string][]byte{
				name0: dump0,
				name1: dumpDrift,
			},
			want: "fingerprint mismatch",
		},
		{
			name:  "missing shard",
			files: map[string][]byte{name0: dump0},
			want:  "missing shard",
		},
		{
			name: "mixed partitions",
			files: map[string][]byte{
				name0: dump0,
				name1: dump1,
				strings.Replace(name0, "of-2", "of-3", 1): dumpThird,
			},
			want: "mixed shard partitions",
		},
		{
			name:  "empty directory",
			files: nil,
			want:  "no shard dumps",
		},
		{
			// A worker killed mid-write leaves a syntactically incomplete
			// dump; the merge must name the file and say "truncated", not
			// surface a bare "unexpected EOF".
			name: "truncated dump file",
			files: map[string][]byte{
				name0: dump0,
				name1: dump1[:len(dump1)/2],
			},
			want: "truncated JSON",
		},
		{
			name: "empty dump file",
			files: map[string][]byte{
				name0: dump0,
				name1: nil,
			},
			want: "empty file",
		},
		{
			name: "corrupt JSON",
			files: map[string][]byte{
				name0: dump0,
				name1: append([]byte("{\"study\": ###"), dump1...),
			},
			want: "corrupt JSON at byte",
		},
		{
			// Valid JSON, impossible dump: a shard index outside its own
			// partition is rejected at read time with the cause.
			name: "structurally invalid dump",
			files: map[string][]byte{
				name0: dump0,
				name1: bytes.Replace(dump1, []byte(`"shard": 1`), []byte(`"shard": 7`), 1),
			},
			want: "shard index 7 outside [0, 2)",
		},
		{
			name: "mangled grid fingerprint",
			files: map[string][]byte{
				name0: dump0,
				name1: bytes.Replace(dump1, []byte(`"keys_hash": "`), []byte(`"keys_hash": "zz`), 1),
			},
			want: "not a sha256 hex digest",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for name, data := range tc.files {
				if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			_, err := MergeShardDir(st, dir)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	// Control: the clean pair still merges.
	dir := t.TempDir()
	for name, data := range map[string][]byte{name0: dump0, name1: dump1} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MergeShardDir(st, dir); err != nil {
		t.Fatalf("clean merge failed: %v", err)
	}
}
