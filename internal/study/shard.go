package study

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"saath/internal/sweep"
)

// ShardDump is the serialized output of one sharded study run: the
// digested entries for this shard's slice of the grid plus enough
// identity to validate a merge. Everything in it round-trips through
// JSON exactly (integer microsecond CCT maps, shortest-form float64),
// so a merged Summary reproduces single-process output byte for byte.
type ShardDump struct {
	Study string `json:"study"`
	Shard int    `json:"shard"`
	Of    int    `json:"of"`
	// Jobs is the FULL grid size (not this shard's share); a merge
	// across dumps with differing grids fails fast.
	Jobs int `json:"jobs"`
	// KeysHash fingerprints the grid identity (SHA-256 over every
	// job's Key() in index order), catching merges of shards produced
	// from different flag sets or study revisions.
	KeysHash string        `json:"keys_hash"`
	Entries  []sweep.Entry `json:"entries"`
}

// gridFingerprint hashes the study's expanded jobs: key, scheduler
// parameters, simulator configuration (including dereferenced
// dynamics/pipelining) and telemetry spec. Shards produced under
// drifted flags — a different -rate, -delta, -metrics setting — thus
// fail the merge instead of silently mixing physical configurations.
// Trace-mutation closures (Variant.Mutate) cannot be hashed; they are
// covered indirectly through the variant name in Key(). Config.Mode is
// deliberately NOT hashed: the engine equivalence contract makes tick
// and event runs byte-identical, so shards computed under either
// engine (-engine flag) merge interchangeably.
func gridFingerprint(jobs []sweep.Job) string {
	h := sha256.New()
	for _, j := range jobs {
		fmt.Fprintf(h, "%d:%s|params=%+v", j.Index, j.Key(), j.Params)
		c := j.Config
		fmt.Fprintf(h, "|delta=%v|rate=%v|horizon=%v|skipval=%t",
			c.Delta, c.PortRate, c.Horizon, c.SkipValidation)
		if c.Dynamics != nil {
			fmt.Fprintf(h, "|dyn=%+v", *c.Dynamics)
		}
		if c.Pipelining != nil {
			fmt.Fprintf(h, "|pipe=%+v", *c.Pipelining)
		}
		fmt.Fprintf(h, "|telemetry=%+v\n", j.Telemetry)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ShardDump packages a sharded run for merging: the same payload
// WriteShard serializes, as a struct, so transports other than files
// (the fleet wire protocol streams it over worker stdout) can carry
// it. Call it on the Result of st.Run(ctx, sh) with the same Sharded
// runner.
func (r *Result) ShardDump(sh Sharded) (*ShardDump, error) {
	if err := sh.validate(); err != nil {
		return nil, err
	}
	jobs := r.study.Jobs()
	dump := &ShardDump{
		Study:    r.study.name,
		Shard:    sh.Index,
		Of:       sh.Count,
		Jobs:     len(jobs),
		KeysHash: gridFingerprint(jobs),
		Entries:  r.summary.Entries(),
	}
	for _, e := range dump.Entries {
		if e.Index%sh.Count != sh.Index {
			return nil, fmt.Errorf("study %s: entry %d does not belong to shard %d/%d",
				r.study.name, e.Index, sh.Index, sh.Count)
		}
	}
	return dump, nil
}

// WriteShard exports a sharded run for later merging.
func (r *Result) WriteShard(w io.Writer, sh Sharded) error {
	dump, err := r.ShardDump(sh)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// ReadShard parses and shape-checks one shard dump. Decode failures
// are classified — an empty file, a truncated dump (the footprint of a
// worker killed mid-write) and malformed JSON each get a distinct
// cause — and a dump that parses but is structurally impossible
// (negative shard index, non-hex fingerprint, entries outside its own
// stripe) is rejected here rather than surfacing later as a confusing
// merge error. MergeShardDir wraps every error with the dump's path.
func ReadShard(rd io.Reader) (*ShardDump, error) {
	var dump ShardDump
	if err := json.NewDecoder(rd).Decode(&dump); err != nil {
		switch {
		case errors.Is(err, io.EOF):
			return nil, fmt.Errorf("study: bad shard dump: empty file (shard run produced no output?)")
		case errors.Is(err, io.ErrUnexpectedEOF):
			return nil, fmt.Errorf("study: bad shard dump: truncated JSON (interrupted or partial shard write?): %w", err)
		default:
			var syn *json.SyntaxError
			if errors.As(err, &syn) {
				return nil, fmt.Errorf("study: bad shard dump: corrupt JSON at byte %d: %w", syn.Offset, err)
			}
			return nil, fmt.Errorf("study: bad shard dump: %w", err)
		}
	}
	if err := dump.shape(); err != nil {
		return nil, fmt.Errorf("study: bad shard dump: %w", err)
	}
	return &dump, nil
}

// shape checks the dump's internal consistency — everything that can
// be validated without knowing the study it came from.
func (d *ShardDump) shape() error {
	switch {
	case d.Study == "":
		return fmt.Errorf("missing study name")
	case d.Of < 1:
		return fmt.Errorf("shard count %d < 1", d.Of)
	case d.Shard < 0 || d.Shard >= d.Of:
		return fmt.Errorf("shard index %d outside [0, %d)", d.Shard, d.Of)
	case d.Jobs < 1:
		return fmt.Errorf("grid size %d < 1", d.Jobs)
	}
	if len(d.KeysHash) != sha256.Size*2 {
		return fmt.Errorf("grid fingerprint %q is not a sha256 hex digest", d.KeysHash)
	}
	if _, err := hex.DecodeString(d.KeysHash); err != nil {
		return fmt.Errorf("grid fingerprint %q is not a sha256 hex digest", d.KeysHash)
	}
	for _, e := range d.Entries {
		if e.Index < 0 || e.Index >= d.Jobs {
			return fmt.Errorf("entry index %d outside the %d-job grid", e.Index, d.Jobs)
		}
		if e.Index%d.Of != d.Shard {
			return fmt.Errorf("entry %d does not belong to shard %d/%d", e.Index, d.Shard, d.Of)
		}
	}
	return nil
}

// Check validates the dump against the study it claims to belong to:
// name, grid size, and the grid fingerprint. This is the per-dump
// subset of the merge validation, exposed so a driver can reject a
// drifted or corrupt dump the moment it arrives (and retry the shard)
// instead of discovering it at merge time.
func (d *ShardDump) Check(st *Study) error {
	return d.check(st.name, len(st.Jobs()), st.Fingerprint())
}

// check is the allocation-shared core of Check and MergeShards: the
// caller supplies the study identity it already computed.
func (d *ShardDump) check(study string, jobs int, hash string) error {
	if err := d.shape(); err != nil {
		return fmt.Errorf("study %s: shard dump: %w", study, err)
	}
	switch {
	case d.Study != study:
		return fmt.Errorf("study %s: shard dump belongs to study %q", study, d.Study)
	case d.Jobs != jobs:
		return fmt.Errorf("study %s: shard %d/%d was produced from a %d-job grid, this study expands to %d",
			study, d.Shard, d.Of, d.Jobs, jobs)
	case d.KeysHash != hash:
		return fmt.Errorf("study %s: shard %d/%d grid fingerprint mismatch (different flags or study revision?)",
			study, d.Shard, d.Of)
	}
	return nil
}

// MergeShards reassembles a full study Result from shard dumps. It
// validates that the dumps belong to st (name, grid size, job-key
// fingerprint), that together they cover every shard of one i/n
// partition exactly once, and that every grid index is present — a
// merge is either provably complete or an error, never silently
// partial. The merged Result's summary renders and exports
// byte-identically to a single-process run of the same study.
func MergeShards(st *Study, dumps ...*ShardDump) (*Result, error) {
	if len(dumps) == 0 {
		return nil, fmt.Errorf("study %s: no shard dumps to merge", st.name)
	}
	jobs := st.Jobs()
	wantHash := gridFingerprint(jobs)
	of := dumps[0].Of
	seenShard := make(map[int]bool, len(dumps))
	sum := sweep.NewSummary()
	for _, d := range dumps {
		if err := d.check(st.name, len(jobs), wantHash); err != nil {
			return nil, err
		}
		switch {
		case d.Of != of:
			return nil, fmt.Errorf("study %s: mixed shard partitions (%d-way and %d-way)", st.name, of, d.Of)
		case seenShard[d.Shard]:
			return nil, fmt.Errorf("study %s: shard %d/%d supplied twice", st.name, d.Shard, of)
		}
		seenShard[d.Shard] = true
		if err := sum.Restore(d.Entries...); err != nil {
			return nil, fmt.Errorf("study %s: shard %d/%d: %w", st.name, d.Shard, of, err)
		}
	}
	if len(seenShard) != of {
		var missing []int
		for i := 0; i < of; i++ {
			if !seenShard[i] {
				missing = append(missing, i)
			}
		}
		return nil, fmt.Errorf("study %s: incomplete merge: missing shard(s) %v of %d", st.name, missing, of)
	}
	if sum.Len() != len(jobs) {
		return nil, fmt.Errorf("study %s: merge covers %d of %d jobs", st.name, sum.Len(), len(jobs))
	}
	return &Result{study: st, summary: sum}, nil
}

// fileSafe maps a study name onto a flat, glob-safe file stem: study
// names may be workload file paths (saath-sim names its ad-hoc grid
// after the trace), and path separators or glob metacharacters in a
// file name would scatter dumps outside the -out directory or break
// the merge glob. Merge validation matches on the dump's embedded
// study name and grid fingerprint, so the stem only has to be stable,
// not unique.
func fileSafe(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}

// ShardFileName is the canonical on-disk name for a shard dump.
func ShardFileName(study string, sh Sharded) string {
	return fmt.Sprintf("%s-shard-%d-of-%d.json", fileSafe(study), sh.Index, sh.Count)
}

// WriteShardFile writes the shard dump under dir (created if needed)
// with the canonical name, returning the path.
func (r *Result) WriteShardFile(dir string, sh Sharded) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ShardFileName(r.study.name, sh))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	err = r.WriteShard(f, sh)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	return path, nil
}

// MergeShardDir merges every shard dump of st found in dir (files
// matching "<study>-shard-*-of-*.json").
func MergeShardDir(st *Study, dir string) (*Result, error) {
	pattern := filepath.Join(dir, fileSafe(st.name)+"-shard-*-of-*.json")
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("study %s: no shard dumps matching %s", st.name, pattern)
	}
	sort.Strings(paths)
	dumps := make([]*ShardDump, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		d, err := ReadShard(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		dumps = append(dumps, d)
	}
	return MergeShards(st, dumps...)
}
