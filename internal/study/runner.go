package study

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"saath/internal/obs"
	"saath/internal/sweep"
)

// Runner is a pluggable execution backend for a study's jobs. A runner
// may execute a subset of the jobs (sharded backends), but it must
// preserve each job's grid Index — collectors key on it, and the merge
// step reassembles shards by it.
type Runner interface {
	Run(ctx context.Context, jobs []sweep.Job, collectors []sweep.Collector) (*sweep.Result, error)
}

// Pool runs every job in-process on the bounded worker pool of
// internal/sweep. The zero value uses default parallelism
// (runtime.NumCPU()).
type Pool struct {
	// Parallel bounds the worker pool; <=0 means runtime.NumCPU().
	Parallel int
	// Progress, if set, is called after every job completes.
	Progress sweep.ProgressFunc
	// Observer, when non-nil, collects the run's obs manifest (per-job
	// spans and engine counters). Out-of-band: attaching it never
	// changes study output.
	Observer *obs.Recorder
}

// Run implements Runner.
func (p Pool) Run(ctx context.Context, jobs []sweep.Job, collectors []sweep.Collector) (*sweep.Result, error) {
	return sweep.Run(ctx, jobs, sweep.Options{
		Parallel:   p.Parallel,
		Progress:   p.Progress,
		Collectors: collectors,
		Observer:   p.Observer,
	}), nil
}

// RunnerOpts carries the execution knobs a CLI hands every backend:
// parallelism, progress callback, and the out-of-band obs recorder.
type RunnerOpts struct {
	// Parallel bounds the worker pool; <=0 means runtime.NumCPU().
	Parallel int
	// Progress, if set, is called after every job completes.
	Progress sweep.ProgressFunc
	// Observer, when non-nil, collects the run's obs manifest.
	Observer *obs.Recorder
}

// RunnerFactory builds a Runner for one study execution. Factories see
// the study so backend-specific per-study configuration (the testbed's
// admission and port settings) can key off the study name.
type RunnerFactory func(st *Study, opts RunnerOpts) (Runner, error)

var (
	runnerMu  sync.Mutex
	factories = map[string]RunnerFactory{}
)

// RegisterRunner registers a named execution backend. Called from
// package init (the testbed registers "testbed"); duplicate names
// panic, like a duplicate scheduler registration would.
func RegisterRunner(name string, f RunnerFactory) {
	runnerMu.Lock()
	defer runnerMu.Unlock()
	if name == "" || f == nil {
		panic("study: RegisterRunner with empty name or nil factory")
	}
	if _, dup := factories[name]; dup {
		panic("study: duplicate runner " + name)
	}
	factories[name] = f
}

// RunnerNames lists the registered backends, sorted.
func RunnerNames() []string {
	runnerMu.Lock()
	defer runnerMu.Unlock()
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewRunnerFor builds the execution backend for a study: the study's
// declared runner (WithRunner) when it names one, an in-process Pool
// otherwise. This is the single construction point the CLIs and the
// fleet child share, so a catalog study that needs the real
// coordinator runs through it from every entry path.
func NewRunnerFor(st *Study, opts RunnerOpts) (Runner, error) {
	name := st.RunnerName()
	if name == "" {
		return Pool{Parallel: opts.Parallel, Progress: opts.Progress, Observer: opts.Observer}, nil
	}
	runnerMu.Lock()
	f := factories[name]
	runnerMu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("study %s: unknown runner %q (registered: %v)", st.Name(), name, RunnerNames())
	}
	return f(st, opts)
}

// RuntimeReporter is implemented by runners that measure the real
// system while executing (the testbed backend): the report carries
// wall-clock coordinator measurements, strictly out-of-band from the
// deterministic study output.
type RuntimeReporter interface {
	RuntimeReport() *obs.RuntimeReport
}

// Sharded runs shard Index of Count: the jobs whose grid index ≡ Index
// (mod Count), striped so every shard gets an even mix of the grid
// (contiguous splits would hand one shard all the expensive variants).
// Per-job RNG seeds derive from the job identity, never from what else
// runs in the process, so the union of all shards is byte-identical to
// a single-process run once merged (Result.WriteShard + MergeShards).
type Sharded struct {
	// Index is this process's shard number, in [0, Count).
	Index int
	// Count is the total number of shards (>= 1).
	Count int
	// Pool executes the shard's jobs in-process.
	Pool Pool
	// Runner, when non-nil, executes the shard's jobs instead of Pool —
	// how a testbed-backed study shards across processes.
	Runner Runner
}

// ParseShard parses the CLI "i/n" shard notation ("0/4" is the first
// of four shards). The whole string must be consumed — "1/2/4" is an
// error, not shard 1 of 2.
func ParseShard(s string) (Sharded, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Sharded{}, fmt.Errorf("study: bad shard %q (want i/n, e.g. 0/4)", s)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return Sharded{}, fmt.Errorf("study: bad shard index in %q: %w", s, err)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return Sharded{}, fmt.Errorf("study: bad shard count in %q: %w", s, err)
	}
	sh := Sharded{Index: i, Count: n}
	return sh, sh.validate()
}

func (s Sharded) validate() error {
	if s.Count < 1 {
		return fmt.Errorf("study: shard count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("study: shard index %d outside [0, %d)", s.Index, s.Count)
	}
	return nil
}

// Jobs returns the subset of jobs this shard owns, grid indices
// preserved.
func (s Sharded) Jobs(jobs []sweep.Job) []sweep.Job {
	var own []sweep.Job
	for _, j := range jobs {
		if j.Index%s.Count == s.Index {
			own = append(own, j)
		}
	}
	return own
}

// Run implements Runner: it executes only this shard's slice of the
// grid.
func (s Sharded) Run(ctx context.Context, jobs []sweep.Job, collectors []sweep.Collector) (*sweep.Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Runner != nil {
		return s.Runner.Run(ctx, s.Jobs(jobs), collectors)
	}
	return s.Pool.Run(ctx, s.Jobs(jobs), collectors)
}
