package study

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"saath/internal/obs"
	"saath/internal/sweep"
)

// Runner is a pluggable execution backend for a study's jobs. A runner
// may execute a subset of the jobs (sharded backends), but it must
// preserve each job's grid Index — collectors key on it, and the merge
// step reassembles shards by it.
type Runner interface {
	Run(ctx context.Context, jobs []sweep.Job, collectors []sweep.Collector) (*sweep.Result, error)
}

// Pool runs every job in-process on the bounded worker pool of
// internal/sweep. The zero value uses default parallelism
// (runtime.NumCPU()).
type Pool struct {
	// Parallel bounds the worker pool; <=0 means runtime.NumCPU().
	Parallel int
	// Progress, if set, is called after every job completes.
	Progress sweep.ProgressFunc
	// Observer, when non-nil, collects the run's obs manifest (per-job
	// spans and engine counters). Out-of-band: attaching it never
	// changes study output.
	Observer *obs.Recorder
}

// Run implements Runner.
func (p Pool) Run(ctx context.Context, jobs []sweep.Job, collectors []sweep.Collector) (*sweep.Result, error) {
	return sweep.Run(ctx, jobs, sweep.Options{
		Parallel:   p.Parallel,
		Progress:   p.Progress,
		Collectors: collectors,
		Observer:   p.Observer,
	}), nil
}

// Sharded runs shard Index of Count: the jobs whose grid index ≡ Index
// (mod Count), striped so every shard gets an even mix of the grid
// (contiguous splits would hand one shard all the expensive variants).
// Per-job RNG seeds derive from the job identity, never from what else
// runs in the process, so the union of all shards is byte-identical to
// a single-process run once merged (Result.WriteShard + MergeShards).
type Sharded struct {
	// Index is this process's shard number, in [0, Count).
	Index int
	// Count is the total number of shards (>= 1).
	Count int
	// Pool executes the shard's jobs in-process.
	Pool Pool
}

// ParseShard parses the CLI "i/n" shard notation ("0/4" is the first
// of four shards). The whole string must be consumed — "1/2/4" is an
// error, not shard 1 of 2.
func ParseShard(s string) (Sharded, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Sharded{}, fmt.Errorf("study: bad shard %q (want i/n, e.g. 0/4)", s)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return Sharded{}, fmt.Errorf("study: bad shard index in %q: %w", s, err)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return Sharded{}, fmt.Errorf("study: bad shard count in %q: %w", s, err)
	}
	sh := Sharded{Index: i, Count: n}
	return sh, sh.validate()
}

func (s Sharded) validate() error {
	if s.Count < 1 {
		return fmt.Errorf("study: shard count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("study: shard index %d outside [0, %d)", s.Index, s.Count)
	}
	return nil
}

// Jobs returns the subset of jobs this shard owns, grid indices
// preserved.
func (s Sharded) Jobs(jobs []sweep.Job) []sweep.Job {
	var own []sweep.Job
	for _, j := range jobs {
		if j.Index%s.Count == s.Index {
			own = append(own, j)
		}
	}
	return own
}

// Run implements Runner: it executes only this shard's slice of the
// grid.
func (s Sharded) Run(ctx context.Context, jobs []sweep.Job, collectors []sweep.Collector) (*sweep.Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s.Pool.Run(ctx, s.Jobs(jobs), collectors)
}
