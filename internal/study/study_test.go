package study

import (
	"context"
	"strings"
	"testing"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/sweep"
	"saath/internal/telemetry"
	"saath/internal/trace"

	_ "saath/internal/core"        // register saath
	_ "saath/internal/sched/aalo"  // register aalo
	_ "saath/internal/sched/uctcp" // register uc-tcp (catalog studies)
	_ "saath/internal/sched/varys" // register varys (catalog studies)
)

// tinySource is a small synthetic workload so a full study runs in
// well under a second even with -race.
func tinySource(name string) sweep.TraceSource {
	return sweep.SynthSource(name, func(seed int64) *trace.Trace {
		return trace.Synthesize(trace.SynthConfig{
			Seed: seed, NumPorts: 10, NumCoFlows: 16,
			MeanInterArrival: 20 * coflow.Millisecond,
			SingleFlowFrac:   0.25, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
			SmallFracNarrow: 0.8, SmallFracWide: 0.5,
			MinSmall: 100 * coflow.KB, MaxSmall: coflow.MB,
			MinLarge: coflow.MB, MaxLarge: 20 * coflow.MB,
		}, name)
	})
}

func tinyStudy(t *testing.T, opts ...Option) *Study {
	t.Helper()
	base := []Option{
		WithTraces(tinySource("tiny")),
		WithSchedulers("aalo", "saath"),
		WithSeeds(1, 2),
		WithBaseline("aalo"),
	}
	st, err := New("tiny-study", append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string // substring of the expected error
	}{
		{"no traces", []Option{WithSchedulers("saath")}, "no traces"},
		{"no schedulers", []Option{WithTraces(tinySource("t"))}, "no schedulers"},
		{"unknown scheduler", []Option{WithTraces(tinySource("t")), WithSchedulers("nope")}, "unknown scheduler"},
		{"duplicate scheduler", []Option{WithTraces(tinySource("t")), WithSchedulers("saath", "saath")}, "duplicate scheduler"},
		{"duplicate trace", []Option{WithTraces(tinySource("t"), tinySource("t")), WithSchedulers("saath")}, "duplicate trace"},
		{"duplicate seed", []Option{WithTraces(tinySource("t")), WithSchedulers("saath"), WithSeeds(3, 3)}, "duplicate seed"},
		{"duplicate variant", []Option{WithTraces(tinySource("t")), WithSchedulers("saath"),
			WithParamGrid(sweep.Variant{Name: "v"}, sweep.Variant{Name: "v"})}, "duplicate variant"},
		{"bad baseline", []Option{WithTraces(tinySource("t")), WithSchedulers("saath"), WithBaseline("aalo")}, "baseline"},
		{"bad variant scheduler", []Option{WithTraces(tinySource("t")),
			WithParamGrid(sweep.Variant{Name: "v", Schedulers: []string{"nope"}})}, "unknown scheduler"},
		{"probes in study config", []Option{WithTraces(tinySource("t")), WithSchedulers("saath"),
			WithSimConfig(sim.Config{Probes: []telemetry.Probe{telemetry.NewSuite(telemetry.Spec{})}})}, "probes"},
		{"probes in variant config", []Option{WithTraces(tinySource("t")), WithSchedulers("saath"),
			WithParamGrid(sweep.Variant{Name: "v",
				Config: sim.Config{Probes: []telemetry.Probe{telemetry.NewSuite(telemetry.Spec{})}}})}, "probes"},
	}
	for _, tc := range cases {
		if _, err := New("bad", tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := New(""); err == nil {
		t.Error("empty study name accepted")
	}
}

// TestVariantInheritance: variants that leave Params/Config zero
// inherit the study-level settings, so a parameter grid only spells
// out the knob it varies.
func TestVariantInheritance(t *testing.T) {
	p := sched.DefaultParams()
	p.DeadlineFactor = 7
	cfg := sim.Config{Delta: 16 * coflow.Millisecond, PortRate: coflow.GbpsRate(10)}
	explicit := sched.DefaultParams()
	st, err := New("inherit",
		WithTraces(tinySource("t")),
		WithSchedulers("saath"),
		WithParams(p),
		WithSimConfig(cfg),
		WithParamGrid(
			sweep.Variant{Name: "inherits"},
			sweep.Variant{Name: "explicit", Params: explicit, Config: sim.Config{Delta: 4 * coflow.Millisecond}},
		))
	if err != nil {
		t.Fatal(err)
	}
	jobs := st.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	if jobs[0].Params.DeadlineFactor != 7 || jobs[0].Config.Delta != 16*coflow.Millisecond {
		t.Errorf("inheriting variant: params/config not inherited: %+v %+v", jobs[0].Params, jobs[0].Config)
	}
	if jobs[1].Params.DeadlineFactor == 7 || jobs[1].Config.Delta != 4*coflow.Millisecond {
		t.Errorf("explicit variant overridden: %+v %+v", jobs[1].Params, jobs[1].Config)
	}
	// Config inheritance is per-field: spelling out Delta must not
	// silently reset the study-level PortRate.
	if jobs[1].Config.PortRate != coflow.GbpsRate(10) {
		t.Errorf("explicit-delta variant lost study PortRate: %+v", jobs[1].Config)
	}
}

// TestVariantSchedulerRestriction: a variant with its own scheduler
// list expands only those policies (the Fig 14e shape).
func TestVariantSchedulerRestriction(t *testing.T) {
	st := tinyStudy(t, WithParamGrid(
		sweep.Variant{Name: "both"},
		sweep.Variant{Name: "saath-only", Schedulers: []string{"saath"}},
	))
	jobs := st.Jobs()
	// 1 trace × (2 scheds + 1 sched) × 2 seeds
	if len(jobs) != 6 {
		t.Fatalf("jobs = %d, want 6", len(jobs))
	}
	for _, j := range jobs {
		if j.Variant == "saath-only" && j.Scheduler != "saath" {
			t.Errorf("restricted variant expanded %q", j.Scheduler)
		}
	}
}

func TestStudyRunDefaultTables(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.Run(context.Background(), Pool{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	tables, err := res.Tables()
	if err != nil {
		t.Fatal(err)
	}
	// Default derived view: CCT table + speedup table (baseline set,
	// telemetry off).
	if len(tables) != 2 {
		t.Fatalf("default tables = %d, want 2", len(tables))
	}
	var sb strings.Builder
	for _, tbl := range tables {
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"per-scheduler CCT", "speedup over aalo", "saath"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("default tables missing %q:\n%s", want, sb.String())
		}
	}
}

func TestDerivedCCTCDF(t *testing.T) {
	st := tinyStudy(t, WithDerived(DerivedCCTCDF("tiny", 10)))
	res, err := st.Run(context.Background(), Pool{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := res.Tables()
	if err != nil {
		t.Fatal(err)
	}
	// One CDF table per (trace, scheduler) cell.
	if len(tables) != 2 {
		t.Fatalf("cdf tables = %d, want 2", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 || len(tbl.Rows) > 10 {
			t.Errorf("%s: %d rows, want 1..10", tbl.Title, len(tbl.Rows))
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Sharded{
		"0/1": {Index: 0, Count: 1},
		"0/4": {Index: 0, Count: 4},
		"3/4": {Index: 3, Count: 4},
	}
	for in, want := range good {
		sh, err := ParseShard(in)
		if err != nil || sh.Index != want.Index || sh.Count != want.Count {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", in, sh, err, want)
		}
	}
	for _, in := range []string{"", "1", "a/b", "4/4", "-1/2", "1/0"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
}

// TestShardedPartition: the shards of a grid are a disjoint cover.
func TestShardedPartition(t *testing.T) {
	jobs := tinyStudy(t).Jobs()
	seen := make(map[int]int)
	for i := 0; i < 3; i++ {
		sh := Sharded{Index: i, Count: 3}
		for _, j := range sh.Jobs(jobs) {
			seen[j.Index]++
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("shards cover %d of %d jobs", len(seen), len(jobs))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("job %d owned by %d shards", idx, n)
		}
	}
}

// TestRegistryCatalog: the built-in catalog builds and validates with
// the policy packages this test links in.
func TestRegistryCatalog(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("catalog has %d studies: %v", len(names), names)
	}
	for _, n := range names {
		st, err := Build(n)
		if err != nil {
			t.Errorf("catalog study %s: %v", n, err)
			continue
		}
		if len(st.Jobs()) == 0 {
			t.Errorf("catalog study %s expands to no jobs", n)
		}
	}
	if _, err := Build("no-such-study"); err == nil {
		t.Error("unknown study name accepted")
	}
}
