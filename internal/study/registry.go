package study

import (
	"fmt"
	"sort"
	"sync"
)

// Builder constructs a registered study on demand. Builders run at
// lookup time (not registration), so their scheduler validation sees
// every policy package the binary linked in.
type Builder func() (*Study, error)

var (
	regMu    sync.Mutex
	registry = map[string]Builder{}
	regDesc  = map[string]string{}
)

// Register adds a named study to the registry (the `-study <name>`
// namespace of cmd/saath-sim and cmd/experiments). Re-registering a
// name panics — names are a flat global namespace.
func Register(name, description string, build Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || build == nil {
		panic("study: Register with empty name or nil builder")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("study: duplicate registration of %q", name))
	}
	registry[name] = build
	regDesc[name] = description
}

// Names lists the registered studies, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns a registered study's one-line description.
func Describe(name string) string {
	regMu.Lock()
	defer regMu.Unlock()
	return regDesc[name]
}

// Build constructs the named study, validating it against the policy
// registry of the calling binary.
func Build(name string) (*Study, error) {
	regMu.Lock()
	b, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("study: unknown study %q (registered: %v)", name, Names())
	}
	return b()
}
