package study

import (
	"context"
	"strings"
	"testing"
)

// TestFanDegreeShardMergeGolden is the ISSUE 5 acceptance pin for the
// scenario catalog: the registered fan-degree study run as shard 0/2 +
// shard 1/2 and merged (the exact pipeline behind `saath-sim -study
// fan-degree -shard i/2` + `-merge`) renders output byte-identical to
// the unsharded run — summary JSON, telemetry CSV/JSON, and every
// derived table including the new queue-transition and per-port
// heatmap views.
func TestFanDegreeShardMergeGolden(t *testing.T) {
	st, err := Build("fan-degree")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	whole, err := st.Run(ctx, Pool{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.Err(); err != nil {
		t.Fatal(err)
	}
	wantJS, wantCSV, wantMJS, wantTables := exports(t, whole)
	for _, want := range []string{"queue transitions", "heatmap", "deg=24,hot=2,skew=1"} {
		if !strings.Contains(wantTables, want) {
			t.Errorf("fan-degree tables missing %q", want)
		}
	}

	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		sh := Sharded{Index: i, Count: 2, Pool: Pool{Parallel: 4}}
		res, err := st.Run(ctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		if _, err := res.WriteShardFile(dir, sh); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeShardDir(st, dir)
	if err != nil {
		t.Fatal(err)
	}
	gotJS, gotCSV, gotMJS, gotTables := exports(t, merged)

	if gotJS != wantJS {
		t.Error("fan-degree summary JSON differs between sharded and unsharded runs")
	}
	if gotCSV != wantCSV {
		t.Error("fan-degree telemetry CSV differs between sharded and unsharded runs")
	}
	if gotMJS != wantMJS {
		t.Error("fan-degree telemetry JSON differs between sharded and unsharded runs")
	}
	if gotTables != wantTables {
		t.Errorf("fan-degree derived tables differ:\n--- single ---\n%s\n--- merged ---\n%s", wantTables, gotTables)
	}
}
