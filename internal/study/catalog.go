package study

import (
	"fmt"

	"saath/internal/coflow"
	"saath/internal/sim"
	"saath/internal/sweep"
	"saath/internal/telemetry"
	"saath/internal/trace"
)

// fanDegreeBase is the incast configuration the fan-degree study's
// variants specialize: modest scale (a full run of the 24-job grid
// stays in seconds) with enough load that hotspot queues visibly
// build. Degree/Hotspots/Skew are overwritten per variant.
func fanDegreeBase(seed int64) trace.FanConfig {
	return trace.FanConfig{
		Seed:             seed,
		NumPorts:         36,
		NumCoFlows:       90,
		MeanInterArrival: 20 * coflow.Millisecond,
		Degree:           12,
		Skew:             0.5,
		Hotspots:         4,
		MinSize:          coflow.MB,
		MaxSize:          96 * coflow.MB,
	}
}

// mixFBComponent is the trace-mix study's shuffle-shaped ingredient: a
// reduced FB-like draw sharing the incast component's 48-port space.
func mixFBComponent(seed int64) *trace.Trace {
	cfg := trace.DefaultFBConfig(seed)
	cfg.NumPorts = 48
	cfg.NumCoFlows = 220
	cfg.MaxLarge = 2 * coflow.GB // trim the tail so the ratio sweep runs in seconds
	return trace.Synthesize(cfg, "fb-mix")
}

// mixIncastComponent is the fan-in ingredient, matched to the same
// port space so the two workloads genuinely share hotspots.
func mixIncastComponent(seed int64) *trace.Trace {
	tr, err := trace.SynthesizeIncast(trace.FanConfig{
		Seed:             seed,
		NumPorts:         48,
		NumCoFlows:       220,
		MeanInterArrival: 20 * coflow.Millisecond,
		Degree:           10,
		Skew:             0.6,
		Hotspots:         5,
		MinSize:          coflow.MB,
		MaxSize:          128 * coflow.MB,
	}, "incast-mix")
	if err != nil {
		panic("study trace-mix: " + err.Error())
	}
	return tr
}

// capacityLoads is the capacity study's offered-rate grid, in
// multiples of the base rate of capacityCfg.
var capacityLoads = []float64{1, 2, 3, 4, 5, 6, 7, 8}

// capacityCfg is the capacity study's workload at load factor a: a
// fixed ~30s arrival window whose offered coflow rate scales with a
// (count × a, inter-arrival ÷ a). Scaling the rate at fixed window —
// rather than compressing a fixed trace — keeps work arriving for the
// whole window past saturation, so the backlog and P99 CCT grow
// without a batch-makespan ceiling and the knee is detectable. The
// fabric is sized (12 ports) so the grid's offered byte rate crosses
// aggregate capacity near its middle, and the size distribution is
// narrowed (32–128 MB instead of the FB 1 MB–20 GB span) so pre-knee
// P99 sits flat at the intrinsic service time — with the heavy FB
// tail, M/G/1-style waiting (∝ E[S²]) grows linearly in load from the
// first grid point and the curve never shows a corner to detect.
func capacityCfg(seed int64, a float64) trace.SynthConfig {
	cfg := trace.DefaultFBConfig(seed)
	cfg.NumPorts = 12
	cfg.NumCoFlows = int(150*a + 0.5)
	cfg.MeanInterArrival = coflow.Time(float64(200*coflow.Millisecond) / a)
	cfg.MinSmall = 32 * coflow.MB
	cfg.MaxSmall = 64 * coflow.MB
	cfg.MinLarge = 64 * coflow.MB
	cfg.MaxLarge = 128 * coflow.MB
	return cfg
}

// The catalog registers the canonical full-scale studies every binary
// with the policy packages linked in can run by name (saath-sim
// -study, experiments -study). Each is a plain declaration — the
// scenario PRs the ROADMAP calls for add entries here instead of
// hand-rolled loops.
func init() {
	Register("headline",
		"Fig 9-style headline: saath vs varys/aalo/uc-tcp on the FB and OSP workloads, 3 seeds",
		func() (*Study, error) {
			return New("headline",
				WithDescription("per-CoFlow CCT speedup using Saath over the paper's baselines"),
				WithTraces(
					sweep.SynthSource("fb", trace.SynthFB),
					sweep.SynthSource("osp", trace.SynthOSP),
				),
				WithSchedulers("aalo", "varys", "uc-tcp", "saath"),
				WithSeeds(1, 2, 3),
				WithBaseline("aalo"),
				WithDerived(
					DerivedCCT("headline — per-scheduler CCT"),
					DerivedSpeedup("headline — per-coflow speedup over aalo", ""),
					DerivedCCTCDF("headline", 25),
				),
			)
		})

	Register("incast-telemetry",
		"incast hotspot workload under aalo vs saath with full per-interval telemetry",
		func() (*Study, error) {
			return New("incast-telemetry",
				WithDescription("where the contention lives: queue buildup, HOL blocking and k_c on a fan-in workload"),
				WithTraces(sweep.SynthSource("incast", trace.SynthIncast)),
				WithSchedulers("aalo", "saath"),
				WithSeeds(1, 2),
				WithBaseline("aalo"),
				WithTelemetry(telemetry.Spec{Enabled: true}),
				WithDerived(
					DerivedCCT("incast-telemetry — per-scheduler CCT"),
					DerivedSpeedup("incast-telemetry — per-coflow speedup over aalo", ""),
					DerivedTelemetry("incast-telemetry — telemetry (per-interval)"),
				),
			)
		})

	Register("fan-degree",
		"incast fan-in sweep: degree × hotspot count × skew under aalo vs saath, with Fig. 4-style queue-transition and per-port heatmap telemetry",
		func() (*Study, error) {
			var variants []sweep.Variant
			for _, deg := range []int{4, 12, 24} {
				for _, hot := range []int{2, 6} {
					for _, skew := range []float64{0, 1} {
						deg, hot, skew := deg, hot, skew
						variants = append(variants, sweep.Variant{
							Name: fmt.Sprintf("deg=%d,hot=%d,skew=%g", deg, hot, skew),
							MutateSeeded: func(tr *trace.Trace, seed int64) {
								cfg := fanDegreeBase(seed)
								cfg.Degree, cfg.Hotspots, cfg.Skew = deg, hot, skew
								gen, err := trace.SynthesizeIncast(cfg, tr.Name)
								if err != nil {
									panic("study fan-degree: " + err.Error())
								}
								*tr = *gen
							},
						})
					}
				}
			}
			return New("fan-degree",
				WithDescription("how fan-in width and hotspot concentration drive queue buildup and CCT"),
				WithTraces(sweep.SynthSource("fan", func(seed int64) *trace.Trace {
					// Placeholder draw; every variant regenerates it with
					// its own degree/hotspot/skew point (MutateSeeded).
					gen, err := trace.SynthesizeIncast(fanDegreeBase(seed), "fan")
					if err != nil {
						panic("study fan-degree: " + err.Error())
					}
					return gen
				})),
				WithSchedulers("aalo", "saath"),
				WithParamGrid(variants...),
				WithBaseline("aalo"),
				WithTelemetry(telemetry.Spec{
					Enabled:          true,
					QueueTransitions: true,
					PerFlowPlacement: true,
					PortHeatmap:      true,
				}),
				WithDerived(
					DerivedCCT("fan-degree — per-variant CCT"),
					DerivedSpeedup("fan-degree — per-coflow speedup over aalo", ""),
					DerivedTelemetry("fan-degree — occupancy/HOL telemetry"),
					DerivedQueueTransitions("fan-degree — queue transitions (Fig. 4-style)"),
					DerivedPortHeatmap("fan-degree — per-port occupancy heatmap", 4),
				),
			)
		})

	Register("trace-mix",
		"fb + incast interleaved at swept mix ratios (trace.Mix), with queue-transition and heatmap telemetry",
		func() (*Study, error) {
			var sources []sweep.TraceSource
			for _, pct := range []int{0, 25, 50, 75, 100} {
				pct := pct
				name := fmt.Sprintf("mix-incast%d", pct)
				sources = append(sources, sweep.SynthSource(name, func(seed int64) *trace.Trace {
					tr, err := trace.Mix(name, trace.MixConfig{
						Seed:             seed,
						NumCoFlows:       220,
						MeanInterArrival: 25 * coflow.Millisecond,
					},
						trace.MixComponent{Name: "fb", Weight: float64(100 - pct), Gen: mixFBComponent},
						trace.MixComponent{Name: "incast", Weight: float64(pct), Gen: mixIncastComponent},
					)
					if err != nil {
						panic("study trace-mix: " + err.Error())
					}
					return tr
				}))
			}
			return New("trace-mix",
				WithDescription("how much fan-in a shuffle-dominated cluster absorbs before spatial contention dominates CCT"),
				WithTraces(sources...),
				WithSchedulers("aalo", "saath"),
				WithBaseline("aalo"),
				WithTelemetry(telemetry.Spec{
					Enabled:          true,
					QueueTransitions: true,
					PortHeatmap:      true,
				}),
				WithDerived(
					DerivedCCT("trace-mix — per-ratio CCT"),
					DerivedSpeedup("trace-mix — per-coflow speedup over aalo", ""),
					DerivedQueueTransitions("trace-mix — queue transitions (Fig. 4-style)"),
					DerivedPortHeatmap("trace-mix — per-port occupancy heatmap", 4),
				),
			)
		})

	Register("engine-mode",
		"tick vs event engine over the incast workload — the equivalence contract as a sweepable axis",
		func() (*Study, error) {
			return New("engine-mode",
				WithDescription("both run loops over the same grid: every derived row must be identical across modes"),
				WithTraces(sweep.SynthSource("incast", trace.SynthIncast)),
				WithSchedulers("aalo", "saath"),
				WithSeeds(1, 2),
				WithParamGrid(
					sweep.Variant{Name: "engine=tick"},
					sweep.Variant{Name: "engine=event", Config: sim.Config{Mode: sim.ModeEvent}},
				),
				WithBaseline("aalo"),
				WithTelemetry(telemetry.Spec{Enabled: true}),
				WithDerived(
					DerivedCCT("engine-mode — per-mode CCT"),
					DerivedSpeedup("engine-mode — per-coflow speedup over aalo", ""),
					DerivedTelemetry("engine-mode — telemetry (per-interval)"),
				),
			)
		})

	Register("capacity",
		"offered-rate sweep with knee detection: how many coflows/s each scheduler sustains before P99 CCT departs linearity",
		func() (*Study, error) {
			var variants []sweep.Variant
			for _, a := range capacityLoads {
				a := a
				variants = append(variants, sweep.Variant{
					Name: fmt.Sprintf("A=%g", a),
					MutateSeeded: func(tr *trace.Trace, seed int64) {
						*tr = *trace.Synthesize(capacityCfg(seed, a), tr.Name)
					},
				})
			}
			return New("capacity",
				WithDescription("saturation knee and sustainable coflows/s per scheduler on a reduced FB workload"),
				WithTraces(sweep.SynthSource("fb-cap", func(seed int64) *trace.Trace {
					// Placeholder draw; every variant regenerates it at its
					// own offered rate (MutateSeeded).
					return trace.Synthesize(capacityCfg(seed, 1), "fb-cap")
				})),
				WithSchedulers("aalo", "saath"),
				WithSeeds(1, 2),
				WithParamGrid(variants...),
				WithBaseline("aalo"),
				WithDerived(
					DerivedCCT("capacity — per-load CCT"),
					DerivedCapacity("capacity — throughput/latency per cell"),
					DerivedSaturation("capacity — saturation knee & sustainable load", 0),
				),
			)
		})

	Register("delta-sensitivity",
		"Fig 14c-style sweep of the sync interval δ on the FB workload",
		func() (*Study, error) {
			var variants []sweep.Variant
			for _, d := range []coflow.Time{2, 4, 8, 12, 16, 20} {
				variants = append(variants, sweep.Variant{
					Name:   fmt.Sprintf("delta=%dms", d),
					Config: sim.Config{Delta: d * coflow.Millisecond},
				})
			}
			return New("delta-sensitivity",
				WithDescription("how coarse the coordination interval can get before the speedup decays"),
				WithTraces(sweep.SynthSource("fb", trace.SynthFB)),
				WithSchedulers("aalo", "saath"),
				WithParamGrid(variants...),
				WithBaseline("aalo"),
				WithDerived(
					DerivedCCT("delta-sensitivity — per-scheduler CCT"),
					DerivedSpeedup("delta-sensitivity — per-coflow speedup over aalo", ""),
				),
			)
		})
}
