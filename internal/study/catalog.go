package study

import (
	"fmt"

	"saath/internal/coflow"
	"saath/internal/sim"
	"saath/internal/sweep"
	"saath/internal/telemetry"
	"saath/internal/trace"
)

// The catalog registers the canonical full-scale studies every binary
// with the policy packages linked in can run by name (saath-sim
// -study, experiments -study). Each is a plain declaration — the
// scenario PRs the ROADMAP calls for add entries here instead of
// hand-rolled loops.
func init() {
	Register("headline",
		"Fig 9-style headline: saath vs varys/aalo/uc-tcp on the FB and OSP workloads, 3 seeds",
		func() (*Study, error) {
			return New("headline",
				WithDescription("per-CoFlow CCT speedup using Saath over the paper's baselines"),
				WithTraces(
					sweep.SynthSource("fb", trace.SynthFB),
					sweep.SynthSource("osp", trace.SynthOSP),
				),
				WithSchedulers("aalo", "varys", "uc-tcp", "saath"),
				WithSeeds(1, 2, 3),
				WithBaseline("aalo"),
				WithDerived(
					DerivedCCT("headline — per-scheduler CCT"),
					DerivedSpeedup("headline — per-coflow speedup over aalo", ""),
					DerivedCCTCDF("headline", 25),
				),
			)
		})

	Register("incast-telemetry",
		"incast hotspot workload under aalo vs saath with full per-interval telemetry",
		func() (*Study, error) {
			return New("incast-telemetry",
				WithDescription("where the contention lives: queue buildup, HOL blocking and k_c on a fan-in workload"),
				WithTraces(sweep.SynthSource("incast", trace.SynthIncast)),
				WithSchedulers("aalo", "saath"),
				WithSeeds(1, 2),
				WithBaseline("aalo"),
				WithTelemetry(telemetry.Spec{Enabled: true}),
				WithDerived(
					DerivedCCT("incast-telemetry — per-scheduler CCT"),
					DerivedSpeedup("incast-telemetry — per-coflow speedup over aalo", ""),
					DerivedTelemetry("incast-telemetry — telemetry (per-interval)"),
				),
			)
		})

	Register("delta-sensitivity",
		"Fig 14c-style sweep of the sync interval δ on the FB workload",
		func() (*Study, error) {
			var variants []sweep.Variant
			for _, d := range []coflow.Time{2, 4, 8, 12, 16, 20} {
				variants = append(variants, sweep.Variant{
					Name:   fmt.Sprintf("delta=%dms", d),
					Config: sim.Config{Delta: d * coflow.Millisecond},
				})
			}
			return New("delta-sensitivity",
				WithDescription("how coarse the coordination interval can get before the speedup decays"),
				WithTraces(sweep.SynthSource("fb", trace.SynthFB)),
				WithSchedulers("aalo", "saath"),
				WithParamGrid(variants...),
				WithBaseline("aalo"),
				WithDerived(
					DerivedCCT("delta-sensitivity — per-scheduler CCT"),
					DerivedSpeedup("delta-sensitivity — per-coflow speedup over aalo", ""),
				),
			)
		})
}
