// Package study is the declarative experiment layer over the sweep,
// telemetry and report subsystems: one composable description of a
// paper-style evaluation — workloads × schedulers × parameter grid ×
// seeds, optional per-interval telemetry, and the derived tables
// (CCT comparisons, speedup summaries, CDFs, telemetry condensates)
// that turn raw runs into figures.
//
// A Study is built once with New and functional options, validated at
// construction (unknown schedulers, duplicate names or seeds, and
// baseline typos fail before any simulation runs), compiled to a
// sweep.Grid, and executed on a pluggable Runner:
//
//	st, err := study.New("headline",
//	    study.WithTraces(sweep.SynthSource("fb", trace.SynthFB)),
//	    study.WithSchedulers("aalo", "saath"),
//	    study.WithSeeds(1, 2, 3),
//	    study.WithBaseline("aalo"),
//	    study.WithDerived(
//	        study.DerivedCCT("per-scheduler CCT"),
//	        study.DerivedSpeedup("speedup over aalo", ""),
//	    ))
//	res, err := st.Run(ctx, study.Pool{Parallel: 8})
//	tables, err := res.Tables()
//
// Two runners ship with the package: Pool (the in-process bounded
// worker pool of internal/sweep) and Sharded (the i-of-n partition of
// the same grid, for spreading a full-scale study across processes or
// machines). Shard outputs merge deterministically — the merged
// summary and telemetry exports are byte-identical to a single-process
// run; see shard.go and the golden test.
package study

import (
	"context"
	"fmt"

	"saath/internal/obs"
	"saath/internal/report"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/stats"
	"saath/internal/sweep"
	"saath/internal/telemetry"
)

// Study is a validated, immutable experiment declaration. Build one
// with New; the zero value is not usable.
type Study struct {
	name        string
	description string
	traces      []sweep.TraceSource
	schedulers  []string
	seeds       []int64
	variants    []sweep.Variant
	params      sched.Params
	paramsSet   bool
	config      sim.Config
	telemetry   telemetry.Spec
	baseline    string
	derived     []Derived
	runner      string
}

// Option configures a Study under construction. Options returning an
// error abort New.
type Option func(*Study) error

// New builds and validates a Study. Validation is structural — it
// catches the mistakes that would otherwise surface mid-sweep or, in
// the worst case, silently corrupt aggregation: no workloads, unknown
// or duplicate scheduler names, duplicate trace/variant names or seeds
// (which would collide job keys and thus derived RNG streams), and a
// baseline that is not part of the study.
func New(name string, opts ...Option) (*Study, error) {
	if name == "" {
		return nil, fmt.Errorf("study: empty name")
	}
	st := &Study{name: name}
	for _, opt := range opts {
		if err := opt(st); err != nil {
			return nil, fmt.Errorf("study %s: %w", name, err)
		}
	}
	if err := st.validate(); err != nil {
		return nil, fmt.Errorf("study %s: %w", name, err)
	}
	return st, nil
}

// WithDescription attaches a one-line human description (shown by the
// CLI study listings).
func WithDescription(d string) Option {
	return func(st *Study) error { st.description = d; return nil }
}

// WithTraces appends workload sources (see sweep.FixedTrace and
// sweep.SynthSource). At least one is required.
func WithTraces(traces ...sweep.TraceSource) Option {
	return func(st *Study) error {
		st.traces = append(st.traces, traces...)
		return nil
	}
}

// WithSchedulers appends scheduling policies, validated against the
// registry at construction time. At least one is required (directly or
// via a variant's scheduler restriction).
func WithSchedulers(names ...string) Option {
	return func(st *Study) error {
		st.schedulers = append(st.schedulers, names...)
		return nil
	}
}

// WithSeeds appends grid seeds (default {1}). Synthetic workloads are
// regenerated per seed and statistics pool across the draws.
func WithSeeds(seeds ...int64) Option {
	return func(st *Study) error {
		st.seeds = append(st.seeds, seeds...)
		return nil
	}
}

// WithParams sets the scheduler parameters used by variants that do
// not carry their own (default sched.DefaultParams()).
func WithParams(p sched.Params) Option {
	return func(st *Study) error { st.params, st.paramsSet = p, true; return nil }
}

// WithSimConfig sets the simulator configuration used by variants that
// do not carry their own.
func WithSimConfig(cfg sim.Config) Option {
	return func(st *Study) error { st.config = cfg; return nil }
}

// WithParamGrid appends parameter variants — named (params, config,
// trace-mutation, optional scheduler restriction) points the grid
// crosses with traces, seeds and schedulers. Without it the study runs
// a single unnamed variant built from WithParams/WithSimConfig.
func WithParamGrid(variants ...sweep.Variant) Option {
	return func(st *Study) error {
		st.variants = append(st.variants, variants...)
		return nil
	}
}

// WithTelemetry attaches a per-interval telemetry suite to every job
// of the study (per-job seeds are derived from the job identity, so
// exports stay deterministic at any parallelism or sharding).
func WithTelemetry(spec telemetry.Spec) Option {
	return func(st *Study) error { st.telemetry = spec; return nil }
}

// WithBaseline names the scheduler that derived speedup tables compare
// against. It must be one of the study's schedulers.
func WithBaseline(scheduler string) Option {
	return func(st *Study) error { st.baseline = scheduler; return nil }
}

// WithRunner names the execution backend the study requires (see
// RegisterRunner); "" keeps the default in-process Pool. Validation is
// lazy — the registry is consulted by NewRunnerFor at execution time,
// not here, because catalog packages register studies and runners in
// the same init pass.
func WithRunner(name string) Option {
	return func(st *Study) error { st.runner = name; return nil }
}

// WithDerived appends derived-output builders, rendered in declaration
// order by Result.Tables.
func WithDerived(d ...Derived) Option {
	return func(st *Study) error {
		st.derived = append(st.derived, d...)
		return nil
	}
}

// validate enforces the structural invariants New promises.
func (st *Study) validate() error {
	if len(st.traces) == 0 {
		return fmt.Errorf("no traces (use WithTraces)")
	}
	// Probes in a grid config would be shared across every parallel
	// job — the exact cross-job race WithProbe / Grid.Telemetry exist
	// to prevent (see the sweep.Grid doc). Per-job collection goes
	// through WithTelemetry, which derives a fresh suite per job.
	if len(st.config.Probes) > 0 {
		return fmt.Errorf("WithSimConfig carries probes; use WithTelemetry (probes in a grid config are shared across jobs)")
	}
	for _, v := range st.variants {
		if len(v.Config.Probes) > 0 {
			return fmt.Errorf("variant %q config carries probes; use WithTelemetry", v.Name)
		}
	}
	// Same sharing hazard for engine counters: one instance in a grid
	// config would sum every parallel job's counts into it. Per-job
	// counters come from the sweep observer (Pool.Observer).
	if st.config.Counters != nil {
		return fmt.Errorf("WithSimConfig carries engine counters; use Pool.Observer (counters in a grid config are shared across jobs)")
	}
	for _, v := range st.variants {
		if v.Config.Counters != nil {
			return fmt.Errorf("variant %q config carries engine counters; use Pool.Observer", v.Name)
		}
	}
	seenTrace := make(map[string]bool, len(st.traces))
	for _, ts := range st.traces {
		if ts.Name == "" {
			return fmt.Errorf("trace source with empty name")
		}
		if ts.Gen == nil {
			return fmt.Errorf("trace source %q has no generator", ts.Name)
		}
		if seenTrace[ts.Name] {
			return fmt.Errorf("duplicate trace name %q", ts.Name)
		}
		seenTrace[ts.Name] = true
	}

	registered := make(map[string]bool)
	for _, n := range sched.Names() {
		registered[n] = true
	}
	checkScheds := func(names []string, scope string) error {
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			if !registered[n] {
				return fmt.Errorf("%s: unknown scheduler %q (registered: %v)", scope, n, sched.Names())
			}
			if seen[n] {
				return fmt.Errorf("%s: duplicate scheduler %q", scope, n)
			}
			seen[n] = true
		}
		return nil
	}
	if err := checkScheds(st.schedulers, "schedulers"); err != nil {
		return err
	}

	needGlobal := len(st.variants) == 0
	seenVariant := make(map[string]bool, len(st.variants))
	for _, v := range st.variants {
		if seenVariant[v.Name] {
			return fmt.Errorf("duplicate variant name %q", v.Name)
		}
		seenVariant[v.Name] = true
		if len(v.Schedulers) == 0 {
			needGlobal = true
			continue
		}
		if err := checkScheds(v.Schedulers, "variant "+v.Name); err != nil {
			return err
		}
	}
	if needGlobal && len(st.schedulers) == 0 {
		return fmt.Errorf("no schedulers (use WithSchedulers)")
	}

	seenSeed := make(map[int64]bool, len(st.seeds))
	for _, s := range st.seeds {
		if seenSeed[s] {
			return fmt.Errorf("duplicate seed %d", s)
		}
		seenSeed[s] = true
	}

	if st.baseline != "" {
		found := false
		for _, n := range st.allSchedulers() {
			if n == st.baseline {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("baseline %q is not one of the study's schedulers", st.baseline)
		}
	}
	return nil
}

// allSchedulers returns every scheduler the study can run, global list
// first, then variant-restricted extras in declaration order.
func (st *Study) allSchedulers() []string {
	out := append([]string(nil), st.schedulers...)
	seen := make(map[string]bool, len(out))
	for _, n := range out {
		seen[n] = true
	}
	for _, v := range st.variants {
		for _, n := range v.Schedulers {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// Name returns the study's name.
func (st *Study) Name() string { return st.name }

// Description returns the one-line description (may be empty).
func (st *Study) Description() string { return st.description }

// Baseline returns the speedup baseline scheduler ("" if unset).
func (st *Study) Baseline() string { return st.baseline }

// RunnerName returns the execution backend the study declared with
// WithRunner ("" means the default Pool).
func (st *Study) RunnerName() string { return st.runner }

// Grid compiles the study to the sweep grid it executes. Variants
// inherit study-level settings for whatever they left unset — Params
// as a whole (a zero Params is not a valid configuration), Config
// field by field — so a parameter grid only spells out the knob it
// varies: a variant setting Delta still runs at the study's PortRate.
func (st *Study) Grid() sweep.Grid {
	variants := make([]sweep.Variant, len(st.variants))
	for i, v := range st.variants {
		if v.Params == (sched.Params{}) {
			v.Params = st.effectiveParams()
		}
		v.Config = mergeConfig(v.Config, st.config)
		variants[i] = v
	}
	return sweep.Grid{
		Traces:     st.traces,
		Schedulers: st.schedulers,
		Seeds:      st.seeds,
		Variants:   variants,
		Params:     st.effectiveParams(),
		Config:     st.config,
		Telemetry:  st.telemetry,
	}
}

// mergeConfig fills v's zero-valued fields from the study-level base.
// A variant can override but not un-set: SkipValidation true at study
// level stays true, and a study-level ModeEvent applies to variants
// that left Mode at the default.
func mergeConfig(v, base sim.Config) sim.Config {
	if v.Mode == sim.ModeTick {
		v.Mode = base.Mode
	}
	if v.Delta == 0 {
		v.Delta = base.Delta
	}
	if v.PortRate == 0 {
		v.PortRate = base.PortRate
	}
	if v.Horizon == 0 {
		v.Horizon = base.Horizon
	}
	if !v.SkipValidation {
		v.SkipValidation = base.SkipValidation
	}
	if v.Dynamics == nil {
		v.Dynamics = base.Dynamics
	}
	if v.Pipelining == nil {
		v.Pipelining = base.Pipelining
	}
	// Probes and Counters need no merge: validate rejects both in study
	// and variant configs (per-job collection goes through WithTelemetry
	// and Pool.Observer respectively).
	return v
}

// InEngineMode returns a copy of the study with every job forced to
// engine mode m: the study-level config and each variant's override.
// Job identities (keys, derived telemetry/RNG seeds) do not include
// the engine mode, so by the engine equivalence contract the copy's
// output is byte-identical to the original's — this is what the CLIs'
// -engine flag rides on, and what the cross-mode goldens pin.
func (st *Study) InEngineMode(m sim.Mode) *Study {
	cp := *st
	cp.config.Mode = m
	cp.variants = append([]sweep.Variant(nil), st.variants...)
	for i := range cp.variants {
		cp.variants[i].Config.Mode = m
	}
	return &cp
}

func (st *Study) effectiveParams() sched.Params {
	if st.paramsSet {
		return st.params
	}
	return sched.DefaultParams()
}

// Jobs expands the compiled grid in deterministic order (see
// sweep.Grid.Jobs). Every call re-expands; the jobs are cheap
// closures, not simulations.
func (st *Study) Jobs() []sweep.Job { return st.Grid().Jobs() }

// Fingerprint hashes the study's expanded grid — the identity a shard
// dump must match to merge (see ShardDump.KeysHash). Deliberately
// engine-mode-blind: by the equivalence contract, dumps computed under
// either run loop merge interchangeably.
func (st *Study) Fingerprint() string { return gridFingerprint(st.Jobs()) }

// Run executes the study on the given runner (nil: an in-process Pool
// with default parallelism) and aggregates into a Summary. The
// returned error covers structural failures only — per-job simulation
// errors are recorded in the Result (see Result.Err) so partial sweeps
// still render.
func (st *Study) Run(ctx context.Context, r Runner) (*Result, error) {
	if r == nil {
		r = Pool{}
	}
	sum := sweep.NewSummary()
	res, err := r.Run(ctx, st.Jobs(), []sweep.Collector{sum})
	if err != nil {
		return nil, fmt.Errorf("study %s: %w", st.name, err)
	}
	return &Result{study: st, summary: sum, sweep: res}, nil
}

// Result is one study execution: the aggregate summary plus, for live
// (non-merged) runs, the raw sweep result. Results reconstructed from
// shard dumps have a nil Sweep.
type Result struct {
	study   *Study
	summary *sweep.Summary
	sweep   *sweep.Result
}

// Study returns the declaration this result was produced from.
func (r *Result) Study() *Study { return r.study }

// Summary returns the aggregate collector (tables, JSON/CSV exports).
func (r *Result) Summary() *sweep.Summary { return r.summary }

// Sweep returns the raw per-job results in grid order, or nil for a
// result merged from shards.
func (r *Result) Sweep() *sweep.Result { return r.sweep }

// Err returns the first failed job's error in grid order (nil if every
// executed job succeeded). Merged results report errors recorded in
// the shard digests.
func (r *Result) Err() error {
	if r.sweep != nil {
		return r.sweep.FirstErr()
	}
	for _, e := range r.summary.Entries() {
		if e.Metrics.Error != "" {
			return fmt.Errorf("study %s: job %s|%s|%d|%s: %s", r.study.name,
				e.Metrics.Trace, e.Metrics.Variant, e.Metrics.Seed, e.Metrics.Scheduler, e.Metrics.Error)
		}
	}
	return nil
}

// Tables renders the study's derived outputs in declaration order.
// Studies with no WithDerived get the default view: a CCT table, a
// speedup table when a baseline is set, and a telemetry table when
// telemetry is enabled.
func (r *Result) Tables() ([]*report.Table, error) {
	derived := r.study.derived
	if len(derived) == 0 {
		derived = r.defaultDerived()
	}
	var out []*report.Table
	for _, d := range derived {
		tables, err := d(r.study, r.summary)
		if err != nil {
			return nil, fmt.Errorf("study %s: %w", r.study.name, err)
		}
		out = append(out, tables...)
	}
	return out, nil
}

func (r *Result) defaultDerived() []Derived {
	d := []Derived{DerivedCCT(r.study.name + " — per-scheduler CCT")}
	if r.study.baseline != "" {
		d = append(d, DerivedSpeedup(fmt.Sprintf("%s — per-coflow speedup over %s", r.study.name, r.study.baseline), ""))
	}
	if r.study.telemetry.Enabled {
		d = append(d, DerivedTelemetry(r.study.name+" — telemetry (per-interval)"))
	}
	return d
}

// Derived computes tables from a study's aggregated summary. Derived
// functions see only deterministic state (the Summary's grid-order
// entries), so their output is identical for live, parallel and merged
// shard executions of the same study.
type Derived func(st *Study, sum *sweep.Summary) ([]*report.Table, error)

// DerivedCCT renders the per-(workload, scheduler) CCT statistics
// table with seeds pooled.
func DerivedCCT(title string) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		return []*report.Table{sum.CCTTable(title)}, nil
	}
}

// DerivedSpeedup renders the per-CoFlow speedup distribution of every
// other scheduler over baseline ("" uses the study baseline), matched
// per (trace, variant, seed).
func DerivedSpeedup(title, baseline string) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		if baseline == "" {
			baseline = st.baseline
		}
		if baseline == "" {
			return nil, fmt.Errorf("derived speedup %q: no baseline (set WithBaseline)", title)
		}
		return []*report.Table{sum.SpeedupTable(title, baseline)}, nil
	}
}

// DerivedTelemetry renders the pooled per-interval telemetry
// condensate (queue occupancy, HOL blocking, contention quantiles).
func DerivedTelemetry(title string) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		return []*report.Table{sum.TelemetryTable(title)}, nil
	}
}

// DerivedQueueTransitions renders the pooled Fig. 4-style
// queue-transition table: promotions/demotions between priority
// queues and the queue-level distribution per (workload, scheduler)
// cell. The study's telemetry spec must set QueueTransitions.
func DerivedQueueTransitions(title string) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		return []*report.Table{sum.QueueTransitionTable(title)}, nil
	}
}

// DerivedPortHeatmap renders the pooled per-port occupancy heatmap:
// the hottest maxPorts egress and ingress ports of every (workload,
// scheduler) cell with their occupancy-bucket time fractions. The
// study's telemetry spec must set PortHeatmap.
func DerivedPortHeatmap(title string, maxPorts int) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		return []*report.Table{sum.PortHeatmapTable(title, maxPorts)}, nil
	}
}

// DerivedCapacity renders the per-(workload, scheduler) capacity
// table: completed coflows per simulated second, pooled CCT
// percentiles, cluster size.
func DerivedCapacity(title string) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		return []*report.Table{obs.CapacityTable(title, sum.CapacityCells())}, nil
	}
}

// DerivedSaturation runs knee detection over the study's load axis
// (numeric variant or trace-name sweeps — see obs.AxisValue) and
// renders the saturation table: where each scheduler's P99 CCT departs
// linearity and the sustainable coflows/s at that cluster size.
// tol <= 0 uses obs.DefaultKneeTolerance. Purely derived — identical
// for live, parallel and merged shard executions.
func DerivedSaturation(title string, tol float64) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		series := obs.SaturationSeriesOf(sum.CapacityCells(), tol)
		if len(series) == 0 {
			return nil, fmt.Errorf("derived saturation %q: no numeric load axis in study %s (sweep a rate or degree parameter)", title, st.name)
		}
		return []*report.Table{obs.SaturationTable(title, series)}, nil
	}
}

// DerivedCapacityReport renders the full capacity report — the
// per-cell table, the saturation/knee table (with a hint row when the
// study has no numeric load axis), and the per-point load-curve
// detail. This is what the CLIs' -observe flag renders.
func DerivedCapacityReport(title string, tol float64) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		return obs.CapacityReport(title, sum.CapacityCells(), tol), nil
	}
}

// DerivedCCTCDF renders one empirical-CDF table per (workload,
// variant, scheduler) cell, seeds pooled, downsampled to maxRows — the
// shape of the paper's CDF figures, computed from the study itself.
func DerivedCCTCDF(titlePrefix string, maxRows int) Derived {
	return func(st *Study, sum *sweep.Summary) ([]*report.Table, error) {
		var out []*report.Table
		for _, g := range sum.CCTGroups() {
			out = append(out, report.SampledCDFTable(
				fmt.Sprintf("%s — CCT CDF (%s, %s)", titlePrefix, g.Label, g.Scheduler),
				"cct (s)", stats.CDF(g.CCTs), maxRows))
		}
		return out, nil
	}
}
