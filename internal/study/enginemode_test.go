package study

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"saath/internal/sim"
	"saath/internal/sweep"
)

// TestInEngineModeCrossModeShardGolden is the study-layer half of the
// engine equivalence contract: the same registered study run (a) whole
// in tick mode, (b) whole in event mode via InEngineMode, and (c) in
// event mode as shard 0/2 + shard 1/2 merged, must export byte-
// identical output — summary JSON, telemetry CSV/JSON, every derived
// table. Job keys do not include the engine mode, so telemetry and
// RNG seed derivation line up across modes by construction.
func TestInEngineModeCrossModeShardGolden(t *testing.T) {
	st, err := Build("incast-telemetry")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	tick, err := st.InEngineMode(sim.ModeTick).Run(ctx, Pool{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tick.Err(); err != nil {
		t.Fatal(err)
	}
	wantJS, wantCSV, wantMJS, wantTables := exports(t, tick)

	evStudy := st.InEngineMode(sim.ModeEvent)
	event, err := evStudy.Run(ctx, Pool{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := event.Err(); err != nil {
		t.Fatal(err)
	}
	gotJS, gotCSV, gotMJS, gotTables := exports(t, event)
	if gotJS != wantJS {
		t.Error("summary JSON differs between tick and event modes")
	}
	if gotCSV != wantCSV {
		t.Error("telemetry CSV differs between tick and event modes")
	}
	if gotMJS != wantMJS {
		t.Error("telemetry JSON differs between tick and event modes")
	}
	if gotTables != wantTables {
		t.Errorf("derived tables differ across modes:\n--- tick ---\n%s\n--- event ---\n%s", wantTables, gotTables)
	}

	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		sh := Sharded{Index: i, Count: 2, Pool: Pool{Parallel: 2}}
		res, err := evStudy.Run(ctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		if _, err := res.WriteShardFile(dir, sh); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeShardDir(evStudy, dir)
	if err != nil {
		t.Fatal(err)
	}
	mJS, mCSV, mMJS, mTables := exports(t, merged)
	if mJS != wantJS || mCSV != wantCSV || mMJS != wantMJS || mTables != wantTables {
		t.Error("event-mode shard+merge output differs from the tick-mode whole run")
	}
}

// TestEngineModeCatalogStudy runs the registered engine-mode study —
// tick and event as grid variants — and requires each (trace, seed,
// scheduler) cell to report identical numbers under both variants.
// (Telemetry exports are excluded: per-job telemetry seeds derive from
// the job key, which includes the variant name.)
func TestEngineModeCatalogStudy(t *testing.T) {
	st, err := Build("engine-mode")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run(context.Background(), Pool{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	type cell struct{ trace, scheduler string }
	type seedCell struct {
		cell
		seed int64
	}
	byVariant := map[string]map[seedCell]json.RawMessage{}
	for _, e := range res.Summary().Entries() {
		key := seedCell{cell{e.Metrics.Trace, e.Metrics.Scheduler}, e.Metrics.Seed}
		m := e.Metrics
		variant := m.Variant
		m.Variant = "" // compare everything but the axis label
		blob, err := json.Marshal(struct {
			M sweep.JobMetrics
			C []float64
		}{m, e.CCTs})
		if err != nil {
			t.Fatal(err)
		}
		if byVariant[variant] == nil {
			byVariant[variant] = map[seedCell]json.RawMessage{}
		}
		byVariant[variant][key] = blob
	}
	tick, event := byVariant["engine=tick"], byVariant["engine=event"]
	if len(tick) == 0 || len(event) == 0 || len(tick) != len(event) {
		t.Fatalf("variant cells: tick %d, event %d", len(tick), len(event))
	}
	for key, want := range tick {
		got, ok := event[key]
		if !ok {
			t.Errorf("cell %+v missing from event variant", key)
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("cell %+v differs across engine modes:\n tick: %s\nevent: %s", key, want, got)
		}
	}
	_, _, _, tables := exports(t, res)
	for _, want := range []string{"engine=tick", "engine=event"} {
		if !strings.Contains(tables, want) {
			t.Errorf("engine-mode tables missing %q", want)
		}
	}
}
