package study

import (
	"bytes"
	"context"
	"io"
	"testing"

	"saath/internal/obs"
	"saath/internal/sim"
	"saath/internal/sweep"
)

// TestObservabilityNeutralGolden is the tentpole acceptance golden:
// every deterministic export of a study — summary JSON, telemetry CSV
// and JSON, derived tables — is byte-identical with observability
// fully enabled (recorder + aggregate progress meter) at any
// parallelism, and under shard + merge with observers attached to
// every shard.
func TestObservabilityNeutralGolden(t *testing.T) {
	st := shardStudy(t)
	ctx := context.Background()

	bare, err := st.Run(ctx, Pool{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.Err(); err != nil {
		t.Fatal(err)
	}
	wantJS, wantCSV, wantMJS, wantTables := exports(t, bare)

	// Parallel run with the full observability stack attached.
	rec := obs.NewRecorder(st.Name())
	observed, err := st.Run(ctx, Pool{
		Parallel: 8,
		Observer: rec,
		Progress: sweep.CLIProgress(true, io.Discard, st.Jobs()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := observed.Err(); err != nil {
		t.Fatal(err)
	}
	gotJS, gotCSV, gotMJS, gotTables := exports(t, observed)
	if gotJS != wantJS {
		t.Errorf("summary JSON differs with observability on:\n--- off ---\n%s\n--- on ---\n%s", wantJS, gotJS)
	}
	if gotCSV != wantCSV {
		t.Errorf("telemetry CSV differs with observability on")
	}
	if gotMJS != wantMJS {
		t.Errorf("telemetry JSON differs with observability on (lengths %d vs %d)", len(wantMJS), len(gotMJS))
	}
	if gotTables != wantTables {
		t.Errorf("derived tables differ with observability on:\n--- off ---\n%s\n--- on ---\n%s", wantTables, gotTables)
	}

	// The side channel itself is fully populated.
	m := rec.Manifest()
	if len(m.Jobs) != len(st.Jobs()) {
		t.Fatalf("manifest has %d jobs, want %d", len(m.Jobs), len(st.Jobs()))
	}
	if m.Totals.Counters.Epochs == 0 || m.Totals.Counters.Retired == 0 {
		t.Errorf("manifest counters empty: %+v", m.Totals.Counters)
	}
	for _, j := range m.Jobs {
		if j.Span.Find("run") == nil {
			t.Fatalf("job %d missing run span", j.Index)
		}
	}

	// Shard + merge with an observer on every shard.
	var dumps []*ShardDump
	for i := 0; i < 2; i++ {
		sh := Sharded{Index: i, Count: 2, Pool: Pool{
			Parallel: 2,
			Observer: obs.NewRecorder(st.Name()),
			Progress: sweep.CLIProgress(true, io.Discard, nil),
		}}
		res, err := st.Run(ctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteShard(&buf, sh); err != nil {
			t.Fatal(err)
		}
		dump, err := ReadShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, dump)
	}
	merged, err := MergeShards(st, dumps...)
	if err != nil {
		t.Fatal(err)
	}
	mJS, mCSV, mMJS, mTables := exports(t, merged)
	if mJS != wantJS || mCSV != wantCSV || mMJS != wantMJS || mTables != wantTables {
		t.Errorf("sharded run with observers attached does not merge back to the bare bytes")
	}
}

// TestCapacityCatalogStudy pins the capacity study's shape: the full
// load grid expands (5 arrival factors × 2 schedulers × 2 seeds) and
// every job carries a numeric load axis for knee detection.
func TestCapacityCatalogStudy(t *testing.T) {
	st, err := Build("capacity")
	if err != nil {
		t.Fatal(err)
	}
	jobs := st.Jobs()
	want := len(capacityLoads) * 2 * 2 // loads × schedulers × seeds
	if len(jobs) != want {
		t.Fatalf("capacity study expands to %d jobs, want %d", len(jobs), want)
	}
	axes := map[float64]bool{}
	for _, j := range jobs {
		v, ok := obs.AxisValue(j.Variant, j.Trace)
		if !ok {
			t.Fatalf("job %s has no numeric load axis", j.Key())
		}
		axes[v] = true
	}
	if len(axes) != len(capacityLoads) {
		t.Fatalf("capacity study sweeps %d load points, want %d", len(axes), len(capacityLoads))
	}
}

// TestCountersRejectedInStudyConfigs pins the sharing guard: engine
// counters in a study or variant config would be summed across every
// parallel job, so validation refuses them.
func TestCountersRejectedInStudyConfigs(t *testing.T) {
	base := []Option{
		WithTraces(tinySource("tiny")),
		WithSchedulers("saath"),
	}
	counted := sim.Config{Counters: &obs.EngineCounters{}}
	if _, err := New("bad", append(base, WithSimConfig(counted))...); err == nil {
		t.Error("study-level counters accepted")
	}
	if _, err := New("bad", append(base, WithParamGrid(sweep.Variant{
		Name: "v", Config: counted,
	}))...); err == nil {
		t.Error("variant-level counters accepted")
	}
}
