package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"saath/internal/coflow"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4}, {90, 4.6},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); !almost(got, tc.want) {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Fatalf("singleton = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(raw, pa) <= Percentile(raw, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedian(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Fatalf("mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean")
	}
	if got := Median([]float64{1, 9}); !almost(got, 5) {
		t.Fatalf("median = %v", got)
	}
}

func TestNormStdDev(t *testing.T) {
	if got := NormStdDev([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("equal values dev = %v", got)
	}
	if got := NormStdDev(nil); got != 0 {
		t.Fatalf("empty dev = %v", got)
	}
	if got := NormStdDev([]float64{1, 3}); !almost(got, 0.5) {
		t.Fatalf("dev = %v, want 0.5", got)
	}
	if got := NormStdDev([]float64{0, 0}); got != 0 {
		t.Fatalf("zero-mean dev = %v", got)
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("cdf = %v", cdf)
	}
	for i := range want {
		if !almost(cdf[i].X, want[i].X) || !almost(cdf[i].F, want[i].F) {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Fatal("empty cdf")
	}
	if got := CDFAt(cdf, 2); !almost(got, 0.75) {
		t.Fatalf("CDFAt(2) = %v", got)
	}
	if got := CDFAt(cdf, 0.5); got != 0 {
		t.Fatalf("CDFAt(0.5) = %v", got)
	}
	if got := CDFAt(cdf, 99); !almost(got, 1) {
		t.Fatalf("CDFAt(99) = %v", got)
	}
}

func TestCDFIsMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		cdf := CDF(clean)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X <= cdf[i-1].X || cdf[i].F < cdf[i-1].F {
				return false
			}
		}
		return len(cdf) == 0 || almost(cdf[len(cdf)-1].F, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedups(t *testing.T) {
	base := map[coflow.CoFlowID]coflow.Time{1: 100, 2: 300, 3: 50}
	target := map[coflow.CoFlowID]coflow.Time{1: 50, 2: 100, 4: 10}
	sp := Speedups(base, target)
	want := []float64{2, 3}
	if len(sp) != 2 {
		t.Fatalf("speedups = %v", sp)
	}
	sort.Float64s(want)
	for i := range want {
		if !almost(sp[i], want[i]) {
			t.Fatalf("speedups = %v, want %v", sp, want)
		}
	}
}

func TestSpeedupsSkipsDegenerate(t *testing.T) {
	base := map[coflow.CoFlowID]coflow.Time{1: 0, 2: -5, 3: 10}
	target := map[coflow.CoFlowID]coflow.Time{1: 5, 2: 5, 3: 0}
	if sp := Speedups(base, target); len(sp) != 0 {
		t.Fatalf("degenerate speedups = %v", sp)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if !almost(s.Median, 3) || s.N != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestOverallSpeedupPercent(t *testing.T) {
	if got := OverallSpeedupPercent(2, 1); !almost(got, 50) {
		t.Fatalf("overall = %v", got)
	}
	if got := OverallSpeedupPercent(0, 1); got != 0 {
		t.Fatalf("zero base = %v", got)
	}
}

func TestAssignBin(t *testing.T) {
	cases := []struct {
		size  coflow.Bytes
		width int
		want  Bin
	}{
		{50 * coflow.MB, 5, Bin1},
		{100 * coflow.MB, 10, Bin1}, // boundaries inclusive on the small side
		{50 * coflow.MB, 11, Bin2},
		{200 * coflow.MB, 10, Bin3},
		{200 * coflow.MB, 11, Bin4},
	}
	for _, tc := range cases {
		if got := AssignBin(tc.size, tc.width); got != tc.want {
			t.Errorf("AssignBin(%d, %d) = %v, want %v", tc.size, tc.width, got, tc.want)
		}
	}
	for b := Bin1; b <= Bin4; b++ {
		if b.String() == "bin-?" {
			t.Errorf("bin %d has no name", b)
		}
	}
	if Bin(9).String() != "bin-?" {
		t.Fatal("unknown bin name")
	}
}

func TestJCTModel(t *testing.T) {
	m := JCTModel{ShuffleFraction: 0.5}
	base := coflow.Second
	// compute = 1s; baseline JCT = 2s; halving CCT -> JCT 1.5s.
	if got := m.JCT(base, base); !almost(got, 2) {
		t.Fatalf("baseline JCT = %v", got)
	}
	if got := m.JCTSpeedup(base, base/2); !almost(got, 2.0/1.5) {
		t.Fatalf("JCT speedup = %v", got)
	}
	// Shuffle-only jobs inherit the CCT speedup exactly.
	m = JCTModel{ShuffleFraction: 1}
	if got := m.JCTSpeedup(base, base/2); !almost(got, 2) {
		t.Fatalf("pure-shuffle speedup = %v", got)
	}
	// Invalid fraction behaves like pure shuffle rather than dividing
	// by zero.
	m = JCTModel{ShuffleFraction: 0}
	if got := m.JCT(base, base); !almost(got, 1) {
		t.Fatalf("invalid fraction JCT = %v", got)
	}
}

func TestJCTSpeedupBoundedByCCTSpeedupProperty(t *testing.T) {
	// JCT speedup never exceeds the raw CCT speedup (compute dilutes it).
	f := func(rawF uint8, rawB, rawT uint16) bool {
		frac := (float64(rawF%100) + 1) / 100
		base := coflow.Time(rawB+1) * coflow.Millisecond
		tgt := coflow.Time(rawT+1) * coflow.Millisecond
		m := JCTModel{ShuffleFraction: frac}
		js := m.JCTSpeedup(base, tgt)
		cs := float64(base) / float64(tgt)
		if cs >= 1 {
			return js <= cs+1e-9 && js >= 1-1e-9
		}
		return js >= cs-1e-9 && js <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
