// Package stats provides the statistical machinery behind the paper's
// evaluation: empirical CDFs, percentiles, per-CoFlow speedup
// distributions, normalized FCT deviation (the out-of-sync metric of
// §2.3 and Fig. 13), the size/width bins of Table 1, and the
// shuffle-fraction job-completion-time model of Fig. 16.
package stats

import (
	"fmt"
	"math"
	"sort"

	"saath/internal/coflow"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It returns NaN for empty
// input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// NormStdDev returns stddev(xs)/mean(xs) — the normalized deviation
// used to quantify the out-of-sync problem. Zero-mean or empty input
// returns 0.
func NormStdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := Mean(xs)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / math.Abs(mean)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // fraction of samples <= X
}

// CDF computes the empirical CDF of xs (sorted by X ascending).
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	out := make([]CDFPoint, 0, len(cp))
	n := float64(len(cp))
	for i, x := range cp {
		// collapse duplicates to the final (highest) fraction
		if i+1 < len(cp) && cp[i+1] == x {
			continue
		}
		out = append(out, CDFPoint{X: x, F: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF at value x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	f := 0.0
	for _, p := range cdf {
		if p.X > x {
			break
		}
		f = p.F
	}
	return f
}

// Speedups computes per-CoFlow CCT ratios base/target, matched by ID:
// values > 1 mean the target scheduler is faster (the paper's
// "speedup using Saath", §6.1). CoFlows missing from either run are
// skipped.
func Speedups(base, target map[coflow.CoFlowID]coflow.Time) []float64 {
	out := make([]float64, 0, len(base))
	//saath:order-independent the collected ratios are sorted before return
	for id, b := range base {
		t, ok := target[id]
		if !ok || t <= 0 || b <= 0 {
			continue
		}
		out = append(out, float64(b)/float64(t))
	}
	sort.Float64s(out)
	return out
}

// SpeedupSummary condenses a speedup distribution the way the paper's
// bar charts do: median with P10/P90 error bars.
type SpeedupSummary struct {
	P10, Median, P90, Mean float64
	N                      int
}

// Summarize builds a SpeedupSummary.
func Summarize(speedups []float64) SpeedupSummary {
	return SpeedupSummary{
		P10:    Percentile(speedups, 10),
		Median: Percentile(speedups, 50),
		P90:    Percentile(speedups, 90),
		Mean:   Mean(speedups),
		N:      len(speedups),
	}
}

// String formats the summary as the paper quotes numbers, e.g.
// "1.53x median (P10=1.1x, P90=4.5x, n=526)".
func (s SpeedupSummary) String() string {
	return fmt.Sprintf("%.2fx median (P10=%.2fx, P90=%.2fx, n=%d)", s.Median, s.P10, s.P90, s.N)
}

// OverallSpeedupPercent is Fig. 3(b)'s metric: the improvement of the
// average CCT, in percent, of target over base.
func OverallSpeedupPercent(baseAvg, targetAvg float64) float64 {
	if baseAvg <= 0 {
		return 0
	}
	return (baseAvg - targetAvg) / baseAvg * 100
}

// Bin is a Table-1 size/width bucket.
type Bin int

// The four bins of Table 1.
const (
	Bin1 Bin = iota // size <= 100MB, width <= 10
	Bin2            // size <= 100MB, width >  10
	Bin3            // size  > 100MB, width <= 10
	Bin4            // size  > 100MB, width >  10
)

// Table-1 boundaries.
const (
	BinSizeBoundary  = 100 * coflow.MB
	BinWidthBoundary = 10
)

func (b Bin) String() string {
	switch b {
	case Bin1:
		return "bin-1 (small, narrow)"
	case Bin2:
		return "bin-2 (small, wide)"
	case Bin3:
		return "bin-3 (large, narrow)"
	case Bin4:
		return "bin-4 (large, wide)"
	default:
		return "bin-?"
	}
}

// AssignBin buckets a CoFlow by total size and width per Table 1.
func AssignBin(size coflow.Bytes, width int) Bin {
	small := size <= BinSizeBoundary
	narrow := width <= BinWidthBoundary
	switch {
	case small && narrow:
		return Bin1
	case small:
		return Bin2
	case narrow:
		return Bin3
	default:
		return Bin4
	}
}

// JCTModel maps CCT improvements to job completion times following the
// Fig. 16 methodology: a job spends a fraction of its total time in
// shuffle (the CoFlow) and the rest in compute, which schedulers do
// not touch. Given the baseline CCT and the shuffle fraction, the
// implied compute time is cct·(1−f)/f.
type JCTModel struct {
	ShuffleFraction float64
}

// JCT returns the modelled job completion time for a CoFlow whose
// shuffle took cct under some scheduler, with compute time derived
// from the baseline CCT.
func (m JCTModel) JCT(baseCCT, cct coflow.Time) float64 {
	f := m.ShuffleFraction
	if f <= 0 || f > 1 {
		f = 1
	}
	compute := baseCCT.Seconds() * (1 - f) / f
	return compute + cct.Seconds()
}

// JCTSpeedup returns base JCT over target JCT for one job.
func (m JCTModel) JCTSpeedup(baseCCT, targetCCT coflow.Time) float64 {
	bj := m.JCT(baseCCT, baseCCT)
	tj := m.JCT(baseCCT, targetCCT)
	if tj <= 0 {
		return 0
	}
	return bj / tj
}
