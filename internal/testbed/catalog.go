package testbed

import (
	"fmt"

	"saath/internal/coflow"
	"saath/internal/report"
	rt "saath/internal/runtime"
	"saath/internal/sim"
	"saath/internal/study"
	"saath/internal/sweep"
	"saath/internal/trace"
)

// admissionFor keys the testbed backend's admission configuration off
// the study name: catalog studies that exercise the admission front
// declare their bucket here, everything else runs open.
var admissionFor = map[string]rt.AdmissionConfig{
	"overload": {RatePerSec: 50, Burst: 15},
}

// latencyPorts is the coordinator-latency study's cluster-size axis —
// the paper's Table 2 sweeps coordinator scheduling latency against
// cluster size; 10^4 agents run in-process in the default grid (10^5
// lives in the env-gated long test).
var latencyPorts = []int{1000, 4000, 10000}

// overloadLoads is the overload study's offered-rate axis, in
// multiples of the base arrival rate of overloadCfg.
var overloadLoads = []float64{0.5, 1, 2, 4}

// overloadOffered is the fixed coflow count every overload variant
// offers; only the rate at which they arrive changes, so drops are a
// pure function of rate against the admission bucket.
const overloadOffered = 120

// latencyCfg sizes the FB-marginal workload for a latency run at the
// given cluster size: enough coflows to keep the scheduler busy across
// the boundaries, sizes trimmed so each job drains in a few virtual
// seconds.
func latencyCfg(seed int64, ports int) trace.SynthConfig {
	cfg := trace.DefaultFBConfig(seed)
	cfg.NumPorts = ports
	cfg.NumCoFlows = 40
	cfg.MeanInterArrival = 15 * coflow.Millisecond
	cfg.MinSmall, cfg.MaxSmall = 2*coflow.MB, 8*coflow.MB
	cfg.MinLarge, cfg.MaxLarge = 8*coflow.MB, 48*coflow.MB
	return cfg
}

// overloadCfg is the overload study's base workload: a small fabric
// under a fixed coflow population whose arrival rate the variants
// scale past the admission bucket's sustained rate.
func overloadCfg(seed int64) trace.SynthConfig {
	cfg := trace.DefaultFBConfig(seed)
	cfg.NumPorts = 24
	cfg.NumCoFlows = overloadOffered
	cfg.MeanInterArrival = 25 * coflow.Millisecond
	cfg.MinSmall, cfg.MaxSmall = 2*coflow.MB, 8*coflow.MB
	cfg.MinLarge, cfg.MaxLarge = 8*coflow.MB, 32*coflow.MB
	return cfg
}

func init() {
	study.RegisterRunner("testbed", func(st *study.Study, opts study.RunnerOpts) (study.Runner, error) {
		r := &Runner{Parallel: opts.Parallel, Progress: opts.Progress, Observer: opts.Observer}
		if adm, ok := admissionFor[st.Name()]; ok {
			r.Admission = adm
		}
		return r, nil
	})

	study.Register("coordinator-latency",
		"Table 2-style testbed run: coordinator scheduling latency vs cluster size, measured through the real coordinator with in-process agents",
		buildCoordinatorLatency)

	study.Register("overload",
		"offered coflow rate vs arrival-time admission drops through the coordinator's token-bucket front",
		buildOverload)
}

func buildCoordinatorLatency() (*study.Study, error) {
	var variants []sweep.Variant
	for _, p := range latencyPorts {
		p := p
		variants = append(variants, sweep.Variant{
			Name: fmt.Sprintf("ports=%d", p),
			MutateSeeded: func(tr *trace.Trace, seed int64) {
				*tr = *trace.Synthesize(latencyCfg(seed, p), tr.Name)
			},
		})
	}
	return study.New("coordinator-latency",
		study.WithDescription("schedule-latency vs cluster size on the system path; the latency table itself is out-of-band (obs runtime section)"),
		study.WithRunner("testbed"),
		study.WithTraces(sweep.SynthSource("fb-lat", func(seed int64) *trace.Trace {
			// Placeholder draw; every variant regenerates it at its
			// own cluster size (MutateSeeded).
			return trace.Synthesize(latencyCfg(seed, latencyPorts[0]), "fb-lat")
		})),
		study.WithSchedulers("saath"),
		study.WithSimConfig(sim.Config{Delta: 8 * coflow.Millisecond}),
		study.WithParamGrid(variants...),
		study.WithDerived(
			study.DerivedCCT("coordinator-latency — CCT through the real coordinator"),
		),
	)
}

func buildOverload() (*study.Study, error) {
	var variants []sweep.Variant
	for _, a := range overloadLoads {
		a := a
		variants = append(variants, sweep.Variant{
			Name: fmt.Sprintf("A=%g", a),
			MutateSeeded: func(tr *trace.Trace, seed int64) {
				gen := trace.Synthesize(overloadCfg(seed), tr.Name)
				gen.ScaleArrivals(1 / a)
				*tr = *gen
			},
		})
	}
	return study.New("overload",
		study.WithDescription("a fixed coflow population offered at swept rates against a 50/s token bucket: drops are arrival-time decisions on the system path"),
		study.WithRunner("testbed"),
		study.WithTraces(sweep.SynthSource("fb-overload", func(seed int64) *trace.Trace {
			return trace.Synthesize(overloadCfg(seed), "fb-overload")
		})),
		study.WithSchedulers("saath"),
		study.WithSeeds(1, 2),
		study.WithSimConfig(sim.Config{Delta: 8 * coflow.Millisecond}),
		study.WithParamGrid(variants...),
		study.WithDerived(
			DerivedAdmission("overload — offered rate vs admission drops", overloadOffered),
			study.DerivedCCT("overload — CCT of admitted coflows"),
		),
	)
}

// DerivedAdmission renders the offered-vs-dropped table of an
// admission study: every grid cell's completed count against the fixed
// offered population. Purely derived from the deterministic summary,
// so it is identical for live, parallel and merged shard executions —
// the drop counts themselves are deterministic because admission
// decisions run on the virtual clock.
func DerivedAdmission(title string, offered int) study.Derived {
	return func(st *study.Study, sum *sweep.Summary) ([]*report.Table, error) {
		if offered <= 0 {
			return nil, fmt.Errorf("derived admission %q: offered %d <= 0", title, offered)
		}
		t := &report.Table{Title: title, Headers: []string{
			"trace", "variant", "scheduler", "seed", "offered", "admitted", "dropped", "drop %",
		}}
		for _, e := range sum.Entries() {
			m := e.Metrics
			if m.Error != "" {
				continue
			}
			dropped := offered - m.CoFlows
			t.AddRow(m.Trace, m.Variant, m.Scheduler, m.Seed, offered, m.CoFlows, dropped,
				fmt.Sprintf("%.1f%%", 100*float64(dropped)/float64(offered)))
		}
		return []*report.Table{t}, nil
	}
}
