// Package testbed executes catalog studies through the real
// coordinator instead of the simulator: every job builds a Manual-mode
// runtime.Coordinator on a virtual clock, attaches one in-process
// agent per port (no sockets — 10^5 agents fit in one process), and
// drives δ sync boundaries until the workload completes. The study
// output (CCTs, makespan) is a pure function of the workload in
// virtual time — byte-identical at any parallelism or sharding — while
// the wall-clock cost of each coordinator Schedule call (the paper's
// Table 2 quantity) flows out-of-band into the obs manifest's runtime
// section.
//
// Admission control is exercised on the system path: registrations
// happen at each coflow's exact virtual arrival time against the
// coordinator's live token bucket and live-coflow count, so a shed
// coflow is an arrival-time decision, never a batch artifact.
package testbed

import (
	"errors"
	"fmt"
	"time"

	"saath/internal/coflow"
	"saath/internal/obs"
	rt "saath/internal/runtime"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/sweep"
)

// Config controls one testbed job execution: the coordinator's
// admission front and the runaway guard.
type Config struct {
	// Admission is the coordinator's arrival-time admission front; the
	// zero value admits everything.
	Admission rt.AdmissionConfig
	// MaxBoundaries aborts a job that fails to drain (<=0: derived
	// from the job's Horizon, or 1<<20 boundaries).
	MaxBoundaries int
}

// RunJob executes one sweep job through the real coordinator and
// returns the simulator-shaped result (virtual time only — it feeds
// the same Summary/shard-merge machinery as simulator jobs) plus the
// out-of-band runtime record. The returned record is valid even on
// error (identity fields filled).
func RunJob(j sweep.Job, tc Config) (*sim.Result, obs.RuntimeRecord, error) {
	rec := obs.RuntimeRecord{
		Index: j.Index, Trace: j.Trace, Variant: j.Variant,
		Scheduler: j.Scheduler, Seed: j.Seed,
	}
	if j.Telemetry.Enabled {
		return nil, rec, fmt.Errorf("testbed: job %s: per-interval telemetry is simulator-only", j.Key())
	}
	if j.Config.Dynamics != nil || j.Config.Pipelining != nil {
		return nil, rec, fmt.Errorf("testbed: job %s: cluster dynamics/pipelining are simulator-only", j.Key())
	}
	if j.Gen == nil {
		return nil, rec, fmt.Errorf("testbed: job %s has no trace generator", j.Key())
	}
	s, err := sched.New(j.Scheduler, j.Params)
	if err != nil {
		return nil, rec, fmt.Errorf("testbed: job %s: %w", j.Key(), err)
	}
	tr := j.Gen()
	tr.SortByArrival()

	delta := j.Config.Delta
	if delta <= 0 {
		delta = 8 * coflow.Millisecond
	}
	portRate := j.Config.PortRate
	if portRate <= 0 {
		portRate = coflow.GbpsRate(1)
	}
	dt := time.Duration(delta) * time.Microsecond

	// The virtual epoch is fixed: every timestamp the coordinator
	// takes is relative to it, so results are independent of when (and
	// where) the job runs.
	epoch := time.Unix(0, 0).UTC()
	vc := rt.NewVirtualClock(epoch)
	coord, err := rt.NewCoordinator(rt.CoordinatorConfig{
		Scheduler: s,
		NumPorts:  tr.NumPorts,
		PortRate:  portRate,
		Delta:     dt,
		Clock:     vc,
		Manual:    true,
		Admission: tc.Admission,
	})
	if err != nil {
		return nil, rec, fmt.Errorf("testbed: job %s: %w", j.Key(), err)
	}
	defer coord.Close()

	agents := make([]*rt.InprocAgent, tr.NumPorts)
	for i := range agents {
		if agents[i], err = coord.AttachInproc(i); err != nil {
			return nil, rec, fmt.Errorf("testbed: job %s: %w", j.Key(), err)
		}
	}
	rec.Ports, rec.Agents = tr.NumPorts, len(agents)

	maxB := tc.MaxBoundaries
	if maxB <= 0 {
		if j.Config.Horizon > 0 {
			maxB = int(j.Config.Horizon/delta) + 1
		} else {
			maxB = 1 << 20
		}
	}

	specs := tr.Specs // arrival-sorted
	cur := 0
	boundaries := 0
	for n := 0; ; n++ {
		if n > maxB {
			return nil, rec, fmt.Errorf("testbed: job %s: still live after %d boundaries (horizon guard)", j.Key(), n)
		}
		bound := coflow.Time(int64(n) * int64(delta))
		if n > 0 {
			// Interval (n-1)δ → nδ: flows move under the schedule
			// pushed at the previous boundary — the same one-δ
			// pipelining lag the real agents have.
			for _, a := range agents {
				a.Step(dt)
			}
		}
		// Arrivals inside the interval register at their exact virtual
		// time: the admission bucket refills to that instant and the
		// decision is made against live coordinator state.
		for cur < len(specs) && specs[cur].Arrival <= bound {
			sp := specs[cur]
			cur++
			vc.Set(epoch.Add(time.Duration(sp.Arrival) * time.Microsecond))
			if err := coord.Register(sp); err != nil && !errors.Is(err, rt.ErrAdmission) {
				return nil, rec, fmt.Errorf("testbed: job %s: register coflow %d: %w", j.Key(), sp.ID, err)
			}
		}
		vc.Set(epoch.Add(time.Duration(bound) * time.Microsecond))
		if n > 0 {
			for _, a := range agents {
				a.Report()
			}
		}
		live := coord.StepSchedule()
		boundaries++
		if cur == len(specs) && live == 0 && (n > 0 || len(specs) == 0) {
			break
		}
	}

	results := coord.Results() // ID-sorted, deterministic
	res := &sim.Result{
		Scheduler: j.Scheduler,
		Trace:     tr.Name,
		Ports:     tr.NumPorts,
		Intervals: boundaries,
	}
	arrivals := make(map[coflow.CoFlowID]coflow.Time, len(specs))
	for _, sp := range specs {
		arrivals[sp.ID] = sp.Arrival
	}
	for _, r := range results {
		done := coflow.Time(r.CompletedAt.Sub(epoch) / time.Microsecond)
		res.CoFlows = append(res.CoFlows, sim.CoFlowResult{
			ID:      r.ID,
			Arrival: arrivals[r.ID],
			DoneAt:  done,
			CCT:     coflow.Time(r.CCT / time.Microsecond),
			Width:   r.Width,
			Bytes:   r.Bytes,
		})
		if done > res.Makespan {
			res.Makespan = done
		}
	}
	// Wall-clock coordinator measurements go into the runtime record
	// only — res must stay a pure function of the workload.
	admitted, rejected := coord.AdmissionStats()
	calls, mean, max, p90 := coord.ScheduleLatency()
	rec.Admitted, rec.Rejected = admitted, rejected
	rec.Completed = len(results)
	rec.Boundaries = boundaries
	rec.ScheduleCalls = calls
	rec.ScheduleMeanNs = mean.Nanoseconds()
	rec.ScheduleMaxNs = max.Nanoseconds()
	rec.ScheduleP90Ns = p90.Nanoseconds()
	rec.ScheduleTotalNs = mean.Nanoseconds() * int64(calls)
	return res, rec, nil
}
