package testbed

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"saath/internal/obs"
	saathrt "saath/internal/runtime"
	"saath/internal/sweep"
)

// Runner is the testbed execution backend for internal/study: it runs
// every job through the real coordinator (see RunJob) on a bounded
// worker pool, mirroring sweep.Run's delivery contract — results land
// in grid order, collectors are fed serialized, and cancelling the
// context skips jobs not yet started. It implements study.Runner and
// study.RuntimeReporter.
type Runner struct {
	// Parallel bounds the worker pool; <=0 means runtime.NumCPU().
	Parallel int
	// Progress, if set, is called after every job completes.
	Progress sweep.ProgressFunc
	// Observer, when non-nil, collects the obs manifest: per-job spans
	// plus the runtime section (coordinator measurements).
	Observer *obs.Recorder
	// Admission configures every job's coordinator admission front.
	Admission saathrt.AdmissionConfig
	// MaxBoundaries caps each job's δ boundaries (<=0: see Config).
	MaxBoundaries int

	mu      sync.Mutex
	records []obs.RuntimeRecord
}

// Run implements study.Runner.
func (r *Runner) Run(ctx context.Context, jobs []sweep.Job, collectors []sweep.Collector) (*sweep.Result, error) {
	start := time.Now() //saath:wallclock Result.Elapsed is reporting-only, never study bytes
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]sweep.JobResult, len(jobs))
	ran := make([]bool, len(jobs))

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes done/Progress/Collectors
		done int
	)
	deliver := func(jr sweep.JobResult) {
		mu.Lock()
		defer mu.Unlock()
		done++
		for _, c := range collectors {
			c.Add(jr)
		}
		if r.Progress != nil {
			r.Progress(done, len(jobs), jr)
		}
	}

	feed := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				jr := r.runOne(ctx, jobs[i])
				out[i], ran[i] = jr, true
				deliver(jr)
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	for i := range out {
		if !ran[i] {
			jr := sweep.JobResult{Job: jobs[i], Err: fmt.Errorf("testbed: job %s skipped: %w", jobs[i].Key(), ctx.Err())}
			out[i] = jr
			deliver(jr)
		}
	}
	return &sweep.Result{Jobs: out, Elapsed: time.Since(start)}, nil //saath:wallclock
}

// runOne executes one job through the coordinator, timing it and
// collecting its runtime record.
func (r *Runner) runOne(ctx context.Context, j sweep.Job) sweep.JobResult {
	jr := sweep.JobResult{Job: j}
	start := time.Now()                               //saath:wallclock JobResult.Elapsed is reporting-only, never study bytes
	defer func() { jr.Elapsed = time.Since(start) }() //saath:wallclock
	var span *obs.Span
	if r.Observer.Enabled() {
		span = obs.StartSpan("testbed:" + j.Key())
		defer func() {
			span.End()
			errStr := ""
			if jr.Err != nil {
				errStr = jr.Err.Error()
			}
			r.Observer.RecordJob(obs.JobRecord{
				Index: j.Index, Trace: j.Trace, Variant: j.Variant,
				Scheduler: j.Scheduler, Seed: j.Seed, Error: errStr, Span: span,
			})
		}()
	}
	if err := ctx.Err(); err != nil {
		jr.Err = fmt.Errorf("testbed: job %s skipped: %w", j.Key(), err)
		return jr
	}
	res, rec, err := RunJob(j, Config{Admission: r.Admission, MaxBoundaries: r.MaxBoundaries})
	if err != nil {
		jr.Err = err
		return jr
	}
	jr.Res = res
	r.mu.Lock()
	r.records = append(r.records, rec)
	r.mu.Unlock()
	r.Observer.RecordRuntime(rec)
	return jr
}

// RuntimeReport implements study.RuntimeReporter: the coordinator
// measurements of every job run so far, grid order.
func (r *Runner) RuntimeReport() *obs.RuntimeReport {
	r.mu.Lock()
	recs := append([]obs.RuntimeRecord(nil), r.records...)
	r.mu.Unlock()
	rep := &obs.RuntimeReport{Records: recs}
	rep.Sort()
	return rep
}
