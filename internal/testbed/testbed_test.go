package testbed

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"saath/internal/coflow"
	"saath/internal/obs"
	"saath/internal/sched"
	"saath/internal/study"
	"saath/internal/sweep"
	"saath/internal/trace"

	_ "saath/internal/core" // registers the saath policy family
)

// synthJob builds a self-contained testbed job over a synthetic
// FB-marginal workload.
func synthJob(name string, ports, coflows int) sweep.Job {
	return sweep.Job{
		Trace:     name,
		Scheduler: "saath",
		Seed:      1,
		Params:    sched.DefaultParams(),
		Gen: func() *trace.Trace {
			cfg := latencyCfg(1, ports)
			cfg.NumCoFlows = coflows
			return trace.Synthesize(cfg, name)
		},
	}
}

// TestRunJobSmoke: a small job completes through the coordinator, the
// result is simulator-shaped (virtual time), and the runtime record
// carries real measurements.
func TestRunJobSmoke(t *testing.T) {
	res, rec, err := RunJob(synthJob("tb-smoke", 16, 30), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoFlows) != 30 {
		t.Fatalf("completed %d of 30 coflows", len(res.CoFlows))
	}
	for i := 1; i < len(res.CoFlows); i++ {
		if res.CoFlows[i].ID <= res.CoFlows[i-1].ID {
			t.Fatal("result coflows not ID-sorted")
		}
	}
	if res.Makespan <= 0 || res.Intervals <= 0 {
		t.Fatalf("degenerate result: makespan=%v intervals=%d", res.Makespan, res.Intervals)
	}
	for _, c := range res.CoFlows {
		if c.CCT <= 0 || c.DoneAt != c.Arrival+c.CCT {
			t.Fatalf("coflow %d: inconsistent times arrival=%v cct=%v done=%v", c.ID, c.Arrival, c.CCT, c.DoneAt)
		}
	}
	if rec.Agents != 16 || rec.Ports != 16 {
		t.Fatalf("record agents/ports = %d/%d, want 16/16", rec.Agents, rec.Ports)
	}
	if rec.ScheduleCalls == 0 || rec.Boundaries == 0 {
		t.Fatalf("no coordinator measurements: %+v", rec)
	}
	if rec.Admitted != 30 || rec.Completed != 30 {
		t.Fatalf("admitted/completed = %d/%d, want 30/30", rec.Admitted, rec.Completed)
	}
}

// TestRunJobDeterminism: the same job run twice yields identical
// virtual-time results — the property every golden below rides on.
func TestRunJobDeterminism(t *testing.T) {
	a, _, err := RunJob(synthJob("tb-det", 20, 40), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunJob(synthJob("tb-det", 20, 40), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CoFlows) != len(b.CoFlows) || a.Makespan != b.Makespan {
		t.Fatalf("runs diverged: %d/%v vs %d/%v", len(a.CoFlows), a.Makespan, len(b.CoFlows), b.Makespan)
	}
	for i := range a.CoFlows {
		x, y := a.CoFlows[i], b.CoFlows[i]
		if x.ID != y.ID || x.Arrival != y.Arrival || x.DoneAt != y.DoneAt || x.CCT != y.CCT {
			t.Fatalf("coflow %d diverged:\n  %+v\n  %+v", i, x, y)
		}
	}
}

// TestRunJobRejectsSimulatorOnlyFeatures: telemetry and cluster
// dynamics have no system-path equivalent; the driver refuses them
// instead of silently dropping them.
func TestRunJobRejectsSimulatorOnlyFeatures(t *testing.T) {
	j := synthJob("tb-feat", 8, 4)
	j.Telemetry.Enabled = true
	if _, _, err := RunJob(j, Config{}); err == nil || !strings.Contains(err.Error(), "telemetry") {
		t.Fatalf("telemetry job: err = %v, want simulator-only rejection", err)
	}
}

// TestRunJobHorizonGuard: a job that cannot drain within the boundary
// budget errors out instead of spinning forever.
func TestRunJobHorizonGuard(t *testing.T) {
	if _, _, err := RunJob(synthJob("tb-horizon", 8, 20), Config{MaxBoundaries: 3}); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("err = %v, want horizon guard", err)
	}
}

func mustBuild(t *testing.T, name string) *study.Study {
	t.Helper()
	st, err := study.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustRunner(t *testing.T, st *study.Study, opts study.RunnerOpts) study.Runner {
	t.Helper()
	r, err := study.NewRunnerFor(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func renderAll(t *testing.T, res *study.Result) []byte {
	t.Helper()
	tables, err := res.Tables()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestOverloadByteIdentity pins the testbed determinism contract: the
// overload study's rendered tables are byte-identical at -parallel 1,
// -parallel 8, and reassembled from a 3-way shard split — virtual-time
// results cannot depend on execution interleaving or partitioning.
func TestOverloadByteIdentity(t *testing.T) {
	ctx := context.Background()
	st := mustBuild(t, "overload")

	run := func(parallel int) []byte {
		res, err := st.Run(ctx, mustRunner(t, st, study.RunnerOpts{Parallel: parallel}))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return renderAll(t, res)
	}
	serial := run(1)
	if parallel := run(8); !bytes.Equal(serial, parallel) {
		t.Fatal("overload tables differ between -parallel 1 and -parallel 8")
	}

	var dumps []*study.ShardDump
	for i := 0; i < 3; i++ {
		sh := study.Sharded{Index: i, Count: 3, Runner: mustRunner(t, st, study.RunnerOpts{Parallel: 2})}
		res, err := st.Run(ctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		dump, err := res.ShardDump(sh)
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, dump)
	}
	merged, err := study.MergeShards(st, dumps...)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, merged); !bytes.Equal(serial, got) {
		t.Fatal("overload tables differ between single-process run and 3-shard merge")
	}
}

// TestOverloadDropsScaleWithRate: the admission table's point — drops
// are zero below the bucket's sustained rate and grow with offered
// rate above it.
func TestOverloadDropsScaleWithRate(t *testing.T) {
	st := mustBuild(t, "overload")
	res, err := st.Run(context.Background(), mustRunner(t, st, study.RunnerOpts{Parallel: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	completed := map[string]int{}
	for _, e := range res.Summary().Entries() {
		completed[e.Metrics.Variant] += e.Metrics.CoFlows
	}
	if completed["A=0.5"] != 2*overloadOffered || completed["A=1"] != 2*overloadOffered {
		t.Fatalf("sub-rate variants shed load: %v", completed)
	}
	if !(completed["A=2"] < completed["A=1"] && completed["A=4"] < completed["A=2"]) {
		t.Fatalf("drops do not grow with offered rate: %v", completed)
	}
}

// TestCoordinatorLatencyStudy: the Table 2 path end to end — the study
// runs through the real coordinator at up to 10^4 in-process agents
// and the out-of-band runtime report carries per-cluster-size
// schedule-latency measurements.
func TestCoordinatorLatencyStudy(t *testing.T) {
	st := mustBuild(t, "coordinator-latency")
	r := mustRunner(t, st, study.RunnerOpts{Parallel: 3})
	res, err := st.Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	rr, ok := r.(study.RuntimeReporter)
	if !ok {
		t.Fatal("testbed runner does not implement study.RuntimeReporter")
	}
	rep := rr.RuntimeReport()
	if len(rep.Records) != len(latencyPorts) {
		t.Fatalf("runtime records = %d, want %d", len(rep.Records), len(latencyPorts))
	}
	seen := map[int]bool{}
	for _, rec := range rep.Records {
		seen[rec.Agents] = true
		if rec.ScheduleCalls == 0 || rec.ScheduleMeanNs <= 0 {
			t.Fatalf("variant %s: no schedule-latency measurements: %+v", rec.Variant, rec)
		}
		if rec.Agents != rec.Ports {
			t.Fatalf("variant %s: agents %d != ports %d", rec.Variant, rec.Agents, rec.Ports)
		}
	}
	if !seen[10000] {
		t.Fatalf("no 10^4-agent record in %v", rep.Records)
	}
	tab := obs.RuntimeTable("coordinator latency", rep)
	if len(tab.Rows) != len(latencyPorts) {
		t.Fatalf("latency table rows = %d, want %d", len(tab.Rows), len(latencyPorts))
	}
}

// TestManifestRuntimeSection: an attached recorder lands one runtime
// record per job in the manifest's runtime section, grid-ordered.
func TestManifestRuntimeSection(t *testing.T) {
	st := mustBuild(t, "overload")
	rec := obs.NewRecorder("overload")
	r := mustRunner(t, st, study.RunnerOpts{Parallel: 4, Observer: rec})
	res, err := st.Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	m := rec.Manifest()
	if m.Runtime == nil {
		t.Fatal("manifest has no runtime section")
	}
	jobs := len(st.Jobs())
	if len(m.Runtime.Records) != jobs || len(m.Jobs) != jobs {
		t.Fatalf("runtime/job records = %d/%d, want %d", len(m.Runtime.Records), len(m.Jobs), jobs)
	}
	for i := 1; i < len(m.Runtime.Records); i++ {
		if m.Runtime.Records[i].Index <= m.Runtime.Records[i-1].Index {
			t.Fatal("runtime records not grid-ordered")
		}
	}
}

// TestTestbedScaleHundredThousand is the 10^5-agent long run, skipped
// by default: SAATH_LONG=1 go test ./internal/testbed/ -run HundredThousand
func TestTestbedScaleHundredThousand(t *testing.T) {
	if os.Getenv("SAATH_LONG") == "" {
		t.Skip("set SAATH_LONG=1 to run the 10^5-agent testbed job")
	}
	j := synthJob("tb-100k", 100000, 20)
	res, rec, err := RunJob(j, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Agents != 100000 {
		t.Fatalf("agents = %d, want 100000", rec.Agents)
	}
	if len(res.CoFlows) != 20 {
		t.Fatalf("completed %d of 20 coflows", len(res.CoFlows))
	}
	if rec.ScheduleCalls == 0 {
		t.Fatal("no schedule-latency measurements at 10^5 agents")
	}
	t.Logf("10^5 agents: %d boundaries, schedule mean %dns p90 %dns max %dns",
		rec.Boundaries, rec.ScheduleMeanNs, rec.ScheduleP90Ns, rec.ScheduleMaxNs)
}

// TestDeltaOverride: the study-level δ reaches the coordinator — twice
// the δ roughly halves the boundary count for the same workload.
func TestDeltaOverride(t *testing.T) {
	j := synthJob("tb-delta", 12, 20)
	j.Config.Delta = 8 * coflow.Millisecond
	_, rec8, err := RunJob(j, Config{})
	if err != nil {
		t.Fatal(err)
	}
	j.Config.Delta = 16 * coflow.Millisecond
	_, rec16, err := RunJob(j, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec16.Boundaries >= rec8.Boundaries {
		t.Fatalf("doubling δ did not reduce boundaries: %d vs %d", rec16.Boundaries, rec8.Boundaries)
	}
}
