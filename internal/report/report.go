// Package report renders experiment output: fixed-width ASCII tables
// for terminal inspection and CSV for plotting, matching the rows and
// series of the paper's tables and figures.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"saath/internal/stats"
)

// Table is a simple fixed-width ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quotes cells that
// contain commas or quotes).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON writes the table as one indented JSON object — the
// machine-readable sibling of CSV for result export.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title,omitempty"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.Rows})
}

// CDFTable renders an empirical CDF as a two-column table, the shape
// of the paper's CDF figures.
func CDFTable(title, xLabel string, cdf []stats.CDFPoint) *Table {
	t := &Table{Title: title, Headers: []string{xLabel, "CDF"}}
	for _, p := range cdf {
		t.AddRow(fmt.Sprintf("%.4g", p.X), fmt.Sprintf("%.4f", p.F))
	}
	return t
}

// SampledCDFTable downsamples a CDF to at most n points (always
// keeping the first and last), keeping figure output readable.
func SampledCDFTable(title, xLabel string, cdf []stats.CDFPoint, n int) *Table {
	if n <= 0 || len(cdf) <= n {
		return CDFTable(title, xLabel, cdf)
	}
	sampled := make([]stats.CDFPoint, 0, n)
	step := float64(len(cdf)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		sampled = append(sampled, cdf[int(float64(i)*step+0.5)])
	}
	sampled[n-1] = cdf[len(cdf)-1]
	return CDFTable(title, xLabel, sampled)
}

// SpeedupBar renders the paper's bar-with-error-bars presentation:
// one row per series with P10/median/P90.
func SpeedupBar(title string, series map[string]stats.SpeedupSummary, order []string) *Table {
	t := &Table{Title: title, Headers: []string{"series", "p10", "median", "p90", "mean", "n"}}
	for _, name := range order {
		s, ok := series[name]
		if !ok {
			continue
		}
		t.AddRow(name,
			fmt.Sprintf("%.2f", s.P10),
			fmt.Sprintf("%.2f", s.Median),
			fmt.Sprintf("%.2f", s.P90),
			fmt.Sprintf("%.2f", s.Mean),
			s.N)
	}
	return t
}
