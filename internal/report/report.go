// Package report renders experiment output: fixed-width ASCII tables
// for terminal inspection and CSV for plotting, matching the rows and
// series of the paper's tables and figures.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"saath/internal/stats"
)

// Table is a simple fixed-width ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quotes cells that
// contain commas or quotes).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON writes the table as one indented JSON object — the
// machine-readable sibling of CSV for result export.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title,omitempty"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.Rows})
}

// CDFTable renders an empirical CDF as a two-column table, the shape
// of the paper's CDF figures.
func CDFTable(title, xLabel string, cdf []stats.CDFPoint) *Table {
	t := &Table{Title: title, Headers: []string{xLabel, "CDF"}}
	for _, p := range cdf {
		t.AddRow(fmt.Sprintf("%.4g", p.X), fmt.Sprintf("%.4f", p.F))
	}
	return t
}

// sampleIndices returns at most n indices over [0, length), evenly
// spaced and always ending on the last element. A nil result means
// "keep everything" (n out of range or nothing to drop).
func sampleIndices(length, n int) []int {
	if n <= 0 || length <= n {
		return nil
	}
	if n == 1 {
		return []int{length - 1}
	}
	idx := make([]int, n)
	step := float64(length-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx[i] = int(float64(i)*step + 0.5)
	}
	idx[n-1] = length - 1
	return idx
}

// SampledCDFTable downsamples a CDF to at most n points (always
// keeping the last), keeping figure output readable.
func SampledCDFTable(title, xLabel string, cdf []stats.CDFPoint, n int) *Table {
	idx := sampleIndices(len(cdf), n)
	if idx == nil {
		return CDFTable(title, xLabel, cdf)
	}
	sampled := make([]stats.CDFPoint, len(idx))
	for i, j := range idx {
		sampled[i] = cdf[j]
	}
	return CDFTable(title, xLabel, sampled)
}

// XYTable renders a paired (x, y) series as a two-column table, the
// shape of the telemetry time-series figures. xs and ys must have
// equal length.
func XYTable(title, xLabel, yLabel string, xs, ys []float64) *Table {
	t := &Table{Title: title, Headers: []string{xLabel, yLabel}}
	for i := range xs {
		t.AddRow(fmt.Sprintf("%.4g", xs[i]), fmt.Sprintf("%.4g", ys[i]))
	}
	return t
}

// SampledXYTable downsamples an (x, y) series to at most n rows
// (always keeping the last), keeping long time series readable in
// terminal output.
func SampledXYTable(title, xLabel, yLabel string, xs, ys []float64, n int) *Table {
	idx := sampleIndices(len(xs), n)
	if idx == nil {
		return XYTable(title, xLabel, yLabel, xs, ys)
	}
	sx := make([]float64, len(idx))
	sy := make([]float64, len(idx))
	for i, j := range idx {
		sx[i], sy[i] = xs[j], ys[j]
	}
	return XYTable(title, xLabel, yLabel, sx, sy)
}

// BucketTable renders histogram buckets — one row per upper bound with
// its count and the cumulative fraction — plus an overflow row when
// any observation exceeded the last bound.
func BucketTable(title, xLabel string, uppers []float64, counts []int64, overflow int64) *Table {
	t := &Table{Title: title, Headers: []string{"≤ " + xLabel, "count", "cum frac"}}
	var total int64
	for _, c := range counts {
		total += c
	}
	total += overflow
	var cum int64
	addRow := func(label string, c int64) {
		cum += c
		frac := 0.0
		if total > 0 {
			frac = float64(cum) / float64(total)
		}
		t.AddRow(label, c, fmt.Sprintf("%.4f", frac))
	}
	for i, u := range uppers {
		addRow(fmt.Sprintf("%.4g", u), counts[i])
	}
	if overflow > 0 {
		addRow("+Inf", overflow)
	}
	return t
}

// HeatmapRow is one labeled row of a heatmap table: occupancy-bucket
// counts (per ascending upper bound, plus overflow above the last
// bound) and exact scalar statistics.
type HeatmapRow struct {
	Label    string
	Counts   []int64
	Overflow int64
	Mean     float64
	Max      float64
}

// HeatmapTable renders a label × bucket matrix as per-row fractions —
// the terminal rendering of the telemetry per-port occupancy heatmaps
// (Fig. 4-style "where the queues build"). Buckets are disjoint
// intervals, NOT cumulative: each cell is the fraction of the row's
// observations that fell in (prevBound, bound] — the first bound
// (typically 0) reads as idle time, and a row's cells sum to one.
func HeatmapTable(title, rowLabel string, bounds []float64, rows []HeatmapRow) *Table {
	headers := []string{rowLabel, "mean", "max"}
	for i, b := range bounds {
		if i == 0 {
			headers = append(headers, fmt.Sprintf("=%.4g", b))
		} else {
			headers = append(headers, fmt.Sprintf("(%.4g,%.4g]", bounds[i-1], b))
		}
	}
	if len(bounds) > 0 {
		headers = append(headers, fmt.Sprintf(">%.4g", bounds[len(bounds)-1]))
	}
	t := &Table{Title: title, Headers: headers}
	for _, r := range rows {
		var total int64
		for _, c := range r.Counts {
			total += c
		}
		total += r.Overflow
		frac := func(c int64) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", float64(c)/float64(total))
		}
		cells := []any{r.Label, fmt.Sprintf("%.2f", r.Mean), fmt.Sprintf("%.0f", r.Max)}
		for _, c := range r.Counts {
			cells = append(cells, frac(c))
		}
		if len(bounds) > 0 {
			cells = append(cells, frac(r.Overflow))
		}
		t.AddRow(cells...)
	}
	return t
}

// SpeedupBar renders the paper's bar-with-error-bars presentation:
// one row per series with P10/median/P90.
func SpeedupBar(title string, series map[string]stats.SpeedupSummary, order []string) *Table {
	t := &Table{Title: title, Headers: []string{"series", "p10", "median", "p90", "mean", "n"}}
	for _, name := range order {
		s, ok := series[name]
		if !ok {
			continue
		}
		t.AddRow(name,
			fmt.Sprintf("%.2f", s.P10),
			fmt.Sprintf("%.2f", s.Median),
			fmt.Sprintf("%.2f", s.P90),
			fmt.Sprintf("%.2f", s.Mean),
			s.N)
	}
	return t
}
