package report

import (
	"encoding/json"
	"strings"
	"testing"

	"saath/internal/stats"
)

func TestTableJSON(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tbl.AddRow("alpha", 1.5)
	var sb strings.Builder
	if err := tbl.JSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if got.Title != "demo" || len(got.Headers) != 2 || len(got.Rows) != 1 || got.Rows[0][1] != "1.500" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", 42)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "1.500", "42", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + sep + 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow(`with,comma`, `with"quote`)
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"with,comma"`) || !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("csv escaping wrong:\n%s", out)
	}
}

func TestCDFTable(t *testing.T) {
	cdf := stats.CDF([]float64{1, 2, 3, 4})
	tbl := CDFTable("cdf", "speedup", cdf)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Headers[0] != "speedup" {
		t.Fatal("header")
	}
}

func TestSampledCDFTable(t *testing.T) {
	var xs []float64
	for i := 0; i < 1000; i++ {
		xs = append(xs, float64(i))
	}
	cdf := stats.CDF(xs)
	tbl := SampledCDFTable("big", "x", cdf, 20)
	if len(tbl.Rows) != 20 {
		t.Fatalf("sampled rows = %d", len(tbl.Rows))
	}
	// endpoints preserved
	if tbl.Rows[0][0] != "0" || tbl.Rows[19][0] != "999" {
		t.Fatalf("endpoints = %v, %v", tbl.Rows[0], tbl.Rows[19])
	}
	// no-op when already small
	small := SampledCDFTable("s", "x", cdf[:5], 20)
	if len(small.Rows) != 5 {
		t.Fatalf("small rows = %d", len(small.Rows))
	}
}

func TestSpeedupBar(t *testing.T) {
	series := map[string]stats.SpeedupSummary{
		"aalo":  stats.Summarize([]float64{1, 1.5, 2}),
		"varys": stats.Summarize([]float64{0.9, 1.0, 1.1}),
	}
	tbl := SpeedupBar("fig9", series, []string{"varys", "aalo", "missing"})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "varys" || tbl.Rows[1][0] != "aalo" {
		t.Fatalf("order = %v", tbl.Rows)
	}
}

func TestSampledXYTable(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	full := XYTable("t", "x", "y", xs, ys)
	if len(full.Rows) != 10 {
		t.Fatalf("XYTable rows = %d", len(full.Rows))
	}
	down := SampledXYTable("t", "x", "y", xs, ys, 4)
	if len(down.Rows) != 4 {
		t.Fatalf("sampled rows = %d, want 4", len(down.Rows))
	}
	if got := down.Rows[3][0]; got != "9" {
		t.Fatalf("last sampled x = %q, want 9", got)
	}
	// n == 1 must not panic (regression: int(NaN) index) and keeps the
	// last point; n <= 0 and n >= len keep everything.
	if one := SampledXYTable("t", "x", "y", xs, ys, 1); len(one.Rows) != 1 || one.Rows[0][0] != "9" {
		t.Fatalf("n=1 rows = %v", one.Rows)
	}
	if all := SampledXYTable("t", "x", "y", xs, ys, 0); len(all.Rows) != 10 {
		t.Fatalf("n=0 rows = %d", len(all.Rows))
	}
}

func TestBucketTable(t *testing.T) {
	tbl := BucketTable("h", "k_c", []float64{1, 2, 4}, []int64{2, 1, 1}, 1)
	if len(tbl.Rows) != 4 { // 3 buckets + overflow
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[3][0] != "+Inf" || tbl.Rows[3][2] != "1.0000" {
		t.Fatalf("overflow row = %v", tbl.Rows[3])
	}
	if tbl.Rows[0][2] != "0.4000" { // 2 of 5 cumulative
		t.Fatalf("first cum frac = %v", tbl.Rows[0])
	}
	noOverflow := BucketTable("h", "x", []float64{1}, []int64{3}, 0)
	if len(noOverflow.Rows) != 1 {
		t.Fatalf("overflow row rendered with zero overflow: %v", noOverflow.Rows)
	}
}
