package coflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func spec2x2() *Spec {
	return &Spec{
		ID:      7,
		Arrival: 5 * Millisecond,
		Flows: []FlowSpec{
			{Src: 0, Dst: 2, Size: 10 * MB},
			{Src: 0, Dst: 3, Size: 20 * MB},
			{Src: 1, Dst: 2, Size: 30 * MB},
			{Src: 1, Dst: 3, Size: 40 * MB},
		},
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
	if got := Time(0).Seconds(); got != 0 {
		t.Fatalf("Seconds(0) = %v", got)
	}
}

func TestGbpsRate(t *testing.T) {
	if got := GbpsRate(1); got != 125e6 {
		t.Fatalf("1 Gbps = %v B/s, want 1.25e8", got)
	}
}

func TestRateTransfer(t *testing.T) {
	r := GbpsRate(1)
	if got := r.Transfer(8 * Millisecond); got != Bytes(1e6) {
		t.Fatalf("transfer = %d, want 1e6", got)
	}
	if got := r.Transfer(0); got != 0 {
		t.Fatalf("transfer(0) = %d", got)
	}
	if got := r.Transfer(-Second); got != 0 {
		t.Fatalf("transfer(neg) = %d", got)
	}
	if got := Rate(0).Transfer(Second); got != 0 {
		t.Fatalf("zero-rate transfer = %d", got)
	}
}

func TestTimeToSend(t *testing.T) {
	r := Rate(1e6) // 1 MB/s
	if got := r.TimeToSend(1e6); got != Second {
		t.Fatalf("TimeToSend = %v, want 1s", got)
	}
	if got := r.TimeToSend(0); got != 0 {
		t.Fatalf("TimeToSend(0) = %v", got)
	}
	if got := Rate(0).TimeToSend(1); got != maxTime {
		t.Fatalf("TimeToSend at zero rate = %v, want maxTime", got)
	}
	// Rounds up: 1 byte at 1 MB/s is 1 µs.
	if got := r.TimeToSend(1); got != Microsecond {
		t.Fatalf("TimeToSend(1B) = %v, want 1µs", got)
	}
}

func TestTimeToSendTransferRoundTrip(t *testing.T) {
	// Property: sending for TimeToSend(b) at rate r moves at least b bytes.
	f := func(rawRate uint32, rawBytes uint32) bool {
		r := Rate(rawRate%100_000_000 + 1)
		b := Bytes(rawBytes % 1_000_000_000)
		d := r.TimeToSend(b)
		if d >= maxTime {
			return false
		}
		return r.Transfer(d) >= b-1 // allow 1 byte of float slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecAccessors(t *testing.T) {
	s := spec2x2()
	if s.Width() != 4 {
		t.Fatalf("Width = %d", s.Width())
	}
	if s.TotalSize() != 100*MB {
		t.Fatalf("TotalSize = %d", s.TotalSize())
	}
	if s.MaxFlowSize() != 40*MB {
		t.Fatalf("MaxFlowSize = %d", s.MaxFlowSize())
	}
}

func TestSpecValidate(t *testing.T) {
	if err := spec2x2().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no flows", func(s *Spec) { s.Flows = nil }},
		{"negative arrival", func(s *Spec) { s.Arrival = -1 }},
		{"negative size", func(s *Spec) { s.Flows[0].Size = -1 }},
		{"negative src", func(s *Spec) { s.Flows[1].Src = -2 }},
		{"negative dst", func(s *Spec) { s.Flows[2].Dst = -2 }},
	}
	for _, tc := range cases {
		s := spec2x2()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestNewRuntimeState(t *testing.T) {
	c := New(spec2x2())
	if c.Width() != 4 {
		t.Fatalf("Width = %d", c.Width())
	}
	if c.Arrived != 5*Millisecond {
		t.Fatalf("Arrived = %v", c.Arrived)
	}
	for i, f := range c.Flows {
		if !f.Available {
			t.Errorf("flow %d not available", i)
		}
		if f.Slowdown != 1 {
			t.Errorf("flow %d slowdown = %v", i, f.Slowdown)
		}
		if f.ID.CoFlow != 7 || f.ID.Index != i {
			t.Errorf("flow %d bad id %v", i, f.ID)
		}
	}
}

func TestMaxAndTotalSent(t *testing.T) {
	c := New(spec2x2())
	c.Flows[0].Sent = 3 * MB
	c.Flows[2].Sent = 9 * MB
	if got := c.MaxSent(); got != 9*MB {
		t.Fatalf("MaxSent = %d", got)
	}
	if got := c.TotalSent(); got != 12*MB {
		t.Fatalf("TotalSent = %d", got)
	}
	if got := c.TotalRemaining(); got != 100*MB-12*MB {
		t.Fatalf("TotalRemaining = %d", got)
	}
}

func TestFlowRemainingClamped(t *testing.T) {
	f := &Flow{Size: 10, Sent: 15}
	if got := f.Remaining(); got != 0 {
		t.Fatalf("Remaining = %d, want 0", got)
	}
}

func TestEffectiveRate(t *testing.T) {
	f := &Flow{Slowdown: 1}
	if got := f.EffectiveRate(100, 100); got != 100 {
		t.Fatalf("EffectiveRate = %v", got)
	}
	f.Slowdown = 4
	if got := f.EffectiveRate(100, 100); got != 25 {
		t.Fatalf("EffectiveRate slowed = %v", got)
	}
	// The ceiling is absolute: an allocation already below line/k
	// passes through untouched.
	if got := f.EffectiveRate(10, 100); got != 10 {
		t.Fatalf("EffectiveRate below ceiling = %v", got)
	}
}

func TestRefreshDone(t *testing.T) {
	c := New(spec2x2())
	if c.RefreshDone() {
		t.Fatal("fresh coflow reported done")
	}
	for i, f := range c.Flows {
		f.Done = true
		f.DoneAt = Time(i+1) * Second
	}
	if !c.RefreshDone() {
		t.Fatal("completed coflow not detected")
	}
	if c.DoneAt != 4*Second {
		t.Fatalf("DoneAt = %v, want 4s (last flow)", c.DoneAt)
	}
	if c.CCT() != 4*Second-5*Millisecond {
		t.Fatalf("CCT = %v", c.CCT())
	}
	if c.RefreshDone() {
		t.Fatal("RefreshDone should be false once already done")
	}
}

func TestPendingAndFinished(t *testing.T) {
	c := New(spec2x2())
	c.Flows[1].Done = true
	c.Flows[1].Sent = 20 * MB
	if got := len(c.PendingFlows()); got != 3 {
		t.Fatalf("pending = %d", got)
	}
	sizes := c.FinishedFlowSizes()
	if len(sizes) != 1 || sizes[0] != 20*MB {
		t.Fatalf("finished sizes = %v", sizes)
	}
}

func TestPortsAndUse(t *testing.T) {
	c := New(spec2x2())
	src := c.SrcPorts()
	dst := c.DstPorts()
	if len(src) != 2 || src[0] != 0 || src[1] != 1 {
		t.Fatalf("src ports = %v", src)
	}
	if len(dst) != 2 || dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("dst ports = %v", dst)
	}
	u := c.Use()
	if u.SrcFlows[0] != 2 || u.SrcFlows[1] != 2 || u.DstFlows[2] != 2 || u.DstFlows[3] != 2 {
		t.Fatalf("use = %+v", u)
	}
	// Done flows drop out of port sets.
	c.Flows[0].Done = true
	c.Flows[1].Done = true // both flows from src 0
	if got := c.SrcPorts(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("src ports after done = %v", got)
	}
}

func TestBottleneckRemaining(t *testing.T) {
	c := New(spec2x2())
	bw := Rate(10 * 1e6) // 10 MB/s
	// Bottleneck: src 1 sends 30+40 MiB.
	want := bw.TimeToSend(70 * MB)
	if got := c.BottleneckRemaining(bw); got != want {
		t.Fatalf("Γ = %v, want %v", got, want)
	}
	if got := c.BottleneckRemaining(0); got != maxTime {
		t.Fatalf("Γ at zero bw = %v", got)
	}
	// Progress reduces the bottleneck.
	c.Flows[3].Sent = 40 * MB
	c.Flows[3].Done = true
	want = bw.TimeToSend(70 * MB) // src 1 now has 30, dst 2 has 40... recompute: src0=30,src1=30,dst2=40,dst3=20
	_ = want
	got := c.BottleneckRemaining(bw)
	if got != bw.TimeToSend(40*MB) {
		t.Fatalf("Γ after progress = %v, want %v", got, bw.TimeToSend(40*MB))
	}
}

func TestBottleneckMonotoneProperty(t *testing.T) {
	// Property: sending bytes on any flow never increases Γ.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(6) + 1
		spec := &Spec{ID: CoFlowID(trial)}
		for i := 0; i < n; i++ {
			spec.Flows = append(spec.Flows, FlowSpec{
				Src:  PortID(rng.Intn(4)),
				Dst:  PortID(rng.Intn(4) + 4),
				Size: Bytes(rng.Intn(100)+1) * MB,
			})
		}
		c := New(spec)
		bw := GbpsRate(1)
		before := c.BottleneckRemaining(bw)
		f := c.Flows[rng.Intn(n)]
		f.Sent += Bytes(rng.Intn(int(f.Size)) + 1)
		if f.Remaining() == 0 {
			f.Done = true
		}
		after := c.BottleneckRemaining(bw)
		if after > before {
			t.Fatalf("trial %d: Γ increased %v -> %v", trial, before, after)
		}
	}
}
