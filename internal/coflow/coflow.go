// Package coflow defines the core data model shared by every scheduler,
// the simulator, and the distributed prototype: flows, CoFlows, ports,
// byte counts and simulated time.
//
// A CoFlow is a set of semantically related flows between cluster nodes
// (e.g. all shuffle flows of one MapReduce job). Its completion time
// (CCT) is the span from the arrival of its first flow to the
// completion of its last flow.
package coflow

import (
	"fmt"
	"sort"
)

// Time is simulated time in microseconds. Integer microseconds keep the
// simulator deterministic across platforms while comfortably resolving
// the 8 ms scheduling interval used in the paper.
type Time int64

// Common durations in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond)) }

// Bytes is a byte count. Sizes in the coflow-benchmark trace are
// megabytes; we store exact bytes.
type Bytes int64

// Common sizes in Bytes units.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// Rate is bandwidth in bytes per second.
type Rate float64

// GbpsRate converts gigabits per second to a Rate. The paper's fabric
// provisions 1 Gbps per port.
func GbpsRate(gbps float64) Rate { return Rate(gbps * 1e9 / 8) }

// Transfer returns the bytes moved at rate r over duration d, rounding
// down. A zero or negative duration transfers nothing.
func (r Rate) Transfer(d Time) Bytes {
	if d <= 0 || r <= 0 {
		return 0
	}
	return Bytes(float64(r) * d.Seconds())
}

// TimeToSend returns the duration needed to send b bytes at rate r,
// rounding up to the next microsecond. It returns a very large Time if
// the rate is not positive.
func (r Rate) TimeToSend(b Bytes) Time {
	if b <= 0 {
		return 0
	}
	if r <= 0 {
		return maxTime
	}
	secs := float64(b) / float64(r)
	t := Time(secs * float64(Second))
	if t.Seconds() < secs {
		t++
	}
	if t <= 0 {
		t = Microsecond
	}
	return t
}

// maxTime is an effectively-infinite horizon (about 292 millennia).
const maxTime = Time(1) << 62

// PortID identifies a cluster node. Each node owns one egress (sender)
// port and one ingress (receiver) port on the non-blocking fabric.
type PortID int

// CoFlowID identifies a CoFlow. IDs are unique within a trace.
type CoFlowID int64

// FlowID identifies a flow within its CoFlow by index.
type FlowID struct {
	CoFlow CoFlowID
	Index  int
}

func (id FlowID) String() string { return fmt.Sprintf("c%d/f%d", id.CoFlow, id.Index) }

// FlowSpec is the static description of one flow: endpoints and size.
type FlowSpec struct {
	Src  PortID // sender node
	Dst  PortID // receiver node
	Size Bytes  // total bytes to move
}

// Spec is the static description of a CoFlow as it appears in a trace.
type Spec struct {
	ID      CoFlowID
	Arrival Time
	Flows   []FlowSpec

	// Stage and Wave identify the position of this CoFlow inside a
	// multi-stage DAG query or a multi-wave job (§4.3). Both are zero
	// for standalone CoFlows.
	Stage int
	Wave  int

	// DependsOn lists CoFlows that must complete before this one may
	// start (DAG scheduling). Empty for standalone CoFlows.
	DependsOn []CoFlowID
}

// Width returns the number of flows.
func (s *Spec) Width() int { return len(s.Flows) }

// TotalSize returns the sum of all flow sizes.
func (s *Spec) TotalSize() Bytes {
	var total Bytes
	for _, f := range s.Flows {
		total += f.Size
	}
	return total
}

// MaxFlowSize returns the largest flow size, or zero for an empty spec.
func (s *Spec) MaxFlowSize() Bytes {
	var m Bytes
	for _, f := range s.Flows {
		if f.Size > m {
			m = f.Size
		}
	}
	return m
}

// Validate reports structural problems: no flows, negative sizes, or
// negative port IDs.
func (s *Spec) Validate() error {
	if len(s.Flows) == 0 {
		return fmt.Errorf("coflow %d: no flows", s.ID)
	}
	if s.Arrival < 0 {
		return fmt.Errorf("coflow %d: negative arrival %d", s.ID, s.Arrival)
	}
	for i, f := range s.Flows {
		if f.Size < 0 {
			return fmt.Errorf("coflow %d flow %d: negative size %d", s.ID, i, f.Size)
		}
		if f.Src < 0 || f.Dst < 0 {
			return fmt.Errorf("coflow %d flow %d: negative port (src=%d dst=%d)", s.ID, i, f.Src, f.Dst)
		}
	}
	return nil
}

// Flow is the runtime state of one flow during simulation or execution.
type Flow struct {
	ID FlowID
	// Idx is the flow's dense runtime index, assigned by an IndexSpace
	// at admission (or by EnsureIndexed as a fallback). It keys the
	// scheduler's allocation vector (sched.RateVec) and per-flow scratch
	// arrays; -1 until assigned.
	Idx  int
	Src  PortID
	Dst  PortID
	Size Bytes // ground truth; online schedulers must not read it

	Sent      Bytes // bytes moved so far
	Done      bool
	DoneAt    Time
	Available bool // data ready to send (pipelined frameworks, §4.3)

	// Restarted marks a flow whose progress was reset by a node
	// failure; Slowdown > 1 models a straggler whose achievable rate
	// is divided by the factor. Both are injected by the simulator's
	// dynamics layer.
	Restarted bool
	Slowdown  float64
}

// Remaining returns the bytes still to send.
func (f *Flow) Remaining() Bytes {
	r := f.Size - f.Sent
	if r < 0 {
		return 0
	}
	return r
}

// EffectiveRate caps rate r by the flow's straggler ceiling: a flow
// slowed by factor k can source data at no more than line/k regardless
// of the network rate it is granted (slow disk, overloaded host). The
// ceiling is absolute, as real stragglers are — which is what lets the
// coordinator's throughput observation (§4.3) converge on it.
func (f *Flow) EffectiveRate(r, line Rate) Rate {
	if f.Slowdown > 1 {
		if ceil := line / Rate(f.Slowdown); r > ceil {
			return ceil
		}
	}
	return r
}

// CoFlow is the runtime state of a CoFlow: its spec plus per-flow
// progress and lifecycle timestamps.
type CoFlow struct {
	Spec *Spec
	// Idx is the CoFlow's dense runtime index (see Flow.Idx); -1 until
	// assigned. It keys per-coflow scratch such as contention vectors.
	Idx     int
	Flows   []*Flow
	Arrived Time // when it was released to the scheduler
	Done    bool
	DoneAt  Time

	// Epoch-stamped derived-state caches. The owner of the CoFlow (the
	// sim engine, the coordinator) bumps the epoch via Invalidate
	// whenever a flow's sendability may have changed (completion,
	// availability flip); SendableFlows and Use then recompute at most
	// once per epoch instead of once per call site.
	epoch     uint64
	sendEpoch uint64
	sendCache []*Flow
	useEpoch  uint64
	useCache  PortUse
}

// New instantiates runtime state for a spec. All flows start available
// unless the caller marks them otherwise.
func New(spec *Spec) *CoFlow {
	c := &CoFlow{Spec: spec, Idx: -1, Arrived: spec.Arrival, epoch: 1}
	c.Flows = make([]*Flow, len(spec.Flows))
	for i, fs := range spec.Flows {
		c.Flows[i] = &Flow{
			ID:        FlowID{CoFlow: spec.ID, Index: i},
			Idx:       -1,
			Src:       fs.Src,
			Dst:       fs.Dst,
			Size:      fs.Size,
			Available: true,
			Slowdown:  1,
		}
	}
	return c
}

// Invalidate bumps the CoFlow's mutation epoch, marking the cached
// SendableFlows/Use results stale. Call it after changing any flow's
// Done or Available state.
func (c *CoFlow) Invalidate() { c.epoch++ }

// CacheEpoch returns the current mutation epoch. Incremental consumers
// (sched.ContentionIndex) compare it against a stored value to decide
// whether a CoFlow's derived state must be refreshed.
func (c *CoFlow) CacheEpoch() uint64 { return c.epoch }

// ID returns the CoFlow's identifier.
func (c *CoFlow) ID() CoFlowID { return c.Spec.ID }

// Width returns the number of flows.
func (c *CoFlow) Width() int { return len(c.Flows) }

// CCT returns the completion time span, valid once Done.
func (c *CoFlow) CCT() Time { return c.DoneAt - c.Arrived }

// MaxSent returns m_c, the maximum bytes sent by any single flow —
// Saath's queue-assignment signal (Eq. 1).
func (c *CoFlow) MaxSent() Bytes {
	var m Bytes
	for _, f := range c.Flows {
		if f.Sent > m {
			m = f.Sent
		}
	}
	return m
}

// TotalSent returns the sum of bytes sent by all flows — Aalo's
// queue-assignment signal.
func (c *CoFlow) TotalSent() Bytes {
	var total Bytes
	for _, f := range c.Flows {
		total += f.Sent
	}
	return total
}

// TotalRemaining sums the unsent bytes across flows (clairvoyant).
func (c *CoFlow) TotalRemaining() Bytes {
	var total Bytes
	for _, f := range c.Flows {
		total += f.Remaining()
	}
	return total
}

// PendingFlows returns the flows that are not yet done.
func (c *CoFlow) PendingFlows() []*Flow {
	var out []*Flow
	for _, f := range c.Flows {
		if !f.Done {
			out = append(out, f)
		}
	}
	return out
}

// NumPending counts the flows that are not yet done, without
// allocating.
func (c *CoFlow) NumPending() int {
	n := 0
	for _, f := range c.Flows {
		if !f.Done {
			n++
		}
	}
	return n
}

// FinishedFlowSizes returns the sizes (bytes actually moved) of
// completed flows, used by the dynamics SRTF approximation (§4.3).
func (c *CoFlow) FinishedFlowSizes() []Bytes {
	var out []Bytes
	for _, f := range c.Flows {
		if f.Done {
			out = append(out, f.Sent)
		}
	}
	return out
}

// RefreshDone recomputes Done/DoneAt from flow state. It returns true
// if the CoFlow just transitioned to done.
func (c *CoFlow) RefreshDone() bool {
	if c.Done {
		return false
	}
	var last Time
	for _, f := range c.Flows {
		if !f.Done {
			return false
		}
		if f.DoneAt > last {
			last = f.DoneAt
		}
	}
	c.Done = true
	c.DoneAt = last
	return true
}

// Sendable reports whether the flow still has bytes to move and its
// data is available (pipelined frameworks may hold flows back, §4.3).
func (f *Flow) Sendable() bool { return !f.Done && f.Available }

// SendableFlows returns the flows that can be scheduled right now.
// The result is cached per mutation epoch (see Invalidate) and the
// returned slice is owned by the CoFlow: callers must not mutate or
// retain it across epoch changes.
func (c *CoFlow) SendableFlows() []*Flow {
	// epoch 0 means the CoFlow was built as a zero value rather than
	// via New; caching would wrongly treat "never computed" as fresh,
	// so such CoFlows recompute every call.
	if c.epoch != 0 && c.sendEpoch == c.epoch {
		return c.sendCache
	}
	c.sendCache = c.sendCache[:0]
	for _, f := range c.Flows {
		if f.Sendable() {
			c.sendCache = append(c.sendCache, f)
		}
	}
	c.sendEpoch = c.epoch
	return c.sendCache
}

// PortUse counts, per port, how many of the CoFlow's sendable flows
// touch it (egress for sources, ingress for destinations).
type PortUse struct {
	SrcFlows map[PortID]int // sendable flows sending from each node
	DstFlows map[PortID]int // sendable flows receiving at each node
}

// Use computes the current PortUse over sendable flows. Like
// SendableFlows it is cached per mutation epoch; the returned maps are
// owned by the CoFlow and must not be mutated or retained.
func (c *CoFlow) Use() PortUse {
	if c.epoch != 0 && c.useEpoch == c.epoch && c.useCache.SrcFlows != nil {
		return c.useCache
	}
	if c.useCache.SrcFlows == nil {
		c.useCache = PortUse{SrcFlows: make(map[PortID]int), DstFlows: make(map[PortID]int)}
	} else {
		clear(c.useCache.SrcFlows)
		clear(c.useCache.DstFlows)
	}
	for _, f := range c.Flows {
		if !f.Sendable() {
			continue
		}
		c.useCache.SrcFlows[f.Src]++
		c.useCache.DstFlows[f.Dst]++
	}
	c.useEpoch = c.epoch
	return c.useCache
}

// SrcPorts returns the sorted distinct sender nodes of pending flows.
func (c *CoFlow) SrcPorts() []PortID { return c.ports(true) }

// DstPorts returns the sorted distinct receiver nodes of pending flows.
func (c *CoFlow) DstPorts() []PortID { return c.ports(false) }

func (c *CoFlow) ports(src bool) []PortID {
	seen := make(map[PortID]bool)
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		if src {
			seen[f.Src] = true
		} else {
			seen[f.Dst] = true
		}
	}
	out := make([]PortID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BottleneckRemaining returns Γ, the minimum time to finish the CoFlow
// if every port ran at full capacity bw dedicated to it: the max over
// ports of remaining bytes at that port divided by bw. This is the
// clairvoyant SEBF ordering key (Varys).
func (c *CoFlow) BottleneckRemaining(bw Rate) Time {
	if bw <= 0 {
		return maxTime
	}
	srcRem := make(map[PortID]Bytes)
	dstRem := make(map[PortID]Bytes)
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		srcRem[f.Src] += f.Remaining()
		dstRem[f.Dst] += f.Remaining()
	}
	var worst Bytes
	//saath:order-independent max over map values is commutative
	for _, b := range srcRem {
		if b > worst {
			worst = b
		}
	}
	//saath:order-independent max over map values is commutative
	for _, b := range dstRem {
		if b > worst {
			worst = b
		}
	}
	return bw.TimeToSend(worst)
}
