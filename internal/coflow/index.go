package coflow

// IndexSpace hands out dense runtime indices for CoFlows and their
// flows. The simulation engine (and the prototype coordinator) assigns
// indices at admission and releases them at retirement, so live
// indices stay packed in [0, Cap): allocation vectors and per-flow
// scratch arrays can be plain slices instead of maps keyed by FlowID.
//
// Released indices are recycled LIFO, which keeps the caps close to
// the peak number of concurrently live flows/coflows and makes index
// assignment deterministic for a deterministic event sequence. An
// IndexSpace is not safe for concurrent use; its owner serializes
// admission, scheduling and retirement.
type IndexSpace struct {
	flowNext   int
	coflowNext int
	flowFree   []int
	coflowFree []int
}

// NewIndexSpace returns an empty index space.
func NewIndexSpace() *IndexSpace { return &IndexSpace{} }

// Assign gives c and every one of its flows a dense index. It panics
// if c already holds an index — double admission is a wiring bug.
func (s *IndexSpace) Assign(c *CoFlow) {
	if c.Idx >= 0 {
		panic("coflow: IndexSpace.Assign on an already-indexed CoFlow")
	}
	c.Idx = s.popCoFlow()
	for _, f := range c.Flows {
		f.Idx = s.popFlow()
	}
}

// Release returns c's indices to the free lists and marks c and its
// flows unindexed. Flows are released in reverse order so that an
// immediate re-Assign of an equally-wide CoFlow reproduces the same
// per-flow index mapping (the coordinator's update() path relies on
// this to keep per-flow bookkeeping aligned).
func (s *IndexSpace) Release(c *CoFlow) {
	if c.Idx < 0 {
		return
	}
	for i := len(c.Flows) - 1; i >= 0; i-- {
		f := c.Flows[i]
		if f.Idx >= 0 {
			s.flowFree = append(s.flowFree, f.Idx)
			f.Idx = -1
		}
	}
	s.coflowFree = append(s.coflowFree, c.Idx)
	c.Idx = -1
}

// FlowCap returns an exclusive upper bound on every live flow index —
// the length allocation vectors must be sized to.
func (s *IndexSpace) FlowCap() int { return s.flowNext }

// CoFlowCap returns an exclusive upper bound on every live CoFlow
// index.
func (s *IndexSpace) CoFlowCap() int { return s.coflowNext }

func (s *IndexSpace) popFlow() int {
	if n := len(s.flowFree); n > 0 {
		idx := s.flowFree[n-1]
		s.flowFree = s.flowFree[:n-1]
		return idx
	}
	idx := s.flowNext
	s.flowNext++
	return idx
}

func (s *IndexSpace) popCoFlow() int {
	if n := len(s.coflowFree); n > 0 {
		idx := s.coflowFree[n-1]
		s.coflowFree = s.coflowFree[:n-1]
		return idx
	}
	idx := s.coflowNext
	s.coflowNext++
	return idx
}

// EnsureIndexed assigns fallback dense indices to any unindexed CoFlow
// or flow in active and returns exclusive upper bounds on the flow and
// coflow indices present. It is the safety net for hand-built
// snapshots (tests, library callers that bypass the engine); the
// engine itself indexes through an IndexSpace and never takes this
// path. Assignment is deterministic in slice order, and already-held
// indices are preserved.
func EnsureIndexed(active []*CoFlow) (flowCap, coflowCap int) {
	for _, c := range active {
		if c.Idx >= coflowCap {
			coflowCap = c.Idx + 1
		}
		for _, f := range c.Flows {
			if f.Idx >= flowCap {
				flowCap = f.Idx + 1
			}
		}
	}
	for _, c := range active {
		if c.Idx < 0 {
			c.Idx = coflowCap
			coflowCap++
		}
		for _, f := range c.Flows {
			if f.Idx < 0 {
				f.Idx = flowCap
				flowCap++
			}
		}
	}
	return flowCap, coflowCap
}
