package coflow

import "testing"

func indexedCoflow(id CoFlowID, width int) *CoFlow {
	spec := &Spec{ID: id}
	for i := 0; i < width; i++ {
		spec.Flows = append(spec.Flows, FlowSpec{Src: PortID(i), Dst: PortID(i + width), Size: MB})
	}
	return New(spec)
}

func TestIndexSpaceAssignRelease(t *testing.T) {
	s := NewIndexSpace()
	a := indexedCoflow(1, 3)
	b := indexedCoflow(2, 2)
	s.Assign(a)
	s.Assign(b)
	if a.Idx != 0 || b.Idx != 1 {
		t.Fatalf("coflow idxs = %d, %d", a.Idx, b.Idx)
	}
	for i, f := range a.Flows {
		if f.Idx != i {
			t.Fatalf("a flow %d idx = %d", i, f.Idx)
		}
	}
	if s.FlowCap() != 5 || s.CoFlowCap() != 2 {
		t.Fatalf("caps = %d/%d, want 5/2", s.FlowCap(), s.CoFlowCap())
	}

	// Release recycles: an equally-wide coflow assigned right after a
	// release reproduces the same per-flow mapping, and the caps do not
	// grow.
	s.Release(a)
	if a.Idx != -1 || a.Flows[0].Idx != -1 {
		t.Fatal("release did not clear indices")
	}
	c := indexedCoflow(3, 3)
	s.Assign(c)
	for i, f := range c.Flows {
		if f.Idx != i {
			t.Fatalf("recycled flow %d idx = %d, want %d", i, f.Idx, i)
		}
	}
	if s.FlowCap() != 5 || s.CoFlowCap() != 2 {
		t.Fatalf("caps grew on recycle: %d/%d", s.FlowCap(), s.CoFlowCap())
	}
}

func TestIndexSpaceDoubleAssignPanics(t *testing.T) {
	s := NewIndexSpace()
	c := indexedCoflow(1, 1)
	s.Assign(c)
	defer func() {
		if recover() == nil {
			t.Fatal("double Assign did not panic")
		}
	}()
	s.Assign(c)
}

func TestEnsureIndexedPreservesAndFills(t *testing.T) {
	s := NewIndexSpace()
	a := indexedCoflow(1, 2)
	s.Assign(a)
	b := indexedCoflow(2, 2) // unindexed
	fc, cc := EnsureIndexed([]*CoFlow{a, b})
	if fc != 4 || cc != 2 {
		t.Fatalf("caps = %d/%d, want 4/2", fc, cc)
	}
	if a.Flows[0].Idx != 0 || a.Flows[1].Idx != 1 {
		t.Fatal("EnsureIndexed clobbered existing indices")
	}
	if b.Flows[0].Idx != 2 || b.Flows[1].Idx != 3 || b.Idx != 1 {
		t.Fatalf("fallback indices = %d,%d (coflow %d)", b.Flows[0].Idx, b.Flows[1].Idx, b.Idx)
	}
}

// TestSendableCacheInvalidation: SendableFlows and Use are cached per
// mutation epoch; Invalidate refreshes them after flow-state changes.
func TestSendableCacheInvalidation(t *testing.T) {
	c := indexedCoflow(1, 3)
	if got := len(c.SendableFlows()); got != 3 {
		t.Fatalf("sendable = %d", got)
	}
	u := c.Use()
	if u.SrcFlows[0] != 1 {
		t.Fatalf("use = %+v", u)
	}
	c.Flows[0].Done = true
	c.Invalidate()
	if got := len(c.SendableFlows()); got != 2 {
		t.Fatalf("post-invalidate sendable = %d", got)
	}
	if u := c.Use(); u.SrcFlows[0] != 0 {
		t.Fatalf("post-invalidate use = %+v", u)
	}
	c.Flows[1].Available = false
	c.Invalidate()
	if got := c.NumPending(); got != 2 {
		t.Fatalf("pending = %d", got) // availability does not affect pending
	}
	if got := len(c.SendableFlows()); got != 1 {
		t.Fatalf("sendable after availability flip = %d", got)
	}
}
