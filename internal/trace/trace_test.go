package trace

import (
	"bytes"
	"strings"
	"testing"

	"saath/internal/coflow"
)

const sampleTrace = `4 2
0 100 2 0 1 2 2:8 3:4
1 250 1 3 1 0:6
`

func TestParseBasic(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumPorts != 4 || len(tr.Specs) != 2 {
		t.Fatalf("ports=%d coflows=%d", tr.NumPorts, len(tr.Specs))
	}
	c0 := tr.Specs[0]
	if c0.ID != 0 || c0.Arrival != 100*coflow.Millisecond {
		t.Fatalf("c0 = %+v", c0)
	}
	// 2 mappers × 2 reducers = 4 flows; reducer 2 carries 8 MB split
	// across 2 mappers -> 4 MB per flow.
	if c0.Width() != 4 {
		t.Fatalf("width = %d", c0.Width())
	}
	var toPort2 coflow.Bytes
	for _, f := range c0.Flows {
		if f.Dst == 2 {
			toPort2 += f.Size
			if f.Size != 4*coflow.MB {
				t.Fatalf("flow to reducer 2 size = %d", f.Size)
			}
		}
	}
	if toPort2 != 8*coflow.MB {
		t.Fatalf("reducer 2 total = %d", toPort2)
	}
	c1 := tr.Specs[1]
	if c1.Width() != 1 || c1.Flows[0].Size != 6*coflow.MB {
		t.Fatalf("c1 = %+v", c1.Flows)
	}
}

func TestParseSortsByArrival(t *testing.T) {
	input := "4 2\n5 900 1 0 1 1:1\n6 100 1 2 1 3:1\n"
	tr, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Specs[0].ID != 6 || tr.Specs[1].ID != 5 {
		t.Fatalf("order = %d, %d", tr.Specs[0].ID, tr.Specs[1].ID)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"short header", "4\n"},
		{"missing coflow", "4 1\n"},
		{"bad id", "4 1\nx 0 1 0 1 1:1\n"},
		{"bad mapper count", "4 1\n0 0 z 0 1 1:1\n"},
		{"zero mappers", "4 1\n0 0 0 1 1:1\n"},
		{"missing reducer", "4 1\n0 0 1 0 2 1:1\n"},
		{"no colon", "4 1\n0 0 1 0 1 11\n"},
		{"bad size", "4 1\n0 0 1 0 1 1:x\n"},
		{"negative size", "4 1\n0 0 1 0 1 1:-3\n"},
		{"port out of range", "2 1\n0 0 1 0 1 9:1\n"},
		{"duplicate id", "4 2\n0 0 1 0 1 1:1\n0 0 1 2 1 3:1\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(back.Specs) != len(orig.Specs) {
		t.Fatalf("coflows %d != %d", len(back.Specs), len(orig.Specs))
	}
	for i := range orig.Specs {
		a, b := orig.Specs[i], back.Specs[i]
		if a.ID != b.ID || a.Arrival != b.Arrival || a.Width() != b.Width() {
			t.Fatalf("coflow %d mismatch: %+v vs %+v", i, a, b)
		}
		if a.TotalSize() != b.TotalSize() {
			t.Fatalf("coflow %d size %d != %d", i, a.TotalSize(), b.TotalSize())
		}
	}
}

func TestSynthRoundTrip(t *testing.T) {
	tr := Synthesize(SynthConfig{
		Seed: 1, NumPorts: 20, NumCoFlows: 40,
		MeanInterArrival: 50 * coflow.Millisecond,
		SingleFlowFrac:   0.2, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
		SmallFracNarrow: 0.8, SmallFracWide: 0.4,
		MinSmall: coflow.MB, MaxSmall: 100 * coflow.MB,
		MinLarge: 100 * coflow.MB, MaxLarge: coflow.GB,
	}, "t")
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Specs) != 40 {
		t.Fatalf("coflows = %d", len(back.Specs))
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr, _ := Parse(strings.NewReader(sampleTrace))
	cp := tr.Clone()
	cp.Specs[0].Flows[0].Size = 999
	cp.Specs[0].Arrival = 0
	if tr.Specs[0].Flows[0].Size == 999 || tr.Specs[0].Arrival == 0 {
		t.Fatal("Clone shares state with original")
	}
}

func TestScaleArrivals(t *testing.T) {
	tr, _ := Parse(strings.NewReader(sampleTrace))
	tr.ScaleArrivals(0.5)
	if tr.Specs[0].Arrival != 50*coflow.Millisecond {
		t.Fatalf("arrival = %v", tr.Specs[0].Arrival)
	}
}

func TestSynthDeterministic(t *testing.T) {
	a := SynthFB(7)
	b := SynthFB(7)
	if len(a.Specs) != len(b.Specs) {
		t.Fatal("lengths differ")
	}
	for i := range a.Specs {
		if a.Specs[i].Arrival != b.Specs[i].Arrival || a.Specs[i].TotalSize() != b.Specs[i].TotalSize() {
			t.Fatalf("spec %d differs", i)
		}
	}
	c := SynthFB(8)
	same := true
	for i := range a.Specs {
		if a.Specs[i].TotalSize() != c.Specs[i].TotalSize() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSynthFBMarginals(t *testing.T) {
	tr := SynthFB(1)
	s := Summarize(tr)
	if s.NumCoFlows != 526 || s.NumPorts != 150 {
		t.Fatalf("shape: %d coflows %d ports", s.NumCoFlows, s.NumPorts)
	}
	// Published marginals: 23% single, 50% equal, 27% unequal, with
	// sampling slack.
	if s.SingleFrac < 0.17 || s.SingleFrac > 0.29 {
		t.Errorf("single fraction = %.2f, want ~0.23", s.SingleFrac)
	}
	if s.EqualFrac < 0.40 || s.EqualFrac > 0.60 {
		t.Errorf("equal fraction = %.2f, want ~0.50", s.EqualFrac)
	}
	if s.UnequalFrac < 0.17 || s.UnequalFrac > 0.37 {
		t.Errorf("unequal fraction = %.2f, want ~0.27", s.UnequalFrac)
	}
	if s.MaxWidth <= 10 {
		t.Errorf("max width = %d, want wide coflows present", s.MaxWidth)
	}
}

func TestSynthOSPBusierThanFB(t *testing.T) {
	fb := Summarize(SynthFB(3))
	osp := Summarize(SynthOSP(3))
	if osp.NumCoFlows < 2*fb.NumCoFlows/2 { // O(1000) vs 526
		t.Fatalf("osp coflows = %d", osp.NumCoFlows)
	}
	// The paper attributes OSP's higher P90 speedup to busier ports.
	fbDensity := fb.PortBusyness / fb.ArrivalSpan.Seconds()
	ospDensity := osp.PortBusyness / osp.ArrivalSpan.Seconds()
	if ospDensity <= fbDensity {
		t.Errorf("OSP port density %.2f/s not busier than FB %.2f/s", ospDensity, fbDensity)
	}
}

func TestClassify(t *testing.T) {
	single := &coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{{Size: 5}}}
	if Classify(single) != SingleFlow {
		t.Fatal("single misclassified")
	}
	equal := &coflow.Spec{ID: 2, Flows: []coflow.FlowSpec{{Size: 100, Dst: 1}, {Size: 100, Dst: 2}}}
	if Classify(equal) != EqualLength {
		t.Fatal("equal misclassified")
	}
	unequal := &coflow.Spec{ID: 3, Flows: []coflow.FlowSpec{{Size: 100, Dst: 1}, {Size: 500, Dst: 2}}}
	if Classify(unequal) != UnequalLength {
		t.Fatal("unequal misclassified")
	}
	if SingleFlow.String() != "single" || EqualLength.String() != "equal" || UnequalLength.String() != "unequal" {
		t.Fatal("bad class names")
	}
}

func TestNormalizedSizeStdDev(t *testing.T) {
	s := &coflow.Spec{Flows: []coflow.FlowSpec{{Size: 10}, {Size: 10}}}
	if got := NormalizedSizeStdDev(s); got != 0 {
		t.Fatalf("equal flows dev = %v", got)
	}
	s = &coflow.Spec{Flows: []coflow.FlowSpec{{Size: 0}, {Size: 0}}}
	if got := NormalizedSizeStdDev(s); got != 0 {
		t.Fatalf("zero flows dev = %v", got)
	}
	s = &coflow.Spec{Flows: []coflow.FlowSpec{{Size: 1}, {Size: 3}}}
	// mean 2, stddev 1, normalized 0.5
	if got := NormalizedSizeStdDev(s); got != 0.5 {
		t.Fatalf("dev = %v, want 0.5", got)
	}
}

func TestMicroTraces(t *testing.T) {
	for _, tr := range []*Trace{Fig1Trace(), Fig4Trace(), Fig8Trace(), Fig17Trace()} {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
	}
	if got := len(Fig1Trace().Specs); got != 4 {
		t.Fatalf("fig1 coflows = %d", got)
	}
	// Fig 17: C1 is two 5-unit flows.
	c1 := Fig17Trace().Specs[0]
	if c1.Width() != 2 || c1.Flows[0].Size != 5*MicroUnitBytes {
		t.Fatalf("fig17 C1 = %+v", c1.Flows)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&Trace{NumPorts: 4})
	if s.NumCoFlows != 0 || s.TotalBytes != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}
