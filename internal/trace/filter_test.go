package trace

import (
	"testing"

	"saath/internal/coflow"
)

func filterFixture() *Trace {
	return &Trace{Name: "fx", NumPorts: 10, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 7, Dst: 9, Size: 10 * coflow.MB}}},
		{ID: 2, Arrival: coflow.Second, Flows: []coflow.FlowSpec{{Src: 2, Dst: 9, Size: 200 * coflow.MB}}},
		{ID: 3, Arrival: 2 * coflow.Second, Flows: []coflow.FlowSpec{
			{Src: 2, Dst: 7, Size: coflow.MB}, {Src: 7, Dst: 2, Size: coflow.MB}}},
	}}
}

func TestFilterBySize(t *testing.T) {
	tr := filterFixture()
	small := tr.Filter(func(s *coflow.Spec) bool { return s.TotalSize() <= 100*coflow.MB })
	if len(small.Specs) != 2 {
		t.Fatalf("kept %d", len(small.Specs))
	}
	// Deep copy: mutating the filtered trace leaves the original alone.
	small.Specs[0].Flows[0].Size = 1
	if tr.Specs[0].Flows[0].Size == 1 {
		t.Fatal("Filter shares flow storage")
	}
}

func TestWindowRebasesArrivals(t *testing.T) {
	tr := filterFixture()
	w := tr.Window(coflow.Second, 3*coflow.Second)
	if len(w.Specs) != 2 {
		t.Fatalf("window kept %d", len(w.Specs))
	}
	if w.Specs[0].Arrival != 0 {
		t.Fatalf("first arrival = %v, want rebased 0", w.Specs[0].Arrival)
	}
	if w.Specs[1].Arrival != coflow.Second {
		t.Fatalf("second arrival = %v", w.Specs[1].Arrival)
	}
	if empty := tr.Window(50*coflow.Second, 60*coflow.Second); len(empty.Specs) != 0 {
		t.Fatal("empty window not empty")
	}
}

func TestHead(t *testing.T) {
	tr := filterFixture()
	h := tr.Head(2)
	if len(h.Specs) != 2 || h.Specs[0].ID != 1 || h.Specs[1].ID != 2 {
		t.Fatalf("head = %+v", h.Specs)
	}
	if all := tr.Head(99); len(all.Specs) != 3 {
		t.Fatal("head beyond length should keep all")
	}
}

func TestCompactPorts(t *testing.T) {
	tr := filterFixture()
	c := tr.CompactPorts()
	// Used ports {2, 7, 9} -> {0, 1, 2}.
	if c.NumPorts != 3 {
		t.Fatalf("NumPorts = %d", c.NumPorts)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Relative structure preserved: coflow 3's two flows still connect
	// the same pair of (renumbered) nodes in both directions.
	var c3 *coflow.Spec
	for _, s := range c.Specs {
		if s.ID == 3 {
			c3 = s
		}
	}
	if c3.Flows[0].Src != c3.Flows[1].Dst || c3.Flows[0].Dst != c3.Flows[1].Src {
		t.Fatalf("compacted flows lost structure: %+v", c3.Flows)
	}
	// Sizes and arrivals untouched.
	if c.Specs[0].Arrival != tr.Specs[0].Arrival || c.TotalBytes() != tr.TotalBytes() {
		t.Fatal("compaction changed payloads")
	}
}

func TestCompactPortsEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty", NumPorts: 5}
	c := tr.CompactPorts()
	if c.NumPorts != 1 {
		t.Fatalf("NumPorts = %d", c.NumPorts)
	}
}
