package trace

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"saath/internal/coflow"
)

// mixPair is the small fb + incast component pair the mix tests share.
func mixPair(fbWeight, inWeight float64) []MixComponent {
	fbCfg := DefaultFBConfig(0)
	fbCfg.NumPorts, fbCfg.NumCoFlows = 20, 40
	inCfg := DefaultIncastConfig(0)
	inCfg.NumPorts, inCfg.NumCoFlows, inCfg.Degree, inCfg.Hotspots = 12, 40, 5, 3
	return []MixComponent{
		{Name: "fb", Weight: fbWeight, Gen: func(seed int64) *Trace {
			c := fbCfg
			c.Seed = seed
			return Synthesize(c, "fb")
		}},
		{Name: "incast", Weight: inWeight, Gen: func(seed int64) *Trace {
			c := inCfg
			c.Seed = seed
			return mustFan(SynthesizeIncast(c, "incast"))
		}},
	}
}

func TestMixValidation(t *testing.T) {
	comps := mixPair(1, 1)
	cases := []struct {
		name  string
		comps []MixComponent
		want  string
	}{
		{"no components", nil, "no components"},
		{"empty name", []MixComponent{{Gen: comps[0].Gen}}, "empty name"},
		{"duplicate name", []MixComponent{comps[0], comps[0]}, "duplicate"},
		{"nil generator", []MixComponent{{Name: "x"}}, "no generator"},
		{"negative weight", []MixComponent{{Name: "x", Gen: comps[0].Gen, Weight: -1}}, "negative weight"},
	}
	for _, tc := range cases {
		if _, err := Mix("m", MixConfig{Seed: 1}, tc.comps...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestMixDeterminism: the mix is a pure function of (cfg, components).
func TestMixDeterminism(t *testing.T) {
	gen := func(seed int64) *Trace {
		tr, err := Mix("m", MixConfig{Seed: seed, NumCoFlows: 50}, mixPair(1, 1)...)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if !reflect.DeepEqual(gen(3), gen(3)) {
		t.Fatal("same seed produced different mixes")
	}
	if reflect.DeepEqual(gen(3).Specs, gen(4).Specs) {
		t.Fatal("different seeds produced identical mixes")
	}
}

// TestMixByteIdentity: every mixed CoFlow's flows are copied verbatim
// from one component's draw — the mix re-times and re-identifies, it
// never resizes or rewires.
func TestMixByteIdentity(t *testing.T) {
	comps := mixPair(1, 1)
	tr, err := Mix("m", MixConfig{Seed: 9}, comps...)
	if err != nil {
		t.Fatal(err)
	}
	// Regenerate each component exactly as Mix does (salted seed) and
	// index the flow multisets it offered.
	offered := make(map[string]int)
	for _, c := range comps {
		for _, s := range c.Gen(saltSeed(9, c.Name)).Specs {
			offered[flowKey(s)]++
		}
	}
	for _, s := range tr.Specs {
		k := flowKey(s)
		if offered[k] == 0 {
			t.Fatalf("mixed coflow %d's flows match no component draw", s.ID)
		}
		offered[k]--
	}
}

// flowKey canonicalizes a spec's flow multiset.
func flowKey(s *coflow.Spec) string {
	flows := append([]coflow.FlowSpec(nil), s.Flows...)
	sort.Slice(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Size < b.Size
	})
	var sb strings.Builder
	for _, f := range flows {
		fmt.Fprintf(&sb, "%d>%d:%d;", f.Src, f.Dst, f.Size)
	}
	return sb.String()
}

// TestMixStructure: IDs are dense, arrivals sorted, weights steer the
// component shares, and exhausted components renormalize.
func TestMixStructure(t *testing.T) {
	tr, err := Mix("m", MixConfig{Seed: 5, NumCoFlows: 60}, mixPair(3, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Specs) != 60 {
		t.Fatalf("mixed %d coflows, want 60", len(tr.Specs))
	}
	var prev coflow.Time
	incast := 0
	for i, s := range tr.Specs {
		if s.ID != coflow.CoFlowID(i) {
			t.Fatalf("coflow %d has id %d, want dense re-identification", i, s.ID)
		}
		if s.Arrival < prev {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		prev = s.Arrival
		// Incast coflows share one destination across >1 flows; the fb
		// component's multi-flow coflows span several reducers often
		// enough that this is a serviceable classifier for share counts.
		if len(s.Flows) == 5 && sameDst(s) {
			incast++
		}
	}
	// Weight 3:1 over 60 draws: expect roughly 15 incast coflows; allow
	// a wide deterministic band.
	if incast < 5 || incast > 30 {
		t.Fatalf("incast share %d of 60 under 3:1 weights", incast)
	}

	// Zero weight on one component excludes it entirely.
	fbOnly, err := Mix("m", MixConfig{Seed: 5}, mixPair(1, 0)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(fbOnly.Specs) != 40 {
		t.Fatalf("fb-only mix has %d coflows, want the fb component's 40", len(fbOnly.Specs))
	}
	for _, s := range fbOnly.Specs {
		if len(s.Flows) == 5 && sameDst(s) {
			t.Fatal("zero-weight component leaked into the mix")
		}
	}
	// ...including its port space: the 20-port fb component at weight 0
	// must not widen an incast-only (12-port) mix.
	inOnly, err := Mix("m", MixConfig{Seed: 5}, mixPair(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if inOnly.NumPorts != 12 {
		t.Fatalf("incast-only mix spans %d ports, want the live component's 12", inOnly.NumPorts)
	}
	// All weights zero means equal shares, not an empty mix.
	equal, err := Mix("m", MixConfig{Seed: 5}, mixPair(0, 0)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(equal.Specs) != 80 || equal.NumPorts != 20 {
		t.Fatalf("all-zero-weight mix: %d coflows on %d ports, want 80 on 20", len(equal.Specs), equal.NumPorts)
	}

	// Asking for more coflows than the components offer caps at the
	// total available.
	all, err := Mix("m", MixConfig{Seed: 5, NumCoFlows: 10_000}, mixPair(1, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Specs) != 80 {
		t.Fatalf("uncapped mix has %d coflows, want 80", len(all.Specs))
	}
}

func sameDst(s *coflow.Spec) bool {
	for _, f := range s.Flows {
		if f.Dst != s.Flows[0].Dst {
			return false
		}
	}
	return true
}

func TestSynthMix(t *testing.T) {
	tr := SynthMix(2)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumPorts != 150 { // the FB component's port space
		t.Fatalf("ports = %d, want 150", tr.NumPorts)
	}
	if len(tr.Specs) != 400 {
		t.Fatalf("coflows = %d, want 400", len(tr.Specs))
	}
	if !reflect.DeepEqual(tr, SynthMix(2)) {
		t.Fatal("SynthMix is not deterministic")
	}
}
