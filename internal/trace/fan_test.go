package trace

import (
	"reflect"
	"testing"

	"saath/internal/coflow"
)

func TestSynthIncastShape(t *testing.T) {
	cfg := DefaultIncastConfig(1)
	tr := SynthesizeIncast(cfg, "incast")
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Specs) != cfg.NumCoFlows {
		t.Fatalf("%d coflows, want %d", len(tr.Specs), cfg.NumCoFlows)
	}
	aggs := make(map[coflow.PortID]bool)
	for _, s := range tr.Specs {
		if len(s.Flows) != cfg.Degree {
			t.Fatalf("coflow %d width %d, want %d", s.ID, len(s.Flows), cfg.Degree)
		}
		dst := s.Flows[0].Dst
		srcs := make(map[coflow.PortID]bool)
		for _, f := range s.Flows {
			if f.Dst != dst {
				t.Fatalf("coflow %d is not an incast: dsts %v and %v", s.ID, dst, f.Dst)
			}
			if f.Src == dst {
				t.Fatalf("coflow %d: flow sends to itself", s.ID)
			}
			if srcs[f.Src] {
				t.Fatalf("coflow %d: duplicate src %v", s.ID, f.Src)
			}
			srcs[f.Src] = true
		}
		aggs[dst] = true
	}
	if len(aggs) > cfg.Hotspots {
		t.Fatalf("%d distinct aggregators, want <= %d hotspots", len(aggs), cfg.Hotspots)
	}
}

func TestSynthBroadcastShape(t *testing.T) {
	cfg := DefaultBroadcastConfig(2)
	tr := SynthesizeBroadcast(cfg, "bcast")
	roots := make(map[coflow.PortID]bool)
	for _, s := range tr.Specs {
		src := s.Flows[0].Src
		for _, f := range s.Flows {
			if f.Src != src {
				t.Fatalf("coflow %d is not a broadcast: srcs %v and %v", s.ID, src, f.Src)
			}
			if f.Dst == src {
				t.Fatalf("coflow %d: flow sends to itself", s.ID)
			}
		}
		roots[src] = true
	}
	if len(roots) > cfg.Hotspots {
		t.Fatalf("%d distinct roots, want <= %d hotspots", len(roots), cfg.Hotspots)
	}
}

func TestSynthFanDeterminism(t *testing.T) {
	a, b := SynthIncast(5), SynthIncast(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different incast traces")
	}
	if reflect.DeepEqual(SynthIncast(5).Specs, SynthIncast(6).Specs) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFanSkew(t *testing.T) {
	cfg := DefaultIncastConfig(1)
	cfg.Skew = 0
	equal := SynthesizeIncast(cfg, "eq")
	for _, s := range equal.Specs {
		first := s.Flows[0].Size
		for _, f := range s.Flows {
			// Equal shares; integer truncation may differ by a byte.
			if diff := f.Size - first; diff < -1 || diff > 1 {
				t.Fatalf("skew=0 coflow %d has unequal flows: %d vs %d", s.ID, first, f.Size)
			}
		}
	}
	cfg.Skew = 1.5
	skewed := SynthesizeIncast(cfg, "sk")
	unequal := false
	for _, s := range skewed.Specs {
		first := s.Flows[0].Size
		for _, f := range s.Flows {
			if diff := f.Size - first; diff < -1 || diff > 1 {
				unequal = true
			}
		}
	}
	if !unequal {
		t.Fatal("skew=1.5 produced only equal-length coflows")
	}
}

func TestFanConfigClamping(t *testing.T) {
	tr := SynthesizeIncast(FanConfig{
		Seed: 1, NumPorts: 4, NumCoFlows: 10, Degree: 99,
		MeanInterArrival: coflow.Millisecond,
	}, "clamped")
	for _, s := range tr.Specs {
		if len(s.Flows) != 3 { // NumPorts-1
			t.Fatalf("degree not clamped: width %d", len(s.Flows))
		}
	}
}
