package trace

import (
	"reflect"
	"strings"
	"testing"

	"saath/internal/coflow"
)

func TestSynthIncastShape(t *testing.T) {
	cfg := DefaultIncastConfig(1)
	tr, err := SynthesizeIncast(cfg, "incast")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Specs) != cfg.NumCoFlows {
		t.Fatalf("%d coflows, want %d", len(tr.Specs), cfg.NumCoFlows)
	}
	aggs := make(map[coflow.PortID]bool)
	for _, s := range tr.Specs {
		if len(s.Flows) != cfg.Degree {
			t.Fatalf("coflow %d width %d, want %d", s.ID, len(s.Flows), cfg.Degree)
		}
		dst := s.Flows[0].Dst
		srcs := make(map[coflow.PortID]bool)
		for _, f := range s.Flows {
			if f.Dst != dst {
				t.Fatalf("coflow %d is not an incast: dsts %v and %v", s.ID, dst, f.Dst)
			}
			if f.Src == dst {
				t.Fatalf("coflow %d: flow sends to itself", s.ID)
			}
			if srcs[f.Src] {
				t.Fatalf("coflow %d: duplicate src %v", s.ID, f.Src)
			}
			srcs[f.Src] = true
		}
		aggs[dst] = true
	}
	if len(aggs) > cfg.Hotspots {
		t.Fatalf("%d distinct aggregators, want <= %d hotspots", len(aggs), cfg.Hotspots)
	}
}

func TestSynthBroadcastShape(t *testing.T) {
	cfg := DefaultBroadcastConfig(2)
	tr, err := SynthesizeBroadcast(cfg, "bcast")
	if err != nil {
		t.Fatal(err)
	}
	roots := make(map[coflow.PortID]bool)
	for _, s := range tr.Specs {
		src := s.Flows[0].Src
		for _, f := range s.Flows {
			if f.Src != src {
				t.Fatalf("coflow %d is not a broadcast: srcs %v and %v", s.ID, src, f.Src)
			}
			if f.Dst == src {
				t.Fatalf("coflow %d: flow sends to itself", s.ID)
			}
		}
		roots[src] = true
	}
	if len(roots) > cfg.Hotspots {
		t.Fatalf("%d distinct roots, want <= %d hotspots", len(roots), cfg.Hotspots)
	}
}

func TestSynthFanDeterminism(t *testing.T) {
	a, b := SynthIncast(5), SynthIncast(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different incast traces")
	}
	if reflect.DeepEqual(SynthIncast(5).Specs, SynthIncast(6).Specs) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFanSkew(t *testing.T) {
	cfg := DefaultIncastConfig(1)
	cfg.Skew = 0
	equal, err := SynthesizeIncast(cfg, "eq")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range equal.Specs {
		first := s.Flows[0].Size
		for _, f := range s.Flows {
			// Equal shares; integer truncation may differ by a byte.
			if diff := f.Size - first; diff < -1 || diff > 1 {
				t.Fatalf("skew=0 coflow %d has unequal flows: %d vs %d", s.ID, first, f.Size)
			}
		}
	}
	cfg.Skew = 1.5
	skewed, err := SynthesizeIncast(cfg, "sk")
	if err != nil {
		t.Fatal(err)
	}
	unequal := false
	for _, s := range skewed.Specs {
		first := s.Flows[0].Size
		for _, f := range s.Flows {
			if diff := f.Size - first; diff < -1 || diff > 1 {
				unequal = true
			}
		}
	}
	if !unequal {
		t.Fatal("skew=1.5 produced only equal-length coflows")
	}
}

func TestFanConfigClamping(t *testing.T) {
	tr, err := SynthesizeIncast(FanConfig{
		Seed: 1, NumPorts: 4, NumCoFlows: 10, Degree: 99,
		MeanInterArrival: coflow.Millisecond,
	}, "clamped")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Specs {
		if len(s.Flows) != 3 { // NumPorts-1
			t.Fatalf("degree not clamped: width %d", len(s.Flows))
		}
	}
}

// TestFanConfigValidation: configurations the generators cannot
// satisfy fail with a descriptive error instead of silently producing
// nonsense (or panicking).
func TestFanConfigValidation(t *testing.T) {
	valid := DefaultIncastConfig(1)
	cases := []struct {
		name   string
		mutate func(*FanConfig)
		want   string // substring of the expected error
	}{
		{"one port", func(c *FanConfig) { c.NumPorts = 1 }, "NumPorts"},
		{"no coflows", func(c *FanConfig) { c.NumCoFlows = 0 }, "NumCoFlows"},
		{"zero degree", func(c *FanConfig) { c.Degree = 0 }, "Degree"},
		{"negative degree", func(c *FanConfig) { c.Degree = -3 }, "Degree"},
		{"hotspots exceed ports", func(c *FanConfig) { c.Hotspots = c.NumPorts + 1 }, "Hotspots"},
		{"inverted size range", func(c *FanConfig) { c.MinSize = 2 * coflow.GB; c.MaxSize = coflow.MB }, "MinSize"},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mutate(&cfg)
		for _, synth := range []struct {
			kind string
			gen  func(FanConfig, string) (*Trace, error)
		}{{"incast", SynthesizeIncast}, {"broadcast", SynthesizeBroadcast}} {
			if _, err := synth.gen(cfg, "bad"); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s/%s: err = %v, want substring %q", synth.kind, tc.name, err, tc.want)
			}
		}
	}
	// A MaxSize left zero is a defaulted field, not an inverted range.
	cfg := valid
	cfg.MinSize, cfg.MaxSize = 2*coflow.GB, 0
	if _, err := SynthesizeIncast(cfg, "defaulted"); err != nil {
		t.Errorf("zero MaxSize rejected: %v", err)
	}
}

// TestBroadcastNotMirrorOfIncast pins the DefaultBroadcastConfig seed
// salt: at the same seed, the broadcast trace must not be the
// flow-for-flow src/dst mirror of the incast trace (both families
// previously consumed the identical RNG draw sequence).
func TestBroadcastNotMirrorOfIncast(t *testing.T) {
	const seed = 7
	in, bc := SynthIncast(seed), SynthBroadcast(seed)
	if len(in.Specs) != len(bc.Specs) {
		return // already not mirrored
	}
	mirrored := true
	for i := range in.Specs {
		a, b := in.Specs[i], bc.Specs[i]
		if a.Arrival != b.Arrival || len(a.Flows) != len(b.Flows) {
			mirrored = false
			break
		}
		for j := range a.Flows {
			fa, fb := a.Flows[j], b.Flows[j]
			if fa.Src != fb.Dst || fa.Dst != fb.Src || fa.Size != fb.Size {
				mirrored = false
				break
			}
		}
		if !mirrored {
			break
		}
	}
	if mirrored {
		t.Fatal("broadcast trace at seed 7 is a byte-for-byte mirror of the incast trace")
	}
	// The salt must stay deterministic: same seed, same broadcast trace.
	if !reflect.DeepEqual(bc, SynthBroadcast(seed)) {
		t.Fatal("salted broadcast generation is not deterministic")
	}
}
