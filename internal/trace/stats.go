package trace

import (
	"math"

	"saath/internal/coflow"
)

// FlowLengthClass partitions CoFlows by flow-length dispersion, the
// split used throughout §2.3 and Fig. 13.
type FlowLengthClass int

const (
	// SingleFlow CoFlows have exactly one flow.
	SingleFlow FlowLengthClass = iota
	// EqualLength CoFlows have >1 flows of (near-)equal size.
	EqualLength
	// UnequalLength CoFlows have >1 flows of differing sizes.
	UnequalLength
)

func (c FlowLengthClass) String() string {
	switch c {
	case SingleFlow:
		return "single"
	case EqualLength:
		return "equal"
	case UnequalLength:
		return "unequal"
	default:
		return "unknown"
	}
}

// equalTolerance is the relative spread under which flow lengths count
// as equal; the FB trace stores integer megabytes, so division by the
// mapper count introduces sub-percent rounding we must ignore.
const equalTolerance = 0.01

// Classify buckets a spec by flow-length dispersion.
func Classify(s *coflow.Spec) FlowLengthClass {
	if len(s.Flows) <= 1 {
		return SingleFlow
	}
	if NormalizedSizeStdDev(s) <= equalTolerance {
		return EqualLength
	}
	return UnequalLength
}

// NormalizedSizeStdDev returns the standard deviation of the spec's
// flow sizes divided by their mean (Fig. 2(b)). Zero-mean specs return 0.
func NormalizedSizeStdDev(s *coflow.Spec) float64 {
	sizes := make([]float64, len(s.Flows))
	for i, f := range s.Flows {
		sizes[i] = float64(f.Size)
	}
	return normStdDev(sizes)
}

func normStdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// Summary aggregates the trace-shape statistics reported in §2.3.
type Summary struct {
	NumPorts      int
	NumCoFlows    int
	TotalBytes    coflow.Bytes
	Widths        []int     // per-coflow flow counts, trace order
	SizeDevs      []float64 // per-coflow normalized flow-size stddev
	SingleFrac    float64   // fraction with one flow
	EqualFrac     float64   // fraction multi-flow with equal lengths
	UnequalFrac   float64   // fraction multi-flow with unequal lengths
	MaxWidth      int
	MeanWidth     float64
	ArrivalSpan   coflow.Time
	MeanInterGap  coflow.Time
	PortBusyness  float64 // average number of CoFlows touching each port
	WidestCoFlow  coflow.CoFlowID
	LargestCoFlow coflow.CoFlowID
}

// Summarize computes a Summary for t.
func Summarize(t *Trace) Summary {
	s := Summary{NumPorts: t.NumPorts, NumCoFlows: len(t.Specs), TotalBytes: t.TotalBytes()}
	if len(t.Specs) == 0 {
		return s
	}
	var single, equal, unequal int
	var widthSum int
	var largest coflow.Bytes
	portTouch := make(map[coflow.PortID]int)
	var first, last coflow.Time
	first = t.Specs[0].Arrival
	for _, spec := range t.Specs {
		w := spec.Width()
		s.Widths = append(s.Widths, w)
		s.SizeDevs = append(s.SizeDevs, NormalizedSizeStdDev(spec))
		widthSum += w
		if w > s.MaxWidth {
			s.MaxWidth = w
			s.WidestCoFlow = spec.ID
		}
		if total := spec.TotalSize(); total > largest {
			largest = total
			s.LargestCoFlow = spec.ID
		}
		switch Classify(spec) {
		case SingleFlow:
			single++
		case EqualLength:
			equal++
		case UnequalLength:
			unequal++
		}
		touched := make(map[coflow.PortID]bool)
		for _, f := range spec.Flows {
			touched[f.Src] = true
			touched[f.Dst] = true
		}
		for p := range touched {
			portTouch[p]++
		}
		if spec.Arrival < first {
			first = spec.Arrival
		}
		if spec.Arrival > last {
			last = spec.Arrival
		}
	}
	n := float64(len(t.Specs))
	s.SingleFrac = float64(single) / n
	s.EqualFrac = float64(equal) / n
	s.UnequalFrac = float64(unequal) / n
	s.MeanWidth = float64(widthSum) / n
	s.ArrivalSpan = last - first
	if len(t.Specs) > 1 {
		s.MeanInterGap = s.ArrivalSpan / coflow.Time(len(t.Specs)-1)
	}
	var busySum int
	for _, c := range portTouch {
		busySum += c
	}
	if t.NumPorts > 0 {
		s.PortBusyness = float64(busySum) / float64(t.NumPorts)
	}
	return s
}
