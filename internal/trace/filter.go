package trace

import (
	"fmt"
	"sort"

	"saath/internal/coflow"
)

// Filter returns a new trace containing only the CoFlows for which
// keep returns true. Arrivals and IDs are preserved, so results remain
// comparable across filtered and unfiltered runs.
func (t *Trace) Filter(keep func(*coflow.Spec) bool) *Trace {
	out := &Trace{Name: t.Name + "-filtered", NumPorts: t.NumPorts}
	for _, s := range t.Specs {
		if keep(s) {
			cp := *s
			cp.Flows = append([]coflow.FlowSpec(nil), s.Flows...)
			cp.DependsOn = append([]coflow.CoFlowID(nil), s.DependsOn...)
			out.Specs = append(out.Specs, &cp)
		}
	}
	return out
}

// Window returns the CoFlows arriving in [from, to), rebased so the
// first kept arrival is at time zero.
func (t *Trace) Window(from, to coflow.Time) *Trace {
	out := t.Filter(func(s *coflow.Spec) bool {
		return s.Arrival >= from && s.Arrival < to
	})
	out.Name = fmt.Sprintf("%s-window[%v,%v)", t.Name, from, to)
	if len(out.Specs) == 0 {
		return out
	}
	out.SortByArrival()
	base := out.Specs[0].Arrival
	for _, s := range out.Specs {
		s.Arrival -= base
	}
	return out
}

// Head returns the first n CoFlows by arrival order.
func (t *Trace) Head(n int) *Trace {
	cp := t.Clone()
	cp.SortByArrival()
	if n < len(cp.Specs) {
		cp.Specs = cp.Specs[:n]
	}
	cp.Name = fmt.Sprintf("%s-head%d", t.Name, n)
	return cp
}

// CompactPorts renumbers ports densely (0..k-1 over the ports actually
// used) and shrinks NumPorts accordingly. Useful after Filter/Window,
// and required before replaying a slice on a prototype cluster with
// fewer agents than the original trace had nodes.
func (t *Trace) CompactPorts() *Trace {
	used := make(map[coflow.PortID]bool)
	for _, s := range t.Specs {
		for _, f := range s.Flows {
			used[f.Src] = true
			used[f.Dst] = true
		}
	}
	ports := make([]coflow.PortID, 0, len(used))
	for p := range used {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	remap := make(map[coflow.PortID]coflow.PortID, len(ports))
	for i, p := range ports {
		remap[p] = coflow.PortID(i)
	}
	out := t.Clone()
	out.Name = t.Name + "-compact"
	out.NumPorts = len(ports)
	if out.NumPorts == 0 {
		out.NumPorts = 1 // a portless trace is still structurally valid
	}
	for _, s := range out.Specs {
		for i := range s.Flows {
			s.Flows[i].Src = remap[s.Flows[i].Src]
			s.Flows[i].Dst = remap[s.Flows[i].Dst]
		}
	}
	return out
}
