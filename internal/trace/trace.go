// Package trace loads, writes, synthesizes and summarizes CoFlow
// workloads.
//
// The on-disk format is the public coflow-benchmark format used by the
// Facebook trace the paper replays (github.com/coflow/coflow-benchmark):
//
//	<numPorts> <numCoFlows>
//	<id> <arrivalMillis> <numMappers> <m...> <numReducers> <r:sizeMB ...>
//
// Each reducer's size is split equally across the mappers, one flow per
// (mapper, reducer) pair, exactly as in the reference replayer.
//
// Because this build environment is offline, the package also ships
// seeded synthetic generators whose marginals match the published
// statistics of the Facebook trace and of the proprietary OSP trace
// (see DESIGN.md for the substitution argument).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"saath/internal/coflow"
)

// Trace is a CoFlow workload over a cluster of NumPorts nodes.
type Trace struct {
	Name     string
	NumPorts int
	Specs    []*coflow.Spec
}

// Validate checks the trace's structural invariants: ports in range,
// valid specs, unique IDs.
func (t *Trace) Validate() error {
	if t.NumPorts <= 0 {
		return fmt.Errorf("trace %q: non-positive port count %d", t.Name, t.NumPorts)
	}
	seen := make(map[coflow.CoFlowID]bool, len(t.Specs))
	for _, s := range t.Specs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("trace %q: %w", t.Name, err)
		}
		if seen[s.ID] {
			return fmt.Errorf("trace %q: duplicate coflow id %d", t.Name, s.ID)
		}
		seen[s.ID] = true
		for i, f := range s.Flows {
			if int(f.Src) >= t.NumPorts || int(f.Dst) >= t.NumPorts {
				return fmt.Errorf("trace %q coflow %d flow %d: port out of range (src=%d dst=%d, ports=%d)",
					t.Name, s.ID, i, f.Src, f.Dst, t.NumPorts)
			}
		}
	}
	return nil
}

// SortByArrival orders specs by arrival time (stable; ties by ID).
func (t *Trace) SortByArrival() {
	sort.SliceStable(t.Specs, func(i, j int) bool {
		a, b := t.Specs[i], t.Specs[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return a.ID < b.ID
	})
}

// ScaleArrivals multiplies every arrival time by factor. The paper's
// Fig. 14(d) sensitivity knob A speeds arrivals up by dividing times,
// i.e. A=4 means ScaleArrivals(1/4).
func (t *Trace) ScaleArrivals(factor float64) {
	for _, s := range t.Specs {
		s.Arrival = coflow.Time(float64(s.Arrival) * factor)
	}
}

// Clone deep-copies the trace so that callers may mutate arrivals or
// sizes without affecting the original.
func (t *Trace) Clone() *Trace {
	out := &Trace{Name: t.Name, NumPorts: t.NumPorts, Specs: make([]*coflow.Spec, len(t.Specs))}
	for i, s := range t.Specs {
		cp := *s
		cp.Flows = append([]coflow.FlowSpec(nil), s.Flows...)
		cp.DependsOn = append([]coflow.CoFlowID(nil), s.DependsOn...)
		out.Specs[i] = &cp
	}
	return out
}

// TotalBytes sums every flow of every CoFlow.
func (t *Trace) TotalBytes() coflow.Bytes {
	var total coflow.Bytes
	for _, s := range t.Specs {
		total += s.TotalSize()
	}
	return total
}

// Parse reads a trace in coflow-benchmark format.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24) // wide coflows produce long lines
	line := 0
	next := func() ([]string, error) {
		for sc.Scan() {
			line++
			fields := strings.Fields(sc.Text())
			if len(fields) == 0 {
				continue
			}
			return fields, nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) != 2 {
		return nil, fmt.Errorf("trace line %d: header needs <ports> <coflows>, got %q", line, strings.Join(header, " "))
	}
	numPorts, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("trace line %d: bad port count: %w", line, err)
	}
	numCoflows, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("trace line %d: bad coflow count: %w", line, err)
	}

	t := &Trace{NumPorts: numPorts, Specs: make([]*coflow.Spec, 0, numCoflows)}
	for i := 0; i < numCoflows; i++ {
		fields, err := next()
		if err != nil {
			return nil, fmt.Errorf("trace: coflow %d of %d: %w", i+1, numCoflows, err)
		}
		spec, err := parseCoflowLine(fields, line)
		if err != nil {
			return nil, err
		}
		t.Specs = append(t.Specs, spec)
	}
	t.SortByArrival()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseCoflowLine(fields []string, line int) (*coflow.Spec, error) {
	bad := func(msg string, args ...any) error {
		return fmt.Errorf("trace line %d: %s", line, fmt.Sprintf(msg, args...))
	}
	if len(fields) < 4 {
		return nil, bad("truncated coflow record")
	}
	id, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return nil, bad("bad coflow id %q: %v", fields[0], err)
	}
	arrivalMS, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, bad("bad arrival %q: %v", fields[1], err)
	}
	numMappers, err := strconv.Atoi(fields[2])
	if err != nil || numMappers <= 0 {
		return nil, bad("bad mapper count %q", fields[2])
	}
	pos := 3
	if len(fields) < pos+numMappers+1 {
		return nil, bad("record too short for %d mappers", numMappers)
	}
	mappers := make([]coflow.PortID, numMappers)
	for i := range mappers {
		p, err := strconv.Atoi(fields[pos+i])
		if err != nil {
			return nil, bad("bad mapper port %q: %v", fields[pos+i], err)
		}
		mappers[i] = coflow.PortID(p)
	}
	pos += numMappers
	numReducers, err := strconv.Atoi(fields[pos])
	if err != nil || numReducers <= 0 {
		return nil, bad("bad reducer count %q", fields[pos])
	}
	pos++
	if len(fields) != pos+numReducers {
		return nil, bad("expected %d reducer entries, got %d", numReducers, len(fields)-pos)
	}

	spec := &coflow.Spec{
		ID:      coflow.CoFlowID(id),
		Arrival: coflow.Time(arrivalMS) * coflow.Millisecond,
	}
	for i := 0; i < numReducers; i++ {
		entry := fields[pos+i]
		colon := strings.IndexByte(entry, ':')
		if colon < 0 {
			return nil, bad("reducer entry %q missing ':'", entry)
		}
		rp, err := strconv.Atoi(entry[:colon])
		if err != nil {
			return nil, bad("bad reducer port in %q: %v", entry, err)
		}
		sizeMB, err := strconv.ParseFloat(entry[colon+1:], 64)
		if err != nil || sizeMB < 0 {
			return nil, bad("bad reducer size in %q", entry)
		}
		perFlow := coflow.Bytes(sizeMB * float64(coflow.MB) / float64(numMappers))
		if perFlow <= 0 {
			perFlow = 1 // the replayer still opens the flow; keep it observable
		}
		for _, mp := range mappers {
			spec.Flows = append(spec.Flows, coflow.FlowSpec{Src: mp, Dst: coflow.PortID(rp), Size: perFlow})
		}
	}
	return spec, nil
}

// ParseFile reads a trace file in coflow-benchmark format.
func ParseFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	t.Name = path
	return t, nil
}

// Write serializes the trace in coflow-benchmark format. Flows are
// grouped back into mapper/reducer structure: the mapper set is the
// distinct sources and each reducer's size is the sum of its incoming
// flows. Traces not generated from an m×r grid still round-trip their
// per-port totals.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", t.NumPorts, len(t.Specs))
	for _, s := range t.Specs {
		srcSet := make(map[coflow.PortID]bool)
		dstBytes := make(map[coflow.PortID]coflow.Bytes)
		for _, f := range s.Flows {
			srcSet[f.Src] = true
			dstBytes[f.Dst] += f.Size
		}
		srcs := sortedPorts(srcSet)
		dsts := make([]coflow.PortID, 0, len(dstBytes))
		for p := range dstBytes {
			dsts = append(dsts, p)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })

		fmt.Fprintf(bw, "%d %d %d", s.ID, int64(s.Arrival/coflow.Millisecond), len(srcs))
		for _, p := range srcs {
			fmt.Fprintf(bw, " %d", p)
		}
		fmt.Fprintf(bw, " %d", len(dsts))
		for _, p := range dsts {
			fmt.Fprintf(bw, " %d:%g", p, float64(dstBytes[p])/float64(coflow.MB))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func sortedPorts(set map[coflow.PortID]bool) []coflow.PortID {
	out := make([]coflow.PortID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
