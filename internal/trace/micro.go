package trace

import "saath/internal/coflow"

// Micro traces reproduce the hand-built examples from the paper's
// figures. Durations in the figures are in abstract units of t; we map
// one unit to the bytes a 1 Gbps port moves in MicroUnit.
const MicroUnit = 100 * coflow.Millisecond

// MicroUnitBytes is the bytes one port sends in one MicroUnit at 1 Gbps.
var MicroUnitBytes = coflow.GbpsRate(1).Transfer(MicroUnit)

func microFlow(src, dst coflow.PortID, units int) coflow.FlowSpec {
	return coflow.FlowSpec{Src: src, Dst: dst, Size: coflow.Bytes(units) * MicroUnitBytes}
}

// Fig1Trace reproduces the out-of-sync example of Fig. 1: four CoFlows
// over three sender ports, arrivals C1 < C2 < C3 < C4, all flows one
// unit long. Ports (senders): P1, P2, P3 are nodes 0..2; receivers are
// distinct nodes 3.. so only sender ports contend, as the figure draws.
//
//	P1: C1, C2        P2: C2, C3        P3: C2, C4
//
// Under per-port FIFO (Aalo), C2's flows land at different times and it
// drags across the timeline; the optimal schedule packs C1,C3,C4 first.
func Fig1Trace() *Trace {
	eps := coflow.Millisecond // strictly increasing arrivals
	specs := []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{microFlow(0, 3, 1)}},
		{ID: 2, Arrival: 1 * eps, Flows: []coflow.FlowSpec{
			microFlow(0, 4, 1), microFlow(1, 5, 1), microFlow(2, 6, 1),
		}},
		{ID: 3, Arrival: 2 * eps, Flows: []coflow.FlowSpec{microFlow(1, 7, 1)}},
		{ID: 4, Arrival: 3 * eps, Flows: []coflow.FlowSpec{microFlow(2, 8, 1)}},
	}
	return &Trace{Name: "fig1", NumPorts: 9, Specs: specs}
}

// Fig4Trace reproduces the work-conservation example of Fig. 4: three
// CoFlows, each with flows on two of the three sender ports P1..P3
// (nodes 0..2), each flow one unit:
//
//	P1: C1, C2        P2: C2, C3        P3: C1, C3
//
// All-or-none alone serializes them (average CCT 2t); with work
// conservation C3 can borrow idle slots (average CCT 1.67t).
func Fig4Trace() *Trace {
	specs := []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{
			microFlow(0, 3, 1), microFlow(2, 4, 1),
		}},
		{ID: 2, Arrival: coflow.Millisecond, Flows: []coflow.FlowSpec{
			microFlow(0, 5, 1), microFlow(1, 6, 1),
		}},
		{ID: 3, Arrival: 2 * coflow.Millisecond, Flows: []coflow.FlowSpec{
			microFlow(1, 7, 1), microFlow(2, 8, 1),
		}},
	}
	return &Trace{Name: "fig4", NumPorts: 9, Specs: specs}
}

// Fig8Trace reproduces the LCoF-limitation example of Fig. 8: on two
// sender ports S1, S2 (nodes 0, 1), C2 spans both ports with long flows
// (2.5 units), C1 and C3 each have a single one-unit flow:
//
//	S1: C2, C1        S2: C2, C3
//
// C2 has the least contention count per port but is long, so LCoF
// schedules it first (average CCT 2.83t); optimal runs C1/C3 first
// (average 2.66t).
func Fig8Trace() *Trace {
	eps := coflow.Millisecond
	half := coflow.Bytes(MicroUnitBytes / 2)
	specs := []*coflow.Spec{
		{ID: 2, Arrival: 0, Flows: []coflow.FlowSpec{
			{Src: 0, Dst: 2, Size: 2*MicroUnitBytes + half},
			{Src: 1, Dst: 3, Size: 2*MicroUnitBytes + half},
		}},
		{ID: 1, Arrival: eps, Flows: []coflow.FlowSpec{microFlow(0, 4, 1)}},
		{ID: 3, Arrival: 2 * eps, Flows: []coflow.FlowSpec{microFlow(1, 5, 1)}},
	}
	return &Trace{Name: "fig8", NumPorts: 6, Specs: specs}
}

// Fig17Trace reproduces Appendix A's SJF-suboptimality example: two
// sender ports P1, P2 (nodes 0, 1):
//
//	P1: C1 (5t), C2 (6t)        P2: C1 (5t), C3 (7t)
//
// Duration-ordered SJF runs C1 first and blocks both others (average
// CCT 9.3t); the contention-aware order runs C2 and C3 first (8.3t).
func Fig17Trace() *Trace {
	specs := []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{
			microFlow(0, 2, 5), microFlow(1, 3, 5),
		}},
		{ID: 2, Arrival: 0, Flows: []coflow.FlowSpec{microFlow(0, 4, 6)}},
		{ID: 3, Arrival: 0, Flows: []coflow.FlowSpec{microFlow(1, 5, 7)}},
	}
	return &Trace{Name: "fig17", NumPorts: 6, Specs: specs}
}
