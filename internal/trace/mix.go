package trace

import (
	"fmt"
	"math/rand"

	"saath/internal/coflow"
)

// MixComponent is one ingredient of a mixed workload: a named seeded
// generator plus the weight with which its CoFlows are drawn into the
// interleaving. The component's generator seed is salted with its name,
// so two components of the same family at the same mix seed still draw
// from independent RNG streams.
type MixComponent struct {
	// Name labels the component and salts its generator seed. Required
	// and unique within a mix.
	Name string
	// Gen builds the component's trace for a (salted) seed.
	Gen func(seed int64) *Trace
	// Weight is the component's relative share of the mixed CoFlow
	// stream. Negative weights are errors; all-zero weights mean equal
	// shares. A component whose CoFlows run out stops being drawn and
	// the remaining weight renormalizes over the others.
	Weight float64
}

// MixConfig controls Mix. The zero value takes defaults for everything
// but the seed.
type MixConfig struct {
	// Seed drives the interleaving choices, the re-timestamped arrival
	// gaps, and (salted per component name) every component generator.
	Seed int64
	// NumCoFlows bounds the mixed trace; 0 takes every CoFlow the
	// components offer.
	NumCoFlows int
	// MeanInterArrival is the mean of the fresh exponential arrival
	// gaps the mix stamps onto the interleaved stream (default 50 ms).
	MeanInterArrival coflow.Time
}

// Mix deterministically interleaves the component workloads into one
// trace: CoFlows are drawn from each component in that component's own
// arrival order, weighted by MixComponent.Weight, re-identified
// 0..n-1 and re-timestamped with fresh exponential inter-arrival gaps.
// Each drawn CoFlow's flows — sources, destinations and byte sizes —
// are copied verbatim from the component draw, so the mixed workload
// is byte-identical for a given (cfg, components) at any parallelism
// or sharding. The mixed cluster is the widest drawn-from component's
// port space (zero-weight components are neither generated nor
// counted); narrower components concentrate on its low ports, which
// is exactly the port sharing a mix is meant to produce. Cross-CoFlow
// dependencies (Spec.DependsOn) do not survive the re-identification
// and are dropped.
func Mix(name string, cfg MixConfig, components ...MixComponent) (*Trace, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("trace: mix %q: no components", name)
	}
	if cfg.MeanInterArrival <= 0 {
		cfg.MeanInterArrival = 50 * coflow.Millisecond
	}
	var totalWeight float64
	seen := make(map[string]bool, len(components))
	for _, c := range components {
		if c.Name == "" {
			return nil, fmt.Errorf("trace: mix %q: component with empty name", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("trace: mix %q: duplicate component %q", name, c.Name)
		}
		seen[c.Name] = true
		if c.Gen == nil {
			return nil, fmt.Errorf("trace: mix %q: component %q has no generator", name, c.Name)
		}
		if c.Weight < 0 {
			return nil, fmt.Errorf("trace: mix %q: component %q has negative weight %g", name, c.Name, c.Weight)
		}
		totalWeight += c.Weight
	}

	// Generate every component up front (independent salted streams),
	// tracking the widest port space.
	type stream struct {
		specs  []*coflow.Spec
		next   int
		weight float64
	}
	streams := make([]*stream, 0, len(components))
	numPorts, available := 0, 0
	for _, c := range components {
		w := c.Weight
		if totalWeight == 0 {
			w = 1
		}
		if w == 0 {
			// A zero-weight component can never be drawn: skip its
			// generation entirely and keep it from widening the mixed
			// port space (an unreachable 150-port tail would dilute
			// utilization for a workload that only touches 60 ports).
			continue
		}
		tr := c.Gen(saltSeed(cfg.Seed, c.Name))
		if tr == nil {
			return nil, fmt.Errorf("trace: mix %q: component %q generated nil trace", name, c.Name)
		}
		streams = append(streams, &stream{specs: tr.Specs, weight: w})
		if tr.NumPorts > numPorts {
			numPorts = tr.NumPorts
		}
		available += len(tr.Specs)
	}
	if available == 0 {
		return nil, fmt.Errorf("trace: mix %q: components offer no coflows", name)
	}
	n := cfg.NumCoFlows
	if n <= 0 || n > available {
		n = available
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Trace{Name: name, NumPorts: numPorts, Specs: make([]*coflow.Spec, 0, n)}
	var clock coflow.Time
	for i := 0; i < n; i++ {
		// Weighted draw over the components that still have CoFlows;
		// exhausted components drop out and the rest renormalize.
		var live float64
		for _, s := range streams {
			if s.next < len(s.specs) {
				live += s.weight
			}
		}
		if live <= 0 {
			break
		}
		pick := rng.Float64() * live
		var src *stream
		for _, s := range streams {
			if s.next >= len(s.specs) {
				continue
			}
			pick -= s.weight
			src = s
			if pick < 0 {
				break
			}
		}
		spec := src.specs[src.next]
		src.next++

		clock += coflow.Time(rng.ExpFloat64() * float64(cfg.MeanInterArrival))
		cp := *spec
		cp.ID = coflow.CoFlowID(i)
		cp.Arrival = clock
		cp.Flows = append([]coflow.FlowSpec(nil), spec.Flows...)
		cp.DependsOn = nil
		out.Specs = append(out.Specs, &cp)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("trace: mix %q: %w", name, err)
	}
	return out, nil
}

// SynthMix generates the default mixed workload: the FB-like shuffle
// trace interleaved 50/50 with the incast hotspot trace, 400 CoFlows
// on the FB port space — the trace-mix scenario of the ROADMAP as a
// one-call synthetic family (saath-sim/tracegen "mix").
func SynthMix(seed int64) *Trace {
	tr, err := Mix("mix-synth", MixConfig{
		Seed:             seed,
		NumCoFlows:       400,
		MeanInterArrival: 60 * coflow.Millisecond,
	},
		MixComponent{Name: "fb", Gen: SynthFB, Weight: 1},
		MixComponent{Name: "incast", Gen: SynthIncast, Weight: 1},
	)
	if err != nil {
		panic("trace: default mix config rejected: " + err.Error())
	}
	return tr
}
