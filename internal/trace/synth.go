package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"saath/internal/coflow"
)

// SynthConfig controls the seeded synthetic workload generators. The
// zero value is not usable; start from DefaultFBConfig or
// DefaultOSPConfig.
type SynthConfig struct {
	Seed       int64
	NumPorts   int
	NumCoFlows int

	// MeanInterArrival is the mean of the exponential arrival gaps.
	// Real traces span hours; the default compresses time so that the
	// simulator sustains the same per-port contention the paper
	// reports without hour-long runs.
	MeanInterArrival coflow.Time

	// Workload mix, following the published FB-trace marginals.
	SingleFlowFrac   float64 // CoFlows with exactly one flow (FB: 23%)
	EqualLengthFrac  float64 // among multi-flow CoFlows: equal flow lengths (FB: 50/77)
	WideFracNarrowCF float64 // among multi-flow CoFlows: width > 10 (Table 1 bins 2+4)

	// Fraction of CoFlows with total size <= 100 MB, split by width
	// class, matching Table 1 (bin-1/(bin-1+bin-3), bin-2/(bin-2+bin-4)).
	SmallFracNarrow float64
	SmallFracWide   float64

	// Size ranges (log-uniform sampling).
	MinSmall, MaxSmall coflow.Bytes // total size for "small" CoFlows
	MinLarge, MaxLarge coflow.Bytes // total size for "large" CoFlows
}

// DefaultFBConfig mirrors the Facebook Hive/MapReduce trace statistics
// quoted in §2.3 and Table 1 of the paper: 150 ports, 526 CoFlows, 23%
// single-flow, 50% multi equal-length, bins (54, 14, 12, 20)%.
func DefaultFBConfig(seed int64) SynthConfig {
	return SynthConfig{
		Seed:             seed,
		NumPorts:         150,
		NumCoFlows:       526,
		MeanInterArrival: 150 * coflow.Millisecond,
		SingleFlowFrac:   0.23,
		EqualLengthFrac:  0.50 / 0.77,
		WideFracNarrowCF: 0.34 / 0.77, // bins 2+4 over multi-flow share
		SmallFracNarrow:  0.54 / 0.66,
		SmallFracWide:    0.14 / 0.34,
		MinSmall:         1 * coflow.MB,
		MaxSmall:         100 * coflow.MB,
		MinLarge:         100 * coflow.MB,
		MaxLarge:         20 * coflow.GB,
	}
}

// DefaultOSPConfig models the proprietary online-service-provider
// trace: O(100) ports, O(1000) jobs, and — the property the paper
// highlights — busier ports (more CoFlows queued per port), which
// amplifies FIFO head-of-line blocking of short, narrow CoFlows.
func DefaultOSPConfig(seed int64) SynthConfig {
	return SynthConfig{
		Seed:             seed,
		NumPorts:         100,
		NumCoFlows:       1000,
		MeanInterArrival: 40 * coflow.Millisecond, // denser than FB
		SingleFlowFrac:   0.30,
		EqualLengthFrac:  0.55,
		WideFracNarrowCF: 0.35,
		SmallFracNarrow:  0.85, // many short narrow jobs...
		SmallFracWide:    0.30,
		MinSmall:         512 * coflow.KB,
		MaxSmall:         100 * coflow.MB,
		MinLarge:         100 * coflow.MB,
		MaxLarge:         50 * coflow.GB, // ...sharing ports with a heavy tail
	}
}

// SynthFB generates a Facebook-like workload (see DefaultFBConfig).
func SynthFB(seed int64) *Trace { return Synthesize(DefaultFBConfig(seed), "fb-synth") }

// SynthOSP generates an OSP-like workload (see DefaultOSPConfig).
func SynthOSP(seed int64) *Trace { return Synthesize(DefaultOSPConfig(seed), "osp-synth") }

// Synthesize generates a trace from cfg. The same (cfg, name) always
// yields byte-identical traces.
func Synthesize(cfg SynthConfig, name string) *Trace {
	if cfg.NumPorts <= 1 || cfg.NumCoFlows <= 0 {
		panic(fmt.Sprintf("trace.Synthesize: bad config ports=%d coflows=%d", cfg.NumPorts, cfg.NumCoFlows))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Name: name, NumPorts: cfg.NumPorts}
	var clock coflow.Time
	for i := 0; i < cfg.NumCoFlows; i++ {
		gap := coflow.Time(rng.ExpFloat64() * float64(cfg.MeanInterArrival))
		clock += gap
		spec := synthCoflow(rng, cfg, coflow.CoFlowID(i), clock)
		t.Specs = append(t.Specs, spec)
	}
	t.SortByArrival()
	if err := t.Validate(); err != nil {
		panic("trace.Synthesize: generated invalid trace: " + err.Error())
	}
	return t
}

func synthCoflow(rng *rand.Rand, cfg SynthConfig, id coflow.CoFlowID, arrival coflow.Time) *coflow.Spec {
	single := rng.Float64() < cfg.SingleFlowFrac

	var mappers, reducers int
	wide := false
	if single {
		mappers, reducers = 1, 1
	} else {
		wide = rng.Float64() < cfg.WideFracNarrowCF
		if wide {
			// width in (10, ~600], heavy-tailed via log-uniform area.
			area := math.Exp(logUniform(rng, math.Log(11), math.Log(600)))
			reducers = 1 + rng.Intn(int(math.Sqrt(area))+1)
			mappers = int(area)/reducers + 1
		} else {
			// width in [2, 10]
			w := 2 + rng.Intn(9)
			mappers = 1 + rng.Intn(min(w, 3))
			reducers = (w + mappers - 1) / mappers
		}
	}
	if mappers > cfg.NumPorts {
		mappers = cfg.NumPorts
	}
	if reducers > cfg.NumPorts {
		reducers = cfg.NumPorts
	}
	width := mappers * reducers

	smallFrac := cfg.SmallFracNarrow
	if wide {
		smallFrac = cfg.SmallFracWide
	}
	var total coflow.Bytes
	if rng.Float64() < smallFrac {
		total = logUniformBytes(rng, cfg.MinSmall, cfg.MaxSmall)
	} else {
		total = logUniformBytes(rng, cfg.MinLarge, cfg.MaxLarge)
	}
	if total < coflow.Bytes(width) {
		total = coflow.Bytes(width) // at least one byte per flow
	}

	srcs := samplePorts(rng, cfg.NumPorts, mappers)
	dsts := samplePorts(rng, cfg.NumPorts, reducers)

	equal := single || rng.Float64() < cfg.EqualLengthFrac
	reducerShare := make([]float64, reducers)
	if equal {
		for i := range reducerShare {
			reducerShare[i] = 1 / float64(reducers)
		}
	} else {
		// Log-normal weights produce skewed per-reducer totals and
		// hence unequal flow lengths.
		var sum float64
		for i := range reducerShare {
			reducerShare[i] = math.Exp(rng.NormFloat64() * 1.0)
			sum += reducerShare[i]
		}
		for i := range reducerShare {
			reducerShare[i] /= sum
		}
	}

	spec := &coflow.Spec{ID: id, Arrival: arrival}
	for r := 0; r < reducers; r++ {
		perFlow := coflow.Bytes(float64(total) * reducerShare[r] / float64(mappers))
		if perFlow <= 0 {
			perFlow = 1
		}
		for m := 0; m < mappers; m++ {
			spec.Flows = append(spec.Flows, coflow.FlowSpec{Src: srcs[m], Dst: dsts[r], Size: perFlow})
		}
	}
	return spec
}

// samplePorts draws n distinct ports uniformly from [0, numPorts).
func samplePorts(rng *rand.Rand, numPorts, n int) []coflow.PortID {
	if n > numPorts {
		n = numPorts
	}
	perm := rng.Perm(numPorts)[:n]
	sort.Ints(perm)
	out := make([]coflow.PortID, n)
	for i, p := range perm {
		out[i] = coflow.PortID(p)
	}
	return out
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func logUniformBytes(rng *rand.Rand, lo, hi coflow.Bytes) coflow.Bytes {
	v := math.Exp(logUniform(rng, math.Log(float64(lo)), math.Log(float64(hi))))
	b := coflow.Bytes(v)
	if b < lo {
		b = lo
	}
	if b > hi {
		b = hi
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
