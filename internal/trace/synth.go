package trace

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"saath/internal/coflow"
)

// SynthConfig controls the seeded synthetic workload generators. The
// zero value is not usable; start from DefaultFBConfig or
// DefaultOSPConfig.
type SynthConfig struct {
	Seed       int64
	NumPorts   int
	NumCoFlows int

	// MeanInterArrival is the mean of the exponential arrival gaps.
	// Real traces span hours; the default compresses time so that the
	// simulator sustains the same per-port contention the paper
	// reports without hour-long runs.
	MeanInterArrival coflow.Time

	// Workload mix, following the published FB-trace marginals.
	SingleFlowFrac   float64 // CoFlows with exactly one flow (FB: 23%)
	EqualLengthFrac  float64 // among multi-flow CoFlows: equal flow lengths (FB: 50/77)
	WideFracNarrowCF float64 // among multi-flow CoFlows: width > 10 (Table 1 bins 2+4)

	// Fraction of CoFlows with total size <= 100 MB, split by width
	// class, matching Table 1 (bin-1/(bin-1+bin-3), bin-2/(bin-2+bin-4)).
	SmallFracNarrow float64
	SmallFracWide   float64

	// Size ranges (log-uniform sampling).
	MinSmall, MaxSmall coflow.Bytes // total size for "small" CoFlows
	MinLarge, MaxLarge coflow.Bytes // total size for "large" CoFlows
}

// DefaultFBConfig mirrors the Facebook Hive/MapReduce trace statistics
// quoted in §2.3 and Table 1 of the paper: 150 ports, 526 CoFlows, 23%
// single-flow, 50% multi equal-length, bins (54, 14, 12, 20)%.
func DefaultFBConfig(seed int64) SynthConfig {
	return SynthConfig{
		Seed:             seed,
		NumPorts:         150,
		NumCoFlows:       526,
		MeanInterArrival: 150 * coflow.Millisecond,
		SingleFlowFrac:   0.23,
		EqualLengthFrac:  0.50 / 0.77,
		WideFracNarrowCF: 0.34 / 0.77, // bins 2+4 over multi-flow share
		SmallFracNarrow:  0.54 / 0.66,
		SmallFracWide:    0.14 / 0.34,
		MinSmall:         1 * coflow.MB,
		MaxSmall:         100 * coflow.MB,
		MinLarge:         100 * coflow.MB,
		MaxLarge:         20 * coflow.GB,
	}
}

// DefaultOSPConfig models the proprietary online-service-provider
// trace: O(100) ports, O(1000) jobs, and — the property the paper
// highlights — busier ports (more CoFlows queued per port), which
// amplifies FIFO head-of-line blocking of short, narrow CoFlows.
func DefaultOSPConfig(seed int64) SynthConfig {
	return SynthConfig{
		Seed:             seed,
		NumPorts:         100,
		NumCoFlows:       1000,
		MeanInterArrival: 40 * coflow.Millisecond, // denser than FB
		SingleFlowFrac:   0.30,
		EqualLengthFrac:  0.55,
		WideFracNarrowCF: 0.35,
		SmallFracNarrow:  0.85, // many short narrow jobs...
		SmallFracWide:    0.30,
		MinSmall:         512 * coflow.KB,
		MaxSmall:         100 * coflow.MB,
		MinLarge:         100 * coflow.MB,
		MaxLarge:         50 * coflow.GB, // ...sharing ports with a heavy tail
	}
}

// SynthFB generates a Facebook-like workload (see DefaultFBConfig).
func SynthFB(seed int64) *Trace { return Synthesize(DefaultFBConfig(seed), "fb-synth") }

// SynthOSP generates an OSP-like workload (see DefaultOSPConfig).
func SynthOSP(seed int64) *Trace { return Synthesize(DefaultOSPConfig(seed), "osp-synth") }

// Synthesize generates a trace from cfg. The same (cfg, name) always
// yields byte-identical traces.
func Synthesize(cfg SynthConfig, name string) *Trace {
	if cfg.NumPorts <= 1 || cfg.NumCoFlows <= 0 {
		panic(fmt.Sprintf("trace.Synthesize: bad config ports=%d coflows=%d", cfg.NumPorts, cfg.NumCoFlows))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Name: name, NumPorts: cfg.NumPorts}
	var clock coflow.Time
	for i := 0; i < cfg.NumCoFlows; i++ {
		gap := coflow.Time(rng.ExpFloat64() * float64(cfg.MeanInterArrival))
		clock += gap
		spec := synthCoflow(rng, cfg, coflow.CoFlowID(i), clock)
		t.Specs = append(t.Specs, spec)
	}
	t.SortByArrival()
	if err := t.Validate(); err != nil {
		panic("trace.Synthesize: generated invalid trace: " + err.Error())
	}
	return t
}

func synthCoflow(rng *rand.Rand, cfg SynthConfig, id coflow.CoFlowID, arrival coflow.Time) *coflow.Spec {
	single := rng.Float64() < cfg.SingleFlowFrac

	var mappers, reducers int
	wide := false
	if single {
		mappers, reducers = 1, 1
	} else {
		wide = rng.Float64() < cfg.WideFracNarrowCF
		if wide {
			// width in (10, ~600], heavy-tailed via log-uniform area.
			area := math.Exp(logUniform(rng, math.Log(11), math.Log(600)))
			reducers = 1 + rng.Intn(int(math.Sqrt(area))+1)
			mappers = int(area)/reducers + 1
		} else {
			// width in [2, 10]
			w := 2 + rng.Intn(9)
			mappers = 1 + rng.Intn(min(w, 3))
			reducers = (w + mappers - 1) / mappers
		}
	}
	if mappers > cfg.NumPorts {
		mappers = cfg.NumPorts
	}
	if reducers > cfg.NumPorts {
		reducers = cfg.NumPorts
	}
	width := mappers * reducers

	smallFrac := cfg.SmallFracNarrow
	if wide {
		smallFrac = cfg.SmallFracWide
	}
	var total coflow.Bytes
	if rng.Float64() < smallFrac {
		total = logUniformBytes(rng, cfg.MinSmall, cfg.MaxSmall)
	} else {
		total = logUniformBytes(rng, cfg.MinLarge, cfg.MaxLarge)
	}
	if total < coflow.Bytes(width) {
		total = coflow.Bytes(width) // at least one byte per flow
	}

	srcs := samplePorts(rng, cfg.NumPorts, mappers)
	dsts := samplePorts(rng, cfg.NumPorts, reducers)

	equal := single || rng.Float64() < cfg.EqualLengthFrac
	reducerShare := make([]float64, reducers)
	if equal {
		for i := range reducerShare {
			reducerShare[i] = 1 / float64(reducers)
		}
	} else {
		// Log-normal weights produce skewed per-reducer totals and
		// hence unequal flow lengths.
		var sum float64
		for i := range reducerShare {
			reducerShare[i] = math.Exp(rng.NormFloat64() * 1.0)
			sum += reducerShare[i]
		}
		for i := range reducerShare {
			reducerShare[i] /= sum
		}
	}

	spec := &coflow.Spec{ID: id, Arrival: arrival}
	for r := 0; r < reducers; r++ {
		perFlow := coflow.Bytes(float64(total) * reducerShare[r] / float64(mappers))
		if perFlow <= 0 {
			perFlow = 1
		}
		for m := 0; m < mappers; m++ {
			spec.Flows = append(spec.Flows, coflow.FlowSpec{Src: srcs[m], Dst: dsts[r], Size: perFlow})
		}
	}
	return spec
}

// FanConfig controls the incast and broadcast synthetic families:
// CoFlows whose flows all converge on one receiver (incast, the
// shuffle/aggregation pattern) or all originate at one sender
// (broadcast). Both concentrate load on a small set of hotspot ports,
// producing the queue buildup and head-of-line blocking the telemetry
// subsystem is built to observe.
type FanConfig struct {
	Seed       int64
	NumPorts   int
	NumCoFlows int

	// MeanInterArrival is the mean of the exponential arrival gaps.
	MeanInterArrival coflow.Time

	// Degree is the fan-in (incast) or fan-out (broadcast) width: the
	// number of distinct peer ports per CoFlow. Clamped to NumPorts-1.
	Degree int

	// Skew is the log-normal sigma of per-flow sizes; 0 yields equal
	// flow lengths, larger values increasingly unequal ones (the
	// out-of-sync trigger of §2.3).
	Skew float64

	// Hotspots bounds the distinct aggregator (incast) or root
	// (broadcast) ports; CoFlows rotate through this set, guaranteeing
	// port sharing. 0 means every port may be a hotspot.
	Hotspots int

	// Per-CoFlow total size range (log-uniform sampling).
	MinSize, MaxSize coflow.Bytes
}

// DefaultIncastConfig models a dense aggregation workload: 60 ports,
// 300 CoFlows fanning 12 senders each into one of 6 hot aggregator
// ports, with moderate flow-length skew.
func DefaultIncastConfig(seed int64) FanConfig {
	return FanConfig{
		Seed:             seed,
		NumPorts:         60,
		NumCoFlows:       300,
		MeanInterArrival: 30 * coflow.Millisecond,
		Degree:           12,
		Skew:             0.5,
		Hotspots:         6,
		MinSize:          coflow.MB,
		MaxSize:          500 * coflow.MB,
	}
}

// DefaultBroadcastConfig mirrors DefaultIncastConfig for one-to-many
// distribution: 6 hot root ports each fanning out to 12 receivers. The
// generator seed is salted with the family name so that broadcast and
// incast traces built from the same seed draw from independent RNG
// streams instead of mirroring each other flow for flow.
func DefaultBroadcastConfig(seed int64) FanConfig {
	cfg := DefaultIncastConfig(seed)
	cfg.Seed = saltSeed(seed, "broadcast")
	return cfg
}

// SynthIncast generates an incast workload (see DefaultIncastConfig).
func SynthIncast(seed int64) *Trace {
	return mustFan(SynthesizeIncast(DefaultIncastConfig(seed), "incast-synth"))
}

// SynthBroadcast generates a broadcast workload (see
// DefaultBroadcastConfig).
func SynthBroadcast(seed int64) *Trace {
	return mustFan(SynthesizeBroadcast(DefaultBroadcastConfig(seed), "broadcast-synth"))
}

// mustFan unwraps the fan generators for the default configurations,
// which are valid by construction.
func mustFan(tr *Trace, err error) *Trace {
	if err != nil {
		panic("trace: default fan config rejected: " + err.Error())
	}
	return tr
}

// Validate reports configuration errors the fan generators cannot
// repair: too few ports, a non-positive CoFlow count or degree, more
// hotspots than ports, or an inverted size range. Degrees above
// NumPorts-1 are not errors — the generators clamp them, since "fan as
// wide as the cluster allows" is a meaningful request.
func (cfg FanConfig) Validate() error {
	if cfg.NumPorts < 2 {
		return fmt.Errorf("trace: fan config: NumPorts=%d, need >=2 (a fan needs a root and at least one peer)", cfg.NumPorts)
	}
	if cfg.NumCoFlows <= 0 {
		return fmt.Errorf("trace: fan config: NumCoFlows=%d, need >0", cfg.NumCoFlows)
	}
	if cfg.Degree <= 0 {
		return fmt.Errorf("trace: fan config: Degree=%d, need >0 peers per coflow", cfg.Degree)
	}
	if cfg.Hotspots > cfg.NumPorts {
		return fmt.Errorf("trace: fan config: Hotspots=%d exceeds NumPorts=%d", cfg.Hotspots, cfg.NumPorts)
	}
	if cfg.MaxSize > 0 && cfg.MinSize > cfg.MaxSize {
		return fmt.Errorf("trace: fan config: MinSize=%d > MaxSize=%d", cfg.MinSize, cfg.MaxSize)
	}
	return nil
}

// SynthesizeIncast generates an incast trace from cfg: every CoFlow is
// Degree senders converging on one aggregator port. The same (cfg,
// name) always yields byte-identical traces. Invalid configurations
// (see FanConfig.Validate) return a descriptive error.
func SynthesizeIncast(cfg FanConfig, name string) (*Trace, error) {
	return synthesizeFan(cfg, name, true)
}

// SynthesizeBroadcast generates a broadcast trace from cfg: every
// CoFlow is one root port fanning out to Degree receivers.
func SynthesizeBroadcast(cfg FanConfig, name string) (*Trace, error) {
	return synthesizeFan(cfg, name, false)
}

func synthesizeFan(cfg FanConfig, name string, incast bool) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MeanInterArrival <= 0 {
		cfg.MeanInterArrival = 30 * coflow.Millisecond
	}
	if cfg.Degree > cfg.NumPorts-1 {
		cfg.Degree = cfg.NumPorts - 1
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = coflow.MB
	}
	if cfg.MaxSize < cfg.MinSize {
		cfg.MaxSize = cfg.MinSize
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	hot := samplePorts(rng, cfg.NumPorts, cfg.NumPorts) // all ports, shuffled then sorted
	if cfg.Hotspots > 0 && cfg.Hotspots < len(hot) {
		hot = samplePorts(rng, cfg.NumPorts, cfg.Hotspots)
	}

	t := &Trace{Name: name, NumPorts: cfg.NumPorts}
	var clock coflow.Time
	for i := 0; i < cfg.NumCoFlows; i++ {
		clock += coflow.Time(rng.ExpFloat64() * float64(cfg.MeanInterArrival))
		root := hot[rng.Intn(len(hot))]
		peers := samplePeers(rng, cfg.NumPorts, cfg.Degree, root)
		total := logUniformBytes(rng, cfg.MinSize, cfg.MaxSize)
		if total < coflow.Bytes(cfg.Degree) {
			total = coflow.Bytes(cfg.Degree)
		}
		shares := skewedShares(rng, cfg.Degree, cfg.Skew)

		spec := &coflow.Spec{ID: coflow.CoFlowID(i), Arrival: clock}
		for f, peer := range peers {
			size := coflow.Bytes(float64(total) * shares[f])
			if size <= 0 {
				size = 1
			}
			fs := coflow.FlowSpec{Src: peer, Dst: root, Size: size}
			if !incast {
				fs.Src, fs.Dst = root, peer
			}
			spec.Flows = append(spec.Flows, fs)
		}
		t.Specs = append(t.Specs, spec)
	}
	t.SortByArrival()
	if err := t.Validate(); err != nil {
		panic("trace.synthesizeFan: generated invalid trace: " + err.Error())
	}
	return t, nil
}

// samplePeers draws n distinct ports from [0, numPorts) excluding
// exclude, sorted ascending.
func samplePeers(rng *rand.Rand, numPorts, n int, exclude coflow.PortID) []coflow.PortID {
	if n > numPorts-1 {
		n = numPorts - 1
	}
	out := make([]coflow.PortID, 0, n)
	for _, p := range rng.Perm(numPorts) {
		if coflow.PortID(p) == exclude {
			continue
		}
		out = append(out, coflow.PortID(p))
		if len(out) == n {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// skewedShares returns n positive fractions summing to 1: equal when
// sigma is 0, log-normally skewed otherwise.
func skewedShares(rng *rand.Rand, n int, sigma float64) []float64 {
	shares := make([]float64, n)
	if sigma <= 0 {
		for i := range shares {
			shares[i] = 1 / float64(n)
		}
		return shares
	}
	var sum float64
	for i := range shares {
		shares[i] = math.Exp(rng.NormFloat64() * sigma)
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// samplePorts draws n distinct ports uniformly from [0, numPorts).
func samplePorts(rng *rand.Rand, numPorts, n int) []coflow.PortID {
	if n > numPorts {
		n = numPorts
	}
	perm := rng.Perm(numPorts)[:n]
	sort.Ints(perm)
	out := make([]coflow.PortID, n)
	for i, p := range perm {
		out[i] = coflow.PortID(p)
	}
	return out
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func logUniformBytes(rng *rand.Rand, lo, hi coflow.Bytes) coflow.Bytes {
	v := math.Exp(logUniform(rng, math.Log(float64(lo)), math.Log(float64(hi))))
	b := coflow.Bytes(v)
	if b < lo {
		b = lo
	}
	if b > hi {
		b = hi
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// saltSeed mixes a base seed with a label into a stable non-zero RNG
// seed (FNV-1a), so sibling generator families (incast vs broadcast,
// the components of a mix) draw from independent streams while staying
// a pure function of the caller's seed.
func saltSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, label)
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}
