package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"saath/internal/report"
)

// Cell is one pooled (workload, variant, scheduler) capacity
// measurement, built by sweep.Summary.CapacityCells from the
// deterministic summary entries — so every number here is a pure
// function of the study, independent of execution interleaving.
type Cell struct {
	Trace     string
	Variant   string
	Scheduler string
	// Runs is the number of pooled jobs (seeds); CoFlows the pooled
	// completion count; Ports the cluster size.
	Runs    int
	CoFlows int
	Ports   int
	// Throughput is completed coflows per simulated second, averaged
	// over runs — the capacity axis of the report.
	Throughput float64
	// CCT percentiles in seconds over the pooled distribution.
	AvgCCT float64
	P50CCT float64
	P90CCT float64
	P99CCT float64
	// Makespan is the mean simulated makespan in seconds; Utilization
	// the mean egress utilization.
	Makespan    float64
	Utilization float64
}

// Workload renders the cell's workload label (trace plus variant),
// matching the Summary tables' label rule.
func (c Cell) Workload() string {
	if c.Variant == "" {
		return c.Trace
	}
	return c.Trace + " " + c.Variant
}

// CapacityTable renders the per-cell throughput/latency table — the
// raw material of the capacity report.
func CapacityTable(title string, cells []Cell) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"workload", "scheduler", "ports", "runs", "coflows", "coflows/s", "avg cct (s)", "p99 cct (s)", "egress util"},
	}
	for _, c := range cells {
		t.AddRow(c.Workload(), c.Scheduler, c.Ports, c.Runs, c.CoFlows,
			fmt.Sprintf("%.2f", c.Throughput),
			fmt.Sprintf("%.3f", c.AvgCCT),
			fmt.Sprintf("%.3f", c.P99CCT),
			fmt.Sprintf("%.2f", c.Utilization))
	}
	return t
}

// AxisValue extracts a numeric sweep coordinate from a cell's variant
// and trace names: the first "key=value" pair with a numeric value
// prefix in the variant ("A=2", "deg=12,hot=2", "delta=8ms"), else the
// same rule on the trace name's "@"-suffix ("fb@A=2"), else a trailing
// integer in the trace name ("mix-incast25" → 25). Reported ok=false
// when no numeric axis exists ("engine=tick", plain "fb").
func AxisValue(variant, trace string) (float64, bool) {
	if v, ok := axisFromPairs(variant); ok {
		return v, true
	}
	if _, suffix, ok := strings.Cut(trace, "@"); ok {
		if v, ok := axisFromPairs(suffix); ok {
			return v, true
		}
	}
	return trailingNumber(trace)
}

// axisFromPairs scans comma-separated "k=v" pairs for the first
// numeric value prefix.
func axisFromPairs(s string) (float64, bool) {
	for _, pair := range strings.Split(s, ",") {
		_, val, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		if v, ok := leadingFloat(val); ok {
			return v, true
		}
	}
	return 0, false
}

// leadingFloat parses the longest numeric prefix of s ("8ms" → 8,
// "0.5" → 0.5, "-2x" → -2).
func leadingFloat(s string) (float64, bool) {
	end := 0
	seenDigit, seenDot := false, false
	for end < len(s) {
		switch ch := s[end]; {
		case ch >= '0' && ch <= '9':
			seenDigit = true
		case ch == '.' && !seenDot:
			seenDot = true
		case (ch == '-' || ch == '+') && end == 0:
		default:
			goto done
		}
		end++
	}
done:
	if !seenDigit {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	return v, err == nil
}

// trailingNumber parses a trailing integer run ("mix-incast25" → 25).
func trailingNumber(s string) (float64, bool) {
	end := len(s)
	start := end
	for start > 0 && s[start-1] >= '0' && s[start-1] <= '9' {
		start--
	}
	if start == end {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[start:end], 64)
	return v, err == nil
}

// SaturationSeries is one scheduler's load curve: the cells sharing a
// scheduler and a workload family, ordered by ascending load axis,
// with the detected knee.
type SaturationSeries struct {
	// Workload labels the series' fixed part (the trace when the axis
	// comes from variants, the variant — possibly empty — when the axis
	// comes from trace names).
	Workload  string
	Scheduler string
	Ports     int
	// Loads is the ascending axis; P99s and Throughputs align with it.
	Loads       []float64
	P99s        []float64
	Throughputs []float64
	Labels      []string
	Knee        Knee
}

// Sustainable returns the series' sustainable throughput in coflows/s:
// the measured throughput at the last pre-knee point, or the maximum
// observed when no knee was detected.
func (s *SaturationSeries) Sustainable() float64 {
	if s.Knee.Detected && s.Knee.Index > 0 {
		return s.Throughputs[s.Knee.Index-1]
	}
	var max float64
	for _, v := range s.Throughputs {
		if v > max {
			max = v
		}
	}
	return max
}

// SaturationSeriesOf groups cells into per-scheduler load curves and
// runs knee detection on each (P99 CCT vs load axis). Cells without a
// numeric axis are skipped. Series order follows first appearance in
// cells, which is grid order — deterministic.
func SaturationSeriesOf(cells []Cell, tol float64) []SaturationSeries {
	type point struct {
		load, p99, thru float64
		label           string
		ports           int
	}
	type group struct {
		workload, scheduler string
		points              []point
	}
	var order []*group
	index := make(map[string]*group)
	for _, c := range cells {
		axis, ok := AxisValue(c.Variant, c.Trace)
		if !ok {
			continue
		}
		// The axis came from the variant when the variant parses; the
		// series' fixed label is whichever part does NOT carry the axis.
		workload := c.Trace
		if _, fromVariant := axisFromPairs(c.Variant); !fromVariant {
			workload = c.Variant
		}
		key := workload + "|" + c.Scheduler
		g, seen := index[key]
		if !seen {
			g = &group{workload: workload, scheduler: c.Scheduler}
			index[key] = g
			order = append(order, g)
		}
		g.points = append(g.points, point{load: axis, p99: c.P99CCT, thru: c.Throughput, label: c.Workload(), ports: c.Ports})
	}
	out := make([]SaturationSeries, 0, len(order))
	for _, g := range order {
		sort.SliceStable(g.points, func(i, j int) bool { return g.points[i].load < g.points[j].load })
		s := SaturationSeries{Workload: g.workload, Scheduler: g.scheduler}
		for _, p := range g.points {
			s.Loads = append(s.Loads, p.load)
			s.P99s = append(s.P99s, p.p99)
			s.Throughputs = append(s.Throughputs, p.thru)
			s.Labels = append(s.Labels, p.label)
			if p.ports > s.Ports {
				s.Ports = p.ports
			}
		}
		s.Knee = DetectKnee(s.Loads, s.P99s, tol)
		out = append(out, s)
	}
	return out
}

// SaturationTable renders one row per series: the knee coordinate and
// the sustainable coflows/s at the series' cluster size — the
// production-facing capacity answer.
func SaturationTable(title string, series []SaturationSeries) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"workload", "scheduler", "ports", "points", "knee", "sustainable coflows/s", "p99 pre-knee (s)", "p99 post-knee (s)"},
	}
	for i := range series {
		s := &series[i]
		workload := s.Workload
		if workload == "" {
			workload = "(default)"
		}
		knee, pre, post := "none (linear)", "-", "-"
		if s.Knee.Detected {
			knee = fmt.Sprintf("load %.4g → %.4g", s.Knee.Load, s.Loads[s.Knee.Index])
			pre = fmt.Sprintf("%.3f", s.P99s[s.Knee.Index-1])
			post = fmt.Sprintf("%.3f", s.Knee.Actual)
		}
		t.AddRow(workload, s.Scheduler, s.Ports, len(s.Loads), knee,
			fmt.Sprintf("%.2f", s.Sustainable()), pre, post)
	}
	return t
}

// saturationPointsTable details every series point with its linear
// verdict, so the report shows where each curve bends.
func saturationPointsTable(title string, series []SaturationSeries) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"workload", "scheduler", "load", "coflows/s", "p99 cct (s)", "regime"},
	}
	for i := range series {
		s := &series[i]
		for j := range s.Loads {
			regime := "linear"
			if s.Knee.Detected && j >= s.Knee.Index {
				regime = "saturated"
				if j == s.Knee.Index {
					regime = fmt.Sprintf("knee (%.3fs vs %.3fs predicted)", s.Knee.Actual, s.Knee.Predicted)
				}
			}
			t.AddRow(s.Labels[j], s.Scheduler,
				fmt.Sprintf("%.4g", s.Loads[j]),
				fmt.Sprintf("%.2f", s.Throughputs[j]),
				fmt.Sprintf("%.3f", s.P99s[j]),
				regime)
		}
	}
	return t
}

// CapacityReport renders the one-command capacity report: the per-cell
// capacity table, the per-series saturation/knee table, and — when any
// series has enough points — the per-point detail. tol <= 0 uses
// DefaultKneeTolerance.
func CapacityReport(title string, cells []Cell, tol float64) []*report.Table {
	out := []*report.Table{CapacityTable(title+" — throughput/latency per cell", cells)}
	series := SaturationSeriesOf(cells, tol)
	sat := SaturationTable(title+" — saturation knee & sustainable load", series)
	if len(series) == 0 {
		sat.AddRow("(no numeric load axis in this study — run a rate/degree sweep, e.g. -study capacity)",
			"-", "-", "-", "-", "-", "-", "-")
	}
	out = append(out, sat)
	if len(series) > 0 {
		out = append(out, saturationPointsTable(title+" — load curve detail", series))
	}
	return out
}
