package obs

// Knee detection over a load → latency curve: where P99 CCT departs
// the linear trend of the low-load prefix. Near saturation queueing
// latency grows super-linearly (SNIPPETS snippet 1: doubling capacity
// at the knee improves P99 ~7x, not 2x), so the knee is the capacity
// answer — load beyond it buys latency, not throughput.

// DefaultKneeTolerance is the relative departure that flags the knee:
// a point more than 50% above the linear prediction of the pre-knee
// prefix has left the linear regime.
const DefaultKneeTolerance = 0.5

// Knee is the detected saturation point of a (load, latency) curve.
type Knee struct {
	// Detected is false when the curve never departs linearity (or has
	// fewer than 3 points).
	Detected bool `json:"detected"`
	// Index is the first point past the knee (into the xs/ys passed to
	// DetectKnee); Index-1 is the last point still in the linear regime.
	Index int `json:"index,omitempty"`
	// Load is the last pre-knee load coordinate — the sustainable
	// operating point.
	Load float64 `json:"load,omitempty"`
	// Predicted is the linear extrapolation at the knee point; Actual
	// is the measured value that exceeded it.
	Predicted float64 `json:"predicted,omitempty"`
	Actual    float64 `json:"actual,omitempty"`
}

// DetectKnee finds where ys departs the linear trend of its low-load
// prefix. xs must be ascending with len(xs) == len(ys). The detector
// fits a least-squares line through the first two points, then walks
// forward: a point within (1+tol)× of the prediction (plus the
// absolute slack of the fit so flat, near-zero curves don't trip on
// noise) joins the fit and the line is refit over the grown prefix;
// the first point exceeding it is the knee. tol <= 0 uses
// DefaultKneeTolerance.
//
// The detector is pure arithmetic over its inputs — deterministic for
// deterministic curves.
func DetectKnee(xs, ys []float64, tol float64) Knee {
	if tol <= 0 {
		tol = DefaultKneeTolerance
	}
	n := len(xs)
	if n < 3 || len(ys) != n {
		return Knee{}
	}
	for i := 2; i < n; i++ {
		slope, intercept := fitLine(xs[:i], ys[:i])
		pred := slope*xs[i] + intercept
		// Absolute slack: the mean magnitude of the prefix, scaled by
		// tol. Without it a flat curve hugging zero would flag any
		// positive wiggle as a departure.
		slack := tol * meanAbs(ys[:i])
		limit := pred*(1+tol) + slack
		if ys[i] > limit {
			return Knee{
				Detected:  true,
				Index:     i,
				Load:      xs[i-1],
				Predicted: pred,
				Actual:    ys[i],
			}
		}
	}
	return Knee{}
}

// fitLine is the least-squares fit y = slope*x + intercept.
func fitLine(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

func meanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		sum += x
	}
	return sum / float64(len(xs))
}
