package obs

import (
	"fmt"
	"time"

	"saath/internal/report"
	"saath/internal/telemetry"
)

// NumEventKinds is the size of the engine's event-kind enum. The
// EventsByKind array is indexed by internal/sim's eventKind values;
// the alignment is pinned by TestEventKindNamesAligned in that
// package (sim imports obs, never the reverse).
const NumEventKinds = 5

// EventKindNames labels EventsByKind slots in declaration order of the
// engine's eventKind enum: exact-time completions, trace arrivals,
// availability injections, schedule epochs, probe emissions.
var EventKindNames = [NumEventKinds]string{"flow_done", "arrival", "avail", "epoch", "probe"}

// latencyBuckets is the fixed bucket count of LatencyHist: powers of 4
// from 1µs, so the top bucket bound is ~262ms — generously above any
// sane Schedule call.
const latencyBuckets = 10

// latencyBaseNs is the first bucket's upper bound in nanoseconds.
const latencyBaseNs = 1000

// LatencyHist is a fixed-layout log-scale histogram of nanosecond
// durations (bounds: powers of 4 from 1µs). The fixed array keeps
// Observe allocation-free, which is what lets the engine record every
// Schedule call's latency without breaking the zero-alloc steady-state
// guarantee.
type LatencyHist struct {
	Count    int64                 `json:"count"`
	SumNs    int64                 `json:"sum_ns"`
	MaxNs    int64                 `json:"max_ns"`
	Buckets  [latencyBuckets]int64 `json:"buckets"`
	Overflow int64                 `json:"overflow,omitempty"`
}

// Observe records one duration. Zero-alloc.
func (h *LatencyHist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.Count++
	h.SumNs += ns
	if ns > h.MaxNs {
		h.MaxNs = ns
	}
	bound := int64(latencyBaseNs)
	for i := range h.Buckets {
		if ns <= bound {
			h.Buckets[i]++
			return
		}
		bound *= 4
	}
	h.Overflow++
}

// Merge adds other's observations into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	h.Count += other.Count
	h.SumNs += other.SumNs
	if other.MaxNs > h.MaxNs {
		h.MaxNs = other.MaxNs
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Overflow += other.Overflow
}

// Dump exports the histogram through the telemetry dump type, values
// in nanoseconds.
func (h *LatencyHist) Dump(name string) telemetry.HistogramDump {
	d := telemetry.HistogramDump{
		Name:     name,
		Count:    h.Count,
		Sum:      float64(h.SumNs),
		Max:      float64(h.MaxNs),
		Overflow: h.Overflow,
		Buckets:  make([]telemetry.Bucket, latencyBuckets),
	}
	bound := float64(latencyBaseNs)
	for i := range h.Buckets {
		d.Buckets[i] = telemetry.Bucket{LE: bound, Count: h.Buckets[i]}
		bound *= 4
	}
	return d
}

// EngineCounters is the engine's introspection sink: attach one per
// run via sim.Config.Counters and the run loops count into it. Every
// field update is a nil-checked integer increment — the disabled path
// (nil Counters) and the enabled path are both zero-alloc in steady
// state. Counters are out-of-band: they never appear in Result or any
// deterministic export, only in the obs manifest.
//
// Attach a fresh instance per run; sharing one across runs sums them
// (which Merge also does explicitly).
type EngineCounters struct {
	// Mode is the run loop that filled the counters ("tick"/"event").
	Mode string `json:"mode,omitempty"`
	// Epochs counts scheduling intervals (Schedule calls).
	Epochs int64 `json:"epochs"`
	// Ticks counts δ-boundary visits of the tick loop (0 in event mode).
	Ticks int64 `json:"ticks,omitempty"`
	// Admitted / Retired count CoFlows entering and leaving the cluster.
	Admitted int64 `json:"admitted"`
	Retired  int64 `json:"retired"`
	// EventsDispatched counts event-loop dispatches (0 in tick mode);
	// EventsByKind splits them by eventKind (see EventKindNames).
	EventsDispatched int64                `json:"events_dispatched,omitempty"`
	EventsByKind     [NumEventKinds]int64 `json:"events_by_kind"`
	// HeapPushes counts event-queue insertions, HeapMax is the heap
	// depth high-water mark, HeapCancels counts O(log n) cancellations.
	HeapPushes  int64 `json:"heap_pushes,omitempty"`
	HeapMax     int64 `json:"heap_max,omitempty"`
	HeapCancels int64 `json:"heap_cancels,omitempty"`
	// Schedule is the wall-clock latency histogram of Schedule calls.
	Schedule LatencyHist `json:"schedule_latency"`
}

// Merge adds other into c: sums everywhere, max for HeapMax, first
// non-empty Mode wins (aggregates across mixed modes keep the label of
// whichever contributed first).
func (c *EngineCounters) Merge(other *EngineCounters) {
	if other == nil {
		return
	}
	if c.Mode == "" {
		c.Mode = other.Mode
	} else if other.Mode != "" && other.Mode != c.Mode {
		c.Mode = "mixed"
	}
	c.Epochs += other.Epochs
	c.Ticks += other.Ticks
	c.Admitted += other.Admitted
	c.Retired += other.Retired
	c.EventsDispatched += other.EventsDispatched
	for i := range c.EventsByKind {
		c.EventsByKind[i] += other.EventsByKind[i]
	}
	c.HeapPushes += other.HeapPushes
	if other.HeapMax > c.HeapMax {
		c.HeapMax = other.HeapMax
	}
	c.HeapCancels += other.HeapCancels
	c.Schedule.Merge(&other.Schedule)
}

// counterValue is one named scalar of the counter set.
type counterValue struct {
	Name  string
	Value int64
}

// scalars returns the counter name/value pairs in stable render order.
func (c *EngineCounters) scalars() []counterValue {
	out := []counterValue{
		{"engine_epochs", c.Epochs},
		{"engine_ticks", c.Ticks},
		{"engine_admitted", c.Admitted},
		{"engine_retired", c.Retired},
		{"engine_events_dispatched", c.EventsDispatched},
	}
	for i, n := range EventKindNames {
		out = append(out, counterValue{"engine_events_" + n, c.EventsByKind[i]})
	}
	return append(out,
		counterValue{"engine_heap_pushes", c.HeapPushes},
		counterValue{"engine_heap_max", c.HeapMax},
		counterValue{"engine_heap_cancels", c.HeapCancels})
}

// Metrics exports the counters through the existing telemetry dump
// types: each counter as a single-point series, the schedule-call
// latency as a histogram — so every renderer and JSON consumer built
// for telemetry.Metrics works on engine introspection unchanged.
func (c *EngineCounters) Metrics() *telemetry.Metrics {
	m := &telemetry.Metrics{Intervals: c.Epochs, Sampled: c.Epochs}
	for _, s := range c.scalars() {
		v := float64(s.Value)
		m.Series = append(m.Series, telemetry.SeriesDump{Name: s.Name, Count: 1, Mean: v, Max: v, Last: v})
	}
	m.Histograms = append(m.Histograms, c.Schedule.Dump("engine_schedule_latency_ns"))
	return m
}

// Table renders the counters and latency summary as one report table.
func (c *EngineCounters) Table(title string) *report.Table {
	t := &report.Table{Title: title, Headers: []string{"counter", "value"}}
	if c.Mode != "" {
		t.AddRow("engine_mode", c.Mode)
	}
	for _, s := range c.scalars() {
		t.AddRow(s.Name, s.Value)
	}
	if c.Schedule.Count > 0 {
		mean := time.Duration(c.Schedule.SumNs / c.Schedule.Count)
		t.AddRow("schedule_latency_mean", fmt.Sprintf("%v", mean))
		t.AddRow("schedule_latency_max", fmt.Sprintf("%v", time.Duration(c.Schedule.MaxNs)))
	}
	return t
}
