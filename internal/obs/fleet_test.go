package obs

import (
	"bytes"
	"strings"
	"testing"
)

func fleetShard(shard int, durNs int64, extra ...FleetAttempt) FleetShard {
	attempts := append(extra, FleetAttempt{
		Attempt: len(extra) + 1, Outcome: FleetOK, DurNs: durNs,
	})
	return FleetShard{Shard: shard, Of: 4, Jobs: 3, Attempts: attempts, Retries: len(extra)}
}

// TestMarkStragglers: straggler detection is a pure function of
// recorded durations — a shard far past the median is flagged, re-runs
// are idempotent, and a lone shard has no peers to straggle behind.
func TestMarkStragglers(t *testing.T) {
	r := &FleetReport{Shards: []FleetShard{
		fleetShard(0, 100), fleetShard(1, 110), fleetShard(2, 90), fleetShard(3, 1000),
	}}
	r.MarkStragglers(2)
	if len(r.Stragglers) != 1 || r.Stragglers[0] != 3 {
		t.Fatalf("stragglers = %v, want [3]", r.Stragglers)
	}
	if !r.Shards[3].Straggler || r.Shards[0].Straggler {
		t.Errorf("straggler flags wrong: %+v", r.Shards)
	}
	r.MarkStragglers(2) // idempotent, not accumulating
	if len(r.Stragglers) != 1 {
		t.Errorf("re-marking duplicated stragglers: %v", r.Stragglers)
	}
	r.MarkStragglers(100)
	if len(r.Stragglers) != 0 {
		t.Errorf("factor 100 still flags: %v", r.Stragglers)
	}

	one := &FleetReport{Shards: []FleetShard{fleetShard(0, 100)}}
	one.MarkStragglers(0)
	if len(one.Stragglers) != 0 {
		t.Errorf("single-shard fleet flagged a straggler")
	}

	// A shard with no successful attempt contributes nothing.
	failed := &FleetReport{Shards: []FleetShard{
		fleetShard(0, 100), fleetShard(1, 300),
		{Shard: 2, Of: 3, Attempts: []FleetAttempt{{Attempt: 1, Outcome: FleetExit, DurNs: 9999}}},
	}}
	failed.MarkStragglers(2)
	for _, s := range failed.Stragglers {
		if s == 2 {
			t.Error("failed shard marked as straggler")
		}
	}
}

// TestManifestFleetSection: the fleet report rides in the manifest
// JSON under "fleet", and in-process manifests omit it entirely.
func TestManifestFleetSection(t *testing.T) {
	var buf bytes.Buffer
	m := &Manifest{Study: "s", Fleet: &FleetReport{Backend: "local-exec", Workers: 4, Tasks: 8,
		Shards: []FleetShard{fleetShard(0, 100, FleetAttempt{Attempt: 1, Outcome: FleetStalled})}}}
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fleet"`, `"local-exec"`, `"stalled"`, `"attempts"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("fleet manifest missing %s:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	if err := (&Manifest{Study: "s"}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fleet") {
		t.Errorf("in-process manifest grew a fleet section:\n%s", buf.String())
	}
}
