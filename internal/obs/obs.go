// Package obs is the execution-observability layer: run-trace spans,
// engine introspection counters, run manifests, profiling hooks, and
// the derived saturation/capacity analytics — how the simulator
// executed, not just what it computed.
//
// Everything in this package is out-of-band by construction. Spans and
// counters record wall-clock and execution-shape facts into a side
// channel (the Recorder and its Manifest); they never feed simulation
// state, RNG draw order, or the deterministic Summary/shard exports,
// so every byte-identity golden holds with observability enabled. The
// engine counters are plain int fields behind a nil check — attaching
// no sink costs zero allocations per tick or event dispatch (guarded
// by the steady-state alloc tests in internal/sim), and attaching one
// costs increments only.
//
// The dependency direction is obs → {telemetry, report, stdlib}:
// internal/sim, internal/sweep and internal/study all import obs, so
// obs must not import them. Counters export through the existing
// telemetry dump types (Metrics, HistogramDump), so every renderer and
// JSON consumer built for telemetry works on engine introspection
// unchanged.
package obs
