package obs

import (
	"fmt"
	"sort"

	"saath/internal/report"
)

// RuntimeRecord is one testbed job's out-of-band runtime measurement:
// what the real coordinator did while the job's workload ran through
// it — admission decisions, schedule boundaries, and the wall-clock
// cost of each Schedule call (the paper's Table 2 quantity). Wall
// times live here and only here; the deterministic study exports see
// virtual time exclusively.
type RuntimeRecord struct {
	Index     int    `json:"index"`
	Trace     string `json:"trace"`
	Variant   string `json:"variant,omitempty"`
	Scheduler string `json:"scheduler"`
	Seed      int64  `json:"seed"`

	// Ports is the coordinator's fabric width; Agents the number of
	// in-process agents attached (equal to Ports in testbed runs).
	Ports  int `json:"ports"`
	Agents int `json:"agents"`

	// Admission outcome counts, plus the coflows that completed.
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected,omitempty"`
	Completed int   `json:"completed"`

	// Boundaries is the number of δ sync boundaries driven.
	Boundaries int `json:"boundaries"`

	// Schedule-latency reservoir digest: wall-clock nanoseconds per
	// coordinator Schedule call.
	ScheduleCalls   int   `json:"schedule_calls"`
	ScheduleMeanNs  int64 `json:"schedule_mean_ns"`
	ScheduleP90Ns   int64 `json:"schedule_p90_ns"`
	ScheduleMaxNs   int64 `json:"schedule_max_ns"`
	ScheduleTotalNs int64 `json:"schedule_total_ns"`
}

// RuntimeReport is the testbed runner's out-of-band section of the
// manifest: one record per job, grid order.
type RuntimeReport struct {
	Records []RuntimeRecord `json:"records"`
}

// Sort orders records by grid index (execution interleaving lands them
// in arbitrary order under parallelism).
func (r *RuntimeReport) Sort() {
	sort.Slice(r.Records, func(i, j int) bool { return r.Records[i].Index < r.Records[j].Index })
}

// Merge appends another report's records (shard reassembly).
func (r *RuntimeReport) Merge(other *RuntimeReport) {
	if other == nil {
		return
	}
	r.Records = append(r.Records, other.Records...)
}

// RuntimeTable renders the schedule-latency report in the shape of the
// paper's Table 2: per job, cluster size against the coordinator's
// per-Schedule wall-clock cost. Wall times are measurements of this
// machine — the table is informational, never part of the
// deterministic study exports.
func RuntimeTable(title string, rep *RuntimeReport) *report.Table {
	t := &report.Table{Title: title, Headers: []string{
		"trace", "variant", "scheduler", "seed", "ports", "agents",
		"admitted", "rejected", "completed", "boundaries",
		"sched calls", "mean", "p90", "max",
	}}
	if rep == nil {
		return t
	}
	for _, rec := range rep.Records {
		t.AddRow(rec.Trace, rec.Variant, rec.Scheduler, rec.Seed,
			rec.Ports, rec.Agents, rec.Admitted, rec.Rejected,
			rec.Completed, rec.Boundaries, rec.ScheduleCalls,
			fmtNs(rec.ScheduleMeanNs), fmtNs(rec.ScheduleP90Ns), fmtNs(rec.ScheduleMaxNs))
	}
	return t
}

// fmtNs renders nanoseconds at µs/ms granularity — schedule latencies
// range from sub-µs toy runs to ms at 10^5 ports.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
