package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles wires the standard Go profiling outputs behind the CLIs'
// -cpuprofile / -memprofile / -runtime-trace flags. Empty paths are
// disabled.
type Profiles struct {
	CPU   string // pprof CPU profile path
	Mem   string // heap profile path, written at Stop
	Trace string // runtime execution trace path
}

// Any reports whether any profile output is requested.
func (p Profiles) Any() bool { return p.CPU != "" || p.Mem != "" || p.Trace != "" }

// Start begins CPU profiling and execution tracing as requested. The
// returned stop flushes and closes everything — including the heap
// profile, which is captured at stop time after a GC — and must be
// called before process exit for the outputs to be complete. Start
// cleans up after itself on error; stop is never nil.
func (p Profiles) Start() (stop func() error, err error) {
	var cleanup []func() error
	fail := func(err error) (func() error, error) {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]() //nolint:errcheck — already failing
		}
		return func() error { return nil }, err
	}
	if p.CPU != "" {
		f, err := os.Create(p.CPU)
		if err != nil {
			return fail(fmt.Errorf("obs: cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("obs: cpuprofile: %w", err))
		}
		cleanup = append(cleanup, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if p.Trace != "" {
		f, err := os.Create(p.Trace)
		if err != nil {
			return fail(fmt.Errorf("obs: runtime-trace: %w", err))
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("obs: runtime-trace: %w", err))
		}
		cleanup = append(cleanup, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	memPath := p.Mem
	return func() error {
		var first error
		for i := len(cleanup) - 1; i >= 0; i-- {
			if err := cleanup[i](); first == nil {
				first = err
			}
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// writeHeapProfile captures the heap profile after a GC, so the dump
// reflects live objects rather than garbage awaiting collection.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	return nil
}
