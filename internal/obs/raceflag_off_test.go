//go:build !race

package obs

// raceEnabled reports whether the race detector instrumented this
// build; allocation-count guards are skipped under it.
const raceEnabled = false
