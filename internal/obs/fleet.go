package obs

import "sort"

// Fleet execution report types. The fleet driver (internal/fleet)
// records every shard attempt — which worker slot ran it, how it
// ended, how long it took, how many wire events proved it alive — and
// attaches the aggregate as the manifest's "fleet" section. Like every
// obs artifact this is out-of-band forensics: retries, stragglers and
// chaos injections never appear in the deterministic study output,
// which stays byte-identical to a single-process run.

// Fleet attempt outcomes. "ok" is the only success; everything else
// names the failure class the driver acted on.
const (
	FleetOK       = "ok"       // dump received and validated
	FleetExit     = "exit"     // worker exited (or was killed) without a valid dump
	FleetDeadline = "deadline" // per-attempt deadline exceeded; worker killed
	FleetStalled  = "stalled"  // no wire event within the stall timeout; worker killed
	FleetBadDump  = "bad-dump" // dump failed validation (corrupt or drifted payload)
	FleetDrift    = "drift"    // worker announced a different grid fingerprint
	FleetLaunch   = "launch"   // backend failed to start the worker
	FleetCanceled = "canceled" // run aborted while the attempt was in flight
)

// FleetAttempt is one launch of a shard on a worker slot.
type FleetAttempt struct {
	// Attempt numbers launches of this shard from 1.
	Attempt int `json:"attempt"`
	// Worker is the driver worker slot that ran the attempt.
	Worker int `json:"worker"`
	// Outcome is one of the Fleet* constants above.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// DurNs is the attempt's wall-clock from launch to verdict.
	DurNs int64 `json:"dur_ns"`
	// Events counts wire events received — the liveness evidence the
	// stall detector judged the worker by.
	Events int `json:"events"`
	// BackoffNs is the deterministic backoff delay that preceded this
	// attempt (0 for the first).
	BackoffNs int64 `json:"backoff_ns,omitempty"`
}

// FleetShard aggregates one shard's execution history.
type FleetShard struct {
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Jobs is the number of grid jobs in this shard's stripe.
	Jobs     int            `json:"jobs"`
	Attempts []FleetAttempt `json:"attempts"`
	// Retries counts launches beyond the first.
	Retries int `json:"retries"`
	// Straggler marks a shard whose successful attempt ran far past the
	// fleet median (see MarkStragglers).
	Straggler bool `json:"straggler,omitempty"`
	// Schedule* summarize the shard's schedule-latency histogram as
	// streamed back in its dump totals: call count, mean and max in
	// nanoseconds. A shard whose scheduler limps shows up here even
	// when its wall-clock hides behind a fast machine.
	ScheduleCount  int64 `json:"schedule_count,omitempty"`
	ScheduleMeanNs int64 `json:"schedule_mean_ns,omitempty"`
	ScheduleMaxNs  int64 `json:"schedule_max_ns,omitempty"`
}

// ok returns the shard's successful attempt, if any.
func (s *FleetShard) ok() *FleetAttempt {
	for i := range s.Attempts {
		if s.Attempts[i].Outcome == FleetOK {
			return &s.Attempts[i]
		}
	}
	return nil
}

// FleetReport is the driver's structured robustness report: the full
// attempt history per shard, aggregate retry counts, terminally failed
// shards, detected stragglers, and any injected chaos (so a test run's
// manifest records exactly which faults it survived).
type FleetReport struct {
	Backend string `json:"backend"`
	Workers int    `json:"workers"`
	// Tasks is the shard partition size (every shard is i/Tasks).
	Tasks  int          `json:"tasks"`
	Shards []FleetShard `json:"shards"`
	// Retries sums launches beyond the first across all shards.
	Retries int `json:"retries"`
	// Failed lists shards that exhausted their attempt budget.
	Failed []int `json:"failed,omitempty"`
	// Stragglers lists shards flagged by MarkStragglers.
	Stragglers []int `json:"stragglers,omitempty"`
	// Chaos describes faults injected by the chaos harness.
	Chaos []string `json:"chaos,omitempty"`
}

// MarkStragglers flags shards whose successful attempt took more than
// factor times the median successful-attempt duration (factor <= 0
// takes 2). Purely presentational forensics over recorded durations,
// so it is deterministic given a report and unit-testable without a
// clock.
func (r *FleetReport) MarkStragglers(factor float64) {
	if factor <= 0 {
		factor = 2
	}
	durs := make([]int64, 0, len(r.Shards))
	for i := range r.Shards {
		if a := r.Shards[i].ok(); a != nil {
			durs = append(durs, a.DurNs)
		}
	}
	if len(durs) < 2 {
		return // one shard has no peers to straggle behind
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	median := durs[len(durs)/2]
	cut := int64(float64(median) * factor)
	r.Stragglers = nil
	for i := range r.Shards {
		sh := &r.Shards[i]
		sh.Straggler = false
		if a := sh.ok(); a != nil && a.DurNs > cut {
			sh.Straggler = true
			r.Stragglers = append(r.Stragglers, sh.Shard)
		}
	}
}
