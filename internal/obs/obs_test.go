package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistObserve(t *testing.T) {
	var h LatencyHist
	h.Observe(500 * time.Nanosecond) // bucket 0 (≤1µs)
	h.Observe(3 * time.Microsecond)  // bucket 1 (≤4µs)
	h.Observe(time.Millisecond)      // ≤1.024ms → bucket 5
	h.Observe(10 * time.Second)      // overflow
	if h.Count != 4 {
		t.Fatalf("count = %d, want 4", h.Count)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[5] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow)
	}
	if h.MaxNs != int64(10*time.Second) {
		t.Errorf("max = %d", h.MaxNs)
	}
	d := h.Dump("lat")
	if d.Count != 4 || len(d.Buckets) != latencyBuckets || d.Buckets[0].LE != 1000 {
		t.Errorf("dump = %+v", d)
	}
	if got := d.Quantile(0.5); got != 4000 {
		t.Errorf("p50 = %v, want 4000 (second bucket bound)", got)
	}
}

func TestLatencyHistObserveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	var h LatencyHist
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12 * time.Microsecond) }); n != 0 {
		t.Errorf("Observe allocates %.1f times, want 0", n)
	}
}

func TestEngineCountersMergeAndExports(t *testing.T) {
	a := &EngineCounters{Mode: "event", Epochs: 10, Admitted: 5, Retired: 5,
		EventsDispatched: 20, HeapPushes: 20, HeapMax: 7, HeapCancels: 1}
	a.EventsByKind[1] = 5
	a.Schedule.Observe(2 * time.Microsecond)
	b := &EngineCounters{Mode: "event", Epochs: 3, HeapMax: 4}
	b.EventsByKind[1] = 2

	var sum EngineCounters
	sum.Merge(a)
	sum.Merge(b)
	if sum.Epochs != 13 || sum.HeapMax != 7 || sum.EventsByKind[1] != 7 || sum.Mode != "event" {
		t.Errorf("merge = %+v", sum)
	}
	sum.Merge(&EngineCounters{Mode: "tick"})
	if sum.Mode != "mixed" {
		t.Errorf("mixed-mode merge label = %q", sum.Mode)
	}

	m := a.Metrics()
	if m.Intervals != 10 {
		t.Errorf("metrics intervals = %d", m.Intervals)
	}
	if s := m.FindSeries("engine_events_arrival"); s == nil || s.Last != 5 {
		t.Errorf("events_arrival series = %+v", s)
	}
	if h := m.FindHistogram("engine_schedule_latency_ns"); h == nil || h.Count != 1 {
		t.Errorf("latency histogram = %+v", h)
	}
	tbl := a.Table("counters")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine_epochs", "engine_heap_max", "schedule_latency_mean"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSpanLifecycleAndNilSafety(t *testing.T) {
	root := StartSpan("study")
	child := root.Child("compile")
	child.End()
	grand := root.Child("run").Child("job")
	grand.End()
	root.End()
	before := root.DurNs
	root.End() // idempotent
	if root.DurNs != before {
		t.Error("second End changed duration")
	}
	if root.Find("job") == nil || root.Find("absent") != nil {
		t.Error("Find misbehaves")
	}
	if child.Duration() < 0 {
		t.Error("negative duration")
	}

	var nilSpan *Span
	if nilSpan.Child("x") != nil {
		t.Error("nil Child should return nil")
	}
	nilSpan.End() // must not panic
	if nilSpan.Find("x") != nil || nilSpan.Duration() != 0 {
		t.Error("nil span accessors misbehave")
	}
}

func TestRecorderManifest(t *testing.T) {
	rec := NewRecorder("demo")
	if !rec.Enabled() {
		t.Fatal("recorder should be enabled")
	}
	top := rec.Span("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := StartSpan("job")
			sp.Child("run").End()
			sp.End()
			c := &EngineCounters{Epochs: int64(i + 1)}
			jr := JobRecord{Index: i, Trace: "fb", Scheduler: "saath", Seed: 1, Span: sp, Counters: c}
			if i == 3 {
				jr.Error = "boom"
			}
			rec.RecordJob(jr)
		}(i)
	}
	wg.Wait()
	top.End()

	m := rec.Manifest()
	if m.Study != "demo" || len(m.Jobs) != 8 || len(m.Spans) != 1 {
		t.Fatalf("manifest shape: study=%q jobs=%d spans=%d", m.Study, len(m.Jobs), len(m.Spans))
	}
	for i, j := range m.Jobs {
		if j.Index != i {
			t.Fatalf("jobs not in grid order: %d at %d", j.Index, i)
		}
	}
	if m.Totals.Jobs != 8 || m.Totals.Failed != 1 {
		t.Errorf("totals = %+v", m.Totals)
	}
	if m.Totals.Counters.Epochs != 1+2+3+4+5+6+7+8 {
		t.Errorf("merged epochs = %d", m.Totals.Counters.Epochs)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Manifest
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("manifest JSON does not round-trip: %v", err)
	}
	if len(round.Jobs) != 8 || round.Totals.Counters.Epochs != m.Totals.Counters.Epochs {
		t.Errorf("round-trip lost data")
	}

	var disabled *Recorder
	if disabled.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	disabled.RecordJob(JobRecord{}) // must not panic
	if disabled.Span("x") != nil {
		t.Error("nil recorder Span should be nil")
	}
	if dm := disabled.Manifest(); dm == nil || len(dm.Jobs) != 0 {
		t.Error("nil recorder manifest should be empty, non-nil")
	}
}

func TestDetectKnee(t *testing.T) {
	// Linear then super-linear: knee after the 4th point.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1, 2, 3, 4, 9, 20}
	k := DetectKnee(xs, ys, 0.5)
	if !k.Detected || k.Index != 4 || k.Load != 4 {
		t.Fatalf("knee = %+v, want detected at index 4 (load 4)", k)
	}
	if k.Actual != 9 || k.Predicted >= 9 {
		t.Errorf("knee prediction: %+v", k)
	}

	// Perfectly linear: no knee.
	if k := DetectKnee(xs, []float64{2, 4, 6, 8, 10, 12}, 0.5); k.Detected {
		t.Errorf("linear curve flagged: %+v", k)
	}
	// Flat near zero with tiny noise: slack keeps it linear.
	if k := DetectKnee(xs, []float64{0.01, 0.011, 0.0105, 0.0102, 0.0108, 0.0101}, 0.5); k.Detected {
		t.Errorf("flat noise flagged: %+v", k)
	}
	// Too few points.
	if k := DetectKnee([]float64{1, 2}, []float64{1, 2}, 0.5); k.Detected {
		t.Error("2-point curve flagged")
	}
	// tol <= 0 uses the default.
	if k := DetectKnee(xs, ys, 0); !k.Detected {
		t.Error("default tolerance missed the knee")
	}
}

func TestAxisValue(t *testing.T) {
	cases := []struct {
		variant, trace string
		want           float64
		ok             bool
	}{
		{"A=2", "fb", 2, true},
		{"A=0.5", "fb", 0.5, true},
		{"deg=12,hot=2,skew=0", "fan", 12, true},
		{"delta=8ms", "fb", 8, true},
		{"engine=tick", "incast", 0, false},
		{"", "fb@A=4", 4, true},
		{"", "mix-incast25", 25, true},
		{"", "fb", 0, false},
	}
	for _, c := range cases {
		got, ok := AxisValue(c.variant, c.trace)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("AxisValue(%q, %q) = %v, %v; want %v, %v", c.variant, c.trace, got, ok, c.want, c.ok)
		}
	}
}

func TestCapacityReport(t *testing.T) {
	// Two schedulers over a 5-point arrival sweep; saath stays linear.
	var cells []Cell
	for _, s := range []struct {
		name string
		p99  []float64
	}{
		{"aalo", []float64{1, 2, 3, 12, 30}},
		{"saath", []float64{1, 2, 3, 4, 5}},
	} {
		for i, a := range []float64{1, 2, 3, 4, 5} {
			cells = append(cells, Cell{
				Trace: "fb-cap", Variant: "A=" + []string{"1", "2", "3", "4", "5"}[i],
				Scheduler: s.name, Runs: 1, CoFlows: 100, Ports: 48,
				Throughput: 10 * a, P99CCT: s.p99[i], AvgCCT: s.p99[i] / 2,
			})
		}
	}
	series := SaturationSeriesOf(cells, 0.5)
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	if !series[0].Knee.Detected || series[0].Scheduler != "aalo" {
		t.Errorf("aalo knee: %+v", series[0].Knee)
	}
	if series[1].Knee.Detected {
		t.Errorf("saath (linear) flagged: %+v", series[1].Knee)
	}
	if got := series[0].Sustainable(); got != 30 {
		t.Errorf("aalo sustainable = %v, want 30 (last pre-knee point)", got)
	}
	if got := series[1].Sustainable(); got != 50 {
		t.Errorf("saath sustainable = %v, want 50 (max observed)", got)
	}

	tables := CapacityReport("cap", cells, 0.5)
	if len(tables) != 3 {
		t.Fatalf("report tables = %d, want 3", len(tables))
	}
	var buf bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"sustainable coflows/s", "knee", "saturated", "none (linear)"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}

	// No numeric axis: the saturation table degrades with a hint row.
	none := CapacityReport("cap", []Cell{{Trace: "fb", Scheduler: "saath"}}, 0)
	buf.Reset()
	for _, tbl := range none {
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(buf.String(), "no numeric load axis") {
		t.Errorf("axis-free report missing hint:\n%s", buf.String())
	}
}

func TestProfilesStartStop(t *testing.T) {
	dir := t.TempDir()
	p := Profiles{
		CPU:   filepath.Join(dir, "cpu.pprof"),
		Mem:   filepath.Join(dir, "mem.pprof"),
		Trace: filepath.Join(dir, "trace.out"),
	}
	if !p.Any() {
		t.Fatal("Any() = false")
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = StartSpan("busywork")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPU, p.Mem, p.Trace} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if (Profiles{}).Any() {
		t.Error("zero Profiles reports Any")
	}
	stop2, err := Profiles{}.Start()
	if err != nil || stop2 == nil {
		t.Fatalf("zero Profiles Start: %v", err)
	}
	if err := stop2(); err != nil {
		t.Error(err)
	}
}
