package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// JobRecord is one job's observability digest: identity, phase span
// tree, engine counters, and the error string on failure. Records live
// only in the manifest — never in the deterministic study exports.
type JobRecord struct {
	Index     int             `json:"index"`
	Trace     string          `json:"trace"`
	Variant   string          `json:"variant,omitempty"`
	Scheduler string          `json:"scheduler"`
	Seed      int64           `json:"seed"`
	Error     string          `json:"error,omitempty"`
	Span      *Span           `json:"span,omitempty"`
	Counters  *EngineCounters `json:"counters,omitempty"`
}

// ManifestTotals aggregates the run: job counts, summed job wall-clock
// (JobNs exceeds real elapsed time under parallelism — it is CPU-side
// work, not wall time), and counters merged across every job.
type ManifestTotals struct {
	Jobs     int            `json:"jobs"`
	Failed   int            `json:"failed,omitempty"`
	JobNs    int64          `json:"job_ns"`
	Counters EngineCounters `json:"counters"`
}

// Manifest is one run's collected observability: per-job records in
// grid order, top-level phase spans, and the aggregate totals.
type Manifest struct {
	Study  string         `json:"study,omitempty"`
	Jobs   []JobRecord    `json:"jobs"`
	Spans  []*Span        `json:"spans,omitempty"`
	Totals ManifestTotals `json:"totals"`
	// Fleet is the distributed-execution report when the run was driven
	// by the fleet driver: per-shard attempt history, retries,
	// stragglers, injected chaos. Absent on in-process runs.
	Fleet *FleetReport `json:"fleet,omitempty"`
	// Runtime is the testbed runner's coordinator measurements
	// (schedule latency, admission counts) when the run went through
	// the real coordinator. Absent on simulator-backed runs.
	Runtime *RuntimeReport `json:"runtime,omitempty"`
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Recorder is the thread-safe collection point the sweep layer feeds:
// workers record one JobRecord per job, the driver opens top-level
// spans, Manifest snapshots everything. A nil *Recorder is the
// disabled state — every method is a nil-safe no-op, so call sites
// thread one pointer through unconditionally.
type Recorder struct {
	mu      sync.Mutex
	study   string
	jobs    []JobRecord
	spans   []*Span
	runtime []RuntimeRecord
}

// NewRecorder returns an enabled recorder labeled with the study name.
func NewRecorder(study string) *Recorder {
	return &Recorder{study: study}
}

// Enabled reports whether records will be kept (false on nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Span opens a top-level phase span registered with the recorder; the
// caller Ends it. Returns nil on a disabled recorder.
func (r *Recorder) Span(name string) *Span {
	if r == nil {
		return nil
	}
	s := StartSpan(name)
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// RecordJob stores one job's digest. Safe for concurrent use; no-op on
// a disabled recorder.
func (r *Recorder) RecordJob(rec JobRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.jobs = append(r.jobs, rec)
	r.mu.Unlock()
}

// RecordRuntime stores one testbed job's coordinator measurements.
// Safe for concurrent use; no-op on a disabled recorder.
func (r *Recorder) RecordRuntime(rec RuntimeRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.runtime = append(r.runtime, rec)
	r.mu.Unlock()
}

// Manifest snapshots the collected state: job records sorted by grid
// index (arrival order is execution interleaving; the manifest is not
// byte-pinned, but grid order keeps it stable enough to diff), totals
// summed across jobs.
func (r *Recorder) Manifest() *Manifest {
	if r == nil {
		return &Manifest{}
	}
	r.mu.Lock()
	jobs := append([]JobRecord(nil), r.jobs...)
	spans := append([]*Span(nil), r.spans...)
	rt := append([]RuntimeRecord(nil), r.runtime...)
	study := r.study
	r.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Index < jobs[j].Index })
	m := &Manifest{Study: study, Jobs: jobs, Spans: spans}
	if len(rt) > 0 {
		rep := &RuntimeReport{Records: rt}
		rep.Sort()
		m.Runtime = rep
	}
	m.Totals.Jobs = len(jobs)
	for i := range jobs {
		j := &jobs[i]
		if j.Error != "" {
			m.Totals.Failed++
		}
		m.Totals.JobNs += j.Span.Duration().Nanoseconds()
		m.Totals.Counters.Merge(j.Counters)
	}
	return m
}
