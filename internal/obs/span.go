package obs

import "time"

// Span is one timed phase of an execution — a study compile, a job's
// trace synthesis, the run loop, an export — with nested children
// forming the run trace. Spans record wall-clock into the obs side
// channel only ("deterministic-safe"): they never feed simulation
// state or any byte-pinned export, so timings may differ run to run
// while every golden still holds.
//
// All methods are nil-receiver safe: a disabled recorder hands out nil
// spans and the instrumentation sites need no branching.
type Span struct {
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_unix_ns"`
	DurNs    int64   `json:"dur_ns"`
	Children []*Span `json:"children,omitempty"`
}

// StartSpan opens a root span at the current wall clock.
func StartSpan(name string) *Span {
	return &Span{Name: name, StartNs: time.Now().UnixNano()}
}

// Child opens and attaches a nested span. Returns nil on a nil
// receiver. Not safe for concurrent Child calls on one parent — give
// each goroutine its own span (the sweep does: one job span per job).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.Children = append(s.Children, c)
	return c
}

// End closes the span. Idempotent: the first call wins.
func (s *Span) End() {
	if s == nil || s.DurNs != 0 {
		return
	}
	s.DurNs = time.Now().UnixNano() - s.StartNs
}

// Duration returns the recorded duration (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurNs)
}

// Find returns the first span named name in a depth-first walk of s
// and its children, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}
