package queues

import (
	"math"
	"testing"
	"testing/quick"

	"saath/internal/coflow"
)

func TestDefaultMatchesPaper(t *testing.T) {
	c := Default()
	if c.NumQueues != 10 || c.StartThreshold != 10*coflow.MB || c.Growth != 10 {
		t.Fatalf("defaults = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NumQueues: 0, StartThreshold: 1, Growth: 2},
		{NumQueues: 2, StartThreshold: 0, Growth: 2},
		{NumQueues: 2, StartThreshold: 1, Growth: 1},
		{NumQueues: 2, StartThreshold: 1, Growth: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestThresholdsGrowExponentially(t *testing.T) {
	c := Default()
	if got := c.HiThreshold(0); got != 10*coflow.MB {
		t.Fatalf("Q^hi_0 = %d", got)
	}
	if got := c.HiThreshold(1); got != 100*coflow.MB {
		t.Fatalf("Q^hi_1 = %d", got)
	}
	if got := c.HiThreshold(c.NumQueues - 1); got != math.MaxInt64 {
		t.Fatalf("last queue threshold = %d, want inf", got)
	}
	if got := c.LoThreshold(0); got != 0 {
		t.Fatalf("Q^lo_0 = %d", got)
	}
	if got := c.LoThreshold(2); got != c.HiThreshold(1) {
		t.Fatal("Q^lo_q != Q^hi_{q-1}")
	}
	if got := c.HiThreshold(-1); got != 0 {
		t.Fatalf("negative queue threshold = %d", got)
	}
}

func TestThresholdOverflowClamped(t *testing.T) {
	c := Config{NumQueues: 100, StartThreshold: coflow.TB, Growth: 32}
	if got := c.HiThreshold(50); got != math.MaxInt64 {
		t.Fatalf("huge threshold = %d, want clamp", got)
	}
}

func TestQueueForBytes(t *testing.T) {
	c := Default()
	cases := []struct {
		b coflow.Bytes
		q int
	}{
		{0, 0},
		{10*coflow.MB - 1, 0},
		{10 * coflow.MB, 1},
		{99 * coflow.MB, 1},
		{100 * coflow.MB, 2},
		{coflow.TB, 6}, // 1 TiB sits just above Q^hi_5 = 10MiB·10^5 -> q=6
		{math.MaxInt64, c.NumQueues - 1},
	}
	for _, tc := range cases {
		if got := c.QueueForBytes(tc.b); got != tc.q {
			t.Errorf("QueueForBytes(%d) = %d, want %d", tc.b, got, tc.q)
		}
	}
}

func TestQueueForPerFlowMatchesFig5(t *testing.T) {
	// Fig. 5: queue threshold 200MB, CoFlow with 100 flows has a
	// per-flow threshold of 2MB.
	c := Config{NumQueues: 3, StartThreshold: 200 * coflow.MB, Growth: 10}
	if got := c.QueueForPerFlow(2*coflow.MB-1, 100); got != 0 {
		t.Fatalf("below per-flow share: q=%d", got)
	}
	if got := c.QueueForPerFlow(2*coflow.MB+1, 100); got != 1 {
		t.Fatalf("above per-flow share: q=%d", got)
	}
}

func TestQueueForPerFlowWidthOne(t *testing.T) {
	c := Default()
	// Width 1 degenerates to the total-bytes rule.
	f := func(raw uint32) bool {
		b := coflow.Bytes(raw) * coflow.KB
		return c.QueueForPerFlow(b, 1) == c.QueueForBytes(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.QueueForPerFlow(coflow.MB, 0); got != c.QueueForBytes(coflow.MB) {
		t.Fatal("width 0 should clamp to 1")
	}
}

func TestPerFlowDemotesFasterProperty(t *testing.T) {
	// Property (§3 idea 2): for the same maximum per-flow progress,
	// wider CoFlows never sit in a *higher*-priority queue than
	// narrower ones.
	c := Default()
	f := func(rawSent uint16, rawW uint8) bool {
		sent := coflow.Bytes(rawSent) * 100 * coflow.KB
		w := int(rawW%100) + 1
		return c.QueueForPerFlow(sent, w+1) >= c.QueueForPerFlow(sent, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueMonotoneInBytes(t *testing.T) {
	c := Default()
	f := func(a, b uint32) bool {
		x, y := coflow.Bytes(a)*coflow.KB, coflow.Bytes(b)*coflow.KB
		if x > y {
			x, y = y, x
		}
		return c.QueueForBytes(x) <= c.QueueForBytes(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinResidence(t *testing.T) {
	c := Default()
	rate := coflow.Rate(10 * 1024 * 1024) // 10 MiB/s
	// Queue 0 span = 10MB -> 1s.
	if got := c.MinResidence(0, rate); got != coflow.Second {
		t.Fatalf("residence q0 = %v", got)
	}
	// Queue 1 span = 90MB -> 9s.
	if got := c.MinResidence(1, rate); got != 9*coflow.Second {
		t.Fatalf("residence q1 = %v", got)
	}
	// Last queue extrapolates; must be positive and larger than q1's.
	last := c.MinResidence(c.NumQueues-1, rate)
	if last <= c.MinResidence(1, rate) {
		t.Fatalf("last-queue residence = %v", last)
	}
	if got := c.MinResidence(0, 0); got != 0 {
		t.Fatalf("zero-rate residence = %v", got)
	}
}
