// Package queues implements the logical priority-queue structure shared
// by Aalo and Saath (§4.1): K queues Q0..Q_{K-1} with exponentially
// growing thresholds Q^hi_{q+1} = E·Q^hi_q, Q^lo_0 = 0, Q^hi_{K-1} = ∞.
//
// Aalo demotes a CoFlow when its *total* bytes sent cross the
// threshold; Saath uses the per-flow fair share of the threshold
// (Eq. 1): a CoFlow of width N sits in queue q while
// Q^hi_{q-1} ≤ m_c·N ≤ Q^hi_q, where m_c is the maximum bytes sent by
// any single flow.
package queues

import (
	"fmt"
	"math"

	"saath/internal/coflow"
)

// Config describes one priority-queue ladder.
type Config struct {
	// NumQueues is K, the number of priority queues (paper default 10).
	NumQueues int
	// StartThreshold is S = Q^hi_0, the highest-priority queue's upper
	// threshold (paper default 10 MB).
	StartThreshold coflow.Bytes
	// Growth is E, the exponential threshold growth factor (default 10).
	Growth float64
}

// Default returns the paper's default parameters: K=10, S=10MB, E=10.
func Default() Config {
	return Config{NumQueues: 10, StartThreshold: 10 * coflow.MB, Growth: 10}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumQueues < 1 {
		return fmt.Errorf("queues: NumQueues=%d, need >=1", c.NumQueues)
	}
	if c.StartThreshold <= 0 {
		return fmt.Errorf("queues: StartThreshold=%d, need >0", c.StartThreshold)
	}
	if c.Growth <= 1 {
		return fmt.Errorf("queues: Growth=%v, need >1", c.Growth)
	}
	return nil
}

// HiThreshold returns Q^hi_q = S·E^q for q < K-1 and an effectively
// infinite value for the last queue.
func (c Config) HiThreshold(q int) coflow.Bytes {
	if q < 0 {
		return 0
	}
	if q >= c.NumQueues-1 {
		return math.MaxInt64
	}
	v := float64(c.StartThreshold) * math.Pow(c.Growth, float64(q))
	if v >= math.MaxInt64 {
		return math.MaxInt64
	}
	return coflow.Bytes(v)
}

// LoThreshold returns Q^lo_q (= Q^hi_{q-1}; zero for q=0).
func (c Config) LoThreshold(q int) coflow.Bytes {
	if q <= 0 {
		return 0
	}
	return c.HiThreshold(q - 1)
}

// QueueForBytes returns the queue whose [lo, hi) interval contains b —
// Aalo's total-bytes placement. CoFlows sit in q while b < Q^hi_q.
func (c Config) QueueForBytes(b coflow.Bytes) int {
	for q := 0; q < c.NumQueues-1; q++ {
		if b < c.HiThreshold(q) {
			return q
		}
	}
	return c.NumQueues - 1
}

// QueueForPerFlow implements Saath's Eq. 1: the queue of a CoFlow of
// the given width whose largest flow has sent maxSent bytes. The queue
// threshold is split equally across the CoFlow's flows, so the CoFlow
// demotes as soon as any flow crosses its share.
func (c Config) QueueForPerFlow(maxSent coflow.Bytes, width int) int {
	if width < 1 {
		width = 1
	}
	// m_c·N compared against Q^hi_q, guarding overflow for huge widths.
	scaled := float64(maxSent) * float64(width)
	for q := 0; q < c.NumQueues-1; q++ {
		if scaled < float64(c.HiThreshold(q)) {
			return q
		}
	}
	return c.NumQueues - 1
}

// MinResidence returns t, the minimum time a CoFlow must spend in
// queue q before it can cross to the next: the threshold span divided
// by the port rate. It anchors the starvation deadline d·C_q·t (§4.2
// D5). The last queue has no upper threshold; its residence is the
// span of the previous queue scaled by the growth factor.
func (c Config) MinResidence(q int, rate coflow.Rate) coflow.Time {
	if rate <= 0 {
		return 0
	}
	var span coflow.Bytes
	if q >= c.NumQueues-1 {
		// Unbounded last queue: extrapolate one more rung.
		hi := float64(c.StartThreshold) * math.Pow(c.Growth, float64(c.NumQueues-1))
		lo := float64(c.LoThreshold(c.NumQueues - 1))
		span = coflow.Bytes(hi - lo)
	} else {
		span = c.HiThreshold(q) - c.LoThreshold(q)
	}
	if span <= 0 {
		span = c.StartThreshold
	}
	return rate.TimeToSend(span)
}
