package experiments

import (
	"fmt"
	"strings"
	"testing"

	"saath/internal/report"
	"saath/internal/stats"
	"saath/internal/trace"
)

// tinyEnv is a very small environment so every figure runs in
// milliseconds; shape assertions use quickEnv below.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	e := NewEnv(ScaleQuick)
	fbCfg := QuickFBConfig(1)
	fbCfg.NumPorts, fbCfg.NumCoFlows = 16, 30
	ospCfg := QuickOSPConfig(1)
	ospCfg.NumPorts, ospCfg.NumCoFlows = 12, 40
	e.FB = trace.Synthesize(fbCfg, "fb-tiny")
	e.OSP = trace.Synthesize(ospCfg, "osp-tiny")
	return e
}

var sharedQuick *Env

// quickEnv memoizes the standard quick environment across tests in
// this package (simulations dominate the suite's runtime).
func quickEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("quick env skipped in -short mode")
	}
	if sharedQuick == nil {
		sharedQuick = NewEnv(ScaleQuick)
	}
	return sharedQuick
}

func renderAll(t *testing.T, tables []*report.Table) string {
	t.Helper()
	var sb strings.Builder
	for _, tbl := range tables {
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

func TestEnvMemoizes(t *testing.T) {
	e := tinyEnv(t)
	a, err := e.Run(e.FB, "saath")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(e.FB, "saath")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Run not memoized")
	}
}

func TestFig1ShowsSaathAdvantage(t *testing.T) {
	e := tinyEnv(t)
	tables, err := e.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tables)
	if !strings.Contains(out, "average") || !strings.Contains(out, "C1") {
		t.Fatalf("fig1 output:\n%s", out)
	}
	// The averages row: aalo >= saath (column order: coflow, aalo, saath).
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	if last[1] < last[2] {
		t.Fatalf("fig1 averages: aalo %s < saath %s", last[1], last[2])
	}
}

func TestFig2Tables(t *testing.T) {
	e := tinyEnv(t)
	tables, err := e.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("fig2 tables = %d", len(tables))
	}
	out := renderAll(t, tables)
	for _, want := range []string{"Fig 2a", "Fig 2b", "Fig 2c", "workload mix", "single-flow"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig3LWTFBeatsAalo(t *testing.T) {
	e := quickEnv(t)
	tables, err := e.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	overall := tables[len(tables)-1]
	vals := map[string]string{}
	for _, row := range overall.Rows {
		vals[row[0]] = row[1]
	}
	if len(vals) != 3 {
		t.Fatalf("overall rows = %v", overall.Rows)
	}
	// LWTF must improve over Aalo overall (positive %), the paper's
	// headline motivation for contention-awareness.
	if !positive(vals["lwtf"]) {
		t.Fatalf("lwtf overall improvement = %s, want positive", vals["lwtf"])
	}
}

func positive(s string) bool {
	return len(s) > 0 && s[0] != '-' && s != "0.0"
}

func TestFig9SaathBeatsAaloAndUCTCP(t *testing.T) {
	e := quickEnv(t)
	tables, err := e.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 { // FB and OSP
		t.Fatalf("fig9 tables = %d", len(tables))
	}
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			series, median := row[0], row[2]
			switch {
			case strings.HasPrefix(series, "aalo"):
				if !atLeast(median, 1.0) {
					t.Errorf("%s: saath vs aalo median %s < 1", tbl.Title, median)
				}
			case strings.HasPrefix(series, "uc-tcp"):
				if !atLeast(median, 1.2) {
					t.Errorf("%s: saath vs uc-tcp median %s, want clear win", tbl.Title, median)
				}
			}
		}
	}
}

func atLeast(s string, min float64) bool {
	var v float64
	if _, err := sscan(s, &v); err != nil {
		return false
	}
	return v >= min
}

func sscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestFig10BreakdownOrdering(t *testing.T) {
	e := quickEnv(t)
	tables, err := e.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("fig10 rows = %v", rows)
	}
	// Full Saath (row 3) should not be slower than plain A/N+FIFO
	// (row 1) on the FB trace median.
	var anFifo, full float64
	sscan(rows[0][1], &anFifo)
	sscan(rows[2][1], &full)
	if full < anFifo-0.15 {
		t.Fatalf("fig10: full saath %.2f clearly below A/N+FIFO %.2f", full, anFifo)
	}
}

func TestFig11And12Bins(t *testing.T) {
	e := quickEnv(t)
	for name, fn := range map[string]func() ([]*report.Table, error){
		"fig11": e.Fig11, "fig12": e.Fig12,
	} {
		tables, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tbl := tables[0]
		if len(tbl.Rows) != 3 || len(tbl.Headers) != 5 {
			t.Fatalf("%s shape: %v", name, tbl)
		}
	}
}

func TestFig13SaathReducesDeviation(t *testing.T) {
	e := quickEnv(t)
	tables, err := e.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	summary := tables[len(tables)-1]
	// Rows: aalo/equal, aalo/unequal, saath/equal, saath/unequal with
	// columns [sched, class, frac in-sync, frac <=0.10].
	var aaloSync, saathSync float64
	for _, row := range summary.Rows {
		if row[1] != "equal" {
			continue
		}
		if row[0] == "aalo" {
			sscan(row[3], &aaloSync)
		} else {
			sscan(row[3], &saathSync)
		}
	}
	if saathSync < aaloSync {
		t.Fatalf("fig13: saath ≤0.10 share %.2f < aalo %.2f", saathSync, aaloSync)
	}
}

func TestFig17SJFSuboptimal(t *testing.T) {
	e := tinyEnv(t)
	tables, err := e.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	var sjf, lwtf float64
	sscan(last[1], &sjf)
	sscan(last[2], &lwtf)
	if lwtf >= sjf {
		t.Fatalf("fig17: lwtf avg %.2f !< sjf avg %.2f", lwtf, sjf)
	}
}

func TestTable2(t *testing.T) {
	e := tinyEnv(t)
	tables, err := e.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("table2 rows = %v", tables[0].Rows)
	}
}

func TestAblations(t *testing.T) {
	e := tinyEnv(t)
	wc, err := e.AblationWorkConservation()
	if err != nil {
		t.Fatal(err)
	}
	if len(wc[0].Rows) != 2 {
		t.Fatal("work conservation ablation shape")
	}
	dyn, err := e.AblationDynamics()
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn[0].Rows) != 2 {
		t.Fatal("dynamics ablation shape")
	}
}

func TestFig14SweepsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	e := tinyEnv(t)
	tables, err := e.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("fig14 tables = %d", len(tables))
	}
	wantRows := []int{6, 5, 6, 6, 5}
	for i, tbl := range tables {
		if len(tbl.Rows) != wantRows[i] {
			t.Errorf("fig14 table %d rows = %d, want %d", i, len(tbl.Rows), wantRows[i])
		}
	}
}

// TestFigureOutputParallelInvariant: the figures must not depend on
// the sweep pool's worker count — serial and 8-way parallel envs
// render byte-identical tables.
func TestFigureOutputParallelInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	render := func(parallel int) string {
		e := tinyEnv(t)
		e.Parallel = parallel
		var sb strings.Builder
		for _, fn := range []func() ([]*report.Table, error){e.Fig9, e.Fig14, e.AblationDynamics} {
			tables, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			sb.WriteString(renderAll(t, tables))
		}
		return sb.String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Errorf("figure output depends on parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestOSPShowsHigherTailThanFB(t *testing.T) {
	// The paper's explanation for OSP's P90=37x: busier ports amplify
	// HoL blocking. Verify the tail (P90) speedup over Aalo is at
	// least as large on OSP as on FB.
	e := quickEnv(t)
	fb, err := e.SpeedupOver(e.FB, "aalo", "saath")
	if err != nil {
		t.Fatal(err)
	}
	osp, err := e.SpeedupOver(e.OSP, "aalo", "saath")
	if err != nil {
		t.Fatal(err)
	}
	fbP90 := stats.Percentile(fb, 90)
	ospP90 := stats.Percentile(osp, 90)
	if ospP90 < fbP90*0.8 {
		t.Fatalf("tail inversion: OSP P90 %.2f << FB P90 %.2f", ospP90, fbP90)
	}
}

// TestTelemetryStudy: the observability figure runs, shows the
// telemetry tables, and is deterministic across worker counts (the
// figure's tables come straight from sweep metrics exports).
func TestTelemetryStudy(t *testing.T) {
	render := func(parallel int) string {
		e := tinyEnv(t)
		e.Parallel = parallel
		tables, err := e.Telemetry()
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, tables)
	}
	serial := render(1)
	for _, want := range []string{"ingress queue max", "contention k_c", "aalo", "saath"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("telemetry output missing %q:\n%s", want, serial)
		}
	}
	if parallel := render(8); parallel != serial {
		t.Fatalf("telemetry figure differs across parallelism:\n--- 1 ---\n%s\n--- 8 ---\n%s", serial, parallel)
	}
}
