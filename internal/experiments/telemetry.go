package experiments

import (
	"context"
	"fmt"

	"saath/internal/coflow"
	"saath/internal/report"
	"saath/internal/sweep"
	"saath/internal/telemetry"
	"saath/internal/trace"
)

// QuickIncastConfig shrinks the incast family for the quick-scale
// telemetry study while keeping its defining property: many senders
// converging on a few hot aggregator ports.
func QuickIncastConfig(seed int64) trace.FanConfig {
	cfg := trace.DefaultIncastConfig(seed)
	cfg.NumPorts = 30
	cfg.NumCoFlows = 120
	cfg.MeanInterArrival = 15 * coflow.Millisecond
	cfg.Degree = 8
	cfg.Hotspots = 4
	cfg.MaxSize = 100 * coflow.MB
	return cfg
}

// Telemetry is the observability study: replay an incast workload
// under Aalo and Saath with the telemetry subsystem attached and
// render where the contention lives — ingress queue buildup at the
// hot aggregator ports over time, the pooled contention (k_c)
// histogram, and head-of-line blocking. This is not a paper figure;
// it is the instrumentation every §6-style scenario sweep can now
// export.
func (e *Env) Telemetry() ([]*report.Table, error) {
	name := "incast-quick"
	cfg := QuickIncastConfig(1)
	if e.Scale == ScaleFull {
		name = "incast"
		cfg = trace.DefaultIncastConfig(1)
	}
	grid := sweep.Grid{
		Traces: []sweep.TraceSource{sweep.SynthSource(name, func(seed int64) *trace.Trace {
			c := cfg
			c.Seed = seed
			return trace.SynthesizeIncast(c, name)
		})},
		Schedulers: []string{"aalo", "saath"},
		Seeds:      []int64{1},
		Params:     e.Params,
		Config:     e.SimCfg,
		Telemetry:  telemetry.Spec{Enabled: true},
	}
	sum := sweep.NewSummary()
	res := sweep.Run(context.Background(), grid.Jobs(), sweep.Options{
		Parallel:   e.Parallel,
		Progress:   e.Progress,
		Collectors: []sweep.Collector{sum},
	})
	if err := res.FirstErr(); err != nil {
		return nil, err
	}

	tables := []*report.Table{sum.TelemetryTable(fmt.Sprintf("Telemetry — %s summary", name))}
	for _, jr := range res.Jobs {
		m := jr.Metrics
		if m == nil {
			continue
		}
		sn := jr.Job.Scheduler
		if t := m.SeriesTable(
			fmt.Sprintf("Telemetry — ingress queue max over time (%s, %s)", name, sn),
			telemetry.SeriesIngressQueueMax, cdfPoints); t != nil {
			tables = append(tables, t)
		}
		if t := m.SeriesTable(
			fmt.Sprintf("Telemetry — HOL-blocked CoFlows over time (%s, %s)", name, sn),
			telemetry.SeriesBlockedCoFlows, cdfPoints); t != nil {
			tables = append(tables, t)
		}
		if t := m.HistogramTable(
			fmt.Sprintf("Telemetry — contention k_c histogram (%s, %s)", name, sn),
			telemetry.HistContention); t != nil {
			tables = append(tables, t)
		}
	}
	return tables, nil
}
