package experiments

import (
	"fmt"

	"saath/internal/coflow"
	"saath/internal/report"
	"saath/internal/study"
	"saath/internal/sweep"
	"saath/internal/telemetry"
	"saath/internal/trace"
)

// QuickIncastConfig shrinks the incast family for the quick-scale
// telemetry study while keeping its defining property: many senders
// converging on a few hot aggregator ports.
func QuickIncastConfig(seed int64) trace.FanConfig {
	cfg := trace.DefaultIncastConfig(seed)
	cfg.NumPorts = 30
	cfg.NumCoFlows = 120
	cfg.MeanInterArrival = 15 * coflow.Millisecond
	cfg.Degree = 8
	cfg.Hotspots = 4
	cfg.MaxSize = 100 * coflow.MB
	return cfg
}

// Telemetry is the observability study: replay an incast workload
// under Aalo and Saath with the telemetry subsystem attached and
// render where the contention lives — ingress queue buildup at the
// hot aggregator ports over time, the pooled contention (k_c)
// histogram, and head-of-line blocking. This is not a paper figure;
// it is the instrumentation every §6-style scenario sweep can now
// export, expressed as a Study with derived telemetry tables.
func (e *Env) Telemetry() ([]*report.Table, error) {
	name := "incast-quick"
	cfg := QuickIncastConfig(1)
	if e.Scale == ScaleFull {
		name = "incast"
		cfg = trace.DefaultIncastConfig(1)
	}
	st, err := study.New(name,
		study.WithDescription("incast observability: queue buildup, HOL blocking, contention k_c"),
		study.WithTraces(sweep.SynthSource(name, func(seed int64) *trace.Trace {
			c := cfg
			c.Seed = seed
			tr, err := trace.SynthesizeIncast(c, name)
			if err != nil {
				panic("experiments: telemetry incast config rejected: " + err.Error())
			}
			return tr
		})),
		study.WithSchedulers("aalo", "saath"),
		study.WithSeeds(1),
		study.WithParams(e.Params),
		study.WithSimConfig(e.SimCfg),
		study.WithTelemetry(telemetry.Spec{
			Enabled: true,
			// Observe queue transitions against the experiment's own
			// ladder and map where the queues build per port — the
			// Fig. 4-style spatial views.
			QueueTransitions: true,
			TransitionQueues: e.Params.Queues,
			PortHeatmap:      true,
		}),
		study.WithDerived(
			study.DerivedTelemetry(fmt.Sprintf("Telemetry — %s summary", name)),
			study.DerivedQueueTransitions(fmt.Sprintf("Telemetry — %s queue transitions (Fig. 4-style)", name)),
			study.DerivedPortHeatmap(fmt.Sprintf("Telemetry — %s per-port occupancy heatmap", name), 6),
			telemetryDrilldown(name),
		))
	if err != nil {
		return nil, err
	}
	res, err := e.runStudy(st)
	if err != nil {
		return nil, err
	}
	return res.Tables()
}

// telemetryDrilldown renders the per-run detail tables behind the
// pooled summary: the hot-port queue series, the HOL-blocking series
// and the contention histogram for every (scheduler, seed) run of the
// study, in grid order.
func telemetryDrilldown(name string) study.Derived {
	return func(st *study.Study, sum *sweep.Summary) ([]*report.Table, error) {
		var tables []*report.Table
		for _, jt := range sum.Telemetry() {
			m, sn := jt.Metrics, jt.Scheduler
			if t := m.SeriesTable(
				fmt.Sprintf("Telemetry — ingress queue max over time (%s, %s)", name, sn),
				telemetry.SeriesIngressQueueMax, cdfPoints); t != nil {
				tables = append(tables, t)
			}
			if t := m.SeriesTable(
				fmt.Sprintf("Telemetry — HOL-blocked CoFlows over time (%s, %s)", name, sn),
				telemetry.SeriesBlockedCoFlows, cdfPoints); t != nil {
				tables = append(tables, t)
			}
			if t := m.HistogramTable(
				fmt.Sprintf("Telemetry — contention k_c histogram (%s, %s)", name, sn),
				telemetry.HistContention); t != nil {
				tables = append(tables, t)
			}
		}
		return tables, nil
	}
}
