package experiments

import (
	"strings"
	"testing"
)

// These tests pin the detcheck-driven fix in Fig9: the baselines used
// to live in a map literal, so both the series order handed to the
// renderer and (on failure) which baseline's error surfaced depended
// on Go's randomized map iteration. Fig9 now walks the fig9Baselines
// slice; presentation order and repeat-run output must be stable.

func TestFig9BaselineOrderIsPinned(t *testing.T) {
	want := []string{"varys", "aalo", "uc-tcp"}
	if len(fig9Baselines) != len(want) {
		t.Fatalf("fig9Baselines has %d entries, want %d", len(fig9Baselines), len(want))
	}
	for i, base := range fig9Baselines {
		if base.name != want[i] {
			t.Errorf("fig9Baselines[%d] = %q, want %q", i, base.name, want[i])
		}
		if base.label == "" || !strings.HasPrefix(base.label, base.name) {
			t.Errorf("fig9Baselines[%d] label %q should start with %q", i, base.label, base.name)
		}
	}
}

func TestFig9RowsFollowBaselineOrder(t *testing.T) {
	e := tinyEnv(t)
	tables, err := e.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != len(fig9Baselines) {
			t.Fatalf("%s: %d rows, want %d", tbl.Title, len(tbl.Rows), len(fig9Baselines))
		}
		for i, row := range tbl.Rows {
			if row[0] != fig9Baselines[i].label {
				t.Errorf("%s row %d = %q, want %q", tbl.Title, i, row[0], fig9Baselines[i].label)
			}
		}
	}
}

// TestFig9RepeatRunsIdentical renders Fig9 from two fresh envs. With
// the old map-literal iteration the series order differed between
// range executions within a single process; the slice makes repeat
// runs byte-identical.
func TestFig9RepeatRunsIdentical(t *testing.T) {
	render := func() string {
		e := tinyEnv(t)
		tables, err := e.Fig9()
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, tables)
	}
	first := render()
	for i := 0; i < 3; i++ {
		if again := render(); again != first {
			t.Fatalf("fig9 output differs across runs:\n--- first ---\n%s\n--- run %d ---\n%s", first, i+2, again)
		}
	}
}
