package experiments

import (
	"fmt"
	"sort"
	"time"

	"saath/internal/coflow"
	"saath/internal/report"
	"saath/internal/runtime"
	"saath/internal/sched"
	"saath/internal/stats"
	"saath/internal/trace"
)

// TestbedConfig sizes the prototype runs backing Fig. 15 and Fig. 16.
// The defaults replay a tiny FB-mix trace through real coordinator,
// agents and sockets on localhost in a few seconds per scheduler.
type TestbedConfig struct {
	NumPorts int
	Coflows  int
	Seed     int64
	PortRate coflow.Rate   // localhost-scaled line rate
	Delta    time.Duration // coordinator sync interval
	Timeout  time.Duration
}

// DefaultTestbedConfig returns the quick localhost configuration.
func DefaultTestbedConfig() TestbedConfig {
	return TestbedConfig{
		NumPorts: 6,
		Coflows:  12,
		Seed:     3,
		PortRate: coflow.Rate(25e6), // 200 Mbit-equivalent per port
		Delta:    10 * time.Millisecond,
		Timeout:  2 * time.Minute,
	}
}

// testbedTrace builds the small FB-mix workload replayed on the
// prototype: flow sizes in the hundreds of kilobytes so a full replay
// stays within seconds at localhost rates.
func testbedTrace(cfg TestbedConfig) *trace.Trace {
	sc := trace.SynthConfig{
		Seed:             cfg.Seed,
		NumPorts:         cfg.NumPorts,
		NumCoFlows:       cfg.Coflows,
		MeanInterArrival: 60 * coflow.Millisecond,
		SingleFlowFrac:   0.25,
		EqualLengthFrac:  0.5,
		WideFracNarrowCF: 0.3,
		SmallFracNarrow:  0.8,
		SmallFracWide:    0.5,
		MinSmall:         100 * coflow.KB,
		MaxSmall:         600 * coflow.KB,
		MinLarge:         600 * coflow.KB,
		MaxLarge:         3 * coflow.MB,
	}
	return trace.Synthesize(sc, fmt.Sprintf("testbed-%d", cfg.Seed))
}

// RunTestbed replays the testbed trace through a real coordinator and
// agents under the named scheduler and returns per-CoFlow results.
func RunTestbed(schedName string, cfg TestbedConfig) ([]runtime.CoFlowResult, error) {
	tr := testbedTrace(cfg)
	s, err := sched.New(schedName, sched.DefaultParams())
	if err != nil {
		return nil, err
	}
	coord, err := runtime.NewCoordinator(runtime.CoordinatorConfig{
		Scheduler: s,
		NumPorts:  cfg.NumPorts,
		PortRate:  cfg.PortRate,
		Delta:     cfg.Delta,
	})
	if err != nil {
		return nil, err
	}
	go coord.Serve()
	defer coord.Close()

	agents := make([]*runtime.Agent, cfg.NumPorts)
	for i := range agents {
		agents[i], err = runtime.NewAgent(runtime.AgentConfig{
			Port:            i,
			CoordinatorAddr: coord.ControlAddr(),
			StatsInterval:   cfg.Delta,
		})
		if err != nil {
			return nil, err
		}
		defer agents[i].Close()
	}
	client := runtime.NewClient(coord.HTTPAddr())

	// Replay registrations on the trace's arrival clock. This demo
	// paces a live coordinator in real time by design; nothing here
	// feeds study output.
	start := time.Now() //saath:wallclock
	for _, spec := range tr.Specs {
		at := time.Duration(spec.Arrival) * time.Microsecond
		if wait := at - time.Since(start); wait > 0 { //saath:wallclock
			time.Sleep(wait) //saath:wallclock
		}
		if err := client.Register(spec); err != nil {
			return nil, fmt.Errorf("register coflow %d: %w", spec.ID, err)
		}
	}
	return client.WaitForResults(len(tr.Specs), cfg.Timeout)
}

// Fig15 reproduces the testbed CCT comparison: the CDF of per-CoFlow
// speedup of Saath over Aalo on the prototype.
func Fig15(cfg TestbedConfig) ([]*report.Table, error) {
	sp, err := testbedSpeedups(cfg)
	if err != nil {
		return nil, err
	}
	cdf := stats.CDF(sp)
	t := report.SampledCDFTable("Fig 15 — [testbed] CDF of CCT speedup of Saath over Aalo", "speedup", cdf, cdfPoints)
	s := stats.Summarize(sp)
	sum := &report.Table{Title: "Fig 15 — summary", Headers: []string{"median", "mean", "p90", "n"}}
	sum.AddRow(fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.Mean), fmt.Sprintf("%.2f", s.P90), s.N)
	return []*report.Table{t, sum}, nil
}

// Fig16 maps the testbed CCT improvements to job completion times
// using the shuffle-fraction model (§7.2): jobs are assigned shuffle
// fractions deterministically across the Aalo distribution's buckets.
func Fig16(cfg TestbedConfig) ([]*report.Table, error) {
	aalo, saath, err := testbedPair(cfg)
	if err != nil {
		return nil, err
	}
	buckets := []struct {
		label string
		frac  float64
	}{
		{"<25%", 0.15},
		{"25-50%", 0.375},
		{"50-75%", 0.625},
		{">=75%", 0.85},
	}
	t := &report.Table{
		Title:   "Fig 16 — [testbed] JCT speedup by shuffle fraction",
		Headers: []string{"shuffle fraction", "p50", "p90", "n"},
	}
	var all []float64
	saathCCT := make(map[coflow.CoFlowID]time.Duration, len(saath))
	for _, r := range saath {
		saathCCT[r.ID] = r.CCT
	}
	// Deterministic assignment: coflow ID modulo bucket count, the
	// same distribution for both schedulers.
	for bi, b := range buckets {
		model := stats.JCTModel{ShuffleFraction: b.frac}
		var sp []float64
		for _, r := range aalo {
			if int(r.ID)%len(buckets) != bi {
				continue
			}
			sc, ok := saathCCT[r.ID]
			if !ok || sc <= 0 || r.CCT <= 0 {
				continue
			}
			sp = append(sp, model.JCTSpeedup(
				coflow.Time(r.CCT/time.Microsecond), coflow.Time(sc/time.Microsecond)))
		}
		all = append(all, sp...)
		if len(sp) == 0 {
			t.AddRow(b.label, "-", "-", 0)
			continue
		}
		t.AddRow(b.label,
			fmt.Sprintf("%.2f", stats.Percentile(sp, 50)),
			fmt.Sprintf("%.2f", stats.Percentile(sp, 90)),
			len(sp))
	}
	if len(all) > 0 {
		t.AddRow("all",
			fmt.Sprintf("%.2f", stats.Percentile(all, 50)),
			fmt.Sprintf("%.2f", stats.Percentile(all, 90)),
			len(all))
	}
	return []*report.Table{t}, nil
}

func testbedPair(cfg TestbedConfig) (aalo, saath []runtime.CoFlowResult, err error) {
	aalo, err = RunTestbed("aalo", cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("testbed aalo: %w", err)
	}
	saath, err = RunTestbed("saath", cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("testbed saath: %w", err)
	}
	return aalo, saath, nil
}

func testbedSpeedups(cfg TestbedConfig) ([]float64, error) {
	aalo, saath, err := testbedPair(cfg)
	if err != nil {
		return nil, err
	}
	am := make(map[coflow.CoFlowID]time.Duration, len(aalo))
	for _, r := range aalo {
		am[r.ID] = r.CCT
	}
	var sp []float64
	for _, r := range saath {
		if b, ok := am[r.ID]; ok && r.CCT > 0 && b > 0 {
			sp = append(sp, float64(b)/float64(r.CCT))
		}
	}
	sort.Float64s(sp)
	return sp, nil
}
