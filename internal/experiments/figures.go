package experiments

import (
	"fmt"

	"saath/internal/coflow"
	"saath/internal/report"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/stats"
	"saath/internal/study"
	"saath/internal/sweep"
	"saath/internal/trace"
)

// cdfPoints is the downsampling used when rendering CDF figures.
const cdfPoints = 25

// Fig1 reproduces the out-of-sync motivating example: four CoFlows on
// three sender ports, per-CoFlow CCT under Aalo (FIFO) and Saath.
func (e *Env) Fig1() ([]*report.Table, error) {
	tr := trace.Fig1Trace()
	t := &report.Table{
		Title:   "Fig 1 — out-of-sync example (CCT in units of t=100ms)",
		Headers: []string{"coflow", "aalo", "saath"},
	}
	if err := e.Prime([]*trace.Trace{tr}, "aalo", "saath"); err != nil {
		return nil, err
	}
	aalo, err := e.Run(tr, "aalo")
	if err != nil {
		return nil, err
	}
	saath, err := e.Run(tr, "saath")
	if err != nil {
		return nil, err
	}
	unit := trace.MicroUnit.Seconds()
	am, sm := aalo.CCTByID(), saath.CCTByID()
	for id := coflow.CoFlowID(1); id <= 4; id++ {
		t.AddRow(fmt.Sprintf("C%d", id),
			fmt.Sprintf("%.2f", am[id].Seconds()/unit),
			fmt.Sprintf("%.2f", sm[id].Seconds()/unit))
	}
	t.AddRow("average",
		fmt.Sprintf("%.2f", aalo.AvgCCT()/unit),
		fmt.Sprintf("%.2f", saath.AvgCCT()/unit))
	return []*report.Table{t}, nil
}

// Fig2 reproduces the trace-shape and out-of-sync measurements:
// (a) CDF of CoFlow width, (b) CDF of normalized flow-length stddev,
// (c) CDF of normalized FCT stddev under Aalo, equal vs unequal.
func (e *Env) Fig2() ([]*report.Table, error) {
	summary := trace.Summarize(e.FB)
	widths := make([]float64, len(summary.Widths))
	for i, w := range summary.Widths {
		widths[i] = float64(w)
	}
	ta := report.SampledCDFTable("Fig 2a — CDF of CoFlow width (FB)", "width", stats.CDF(widths), cdfPoints)

	var devs []float64
	for i, d := range summary.SizeDevs {
		if summary.Widths[i] > 1 {
			devs = append(devs, d)
		}
	}
	tb := report.SampledCDFTable("Fig 2b — CDF of normalized flow-length stddev (multi-flow)", "norm stddev", stats.CDF(devs), cdfPoints)

	aalo, err := e.Run(e.FB, "aalo")
	if err != nil {
		return nil, err
	}
	equal, unequal := fctDeviations(e.FB, aalo)
	tc1 := report.SampledCDFTable("Fig 2c — CDF of normalized FCT stddev under Aalo (equal flows)", "norm stddev", stats.CDF(equal), cdfPoints)
	tc2 := report.SampledCDFTable("Fig 2c — CDF of normalized FCT stddev under Aalo (unequal flows)", "norm stddev", stats.CDF(unequal), cdfPoints)

	mix := &report.Table{Title: "Fig 2 — workload mix", Headers: []string{"class", "fraction"}}
	mix.AddRow("single-flow", fmt.Sprintf("%.2f", summary.SingleFrac))
	mix.AddRow("multi equal-length", fmt.Sprintf("%.2f", summary.EqualFrac))
	mix.AddRow("multi unequal-length", fmt.Sprintf("%.2f", summary.UnequalFrac))
	return []*report.Table{ta, tb, tc1, tc2, mix}, nil
}

// Fig3 compares the clairvoyant SCF, SRTF and LWTF policies against
// Aalo: (a) the per-CoFlow speedup CDF, (b) the overall average-CCT
// improvement in percent.
func (e *Env) Fig3() ([]*report.Table, error) {
	if err := e.Prime([]*trace.Trace{e.FB}, "aalo", "scf", "srtf", "lwtf"); err != nil {
		return nil, err
	}
	aalo, err := e.Run(e.FB, "aalo")
	if err != nil {
		return nil, err
	}
	var tables []*report.Table
	overall := &report.Table{Title: "Fig 3b — overall CCT speedup over Aalo (%)", Headers: []string{"policy", "improvement %"}}
	for _, policy := range []string{"scf", "srtf", "lwtf"} {
		res, err := e.Run(e.FB, policy)
		if err != nil {
			return nil, err
		}
		sp := stats.Speedups(aalo.CCTByID(), res.CCTByID())
		tables = append(tables, report.SampledCDFTable(
			fmt.Sprintf("Fig 3a — CDF of CCT speedup of %s over Aalo", policy), "speedup", stats.CDF(sp), cdfPoints))
		overall.AddRow(policy, fmt.Sprintf("%.1f", stats.OverallSpeedupPercent(aalo.AvgCCT(), res.AvgCCT())))
	}
	return append(tables, overall), nil
}

// fig9Baselines are the Fig. 9 comparison baselines in presentation
// order. Fig9 iterates this slice — not a map — so both the work
// order and, when several baselines fail, the error that surfaces
// are deterministic (detcheck flagged the original map-literal
// range; experiments_order_test.go pins the fix).
var fig9Baselines = []struct{ name, label string }{
	{"varys", "varys (SEBF, offline)"},
	{"aalo", "aalo (online)"},
	{"uc-tcp", "uc-tcp (online)"},
}

// Fig9 is the headline comparison: per-CoFlow CCT speedup using Saath
// over SEBF (Varys, offline), Aalo and UC-TCP, for both traces, shown
// as median with P10/P90.
func (e *Env) Fig9() ([]*report.Table, error) {
	if err := e.Prime([]*trace.Trace{e.FB, e.OSP}, "varys", "aalo", "uc-tcp", "saath"); err != nil {
		return nil, err
	}
	var tables []*report.Table
	for _, tr := range []*trace.Trace{e.FB, e.OSP} {
		series := make(map[string]stats.SpeedupSummary)
		order := make([]string, 0, len(fig9Baselines))
		for _, base := range fig9Baselines {
			sp, err := e.SpeedupOver(tr, base.name, "saath")
			if err != nil {
				return nil, err
			}
			series[base.label] = stats.Summarize(sp)
			order = append(order, base.label)
		}
		tables = append(tables, report.SpeedupBar(
			fmt.Sprintf("Fig 9 — CCT speedup using Saath (%s)", tr.Name), series, order))
	}
	return tables, nil
}

// ablations are the Fig. 10–12 design-breakdown variants, in the
// paper's presentation order.
var ablations = []struct{ name, label string }{
	{"saath/an+fifo", "A/N + FIFO"},
	{"saath/an+pf+fifo", "A/N + PF + FIFO"},
	{"saath", "A/N + PF + LCoF (Saath)"},
}

// primeAblations fans out Aalo plus every ablation variant on the
// given traces before the figure assembles its rows serially.
func (e *Env) primeAblations(traces ...*trace.Trace) error {
	names := []string{"aalo"}
	for _, ab := range ablations {
		names = append(names, ab.name)
	}
	return e.Prime(traces, names...)
}

// Fig10 breaks the speedup over Aalo down by design component.
func (e *Env) Fig10() ([]*report.Table, error) {
	if err := e.primeAblations(e.FB, e.OSP); err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Fig 10 — speedup over Aalo by design component (median, P90)",
		Headers: []string{"variant", "fb median", "fb p90", "osp median", "osp p90"},
	}
	for _, ab := range ablations {
		row := []any{ab.label}
		for _, tr := range []*trace.Trace{e.FB, e.OSP} {
			sp, err := e.SpeedupOver(tr, "aalo", ab.name)
			if err != nil {
				return nil, err
			}
			s := stats.Summarize(sp)
			row = append(row, fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.P90))
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}, nil
}

// Fig11 splits the FB-trace breakdown by the Table-1 bins.
func (e *Env) Fig11() ([]*report.Table, error) { return e.binBreakdown(e.FB, "Fig 11") }

// Fig12 splits the OSP-trace breakdown by the Table-1 bins.
func (e *Env) Fig12() ([]*report.Table, error) { return e.binBreakdown(e.OSP, "Fig 12") }

func (e *Env) binBreakdown(tr *trace.Trace, figure string) ([]*report.Table, error) {
	if err := e.primeAblations(tr); err != nil {
		return nil, err
	}
	aalo, err := e.Run(tr, "aalo")
	if err != nil {
		return nil, err
	}
	// Bin population shares (the x-label percentages of Fig. 11).
	count := make(map[stats.Bin]int)
	for _, s := range tr.Specs {
		count[stats.AssignBin(s.TotalSize(), s.Width())]++
	}
	t := &report.Table{
		Title: fmt.Sprintf("%s — median speedup over Aalo by Table-1 bin (%s)", figure, tr.Name),
		Headers: []string{"variant",
			binLabel(stats.Bin1, count, len(tr.Specs)),
			binLabel(stats.Bin2, count, len(tr.Specs)),
			binLabel(stats.Bin3, count, len(tr.Specs)),
			binLabel(stats.Bin4, count, len(tr.Specs))},
	}
	for _, ab := range ablations {
		res, err := e.Run(tr, ab.name)
		if err != nil {
			return nil, err
		}
		byBin := binSpeedups(tr, aalo, res)
		row := []any{ab.label}
		for b := stats.Bin1; b <= stats.Bin4; b++ {
			if sp := byBin[b]; len(sp) > 0 {
				row = append(row, fmt.Sprintf("%.2f", stats.Median(sp)))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}, nil
}

func binLabel(b stats.Bin, count map[stats.Bin]int, total int) string {
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(count[b]) / float64(total)
	}
	return fmt.Sprintf("bin-%d (%.0f%%)", int(b)+1, pct)
}

// Fig13 compares the out-of-sync metric under Saath and Aalo: the CDF
// of normalized FCT stddev for multi-flow CoFlows, split by flow-length
// class, on the FB trace.
func (e *Env) Fig13() ([]*report.Table, error) {
	if err := e.Prime([]*trace.Trace{e.FB}, "aalo", "saath"); err != nil {
		return nil, err
	}
	var tables []*report.Table
	summary := &report.Table{
		Title:   "Fig 13 — out-of-sync reduction (FB): share of CoFlows with norm. FCT stddev ≤ x",
		Headers: []string{"scheduler", "class", "≤0 (in sync)", "≤0.10"},
	}
	for _, sn := range []string{"aalo", "saath"} {
		res, err := e.Run(e.FB, sn)
		if err != nil {
			return nil, err
		}
		equal, unequal := fctDeviations(e.FB, res)
		for _, cls := range []struct {
			name string
			devs []float64
		}{{"equal", equal}, {"unequal", unequal}} {
			cdf := stats.CDF(cls.devs)
			tables = append(tables, report.SampledCDFTable(
				fmt.Sprintf("Fig 13 — norm. FCT stddev CDF, %s, %s flows", sn, cls.name),
				"norm stddev", cdf, cdfPoints))
			summary.AddRow(sn, cls.name,
				fmt.Sprintf("%.2f", stats.CDFAt(cdf, 1e-9)),
				fmt.Sprintf("%.2f", stats.CDFAt(cdf, 0.10)))
		}
	}
	return append(tables, summary), nil
}

// fig14Point is one sensitivity point: a parameter variant plus the
// schedulers evaluated at it. The five §6.3 sub-sweeps expand into one
// job list executed by a single worker pool, instead of the hand-rolled
// serial loops this function started as.
type fig14Point struct {
	table  string // which sub-sweep table the point belongs to ("a".."e")
	label  string // row label (the swept value)
	scheds []string
	params sched.Params
	cfg    sim.Config
	mutate func(*trace.Trace)
}

func (pt fig14Point) variant() string { return pt.table + "|" + pt.label }

// fig14Points declares the full §6.3 sensitivity grid.
func (e *Env) fig14Points() []fig14Point {
	both := []string{"saath", "aalo"}
	var points []fig14Point

	// (a) start queue threshold S.
	for _, s := range []coflow.Bytes{10 * coflow.MB, 100 * coflow.MB, coflow.GB, 10 * coflow.GB, 100 * coflow.GB, coflow.TB} {
		p := e.Params
		p.Queues.StartThreshold = s
		points = append(points, fig14Point{
			table: "a", label: fmt.Sprintf("%dMB", s/coflow.MB), scheds: both, params: p, cfg: e.SimCfg})
	}
	// (b) exponential growth factor E.
	for _, g := range []float64{2, 5, 10, 16, 32} {
		p := e.Params
		p.Queues.Growth = g
		points = append(points, fig14Point{
			table: "b", label: fmt.Sprintf("%g", g), scheds: both, params: p, cfg: e.SimCfg})
	}
	// (c) synchronization interval δ.
	for _, d := range []coflow.Time{2, 4, 8, 12, 16, 20} {
		cfg := e.SimCfg
		cfg.Delta = d * coflow.Millisecond
		points = append(points, fig14Point{
			table: "c", label: fmt.Sprintf("%d", d), scheds: both, params: e.Params, cfg: cfg})
	}
	// (d) arrival-time scaling A (A>1 = arrivals A× faster).
	for _, a := range []float64{0.25, 0.5, 1, 2, 4, 5} {
		a := a
		points = append(points, fig14Point{
			table: "d", label: fmt.Sprintf("%g", a), scheds: both, params: e.Params, cfg: e.SimCfg,
			mutate: func(tr *trace.Trace) { tr.ScaleArrivals(1 / a) }})
	}
	// (e) starvation deadline factor d (Saath only).
	for _, d := range []float64{1, 2, 4, 8, 16} {
		p := e.Params
		p.DeadlineFactor = d
		points = append(points, fig14Point{
			table: "e", label: fmt.Sprintf("%gx", d), scheds: []string{"saath"}, params: p, cfg: e.SimCfg})
	}
	return points
}

// Fig14 runs the five sensitivity sweeps of §6.3. Each point reports
// the median per-CoFlow speedup of the varied scheduler over Aalo at
// default parameters, matching the paper's y-axis. The whole grid is
// one study declaration — every point is a parameter variant, Fig 14e
// restricting itself to Saath — executed on the Env's runner.
func (e *Env) Fig14() ([]*report.Table, error) {
	tr := e.FB
	base, err := e.Run(tr, "aalo") // default-parameter baseline
	if err != nil {
		return nil, err
	}
	baseCCT := base.CCTByID()

	points := e.fig14Points()
	variants := make([]sweep.Variant, len(points))
	for i, pt := range points {
		variants[i] = sweep.Variant{
			Name:       pt.variant(),
			Params:     pt.params,
			Config:     pt.cfg,
			Mutate:     pt.mutate,
			Schedulers: pt.scheds,
		}
	}
	st, err := study.New("fig14-sensitivity",
		study.WithDescription("§6.3 sensitivity: S, E, δ, arrival scaling, deadline factor"),
		study.WithTraces(sweep.FixedTrace(tr)),
		study.WithParamGrid(variants...))
	if err != nil {
		return nil, err
	}
	res, err := e.runStudy(st)
	if err != nil {
		return nil, err
	}
	type cellKey struct{ variant, sched string }
	byCell := make(map[cellKey]*sim.Result, len(res.Sweep().Jobs))
	for _, jr := range res.Sweep().Jobs {
		byCell[cellKey{jr.Job.Variant, jr.Job.Scheduler}] = jr.Res
	}
	median := func(variant, sn string) string {
		return fmt.Sprintf("%.2f", stats.Median(stats.Speedups(baseCCT, byCell[cellKey{variant, sn}].CCTByID())))
	}

	tables := map[string]*report.Table{
		"a": {Title: "Fig 14a — sensitivity to start threshold S", Headers: []string{"S", "saath", "aalo"}},
		"b": {Title: "Fig 14b — sensitivity to growth factor E", Headers: []string{"E", "saath", "aalo"}},
		"c": {Title: "Fig 14c — sensitivity to sync interval δ", Headers: []string{"δ (ms)", "saath", "aalo"}},
		"d": {Title: "Fig 14d — sensitivity to arrival scaling A", Headers: []string{"A", "saath", "aalo"}},
		"e": {Title: "Fig 14e — sensitivity to deadline factor d", Headers: []string{"d", "saath"}},
	}
	for _, pt := range points {
		row := []any{pt.label}
		for _, sn := range pt.scheds {
			row = append(row, median(pt.variant(), sn))
		}
		tables[pt.table].AddRow(row...)
	}
	return []*report.Table{tables["a"], tables["b"], tables["c"], tables["d"], tables["e"]}, nil
}

// Table2 reports the coordinator's scheduling cost for Saath and Aalo:
// schedule-computation wall time (mean, P90, max) over a full trace
// replay, the quantity the paper's Table 2 measures on the prototype.
func (e *Env) Table2() ([]*report.Table, error) {
	t := &report.Table{
		Title:   "Table 2 — coordinator schedule computation cost",
		Headers: []string{"scheduler", "calls", "mean", "p90", "max"},
	}
	if err := e.Prime([]*trace.Trace{e.FB}, "saath", "aalo"); err != nil {
		return nil, err
	}
	for _, sn := range []string{"saath", "aalo"} {
		res, err := e.Run(e.FB, sn)
		if err != nil {
			return nil, err
		}
		t.AddRow(sn, res.Sched.Calls,
			res.Sched.Mean().String(), res.Sched.P90().String(), res.Sched.Max.String())
	}
	return []*report.Table{t}, nil
}

// Fig17 reproduces Appendix A: duration-ordered SJF versus the
// contention-aware LWTF on the two-port example.
func (e *Env) Fig17() ([]*report.Table, error) {
	tr := trace.Fig17Trace()
	t := &report.Table{
		Title:   "Fig 17 — SJF sub-optimality (CCT in units of t=100ms)",
		Headers: []string{"coflow", "sjf-duration", "lwtf"},
	}
	if err := e.Prime([]*trace.Trace{tr}, "sjf-duration", "lwtf"); err != nil {
		return nil, err
	}
	sjf, err := e.Run(tr, "sjf-duration")
	if err != nil {
		return nil, err
	}
	lwtf, err := e.Run(tr, "lwtf")
	if err != nil {
		return nil, err
	}
	unit := trace.MicroUnit.Seconds()
	sm, lm := sjf.CCTByID(), lwtf.CCTByID()
	for id := coflow.CoFlowID(1); id <= 3; id++ {
		t.AddRow(fmt.Sprintf("C%d", id),
			fmt.Sprintf("%.2f", sm[id].Seconds()/unit),
			fmt.Sprintf("%.2f", lm[id].Seconds()/unit))
	}
	t.AddRow("average",
		fmt.Sprintf("%.2f", sjf.AvgCCT()/unit),
		fmt.Sprintf("%.2f", lwtf.AvgCCT()/unit))
	return []*report.Table{t}, nil
}

// AblationWorkConservation quantifies the work-conservation design
// choice (DESIGN.md ablation): Saath with and without it, over Aalo.
func (e *Env) AblationWorkConservation() ([]*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation — work conservation",
		Headers: []string{"variant", "fb median speedup over aalo"},
	}
	if err := e.Prime([]*trace.Trace{e.FB}, "aalo", "saath", "saath/nowc"); err != nil {
		return nil, err
	}
	for _, sn := range []string{"saath", "saath/nowc"} {
		sp, err := e.SpeedupOver(e.FB, "aalo", sn)
		if err != nil {
			return nil, err
		}
		t.AddRow(sn, fmt.Sprintf("%.2f", stats.Median(sp)))
	}
	return []*report.Table{t}, nil
}

// AblationContentionMetric compares the paper's blocked-CoFlow count
// k_c against CoFlow width as the LCoF ordering key (DESIGN.md
// ablation): width is cheaper to compute but ignores where the flows
// actually land.
func (e *Env) AblationContentionMetric() ([]*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation — LCoF contention metric",
		Headers: []string{"metric", "fb median speedup over aalo", "fb p90"},
	}
	if err := e.Prime([]*trace.Trace{e.FB}, "aalo", "saath", "saath/width-contention"); err != nil {
		return nil, err
	}
	for _, v := range []struct{ name, label string }{
		{"saath", "blocked-coflow count k_c (paper)"},
		{"saath/width-contention", "width proxy"},
	} {
		sp, err := e.SpeedupOver(e.FB, "aalo", v.name)
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(sp)
		t.AddRow(v.label, fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.P90))
	}
	return []*report.Table{t}, nil
}

// AblationDynamics quantifies the §4.3 straggler path: median CCT with
// stragglers injected, with and without the SRTF re-queueing.
func (e *Env) AblationDynamics() ([]*report.Table, error) {
	dyn := &sim.Dynamics{Seed: 7, StragglerProb: 0.05, Slowdown: 4}
	cfg := e.SimCfg
	cfg.Dynamics = dyn
	t := &report.Table{
		Title:   "Ablation — cluster-dynamics SRTF approximation (stragglers injected)",
		Headers: []string{"variant", "avg CCT (s)", "p10", "median", "p90 (tail gain)"},
	}
	pOff := e.Params
	pOff.DynamicsSRTF = false
	st, err := study.New("ablation-dynamics",
		study.WithTraces(sweep.FixedTrace(e.FB)),
		study.WithSchedulers("saath"),
		study.WithParamGrid(
			sweep.Variant{Name: "srtf=on", Params: e.Params, Config: cfg},
			sweep.Variant{Name: "srtf=off", Params: pOff, Config: cfg},
		))
	if err != nil {
		return nil, err
	}
	res, err := e.runStudy(st)
	if err != nil {
		return nil, err
	}
	withDyn, s := res.Sweep().Jobs[0].Res, res.Sweep().Jobs[1].Res
	sum := stats.Summarize(stats.Speedups(s.CCTByID(), withDyn.CCTByID()))
	t.AddRow("dynamics SRTF on", fmt.Sprintf("%.3f", withDyn.AvgCCT()),
		fmt.Sprintf("%.2f", sum.P10), fmt.Sprintf("%.2f", sum.Median), fmt.Sprintf("%.2f", sum.P90))
	t.AddRow("dynamics SRTF off", fmt.Sprintf("%.3f", s.AvgCCT()), "1.00", "1.00", "1.00")
	return []*report.Table{t}, nil
}
