// Package experiments regenerates every table and figure of the
// paper's evaluation (§2.3 motivation, §6 simulation, §7 testbed,
// Appendix A). Each FigN/TableN function returns ready-to-render
// report tables; cmd/experiments and the root bench suite are thin
// wrappers around this package.
//
// Runs are memoized per Env, so figures that share a (trace,
// scheduler) pair — e.g. Fig. 9 through Fig. 13 all need Aalo and
// Saath on both traces — pay for each simulation once.
//
// Figures that need several simulations declare them as internal/study
// Studies: each figure states the (trace, scheduler, params) grid it
// needs as a study declaration, Prime or the figure's own study runs
// the missing cells on the Env's Runner backend (default: the bounded
// in-process pool on Env.Parallel workers), and the figure assembles
// its tables from the memoized results. Output is identical at any
// parallelism (see internal/sweep's determinism contract).
//
// Scale: the paper's full traces take hours of simulated time; the
// default ScaleQuick environment shrinks the cluster and CoFlow count
// while preserving the workload mix and per-port contention, which is
// what the headline shapes depend on. ScaleFull uses the published
// trace dimensions (526 CoFlows / 150 ports; ~1000 / 100).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/stats"
	"saath/internal/study"
	"saath/internal/sweep"
	"saath/internal/trace"

	_ "saath/internal/core"        // register saath + ablations
	_ "saath/internal/sched/aalo"  // register aalo
	_ "saath/internal/sched/clair" // register scf/srtf/sjf-duration/lwtf
	_ "saath/internal/sched/uctcp" // register uc-tcp
	_ "saath/internal/sched/varys" // register varys
)

// Scale selects the experiment size.
type Scale int

// The supported scales.
const (
	// ScaleQuick runs in seconds; shapes hold, absolute numbers are
	// smaller. Used by tests and benchmarks.
	ScaleQuick Scale = iota
	// ScaleFull uses the published trace dimensions. Minutes per figure.
	ScaleFull
)

// Env carries the workloads and knobs shared by all experiments, plus
// the memoized simulation results.
type Env struct {
	Scale  Scale
	FB     *trace.Trace
	OSP    *trace.Trace
	SimCfg sim.Config
	Params sched.Params

	// Parallel bounds the sweep worker pool used by figure fan-outs
	// (default runtime.NumCPU()). One worker reproduces the old
	// serial behaviour — and identical output.
	Parallel int
	// Progress, when set, receives a callback after every simulation
	// a figure sweep completes (for cmd/experiments' -progress).
	Progress func(done, total int, jr sweep.JobResult)
	// Ctx, when set, cancels figure sweeps mid-flight (cmd/experiments'
	// graceful shutdown); nil means context.Background().
	Ctx context.Context
	// Runner, when set, overrides the execution backend figure studies
	// run on (default: study.Pool{Parallel, Progress}). Figure output
	// is a pure function of the study declarations, so any runner that
	// executes the full grid reproduces the same tables. Subset
	// runners (study.Sharded) are rejected by runStudy — figures
	// assemble from every cell; sharding belongs to the study CLIs,
	// which merge before rendering.
	Runner study.Runner

	mu    sync.Mutex
	cache map[string]*sim.Result
}

// NewEnv builds the standard environment at the given scale with the
// paper's default parameters (K=10, E=10, S=10MB, δ=8ms, d=2).
func NewEnv(scale Scale) *Env {
	e := &Env{
		Scale:    scale,
		SimCfg:   sim.Config{Delta: 8 * coflow.Millisecond},
		Params:   sched.DefaultParams(),
		Parallel: runtime.NumCPU(),
		cache:    make(map[string]*sim.Result),
	}
	switch scale {
	case ScaleFull:
		e.FB = trace.SynthFB(1)
		e.OSP = trace.SynthOSP(1)
	default:
		e.FB = trace.Synthesize(QuickFBConfig(1), "fb-quick")
		e.OSP = trace.Synthesize(QuickOSPConfig(1), "osp-quick")
	}
	return e
}

// QuickFBConfig shrinks the FB-like workload: same mix (23% single
// flow, ~50% equal-length, Table-1 bin shares), smaller cluster, and
// compressed arrivals to keep per-port contention comparable.
func QuickFBConfig(seed int64) trace.SynthConfig {
	cfg := trace.DefaultFBConfig(seed)
	cfg.NumPorts = 40
	cfg.NumCoFlows = 120
	cfg.MeanInterArrival = 40 * coflow.Millisecond
	cfg.MaxLarge = 2 * coflow.GB
	return cfg
}

// QuickOSPConfig shrinks the OSP-like workload, keeping its defining
// property — busier ports than FB.
func QuickOSPConfig(seed int64) trace.SynthConfig {
	cfg := trace.DefaultOSPConfig(seed)
	cfg.NumPorts = 30
	cfg.NumCoFlows = 180
	cfg.MeanInterArrival = 15 * coflow.Millisecond
	cfg.MaxLarge = 4 * coflow.GB
	return cfg
}

// Run simulates tr under the named scheduler with the Env's default
// parameters, memoizing by (trace, scheduler). Safe for concurrent
// use; figures that need several runs should Prime first so the runs
// fan out instead of serializing here.
func (e *Env) Run(tr *trace.Trace, scheduler string) (*sim.Result, error) {
	key := tr.Name + "|" + scheduler
	e.mu.Lock()
	r, ok := e.cache[key]
	e.mu.Unlock()
	if ok {
		return r, nil
	}
	r, err := e.RunWith(tr, scheduler, e.Params, e.SimCfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.cache[key] = r
	e.mu.Unlock()
	return r, nil
}

// runner returns the execution backend figure studies run on.
func (e *Env) runner() study.Runner {
	if e.Runner != nil {
		return e.Runner
	}
	return study.Pool{Parallel: e.Parallel, Progress: e.Progress}
}

// ctx is the sweep context figure runs execute under.
func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// runStudy executes a figure's study declaration on the Env's runner,
// failing on the first job error or an under-covering runner —
// figures index every cell of their grid, so a partial result must
// error here rather than panic during table assembly.
func (e *Env) runStudy(st *study.Study) (*study.Result, error) {
	res, err := st.Run(e.ctx(), e.runner())
	if err != nil {
		return nil, err
	}
	if got, want := len(res.Sweep().Jobs), len(st.Jobs()); got != want {
		return nil, fmt.Errorf("experiments: study %s: runner executed %d of %d jobs (figures need a full-coverage runner, not a shard)",
			st.Name(), got, want)
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Prime declares the (trace × scheduler) cross product as a study and
// runs every not-yet-memoized cell on the Env's runner. After Prime
// returns nil, Run hits the cache for each pair.
func (e *Env) Prime(traces []*trace.Trace, schedulers ...string) error {
	sources := make([]sweep.TraceSource, len(traces))
	for i, tr := range traces {
		sources[i] = sweep.FixedTrace(tr)
	}
	st, err := study.New("prime",
		study.WithTraces(sources...),
		study.WithSchedulers(schedulers...),
		study.WithParams(e.Params),
		study.WithSimConfig(e.SimCfg))
	if err != nil {
		return err
	}
	var missing []sweep.Job
	e.mu.Lock()
	for _, j := range st.Jobs() {
		if _, ok := e.cache[j.Trace+"|"+j.Scheduler]; !ok {
			missing = append(missing, j)
		}
	}
	e.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	res, err := e.runner().Run(e.ctx(), missing, nil)
	if err != nil {
		return err
	}
	if err := res.FirstErr(); err != nil {
		return err
	}
	e.mu.Lock()
	for _, jr := range res.Jobs {
		e.cache[jr.Job.Trace+"|"+jr.Job.Scheduler] = jr.Res
	}
	e.mu.Unlock()
	return nil
}

// RunWith simulates without memoization, for parameter sweeps.
func (e *Env) RunWith(tr *trace.Trace, scheduler string, p sched.Params, cfg sim.Config) (*sim.Result, error) {
	s, err := sched.New(scheduler, p)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(tr.Clone(), s, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", scheduler, tr.Name, err)
	}
	return res, nil
}

// SpeedupOver computes the per-CoFlow speedup distribution of target
// over base (base CCT ÷ target CCT).
func (e *Env) SpeedupOver(tr *trace.Trace, base, target string) ([]float64, error) {
	rb, err := e.Run(tr, base)
	if err != nil {
		return nil, err
	}
	rt, err := e.Run(tr, target)
	if err != nil {
		return nil, err
	}
	return stats.Speedups(rb.CCTByID(), rt.CCTByID()), nil
}

// fctDeviations returns, per multi-flow CoFlow, the normalized stddev
// of its flows' completion times — the out-of-sync metric (§2.3) —
// split by equal/unequal flow lengths.
func fctDeviations(tr *trace.Trace, res *sim.Result) (equal, unequal []float64) {
	class := make(map[coflow.CoFlowID]trace.FlowLengthClass, len(tr.Specs))
	for _, s := range tr.Specs {
		class[s.ID] = trace.Classify(s)
	}
	for _, c := range res.CoFlows {
		if len(c.Flows) <= 1 {
			continue
		}
		fcts := make([]float64, len(c.Flows))
		for i, f := range c.Flows {
			fcts[i] = f.FCT.Seconds()
		}
		dev := stats.NormStdDev(fcts)
		switch class[c.ID] {
		case trace.EqualLength:
			equal = append(equal, dev)
		case trace.UnequalLength:
			unequal = append(unequal, dev)
		}
	}
	return equal, unequal
}

// binSpeedups splits a speedup distribution by the Table-1 bin of each
// CoFlow.
func binSpeedups(tr *trace.Trace, base, target *sim.Result) map[stats.Bin][]float64 {
	bins := make(map[coflow.CoFlowID]stats.Bin, len(tr.Specs))
	for _, s := range tr.Specs {
		bins[s.ID] = stats.AssignBin(s.TotalSize(), s.Width())
	}
	bcct := base.CCTByID()
	out := make(map[stats.Bin][]float64)
	for _, c := range target.CoFlows {
		b, ok := bcct[c.ID]
		if !ok || b <= 0 || c.CCT <= 0 {
			continue
		}
		bin := bins[c.ID]
		out[bin] = append(out[bin], float64(b)/float64(c.CCT))
	}
	return out
}
