// Package experiments regenerates every table and figure of the
// paper's evaluation (§2.3 motivation, §6 simulation, §7 testbed,
// Appendix A). Each FigN/TableN function returns ready-to-render
// report tables; cmd/experiments and the root bench suite are thin
// wrappers around this package.
//
// Runs are memoized per Env, so figures that share a (trace,
// scheduler) pair — e.g. Fig. 9 through Fig. 13 all need Aalo and
// Saath on both traces — pay for each simulation once.
//
// Scale: the paper's full traces take hours of simulated time; the
// default ScaleQuick environment shrinks the cluster and CoFlow count
// while preserving the workload mix and per-port contention, which is
// what the headline shapes depend on. ScaleFull uses the published
// trace dimensions (526 CoFlows / 150 ports; ~1000 / 100).
package experiments

import (
	"fmt"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/sim"
	"saath/internal/stats"
	"saath/internal/trace"

	_ "saath/internal/core"        // register saath + ablations
	_ "saath/internal/sched/aalo"  // register aalo
	_ "saath/internal/sched/clair" // register scf/srtf/sjf-duration/lwtf
	_ "saath/internal/sched/uctcp" // register uc-tcp
	_ "saath/internal/sched/varys" // register varys
)

// Scale selects the experiment size.
type Scale int

// The supported scales.
const (
	// ScaleQuick runs in seconds; shapes hold, absolute numbers are
	// smaller. Used by tests and benchmarks.
	ScaleQuick Scale = iota
	// ScaleFull uses the published trace dimensions. Minutes per figure.
	ScaleFull
)

// Env carries the workloads and knobs shared by all experiments, plus
// the memoized simulation results.
type Env struct {
	Scale  Scale
	FB     *trace.Trace
	OSP    *trace.Trace
	SimCfg sim.Config
	Params sched.Params

	cache map[string]*sim.Result
}

// NewEnv builds the standard environment at the given scale with the
// paper's default parameters (K=10, E=10, S=10MB, δ=8ms, d=2).
func NewEnv(scale Scale) *Env {
	e := &Env{
		Scale:  scale,
		SimCfg: sim.Config{Delta: 8 * coflow.Millisecond},
		Params: sched.DefaultParams(),
		cache:  make(map[string]*sim.Result),
	}
	switch scale {
	case ScaleFull:
		e.FB = trace.SynthFB(1)
		e.OSP = trace.SynthOSP(1)
	default:
		e.FB = trace.Synthesize(QuickFBConfig(1), "fb-quick")
		e.OSP = trace.Synthesize(QuickOSPConfig(1), "osp-quick")
	}
	return e
}

// QuickFBConfig shrinks the FB-like workload: same mix (23% single
// flow, ~50% equal-length, Table-1 bin shares), smaller cluster, and
// compressed arrivals to keep per-port contention comparable.
func QuickFBConfig(seed int64) trace.SynthConfig {
	cfg := trace.DefaultFBConfig(seed)
	cfg.NumPorts = 40
	cfg.NumCoFlows = 120
	cfg.MeanInterArrival = 40 * coflow.Millisecond
	cfg.MaxLarge = 2 * coflow.GB
	return cfg
}

// QuickOSPConfig shrinks the OSP-like workload, keeping its defining
// property — busier ports than FB.
func QuickOSPConfig(seed int64) trace.SynthConfig {
	cfg := trace.DefaultOSPConfig(seed)
	cfg.NumPorts = 30
	cfg.NumCoFlows = 180
	cfg.MeanInterArrival = 15 * coflow.Millisecond
	cfg.MaxLarge = 4 * coflow.GB
	return cfg
}

// Run simulates tr under the named scheduler with the Env's default
// parameters, memoizing by (trace, scheduler).
func (e *Env) Run(tr *trace.Trace, scheduler string) (*sim.Result, error) {
	key := tr.Name + "|" + scheduler
	if r, ok := e.cache[key]; ok {
		return r, nil
	}
	r, err := e.RunWith(tr, scheduler, e.Params, e.SimCfg)
	if err != nil {
		return nil, err
	}
	e.cache[key] = r
	return r, nil
}

// RunWith simulates without memoization, for parameter sweeps.
func (e *Env) RunWith(tr *trace.Trace, scheduler string, p sched.Params, cfg sim.Config) (*sim.Result, error) {
	s, err := sched.New(scheduler, p)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(tr.Clone(), s, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", scheduler, tr.Name, err)
	}
	return res, nil
}

// SpeedupOver computes the per-CoFlow speedup distribution of target
// over base (base CCT ÷ target CCT).
func (e *Env) SpeedupOver(tr *trace.Trace, base, target string) ([]float64, error) {
	rb, err := e.Run(tr, base)
	if err != nil {
		return nil, err
	}
	rt, err := e.Run(tr, target)
	if err != nil {
		return nil, err
	}
	return stats.Speedups(rb.CCTByID(), rt.CCTByID()), nil
}

// fctDeviations returns, per multi-flow CoFlow, the normalized stddev
// of its flows' completion times — the out-of-sync metric (§2.3) —
// split by equal/unequal flow lengths.
func fctDeviations(tr *trace.Trace, res *sim.Result) (equal, unequal []float64) {
	class := make(map[coflow.CoFlowID]trace.FlowLengthClass, len(tr.Specs))
	for _, s := range tr.Specs {
		class[s.ID] = trace.Classify(s)
	}
	for _, c := range res.CoFlows {
		if len(c.Flows) <= 1 {
			continue
		}
		fcts := make([]float64, len(c.Flows))
		for i, f := range c.Flows {
			fcts[i] = f.FCT.Seconds()
		}
		dev := stats.NormStdDev(fcts)
		switch class[c.ID] {
		case trace.EqualLength:
			equal = append(equal, dev)
		case trace.UnequalLength:
			unequal = append(unequal, dev)
		}
	}
	return equal, unequal
}

// binSpeedups splits a speedup distribution by the Table-1 bin of each
// CoFlow.
func binSpeedups(tr *trace.Trace, base, target *sim.Result) map[stats.Bin][]float64 {
	bins := make(map[coflow.CoFlowID]stats.Bin, len(tr.Specs))
	for _, s := range tr.Specs {
		bins[s.ID] = stats.AssignBin(s.TotalSize(), s.Width())
	}
	bcct := base.CCTByID()
	out := make(map[stats.Bin][]float64)
	for _, c := range target.CoFlows {
		b, ok := bcct[c.ID]
		if !ok || b <= 0 || c.CCT <= 0 {
			continue
		}
		bin := bins[c.ID]
		out[bin] = append(out[bin], float64(b)/float64(c.CCT))
	}
	return out
}
