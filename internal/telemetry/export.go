package telemetry

import (
	"math"
	"sort"
	"strconv"

	"saath/internal/report"
)

// SeriesDump is the exported form of one metric stream: merged
// reservoir + tail points plus exact whole-run scalar statistics.
type SeriesDump struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit,omitempty"`
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Last   float64 `json:"last"`
	Points []Point `json:"points"`
}

// Bucket is one histogram bucket: the count of observations with
// value <= LE (non-cumulative).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramDump is the exported form of one histogram. Overflow counts
// observations above the last bucket's bound (JSON has no +Inf).
type HistogramDump struct {
	Name     string   `json:"name"`
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Max      float64  `json:"max"`
	Buckets  []Bucket `json:"buckets"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Mean returns the exact mean observation.
func (h *HistogramDump) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile as the upper bound of the bucket
// where the cumulative count crosses q (overflow: the exact maximum).
func (h *HistogramDump) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(h.Count)))
	if need <= 0 {
		need = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= need {
			return b.LE
		}
	}
	return h.Max
}

// Merge adds other's buckets into h. Bucket layouts must match (both
// built by the Suite); mismatched layouts merge only the scalar fields.
func (h *HistogramDump) Merge(other *HistogramDump) {
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.Overflow += other.Overflow
	if len(h.Buckets) == len(other.Buckets) {
		for i := range h.Buckets {
			h.Buckets[i].Count += other.Buckets[i].Count
		}
	}
}

// Clone returns a deep copy (Merge mutates; callers pooling across
// jobs start from a clone).
func (h *HistogramDump) Clone() *HistogramDump {
	cp := *h
	cp.Buckets = append([]Bucket(nil), h.Buckets...)
	return &cp
}

// HeatmapPortDump is one port's row of a heatmap: occupancy-bucket
// counts plus exact integer scalar statistics. Everything is integral,
// so shard dumps round-trip through JSON without loss.
type HeatmapPortDump struct {
	Port     int     `json:"port"`
	Counts   []int64 `json:"counts"`
	Overflow int64   `json:"overflow,omitempty"`
	Sum      int64   `json:"sum"`
	Max      int64   `json:"max"`
}

// Mean returns the port's time-weighted mean occupancy over intervals
// observations.
func (p *HeatmapPortDump) Mean(intervals int64) float64 {
	if intervals == 0 {
		return 0
	}
	return float64(p.Sum) / float64(intervals)
}

// HeatmapDump is the exported form of one per-port occupancy heatmap.
type HeatmapDump struct {
	Name      string            `json:"name"`
	Bounds    []float64         `json:"bounds"`
	Intervals int64             `json:"intervals"`
	Ports     []HeatmapPortDump `json:"ports"`
}

// Merge adds other's observations into h. Layouts must match (same
// bounds, same port count — heatmaps from the same workload cell do);
// mismatched layouts merge only the interval count.
func (h *HeatmapDump) Merge(other *HeatmapDump) {
	h.Intervals += other.Intervals
	if len(h.Ports) != len(other.Ports) || len(h.Bounds) != len(other.Bounds) {
		return
	}
	for i := range h.Ports {
		p, o := &h.Ports[i], &other.Ports[i]
		p.Overflow += o.Overflow
		p.Sum += o.Sum
		if o.Max > p.Max {
			p.Max = o.Max
		}
		if len(p.Counts) == len(o.Counts) {
			for b := range p.Counts {
				p.Counts[b] += o.Counts[b]
			}
		}
	}
}

// Clone returns a deep copy (Merge mutates).
func (h *HeatmapDump) Clone() *HeatmapDump {
	cp := *h
	cp.Bounds = append([]float64(nil), h.Bounds...)
	cp.Ports = make([]HeatmapPortDump, len(h.Ports))
	for i, p := range h.Ports {
		p.Counts = append([]int64(nil), p.Counts...)
		cp.Ports[i] = p
	}
	return &cp
}

// Metrics is one run's exported telemetry: every series and histogram
// in a stable order, fully deterministic for a given simulation.
type Metrics struct {
	// Intervals counts scheduling rounds observed; Sampled counts the
	// rounds recorded after striding.
	Intervals  int64           `json:"intervals"`
	Sampled    int64           `json:"sampled"`
	Series     []SeriesDump    `json:"series"`
	Histograms []HistogramDump `json:"histograms"`
	Heatmaps   []HeatmapDump   `json:"heatmaps,omitempty"`
}

// Metrics exports the suite's state. It may be called mid-run (the
// dump is a snapshot) or after the simulation completes.
func (s *Suite) Metrics() *Metrics {
	m := &Metrics{Intervals: s.intervals, Sampled: s.sampled}
	for _, sr := range s.order {
		m.Series = append(m.Series, sr.Export())
	}
	for _, id := range s.progressIDs {
		m.Series = append(m.Series, s.progress[id].series.Export())
	}
	for _, h := range []*Histogram{s.hEgress, s.hIngress, s.hContention} {
		m.Histograms = append(m.Histograms, h.Export())
	}
	if s.qt != nil {
		m.Histograms = append(m.Histograms, s.qt.level.Export())
	}
	if s.heatEg != nil {
		m.Heatmaps = append(m.Heatmaps, s.heatEg.Export(), s.heatIn.Export())
	}
	return m
}

// FindSeries returns the named series dump, or nil.
func (m *Metrics) FindSeries(name string) *SeriesDump {
	for i := range m.Series {
		if m.Series[i].Name == name {
			return &m.Series[i]
		}
	}
	return nil
}

// FindHistogram returns the named histogram dump, or nil.
func (m *Metrics) FindHistogram(name string) *HistogramDump {
	for i := range m.Histograms {
		if m.Histograms[i].Name == name {
			return &m.Histograms[i]
		}
	}
	return nil
}

// SeriesTable renders the named series as a time/value table,
// downsampled to at most maxRows points. Returns nil if the series is
// absent.
func (m *Metrics) SeriesTable(title, name string, maxRows int) *report.Table {
	s := m.FindSeries(name)
	if s == nil {
		return nil
	}
	xs := make([]float64, len(s.Points))
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i], ys[i] = p.T, p.V
	}
	label := name
	if s.Unit != "" {
		label = name + " (" + s.Unit + ")"
	}
	return report.SampledXYTable(title, "t (s)", label, xs, ys, maxRows)
}

// HistogramTable renders the named histogram with per-bucket counts
// and cumulative fractions. Returns nil if the histogram is absent.
func (m *Metrics) HistogramTable(title, name string) *report.Table {
	h := m.FindHistogram(name)
	if h == nil {
		return nil
	}
	uppers := make([]float64, len(h.Buckets))
	counts := make([]int64, len(h.Buckets))
	for i, b := range h.Buckets {
		uppers[i], counts[i] = b.LE, b.Count
	}
	return report.BucketTable(title, name, uppers, counts, h.Overflow)
}

// FindHeatmap returns the named heatmap dump, or nil.
func (m *Metrics) FindHeatmap(name string) *HeatmapDump {
	for i := range m.Heatmaps {
		if m.Heatmaps[i].Name == name {
			return &m.Heatmaps[i]
		}
	}
	return nil
}

// HeatmapTable renders the named per-port occupancy heatmap, one row
// per port (busiest first by total occupancy, at most maxPorts rows,
// idle ports dropped). Returns nil if the heatmap is absent.
func (m *Metrics) HeatmapTable(title, name string, maxPorts int) *report.Table {
	h := m.FindHeatmap(name)
	if h == nil {
		return nil
	}
	rows := HeatmapRows(h, maxPorts, func(p *HeatmapPortDump) string {
		return strconv.Itoa(p.Port)
	})
	return report.HeatmapTable(title, "port", h.Bounds, rows)
}

// HeatmapRows converts a heatmap dump into report rows: ports with any
// occupancy, ranked by total occupancy descending (ties by port
// ascending), truncated to maxPorts (<=0: no cap). The label callback
// names each row, letting pooled consumers prefix workload/scheduler.
func HeatmapRows(h *HeatmapDump, maxPorts int, label func(*HeatmapPortDump) string) []report.HeatmapRow {
	idx := make([]int, 0, len(h.Ports))
	for i := range h.Ports {
		if h.Ports[i].Sum > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := &h.Ports[idx[a]], &h.Ports[idx[b]]
		if pa.Sum != pb.Sum {
			return pa.Sum > pb.Sum
		}
		return pa.Port < pb.Port
	})
	if maxPorts > 0 && len(idx) > maxPorts {
		idx = idx[:maxPorts]
	}
	rows := make([]report.HeatmapRow, len(idx))
	for i, j := range idx {
		p := &h.Ports[j]
		rows[i] = report.HeatmapRow{
			Label:    label(p),
			Counts:   p.Counts,
			Overflow: p.Overflow,
			Mean:     p.Mean(h.Intervals),
			Max:      float64(p.Max),
		}
	}
	return rows
}
