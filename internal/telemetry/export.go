package telemetry

import (
	"math"

	"saath/internal/report"
)

// SeriesDump is the exported form of one metric stream: merged
// reservoir + tail points plus exact whole-run scalar statistics.
type SeriesDump struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit,omitempty"`
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Last   float64 `json:"last"`
	Points []Point `json:"points"`
}

// Bucket is one histogram bucket: the count of observations with
// value <= LE (non-cumulative).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramDump is the exported form of one histogram. Overflow counts
// observations above the last bucket's bound (JSON has no +Inf).
type HistogramDump struct {
	Name     string   `json:"name"`
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Max      float64  `json:"max"`
	Buckets  []Bucket `json:"buckets"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Mean returns the exact mean observation.
func (h *HistogramDump) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile as the upper bound of the bucket
// where the cumulative count crosses q (overflow: the exact maximum).
func (h *HistogramDump) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(h.Count)))
	if need <= 0 {
		need = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= need {
			return b.LE
		}
	}
	return h.Max
}

// Merge adds other's buckets into h. Bucket layouts must match (both
// built by the Suite); mismatched layouts merge only the scalar fields.
func (h *HistogramDump) Merge(other *HistogramDump) {
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.Overflow += other.Overflow
	if len(h.Buckets) == len(other.Buckets) {
		for i := range h.Buckets {
			h.Buckets[i].Count += other.Buckets[i].Count
		}
	}
}

// Clone returns a deep copy (Merge mutates; callers pooling across
// jobs start from a clone).
func (h *HistogramDump) Clone() *HistogramDump {
	cp := *h
	cp.Buckets = append([]Bucket(nil), h.Buckets...)
	return &cp
}

// Metrics is one run's exported telemetry: every series and histogram
// in a stable order, fully deterministic for a given simulation.
type Metrics struct {
	// Intervals counts scheduling rounds observed; Sampled counts the
	// rounds recorded after striding.
	Intervals  int64           `json:"intervals"`
	Sampled    int64           `json:"sampled"`
	Series     []SeriesDump    `json:"series"`
	Histograms []HistogramDump `json:"histograms"`
}

// Metrics exports the suite's state. It may be called mid-run (the
// dump is a snapshot) or after the simulation completes.
func (s *Suite) Metrics() *Metrics {
	m := &Metrics{Intervals: s.intervals, Sampled: s.sampled}
	for _, sr := range s.order {
		m.Series = append(m.Series, sr.Export())
	}
	for _, id := range s.progressIDs {
		m.Series = append(m.Series, s.progress[id].series.Export())
	}
	for _, h := range []*Histogram{s.hEgress, s.hIngress, s.hContention} {
		m.Histograms = append(m.Histograms, h.Export())
	}
	return m
}

// FindSeries returns the named series dump, or nil.
func (m *Metrics) FindSeries(name string) *SeriesDump {
	for i := range m.Series {
		if m.Series[i].Name == name {
			return &m.Series[i]
		}
	}
	return nil
}

// FindHistogram returns the named histogram dump, or nil.
func (m *Metrics) FindHistogram(name string) *HistogramDump {
	for i := range m.Histograms {
		if m.Histograms[i].Name == name {
			return &m.Histograms[i]
		}
	}
	return nil
}

// SeriesTable renders the named series as a time/value table,
// downsampled to at most maxRows points. Returns nil if the series is
// absent.
func (m *Metrics) SeriesTable(title, name string, maxRows int) *report.Table {
	s := m.FindSeries(name)
	if s == nil {
		return nil
	}
	xs := make([]float64, len(s.Points))
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i], ys[i] = p.T, p.V
	}
	label := name
	if s.Unit != "" {
		label = name + " (" + s.Unit + ")"
	}
	return report.SampledXYTable(title, "t (s)", label, xs, ys, maxRows)
}

// HistogramTable renders the named histogram with per-bucket counts
// and cumulative fractions. Returns nil if the histogram is absent.
func (m *Metrics) HistogramTable(title, name string) *report.Table {
	h := m.FindHistogram(name)
	if h == nil {
		return nil
	}
	uppers := make([]float64, len(h.Buckets))
	counts := make([]int64, len(h.Buckets))
	for i, b := range h.Buckets {
		uppers[i], counts[i] = b.LE, b.Count
	}
	return report.BucketTable(title, name, uppers, counts, h.Overflow)
}
