package telemetry

import (
	"saath/internal/coflow"
	"saath/internal/queues"
)

// This file holds the Fig. 4-style spatial consumers: the
// queue-transition tracker (how fast CoFlows move down the
// priority-queue ladder, the dynamic the paper's §2–§3 analysis is
// built on) and the per-port occupancy heatmap (where in the cluster
// the queues build). Both are bounded-memory observers — dense
// slices keyed by CoFlow.Idx / PortID, fixed bucket sets — and both
// are nil unless enabled in the Spec, so the default suite (and the
// engine's no-probe path) pays nothing for them.

// queueTracker places every active CoFlow into the configured
// priority-queue ladder each sampled interval and counts transitions
// against the previous placement. Demotions (toward a higher queue
// index, i.e. lower priority) are the normal drift as bytes
// accumulate; promotions only happen when sent bytes shrink — a
// restart after a node failure — making the promotion series a direct
// failure-churn signal.
type queueTracker struct {
	cfg     queues.Config
	perFlow bool
	level   *Histogram

	// prevQ/prevID are the previous placement, densely keyed by
	// CoFlow.Idx. Index slots are recycled by the engine's IndexSpace,
	// so a slot only counts as "seen" while its recorded ID matches.
	prevQ  []int16
	prevID []coflow.CoFlowID
}

func newQueueTracker(cfg queues.Config, perFlow bool) *queueTracker {
	bounds := make([]float64, cfg.NumQueues)
	for i := range bounds {
		bounds[i] = float64(i)
	}
	return &queueTracker{cfg: cfg, perFlow: perFlow, level: NewHistogram(HistQueueLevel, bounds)}
}

// place returns the CoFlow's current queue under the tracker's rule.
func (qt *queueTracker) place(c *coflow.CoFlow) int {
	if qt.perFlow {
		return qt.cfg.QueueForPerFlow(c.MaxSent(), c.Width())
	}
	return qt.cfg.QueueForBytes(c.TotalSent())
}

// observe places every active CoFlow and returns this interval's
// promotion/demotion counts. Iteration follows the deterministic
// Active order, so counts are reproducible at any parallelism.
func (qt *queueTracker) observe(active []*coflow.CoFlow) (promotions, demotions int) {
	for _, c := range active {
		q := qt.place(c)
		qt.level.Add(float64(q))
		idx := c.Idx
		if idx < 0 {
			continue // unindexed (hand-built) CoFlows are not tracked
		}
		if idx >= len(qt.prevQ) {
			qt.grow(idx + 1)
		}
		if qt.prevQ[idx] < 0 || qt.prevID[idx] != c.ID() {
			// First sight of this CoFlow (or a recycled index slot):
			// entering the ladder is not a transition.
			qt.prevID[idx] = c.ID()
			qt.prevQ[idx] = int16(q)
			continue
		}
		if prev := int(qt.prevQ[idx]); q > prev {
			demotions++
		} else if q < prev {
			promotions++
		}
		qt.prevQ[idx] = int16(q)
	}
	return promotions, demotions
}

func (qt *queueTracker) grow(n int) {
	if cap(qt.prevQ) >= n {
		old := len(qt.prevQ)
		qt.prevQ = qt.prevQ[:n]
		qt.prevID = qt.prevID[:n]
		for i := old; i < n; i++ {
			qt.prevQ[i] = -1
		}
		return
	}
	grown := n * 2
	pq := make([]int16, grown)
	pid := make([]coflow.CoFlowID, grown)
	copy(pq, qt.prevQ)
	copy(pid, qt.prevID)
	for i := len(qt.prevQ); i < grown; i++ {
		pq[i] = -1
	}
	qt.prevQ, qt.prevID = pq[:n], pid[:n]
}

// DefaultOccupancyBounds suits per-port queue-occupancy distributions:
// an idle bucket plus powers of two up to 32 and an overflow bucket.
func DefaultOccupancyBounds() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32}
}

// Heatmap accumulates a per-port histogram of an integer occupancy
// signal: one bucket increment per port per observation, plus exact
// per-port sums and maxima. Memory is ports × buckets, constant in the
// number of observations — the paper's Fig. 4-style "where do queues
// build" view in bounded space.
type Heatmap struct {
	name      string
	bounds    []float64
	counts    [][]int64 // [port][bucket]
	overflow  []int64
	sum       []int64
	max       []int64
	intervals int64
}

// NewHeatmap returns a heatmap with the given ascending bucket bounds
// (nil: DefaultOccupancyBounds).
func NewHeatmap(name string, bounds []float64) *Heatmap {
	if len(bounds) == 0 {
		bounds = DefaultOccupancyBounds()
	}
	return &Heatmap{name: name, bounds: append([]float64(nil), bounds...)}
}

// Observe records one interval's per-port occupancy vector. The first
// observation sizes the port dimension; occ must keep its length for
// the rest of the run (one simulation, one fabric).
func (h *Heatmap) Observe(occ []int) {
	h.intervals++
	if len(h.counts) < len(occ) {
		h.growPorts(len(occ))
	}
	for p, v := range occ {
		h.sum[p] += int64(v)
		if int64(v) > h.max[p] {
			h.max[p] = int64(v)
		}
		placed := false
		for i, b := range h.bounds {
			if float64(v) <= b {
				h.counts[p][i]++
				placed = true
				break
			}
		}
		if !placed {
			h.overflow[p]++
		}
	}
}

func (h *Heatmap) growPorts(n int) {
	for p := len(h.counts); p < n; p++ {
		h.counts = append(h.counts, make([]int64, len(h.bounds)))
	}
	for len(h.overflow) < n {
		h.overflow = append(h.overflow, 0)
		h.sum = append(h.sum, 0)
		h.max = append(h.max, 0)
	}
}

// Export dumps the heatmap.
func (h *Heatmap) Export() HeatmapDump {
	d := HeatmapDump{
		Name:      h.name,
		Bounds:    append([]float64(nil), h.bounds...),
		Intervals: h.intervals,
		Ports:     make([]HeatmapPortDump, len(h.counts)),
	}
	for p := range h.counts {
		d.Ports[p] = HeatmapPortDump{
			Port:     p,
			Counts:   append([]int64(nil), h.counts[p]...),
			Overflow: h.overflow[p],
			Sum:      h.sum[p],
			Max:      h.max[p],
		}
	}
	return d
}
