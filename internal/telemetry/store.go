package telemetry

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"saath/internal/coflow"
)

// Point is one time-series sample: simulated time in seconds and a
// value.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Ring is a fixed-capacity ring buffer of points. Once full, each push
// overwrites the oldest entry, so the ring always holds the exact tail
// window of the stream in O(capacity) memory.
type Ring struct {
	buf  []Point
	head int // next write position
	full bool
}

// NewRing returns a ring holding at most capacity points.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Point, capacity)}
}

// Push appends p, evicting the oldest point when full.
func (r *Ring) Push(p Point) {
	r.buf[r.head] = p
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
		r.full = true
	}
}

// Len returns the number of stored points.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.head
}

// Points returns the stored points oldest-first.
func (r *Ring) Points() []Point {
	out := make([]Point, 0, r.Len())
	if r.full {
		out = append(out, r.buf[r.head:]...)
	}
	return append(out, r.buf[:r.head]...)
}

// indexed pairs a point with its position in the stream so reservoir
// samples can be restored to stream order on export.
type indexed struct {
	idx int64
	p   Point
}

// Reservoir keeps a uniform sample of an unbounded stream (Vitter's
// algorithm R). The RNG is seeded explicitly, so for a fixed seed and
// input sequence the retained sample is identical on every run — the
// property that keeps sweep output byte-identical at any parallelism.
type Reservoir struct {
	rng   *rand.Rand
	seen  int64
	items []indexed
	cap   int
}

// NewReservoir returns a reservoir of the given capacity and RNG seed.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{rng: rand.New(rand.NewSource(seed)), cap: capacity}
}

// Push offers p to the reservoir.
func (r *Reservoir) Push(p Point) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, indexed{idx: r.seen - 1, p: p})
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.items[j] = indexed{idx: r.seen - 1, p: p}
	}
}

// Seen returns the number of points offered so far.
func (r *Reservoir) Seen() int64 { return r.seen }

// sample returns the retained points sorted by stream position.
func (r *Reservoir) sample() []indexed {
	out := append([]indexed(nil), r.items...)
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// Points returns the retained points in stream order.
func (r *Reservoir) Points() []Point {
	s := r.sample()
	out := make([]Point, len(s))
	for i, it := range s {
		out[i] = it.p
	}
	return out
}

// Series is one bounded-memory metric stream: a reservoir covering the
// whole run, a ring holding the exact tail, and running scalar
// statistics that stay exact regardless of downsampling.
type Series struct {
	name string
	unit string

	count int64
	sum   float64
	max   float64
	last  float64

	ring *Ring
	res  *Reservoir
}

func newSeries(name, unit string, ringCap, resCap int, seed int64) *Series {
	return &Series{
		name: name,
		unit: unit,
		ring: NewRing(ringCap),
		res:  NewReservoir(resCap, mixSeed(seed, name)),
	}
}

// Record appends one sample at simulated time t.
func (s *Series) Record(t coflow.Time, v float64) {
	p := Point{T: t.Seconds(), V: v}
	s.count++
	s.sum += v
	if v > s.max || s.count == 1 {
		s.max = v
	}
	s.last = v
	s.ring.Push(p)
	s.res.Push(p)
}

// Count returns the number of recorded samples.
func (s *Series) Count() int64 { return s.count }

// Mean returns the exact mean over every recorded sample.
func (s *Series) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Max returns the exact maximum over every recorded sample.
func (s *Series) Max() float64 { return s.max }

// Export merges the reservoir (full-run coverage) with the ring (exact
// tail), deduplicated by stream position, into one dump.
func (s *Series) Export() SeriesDump {
	tail := s.ring.Points()
	tailStart := s.count - int64(len(tail))
	sample := s.res.sample()
	pts := make([]Point, 0, len(sample)+len(tail))
	for _, it := range sample {
		if it.idx < tailStart {
			pts = append(pts, it.p)
		}
	}
	pts = append(pts, tail...)
	return SeriesDump{
		Name:   s.name,
		Unit:   s.unit,
		Count:  s.count,
		Mean:   s.Mean(),
		Max:    s.max,
		Last:   s.last,
		Points: pts,
	}
}

// Histogram is a fixed-bucket histogram over non-negative values:
// counts per upper bound plus an overflow bucket, with exact running
// sum and max. Memory is constant in the number of observations.
type Histogram struct {
	name     string
	bounds   []float64 // ascending upper bounds (v <= bound)
	counts   []int64   // len(bounds)
	overflow int64
	total    int64
	sum      float64
	max      float64
}

// DefaultCountBounds suits small-integer distributions (per-port queue
// lengths, blocked-CoFlow counts k_c): powers of two up to 256.
func DefaultCountBounds() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// NewHistogram returns a histogram with the given ascending upper
// bounds; values above the last bound land in the overflow bucket.
func NewHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultCountBounds()
	}
	return &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)),
	}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	h.sum += v
	if v > h.max || h.total == 1 {
		h.max = v
	}
	// Bucket count is ~10; linear scan beats binary search at this size.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.overflow++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the exact mean observation.
func (h *Histogram) Mean() float64 { d := h.Export(); return d.Mean() }

// Quantile estimates the q-quantile (0..1); see HistogramDump.Quantile
// for the estimate's semantics.
func (h *Histogram) Quantile(q float64) float64 { d := h.Export(); return d.Quantile(q) }

// Export dumps the histogram.
func (h *Histogram) Export() HistogramDump {
	buckets := make([]Bucket, len(h.bounds))
	for i := range h.bounds {
		buckets[i] = Bucket{LE: h.bounds[i], Count: h.counts[i]}
	}
	return HistogramDump{
		Name:     h.name,
		Count:    h.total,
		Sum:      h.sum,
		Max:      h.max,
		Buckets:  buckets,
		Overflow: h.overflow,
	}
}

// mixSeed derives a per-series RNG seed from the suite seed and the
// series name (FNV-1a), so sibling series sample independently but
// reproducibly.
func mixSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(name))
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}
