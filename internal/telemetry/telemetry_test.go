package telemetry

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"saath/internal/coflow"
	"saath/internal/sched"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	if got := r.Len(); got != 0 {
		t.Fatalf("empty ring Len = %d", got)
	}
	for i := 0; i < 3; i++ {
		r.Push(Point{T: float64(i), V: float64(i)})
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	pts := r.Points()
	if pts[0].T != 0 || pts[2].T != 2 {
		t.Fatalf("pre-wrap points = %v", pts)
	}

	// Push past capacity: the ring must keep exactly the last 4 points
	// in stream order.
	for i := 3; i < 11; i++ {
		r.Push(Point{T: float64(i), V: float64(i)})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("post-wrap Len = %d, want 4", got)
	}
	pts = r.Points()
	want := []float64{7, 8, 9, 10}
	for i, p := range pts {
		if p.T != want[i] {
			t.Fatalf("post-wrap points = %v, want T = %v", pts, want)
		}
	}
}

func TestRingZeroCapacity(t *testing.T) {
	r := NewRing(0) // clamped to 1
	r.Push(Point{T: 1})
	r.Push(Point{T: 2})
	if got := r.Points(); len(got) != 1 || got[0].T != 2 {
		t.Fatalf("points = %v, want just the last", got)
	}
}

// TestReservoirDeterminism: a fixed seed and input stream must retain
// an identical sample on every run — the property sweep exports lean
// on for byte-identical output at any parallelism.
func TestReservoirDeterminism(t *testing.T) {
	sample := func(seed int64, n int) []Point {
		r := NewReservoir(16, seed)
		for i := 0; i < n; i++ {
			r.Push(Point{T: float64(i), V: float64(i * i)})
		}
		return r.Points()
	}
	a, b := sample(42, 10_000), sample(42, 10_000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed and stream produced different samples")
	}
	if len(a) != 16 {
		t.Fatalf("sample size = %d, want 16", len(a))
	}
	// Stream order is preserved.
	for i := 1; i < len(a); i++ {
		if a[i].T <= a[i-1].T {
			t.Fatalf("sample not in stream order: %v", a)
		}
	}
	// A different seed diverges (overwhelmingly likely over 10k pushes).
	if c := sample(43, 10_000); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical samples")
	}
	// Short streams are kept exactly.
	if short := sample(42, 5); len(short) != 5 {
		t.Fatalf("short stream sample = %d points, want all 5", len(short))
	}
}

func TestSeriesExportMergesReservoirAndTail(t *testing.T) {
	s := newSeries("x", "u", 8, 8, 1)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Record(coflow.Time(i)*coflow.Millisecond, float64(i))
	}
	d := s.Export()
	if d.Count != n {
		t.Fatalf("Count = %d, want %d", d.Count, n)
	}
	if d.Mean != float64(n-1)/2 || d.Max != n-1 || d.Last != n-1 {
		t.Fatalf("stats mean=%v max=%v last=%v", d.Mean, d.Max, d.Last)
	}
	if len(d.Points) < 8 || len(d.Points) > 16 {
		t.Fatalf("merged points = %d, want in [8,16]", len(d.Points))
	}
	// Strictly increasing timestamps ⇒ no duplicate between reservoir
	// and tail, and order is preserved.
	for i := 1; i < len(d.Points); i++ {
		if d.Points[i].T <= d.Points[i-1].T {
			t.Fatalf("export out of order or duplicated: %v", d.Points)
		}
	}
	// The exact tail is always present.
	if d.Points[len(d.Points)-1].V != n-1 {
		t.Fatalf("last exported point = %v, want %d", d.Points[len(d.Points)-1], n-1)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("h", []float64{0, 1, 2, 4})
	for _, v := range []float64{0, 0, 1, 2, 3, 4, 9, 100} {
		h.Add(v)
	}
	d := h.Export()
	if d.Count != 8 || d.Overflow != 2 {
		t.Fatalf("count=%d overflow=%d", d.Count, d.Overflow)
	}
	wantCounts := []int64{2, 1, 1, 2} // le0:2, le1:1, le2:1, le4: {3,4}
	for i, b := range d.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, b.Count, wantCounts[i], d.Buckets)
		}
	}
	if d.Max != 100 {
		t.Fatalf("max = %v", d.Max)
	}
	if got := d.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := d.Quantile(0.99); got != 100 { // lands in overflow → exact max
		t.Fatalf("p99 = %v, want 100", got)
	}
	if m := d.Mean(); math.Abs(m-119.0/8) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramMergeClone(t *testing.T) {
	a := NewHistogram("h", []float64{1, 2}).Export()
	h := NewHistogram("h", []float64{1, 2})
	for _, v := range []float64{1, 2, 5} {
		h.Add(v)
	}
	b := h.Export()
	m := b.Clone()
	m.Merge(&b)
	if m.Count != 6 || m.Buckets[0].Count != 2 || m.Overflow != 2 {
		t.Fatalf("merged = %+v", m)
	}
	// Clone is deep: merging did not touch the source.
	if b.Buckets[0].Count != 1 {
		t.Fatalf("Merge mutated its argument: %+v", b)
	}
	a.Merge(&b)
	if a.Count != 3 {
		t.Fatalf("merge into empty = %+v", a)
	}
}

// fakeInterval builds an Interval with two coflows on a 4-port fabric:
// c0 has rate, c1 is head-of-line blocked.
func fakeInterval(idx int) *Interval {
	c0 := coflow.New(&coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 2, Size: 100}, {Src: 1, Dst: 2, Size: 100},
	}})
	c1 := coflow.New(&coflow.Spec{ID: 2, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 3, Size: 50},
	}})
	flowCap, _ := coflow.EnsureIndexed([]*coflow.CoFlow{c0, c1})
	alloc := sched.NewRateVec(flowCap)
	alloc.Set(c0.Flows[0].Idx, 100)
	alloc.Set(c0.Flows[1].Idx, 50)
	return &Interval{
		Index: idx, Now: coflow.Time(idx) * coflow.Millisecond, Delta: coflow.Millisecond,
		NumPorts: 4, PortRate: 1000,
		Active: []*coflow.CoFlow{c0, c1}, Alloc: alloc,
		AllocatedRate: 150, Admitted: 2, Completed: 0,
	}
}

func TestSuiteObserve(t *testing.T) {
	s := NewSuite(Spec{Enabled: true, Seed: 7})
	for i := 0; i < 5; i++ {
		s.Observe(fakeInterval(i))
	}
	m := s.Metrics()
	if m.Intervals != 5 || m.Sampled != 5 {
		t.Fatalf("intervals=%d sampled=%d", m.Intervals, m.Sampled)
	}
	if sr := m.FindSeries(SeriesActiveCoFlows); sr == nil || sr.Mean != 2 {
		t.Fatalf("active series = %+v", sr)
	}
	if sr := m.FindSeries(SeriesBlockedCoFlows); sr == nil || sr.Mean != 1 {
		t.Fatalf("blocked series = %+v", sr) // c1 sendable but no rate
	}
	if sr := m.FindSeries(SeriesEgressUtil); sr == nil || math.Abs(sr.Mean-150.0/4000) > 1e-12 {
		t.Fatalf("util series = %+v", sr)
	}
	// Egress occupancy: port 0 has 2 sendable flows, port 1 has 1 →
	// mean over busy ports 1.5, max 2.
	if sr := m.FindSeries(SeriesEgressQueueMean); sr == nil || sr.Mean != 1.5 {
		t.Fatalf("egress mean series = %+v", sr)
	}
	if sr := m.FindSeries(SeriesIngressQueueMax); sr == nil || sr.Max != 2 {
		t.Fatalf("ingress max series = %+v", sr) // port 2 receives 2 flows
	}
	// Both coflows block each other via shared port 0 → k_c = 1 for
	// each, every interval.
	h := m.FindHistogram(HistContention)
	if h == nil || h.Count != 10 || h.Quantile(0.5) != 1 {
		t.Fatalf("contention hist = %+v", h)
	}
	// Progress series exist for both coflows (default cap 4).
	if sr := m.FindSeries(ProgressPrefix + "1"); sr == nil || sr.Count != 5 {
		t.Fatalf("progress/1 = %+v", sr)
	}
	// Export is valid JSON.
	if _, err := json.Marshal(m); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteStride(t *testing.T) {
	s := NewSuite(Spec{Enabled: true, Stride: 4, Seed: 1})
	for i := 0; i < 10; i++ {
		s.Observe(fakeInterval(i))
	}
	m := s.Metrics()
	if m.Intervals != 10 || m.Sampled != 3 { // indexes 0, 4, 8
		t.Fatalf("intervals=%d sampled=%d, want 10/3", m.Intervals, m.Sampled)
	}
}

func TestSuiteProgressCap(t *testing.T) {
	s := NewSuite(Spec{Enabled: true, ProgressCoFlows: 1, Seed: 1})
	s.Observe(fakeInterval(0))
	m := s.Metrics()
	if sr := m.FindSeries(ProgressPrefix + "2"); sr != nil {
		t.Fatal("progress cap not enforced")
	}
	if sr := m.FindSeries(ProgressPrefix + "1"); sr == nil {
		t.Fatal("first coflow not tracked")
	}
}

// TestSuiteDeterminism: identical observation streams produce
// byte-identical exports for the same spec seed.
func TestSuiteDeterminism(t *testing.T) {
	export := func(seed int64) []byte {
		s := NewSuite(Spec{Enabled: true, Seed: seed, RingCap: 4, ReservoirCap: 4})
		for i := 0; i < 500; i++ {
			s.Observe(fakeInterval(i))
		}
		b, err := json.Marshal(s.Metrics())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if string(export(9)) != string(export(9)) {
		t.Fatal("same seed produced different exports")
	}
}

func TestMixSeed(t *testing.T) {
	if mixSeed(1, "a") == mixSeed(1, "b") || mixSeed(1, "a") == mixSeed(2, "a") {
		t.Fatal("mixSeed collisions")
	}
	if mixSeed(1, "a") != mixSeed(1, "a") {
		t.Fatal("mixSeed unstable")
	}
}

func BenchmarkTelemetryObserve(b *testing.B) {
	s := NewSuite(Spec{Enabled: true, Seed: 1})
	iv := fakeInterval(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv.Index = i
		s.Observe(iv)
	}
}
