// Package telemetry streams per-interval time-series metrics out of
// the simulation engine. The paper's story is about *where* contention
// lives — queue buildup at ports, head-of-line blocking across a
// CoFlow's flows — and end-of-run aggregates cannot show it; this
// package makes the dynamics observable.
//
// The engine calls every attached Probe once per scheduling interval
// with an Interval observation (active set, allocation, fabric
// dimensions). The standard Suite probe derives the metrics the
// paper's narrative needs — per-port queue occupancy, fabric
// utilization, active/admitted/completed CoFlow counts, per-CoFlow
// progress, head-of-line blocking, and contention (k_c) histograms —
// and stores them in bounded memory: fixed-capacity ring buffers for
// the exact tail of each series plus deterministic downsampling
// reservoirs (seeded from the job identity) covering the whole run.
// Million-interval simulations therefore stay flat on RSS, and sweep
// exports stay byte-identical at any worker count.
package telemetry

import (
	"strconv"

	"saath/internal/coflow"
	"saath/internal/queues"
	"saath/internal/sched"
)

// Interval is the engine's observation of one scheduling round, handed
// to probes after the schedule is computed and validated but before
// bytes move. The Active slice and Alloc map are owned by the engine
// and only valid for the duration of the Observe call; probes must
// copy anything they retain.
type Interval struct {
	// Index is the 0-based scheduling round.
	Index int
	// Now is the interval's start time; Delta its length.
	Now   coflow.Time
	Delta coflow.Time

	// NumPorts and PortRate describe the fabric.
	NumPorts int
	PortRate coflow.Rate

	// Active lists the live CoFlows in arrival order.
	Active []*coflow.CoFlow
	// Alloc is the schedule for this interval: the dense per-flow rate
	// vector, keyed by Flow.Idx. It may be nil (nothing scheduled).
	Alloc *sched.RateVec

	// AllocatedRate is the total egress rate handed out this interval,
	// accumulated by the engine in deterministic flow order (the PR 1
	// determinism fix: sorted, not map-order, float accumulation).
	AllocatedRate float64

	// Admitted counts CoFlows released to the scheduler so far;
	// Completed counts CoFlows retired so far.
	Admitted  int
	Completed int
}

// Capacity returns the aggregate egress capacity of the fabric.
func (iv *Interval) Capacity() float64 {
	return float64(iv.PortRate) * float64(iv.NumPorts)
}

// Utilization returns the fraction of aggregate egress capacity the
// interval's schedule hands out.
func (iv *Interval) Utilization() float64 {
	if c := iv.Capacity(); c > 0 {
		return iv.AllocatedRate / c
	}
	return 0
}

// Probe receives one observation per scheduling interval. Observe is
// called synchronously from the engine's run loop — in the tick engine
// inline between scheduling and byte movement, in the event engine as
// a probe-emission event at the same point of the same interval, so
// the observation sequence is identical in both modes. Implementations
// need no locking (one engine, one goroutine) but must not retain the
// Interval's slices or maps.
type Probe interface {
	Observe(iv *Interval)
}

// Spec configures a Suite. The zero value is disabled; set Enabled and
// leave the rest zero for defaults.
type Spec struct {
	// Enabled turns collection on. A disabled spec builds no probe.
	Enabled bool

	// Stride samples every Nth scheduling interval (<=1: every
	// interval). Striding bounds collection cost on long runs; it is
	// keyed off the interval index, so it is deterministic.
	Stride int

	// RingCap bounds each series' exact-tail ring buffer (default 256).
	RingCap int

	// ReservoirCap bounds each series' whole-run downsampling
	// reservoir (default 256).
	ReservoirCap int

	// ProgressCoFlows bounds the number of per-CoFlow progress series
	// (the first N admitted CoFlows are tracked; default 4, negative
	// disables).
	ProgressCoFlows int

	// Seed drives the downsampling reservoirs. Sweep jobs derive it
	// from the job identity so exported metrics are reproducible and
	// independent of worker interleaving.
	Seed int64

	// QueueTransitions enables the Fig. 4-style queue-transition
	// tracker: per-interval counts of CoFlow promotions/demotions
	// between the priority queues of TransitionQueues, plus the
	// queue-level histogram. Memory is bounded by the live CoFlow
	// index space.
	QueueTransitions bool

	// TransitionQueues is the priority-queue ladder the tracker places
	// CoFlows into (zero value: queues.Default()). Pass the
	// scheduler's own ladder to observe the exact queues it schedules
	// from.
	TransitionQueues queues.Config

	// PerFlowPlacement selects Saath's per-flow threshold rule (Eq. 1)
	// for transition placement; false uses Aalo's total-bytes rule.
	PerFlowPlacement bool

	// PortHeatmap enables the per-port occupancy heatmaps: for every
	// egress and ingress port, a bounded histogram of its sendable-flow
	// occupancy across sampled intervals.
	PortHeatmap bool
}

func (s Spec) withDefaults() Spec {
	if s.Stride < 1 {
		s.Stride = 1
	}
	if s.RingCap <= 0 {
		s.RingCap = 256
	}
	if s.ReservoirCap <= 0 {
		s.ReservoirCap = 256
	}
	if s.ProgressCoFlows == 0 {
		s.ProgressCoFlows = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.QueueTransitions {
		// Normalize the ladder field by field (mirroring
		// sched.Params.Normalize): a partially specified config — say
		// NumQueues set but StartThreshold left zero — would otherwise
		// place every CoFlow in the last queue forever and silently
		// produce degenerate transition telemetry.
		def := queues.Default()
		if s.TransitionQueues.NumQueues < 1 {
			s.TransitionQueues.NumQueues = def.NumQueues
		}
		if s.TransitionQueues.StartThreshold <= 0 {
			s.TransitionQueues.StartThreshold = def.StartThreshold
		}
		if s.TransitionQueues.Growth <= 1 {
			s.TransitionQueues.Growth = def.Growth
		}
	}
	return s
}

// Canonical series names recorded by the Suite.
const (
	SeriesActiveCoFlows    = "active_coflows"
	SeriesAdmittedCoFlows  = "admitted_coflows"
	SeriesCompletedCoFlows = "completed_coflows"
	SeriesEgressUtil       = "egress_utilization"
	SeriesEgressQueueMean  = "egress_queue_mean"
	SeriesEgressQueueMax   = "egress_queue_max"
	SeriesIngressQueueMean = "ingress_queue_mean"
	SeriesIngressQueueMax  = "ingress_queue_max"
	SeriesQueuedBytes      = "queued_bytes"
	SeriesBlockedCoFlows   = "blocked_coflows"
	// SeriesQueuePromotions / SeriesQueueDemotions count per-interval
	// CoFlow movements between priority queues (Spec.QueueTransitions).
	SeriesQueuePromotions = "queue_promotions"
	SeriesQueueDemotions  = "queue_demotions"
	// ProgressPrefix prefixes per-CoFlow progress series ("progress/<id>").
	ProgressPrefix = "progress/"
)

// Canonical histogram names recorded by the Suite.
const (
	HistEgressOccupancy  = "egress_queue_occupancy"
	HistIngressOccupancy = "ingress_queue_occupancy"
	HistContention       = "coflow_contention"
	// HistQueueLevel is the distribution of priority-queue levels over
	// (CoFlow, sampled interval) pairs (Spec.QueueTransitions).
	HistQueueLevel = "queue_level"
)

// Canonical heatmap names recorded by the Suite (Spec.PortHeatmap).
const (
	HeatmapEgressOccupancy  = "egress_port_occupancy"
	HeatmapIngressOccupancy = "ingress_port_occupancy"
)

// progressEntry tracks one CoFlow's progress series.
type progressEntry struct {
	series *Series
	total  coflow.Bytes
}

// Suite is the standard collector set. It implements Probe; attach it
// to a simulation via sim.Config.Probes and read the result with
// Metrics. A Suite observes exactly one run — do not share one across
// simulations.
type Suite struct {
	spec Spec

	order  []*Series // stable export order
	byName map[string]*Series

	hEgress     *Histogram
	hIngress    *Histogram
	hContention *Histogram

	progress     map[coflow.CoFlowID]*progressEntry
	progressIDs  []coflow.CoFlowID // insertion order for export stability
	intervals    int64             // intervals observed (pre-stride)
	sampled      int64             // intervals recorded (post-stride)
	egOcc, inOcc []int             // per-port scratch, reused

	// cindex maintains k_c incrementally across observations instead of
	// rebuilding the full port-occupancy map every sampled interval.
	cindex *sched.ContentionIndex

	// Fig. 4-style consumers, nil unless enabled in the spec.
	qt     *queueTracker
	heatEg *Heatmap
	heatIn *Heatmap
}

// NewSuite builds the standard collector set from spec (defaults
// applied). The spec's Enabled flag is not consulted — callers decide
// whether to construct a Suite at all.
func NewSuite(spec Spec) *Suite {
	spec = spec.withDefaults()
	s := &Suite{
		spec:        spec,
		byName:      make(map[string]*Series),
		hEgress:     NewHistogram(HistEgressOccupancy, nil),
		hIngress:    NewHistogram(HistIngressOccupancy, nil),
		hContention: NewHistogram(HistContention, nil),
		progress:    make(map[coflow.CoFlowID]*progressEntry),
		cindex:      sched.NewContentionIndex(),
	}
	for _, d := range []struct{ name, unit string }{
		{SeriesActiveCoFlows, "coflows"},
		{SeriesAdmittedCoFlows, "coflows"},
		{SeriesCompletedCoFlows, "coflows"},
		{SeriesEgressUtil, "fraction"},
		{SeriesEgressQueueMean, "flows/port"},
		{SeriesEgressQueueMax, "flows"},
		{SeriesIngressQueueMean, "flows/port"},
		{SeriesIngressQueueMax, "flows"},
		{SeriesQueuedBytes, "bytes"},
		{SeriesBlockedCoFlows, "coflows"},
	} {
		s.addSeries(d.name, d.unit)
	}
	if spec.QueueTransitions {
		s.addSeries(SeriesQueuePromotions, "transitions")
		s.addSeries(SeriesQueueDemotions, "transitions")
		s.qt = newQueueTracker(spec.TransitionQueues, spec.PerFlowPlacement)
	}
	if spec.PortHeatmap {
		s.heatEg = NewHeatmap(HeatmapEgressOccupancy, nil)
		s.heatIn = NewHeatmap(HeatmapIngressOccupancy, nil)
	}
	return s
}

func (s *Suite) addSeries(name, unit string) *Series {
	sr := newSeries(name, unit, s.spec.RingCap, s.spec.ReservoirCap, s.spec.Seed)
	s.order = append(s.order, sr)
	s.byName[name] = sr
	return sr
}

// Series returns the named series, or nil.
func (s *Suite) Series(name string) *Series { return s.byName[name] }

// Observe implements Probe.
func (s *Suite) Observe(iv *Interval) {
	s.intervals++
	if s.spec.Stride > 1 && iv.Index%s.spec.Stride != 0 {
		return
	}
	s.sampled++
	now := iv.Now

	// Per-port queue occupancy: sendable flows pending at each egress
	// (sender) and ingress (receiver) port, plus total queued bytes and
	// head-of-line blocking (CoFlows with sendable flows but no rate).
	if cap(s.egOcc) < iv.NumPorts {
		s.egOcc = make([]int, iv.NumPorts)
		s.inOcc = make([]int, iv.NumPorts)
	}
	eg, in := s.egOcc[:iv.NumPorts], s.inOcc[:iv.NumPorts]
	for i := range eg {
		eg[i], in[i] = 0, 0
	}
	var queuedBytes coflow.Bytes
	blocked := 0
	for _, c := range iv.Active {
		sendable := 0
		var granted float64
		for _, f := range c.Flows {
			if !f.Sendable() {
				continue
			}
			sendable++
			eg[f.Src]++
			in[f.Dst]++
			queuedBytes += f.Remaining()
			if r, ok := iv.Alloc.Get(f.Idx); ok {
				granted += float64(r)
			}
		}
		if sendable > 0 && granted <= 0 {
			blocked++
		}
	}
	egMean, egMax := busyStats(eg, s.hEgress)
	inMean, inMax := busyStats(in, s.hIngress)
	if s.heatEg != nil {
		s.heatEg.Observe(eg)
		s.heatIn.Observe(in)
	}

	s.byName[SeriesActiveCoFlows].Record(now, float64(len(iv.Active)))
	s.byName[SeriesAdmittedCoFlows].Record(now, float64(iv.Admitted))
	s.byName[SeriesCompletedCoFlows].Record(now, float64(iv.Completed))
	s.byName[SeriesEgressUtil].Record(now, iv.Utilization())
	s.byName[SeriesEgressQueueMean].Record(now, egMean)
	s.byName[SeriesEgressQueueMax].Record(now, egMax)
	s.byName[SeriesIngressQueueMean].Record(now, inMean)
	s.byName[SeriesIngressQueueMax].Record(now, inMax)
	s.byName[SeriesQueuedBytes].Record(now, float64(queuedBytes))
	s.byName[SeriesBlockedCoFlows].Record(now, float64(blocked))

	// Queue transitions: place every CoFlow into the observed
	// priority-queue ladder and count movements since the previous
	// sampled interval (Fig. 4-style dynamics).
	if s.qt != nil {
		promotions, demotions := s.qt.observe(iv.Active)
		s.byName[SeriesQueuePromotions].Record(now, float64(promotions))
		s.byName[SeriesQueueDemotions].Record(now, float64(demotions))
	}

	// Contention histogram: k_c per active CoFlow, the LCoF ordering
	// signal (§3 idea 3), maintained incrementally and fed in the
	// deterministic Active order.
	s.cindex.Sync(iv.Active)
	for _, c := range iv.Active {
		s.hContention.Add(float64(s.cindex.K(c)))
	}

	// Per-CoFlow progress for the first N admitted CoFlows.
	if s.spec.ProgressCoFlows > 0 {
		for _, c := range iv.Active {
			e, ok := s.progress[c.ID()]
			if !ok {
				if len(s.progress) >= s.spec.ProgressCoFlows {
					continue
				}
				e = &progressEntry{
					series: newSeries(progressName(c.ID()), "fraction",
						s.spec.RingCap, s.spec.ReservoirCap, s.spec.Seed),
					total: c.Spec.TotalSize(),
				}
				s.progress[c.ID()] = e
				s.progressIDs = append(s.progressIDs, c.ID())
			}
			frac := 1.0
			if e.total > 0 {
				frac = float64(c.TotalSent()) / float64(e.total)
			}
			e.series.Record(now, frac)
		}
	}
}

// busyStats feeds every busy port's occupancy into h and returns the
// mean over busy ports and the max over all ports. Idle ports are
// excluded from the mean and histogram so sparse clusters do not drown
// the contention signal in zeros.
func busyStats(occ []int, h *Histogram) (mean, max float64) {
	busy, sum := 0, 0
	for _, n := range occ {
		if n == 0 {
			continue
		}
		busy++
		sum += n
		if f := float64(n); f > max {
			max = f
		}
		h.Add(float64(n))
	}
	if busy > 0 {
		mean = float64(sum) / float64(busy)
	}
	return mean, max
}

func progressName(id coflow.CoFlowID) string {
	return ProgressPrefix + strconv.FormatInt(int64(id), 10)
}
