package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"

	"saath/internal/coflow"
	"saath/internal/queues"
	"saath/internal/sched"
)

// testLadder is a tiny 3-queue ladder with thresholds 100 and 1000
// bytes, so tests move coflows between queues with small byte counts.
func testLadder() queues.Config {
	return queues.Config{NumQueues: 3, StartThreshold: 100, Growth: 10}
}

// trackedCoflow builds an indexed two-flow coflow.
func trackedCoflow(id coflow.CoFlowID) *coflow.CoFlow {
	c := coflow.New(&coflow.Spec{ID: id, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 2, Size: 100 * coflow.MB},
		{Src: 1, Dst: 2, Size: 100 * coflow.MB},
	}})
	return c
}

func TestQueueTrackerTransitions(t *testing.T) {
	qt := newQueueTracker(testLadder(), false)
	c := trackedCoflow(1)
	coflow.EnsureIndexed([]*coflow.CoFlow{c})
	active := []*coflow.CoFlow{c}

	// First sight: entering the ladder is not a transition.
	if p, d := qt.observe(active); p != 0 || d != 0 {
		t.Fatalf("first observation counted transitions: %d/%d", p, d)
	}
	// No progress: no transition.
	if p, d := qt.observe(active); p != 0 || d != 0 {
		t.Fatalf("idle observation counted transitions: %d/%d", p, d)
	}
	// Total bytes cross the q0 threshold (100): one demotion.
	c.Flows[0].Sent = 150
	if p, d := qt.observe(active); p != 0 || d != 1 {
		t.Fatalf("q0→q1 demotion: %d/%d, want 0/1", p, d)
	}
	// Cross the q1 threshold (1000): another demotion.
	c.Flows[1].Sent = 2000
	if p, d := qt.observe(active); p != 0 || d != 1 {
		t.Fatalf("q1→q2 demotion: %d/%d, want 0/1", p, d)
	}
	// A restart resets progress: promotion back to q0.
	c.Flows[0].Sent, c.Flows[1].Sent = 0, 0
	if p, d := qt.observe(active); p != 1 || d != 0 {
		t.Fatalf("restart promotion: %d/%d, want 1/0", p, d)
	}
	// The level histogram saw every placement: q0,q0,q1,q2,q0.
	lvl := qt.level.Export()
	if lvl.Count != 5 || lvl.Buckets[0].Count != 3 || lvl.Buckets[1].Count != 1 || lvl.Buckets[2].Count != 1 {
		t.Fatalf("level histogram = %+v", lvl)
	}
}

// TestQueueTrackerPlacementRules: Saath's per-flow rule (Eq. 1)
// demotes on max-sent × width; Aalo's on total bytes — the per-flow
// rule fires earlier on skewed progress.
func TestQueueTrackerPlacementRules(t *testing.T) {
	c := trackedCoflow(1)
	coflow.EnsureIndexed([]*coflow.CoFlow{c})
	c.Flows[0].Sent = 60 // total 60 < 100, but m_c·N = 120 ≥ 100

	total := newQueueTracker(testLadder(), false)
	if q := total.place(c); q != 0 {
		t.Fatalf("total-bytes placement = %d, want 0", q)
	}
	perFlow := newQueueTracker(testLadder(), true)
	if q := perFlow.place(c); q != 1 {
		t.Fatalf("per-flow placement = %d, want 1", q)
	}
}

// TestQueueTrackerIndexRecycling: a new CoFlow occupying a departed
// CoFlow's dense index slot must not inherit its predecessor's queue.
func TestQueueTrackerIndexRecycling(t *testing.T) {
	qt := newQueueTracker(testLadder(), false)
	space := coflow.NewIndexSpace()
	old := trackedCoflow(1)
	space.Assign(old)
	oldIdx := old.Idx
	old.Flows[0].Sent = 5000 // deep in q2
	qt.observe([]*coflow.CoFlow{old})
	space.Release(old)

	fresh := trackedCoflow(2)
	space.Assign(fresh) // reuses old's index slot
	if fresh.Idx != oldIdx {
		t.Fatalf("test setup: index not recycled (%d vs %d)", fresh.Idx, oldIdx)
	}
	// A fresh coflow in q0 at a recycled slot: no phantom promotion.
	if p, d := qt.observe([]*coflow.CoFlow{fresh}); p != 0 || d != 0 {
		t.Fatalf("recycled slot counted transitions: %d/%d", p, d)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("hm", []float64{0, 1, 4})
	h.Observe([]int{0, 1, 3})
	h.Observe([]int{0, 2, 9})
	d := h.Export()
	if d.Intervals != 2 || len(d.Ports) != 3 {
		t.Fatalf("dump = %+v", d)
	}
	p0, p1, p2 := d.Ports[0], d.Ports[1], d.Ports[2]
	if p0.Sum != 0 || p0.Counts[0] != 2 {
		t.Fatalf("port 0 = %+v", p0)
	}
	if p1.Sum != 3 || p1.Max != 2 || p1.Counts[1] != 1 || p1.Counts[2] != 1 {
		t.Fatalf("port 1 = %+v", p1)
	}
	if p2.Sum != 12 || p2.Max != 9 || p2.Counts[2] != 1 || p2.Overflow != 1 {
		t.Fatalf("port 2 = %+v", p2)
	}

	// Merge doubles everything; Clone keeps the source intact.
	m := d.Clone()
	m.Merge(&d)
	if m.Intervals != 4 || m.Ports[2].Sum != 24 || m.Ports[2].Overflow != 2 || m.Ports[2].Max != 9 {
		t.Fatalf("merged = %+v", m.Ports[2])
	}
	if d.Ports[2].Sum != 12 {
		t.Fatal("Merge mutated its argument")
	}
}

// suiteWithTransitions drives a Suite with the spatial consumers
// enabled over a three-interval story: idle, progress past the q0
// threshold, restart.
func suiteWithTransitions(t *testing.T, spec Spec) *Metrics {
	t.Helper()
	s := NewSuite(spec)
	c := trackedCoflow(1)
	flowCap, _ := coflow.EnsureIndexed([]*coflow.CoFlow{c})
	alloc := sched.NewRateVec(flowCap)
	iv := &Interval{
		Index: 0, Delta: coflow.Millisecond, NumPorts: 4, PortRate: 1000,
		Active: []*coflow.CoFlow{c}, Alloc: alloc, Admitted: 1,
	}
	s.Observe(iv)
	c.Flows[0].Sent = 150
	iv.Index, iv.Now = 1, coflow.Millisecond
	s.Observe(iv)
	c.Flows[0].Sent = 0
	iv.Index, iv.Now = 2, 2*coflow.Millisecond
	s.Observe(iv)
	return s.Metrics()
}

func TestSuiteQueueTransitionsAndHeatmap(t *testing.T) {
	m := suiteWithTransitions(t, Spec{
		Enabled: true, Seed: 3,
		QueueTransitions: true, TransitionQueues: testLadder(),
		PortHeatmap: true,
	})
	demos := m.FindSeries(SeriesQueueDemotions)
	promos := m.FindSeries(SeriesQueuePromotions)
	if demos == nil || promos == nil {
		t.Fatal("transition series missing")
	}
	if got := demos.Mean * float64(demos.Count); got != 1 {
		t.Fatalf("total demotions = %v, want 1", got)
	}
	if got := promos.Mean * float64(promos.Count); got != 1 {
		t.Fatalf("total promotions = %v, want 1", got)
	}
	if h := m.FindHistogram(HistQueueLevel); h == nil || h.Count != 3 {
		t.Fatalf("queue-level histogram = %+v", h)
	}
	eg := m.FindHeatmap(HeatmapEgressOccupancy)
	in := m.FindHeatmap(HeatmapIngressOccupancy)
	if eg == nil || in == nil {
		t.Fatal("heatmaps missing")
	}
	if eg.Intervals != 3 || len(eg.Ports) != 4 {
		t.Fatalf("egress heatmap = %+v", eg)
	}
	// Both flows converge on port 2: ingress occupancy 2 every interval.
	if p := in.Ports[2]; p.Sum != 6 || p.Max != 2 {
		t.Fatalf("ingress port 2 = %+v", p)
	}
	// The heatmap drilldown renders, busiest port first.
	tbl := m.HeatmapTable("hm", HeatmapIngressOccupancy, 2)
	if tbl == nil || len(tbl.Rows) == 0 || tbl.Rows[0][0] != "2" {
		t.Fatalf("heatmap table = %+v", tbl)
	}
	// Everything round-trips through JSON without loss (the shard-merge
	// byte-identity contract).
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Metrics
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("metrics with heatmaps do not round-trip through JSON")
	}
}

// TestSuiteTransitionsDisabledByDefault: the default spec records none
// of the spatial consumers — no extra series, histograms or heatmaps.
func TestSuiteTransitionsDisabledByDefault(t *testing.T) {
	m := suiteWithTransitions(t, Spec{Enabled: true, Seed: 3})
	if m.FindSeries(SeriesQueueDemotions) != nil || m.FindHistogram(HistQueueLevel) != nil {
		t.Fatal("transition telemetry collected without QueueTransitions")
	}
	if len(m.Heatmaps) != 0 {
		t.Fatal("heatmaps collected without PortHeatmap")
	}
}

func TestHeatmapRowsOrdering(t *testing.T) {
	h := NewHeatmap("hm", nil)
	h.Observe([]int{5, 0, 9, 9})
	d := h.Export()
	rows := HeatmapRows(&d, 2, func(p *HeatmapPortDump) string { return "p" })
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (cap)", len(rows))
	}
	// Ports 2 and 3 tie at sum 9: lower port wins; idle port 1 dropped.
	if rows[0].Mean != 9 || rows[1].Mean != 9 {
		t.Fatalf("row means = %v/%v", rows[0].Mean, rows[1].Mean)
	}
	all := HeatmapRows(&d, 0, func(p *HeatmapPortDump) string { return "p" })
	if len(all) != 3 {
		t.Fatalf("uncapped rows = %d, want 3 busy ports", len(all))
	}
}

// TestQueueTrackerSpecDefaults: enabling transitions with a zero
// ladder falls back to the paper's default queue configuration, and a
// partially specified ladder is normalized field by field (an
// unfilled StartThreshold would otherwise pin every CoFlow to the
// last queue and zero out the transition series).
func TestQueueTrackerSpecDefaults(t *testing.T) {
	spec := Spec{Enabled: true, QueueTransitions: true}.withDefaults()
	if !reflect.DeepEqual(spec.TransitionQueues, queues.Default()) {
		t.Fatalf("TransitionQueues = %+v", spec.TransitionQueues)
	}
	partial := Spec{Enabled: true, QueueTransitions: true,
		TransitionQueues: queues.Config{NumQueues: 8}}.withDefaults()
	if partial.TransitionQueues.NumQueues != 8 {
		t.Fatalf("explicit NumQueues lost: %+v", partial.TransitionQueues)
	}
	if err := partial.TransitionQueues.Validate(); err != nil {
		t.Fatalf("partial ladder not normalized: %v", err)
	}
}
