package fleet

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Chaos injects worker faults at the driver/backend boundary. Every
// fault targets the FIRST attempt of its shard, so a correct
// retry/re-queue path recovers and the merged output stays
// byte-identical to a fault-free run; what the fault exercised is
// recorded in the fleet report. A value of -1 (the NewChaos default)
// disables a fault.
type Chaos struct {
	// KillShard: kill the worker process right after its first progress
	// event — a mid-run crash with partial work done.
	KillShard int
	// HangShard: keep the process alive but stop delivering its events
	// after the first progress event, so only the driver's stall
	// detector can save the shard.
	HangShard int
	// CorruptShard: mangle the shard's dump payload in flight; the
	// driver's validation must reject it and retry.
	CorruptShard int
	// SlowShard: delay every event by SlowDelay — a straggling worker,
	// not a dead one. The shard must still succeed on attempt 1.
	SlowShard int
	// SlowDelay is the per-event delay for SlowShard (default 20ms).
	SlowDelay time.Duration
}

// NewChaos returns a Chaos with every fault disabled.
func NewChaos() *Chaos {
	return &Chaos{KillShard: -1, HangShard: -1, CorruptShard: -1, SlowShard: -1}
}

// ParseChaos parses the CLI fault spec: comma-separated mode=shard
// pairs, e.g. "kill=0,corrupt=3". Modes: kill, hang, corrupt, slow.
func ParseChaos(spec string) (*Chaos, error) {
	c := NewChaos()
	if spec == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		mode, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fleet: bad chaos spec %q (want mode=shard)", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("fleet: bad chaos shard in %q", part)
		}
		switch mode {
		case "kill":
			c.KillShard = n
		case "hang":
			c.HangShard = n
		case "corrupt":
			c.CorruptShard = n
		case "slow":
			c.SlowShard = n
		default:
			return nil, fmt.Errorf("fleet: unknown chaos mode %q (kill|hang|corrupt|slow)", mode)
		}
	}
	return c, nil
}

// describe lists the active faults for the fleet report.
func (c *Chaos) describe() []string {
	if c == nil {
		return nil
	}
	var out []string
	add := func(mode string, shard int) {
		if shard >= 0 {
			out = append(out, fmt.Sprintf("%s=%d", mode, shard))
		}
	}
	add("kill", c.KillShard)
	add("hang", c.HangShard)
	add("corrupt", c.CorruptShard)
	add("slow", c.SlowShard)
	return out
}

// wrap interposes the fault, if any, on a freshly launched worker.
func (c *Chaos) wrap(p Proc, t Task) Proc {
	if c == nil || t.Attempt != 1 {
		return p
	}
	var mode chaosMode
	switch t.Shard {
	case c.KillShard:
		mode = chaosKill
	case c.HangShard:
		mode = chaosHang
	case c.CorruptShard:
		mode = chaosCorrupt
	case c.SlowShard:
		mode = chaosSlow
	default:
		return p
	}
	delay := c.SlowDelay
	if delay <= 0 {
		delay = 20 * time.Millisecond
	}
	cp := &chaosProc{Proc: p, mode: mode, delay: delay}
	cp.rd, cp.wr = io.Pipe()
	go cp.relay()
	return cp
}

type chaosMode int

const (
	chaosKill chaosMode = iota + 1
	chaosHang
	chaosCorrupt
	chaosSlow
)

// chaosProc re-streams the inner worker's events through a pipe,
// applying its fault. Kill and Wait pass through to the real process —
// the driver's remedies act on the actual worker.
type chaosProc struct {
	Proc
	mode  chaosMode
	delay time.Duration
	rd    *io.PipeReader
	wr    *io.PipeWriter
}

func (p *chaosProc) Events() io.ReadCloser { return p.rd }

// relay forwards inner events until the fault triggers. It always
// drains the inner stream to EOF so the worker never blocks on a full
// stdout pipe unless the fault wants exactly that.
func (p *chaosProc) relay() {
	inner := NewEventReader(p.Proc.Events())
	progressed := 0
	silent := false
	for {
		ev, err := inner.Next()
		if err != nil {
			// Inner stream over (EOF, kill, or corrupt-at-source): surface
			// the same end to the driver unless we went silent (hang keeps
			// the pipe open so the driver sees a stall, not an exit).
			if !silent {
				p.wr.CloseWithError(err)
			}
			return
		}
		if ev.Type == EventProgress {
			progressed++
		}
		switch p.mode {
		case chaosKill:
			if progressed >= 1 {
				forward(p.wr, ev)
				p.Proc.Kill()
				// End the stream at the kill point: a fast worker may have
				// buffered further events (even its dump) before dying, but a
				// crashed process's output stops where the crash landed.
				p.wr.Close()
				for {
					if _, err := inner.Next(); err != nil {
						return
					}
				}
			}
		case chaosHang:
			if progressed >= 1 && !silent {
				forward(p.wr, ev)
				silent = true // alive but mute from here on
				continue
			}
			if silent {
				continue // drain without forwarding
			}
		case chaosCorrupt:
			if ev.Type == EventDump && ev.Dump != nil && ev.Dump.Dump != nil {
				// Flip the grid fingerprint: parses fine, fails validation.
				ev.Dump.Dump.KeysHash = strings.Repeat("deadbeef", 8)
			}
		case chaosSlow:
			time.Sleep(p.delay)
		}
		forward(p.wr, ev)
	}
}

// forward re-encodes one event onto the pipe; a closed pipe (driver
// already gave up on this attempt) just ends the relay's usefulness.
func forward(w io.Writer, ev *Event) {
	WriteEvent(w, ev)
}

// chaosBackend wraps a Backend so every launched proc passes through
// the fault injector.
type chaosBackend struct {
	Backend
	chaos *Chaos
}

func (b *chaosBackend) Launch(ctx context.Context, t Task) (Proc, error) {
	p, err := b.Backend.Launch(ctx, t)
	if err != nil {
		return nil, err
	}
	return b.chaos.wrap(p, t), nil
}
