package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"saath/internal/coflow"
	"saath/internal/obs"
	"saath/internal/study"
	"saath/internal/sweep"
	"saath/internal/trace"

	_ "saath/internal/core"
	_ "saath/internal/sched/aalo"
	_ "saath/internal/sched/uctcp"
	_ "saath/internal/sched/varys"
)

// The chaos goldens need real worker processes. Rather than building
// saath-sim, the tests re-exec this test binary: TestMain detects the
// child env var and routes straight into ChildMain, so the workers
// share the test package's registered studies and scheduler set.
const childEnv = "SAATH_FLEET_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		os.Exit(ChildMain(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// fleetSource is a tiny synthetic workload so a full study runs in
// seconds even as 8 shards under -race.
func fleetSource(name string, ports int) sweep.TraceSource {
	return sweep.SynthSource(name, func(seed int64) *trace.Trace {
		return trace.Synthesize(trace.SynthConfig{
			Seed: seed, NumPorts: ports, NumCoFlows: 16,
			MeanInterArrival: 20 * coflow.Millisecond,
			SingleFlowFrac:   0.25, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
			SmallFracNarrow: 0.8, SmallFracWide: 0.5,
			MinSmall: 100 * coflow.KB, MaxSmall: coflow.MB,
			MinLarge: coflow.MB, MaxLarge: 20 * coflow.MB,
		}, name)
	})
}

// headline-fleet mirrors the catalog's headline study — two workloads
// × the paper's four schedulers × three seeds, aalo baseline, the same
// derived tables — shrunk to test scale so the chaos goldens can run
// it repeatedly.
func init() {
	study.Register("headline-fleet",
		"headline-shaped study at test scale for fleet chaos goldens",
		func() (*study.Study, error) {
			return study.New("headline-fleet",
				study.WithTraces(fleetSource("fb-tiny", 10), fleetSource("osp-tiny", 14)),
				study.WithSchedulers("aalo", "varys", "uc-tcp", "saath"),
				study.WithSeeds(1, 2, 3),
				study.WithBaseline("aalo"),
				study.WithDerived(
					study.DerivedCCT("headline-fleet — per-scheduler CCT"),
					study.DerivedSpeedup("headline-fleet — per-coflow speedup over aalo", ""),
					study.DerivedCCTCDF("headline-fleet", 25),
				),
			)
		})
}

func buildStudy(t *testing.T) *study.Study {
	t.Helper()
	st, err := study.Build("headline-fleet")
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// selfExec launches this test binary as the worker.
func selfExec(t *testing.T) *LocalExec {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return &LocalExec{Bin: self, Env: []string{childEnv + "=1"}}
}

// singleProcessBytes is the golden: the study's aggregate export from
// one in-process run. Every fleet run must reproduce it byte for byte.
func singleProcessBytes(t *testing.T, st *study.Study) []byte {
	t.Helper()
	res, err := st.Run(context.Background(), study.Pool{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Summary().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func fleetOptions(t *testing.T, chaos *Chaos) Options {
	return Options{
		Backend:        selfExec(t),
		Workers:        4,
		Tasks:          8,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		Deadline:       2 * time.Minute,
		StallTimeout:   30 * time.Second,
		WorkerParallel: 2,
		Chaos:          chaos,
	}
}

// runGolden executes the fleet run and asserts byte-identity against
// the single-process export, returning the report for fault forensics.
func runGolden(t *testing.T, opts Options) *obs.FleetReport {
	t.Helper()
	st := buildStudy(t)
	want := singleProcessBytes(t, st)
	out, err := Run(context.Background(), buildStudy(t), opts)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	var got bytes.Buffer
	if err := out.Result.Summary().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Errorf("fleet output differs from single-process run (%d vs %d bytes)", got.Len(), len(want))
	}
	if out.Totals.Jobs != len(st.Jobs()) {
		t.Errorf("fleet totals cover %d jobs, study has %d", out.Totals.Jobs, len(st.Jobs()))
	}
	return out.Report
}

// shardOutcomes flattens one shard's attempt outcomes.
func shardOutcomes(r *obs.FleetReport, shard int) []string {
	var out []string
	for _, a := range r.Shards[shard].Attempts {
		out = append(out, a.Outcome)
	}
	return out
}

// TestFleetCleanGolden: the headline-shaped study on 4 local-exec
// workers, 8 shards, no faults — byte-identical to single-process,
// every shard first-attempt ok.
func TestFleetCleanGolden(t *testing.T) {
	report := runGolden(t, fleetOptions(t, nil))
	if report.Retries != 0 {
		t.Errorf("clean run recorded %d retries", report.Retries)
	}
	if len(report.Shards) != 8 {
		t.Fatalf("report has %d shards, want 8", len(report.Shards))
	}
	for i := range report.Shards {
		if got := shardOutcomes(report, i); len(got) != 1 || got[0] != obs.FleetOK {
			t.Errorf("shard %d attempts = %v, want [ok]", i, got)
		}
	}
	if report.Backend != "local-exec" || report.Workers != 4 || report.Tasks != 8 {
		t.Errorf("report identity = %s/%d workers/%d tasks", report.Backend, report.Workers, report.Tasks)
	}
}

// TestFleetChaosKillGolden: a worker killed mid-run (after its first
// progress event) loses the rest of its shard; the driver must retry
// the shard on a surviving slot and still merge byte-identically.
func TestFleetChaosKillGolden(t *testing.T) {
	chaos := NewChaos()
	chaos.KillShard = 1
	report := runGolden(t, fleetOptions(t, chaos))
	got := shardOutcomes(report, 1)
	if len(got) < 2 || got[0] != obs.FleetExit || got[len(got)-1] != obs.FleetOK {
		t.Errorf("killed shard attempts = %v, want [exit ... ok]", got)
	}
	if report.Shards[1].Retries < 1 || report.Retries < 1 {
		t.Errorf("kill left no retry trace: shard retries %d, total %d",
			report.Shards[1].Retries, report.Retries)
	}
	if report.Shards[1].Attempts[0].Events < 2 {
		t.Errorf("killed attempt saw %d events, want >=2 (hello + first progress)",
			report.Shards[1].Attempts[0].Events)
	}
	if len(report.Chaos) != 1 || report.Chaos[0] != "kill=1" {
		t.Errorf("chaos record = %v", report.Chaos)
	}
	if report.Shards[1].Attempts[1].BackoffNs <= 0 {
		t.Errorf("retry recorded no backoff: %+v", report.Shards[1].Attempts[1])
	}
}

// TestFleetChaosHangGolden: a worker that stays alive but stops
// streaming must be caught by the stall detector, killed, and retried.
func TestFleetChaosHangGolden(t *testing.T) {
	chaos := NewChaos()
	chaos.HangShard = 2
	opts := fleetOptions(t, chaos)
	opts.StallTimeout = 2 * time.Second // the test's only real wait
	report := runGolden(t, opts)
	got := shardOutcomes(report, 2)
	if len(got) < 2 || got[0] != obs.FleetStalled || got[len(got)-1] != obs.FleetOK {
		t.Errorf("hung shard attempts = %v, want [stalled ... ok]", got)
	}
	if !strings.Contains(report.Shards[2].Attempts[0].Error, "stall") {
		t.Errorf("stall verdict error = %q", report.Shards[2].Attempts[0].Error)
	}
}

// TestFleetChaosCorruptGolden: a dump whose fingerprint was mangled in
// flight must be rejected by validation — never merged — and retried.
func TestFleetChaosCorruptGolden(t *testing.T) {
	chaos := NewChaos()
	chaos.CorruptShard = 3
	report := runGolden(t, fleetOptions(t, chaos))
	got := shardOutcomes(report, 3)
	if len(got) < 2 || got[0] != obs.FleetBadDump || got[len(got)-1] != obs.FleetOK {
		t.Errorf("corrupt shard attempts = %v, want [bad-dump ... ok]", got)
	}
	if !strings.Contains(report.Shards[3].Attempts[0].Error, "fingerprint") {
		t.Errorf("bad-dump verdict error = %q", report.Shards[3].Attempts[0].Error)
	}
}

// TestFleetChaosSlowGolden: a slow worker is not a dead worker — the
// shard must succeed on attempt 1, with the delay visible in the
// report's durations rather than in any retry.
func TestFleetChaosSlowGolden(t *testing.T) {
	chaos := NewChaos()
	chaos.SlowShard = 0
	chaos.SlowDelay = 30 * time.Millisecond
	report := runGolden(t, fleetOptions(t, chaos))
	if got := shardOutcomes(report, 0); len(got) != 1 || got[0] != obs.FleetOK {
		t.Errorf("slow shard attempts = %v, want [ok]", got)
	}
	if report.Retries != 0 {
		t.Errorf("slow worker caused %d retries", report.Retries)
	}
}

// TestFleetTerminalFailure: with the attempt budget exhausted the run
// errors, names the shard, and still delivers the report.
func TestFleetTerminalFailure(t *testing.T) {
	chaos := NewChaos()
	chaos.KillShard = 0
	opts := fleetOptions(t, chaos)
	opts.MaxAttempts = 1
	out, err := Run(context.Background(), buildStudy(t), opts)
	if err == nil || !strings.Contains(err.Error(), "failed terminally") {
		t.Fatalf("err = %v, want terminal shard failure", err)
	}
	if out == nil || out.Report == nil {
		t.Fatal("failure did not deliver the forensic report")
	}
	if out.Result != nil {
		t.Error("terminal failure still produced a merged result")
	}
	found := false
	for _, s := range out.Report.Failed {
		if s == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("report.Failed = %v, want shard 0", out.Report.Failed)
	}
}

// fakeBackend scripts a worker's event stream in-process — for driver
// paths a real child cannot produce, like config drift.
type fakeBackend struct {
	payload func(t Task) []byte
}

func (b *fakeBackend) Name() string { return "fake" }
func (b *fakeBackend) Launch(_ context.Context, t Task) (Proc, error) {
	return &fakeProc{rd: io.NopCloser(bytes.NewReader(b.payload(t)))}, nil
}

type fakeProc struct{ rd io.ReadCloser }

func (p *fakeProc) Events() io.ReadCloser { return p.rd }
func (p *fakeProc) Kill() error           { return nil }
func (p *fakeProc) Wait() error           { return nil }

// TestFleetDriftRejected: a worker announcing a different grid
// fingerprint (drifted flags or study revision) fails the shard
// immediately — no retry can fix deterministic drift.
func TestFleetDriftRejected(t *testing.T) {
	st := buildStudy(t)
	backend := &fakeBackend{payload: func(task Task) []byte {
		var buf bytes.Buffer
		WriteEvent(&buf, &Event{Type: EventHello, Hello: &Hello{
			Study: task.Study, Shard: task.Shard, Of: task.Of,
			Jobs: 3, Grid: len(st.Jobs()),
			Fingerprint: strings.Repeat("ab", 32),
		}})
		return buf.Bytes()
	}}
	out, err := Run(context.Background(), st, Options{
		Backend: backend, Workers: 2, Tasks: 2, MaxAttempts: 3,
		BackoffBase: time.Millisecond, Deadline: time.Minute, StallTimeout: time.Minute,
	})
	if err == nil {
		t.Fatal("drifted fleet run succeeded")
	}
	drifted := 0
	for i := range out.Report.Shards {
		for _, a := range out.Report.Shards[i].Attempts {
			if a.Outcome == obs.FleetDrift {
				drifted++
				if a.Attempt != 1 {
					t.Errorf("drift was retried: attempt %d", a.Attempt)
				}
				if !strings.Contains(a.Error, "fingerprint") {
					t.Errorf("drift error = %q", a.Error)
				}
			}
		}
	}
	if drifted == 0 {
		t.Error("no drift verdict in the report")
	}
}

// TestWireRoundTrip pins the event encoding: every event type survives
// a write/read cycle, and corrupt or version-skewed streams are
// rejected with descriptive errors.
func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	events := []*Event{
		{Type: EventHello, Hello: &Hello{Study: "s", Shard: 1, Of: 4, Jobs: 3, Grid: 12, Fingerprint: "ff"}},
		{Type: EventProgress, Progress: &Progress{Index: 5, Key: "k", Group: "g", Done: 1, Total: 3, ElapsedNs: 42}},
		{Type: EventError, Error: "boom"},
	}
	for _, ev := range events {
		if err := WriteEvent(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewEventReader(&buf)
	for i, want := range events {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.Type != want.Type {
			t.Errorf("event %d type = %s, want %s", i, got.Type, want.Type)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("end of stream = %v, want io.EOF", err)
	}

	rd = NewEventReader(strings.NewReader("{\"v\":1,\"type\":\"hello\"}\n###garbage"))
	if _, err := rd.Next(); err != nil {
		t.Fatalf("first event: %v", err)
	}
	if _, err := rd.Next(); err == nil || !strings.Contains(err.Error(), "corrupt event stream") {
		t.Errorf("corrupt tail = %v", err)
	}

	rd = NewEventReader(strings.NewReader("{\"v\":99,\"type\":\"hello\"}\n"))
	if _, err := rd.Next(); err == nil || !strings.Contains(err.Error(), "wire version 99") {
		t.Errorf("version skew = %v", err)
	}
}

// TestBackoffDeterministicAndBounded pins the retry schedule contract.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	base := 250 * time.Millisecond
	var prev time.Duration
	for attempt := 2; attempt <= 8; attempt++ {
		a := backoffDelay(base, 3, attempt)
		b := backoffDelay(base, 3, attempt)
		if a != b {
			t.Errorf("attempt %d: non-deterministic backoff %v vs %v", attempt, a, b)
		}
		if a <= 0 || a > maxBackoff+maxBackoff/2 {
			t.Errorf("attempt %d: backoff %v outside (0, cap]", attempt, a)
		}
		if attempt <= 5 && a <= prev/2 {
			t.Errorf("attempt %d: backoff %v not growing from %v", attempt, a, prev)
		}
		prev = a
	}
	if backoffDelay(base, 0, 2) == backoffDelay(base, 1, 2) {
		t.Log("backoff jitter collision across shards (allowed, just unlikely)")
	}
}

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("kill=0, corrupt=3")
	if err != nil {
		t.Fatal(err)
	}
	if c.KillShard != 0 || c.CorruptShard != 3 || c.HangShard != -1 || c.SlowShard != -1 {
		t.Errorf("parsed chaos = %+v", c)
	}
	if got := c.describe(); len(got) != 2 || got[0] != "kill=0" || got[1] != "corrupt=3" {
		t.Errorf("describe = %v", got)
	}
	for _, bad := range []string{"kill", "kill=-1", "kill=x", "explode=1"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
	if c, err := ParseChaos(""); err != nil || len(c.describe()) != 0 {
		t.Errorf("empty spec: %+v, %v", c, err)
	}
}

// TestSaathSimArgs pins the worker command line both saath-sim and
// ChildMain parse.
func TestSaathSimArgs(t *testing.T) {
	got := strings.Join(SaathSimArgs(Task{Study: "headline", Shard: 2, Of: 8, Engine: "event", Parallel: 3}), " ")
	want := "-study headline -shard 2/8 -shard-stream -engine event -parallel 3"
	if got != want {
		t.Errorf("args = %q, want %q", got, want)
	}
	got = strings.Join(SaathSimArgs(Task{Study: "s", Shard: 0, Of: 1}), " ")
	if got != "-study s -shard 0/1 -shard-stream" {
		t.Errorf("minimal args = %q", got)
	}
}

// TestStreamShardWire runs a real shard in-process and checks the
// stream shape end to end: hello first, per-job progress, dump last,
// and the dump validates against the study.
func TestStreamShardWire(t *testing.T) {
	st := buildStudy(t)
	sh := study.Sharded{Index: 1, Count: 8}
	var buf bytes.Buffer
	if err := StreamShard(context.Background(), st, sh, StreamOptions{Parallel: 2}, &buf); err != nil {
		t.Fatal(err)
	}
	rd := NewEventReader(&buf)
	ev, err := rd.Next()
	if err != nil || ev.Type != EventHello {
		t.Fatalf("first event = %v (%v), want hello", ev, err)
	}
	if ev.Hello.Fingerprint != st.Fingerprint() || ev.Hello.Jobs != 3 {
		t.Errorf("hello = %+v", ev.Hello)
	}
	progressed := 0
	var dump *Dump
	for {
		ev, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case EventProgress:
			progressed++
		case EventDump:
			dump = ev.Dump
		}
	}
	if progressed != 3 {
		t.Errorf("progress events = %d, want 3 (one per shard job)", progressed)
	}
	if dump == nil {
		t.Fatal("stream ended without a dump")
	}
	if err := dump.Dump.Check(st); err != nil {
		t.Errorf("streamed dump fails validation: %v", err)
	}
	if dump.Totals.Jobs != 3 || dump.Totals.Counters.Schedule.Count == 0 {
		t.Errorf("dump totals = %+v", dump.Totals)
	}
}

// TestFleetProgressMeter: the driver feeds the aggregate meter from
// wire events, deduplicating replays from retried shards — the meter
// must reach exactly total/total once.
func TestFleetProgressMeter(t *testing.T) {
	var lines bytes.Buffer
	chaos := NewChaos()
	chaos.KillShard = 1
	opts := fleetOptions(t, chaos)
	opts.Progress = sweep.NewProgressMeter(&lines, time.Nanosecond)
	st := buildStudy(t)
	opts.Progress.SetJobs(st.Jobs())
	if _, err := Run(context.Background(), st, opts); err != nil {
		t.Fatal(err)
	}
	out := lines.String()
	if !strings.Contains(out, fmt.Sprintf("%d/%d jobs", len(st.Jobs()), len(st.Jobs()))) {
		t.Errorf("meter never reached the full grid:\n%s", out)
	}
	if strings.Contains(out, fmt.Sprintf("%d/%d jobs", len(st.Jobs())+1, len(st.Jobs()))) {
		t.Errorf("meter overshot the grid (duplicate completions counted):\n%s", out)
	}
}
