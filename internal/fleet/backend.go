package fleet

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
)

// Task is one shard execution request handed to a Backend.
type Task struct {
	// Study is the registered study name the worker should build.
	Study string
	// Shard / Of locate the stripe within the driver's partition.
	Shard int
	Of    int
	// Engine and Parallel forward the corresponding worker flags.
	Engine   string
	Parallel int
	// Attempt numbers launches of this shard from 1. Informational —
	// backends may log it; the chaos harness keys on it.
	Attempt int
}

// Proc is a launched worker. The driver reads Events until a dump or
// a failure verdict, then Kills (on failure) and Waits.
type Proc interface {
	// Events is the worker's wire-event stream (its stdout).
	Events() io.ReadCloser
	// Kill forcefully terminates the worker. Idempotent enough for a
	// driver that may kill an already-dead process.
	Kill() error
	// Wait blocks until the process exits, returning its exit error.
	Wait() error
}

// Backend launches workers for tasks. Implementations must tolerate
// concurrent Launch calls — driver worker slots launch independently.
// LocalExec runs subprocesses; the interface is the seam where an ssh
// or k8s backend would slot in.
type Backend interface {
	Name() string
	Launch(ctx context.Context, t Task) (Proc, error)
}

// SaathSimArgs builds the canonical worker command line understood by
// both `saath-sim -shard-stream` and fleet.ChildMain.
func SaathSimArgs(t Task) []string {
	args := []string{
		"-study", t.Study,
		"-shard", fmt.Sprintf("%d/%d", t.Shard, t.Of),
		"-shard-stream",
	}
	if t.Engine != "" {
		args = append(args, "-engine", t.Engine)
	}
	if t.Parallel > 0 {
		args = append(args, "-parallel", strconv.Itoa(t.Parallel))
	}
	return args
}

// LocalExec launches workers as subprocesses of Bin on this machine.
type LocalExec struct {
	// Bin is the worker executable (a saath-sim binary, or any program
	// speaking the shard-stream protocol).
	Bin string
	// Args builds the command line for a task; nil uses SaathSimArgs.
	Args func(Task) []string
	// Env entries are appended to the inherited environment.
	Env []string
	// Stderr receives worker diagnostics; nil means os.Stderr.
	Stderr io.Writer
}

// Name implements Backend.
func (b *LocalExec) Name() string { return "local-exec" }

// Launch implements Backend.
func (b *LocalExec) Launch(ctx context.Context, t Task) (Proc, error) {
	argf := b.Args
	if argf == nil {
		argf = SaathSimArgs
	}
	// CommandContext is a safety net: the driver kills explicitly on
	// deadline/stall, but a canceled run must never leak workers.
	cmd := exec.CommandContext(ctx, b.Bin, argf(t)...)
	cmd.Env = append(os.Environ(), b.Env...)
	cmd.Stderr = b.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &execProc{cmd: cmd, out: stdout}, nil
}

type execProc struct {
	cmd *exec.Cmd
	out io.ReadCloser
}

func (p *execProc) Events() io.ReadCloser { return p.out }

func (p *execProc) Kill() error {
	if p.cmd.Process == nil {
		return nil
	}
	return p.cmd.Process.Kill()
}

func (p *execProc) Wait() error { return p.cmd.Wait() }
