package fleet

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"saath/internal/obs"
	"saath/internal/study"
	"saath/internal/sweep"
)

// Driver defaults. Deadline bounds one attempt's wall clock; the stall
// timeout is the liveness bar — a healthy worker emits hello
// immediately and a progress event per job, so prolonged silence means
// a hung or wedged process long before the deadline would notice.
const (
	defaultWorkers      = 4
	defaultTasksPerSlot = 4
	defaultMaxAttempts  = 3
	defaultBackoffBase  = 250 * time.Millisecond
	maxBackoff          = 10 * time.Second
	defaultDeadline     = 10 * time.Minute
	defaultStallTimeout = 30 * time.Second
)

// Options configure a fleet run.
type Options struct {
	// Backend launches workers. Required.
	Backend Backend
	// Workers is the number of concurrent worker slots (default 4).
	Workers int
	// Tasks is the shard partition size. More tasks than workers (the
	// default is 4x) keeps slots busy and shrinks the re-queue unit when
	// a worker dies. Capped at the grid size.
	Tasks int
	// MaxAttempts bounds launches per shard, including the first
	// (default 3).
	MaxAttempts int
	// BackoffBase is the first retry delay, doubling per attempt with
	// deterministic jitter (default 250ms).
	BackoffBase time.Duration
	// Deadline bounds one attempt's wall clock (default 10m).
	Deadline time.Duration
	// StallTimeout kills an attempt that stays silent — no wire event —
	// this long (default 30s).
	StallTimeout time.Duration
	// Engine / WorkerParallel forward worker flags.
	Engine         string
	WorkerParallel int
	// Chaos, when non-nil, injects faults (tests and drills).
	Chaos *Chaos
	// Progress, when non-nil, receives live aggregate progress.
	Progress *sweep.ProgressMeter
	// Log receives driver narration (retries, kills); nil discards.
	Log io.Writer
}

func (o *Options) withDefaults(grid int) Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = defaultWorkers
	}
	if out.Tasks <= 0 {
		out.Tasks = out.Workers * defaultTasksPerSlot
	}
	if out.Tasks > grid {
		out.Tasks = grid
	}
	if out.Tasks < out.Workers && out.Tasks > 0 {
		// More slots than shards just idles the extras; shrink for a
		// truthful report.
		out.Workers = out.Tasks
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = defaultMaxAttempts
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = defaultBackoffBase
	}
	if out.Deadline <= 0 {
		out.Deadline = defaultDeadline
	}
	if out.StallTimeout <= 0 {
		out.StallTimeout = defaultStallTimeout
	}
	if out.Log == nil {
		out.Log = io.Discard
	}
	return out
}

// backoffDelay is the deterministic retry backoff: exponential in the
// retry number, capped, with jitter derived from the shard identity
// via the sweep seed derivation — never wall clock or a global RNG, so
// a fleet run's retry schedule is reproducible.
func backoffDelay(base time.Duration, shard, attempt int) time.Duration {
	d := base << uint(attempt-2) // attempt 2 waits base, 3 waits 2*base, ...
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	j := sweep.DeriveSeed(int64(shard), fmt.Sprintf("fleet-backoff|%d", attempt))
	if j < 0 {
		j = -j
	}
	return d + time.Duration(j)%(d/2+1)
}

// Output is a completed fleet run: the merged study result (nil when
// shards failed terminally), the robustness report, and the obs totals
// summed across shards — ready to attach to a manifest.
type Output struct {
	Result *study.Result
	Report *obs.FleetReport
	Totals obs.ManifestTotals
}

// Manifest assembles the run's obs manifest: study identity, summed
// totals, fleet report. Per-job spans stay in the workers; the
// driver's manifest is the fleet-level view.
func (o *Output) Manifest(studyName string) *obs.Manifest {
	return &obs.Manifest{Study: studyName, Totals: o.Totals, Fleet: o.Report}
}

// shardState is the driver-side bookkeeping for one shard.
type shardState struct {
	jobs     int
	attempts []obs.FleetAttempt
	dump     *study.ShardDump
	totals   obs.ManifestTotals
}

// Run executes st across the fleet and merges the result. The Output
// (with its report) is returned even when err is non-nil, so failures
// still produce forensics. Determinism contract: the merged Result is
// byte-identical to a single-process run of st regardless of worker
// count, task partition, retries, or injected chaos — failed attempts
// contribute no output, and each shard's dump is a pure function of
// (study, shard).
func Run(ctx context.Context, st *study.Study, opts Options) (*Output, error) {
	if opts.Backend == nil {
		return nil, fmt.Errorf("fleet: no backend configured")
	}
	jobs := st.Jobs()
	opts = opts.withDefaults(len(jobs))
	backend := opts.Backend
	if opts.Chaos != nil {
		backend = &chaosBackend{Backend: backend, chaos: opts.Chaos}
	}
	fingerprint := st.Fingerprint()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type request struct {
		shard   int
		attempt int
		backoff time.Duration
	}
	var (
		mu        sync.Mutex
		states    = make([]shardState, opts.Tasks)
		remaining = opts.Tasks
		failed    []int
		doneIdx   = make([]bool, len(jobs))
		doneCount int
	)
	for i := range states {
		states[i].jobs = len(study.Sharded{Index: i, Count: opts.Tasks}.Jobs(jobs))
	}
	// Buffered past the worst case so re-queues (including delayed ones
	// from backoff timers) never block.
	queue := make(chan request, opts.Tasks*opts.MaxAttempts)
	done := make(chan struct{})
	finish := func() { // call with mu held
		remaining--
		if remaining == 0 {
			close(done)
		}
	}

	// observe feeds the aggregate meter from a worker progress event,
	// deduplicating on grid index so a retried shard replaying
	// completions never double-counts.
	observe := func(p *Progress) {
		mu.Lock()
		if p.Index >= 0 && p.Index < len(doneIdx) && !doneIdx[p.Index] {
			doneIdx[p.Index] = true
			doneCount++
			if opts.Progress != nil {
				opts.Progress.Observe(doneCount, len(jobs), p.Group,
					time.Duration(p.ElapsedNs), p.Error != "")
			}
		}
		mu.Unlock()
	}

	runAttempt := func(slot int, req request) (outcome string, errMsg string, events int) {
		t := Task{
			Study:    st.Name(),
			Shard:    req.shard,
			Of:       opts.Tasks,
			Engine:   opts.Engine,
			Parallel: opts.WorkerParallel,
			Attempt:  req.attempt,
		}
		proc, err := backend.Launch(runCtx, t)
		if err != nil {
			return obs.FleetLaunch, err.Error(), 0
		}
		stream := proc.Events()
		quit := make(chan struct{})
		defer func() {
			// Kill before Wait: a hung worker must not block the reap.
			close(quit)
			stream.Close()
			proc.Kill()
			proc.Wait()
		}()

		type evOrErr struct {
			ev  *Event
			err error
		}
		evCh := make(chan evOrErr)
		go func() {
			rd := NewEventReader(stream)
			for {
				ev, err := rd.Next()
				select {
				case evCh <- evOrErr{ev, err}:
				case <-quit:
					return
				}
				if err != nil {
					return
				}
			}
		}()

		deadline := time.NewTimer(opts.Deadline)
		defer deadline.Stop()
		stall := time.NewTimer(opts.StallTimeout)
		defer stall.Stop()
		for {
			select {
			case <-runCtx.Done():
				return obs.FleetCanceled, runCtx.Err().Error(), events
			case <-deadline.C:
				return obs.FleetDeadline, fmt.Sprintf("no dump within the %v deadline", opts.Deadline), events
			case <-stall.C:
				return obs.FleetStalled, fmt.Sprintf("no event within the %v stall timeout", opts.StallTimeout), events
			case eo := <-evCh:
				if eo.err != nil {
					msg := "worker exited before delivering its dump"
					if eo.err != io.EOF {
						msg = eo.err.Error()
					}
					return obs.FleetExit, msg, events
				}
				events++
				if !stall.Stop() {
					<-stall.C
				}
				stall.Reset(opts.StallTimeout)
				switch eo.ev.Type {
				case EventHello:
					h := eo.ev.Hello
					if h == nil {
						return obs.FleetExit, "hello event without payload", events
					}
					if h.Fingerprint != fingerprint || h.Study != st.Name() ||
						h.Of != opts.Tasks || h.Shard != req.shard || h.Grid != len(jobs) {
						return obs.FleetDrift, fmt.Sprintf(
							"worker announced study %q shard %d/%d grid %d fingerprint %.12s…, driver expects %q %d/%d grid %d %.12s…",
							h.Study, h.Shard, h.Of, h.Grid, h.Fingerprint,
							st.Name(), req.shard, opts.Tasks, len(jobs), fingerprint), events
					}
				case EventProgress:
					if eo.ev.Progress != nil {
						observe(eo.ev.Progress)
					}
				case EventError:
					return obs.FleetExit, eo.ev.Error, events
				case EventDump:
					d := eo.ev.Dump
					if d == nil || d.Dump == nil {
						return obs.FleetBadDump, "dump event without payload", events
					}
					if err := d.Dump.Check(st); err != nil {
						return obs.FleetBadDump, err.Error(), events
					}
					if d.Dump.Shard != req.shard || d.Dump.Of != opts.Tasks {
						return obs.FleetBadDump, fmt.Sprintf("dump is shard %d/%d, task was %d/%d",
							d.Dump.Shard, d.Dump.Of, req.shard, opts.Tasks), events
					}
					mu.Lock()
					states[req.shard].dump = d.Dump
					states[req.shard].totals = d.Totals
					mu.Unlock()
					// The dump is the last event; the deferred cleanup reaps
					// the worker while the slot moves on.
					return obs.FleetOK, "", events
				}
			}
		}
	}

	var wg sync.WaitGroup
	for slot := 0; slot < opts.Workers; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				var req request
				select {
				case <-done:
					return
				case <-runCtx.Done():
					return
				case req = <-queue:
				}
				start := time.Now()
				outcome, errMsg, events := runAttempt(slot, req)
				att := obs.FleetAttempt{
					Attempt:   req.attempt,
					Worker:    slot,
					Outcome:   outcome,
					Error:     errMsg,
					DurNs:     time.Since(start).Nanoseconds(),
					Events:    events,
					BackoffNs: req.backoff.Nanoseconds(),
				}
				mu.Lock()
				states[req.shard].attempts = append(states[req.shard].attempts, att)
				switch {
				case outcome == obs.FleetOK:
					fmt.Fprintf(opts.Log, "fleet: shard %d/%d ok on worker %d (attempt %d)\n",
						req.shard, opts.Tasks, slot, req.attempt)
					finish()
				case outcome == obs.FleetCanceled:
					// Collateral of another shard's terminal failure (or a
					// user cancel); the originating error speaks for the run.
					finish()
				case outcome == obs.FleetDrift:
					// Deterministic config drift: a retry would drift the same
					// way, so fail the shard outright.
					failed = append(failed, req.shard)
					finish()
					cancel()
				case req.attempt < opts.MaxAttempts:
					delay := backoffDelay(opts.BackoffBase, req.shard, req.attempt+1)
					fmt.Fprintf(opts.Log, "fleet: shard %d/%d attempt %d on worker %d failed (%s: %s); retrying in %v\n",
						req.shard, opts.Tasks, req.attempt, slot, outcome, errMsg, delay.Round(time.Millisecond))
					next := request{shard: req.shard, attempt: req.attempt + 1, backoff: delay}
					// The backoff timer re-queues without occupying this slot:
					// the shard lands on whichever surviving worker is free.
					time.AfterFunc(delay, func() { queue <- next })
				default:
					fmt.Fprintf(opts.Log, "fleet: shard %d/%d FAILED after %d attempts (%s: %s)\n",
						req.shard, opts.Tasks, req.attempt, outcome, errMsg)
					failed = append(failed, req.shard)
					finish()
					cancel()
				}
				mu.Unlock()
			}
		}(slot)
	}
	for i := 0; i < opts.Tasks; i++ {
		queue <- request{shard: i, attempt: 1}
	}
	select {
	case <-done:
	case <-runCtx.Done():
		// Terminal failure canceled the run while some shard sat in a
		// backoff timer: its verdict will never arrive, so done cannot
		// close. The cancel itself is the signal to stop waiting.
	}
	cancel()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	report := &obs.FleetReport{
		Backend: opts.Backend.Name(),
		Workers: opts.Workers,
		Tasks:   opts.Tasks,
		Chaos:   opts.Chaos.describe(),
	}
	out := &Output{Report: report}
	var dumps []*study.ShardDump
	for i := range states {
		s := &states[i]
		fs := obs.FleetShard{
			Shard:    i,
			Of:       opts.Tasks,
			Jobs:     s.jobs,
			Attempts: s.attempts,
			Retries:  max(len(s.attempts)-1, 0),
		}
		if c := s.totals.Counters.Schedule; c.Count > 0 {
			fs.ScheduleCount = c.Count
			fs.ScheduleMeanNs = c.SumNs / c.Count
			fs.ScheduleMaxNs = c.MaxNs
		}
		report.Shards = append(report.Shards, fs)
		report.Retries += fs.Retries
		if s.dump != nil {
			dumps = append(dumps, s.dump)
			out.Totals.Jobs += s.totals.Jobs
			out.Totals.Failed += s.totals.Failed
			out.Totals.JobNs += s.totals.JobNs
			out.Totals.Counters.Merge(&s.totals.Counters)
		}
	}
	report.MarkStragglers(0)
	sort.Ints(failed)
	report.Failed = failed

	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("fleet: run canceled: %w", err)
	}
	if len(failed) > 0 {
		return out, fmt.Errorf("fleet: %d of %d shards failed terminally: %v (see fleet report for attempt history)",
			len(failed), opts.Tasks, failed)
	}
	res, err := study.MergeShards(st, dumps...)
	if err != nil {
		return out, fmt.Errorf("fleet: merge after successful shards: %w", err)
	}
	out.Result = res
	return out, nil
}
