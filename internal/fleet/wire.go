// Package fleet distributes a registered study across worker
// processes. A driver partitions the grid into striped shards
// (internal/study's i/n sharding), launches them behind a pluggable
// Backend, and streams results back over each worker's stdout instead
// of shard files. The driver owns robustness: per-attempt deadlines,
// event-stream liveness, bounded deterministic-backoff retry,
// re-queueing a dead worker's shard onto surviving slots, and grid
// fingerprint validation that rejects drifted results before they can
// poison a merge. The merged output is byte-identical to a
// single-process run — retries and chaos leave traces only in the obs
// fleet report, never in study bytes.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"

	"saath/internal/obs"
	"saath/internal/study"
)

// WireVersion stamps every event; a reader rejects mismatched streams
// rather than guessing at field semantics.
const WireVersion = 1

// EventType discriminates wire events.
type EventType string

const (
	// EventHello is the worker's first event: the shard identity it is
	// about to run, including the grid fingerprint it computed — the
	// driver kills a drifted worker here, before it wastes the shard.
	EventHello EventType = "hello"
	// EventProgress reports one completed job.
	EventProgress EventType = "progress"
	// EventDump carries the finished shard's dump and obs totals; it is
	// the worker's last event and the driver's success criterion.
	EventDump EventType = "dump"
	// EventError reports a fatal worker-side failure.
	EventError EventType = "error"
)

// Hello announces the shard a worker is about to run.
type Hello struct {
	Study string `json:"study"`
	Shard int    `json:"shard"`
	Of    int    `json:"of"`
	// Jobs is this shard's job count; Grid the full grid size.
	Jobs        int    `json:"jobs"`
	Grid        int    `json:"grid"`
	Fingerprint string `json:"fingerprint"`
}

// Progress reports one completed job within a shard.
type Progress struct {
	// Index is the job's grid index — the driver dedups on it, so a
	// retried shard replaying completions never double-counts.
	Index int    `json:"index"`
	Key   string `json:"key"`
	// Group is the job's progress bucket (sweep.Job.Group) for the
	// driver-side aggregate meter.
	Group string `json:"group"`
	// Done/Total count within this shard.
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Error     string `json:"error,omitempty"`
}

// Dump is the worker's final payload: the mergeable shard dump plus
// the shard's obs totals (engine counters, schedule-latency histogram)
// for the fleet report.
type Dump struct {
	Dump   *study.ShardDump   `json:"dump"`
	Totals obs.ManifestTotals `json:"totals"`
}

// Event is the newline-delimited JSON envelope on a worker's stdout.
// Exactly one payload field is set, matching Type.
type Event struct {
	V        int       `json:"v"`
	Type     EventType `json:"type"`
	Hello    *Hello    `json:"hello,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
	Dump     *Dump     `json:"dump,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// WriteEvent stamps and emits one event as a single JSON line.
func WriteEvent(w io.Writer, ev *Event) error {
	ev.V = WireVersion
	return json.NewEncoder(w).Encode(ev)
}

// EventReader decodes a worker's event stream.
type EventReader struct {
	dec *json.Decoder
}

// NewEventReader wraps a worker's stdout.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{dec: json.NewDecoder(r)}
}

// Next returns the next event, io.EOF at clean end of stream, or a
// descriptive error on a corrupt or version-skewed stream.
func (r *EventReader) Next() (*Event, error) {
	var ev Event
	if err := r.dec.Decode(&ev); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("fleet: corrupt event stream: %w", err)
	}
	if ev.V != WireVersion {
		return nil, fmt.Errorf("fleet: wire version %d, this driver speaks %d", ev.V, WireVersion)
	}
	if ev.Type == "" {
		return nil, fmt.Errorf("fleet: event missing type")
	}
	return &ev, nil
}
