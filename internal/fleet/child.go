package fleet

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"saath/internal/obs"
	"saath/internal/sim"
	"saath/internal/study"
	"saath/internal/sweep"
)

// StreamOptions configure the worker side of a fleet shard run.
type StreamOptions struct {
	// Parallel bounds the worker's in-process pool; <=0 means NumCPU.
	// Fleet drivers usually pin this low — the fleet itself is the
	// parallelism.
	Parallel int
	// Engine selects the engine mode ("tick", "event", "" = default).
	Engine string
}

// StreamShard runs shard sh of st and emits the wire protocol on w:
// hello, one progress event per completed job, then the dump. This is
// the whole worker side — `saath-sim -shard-stream` and the test
// harness's re-exec child both end up here.
func StreamShard(ctx context.Context, st *study.Study, sh study.Sharded, opts StreamOptions, w io.Writer) error {
	if opts.Engine != "" {
		mode, err := sim.ParseMode(opts.Engine)
		if err != nil {
			return err
		}
		st = st.InEngineMode(mode)
	}
	jobs := st.Jobs()
	own := sh.Jobs(jobs)
	if err := WriteEvent(w, &Event{Type: EventHello, Hello: &Hello{
		Study:       st.Name(),
		Shard:       sh.Index,
		Of:          sh.Count,
		Jobs:        len(own),
		Grid:        len(jobs),
		Fingerprint: st.Fingerprint(),
	}}); err != nil {
		return err
	}
	rec := obs.NewRecorder(st.Name())
	// The study's declared backend (default Pool, or the testbed's
	// coordinator-backed runner) executes the shard, so testbed studies
	// are fleet-capable like simulator ones. Both backends serialize
	// progress callbacks, so events never interleave mid-line on the
	// pipe.
	runner, err := study.NewRunnerFor(st, study.RunnerOpts{
		Parallel: opts.Parallel,
		Observer: rec,
		Progress: func(done, total int, jr sweep.JobResult) {
			p := &Progress{
				Index:     jr.Job.Index,
				Key:       jr.Job.Key(),
				Group:     jr.Job.Group(),
				Done:      done,
				Total:     total,
				ElapsedNs: jr.Elapsed.Nanoseconds(),
			}
			if jr.Err != nil {
				p.Error = jr.Err.Error()
			}
			WriteEvent(w, &Event{Type: EventProgress, Progress: p})
		},
	})
	if err != nil {
		WriteEvent(w, &Event{Type: EventError, Error: err.Error()})
		return err
	}
	sh.Runner = runner
	res, err := st.Run(ctx, sh)
	if err != nil {
		WriteEvent(w, &Event{Type: EventError, Error: err.Error()})
		return err
	}
	dump, err := res.ShardDump(sh)
	if err != nil {
		WriteEvent(w, &Event{Type: EventError, Error: err.Error()})
		return err
	}
	return WriteEvent(w, &Event{Type: EventDump, Dump: &Dump{
		Dump:   dump,
		Totals: rec.Manifest().Totals,
	}})
}

// ChildMain is a ready-made worker entry point: parse the canonical
// shard-stream flags (the ones SaathSimArgs generates) and stream the
// shard on stdout. cmd/saath-sim's -shard-stream mode mirrors this
// inside its richer flag set; the fleet test harness re-execs its own
// binary straight into ChildMain. Returns a process exit code.
func ChildMain(argv []string) int {
	fs := flag.NewFlagSet("shard-stream", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	studyName := fs.String("study", "", "registered study name")
	shardSpec := fs.String("shard", "", "shard i/n to run")
	parallel := fs.Int("parallel", 0, "in-process parallelism (0 = NumCPU)")
	engine := fs.String("engine", "", "engine mode (tick|event)")
	fs.Bool("shard-stream", true, "accepted for saath-sim flag compatibility")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	st, err := study.Build(*studyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saath-fleet worker:", err)
		return 2
	}
	sh, err := study.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saath-fleet worker:", err)
		return 2
	}
	opts := StreamOptions{Parallel: *parallel, Engine: *engine}
	if err := StreamShard(context.Background(), st, sh, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "saath-fleet worker:", err)
		return 1
	}
	return 0
}
