package fabric

import (
	"math"
	"math/rand"
	"testing"

	"saath/internal/coflow"
)

func TestNewAndReset(t *testing.T) {
	f := New(4, DefaultPortRate)
	if f.NumPorts() != 4 || f.PortRate() != DefaultPortRate {
		t.Fatalf("shape: %d ports rate %v", f.NumPorts(), f.PortRate())
	}
	f.Allocate(0, 1, DefaultPortRate/2)
	f.Reset()
	if f.EgressFree(0) != DefaultPortRate || f.IngressFree(1) != DefaultPortRate {
		t.Fatal("Reset did not restore capacity")
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		ports int
		rate  coflow.Rate
	}{{0, 1}, {-1, 1}, {4, 0}, {4, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %v) did not panic", tc.ports, tc.rate)
				}
			}()
			New(tc.ports, tc.rate)
		}()
	}
}

func TestAllocateRelease(t *testing.T) {
	f := New(4, 100)
	f.Allocate(0, 1, 60)
	if f.EgressFree(0) != 40 || f.IngressFree(1) != 40 {
		t.Fatalf("free after alloc: %v / %v", f.EgressFree(0), f.IngressFree(1))
	}
	if f.PathFree(0, 2) != 40 { // limited by src egress
		t.Fatalf("PathFree = %v", f.PathFree(0, 2))
	}
	if f.PathFree(2, 1) != 40 { // limited by dst ingress
		t.Fatalf("PathFree = %v", f.PathFree(2, 1))
	}
	f.Release(0, 1, 60)
	if f.EgressFree(0) != 100 || f.IngressFree(1) != 100 {
		t.Fatal("Release did not restore")
	}
	// Release clamps at line rate.
	f.Release(0, 1, 500)
	if f.EgressFree(0) != 100 {
		t.Fatal("Release exceeded line rate")
	}
}

func TestAllocateOversubscribePanics(t *testing.T) {
	f := New(2, 100)
	f.Allocate(0, 1, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscription did not panic")
		}
	}()
	f.Allocate(0, 1, 1)
}

func TestAllocateNegativePanics(t *testing.T) {
	f := New(2, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("negative allocation did not panic")
		}
	}()
	f.Allocate(0, 1, -1)
}

func coflow2x2() *coflow.CoFlow {
	return coflow.New(&coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 2, Size: 100},
		{Src: 0, Dst: 3, Size: 100},
		{Src: 1, Dst: 2, Size: 100},
		{Src: 1, Dst: 3, Size: 100},
	}})
}

func TestCoFlowAvailable(t *testing.T) {
	f := New(4, 100)
	c := coflow2x2()
	if !f.CoFlowAvailable(c) {
		t.Fatal("fresh fabric should admit coflow")
	}
	f.Allocate(0, 0, 100) // saturate egress 0 (ingress 0 is unused by c)
	if f.CoFlowAvailable(c) {
		t.Fatal("coflow admitted with saturated port")
	}
	// A coflow whose flows avoid port 0 is still admissible.
	other := coflow.New(&coflow.Spec{ID: 2, Flows: []coflow.FlowSpec{{Src: 1, Dst: 3, Size: 1}}})
	if !f.CoFlowAvailable(other) {
		t.Fatal("unrelated coflow rejected")
	}
	// Done flows do not count.
	c.Flows[0].Done = true
	c.Flows[1].Done = true
	if !f.CoFlowAvailable(c) {
		t.Fatal("coflow with only done flows at busy port rejected")
	}
}

func TestCoFlowAvailableSkipsUnavailableFlows(t *testing.T) {
	f := New(4, 100)
	f.Allocate(0, 0, 100)
	c := coflow2x2()
	for i := range c.Flows {
		if c.Flows[i].Src == 0 {
			c.Flows[i].Available = false
		}
	}
	if !f.CoFlowAvailable(c) {
		t.Fatal("unavailable flows should not block admission")
	}
}

func TestEqualRateForCoFlow(t *testing.T) {
	f := New(4, 100)
	c := coflow2x2()
	// Each of ports 0..3 carries 2 flows -> equal rate 100/2 = 50.
	if got := f.EqualRateForCoFlow(c); got != 50 {
		t.Fatalf("equal rate = %v, want 50", got)
	}
	// Constrain ingress 2 to 40 -> rate 40/2 = 20.
	f.Allocate(1, 2, 60)
	// (that also took 60 from egress 1: free 40, 2 flows -> 20)
	if got := f.EqualRateForCoFlow(c); got != 20 {
		t.Fatalf("equal rate = %v, want 20", got)
	}
}

func TestMaxMinFairSingleBottleneck(t *testing.T) {
	f := New(4, 100)
	// Three flows out of port 0: fair share 33.3 each.
	d := []Demand{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}}
	rates := f.MaxMinFair(d)
	for i, r := range rates {
		if math.Abs(float64(r)-100.0/3) > 1e-6 {
			t.Fatalf("rate[%d] = %v, want 33.33", i, r)
		}
	}
}

func TestMaxMinFairTwoLevels(t *testing.T) {
	f := New(4, 100)
	// Flow A: 0->2, Flow B: 0->3, Flow C: 1->3.
	// Port 0 egress splits A,B at 50; port 3 ingress has B(50)+C.
	// C should get the leftover 50 at port 3, then rise to port 1's
	// free egress... port 3 ingress caps B+C at 100, so C gets 50.
	d := []Demand{{Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 3}}
	rates := f.MaxMinFair(d)
	want := []float64{50, 50, 50}
	for i := range rates {
		if math.Abs(float64(rates[i])-want[i]) > 1e-6 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestMaxMinFairRespectsCaps(t *testing.T) {
	f := New(4, 100)
	d := []Demand{{Src: 0, Dst: 1, Cap: 10}, {Src: 0, Dst: 2}}
	rates := f.MaxMinFair(d)
	if math.Abs(float64(rates[0])-10) > 1e-6 {
		t.Fatalf("capped rate = %v", rates[0])
	}
	if math.Abs(float64(rates[1])-90) > 1e-6 {
		t.Fatalf("uncapped rate = %v, want 90 (reclaims slack)", rates[1])
	}
}

func TestMaxMinFairEmptyAndSaturated(t *testing.T) {
	f := New(2, 100)
	if got := f.MaxMinFair(nil); len(got) != 0 {
		t.Fatal("nil demands")
	}
	f.Allocate(0, 1, 100)
	rates := f.MaxMinFair([]Demand{{Src: 0, Dst: 1}})
	if rates[0] != 0 {
		t.Fatalf("saturated rate = %v", rates[0])
	}
}

// TestMaxMinFairProperties validates the two defining max-min
// invariants on random instances: feasibility (no port over capacity)
// and maximality (every flow is stopped by a saturated port or a cap).
func TestMaxMinFairProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		nPorts := rng.Intn(6) + 2
		f := New(nPorts, 100)
		nd := rng.Intn(12) + 1
		demands := make([]Demand, nd)
		for i := range demands {
			demands[i] = Demand{
				Src: coflow.PortID(rng.Intn(nPorts)),
				Dst: coflow.PortID(rng.Intn(nPorts)),
			}
			if rng.Intn(3) == 0 {
				demands[i].Cap = coflow.Rate(rng.Intn(80) + 1)
			}
		}
		rates := f.MaxMinFair(demands)

		eg := make([]float64, nPorts)
		in := make([]float64, nPorts)
		for i, d := range demands {
			eg[d.Src] += float64(rates[i])
			in[d.Dst] += float64(rates[i])
			if d.Cap > 0 && float64(rates[i]) > float64(d.Cap)+1e-6 {
				t.Fatalf("trial %d: flow %d exceeds cap: %v > %v", trial, i, rates[i], d.Cap)
			}
			if rates[i] < 0 {
				t.Fatalf("trial %d: negative rate %v", trial, rates[i])
			}
		}
		for p := 0; p < nPorts; p++ {
			if eg[p] > 100+1e-4 || in[p] > 100+1e-4 {
				t.Fatalf("trial %d: port %d oversubscribed eg=%v in=%v", trial, p, eg[p], in[p])
			}
		}
		// Maximality: each flow is limited by a saturated src, dst, or cap.
		for i, d := range demands {
			satSrc := eg[d.Src] > 100-1e-3
			satDst := in[d.Dst] > 100-1e-3
			capped := d.Cap > 0 && float64(rates[i]) >= float64(d.Cap)-1e-3
			if !satSrc && !satDst && !capped {
				t.Fatalf("trial %d: flow %d (rate %v) not maximal (eg=%v in=%v cap=%v)",
					trial, i, rates[i], eg[d.Src], in[d.Dst], d.Cap)
			}
		}
	}
}
