// Package fabric models the paper's network substrate: a full-bisection
// "big switch" datacenter fabric in which congestion occurs only at the
// node ports (§6 Setup). Every node owns one egress (sender) port and
// one ingress (receiver) port of equal capacity, 1 Gbps by default.
//
// The Fabric tracks residual capacity as a scheduler hands out rates;
// package-level helpers implement max-min fair water-filling, used by
// the UC-TCP baseline and by work conservation.
package fabric

import (
	"fmt"

	"saath/internal/coflow"
)

// DefaultPortRate is the per-port line rate used throughout the paper.
var DefaultPortRate = coflow.GbpsRate(1)

// Fabric is the residual-capacity ledger for one scheduling round.
// It is not safe for concurrent use; the coordinator owns it.
type Fabric struct {
	numPorts    int
	portRate    coflow.Rate
	egressFree  []coflow.Rate // residual per sender port
	ingressFree []coflow.Rate // residual per receiver port

	// MaxMinFairInto working state, reused across scheduling rounds so
	// progressive filling stays off the heap.
	mmEgress  []coflow.Rate
	mmIngress []coflow.Rate
	mmEgCount []int
	mmInCount []int
	mmActive  []bool
}

// New creates a fabric of numPorts nodes with the given per-port rate.
func New(numPorts int, rate coflow.Rate) *Fabric {
	if numPorts <= 0 {
		panic(fmt.Sprintf("fabric.New: numPorts=%d", numPorts))
	}
	if rate <= 0 {
		panic(fmt.Sprintf("fabric.New: rate=%v", rate))
	}
	f := &Fabric{
		numPorts:    numPorts,
		portRate:    rate,
		egressFree:  make([]coflow.Rate, numPorts),
		ingressFree: make([]coflow.Rate, numPorts),
	}
	f.Reset()
	return f
}

// NumPorts returns the node count.
func (f *Fabric) NumPorts() int { return f.numPorts }

// PortRate returns the per-port line rate.
func (f *Fabric) PortRate() coflow.Rate { return f.portRate }

// Reset restores full capacity at every port, starting a new round.
func (f *Fabric) Reset() {
	for i := range f.egressFree {
		f.egressFree[i] = f.portRate
		f.ingressFree[i] = f.portRate
	}
}

// EgressFree returns residual sender-side capacity at port p.
func (f *Fabric) EgressFree(p coflow.PortID) coflow.Rate { return f.egressFree[p] }

// IngressFree returns residual receiver-side capacity at port p.
func (f *Fabric) IngressFree(p coflow.PortID) coflow.Rate { return f.ingressFree[p] }

// PathFree returns the rate available to one flow from src to dst: the
// minimum of residual egress at src and residual ingress at dst.
func (f *Fabric) PathFree(src, dst coflow.PortID) coflow.Rate {
	e, i := f.egressFree[src], f.ingressFree[dst]
	if e < i {
		return e
	}
	return i
}

// Allocate reserves rate r on the src→dst path. It panics if the
// reservation exceeds residual capacity beyond a tiny floating-point
// tolerance — schedulers must never oversubscribe ports.
func (f *Fabric) Allocate(src, dst coflow.PortID, r coflow.Rate) {
	if r < 0 {
		panic(fmt.Sprintf("fabric: negative allocation %v", r))
	}
	const tol = 1e-6
	if r > f.egressFree[src]+coflow.Rate(tol*float64(f.portRate)) {
		panic(fmt.Sprintf("fabric: egress port %d oversubscribed: want %v, free %v", src, r, f.egressFree[src]))
	}
	if r > f.ingressFree[dst]+coflow.Rate(tol*float64(f.portRate)) {
		panic(fmt.Sprintf("fabric: ingress port %d oversubscribed: want %v, free %v", dst, r, f.ingressFree[dst]))
	}
	f.egressFree[src] -= r
	f.ingressFree[dst] -= r
	if f.egressFree[src] < 0 {
		f.egressFree[src] = 0
	}
	if f.ingressFree[dst] < 0 {
		f.ingressFree[dst] = 0
	}
}

// Release returns rate r to the src→dst path, clamped at line rate.
func (f *Fabric) Release(src, dst coflow.PortID, r coflow.Rate) {
	if r < 0 {
		panic(fmt.Sprintf("fabric: negative release %v", r))
	}
	f.egressFree[src] += r
	f.ingressFree[dst] += r
	if f.egressFree[src] > f.portRate {
		f.egressFree[src] = f.portRate
	}
	if f.ingressFree[dst] > f.portRate {
		f.ingressFree[dst] = f.portRate
	}
}

// CoFlowAvailable reports whether every port a CoFlow's pending flows
// touch has strictly positive residual capacity — the all-or-none
// admission test (Fig. 7 line 7).
func (f *Fabric) CoFlowAvailable(c *coflow.CoFlow) bool {
	const eps = 1e-3 // below 1 mB/s a port is effectively busy
	for _, fl := range c.Flows {
		if fl.Done || !fl.Available {
			continue
		}
		if float64(f.egressFree[fl.Src]) < eps || float64(f.ingressFree[fl.Dst]) < eps {
			return false
		}
	}
	return true
}

// EqualRateForCoFlow computes the MADD-style equal per-flow rate for a
// CoFlow (§4.2 D2): the slowest flow's achievable share governs all
// flows, where each port's residual capacity is divided by the number
// of the CoFlow's pending flows at that port.
func (f *Fabric) EqualRateForCoFlow(c *coflow.CoFlow) coflow.Rate {
	use := c.Use()
	rate := f.portRate
	//saath:order-independent min over map values is commutative
	for p, n := range use.SrcFlows {
		if share := f.egressFree[p] / coflow.Rate(n); share < rate {
			rate = share
		}
	}
	//saath:order-independent min over map values is commutative
	for p, n := range use.DstFlows {
		if share := f.ingressFree[p] / coflow.Rate(n); share < rate {
			rate = share
		}
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}
