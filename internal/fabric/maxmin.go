package fabric

import "saath/internal/coflow"

// Demand is one flow competing for bandwidth in a max-min allocation.
type Demand struct {
	Src coflow.PortID
	Dst coflow.PortID
	// Cap optionally bounds the rate this flow can absorb (e.g. a
	// straggler's effective ceiling). Zero or negative means uncapped.
	Cap coflow.Rate
}

// MaxMinFair computes the max-min fair rate for each demand; see
// MaxMinFairInto. Prefer MaxMinFairInto on hot paths — it reuses the
// caller's result slice.
func (f *Fabric) MaxMinFair(demands []Demand) []coflow.Rate {
	return f.MaxMinFairInto(nil, demands)
}

// MaxMinFairInto computes the max-min fair rate for each demand using
// progressive filling over the fabric's *residual* capacities: in each
// round the most contended port saturates first, its flows are frozen
// at the fair share, and filling continues on the rest. The result is
// appended to dst (pass dst[:0] to reuse its backing array); internal
// working state lives on the Fabric and is reused across rounds, so a
// steady-state call allocates nothing.
//
// This is the bandwidth allocation a fabric of ideal TCP flows
// converges to, and implements the UC-TCP baseline (§6.1) as well as
// fair work-conservation variants. The fabric is left unchanged;
// callers apply the returned rates with Allocate if desired.
func (f *Fabric) MaxMinFairInto(dst []coflow.Rate, demands []Demand) []coflow.Rate {
	rates := dst
	for len(rates) < len(demands) {
		rates = append(rates, 0)
	}
	rates = rates[:len(demands)]
	for i := range rates {
		rates[i] = 0
	}
	if len(demands) == 0 {
		return rates
	}

	// Residual port capacity and per-port count of unfrozen flows,
	// kept as reusable scratch on the fabric.
	if len(f.mmEgress) < f.numPorts {
		f.mmEgress = make([]coflow.Rate, f.numPorts)
		f.mmIngress = make([]coflow.Rate, f.numPorts)
		f.mmEgCount = make([]int, f.numPorts)
		f.mmInCount = make([]int, f.numPorts)
	}
	egress, ingress := f.mmEgress[:f.numPorts], f.mmIngress[:f.numPorts]
	egCount, inCount := f.mmEgCount[:f.numPorts], f.mmInCount[:f.numPorts]
	copy(egress, f.egressFree)
	copy(ingress, f.ingressFree)
	for i := range egCount {
		egCount[i], inCount[i] = 0, 0
	}
	if cap(f.mmActive) < len(demands) {
		f.mmActive = make([]bool, len(demands))
	}
	active := f.mmActive[:len(demands)] // fully initialized by the loop below
	remaining := 0
	for i := range demands {
		active[i] = true
		remaining++
		egCount[demands[i].Src]++
		inCount[demands[i].Dst]++
	}

	for remaining > 0 {
		// Find the tightest bottleneck: min over contended ports of
		// residual / active-count, and over capped flows of their cap.
		level := coflow.Rate(-1)
		update := func(candidate coflow.Rate) {
			if candidate < 0 {
				candidate = 0
			}
			if level < 0 || candidate < level {
				level = candidate
			}
		}
		for p := 0; p < f.numPorts; p++ {
			if egCount[p] > 0 {
				update(egress[p] / coflow.Rate(egCount[p]))
			}
			if inCount[p] > 0 {
				update(ingress[p] / coflow.Rate(inCount[p]))
			}
		}
		for i, d := range demands {
			if active[i] && d.Cap > 0 {
				update(d.Cap - rates[i])
			}
		}
		if level < 0 {
			break // no contended ports left (defensive; remaining>0 implies some)
		}

		// Raise every active flow by the level, then freeze flows at
		// saturated ports or at their cap.
		for i, d := range demands {
			if !active[i] {
				continue
			}
			rates[i] += level
			egress[d.Src] -= level
			ingress[d.Dst] -= level
		}
		const eps = 1e-6
		for i, d := range demands {
			if !active[i] {
				continue
			}
			saturated := float64(egress[d.Src]) <= eps || float64(ingress[d.Dst]) <= eps
			capped := d.Cap > 0 && rates[i] >= d.Cap-coflow.Rate(eps)
			if saturated || capped {
				active[i] = false
				remaining--
				egCount[d.Src]--
				inCount[d.Dst]--
			}
		}
		if level == 0 {
			// Ports already saturated; the freeze pass above must have
			// retired every flow touching them. Any flow still active
			// has free ports and will progress next round; if none
			// were retired we are done (all residuals zero).
			allZero := true
			for i := range demands {
				if active[i] {
					allZero = false
					break
				}
			}
			if allZero {
				break
			}
		}
	}
	return rates
}
