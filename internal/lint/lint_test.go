package lint

import "testing"

func TestDetCheckFixture(t *testing.T) {
	runFixture(t, DetCheck, "saath/internal/sim/detfixture")
}

func TestDetCheckAllowlistedPackage(t *testing.T) {
	// internal/runtime is outside the determinism-critical set, so the
	// wall-clock reads and map ranges in the fixture produce nothing.
	expectNoFindings(t, DetCheck, "saath/internal/runtime/rtfixture")
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, HotPath, "saath/internal/sched/hotfixture")
}

func TestObsCheckCountersFixture(t *testing.T) {
	runFixture(t, ObsCheck, "saath/internal/study/obsfixture")
}

func TestObsCheckPureImportFixture(t *testing.T) {
	runFixture(t, ObsCheck, "saath/internal/sched/purefixture")
}

func TestObsCheckWriterAllowlist(t *testing.T) {
	expectNoFindings(t, ObsCheck, "saath/internal/sweep/okfixture")
}

func TestAnalyzersRegistry(t *testing.T) {
	want := []string{"detcheck", "hotpath", "obscheck"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		sel, err := ByName([]string{a.Name})
		if err != nil || len(sel) != 1 || sel[0] != a {
			t.Errorf("ByName(%q) did not return the registered analyzer (err=%v)", a.Name, err)
		}
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Error("ByName with an unknown name should error")
	}
}
