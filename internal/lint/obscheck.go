package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// obsPurePackages must stay entirely obs-free: they compute or render
// study output, so even an import of internal/obs is a layering leak.
// sim, sweep, study, testbed, and fleet legitimately carry obs
// plumbing (the Config.Counters seam, recorder hooks, manifests) —
// their discipline is behavioral (obsgolden byte-identity tests) plus
// the Counters-write rule below.
var obsPurePackages = []string{
	"saath/internal/sched",
	"saath/internal/trace",
	"saath/internal/coflow",
	"saath/internal/queues",
	"saath/internal/stats",
	"saath/internal/telemetry",
	"saath/internal/report",
	"saath/internal/fabric",
	"saath/internal/core",
	"saath/internal/experiments",
}

// obsCountersWriters are the only packages that may attach engine
// counters to a simulation: the engine that steps them, the sweep
// runner that wires them per job when observation is on, and obs
// itself. Everyone else — the study layer above all — must treat
// sim.Config.Counters as read-only (study validates it is nil).
var obsCountersWriters = []string{
	"saath/internal/sim",
	"saath/internal/sweep",
	"saath/internal/obs",
}

// ObsCheck enforces the out-of-band-observability invariant: obs
// types must not leak into study-output-affecting code. Two rules:
//
//  1. the pure output packages above must not import internal/obs at
//     all;
//  2. sim.Config.Counters may be written (assigned or set in a
//     composite literal) only in the sanctioned writer packages.
//
// //saath:obs-ok on the offending line accepts a finding when new
// out-of-band plumbing is being added deliberately.
var ObsCheck = &Analyzer{
	Name: "obscheck",
	Doc:  "keep obs plumbing (internal/obs imports, sim.Config.Counters writes) out of study-output-affecting code",
	AppliesTo: func(path string) bool {
		return strings.HasPrefix(path, "saath/")
	},
	Run: runObsCheck,
}

func runObsCheck(pass *Pass) error {
	pure := pathIn(pass.Pkg.Path(), obsPurePackages)
	mayWrite := pathIn(pass.Pkg.Path(), obsCountersWriters)

	for _, file := range pass.Files {
		if pure {
			for _, imp := range file.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if !strings.HasSuffix(p, "internal/obs") {
					continue
				}
				if pass.Notes.At(pass.Fset, imp.Pos(), NoteObsOK) {
					continue
				}
				pass.Reportf(imp.Pos(),
					"package %s computes study output and must not import %s; observability is out-of-band by contract (//saath:obs-ok to accept deliberate plumbing)",
					pass.Pkg.Path(), p)
			}
		}
		if mayWrite {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if isSimConfigCounters(pass.TypesInfo, lhs) {
						reportCountersWrite(pass, file, lhs)
					}
				}
			case *ast.CompositeLit:
				if !isSimConfigType(typeOf(pass.TypesInfo, n)) {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Counters" {
						reportCountersWrite(pass, file, kv)
					}
				}
			}
			return true
		})
	}
	return nil
}

func reportCountersWrite(pass *Pass, file *ast.File, at ast.Node) {
	if pass.Notes.Suppressed(pass.Fset, at.Pos(), enclosingFunc(file, at.Pos()), NoteObsOK) {
		return
	}
	pass.Reportf(at.Pos(),
		"sim.Config.Counters may only be attached by the engine, the sweep runner, or obs itself; writing it here leaks observability into a study-output path (//saath:obs-ok to accept)")
}

// isSimConfigCounters reports whether expr denotes the Counters field
// of sim.Config (directly or through a pointer).
func isSimConfigCounters(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Counters" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return isSimConfigType(s.Recv())
}

// isSimConfigType reports whether t is (a pointer to) the sim
// package's Config type.
func isSimConfigType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Config" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/sim")
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
