package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPath enforces the steady-state discipline from the dense-index
// scheduling work (PR 3): functions on the engine tick/event dispatch
// path — marked with //saath:hotpath on their doc comment — and
// everything they statically call within the same package must not
// allocate per call and must not key state by coflow.FlowID or
// coflow.CoFlowID (dense Idx slices instead).
//
// Flagged inside hot functions: make, new, slice/map composite
// literals, append that does not feed back into its own backing array
// (x = append(x, ...) and s.buf = append(s.buf[:0], ...) are reuse;
// y = append(x, ...) is a copy), and any map type keyed by
// coflow.FlowID / coflow.CoFlowID. //saath:alloc-ok on the line (or
// the function's doc comment) accepts a finding — grow paths,
// arrival/retire-path allocations outside steady state, and kept
// map-based reference implementations are the legitimate uses.
//
// Reachability is intra-package and static only: calls through
// interfaces (e.g. sched.Scheduler.Schedule) are not resolved, so
// each policy's Schedule carries its own //saath:hotpath root
// annotation.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid per-call allocation idioms and map[FlowID]-keyed state in //saath:hotpath functions and their intra-package callees",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	// Index every function declaration in the package.
	decls := make(map[*types.Func]*ast.FuncDecl)
	fileOf := make(map[*ast.FuncDecl]*ast.File)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
				fileOf[fd] = file
			}
		}
	}

	// Seed the hot set from //saath:hotpath annotations, then close
	// over static same-package calls.
	hot := make(map[*ast.FuncDecl]string) // decl -> why it is hot
	var queue []*ast.FuncDecl
	for _, fd := range decls {
		if pass.Notes.Func(fd, NoteHotPath) {
			hot[fd] = "//saath:hotpath"
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		caller := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			callee, ok := decls[fn]
			if !ok {
				return true // other package, interface, or no body
			}
			if _, seen := hot[callee]; !seen {
				hot[callee] = "reachable from hot " + caller
				queue = append(queue, callee)
			}
			return true
		})
	}

	// Deterministic report order.
	ordered := make([]*ast.FuncDecl, 0, len(hot))
	for fd := range hot {
		ordered = append(ordered, fd)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })

	for _, fd := range ordered {
		checkHotFunc(pass, fd, hot[fd])
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, why string) {
	if pass.Notes.Func(fd, NoteAllocOK) {
		return
	}
	appendDst := appendAssignments(fd)
	report := func(pos token.Pos, format string, args ...any) {
		if pass.Notes.At(pass.Fset, pos, NoteAllocOK) {
			return
		}
		args = append(args, fd.Name.Name, why)
		pass.Reportf(pos, format+" in hot function %s (%s); hoist into reused scratch state or annotate //saath:alloc-ok", args...)
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.MapType:
			if name := coflowIDKey(pass.TypesInfo, n.Key); name != "" {
				report(n.Pos(), "map keyed by coflow.%s violates the dense-Idx-slice discipline", name)
			}
		case *ast.CallExpr:
			switch builtinName(pass.TypesInfo, n) {
			case "make":
				report(n.Pos(), "make allocates per call")
			case "new":
				report(n.Pos(), "new allocates per call")
			case "append":
				if !selfAppend(pass.TypesInfo, n, appendDst) {
					report(n.Pos(), "append into a different slice allocates/copies per call")
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates per call")
			case *types.Map:
				report(n.Pos(), "map literal allocates per call")
			}
		}
		return true
	})
}

// coflowIDKey returns "FlowID" or "CoFlowID" when the map key type is
// one of coflow's identity types, else "".
func coflowIDKey(info *types.Info, key ast.Expr) string {
	tv, ok := info.Types[key]
	if !ok || tv.Type == nil {
		return ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/coflow") {
		return ""
	}
	if n := obj.Name(); n == "FlowID" || n == "CoFlowID" {
		return n
	}
	return ""
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// appendAssignments maps each call expression that is the sole RHS
// of a single assignment under root to that assignment's LHS, so
// selfAppend can see an append's destination.
func appendAssignments(root ast.Node) map[*ast.CallExpr]ast.Expr {
	out := make(map[*ast.CallExpr]ast.Expr)
	ast.Inspect(root, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			return true
		}
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			out[call] = as.Lhs[0]
		}
		return true
	})
	return out
}

// selfAppend reports whether an append call feeds its own first
// argument's backing array: the call is the sole RHS of a single
// assignment whose LHS denotes the same variable/field chain as the
// (possibly resliced) first argument.
func selfAppend(info *types.Info, call *ast.CallExpr, dst map[*ast.CallExpr]ast.Expr) bool {
	lhs, ok := dst[call]
	if !ok {
		return false
	}
	return sameRef(info, lhs, baseExpr(call.Args[0]))
}

// sameRef reports whether two expressions denote the same storage
// location through idents, field selections, and constant- or
// variable-indexed elements (x, s.buf, s.buckets[q]).
func sameRef(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := identObj(info, a), identObj(info, bi)
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		ao, bo := info.Uses[a.Sel], info.Uses[bs.Sel]
		if ao == nil || ao != bo {
			return false
		}
		return sameRef(info, a.X, bs.X)
	case *ast.IndexExpr:
		bx, ok := b.(*ast.IndexExpr)
		if !ok {
			return false
		}
		return sameRef(info, a.X, bx.X) && sameIndex(info, a.Index, bx.Index)
	}
	return false
}

// sameIndex reports whether two index expressions are trivially the
// same value: the same variable, or equal constants.
func sameIndex(info *types.Info, a, b ast.Expr) bool {
	if ao := identObj(info, a); ao != nil && ao == identObj(info, b) {
		return true
	}
	atv, aok := info.Types[a]
	btv, bok := info.Types[b]
	return aok && bok && atv.Value != nil && btv.Value != nil && atv.Value.ExactString() == btv.Value.ExactString()
}
