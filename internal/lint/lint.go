// Package lint is saath's repo-specific static-analysis suite. It
// enforces, at the source level, the three standing invariants that
// the golden and AllocsPerRun tests otherwise catch only after the
// fact:
//
//   - determinism: study output must be byte-identical at any
//     -parallel/-shard partition, so determinism-critical packages
//     must not read the wall clock, draw from the global math/rand
//     source, or let map iteration order leak into results (detcheck);
//   - hot path: the engine tick/event dispatch path and annotated
//     scheduler hot functions must stay allocation-free at steady
//     state and keep the dense-Idx-slice discipline instead of
//     map[FlowID]-keyed state (hotpath);
//   - out-of-band observability: obs plumbing (sim.Config.Counters,
//     obs.* types) must not leak into study-output-affecting packages
//     (obscheck).
//
// The suite follows the go/analysis model (Analyzer / Pass / Report)
// but is built purely on the standard library: golang.org/x/tools is
// not vendored here, so the framework below is a minimal structural
// clone and the driver in cmd/saath-vet loads packages itself via
// `go list -export` plus go/types instead of x/tools/go/packages.
// Should x/tools become available, the analyzers port mechanically —
// only the Pass plumbing changes.
//
// Escape hatches are explicit source annotations (see annotations.go):
//
//	//saath:wallclock         this wall-clock read is out-of-band by contract
//	//saath:order-independent this map iteration cannot affect results
//	//saath:hotpath           marks a function as a hot-path root
//	//saath:alloc-ok          this allocation/map in a hot function is intentional
//	//saath:obs-ok            this obs reference is sanctioned out-of-band plumbing
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. It mirrors
// x/tools/go/analysis.Analyzer structurally so the checkers port
// mechanically if the real framework becomes available.
type Analyzer struct {
	Name string
	Doc  string

	// AppliesTo reports whether the analyzer runs on the package with
	// the given import path. A nil AppliesTo means every package.
	AppliesTo func(importPath string) bool

	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Notes     *Annotations

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding inside a package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic, ready to print.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Analyzers returns the full saath-vet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetCheck, HotPath, ObsCheck}
}

// ByName returns the named analyzers, or an error naming the unknown
// one.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// RunPackage applies one analyzer to one loaded package and returns
// its findings. The AppliesTo filter is respected: a package outside
// the analyzer's scope yields no findings.
func RunPackage(a *Analyzer, pkg *Package) ([]Finding, error) {
	if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
		return nil, nil
	}
	var out []Finding
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Notes:     pkg.Notes,
		report: func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		},
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
	}
	return out, nil
}

// Run loads the packages matching patterns (relative to dir) and
// applies every analyzer, returning findings sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			fs, err := RunPackage(a, pkg)
			if err != nil {
				return nil, err
			}
			out = append(out, fs...)
		}
	}
	SortFindings(out)
	return out, nil
}

// SortFindings orders findings by file, line, column, then analyzer,
// so output is stable across runs.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathIn reports whether importPath is pkg or a subpackage of any of
// the given prefixes.
func pathIn(importPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}
