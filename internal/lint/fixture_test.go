package lint

// The fixture harness is a small analysistest clone: it loads a
// package from testdata/src/<import path>, resolving saath/... imports
// from testdata stubs and standard-library imports from `go list
// -export` data, runs one analyzer, and compares the diagnostics
// against // want "regex" comments line by line.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

type fixtureLoader struct {
	root string // testdata/src
	fset *token.FileSet
	pkgs map[string]*Package
	std  types.Importer

	mu         sync.Mutex
	stdExports map[string]string
}

func newFixtureLoader(t *testing.T) *fixtureLoader {
	t.Helper()
	l := &fixtureLoader{
		root:       filepath.Join("testdata", "src"),
		fset:       token.NewFileSet(),
		pkgs:       make(map[string]*Package),
		stdExports: make(map[string]string),
	}
	l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := l.stdExport(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
	return l
}

// stdExport resolves a standard-library package's export data file,
// building it into the go cache on first use.
func (l *fixtureLoader) stdExport(path string) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if f, ok := l.stdExports[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	l.stdExports[path] = f
	return f, nil
}

// Import makes the loader usable as the type-checker's importer:
// fixture packages come from testdata, everything else from std
// export data.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); dirExists(dir) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and type-checks the fixture package at the import path,
// memoized so diamond imports share one types.Package.
func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Notes: ParseAnnotations(l.fset, files),
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantPatRx = regexp.MustCompile(`"([^"]*)"`)

// wants collects the expected-diagnostic patterns per file line.
type wantKey struct {
	file string
	line int
}

func fixtureWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]string {
	t.Helper()
	out := make(map[wantKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pats := wantPatRx.FindAllStringSubmatch(m[1], -1)
				if len(pats) == 0 {
					t.Fatalf("%s: malformed want comment %q", fset.Position(c.Slash), c.Text)
				}
				pos := fset.Position(c.Slash)
				k := wantKey{pos.Filename, pos.Line}
				for _, p := range pats {
					out[k] = append(out[k], p[1])
				}
			}
		}
	}
	return out
}

// runFixture loads the fixture package, applies one analyzer, and
// checks findings against the want comments.
func runFixture(t *testing.T, a *Analyzer, importPath string) {
	t.Helper()
	l := newFixtureLoader(t)
	pkg, err := l.load(importPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(a, pkg)
	if err != nil {
		t.Fatal(err)
	}
	wants := fixtureWants(t, pkg.Fset, pkg.Files)

	for _, f := range findings {
		k := wantKey{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, pat := range wants[k] {
			ok, err := regexp.MatchString(pat, f.Message)
			if err != nil {
				t.Fatalf("bad want pattern %q: %v", pat, err)
			}
			if ok {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding at %s: %s", f.Pos, f.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, pats := range wants {
		for _, pat := range pats {
			t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, pat)
		}
	}
}

// expectNoFindings asserts the analyzer yields nothing on the fixture
// package (allowlisted-package negatives).
func expectNoFindings(t *testing.T, a *Analyzer, importPath string) {
	t.Helper()
	l := newFixtureLoader(t)
	pkg, err := l.load(importPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(a, pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding at %s: %s", f.Pos, f.Message)
	}
}
