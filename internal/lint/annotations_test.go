package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const annotationSrc = `package p

import "time"

// Elapsed measures wall time for reporting.
//
//saath:wallclock reporting only
func Elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func Inline() time.Time {
	//saath:wallclock
	return time.Now()
}

func Trailing() time.Time {
	return time.Now() //saath:wallclock with a rationale
}

func Bare() time.Time {
	return time.Now()
}

//saath:hotpath
func Hot() {}

// not a directive: saath:wallclock must start the comment.
func Unmarked() {}
`

func parseAnnotationSrc(t *testing.T) (*token.FileSet, *ast.File, *Annotations) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "anno.go", annotationSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, ParseAnnotations(fset, []*ast.File{f})
}

func funcNamed(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

func callPosIn(t *testing.T, fset *token.FileSet, fd *ast.FuncDecl) token.Pos {
	t.Helper()
	var pos token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && pos == token.NoPos {
			pos = c.Pos()
		}
		return true
	})
	if pos == token.NoPos {
		t.Fatalf("no call in %s", fd.Name.Name)
	}
	return pos
}

func TestAnnotationsFuncLevel(t *testing.T) {
	_, f, notes := parseAnnotationSrc(t)
	if !notes.Func(funcNamed(f, "Elapsed"), NoteWallclock) {
		t.Error("Elapsed should carry a func-level wallclock note")
	}
	if notes.Func(funcNamed(f, "Elapsed"), NoteHotPath) {
		t.Error("Elapsed should not carry a hotpath note")
	}
	if !notes.Func(funcNamed(f, "Hot"), NoteHotPath) {
		t.Error("Hot should carry a hotpath note")
	}
	if notes.Func(funcNamed(f, "Bare"), NoteWallclock) {
		t.Error("Bare has no annotations")
	}
	if notes.Func(funcNamed(f, "Unmarked"), NoteWallclock) {
		t.Error("a mid-comment mention is not a directive")
	}
}

func TestAnnotationsLineLevel(t *testing.T) {
	fset, f, notes := parseAnnotationSrc(t)

	// Line-above suppression.
	inline := callPosIn(t, fset, funcNamed(f, "Inline"))
	if !notes.At(fset, inline, NoteWallclock) {
		t.Error("line-above //saath:wallclock should suppress the next line")
	}
	// Same-line trailing suppression, with trailing rationale text.
	trailing := callPosIn(t, fset, funcNamed(f, "Trailing"))
	if !notes.At(fset, trailing, NoteWallclock) {
		t.Error("trailing //saath:wallclock should suppress its own line")
	}
	if notes.At(fset, trailing, NoteAllocOK) {
		t.Error("wallclock note must not satisfy an alloc-ok query")
	}
	// No annotation anywhere near Bare's call.
	bare := callPosIn(t, fset, funcNamed(f, "Bare"))
	if notes.At(fset, bare, NoteWallclock) {
		t.Error("Bare's time.Now has no annotation")
	}
}

func TestSuppressedCombinesLineAndFunc(t *testing.T) {
	fset, f, notes := parseAnnotationSrc(t)
	elapsed := funcNamed(f, "Elapsed")
	pos := callPosIn(t, fset, elapsed)
	if !notes.Suppressed(fset, pos, elapsed, NoteWallclock) {
		t.Error("func-level note should suppress calls inside the function")
	}
	bare := funcNamed(f, "Bare")
	if notes.Suppressed(fset, callPosIn(t, fset, bare), bare, NoteWallclock) {
		t.Error("Bare is unsuppressed")
	}
}

func TestDirectiveName(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"//saath:wallclock", "wallclock", true},
		{"//saath:wallclock reporting only", "wallclock", true},
		{"//saath:alloc-ok\tamortized growth", "alloc-ok", true},
		{"//saath:order-independent", "order-independent", true},
		{"//saath:", "", false},
		{"// saath:wallclock", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		got, ok := directiveName(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("directiveName(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}
