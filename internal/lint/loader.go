package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Notes *Annotations
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir with
// `go list -deps -export`, then parses and type-checks each matched
// package from source. Dependencies — std and intra-module alike —
// are imported from the compiler export data `go list -export`
// produces into the build cache, so loading needs no network and no
// third-party machinery. Test files are not part of `go list`'s
// GoFiles and are deliberately out of scope: tests may use wall
// clocks and allocate freely.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Incomplete,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Notes: ParseAnnotations(fset, files),
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
