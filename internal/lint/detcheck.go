package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// detPackages are the determinism-critical packages: everything whose
// computation can reach study output bytes. internal/obs and
// internal/runtime are deliberately absent — wall-clock time is
// out-of-band there by contract (spans, coordinator deadlines) — and
// internal/fleet owns wall-clock retry/backoff/stall machinery whose
// outputs are pinned byte-identical by the chaos goldens instead.
var detPackages = []string{
	"saath/internal/sim",
	"saath/internal/sched",
	"saath/internal/trace",
	"saath/internal/sweep",
	"saath/internal/study",
	"saath/internal/coflow",
	"saath/internal/queues",
	"saath/internal/stats",
	"saath/internal/testbed",
	"saath/internal/telemetry",
	"saath/internal/report",
	"saath/internal/fabric",
	"saath/internal/core",
	"saath/internal/experiments",
}

// wallclockFuncs are the time-package functions whose results depend
// on the wall clock (or that stall the caller on it).
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandFuncs are the math/rand constructors that return an
// explicitly seeded source and are therefore fine; every other
// package-level function draws from the process-global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// DetCheck enforces the determinism invariant: no wall-clock reads,
// no global math/rand draws, and no result-affecting iteration over
// Go's randomized map order inside determinism-critical packages.
//
// Map-range loops are accepted without annotation when the analyzer
// can prove order-independence structurally: bodies that only delete
// from the ranged map, accumulate into integer lvalues with
// commutative ops, or store under the range key into another map; and
// the collect-then-sort idiom (body only appends keys/values to
// slices that a following sibling statement passes to sort/slices).
// Everything else needs a //saath:order-independent annotation or a
// rewrite. Wall-clock reads feeding observability carry
// //saath:wallclock; global math/rand has no escape hatch.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc:  "forbid wall-clock, global math/rand, and order-dependent map iteration in determinism-critical packages",
	AppliesTo: func(path string) bool {
		return pathIn(path, detPackages)
	},
	Run: runDetCheck,
}

func runDetCheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, file, n)
			}
			if stmts := stmtList(n); stmts != nil {
				for i, s := range stmts {
					if rs, ok := unlabel(s).(*ast.RangeStmt); ok {
						checkMapRange(pass, file, rs, stmts[i+1:])
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkDetCall(pass *Pass, file *ast.File, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if !wallclockFuncs[fn.Name()] {
			return
		}
		if pass.Notes.Suppressed(pass.Fset, call.Pos(), enclosingFunc(file, call.Pos()), NoteWallclock) {
			return
		}
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock in a determinism-critical package; results must not depend on it (//saath:wallclock if out-of-band by contract)",
			fn.Name())
	case "math/rand", "math/rand/v2":
		if seededRandFuncs[fn.Name()] || fn.Type().(*types.Signature).Recv() != nil {
			return
		}
		pass.Reportf(call.Pos(),
			"%s.%s draws from the process-global random source; use an explicitly seeded *rand.Rand (no escape hatch: global randomness is never deterministic here)",
			fn.Pkg().Path(), fn.Name())
	}
}

// checkMapRange flags a range over a map unless the loop is
// annotation-suppressed or structurally order-independent.
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt, following []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Notes.Suppressed(pass.Fset, rs.Pos(), enclosingFunc(file, rs.Pos()), NoteOrderIndependent) {
		return
	}
	if mapRangeBodySafe(pass, rs) {
		return
	}
	if collectThenSort(pass, rs, following) {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map iterates in nondeterministic order and the loop body can affect results; sort the keys first, restructure, or annotate //saath:order-independent with a rationale")
}

// mapRangeBodySafe reports whether every statement in the loop body
// is provably order-independent: delete from a map, commutative
// integer accumulation, or a store into another map keyed by the
// range key (distinct per iteration).
func mapRangeBodySafe(pass *Pass, rs *ast.RangeStmt) bool {
	keyObj := identObj(pass.TypesInfo, rs.Key)
	if len(rs.Body.List) == 0 {
		return true
	}
	for _, s := range rs.Body.List {
		if !orderIndependentStmt(pass, s, keyObj) {
			return false
		}
	}
	return true
}

func orderIndependentStmt(pass *Pass, s ast.Stmt, keyObj types.Object) bool {
	switch s := unlabel(s).(type) {
	case *ast.ExprStmt:
		// delete(m, k) commutes across iterations.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == types.Universe.Lookup("delete")
	case *ast.IncDecStmt:
		return isIntegerExpr(pass.TypesInfo, s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative and associative only over integers: float
			// accumulation is order-dependent in the low bits.
			return len(s.Lhs) == 1 && isIntegerExpr(pass.TypesInfo, s.Lhs[0])
		case token.ASSIGN:
			// other[k] = ... — each iteration writes a distinct key,
			// so iteration order cannot matter (the RHS may read the
			// range variables freely).
			if len(s.Lhs) != 1 {
				return false
			}
			ix, ok := s.Lhs[0].(*ast.IndexExpr)
			if !ok {
				return false
			}
			if _, isMap := pass.TypesInfo.Types[ix.X].Type.Underlying().(*types.Map); !isMap {
				return false
			}
			return keyObj != nil && identObj(pass.TypesInfo, ix.Index) == keyObj
		}
		return false
	}
	return false
}

// collectThenSort recognizes the canonical sorted-iteration idiom:
// the body only appends to slice variables, and each of those slices
// is handed to a sort/slices call in a following sibling statement
// before anything else can observe it.
func collectThenSort(pass *Pass, rs *ast.RangeStmt, following []ast.Stmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	var targets []types.Object
	for _, s := range rs.Body.List {
		as, ok := unlabel(s).(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
			return false
		}
		dst := identObj(pass.TypesInfo, as.Lhs[0])
		if dst == nil || identObj(pass.TypesInfo, baseExpr(call.Args[0])) != dst {
			return false
		}
		targets = append(targets, dst)
	}
	for _, dst := range targets {
		if !sortedAfter(pass, dst, following) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether one of the following sibling statements
// passes obj to a sort or slices call.
func sortedAfter(pass *Pass, obj types.Object, following []ast.Stmt) bool {
	for _, s := range following {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if refersTo(pass.TypesInfo, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// --- shared AST helpers ---

// stmtList returns the statement list a node owns, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func unlabel(s ast.Stmt) ast.Stmt {
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = ls.Stmt
	}
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and dynamic calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// baseExpr unwraps slice expressions: buf[:0] -> buf.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		se, ok := ast.Unparen(e).(*ast.SliceExpr)
		if !ok {
			return ast.Unparen(e)
		}
		e = se.X
	}
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// refersTo reports whether expr mentions obj.
func refersTo(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
