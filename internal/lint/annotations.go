package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation names recognized by the suite. An annotation is a
// comment of the form //saath:<name> — no space after //, like other
// Go tool directives — optionally followed by free-text rationale.
const (
	// NoteWallclock marks a wall-clock read (time.Now and friends) in
	// a determinism-critical package as out-of-band by contract: it
	// may feed observability (spans, schedule-latency counters,
	// progress meters) but never study output bytes.
	NoteWallclock = "wallclock"

	// NoteOrderIndependent marks a map-range loop whose iteration
	// order provably cannot affect results (and which the analyzer's
	// structural heuristics cannot prove safe on their own).
	NoteOrderIndependent = "order-independent"

	// NoteHotPath on a function's doc comment marks it as a hot-path
	// root: the function and everything it statically calls within
	// the same package must follow the zero-alloc, dense-Idx-slice
	// steady-state discipline.
	NoteHotPath = "hotpath"

	// NoteAllocOK marks an allocation (or a map[FlowID]-keyed value)
	// inside a hot function as intentional: a setup/grow path, an
	// arrival- or completion-path allocation outside steady state, or
	// a kept map-based reference implementation.
	NoteAllocOK = "alloc-ok"

	// NoteObsOK marks a sim.Config.Counters write (or other obs
	// plumbing) outside the sanctioned packages as deliberate
	// out-of-band wiring.
	NoteObsOK = "obs-ok"
)

const notePrefix = "//saath:"

// Annotations indexes every //saath: directive in a package. A
// directive suppresses a finding when it appears on the same line as
// the flagged node or on the line immediately above it, or — for
// whole-function annotations — anywhere in the enclosing function's
// doc comment.
type Annotations struct {
	// byLine maps file name -> line -> set of directive names on that
	// line (trailing comments register on their own line; a directive
	// on a line of its own suppresses the line below it).
	byLine map[string]map[int]map[string]bool

	// funcs maps each annotated FuncDecl to its directive set.
	funcs map[*ast.FuncDecl]map[string]bool
}

// ParseAnnotations scans the files for //saath: directives.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	an := &Annotations{
		byLine: make(map[string]map[int]map[string]bool),
		funcs:  make(map[*ast.FuncDecl]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := directiveName(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := an.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					an.byLine[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				set[name] = true
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				name, ok := directiveName(c.Text)
				if !ok {
					continue
				}
				set := an.funcs[fd]
				if set == nil {
					set = make(map[string]bool)
					an.funcs[fd] = set
				}
				set[name] = true
			}
		}
	}
	return an
}

// directiveName extracts the annotation name from a //saath: comment,
// tolerating trailing rationale text ("//saath:wallclock — progress
// meter only").
func directiveName(text string) (string, bool) {
	if !strings.HasPrefix(text, notePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, notePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// At reports whether directive name is present on pos's line or the
// line immediately above it.
func (an *Annotations) At(fset *token.FileSet, pos token.Pos, name string) bool {
	if an == nil {
		return false
	}
	p := fset.Position(pos)
	lines := an.byLine[p.Filename]
	if lines == nil {
		return false
	}
	return lines[p.Line][name] || lines[p.Line-1][name]
}

// Func reports whether the function's doc comment carries the
// directive.
func (an *Annotations) Func(fd *ast.FuncDecl, name string) bool {
	if an == nil || fd == nil {
		return false
	}
	return an.funcs[fd][name]
}

// Suppressed reports whether a finding at pos inside enclosing (which
// may be nil) is suppressed by a line-level or function-level
// directive.
func (an *Annotations) Suppressed(fset *token.FileSet, pos token.Pos, enclosing *ast.FuncDecl, name string) bool {
	return an.At(fset, pos, name) || an.Func(enclosing, name)
}

// enclosingFunc returns the FuncDecl in file whose body spans pos, or
// nil.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}
