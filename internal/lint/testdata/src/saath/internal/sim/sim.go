// Package sim is a typing stub for analyzer fixtures: obscheck
// recognizes Counters writes through the Config type of any package
// whose path ends in internal/sim.
package sim

import "saath/internal/obs"

type Config struct {
	Delta    int64
	Counters *obs.EngineCounters
}
