// Package detfixture exercises detcheck: its import path sits under
// saath/internal/sim, a determinism-critical prefix.
package detfixture

import (
	"math/rand"
	"sort"
	"time"
)

// --- wall clock ---

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

func wallClockSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func wallClockLineAccepted() time.Time {
	//saath:wallclock suppressed: out-of-band by contract
	return time.Now()
}

func wallClockTrailingAccepted() time.Time {
	t := time.Now() //saath:wallclock
	return t
}

// wallClockFuncAccepted is exempt wholesale via its doc comment.
//
//saath:wallclock the whole helper is out-of-band
func wallClockFuncAccepted() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// --- global math/rand ---

func globalRand() int {
	return rand.Intn(10) // want "process-global random source"
}

func globalRandFloat() float64 {
	return rand.Float64() // want "process-global random source"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are fine
	return r.Intn(10)                   // method on a seeded *rand.Rand is fine
}

// --- map iteration order ---

func mapOrderLeaks(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "range over map iterates in nondeterministic order"
		out = append(out, v)
	}
	return out
}

func mapFloatAccumulation(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "range over map iterates in nondeterministic order"
		sum += v // float += is order-dependent in the low bits
	}
	return sum
}

func mapCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort idiom: no finding
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map iterates in nondeterministic order"
		keys = append(keys, k)
	}
	return keys
}

func mapIntCounting(m map[string]int) int {
	n := 0
	for range m { // integer counting commutes: no finding
		n++
	}
	return n
}

func mapIntSum(m map[string]int) int {
	sum := 0
	for _, v := range m { // integer += commutes: no finding
		sum += v
	}
	return sum
}

func mapRekey(m map[string]int, out map[string]bool) {
	for k := range m { // distinct-key store + delete: no finding
		out[k] = true
		delete(m, k)
	}
}

func mapAnnotated(m map[string]float64) float64 {
	var worst float64
	//saath:order-independent max over map values is commutative
	for _, v := range m {
		if v > worst {
			worst = v
		}
	}
	return worst
}
