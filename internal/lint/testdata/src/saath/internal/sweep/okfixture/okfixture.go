// Package okfixture proves the obscheck writer allowlist: packages
// under saath/internal/sweep are sanctioned Counters writers, so the
// write below is not flagged.
package okfixture

import (
	"saath/internal/obs"
	"saath/internal/sim"
)

func wire(cfg *sim.Config, c *obs.EngineCounters) {
	cfg.Counters = c // sanctioned writer package: no finding
}
