// Package obsfixture exercises obscheck's Counters-write rule from a
// package (under saath/internal/study) that may import obs but is not
// a sanctioned Counters writer.
package obsfixture

import (
	"saath/internal/obs"
	"saath/internal/sim"
)

func attach(cfg *sim.Config) {
	cfg.Counters = &obs.EngineCounters{} // want "sim.Config.Counters may only be attached"
}

func attachLit() sim.Config {
	return sim.Config{Counters: &obs.EngineCounters{}} // want "sim.Config.Counters may only be attached"
}

func attachAccepted(cfg *sim.Config, c *obs.EngineCounters) {
	cfg.Counters = c //saath:obs-ok deliberate out-of-band plumbing under test
}

func validate(cfg *sim.Config) bool {
	return cfg.Counters != nil // reading is fine everywhere
}

func otherField(cfg *sim.Config) {
	cfg.Delta = 8 // unrelated Config fields are fine
}
