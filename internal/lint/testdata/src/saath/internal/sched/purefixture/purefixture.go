// Package purefixture exercises obscheck's import rule: packages
// under saath/internal/sched compute study output and must stay
// obs-free entirely.
package purefixture

import (
	"saath/internal/obs" // want "must not import"
)

var leaked obs.EngineCounters

func Epochs() int64 { return leaked.Epochs }
