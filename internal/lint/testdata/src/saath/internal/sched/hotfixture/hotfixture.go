// Package hotfixture exercises hotpath: annotated roots, intra-package
// reachability, allocation idioms, and the dense-Idx map-key rule.
package hotfixture

import "saath/internal/coflow"

type sched struct {
	rates   []float64
	buf     []int
	buckets [][]int
}

// Schedule is a hot-path root.
//
//saath:hotpath
func (s *sched) Schedule(n int, q int) {
	ids := make([]int, n)           // want "make allocates per call"
	var m map[coflow.FlowID]float64 // want "map keyed by coflow.FlowID"
	_ = m
	lookup := map[coflow.CoFlowID]int{} // want "map keyed by coflow.CoFlowID" "map literal allocates per call"
	_ = lookup
	s.helper(n)
	s.buf = append(s.buf, n)               // self-append: no finding
	s.buf = append(s.buf[:0], n)           // reuse reslice: no finding
	s.rates = append(s.rates, 1.0)         // self-append through field: no finding
	s.buckets[q] = append(s.buckets[q], n) // indexed self-append: no finding
	var out []int
	out = append(ids, n) // want "append into a different slice"
	_ = out
}

// helper is hot by reachability from Schedule.
func (s *sched) helper(n int) {
	tmp := []int{n} // want "slice literal allocates per call"
	_ = tmp
}

// Setup is hot but exempt wholesale: setup-path allocations.
//
//saath:hotpath
//saath:alloc-ok construction only, never called per tick
func (s *sched) Setup(n int) {
	s.rates = make([]float64, n)
	s.buf = make([]int, 0, n)
}

// Grow is hot with one line-level acceptance.
//
//saath:hotpath
func (s *sched) Grow(n int) {
	s.buf = make([]int, n) //saath:alloc-ok amortized growth
}

// notHot allocates freely: it is neither annotated nor reachable from
// a hot root.
func notHot(n int) []int {
	return make([]int, n)
}
