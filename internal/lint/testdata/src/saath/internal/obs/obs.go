// Package obs is a typing stub for analyzer fixtures.
package obs

type EngineCounters struct {
	Epochs int64
	Ticks  int64
}
