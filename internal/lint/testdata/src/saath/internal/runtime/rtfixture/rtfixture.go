// Package rtfixture proves the detcheck package allowlist: its path
// sits under saath/internal/runtime, where wall-clock time is
// out-of-band by contract, so nothing here is flagged.
package rtfixture

import "time"

func Deadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout) // allowlisted package: no finding
}

func Spin(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
