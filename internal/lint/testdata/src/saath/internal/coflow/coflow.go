// Package coflow is a typing stub for analyzer fixtures: hotpath
// matches map keys against the FlowID/CoFlowID named types of any
// package whose path ends in internal/coflow.
package coflow

type CoFlowID int64

type FlowID struct {
	CoFlow CoFlowID
	Index  int
}
