// Package core implements Saath, the paper's online CoFlow scheduler
// (§3–§4). Saath extends the Aalo priority-queue architecture with
// three spatially-aware mechanisms:
//
//   - all-or-none: either every sendable flow of a CoFlow gets
//     bandwidth this interval, or none does, eliminating out-of-sync
//     scheduling across ports;
//   - per-flow queue thresholds (Eq. 1): a CoFlow demotes as soon as
//     any single flow crosses its fair share of the queue threshold,
//     accelerating queue transitions;
//   - Least-Contention-First (LCoF): within each queue, CoFlows that
//     block the fewest other CoFlows are scheduled first, with
//     FIFO-derived deadlines (d·C_q·t) guaranteeing starvation freedom.
//
// Work conservation hands ports left idle by all-or-none to the missed
// CoFlows (Fig. 4(c)), and the cluster-dynamics path (§4.3)
// approximates SRTF once some flows of a CoFlow have finished.
//
// The ablation variants the paper evaluates in Fig. 10–12 (A/N+FIFO
// and A/N+PF+FIFO) are the same scheduler with features toggled off
// via sched.Params.
//
// Schedule runs every δ (8 ms in the paper), so it is the simulator's
// hottest path: all per-interval state — the allocation vector, queue
// counts, buckets, the contention vector and the sort scratch — is
// reused across ticks, and contention is maintained incrementally
// (sched.ContentionIndex). A steady-state tick allocates nothing.
package core

import (
	"cmp"
	"slices"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

// Saath is the global coordinator's scheduling policy (Fig. 7).
type Saath struct {
	params sched.Params
	name   string
	state  map[coflow.CoFlowID]*coflowState

	// tracks holds per-flow throughput observations, indexed densely by
	// Flow.Idx. The zero value means "not yet observed" (lastAlloc 0).
	tracks   []flowTrack
	lastTime coflow.Time // previous Schedule invocation, for rate observation

	// Per-interval scratch, reused across ticks so the steady-state
	// Schedule call performs zero heap allocations.
	cindex     *sched.ContentionIndex
	queueCount []int
	buckets    [][]*coflow.CoFlow
	kc         []int // contention k_c (or width proxy) by CoFlow.Idx
	missed     []*coflow.CoFlow
	medScratch []coflow.Bytes
}

// coflowState is the coordinator's bookkeeping for one live CoFlow.
type coflowState struct {
	queue     int
	enteredAt coflow.Time // when the CoFlow entered its current queue
	deadline  coflow.Time // absolute starvation deadline for this queue
}

// flowTrack observes one flow's achieved throughput so the coordinator
// can detect stragglers: a flow that consistently moves far fewer
// bytes than its allocation (slowed task, congested host) becomes the
// CoFlow's MADD bottleneck, and the surplus reservation is released to
// work conservation instead of idling a port (§4.2 D2, §4.3).
type flowTrack struct {
	lastSent  coflow.Bytes
	lastAlloc coflow.Rate
	estCap    coflow.Rate // 0 = no cap (flow keeps up with its allocation)
	lagStreak int         // consecutive intervals below the laggard ratio
}

// New builds a Saath scheduler. Use sched.DefaultParams for the full
// design; clear LCoF / PerFlowThresholds / WorkConservation for the
// paper's ablations.
func New(p sched.Params) (*Saath, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	name := "saath"
	switch {
	case !p.LCoF && !p.PerFlowThresholds:
		name = "saath/an+fifo"
	case !p.LCoF:
		name = "saath/an+pf+fifo"
	case !p.PerFlowThresholds:
		name = "saath/an+lcof"
	}
	if !p.WorkConservation {
		name += "+nowc"
	}
	return &Saath{
		params:   p,
		name:     name,
		state:    make(map[coflow.CoFlowID]*coflowState),
		cindex:   sched.NewContentionIndex(),
		lastTime: -1,
	}, nil
}

func init() {
	sched.Register("saath", func(p sched.Params) (sched.Scheduler, error) {
		p.LCoF, p.PerFlowThresholds = true, true
		return New(p)
	})
	sched.Register("saath/an+fifo", func(p sched.Params) (sched.Scheduler, error) {
		p.LCoF, p.PerFlowThresholds = false, false
		return New(p)
	})
	sched.Register("saath/an+pf+fifo", func(p sched.Params) (sched.Scheduler, error) {
		p.LCoF, p.PerFlowThresholds = false, true
		return New(p)
	})
	sched.Register("saath/nowc", func(p sched.Params) (sched.Scheduler, error) {
		p.LCoF, p.PerFlowThresholds = true, true
		p.WorkConservation = false
		return New(p)
	})
	sched.Register("saath/width-contention", func(p sched.Params) (sched.Scheduler, error) {
		p.LCoF, p.PerFlowThresholds = true, true
		p.WidthContentionProxy = true
		return New(p)
	})
}

// Name identifies the configured variant.
func (s *Saath) Name() string { return s.name }

// Params exposes the normalized configuration (read-only use).
func (s *Saath) Params() sched.Params { return s.params }

// Arrive registers a CoFlow; every CoFlow starts in the highest
// priority queue with a fresh FIFO-derived deadline.
func (s *Saath) Arrive(c *coflow.CoFlow, now coflow.Time) {
	st := &coflowState{queue: 0, enteredAt: now}
	s.state[c.ID()] = st
	// Deadline is set on first Schedule, when the queue population
	// C_q is known; mark it unset.
	st.deadline = -1
}

// Depart forgets a finished or withdrawn CoFlow. Flow tracks are
// cleared by index so a later reuse of the index starts fresh.
func (s *Saath) Depart(c *coflow.CoFlow, now coflow.Time) {
	delete(s.state, c.ID())
	for _, f := range c.Flows {
		if f.Idx >= 0 && f.Idx < len(s.tracks) {
			s.tracks[f.Idx] = flowTrack{}
		}
	}
}

// QueueOf reports the CoFlow's current queue (for tests and the
// prototype's introspection endpoint). Second result is false for
// unknown CoFlows.
func (s *Saath) QueueOf(id coflow.CoFlowID) (int, bool) {
	st, ok := s.state[id]
	if !ok {
		return 0, false
	}
	return st.queue, true
}

// growScratch sizes the per-interval scratch for this snapshot's index
// caps. Growth only happens on arrival epochs; steady-state ticks pass
// straight through.
//
//saath:alloc-ok amortized grow path, empty on steady-state ticks
func (s *Saath) growScratch(snap *sched.Snapshot) {
	k := s.params.Queues.NumQueues
	if len(s.queueCount) != k {
		s.queueCount = make([]int, k)
		s.buckets = make([][]*coflow.CoFlow, k)
	} else {
		for i := range s.queueCount {
			s.queueCount[i] = 0
		}
	}
	for len(s.kc) < snap.CoFlowCap {
		s.kc = append(s.kc, 0)
	}
	for len(s.tracks) < snap.FlowCap {
		s.tracks = append(s.tracks, flowTrack{})
	}
}

// Schedule computes the next interval's allocation, following Fig. 7:
// assign queues, order each queue (deadline-expired first, then LCoF
// or FIFO), admit all-or-none, then work-conserve leftovers per queue.
//
//saath:hotpath zero-alloc steady state guarded by TestScheduleAllocGuards
func (s *Saath) Schedule(snap *sched.Snapshot) *sched.RateVec {
	alloc := snap.Allocation()
	if len(snap.Active) == 0 {
		s.lastTime = snap.Now
		return alloc
	}
	fab := snap.Fabric
	portRate := fab.PortRate()
	s.growScratch(snap)

	// (0) Observe achieved throughput since the previous interval and
	// refresh straggler caps (§4.3): a flow that moved well under its
	// allocation gets its future reservation capped near what it
	// demonstrably sustains; caps decay quickly once the flow recovers.
	s.observeProgress(snap)

	// (1) AssignQueue: per-flow thresholds (Eq. 1) or Aalo-style
	// total bytes for the ablation; the §4.3 dynamics path overrides
	// with the SRTF estimate when flows have finished.
	queueCount := s.queueCount
	for _, c := range snap.Active {
		st := s.state[c.ID()]
		if st == nil { // defensive: simulator always calls Arrive first
			st = &coflowState{queue: 0, enteredAt: snap.Now, deadline: -1}
			s.state[c.ID()] = st
		}
		q := s.targetQueue(c)
		if q != st.queue {
			st.queue = q
			st.enteredAt = snap.Now
			st.deadline = -1 // re-derive below with the new queue's population
		}
		queueCount[st.queue]++
	}
	// Fresh deadlines: d · C_q · t, with C_q the queue population at
	// entry and t the minimum residence time of that queue (§4.2 D5).
	for _, c := range snap.Active {
		st := s.state[c.ID()]
		if st.deadline < 0 {
			cq := queueCount[st.queue]
			if cq < 1 {
				cq = 1
			}
			t := s.params.Queues.MinResidence(st.queue, portRate)
			st.deadline = st.enteredAt + coflow.Time(s.params.DeadlineFactor*float64(cq))*t
		}
	}

	// (2) Bucket by queue.
	for q := range s.buckets {
		s.buckets[q] = s.buckets[q][:0]
	}
	for _, c := range snap.Active {
		if len(c.SendableFlows()) == 0 {
			continue // nothing to schedule (all data pending or done)
		}
		q := s.state[c.ID()].queue
		s.buckets[q] = append(s.buckets[q], c)
	}

	// (3) Contention k_c over the live set, refreshed incrementally:
	// only CoFlows whose sendable set changed since the last interval
	// are re-indexed. The width-proxy ablation swaps in CoFlow width as
	// a cheaper stand-in for the blocked-CoFlow count.
	if s.params.LCoF {
		if s.params.WidthContentionProxy {
			for _, c := range snap.Active {
				s.kc[c.Idx] = c.NumPending()
			}
		} else {
			s.cindex.Sync(snap.Active)
			for _, c := range snap.Active {
				s.kc[c.Idx] = s.cindex.K(c)
			}
		}
	}

	// (4) Scan queues from highest priority; within each queue order,
	// admit all-or-none, then work-conserve that queue's misses.
	for q := range s.buckets {
		bucket := s.buckets[q]
		if len(bucket) == 0 {
			continue
		}
		s.orderQueue(bucket, snap.Now)

		s.missed = s.missed[:0]
		for _, c := range bucket {
			if !fab.CoFlowAvailable(c) {
				s.missed = append(s.missed, c)
				continue
			}
			rate := fab.EqualRateForCoFlow(c)
			// MADD (D2): the slowest flow's achievable rate binds the
			// CoFlow; straggler caps make that observable online.
			for _, f := range c.SendableFlows() {
				if tr := &s.tracks[f.Idx]; tr.estCap > 0 && tr.estCap < rate {
					rate = tr.estCap
				}
			}
			if rate <= 0 {
				s.missed = append(s.missed, c)
				continue
			}
			for _, f := range c.SendableFlows() {
				alloc.Set(f.Idx, rate)
				fab.Allocate(f.Src, f.Dst, rate)
			}
		}
		if s.params.WorkConservation {
			s.workConserve(fab, s.missed, alloc)
		}
	}
	s.recordAllocations(snap, alloc)
	return alloc
}

// observeProgress compares each flow's bytes moved since the last
// interval against the rate it was allocated, deriving the straggler
// cap used by MADD rate assignment. Caps double each interval the flow
// keeps up, so recovered flows quickly regain their full share.
func (s *Saath) observeProgress(snap *sched.Snapshot) {
	dt := snap.Now - s.lastTime
	if s.lastTime < 0 || dt <= 0 {
		return
	}
	const (
		laggard  = 0.6 // achieving < 60% of the allocation marks a laggard interval
		streak   = 3   // consecutive laggard intervals before capping (noise guard)
		headroom = 1.25
	)
	// The cap never drops below a fixed fraction of line rate, so a
	// mis-measured flow always retains enough allocation to prove
	// itself and recover (caps double on every kept-up interval).
	floor := snap.Fabric.PortRate() / 16
	for _, c := range snap.Active {
		for _, f := range c.Flows {
			tr := &s.tracks[f.Idx]
			if tr.lastAlloc <= 0 {
				continue
			}
			if f.Done {
				tr.estCap = 0
				tr.lagStreak = 0
				continue
			}
			moved := f.Sent - tr.lastSent
			observed := coflow.Rate(float64(moved) / dt.Seconds())
			if observed < tr.lastAlloc*laggard {
				tr.lagStreak++
				if tr.lagStreak >= streak {
					cap := observed * headroom
					if cap < floor {
						cap = floor
					}
					tr.estCap = cap
				}
				continue
			}
			tr.lagStreak = 0
			if tr.estCap > 0 {
				tr.estCap *= 2
				if tr.estCap >= snap.Fabric.PortRate() {
					tr.estCap = 0
				}
			}
		}
	}
}

// recordAllocations snapshots the progress baseline for the next
// observation round.
func (s *Saath) recordAllocations(snap *sched.Snapshot, alloc *sched.RateVec) {
	for _, c := range snap.Active {
		for _, f := range c.Flows {
			if f.Done {
				continue
			}
			tr := &s.tracks[f.Idx]
			tr.lastSent = f.Sent
			tr.lastAlloc = alloc.Rate(f.Idx)
		}
	}
	s.lastTime = snap.Now
}

// targetQueue returns the queue a CoFlow belongs in right now.
func (s *Saath) targetQueue(c *coflow.CoFlow) int {
	if s.params.DynamicsSRTF {
		if m, ok := s.srtfEstimate(c); ok {
			// Map the estimated max remaining flow length onto the
			// per-flow ladder: a CoFlow with little left rejoins high
			// priority queues even if it has sent a lot (§4.3).
			return s.params.Queues.QueueForPerFlow(m, c.Width())
		}
	}
	if s.params.PerFlowThresholds {
		return s.params.Queues.QueueForPerFlow(c.MaxSent(), c.Width())
	}
	return s.params.Queues.QueueForBytes(c.TotalSent())
}

// srtfEstimate implements the §4.3 heuristic: once some flows of a
// CoFlow finished, estimate each unfinished flow's remaining length as
// median(finished lengths) − sent, and return the maximum, m_c.
//
// The estimate is only trusted in the CoFlow's tail phase — at least
// half its flows finished — which is the straggler/failure situation
// the paper targets. Triggering on the very first completion would let
// one early small flow of a large unequal-length CoFlow fake a tiny
// remaining size and hoist the whole CoFlow into the top queue, where
// it blocks genuinely short CoFlows. The second result is false when
// the estimate does not apply. The median scratch is reused across
// calls so the hot path stays allocation-free.
func (s *Saath) srtfEstimate(c *coflow.CoFlow) (coflow.Bytes, bool) {
	finished, pending := 0, 0
	for _, f := range c.Flows {
		if f.Done {
			finished++
		} else {
			pending++
		}
	}
	if finished == 0 || pending == 0 || finished < pending {
		return 0, false
	}
	s.medScratch = s.medScratch[:0]
	for _, f := range c.Flows {
		if f.Done {
			s.medScratch = append(s.medScratch, f.Sent)
		}
	}
	slices.Sort(s.medScratch)
	fe := medianOfSorted(s.medScratch)
	var worst coflow.Bytes
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		rem := fe - f.Sent
		if rem < 0 {
			rem = 0
		}
		if rem > worst {
			worst = rem
		}
	}
	return worst, true
}

func medianOfSorted(ys []coflow.Bytes) coflow.Bytes {
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

func median(xs []coflow.Bytes) coflow.Bytes {
	ys := append([]coflow.Bytes(nil), xs...)
	slices.Sort(ys)
	return medianOfSorted(ys)
}

// orderQueue sorts one queue's CoFlows for scanning: CoFlows past
// their starvation deadline first (oldest deadline first), then LCoF
// by ascending contention (ties FIFO), or pure FIFO when LCoF is off.
// slices.SortStableFunc with a stack-allocated closure keeps the sort
// off the heap.
func (s *Saath) orderQueue(bucket []*coflow.CoFlow, now coflow.Time) {
	slices.SortStableFunc(bucket, func(a, b *coflow.CoFlow) int {
		sa, sb := s.state[a.ID()], s.state[b.ID()]
		ea, eb := now >= sa.deadline, now >= sb.deadline
		if ea != eb {
			if ea {
				return -1 // expired first
			}
			return 1
		}
		if ea && eb && sa.deadline != sb.deadline {
			return cmp.Compare(sa.deadline, sb.deadline)
		}
		if s.params.LCoF {
			if ka, kb := s.kc[a.Idx], s.kc[b.Idx]; ka != kb {
				return cmp.Compare(ka, kb)
			}
		}
		if a.Arrived != b.Arrived {
			return cmp.Compare(a.Arrived, b.Arrived)
		}
		return cmp.Compare(a.ID(), b.ID())
	})
}

// workConserve hands residual port bandwidth to the CoFlows that
// missed all-or-none admission, in their queue order (§4.2 D4): each
// flow gets min(sender residual, receiver residual), outside
// all-or-none, so otherwise-idle ports speed CoFlows up without
// pushing anyone back.
func (s *Saath) workConserve(fab *fabric.Fabric, missed []*coflow.CoFlow, alloc *sched.RateVec) {
	const eps = 1e-3
	for _, c := range missed {
		for _, f := range c.SendableFlows() {
			r := fab.PathFree(f.Src, f.Dst)
			if float64(r) <= eps {
				continue
			}
			alloc.Add(f.Idx, r)
			fab.Allocate(f.Src, f.Dst, r)
		}
	}
}
