package core

import (
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

func newSaath(t *testing.T, mutate func(*sched.Params)) *Saath {
	t.Helper()
	p := sched.DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mk(id coflow.CoFlowID, flows ...coflow.FlowSpec) *coflow.CoFlow {
	return coflow.New(&coflow.Spec{ID: id, Flows: flows})
}

func snapshot(numPorts int, now coflow.Time, cs ...*coflow.CoFlow) *sched.Snapshot {
	return &sched.Snapshot{
		Now:    now,
		Active: cs,
		Fabric: fabric.New(numPorts, fabric.DefaultPortRate),
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		mutate func(*sched.Params)
		want   string
	}{
		{nil, "saath"},
		{func(p *sched.Params) { p.LCoF = false }, "saath/an+pf+fifo"},
		{func(p *sched.Params) { p.LCoF, p.PerFlowThresholds = false, false }, "saath/an+fifo"},
		{func(p *sched.Params) { p.PerFlowThresholds = false }, "saath/an+lcof"},
		{func(p *sched.Params) { p.WorkConservation = false }, "saath+nowc"},
	}
	for _, tc := range cases {
		if got := newSaath(t, tc.mutate).Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestAllOrNoneSchedulesWholeCoFlow(t *testing.T) {
	s := newSaath(t, nil)
	c := mk(1,
		coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.MB},
		coflow.FlowSpec{Src: 1, Dst: 3, Size: coflow.MB},
	)
	s.Arrive(c, 0)
	alloc := s.Schedule(snapshot(4, 0, c))
	if alloc.Len() != 2 {
		t.Fatalf("alloc = %v, want both flows", alloc)
	}
	// MADD equal rates: single flow per port -> full line rate each.
	alloc.Range(func(idx int, r coflow.Rate) bool {
		if r != fabric.DefaultPortRate {
			t.Errorf("flow idx %d rate %v, want line rate", idx, r)
		}
		return true
	})
}

func TestAllOrNoneEqualRates(t *testing.T) {
	// Two flows share egress 0: each port-share 1/2; the shared
	// bottleneck pins BOTH flows to the same rate (MADD, D2).
	s := newSaath(t, nil)
	c := mk(1,
		coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.MB},
		coflow.FlowSpec{Src: 0, Dst: 3, Size: coflow.MB},
		coflow.FlowSpec{Src: 1, Dst: 3, Size: coflow.MB},
	)
	s.Arrive(c, 0)
	alloc := s.Schedule(snapshot(4, 0, c))
	want := fabric.DefaultPortRate / 2 // egress 0 and ingress 3 each carry 2 flows
	alloc.Range(func(idx int, r coflow.Rate) bool {
		if r != want {
			t.Errorf("flow idx %d rate %v, want %v", idx, r, want)
		}
		return true
	})
}

func TestAllOrNoneBlocksWhenAnyPortBusy(t *testing.T) {
	s := newSaath(t, func(p *sched.Params) { p.WorkConservation = false })
	// c1 (arrived first, lower contention via deadline? both same) —
	// order: both in Q0; LCoF tie -> FIFO by arrival. c1 takes ports
	// {0->2}; c2 needs {0->3, 1->4} and egress 0 is saturated, so c2
	// gets nothing at all (no work conservation).
	c1 := mk(1, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.MB})
	c2 := mk(2,
		coflow.FlowSpec{Src: 0, Dst: 3, Size: coflow.MB},
		coflow.FlowSpec{Src: 1, Dst: 4, Size: coflow.MB},
	)
	c2.Arrived = 1
	s.Arrive(c1, 0)
	s.Arrive(c2, 1)
	alloc := s.Schedule(snapshot(5, 1, c1, c2))
	if _, ok := alloc.Get(c1.Flows[0].Idx); !ok {
		t.Fatal("c1 not scheduled")
	}
	for _, f := range c2.Flows {
		if r := alloc.Rate(f.Idx); r != 0 {
			t.Errorf("all-or-none violated: c2 flow %v got %v", f.ID, r)
		}
	}
}

func TestWorkConservationUsesIdlePorts(t *testing.T) {
	s := newSaath(t, nil)
	c1 := mk(1, coflow.FlowSpec{Src: 0, Dst: 2, Size: coflow.MB})
	c2 := mk(2,
		coflow.FlowSpec{Src: 0, Dst: 3, Size: coflow.MB},
		coflow.FlowSpec{Src: 1, Dst: 4, Size: coflow.MB},
	)
	c2.Arrived = 1
	s.Arrive(c1, 0)
	s.Arrive(c2, 1)
	alloc := s.Schedule(snapshot(5, 1, c1, c2))
	// Port 1->4 is idle after c1's admission; work conservation gives
	// it to c2's second flow even though c2 failed all-or-none.
	if r := alloc.Rate(c2.Flows[1].Idx); r != fabric.DefaultPortRate {
		t.Fatalf("work conservation rate = %v, want line rate", r)
	}
	if r := alloc.Rate(c2.Flows[0].Idx); r != 0 {
		t.Fatalf("flow on busy port got %v", r)
	}
}

func TestLCoFOrdersByContention(t *testing.T) {
	// Wide coflow cw blocks 2 others; each narrow one blocks only cw.
	// LCoF must admit the narrow ones first even though cw arrived
	// earlier. Every coflow shares a port with cw only.
	cw := mk(1,
		coflow.FlowSpec{Src: 0, Dst: 4, Size: coflow.MB},
		coflow.FlowSpec{Src: 1, Dst: 5, Size: coflow.MB},
	)
	cn1 := mk(2, coflow.FlowSpec{Src: 0, Dst: 6, Size: coflow.MB})
	cn2 := mk(3, coflow.FlowSpec{Src: 1, Dst: 7, Size: coflow.MB})
	cw.Arrived, cn1.Arrived, cn2.Arrived = 0, 1, 2

	s := newSaath(t, nil)
	s.Arrive(cw, 0)
	s.Arrive(cn1, 1)
	s.Arrive(cn2, 2)
	alloc := s.Schedule(snapshot(8, 2, cw, cn1, cn2))
	// k(cw)=2, k(cn1)=k(cn2)=1 -> narrow first; they saturate egress
	// 0 and 1, so cw gets nothing from all-or-none.
	if alloc.Rate(cn1.Flows[0].Idx) == 0 || alloc.Rate(cn2.Flows[0].Idx) == 0 {
		t.Fatalf("narrow coflows not admitted: %v", alloc)
	}
	for _, f := range cw.Flows {
		if alloc.Rate(f.Idx) != 0 {
			t.Fatalf("wide coflow should be blocked, got %v", alloc.Rate(f.Idx))
		}
	}
}

func TestFIFOAblationOrdersByArrival(t *testing.T) {
	cw := mk(1,
		coflow.FlowSpec{Src: 0, Dst: 4, Size: coflow.MB},
		coflow.FlowSpec{Src: 1, Dst: 5, Size: coflow.MB},
	)
	cn := mk(2, coflow.FlowSpec{Src: 0, Dst: 6, Size: coflow.MB})
	cn.Arrived = 1
	s := newSaath(t, func(p *sched.Params) { p.LCoF = false; p.WorkConservation = false })
	s.Arrive(cw, 0)
	s.Arrive(cn, 1)
	alloc := s.Schedule(snapshot(8, 1, cw, cn))
	if alloc.Rate(cw.Flows[0].Idx) == 0 {
		t.Fatal("FIFO should admit earlier arrival first")
	}
	if alloc.Rate(cn.Flows[0].Idx) != 0 {
		t.Fatal("later arrival admitted over FIFO head on shared port")
	}
}

func TestPerFlowThresholdDemotesFaster(t *testing.T) {
	// Fig. 5: width-4 CoFlow with per-flow progress S/4 demotes under
	// per-flow thresholds but stays in Q0 under total-bytes with the
	// same max progress... choose sent so that total stays below S.
	p := sched.DefaultParams()
	s, _ := New(p)
	spec := make([]coflow.FlowSpec, 4)
	for i := range spec {
		spec[i] = coflow.FlowSpec{Src: coflow.PortID(i), Dst: coflow.PortID(i + 4), Size: coflow.GB}
	}
	c := mk(1, spec...)
	// One flow sent 4 MB: m_c·N = 16 MB > S=10MB -> queue 1.
	c.Flows[0].Sent = 4 * coflow.MB
	s.Arrive(c, 0)
	s.Schedule(snapshot(8, 0, c))
	if q, _ := s.QueueOf(1); q != 1 {
		t.Fatalf("per-flow queue = %d, want 1", q)
	}

	// Same progress under the total-bytes ablation: 4 MB < 10 MB -> Q0.
	s2 := newSaath(t, func(p *sched.Params) { p.PerFlowThresholds = false; p.DynamicsSRTF = false })
	s2.Arrive(c, 0)
	s2.Schedule(snapshot(8, 0, c))
	if q, _ := s2.QueueOf(1); q != 0 {
		t.Fatalf("total-bytes queue = %d, want 0", q)
	}
}

func TestQueueOfUnknown(t *testing.T) {
	s := newSaath(t, nil)
	if _, ok := s.QueueOf(99); ok {
		t.Fatal("unknown coflow reported a queue")
	}
}

func TestDepartForgetsState(t *testing.T) {
	s := newSaath(t, nil)
	c := mk(1, coflow.FlowSpec{Src: 0, Dst: 1, Size: 1})
	s.Arrive(c, 0)
	s.Depart(c, 5)
	if _, ok := s.QueueOf(1); ok {
		t.Fatal("state leaked after Depart")
	}
}

func TestStarvationDeadlinePrioritizes(t *testing.T) {
	// A high-contention coflow passes its deadline and must jump ahead
	// of lower-contention competitors.
	cw := mk(1,
		coflow.FlowSpec{Src: 0, Dst: 4, Size: coflow.GB},
		coflow.FlowSpec{Src: 1, Dst: 5, Size: coflow.GB},
	)
	cn1 := mk(2, coflow.FlowSpec{Src: 0, Dst: 6, Size: coflow.GB})
	cn2 := mk(3, coflow.FlowSpec{Src: 1, Dst: 7, Size: coflow.GB})
	cn1.Arrived, cn2.Arrived = 1, 2
	s := newSaath(t, nil)
	s.Arrive(cw, 0)
	s.Arrive(cn1, 1)
	s.Arrive(cn2, 2)
	// First round sets deadlines.
	s.Schedule(snapshot(8, 2, cw, cn1, cn2))
	// Far in the future, cw's deadline has long expired; it must now
	// be admitted first despite its higher contention.
	farFuture := coflow.Time(1000) * coflow.Second
	alloc := s.Schedule(snapshot(8, farFuture, cw, cn1, cn2))
	if alloc.Rate(cw.Flows[0].Idx) == 0 || alloc.Rate(cw.Flows[1].Idx) == 0 {
		t.Fatalf("expired coflow not prioritized: %v", alloc)
	}
}

func TestDynamicsSRTFPromotesNearlyDoneCoFlow(t *testing.T) {
	// A coflow that has sent a lot (normally a low queue) but whose
	// remaining flows are nearly done gets promoted by the §4.3 path.
	spec := []coflow.FlowSpec{
		{Src: 0, Dst: 2, Size: coflow.GB},
		{Src: 1, Dst: 3, Size: coflow.GB},
	}
	c := mk(1, spec...)
	c.Flows[0].Sent = coflow.GB
	c.Flows[0].Done = true
	c.Flows[1].Sent = coflow.GB - 2*coflow.MB // ~2 MB left

	s := newSaath(t, nil)
	s.Arrive(c, 0)
	s.Schedule(snapshot(4, 0, c))
	q, _ := s.QueueOf(1)
	// Estimate: f_e = 1GB, remaining = 2MB, width 2 -> 4MB < 10MB -> Q0.
	if q != 0 {
		t.Fatalf("dynamics queue = %d, want promotion to 0", q)
	}

	s2 := newSaath(t, func(p *sched.Params) { p.DynamicsSRTF = false })
	s2.Arrive(c, 0)
	s2.Schedule(snapshot(4, 0, c))
	q2, _ := s2.QueueOf(1)
	if q2 == 0 {
		t.Fatalf("without dynamics the coflow should sit low, got q=%d", q2)
	}
}

func TestScheduleEmptySnapshot(t *testing.T) {
	s := newSaath(t, nil)
	if alloc := s.Schedule(snapshot(2, 0)); alloc.Len() != 0 {
		t.Fatalf("empty snapshot alloc = %v", alloc)
	}
}

func TestScheduleSkipsFullyUnavailableCoFlow(t *testing.T) {
	s := newSaath(t, nil)
	c := mk(1, coflow.FlowSpec{Src: 0, Dst: 1, Size: coflow.MB})
	c.Flows[0].Available = false
	s.Arrive(c, 0)
	if alloc := s.Schedule(snapshot(2, 0, c)); alloc.Len() != 0 {
		t.Fatalf("unavailable coflow scheduled: %v", alloc)
	}
}

func TestScheduleWithoutArriveIsDefensive(t *testing.T) {
	s := newSaath(t, nil)
	c := mk(1, coflow.FlowSpec{Src: 0, Dst: 1, Size: coflow.MB})
	// No Arrive call: Schedule must not panic and should still admit.
	alloc := s.Schedule(snapshot(2, 0, c))
	if alloc.Len() != 1 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]coflow.Bytes{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %d", got)
	}
	if got := median([]coflow.Bytes{4, 1, 3, 2}); got != 2 { // (2+3)/2 truncated
		t.Fatalf("even median = %d", got)
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	p := sched.DefaultParams()
	p.DeadlineFactor = 0.1
	if _, err := New(p); err == nil {
		t.Fatal("bad params accepted")
	}
}
