package core

import (
	"math/rand"
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
)

// randomCluster builds a random active set with partial progress, the
// adversarial input for the scheduling invariants below.
func randomCluster(rng *rand.Rand, nPorts, nCoflows int) []*coflow.CoFlow {
	active := make([]*coflow.CoFlow, 0, nCoflows)
	for i := 0; i < nCoflows; i++ {
		spec := &coflow.Spec{ID: coflow.CoFlowID(i + 1)}
		w := rng.Intn(6) + 1
		for j := 0; j < w; j++ {
			spec.Flows = append(spec.Flows, coflow.FlowSpec{
				Src:  coflow.PortID(rng.Intn(nPorts)),
				Dst:  coflow.PortID(rng.Intn(nPorts)),
				Size: coflow.Bytes(rng.Intn(200)+1) * coflow.MB,
			})
		}
		c := coflow.New(spec)
		c.Arrived = coflow.Time(rng.Intn(1000)) * coflow.Millisecond
		for _, f := range c.Flows {
			f.Sent = coflow.Bytes(rng.Int63n(int64(f.Size) + 1))
			if f.Sent == f.Size && rng.Intn(2) == 0 {
				f.Done = true
			} else {
				f.Sent = f.Sent / 2 // keep pending flows genuinely pending
			}
			if rng.Intn(10) == 0 {
				f.Available = false
			}
		}
		if len(c.PendingFlows()) == 0 {
			continue // fully-done coflows never reach the scheduler
		}
		active = append(active, c)
	}
	return active
}

// TestAllOrNonePropertyWithoutWC: with work conservation disabled, a
// CoFlow's sendable flows are either all scheduled at one equal rate
// or none are — the defining Saath invariant (§3 idea 1).
func TestAllOrNonePropertyWithoutWC(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := sched.DefaultParams()
	p.WorkConservation = false
	for trial := 0; trial < 100; trial++ {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		nPorts := rng.Intn(8) + 2
		active := randomCluster(rng, nPorts, rng.Intn(10)+1)
		for _, c := range active {
			s.Arrive(c, 0)
		}
		snap := &sched.Snapshot{
			Now:    coflow.Time(trial) * coflow.Millisecond,
			Active: active,
			Fabric: fabric.New(nPorts, fabric.DefaultPortRate),
		}
		alloc := s.Schedule(snap)
		for _, c := range active {
			flows := c.SendableFlows()
			if len(flows) == 0 {
				continue
			}
			var scheduled int
			var rate coflow.Rate
			for _, f := range flows {
				if r := alloc.Rate(f.Idx); r > 0 {
					scheduled++
					if rate == 0 {
						rate = r
					} else if r != rate {
						t.Fatalf("trial %d: coflow %d has unequal rates %v vs %v",
							trial, c.ID(), rate, r)
					}
				}
			}
			if scheduled != 0 && scheduled != len(flows) {
				t.Fatalf("trial %d: coflow %d partially scheduled (%d of %d)",
					trial, c.ID(), scheduled, len(flows))
			}
		}
	}
}

// TestNoOversubscriptionProperty: the full design (with work
// conservation) never allocates more than line rate on any port.
func TestNoOversubscriptionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		s, err := New(sched.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		nPorts := rng.Intn(8) + 2
		active := randomCluster(rng, nPorts, rng.Intn(14)+1)
		for _, c := range active {
			s.Arrive(c, 0)
		}
		snap := &sched.Snapshot{Active: active, Fabric: fabric.New(nPorts, fabric.DefaultPortRate)}
		alloc := s.Schedule(snap)

		egress := make([]float64, nPorts)
		ingress := make([]float64, nPorts)
		flowByIdx := make(map[int]*coflow.Flow)
		for _, c := range active {
			for _, f := range c.Flows {
				flowByIdx[f.Idx] = f
			}
		}
		alloc.Range(func(idx int, r coflow.Rate) bool {
			f := flowByIdx[idx]
			if f == nil {
				t.Fatalf("trial %d: alloc for unknown flow index %d", trial, idx)
			}
			if !f.Sendable() {
				t.Fatalf("trial %d: alloc for non-sendable flow %v", trial, f.ID)
			}
			egress[f.Src] += float64(r)
			ingress[f.Dst] += float64(r)
			return true
		})
		limit := float64(fabric.DefaultPortRate) * 1.0001
		for p := 0; p < nPorts; p++ {
			if egress[p] > limit || ingress[p] > limit {
				t.Fatalf("trial %d: port %d oversubscribed (eg %.0f, in %.0f)",
					trial, p, egress[p], ingress[p])
			}
		}
	}
}

// TestWorkConservationProperty: after a full Saath round, no sendable
// flow with positive residual capacity on both its ports is left
// completely unscheduled (§4.2 D4).
func TestWorkConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		s, err := New(sched.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		nPorts := rng.Intn(8) + 2
		active := randomCluster(rng, nPorts, rng.Intn(14)+1)
		for _, c := range active {
			s.Arrive(c, 0)
		}
		fab := fabric.New(nPorts, fabric.DefaultPortRate)
		snap := &sched.Snapshot{Active: active, Fabric: fab}
		alloc := s.Schedule(snap)
		// fab now holds the residuals after the round.
		eps := 1e-2 * float64(fabric.DefaultPortRate)
		for _, c := range active {
			for _, f := range c.SendableFlows() {
				if alloc.Rate(f.Idx) > 0 {
					continue
				}
				free := float64(fab.PathFree(f.Src, f.Dst))
				if free > eps {
					t.Fatalf("trial %d: flow %v idle with %.0f B/s free on its path",
						trial, f.ID, free)
				}
			}
		}
	}
}

// TestDeterministicScheduleProperty: two Saath instances fed the same
// event sequence produce identical allocations.
func TestDeterministicScheduleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nPorts := 6
	active := randomCluster(rng, nPorts, 12)
	mkAlloc := func() *sched.RateVec {
		s, err := New(sched.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range active {
			s.Arrive(c, 0)
		}
		snap := &sched.Snapshot{Active: active, Fabric: fabric.New(nPorts, fabric.DefaultPortRate)}
		return s.Schedule(snap)
	}
	a, b := mkAlloc(), mkAlloc()
	if !a.Equal(b) {
		t.Fatalf("identical event sequences produced different allocations (%d vs %d entries)",
			a.Len(), b.Len())
	}
}
