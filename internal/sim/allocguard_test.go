package sim

import (
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
	"saath/internal/trace"
)

// steadyEngine builds an engine mid-run: a contended active set of
// long coflows (no completions for many intervals), warmed through a
// few real ticks so every piece of scratch — the allocation vector,
// the scheduler's queue/bucket/contention state, the validation
// ledgers, the stats reservoir — is grown.
func steadyEngine(t testing.TB, scheduler string) *engine {
	t.Helper()
	tr := &trace.Trace{Name: "steady", NumPorts: 12}
	for i := 0; i < 24; i++ {
		spec := &coflow.Spec{ID: coflow.CoFlowID(i + 1), Arrival: 0}
		for j := 0; j <= i%3; j++ {
			spec.Flows = append(spec.Flows, coflow.FlowSpec{
				Src:  coflow.PortID((i + j) % 12),
				Dst:  coflow.PortID((i + j + 5) % 12),
				Size: 10 * coflow.GB, // far too large to complete during the guard
			})
		}
		tr.Specs = append(tr.Specs, spec)
	}
	s, err := sched.New(scheduler, sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}.withDefaults()
	e := &engine{
		cfg:    cfg,
		sched:  s,
		fab:    fabric.New(tr.NumPorts, cfg.PortRate),
		space:  coflow.NewIndexSpace(),
		result: &Result{Scheduler: s.Name(), Trace: tr.Name},
	}
	e.snap.Fabric = e.fab
	e.load(tr)
	e.admit(0)
	for i := 0; i < 3; i++ { // warm every scratch path
		if err := e.tick(cfg.Delta); err != nil {
			t.Fatal(err)
		}
		e.now += cfg.Delta
	}
	return e
}

// TestEngineTickSteadyStateZeroAlloc is the acceptance guard for the
// dense-index hot path: a steady-state engine tick — full validation
// on, no probes, Saath scheduling — performs zero heap allocations.
// Everything per-interval (allocation vector, queue/bucket/contention
// scratch, validation ledgers, sorted snapshot) is reused.
func TestEngineTickSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, scheduler := range []string{"saath", "aalo", "uc-tcp"} {
		e := steadyEngine(t, scheduler)
		n := testing.AllocsPerRun(100, func() {
			if err := e.tick(e.cfg.Delta); err != nil {
				t.Fatal(err)
			}
			e.now += e.cfg.Delta
		})
		if n != 0 {
			t.Errorf("%s: steady-state tick allocates %.1f times per interval, want 0", scheduler, n)
		}
	}
}
